#!/usr/bin/env bash
# Compare two artifact directories for byte-identical determinism.
#
#   scripts/compare_artifact_dirs.sh DIR_A DIR_B
#
# The comparison is *bidirectional*: a JSON artifact present in one
# directory but missing from the other is a failure, not a silent skip —
# otherwise a worker-count-dependent bug that drops (or invents) a whole
# artifact would sail through a one-sided `for f in A/*.json` loop.
# `BENCH_*.json` telemetry files carry wall-clock rates and are excluded
# by design (they are never byte-reproducible).

set -euo pipefail

if [[ $# -ne 2 ]]; then
    echo "usage: $0 DIR_A DIR_B" >&2
    exit 2
fi
dir_a="$1"
dir_b="$2"
[[ -d "$dir_a" ]] || { echo "compare_artifact_dirs: not a directory: $dir_a" >&2; exit 2; }
[[ -d "$dir_b" ]] || { echo "compare_artifact_dirs: not a directory: $dir_b" >&2; exit 2; }

# Comparable artifact names in one directory (sorted, telemetry excluded).
list_artifacts() {
    (cd "$1" && find . -maxdepth 1 -name '*.json' ! -name 'BENCH_*.json' -printf '%f\n' | sort)
}

names_a="$(list_artifacts "$dir_a")"
names_b="$(list_artifacts "$dir_b")"

if [[ "$names_a" != "$names_b" ]]; then
    echo "compare_artifact_dirs: ARTIFACT SET MISMATCH between $dir_a and $dir_b" >&2
    only_a="$(comm -23 <(echo "$names_a") <(echo "$names_b"))"
    only_b="$(comm -13 <(echo "$names_a") <(echo "$names_b"))"
    [[ -n "$only_a" ]] && echo "  only in $dir_a: $only_a" >&2
    [[ -n "$only_b" ]] && echo "  only in $dir_b: $only_b" >&2
    exit 1
fi

if [[ -z "$names_a" ]]; then
    echo "compare_artifact_dirs: no comparable artifacts found in $dir_a" >&2
    exit 1
fi

status=0
while IFS= read -r name; do
    if ! cmp -s "$dir_a/$name" "$dir_b/$name"; then
        echo "compare_artifact_dirs: DETERMINISM FAILURE: $name differs" >&2
        status=1
    fi
done <<< "$names_a"

exit "$status"
