#!/usr/bin/env bash
# Pre-merge gate (see ROADMAP.md). Everything runs offline: the
# workspace has zero external dependencies and must keep building with
# an empty cargo registry and no network.
#
#   scripts/verify.sh          # full gate: build + tests + clippy + determinism
#   scripts/verify.sh --fast   # skip the determinism run (tier-1 + clippy only)

set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> lint: cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "${1:-}" == "--fast" ]]; then
    echo "==> skipping determinism check (--fast)"
    echo "verify.sh: OK"
    exit 0
fi

echo "==> determinism: reproduce_all --jobs 1 vs --jobs 8"
cargo build --release --example reproduce_all
out_dir="$(mktemp -d)"
trap 'rm -rf "$out_dir"' EXIT
# A cheap selection that still exercises multi-unit merging (fig3 has
# two per-platform units); the heavyweight sweeps would cost minutes
# each and share the exact same merge path. `world` additionally runs
# its own internal shard pool per unit, so this gate also proves the
# cross-shard ordered commit is byte-identical across worker counts.
selection="table1,table2,vantage,fig3,world"
./target/release/examples/reproduce_all --only "$selection" --jobs 1 --out "$out_dir/j1" > /dev/null
./target/release/examples/reproduce_all --only "$selection" --jobs 8 --out "$out_dir/j8" > /dev/null
scripts/compare_artifact_dirs.sh "$out_dir/j1" "$out_dir/j8"
echo "    artifacts byte-identical across worker counts"

echo "verify.sh: OK"
