//! Integration tests: the paper's five headline findings, reproduced
//! end-to-end through the public facade crate.

use metaverse_measurement::core::analysis::steady_data_rates;
use metaverse_measurement::core::experiments::{fig6, fig7, table2, table4};
use metaverse_measurement::netsim::{SimDuration, SimTime};
use metaverse_measurement::platform::session::run_session;
use metaverse_measurement::platform::{ChannelKind, PlatformConfig, SessionConfig};
use metaverse_measurement::PlatformId;

/// Finding 1 (§4): platforms split control (HTTPS) and data channels,
/// not always on the same provider, some >70 ms away.
#[test]
fn finding1_channel_split_and_far_servers() {
    let rep = table2::run(table2::Table2Config::quick());
    // Every platform has two distinct channel rows.
    assert_eq!(rep.rows.len(), 10);
    // Rec Room's channels belong to different owners (ANS vs Cloudflare).
    let rr_ctl = rep
        .rows
        .iter()
        .find(|r| r.platform == PlatformId::RecRoom && r.channel == ChannelKind::Control)
        .unwrap();
    let rr_data = rep
        .rows
        .iter()
        .find(|r| r.platform == PlatformId::RecRoom && r.channel == ChannelKind::Data)
        .unwrap();
    assert_ne!(rr_ctl.owner, rr_data.owner);
    // Some servers are >70 ms away.
    assert!(rep.rows.iter().any(|r| r.rtt.mean > 70.0));
}

/// Finding 2 (§5): two-user throughput < 100 Kbps except Worlds
/// (~750/410), dominated by avatar data, servers just forward.
#[test]
fn finding2_throughput_levels_and_forwarding() {
    for id in PlatformId::ALL {
        let cfg = SessionConfig::walk_and_chat(
            PlatformConfig::of(id),
            2,
            SimDuration::from_secs(40),
            0xF1,
        );
        let r = run_session(&cfg);
        let rates = steady_data_rates(
            &r.users[0].ap_records,
            r.data_server_node,
            SimTime::from_secs(15),
            SimTime::from_secs(40),
        );
        match id {
            PlatformId::Worlds => {
                assert!(rates.up_kbps > 400.0, "{id}: up {}", rates.up_kbps);
                assert!(rates.down_kbps > 250.0, "{id}: down {}", rates.down_kbps);
            }
            _ => {
                assert!(rates.up_kbps < 100.0, "{id}: up {}", rates.up_kbps);
                assert!(rates.down_kbps < 100.0, "{id}: down {}", rates.down_kbps);
            }
        }
        // Forwarding: everything U1 received was relayed by the server.
        assert!(r.server_stats.forwards > 0, "{id}");
    }
}

/// Finding 3 (§6): throughput grows linearly with users; only AltspaceVR
/// is viewport-adaptive.
#[test]
fn finding3_linear_scaling_and_viewport_optimisation() {
    let cfg = fig7::ScalingConfig::quick();
    let rep = fig7::run(PlatformId::RecRoom, &cfg);
    let (slope, r2) = rep.downlink_linearity();
    assert!(slope > 0.0 && r2 > 0.95, "slope {slope}, R² {r2}");

    let f6 = fig6::Fig6Config::quick();
    let alts = fig6::run(PlatformId::AltspaceVr, fig6::Variant::VisibleThenAway, f6);
    assert!(alts.down_after_turn() < alts.down_before_turn() * 0.55);
    let vrchat = fig6::run(PlatformId::VrChat, fig6::Variant::VisibleThenAway, f6);
    assert!(vrchat.down_after_turn() > vrchat.down_before_turn() * 0.8);
}

/// Finding 4 (§7): Hubs is the slowest end to end; AltspaceVR has the
/// largest server share; private Hubs collapses the server latency.
#[test]
fn finding4_latency_ordering() {
    let rep = table4::run(table4::Table4Config::quick());
    let get = |l: &str| rep.rows.iter().find(|r| r.label == l).unwrap();
    assert!(get("Hubs").breakdown.e2e.mean > get("Rec Room").breakdown.e2e.mean);
    assert!(get("Hubs").breakdown.e2e.mean > get("Worlds").breakdown.e2e.mean);
    assert!(
        get("AltspaceVR").breakdown.server.mean > get("VRChat").breakdown.server.mean
    );
    assert!(get("Hubs*").breakdown.e2e.mean < get("Hubs").breakdown.e2e.mean);
}

/// Finding 5 (§8): Worlds prioritises TCP over UDP — verified at the
/// client-app level through the facade.
#[test]
fn finding5_tcp_priority_is_worlds_specific() {
    assert!(PlatformConfig::worlds().tcp_priority);
    for id in [PlatformId::AltspaceVr, PlatformId::Hubs, PlatformId::RecRoom, PlatformId::VrChat] {
        assert!(!PlatformConfig::of(id).tcp_priority, "{id}");
    }
}
