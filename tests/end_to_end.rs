//! Cross-crate integration: sessions drive real protocol stacks whose
//! captures survive a pcap round trip; runs are deterministic; channel
//! classification separates the stacks the way §4.1 describes.

use metaverse_measurement::core::analysis::{channel_records, ProtocolMix};
use metaverse_measurement::netsim::pcap::{read_pcap, PcapWriter};
use metaverse_measurement::netsim::{Packet, Proto, SimDuration, TransportHeader};
use metaverse_measurement::platform::session::run_session;
use metaverse_measurement::platform::{ChannelKind, PlatformConfig, SessionConfig};
use metaverse_measurement::PlatformId;

#[test]
fn session_runs_are_bit_deterministic() {
    let run = |seed| {
        let cfg = SessionConfig::walk_and_chat(
            PlatformConfig::worlds(),
            3,
            SimDuration::from_secs(20),
            seed,
        );
        let r = run_session(&cfg);
        (
            r.users[0].ap_records.len(),
            r.users[0].avatar_updates_received,
            r.server_stats,
            r.users[0].samples.last().map(|s| (s.cpu * 1000.0) as u64),
        )
    };
    assert_eq!(run(1), run(1));
    assert_ne!(run(1).0, run(2).0);
}

#[test]
fn channel_classification_separates_protocol_stacks() {
    for (id, expect_data_proto) in [
        (PlatformId::VrChat, Proto::Udp),
        (PlatformId::Hubs, Proto::Tcp),
    ] {
        let cfg = SessionConfig::walk_and_chat(
            PlatformConfig::of(id),
            2,
            SimDuration::from_secs(25),
            7,
        );
        let r = run_session(&cfg);
        let recs = &r.users[0].ap_records;
        let data =
            channel_records(recs, ChannelKind::Data, r.control_server_node, r.data_server_node);
        let ctl =
            channel_records(recs, ChannelKind::Control, r.control_server_node, r.data_server_node);
        assert!(!data.is_empty() && !ctl.is_empty(), "{id}");
        assert_eq!(ProtocolMix::of(&data).dominant(), Some(expect_data_proto), "{id}");
        assert_eq!(ProtocolMix::of(&ctl).dominant(), Some(Proto::Tcp), "{id} control is HTTPS");
        // Every captured packet belongs to exactly one channel.
        assert_eq!(data.len() + ctl.len(), recs.len(), "{id}");
    }
}

#[test]
fn live_session_traffic_survives_a_pcap_roundtrip() {
    let cfg = SessionConfig::walk_and_chat(
        PlatformConfig::recroom(),
        2,
        SimDuration::from_secs(15),
        3,
    );
    let r = run_session(&cfg);
    let recs = &r.users[0].ap_records;
    assert!(recs.len() > 100);

    // Re-encode the captured metadata as real packets and dump to pcap.
    let mut w = PcapWriter::new(Vec::new()).unwrap();
    for rec in recs {
        let mut hdr = TransportHeader::datagram(rec.flow.proto, rec.flow.src_port, rec.flow.dst_port);
        if rec.flow.proto == Proto::Tcp {
            hdr = TransportHeader::tcp(rec.flow.src_port, rec.flow.dst_port, 0, 0, Default::default());
        }
        let mut pkt = Packet::new(hdr, metaverse_measurement::netsim::buf::Bytes::from(vec![0u8; rec.payload_len as usize]));
        pkt.src = rec.flow.src;
        pkt.dst = rec.flow.dst;
        pkt.id = rec.packet_id;
        w.write_packet(rec.ts, &pkt).unwrap();
    }
    let buf = w.finish().unwrap();
    let back = read_pcap(&buf[..]).unwrap();
    assert_eq!(back.len(), recs.len());
    for (orig, rec) in recs.iter().zip(back.iter()) {
        assert_eq!(rec.ts, orig.ts);
        assert_eq!(rec.frame.payload.len() as u32, orig.payload_len);
        assert_eq!(rec.frame.header.src_port, orig.flow.src_port);
    }
}

#[test]
fn every_platform_survives_a_crowded_session() {
    for id in PlatformId::ALL {
        let cfg = SessionConfig::walk_and_chat(
            PlatformConfig::of(id),
            6,
            SimDuration::from_secs(15),
            9,
        );
        let r = run_session(&cfg);
        assert_eq!(r.users.len(), 6);
        for (i, u) in r.users.iter().enumerate() {
            assert!(
                u.avatar_updates_received > 0,
                "{id}: user {i} received nothing"
            );
            assert!(u.frozen_at.is_none(), "{id}: user {i} froze unexpectedly");
        }
    }
}
