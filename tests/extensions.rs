//! Integration tests for the extension features: scripted playback,
//! voice, the P2P/interest-management ablations, the vantage survey, and
//! TCP integrity under jitter-induced reordering across the full stack.

use metaverse_measurement::core::experiments::{ablations, vantage};
use metaverse_measurement::geo::Site;
use metaverse_measurement::netsim::{
    Impairment, NetemSchedule, NetemStage, SimDuration, SimTime,
};
use metaverse_measurement::platform::autodriver::parse_script;
use metaverse_measurement::platform::session::run_session;
use metaverse_measurement::platform::{Behavior, ChannelKind, PlatformConfig, SessionConfig};
use metaverse_measurement::PlatformId;

#[test]
fn autodriver_script_reproduces_fig6_shape_end_to_end() {
    let script = "\
1  join 0
8  join 1
16 join 2
30 turn 0 180
";
    let mut cfg = SessionConfig::walk_and_chat(
        PlatformConfig::altspace(),
        3,
        SimDuration::from_secs(40),
        5,
    );
    cfg.behaviors = parse_script(script).unwrap();
    let r = run_session(&cfg);
    let data = metaverse_measurement::netsim::capture::by_server(
        &r.users[0].ap_records,
        r.data_server_node,
    );
    let sum_down = |from: u64, to: u64| -> u64 {
        data.iter()
            .filter(|x| {
                x.direction == metaverse_measurement::netsim::capture::Direction::Downlink
                    && x.ts >= SimTime::from_secs(from)
                    && x.ts < SimTime::from_secs(to)
            })
            .map(|x| x.wire_bytes)
            .sum()
    };
    let before = sum_down(24, 30) / 6;
    let after = sum_down(33, 39) / 6;
    // AltspaceVR's downlink has a ~3.75 KB/s world-sync floor; the turn
    // must strip the avatar share (~2.5 KB/s for two visible peers) and
    // leave roughly that floor.
    assert!(
        (after as f64) < before as f64 * 0.75 && after < 4_300,
        "scripted turn engages the viewport optimisation: {before} → {after} B/s"
    );
}

#[test]
fn voice_is_included_in_the_data_channel_totals() {
    // §5.2's method: the paper excludes voice by joining muted; unmuting
    // must raise the data-channel rate by the voice bitrate on a UDP
    // platform.
    let base = SessionConfig::walk_and_chat(
        PlatformConfig::recroom(),
        2,
        SimDuration::from_secs(25),
        6,
    );
    let mut voiced = base.clone();
    voiced.behaviors.push(Behavior::Unmute { user: 0, at: SimTime::from_secs(6) });
    voiced.behaviors.push(Behavior::Unmute { user: 1, at: SimTime::from_secs(6) });
    let muted = run_session(&base);
    let unmuted = run_session(&voiced);
    assert!(
        unmuted.users[0].avatar_updates_received > 100
            && muted.users[0].avatar_updates_received > 100
    );
    let down = |r: &metaverse_measurement::platform::SessionResult| -> u64 {
        metaverse_measurement::netsim::capture::by_server(
            &r.users[0].ap_records,
            r.data_server_node,
        )
        .iter()
        .filter(|x| {
            x.direction == metaverse_measurement::netsim::capture::Direction::Downlink
                && x.ts >= SimTime::from_secs(10)
        })
        .map(|x| x.wire_bytes)
        .sum()
    };
    let extra_kbps = (down(&unmuted) as f64 - down(&muted) as f64) * 8.0 / 15.0 / 1e3;
    assert!(
        (35.0..80.0).contains(&extra_kbps),
        "peer voice adds ~55 Kbps to the downlink, got {extra_kbps:.1}"
    );
}

#[test]
fn vantage_survey_and_p2p_ablation_run_via_facade() {
    let v = vantage::run();
    assert!(v.rtt(PlatformId::Hubs, ChannelKind::Data, Site::London).unwrap() > 100.0);
    let p2p = ablations::p2p_scaling(&ablations::AblationConfig {
        user_counts: vec![2, 5],
        trials: 1,
        duration_s: 20,
        video_mbps: 8.0,
        seed: 9,
    });
    assert!(p2p.points[1].p2p_up_kbps > p2p.points[0].p2p_up_kbps * 2.0);
}

#[test]
fn tcp_stream_survives_jitter_reordering_through_the_full_stack() {
    // Heavy jitter reorders packets in flight; Hubs' avatar stream (TLS
    // over TCP) must still deliver every update in order — exercised
    // end-to-end through netsim, not a unit pipe.
    let mut cfg = SessionConfig::walk_and_chat(
        PlatformConfig::hubs(),
        2,
        SimDuration::from_secs(30),
        11,
    );
    cfg.netem_uplink = Some(NetemSchedule::from_stages(vec![NetemStage {
        start: SimTime::from_secs(8),
        end: SimTime::from_secs(24),
        impairment: Impairment::delay_jitter(
            SimDuration::from_millis(10),
            SimDuration::from_millis(60),
        ),
    }]));
    let r = run_session(&cfg);
    // U2 keeps receiving U1's updates throughout the jitter window.
    assert!(
        r.users[1].avatar_updates_received > 300,
        "updates delivered under reordering: {}",
        r.users[1].avatar_updates_received
    );
    assert!(r.users[0].frozen_at.is_none());
}

#[test]
fn corruption_injection_is_survivable() {
    // smoltcp-style fault injection: 5% single-byte corruption. TCP
    // discards damaged segments (checksum) and retransmits; UDP delivers
    // damage upward where the avatar codec rejects garbage gracefully.
    for id in [PlatformId::VrChat, PlatformId::Hubs] {
        let mut cfg = SessionConfig::walk_and_chat(
            PlatformConfig::of(id),
            2,
            SimDuration::from_secs(25),
            13,
        );
        cfg.netem_uplink = Some(NetemSchedule::from_stages(vec![NetemStage {
            start: SimTime::from_secs(5),
            end: SimTime::from_secs(25),
            impairment: Impairment::corrupt(0.05),
        }]));
        let r = run_session(&cfg);
        assert!(
            r.users[1].avatar_updates_received > 100,
            "{id}: {} updates under corruption",
            r.users[1].avatar_updates_received
        );
    }
}
