//! Smoke tests: every table/figure experiment runs at quick fidelity and
//! renders a non-trivial report — the contract the bench harness and
//! `reproduce_all` example rely on.

use metaverse_measurement::core::experiments::*;
use metaverse_measurement::PlatformId;

fn non_trivial(s: String) -> String {
    assert!(s.lines().count() >= 2, "report too short:\n{s}");
    s
}

#[test]
fn table1_renders() {
    non_trivial(table1::run().to_string());
}

#[test]
fn table2_renders() {
    let s = non_trivial(table2::run(table2::Table2Config::quick()).to_string());
    assert!(s.contains("HTTPS"));
}

#[test]
fn fig2_renders() {
    for rep in fig2::run_all(fig2::Fig2Config::quick()) {
        non_trivial(rep.to_string());
    }
}

#[test]
fn table3_renders() {
    let s = non_trivial(
        table3::run(table3::Table3Config { trials: 1, duration_s: 30, seed: 5 }).to_string(),
    );
    assert!(s.contains("Worlds"));
}

#[test]
fn fig3_renders() {
    non_trivial(fig3::run(PlatformId::RecRoom, fig3::Fig3Config::quick()).to_string());
}

#[test]
fn fig6_renders() {
    let r = fig6::run(
        PlatformId::AltspaceVr,
        fig6::Variant::VisibleThenAway,
        fig6::Fig6Config::quick(),
    );
    non_trivial(r.to_string());
}

#[test]
fn viewport_renders() {
    non_trivial(viewport::run(PlatformId::AltspaceVr, viewport::ViewportConfig::quick()).to_string());
}

#[test]
fn fig7_and_fig8_render() {
    let cfg = fig7::ScalingConfig { user_counts: vec![1, 3], trials: 1, duration_s: 25, seed: 5 };
    non_trivial(fig7::run(PlatformId::VrChat, &cfg).to_string());
    non_trivial(fig8::run(&cfg).to_string());
}

#[test]
fn fig9_renders() {
    non_trivial(fig9::run(&fig9::Fig9Config::quick()).to_string());
}

#[test]
fn table4_renders() {
    let s = non_trivial(table4::run(table4::Table4Config::quick()).to_string());
    assert!(s.contains("Hubs*"));
}

#[test]
fn fig11_renders() {
    let cfg = fig11::Fig11Config { user_counts: vec![2, 3], actions: 4, trials: 1, seed: 5 };
    non_trivial(fig11::run_all(&cfg).to_string());
}

#[test]
fn fig12_renders() {
    non_trivial(fig12::run(&fig12::Fig12Config::quick()).to_string());
}

#[test]
fn fig13_renders() {
    non_trivial(fig13::run_uplink_caps(&fig13::UplinkCapsConfig::quick()).to_string());
    non_trivial(fig13::run_tcp_priority(&fig13::TcpPriorityConfig::quick()).to_string());
}

#[test]
fn disruption_renders() {
    let cfg = disruption::DisruptionConfig {
        latencies_ms: vec![100],
        losses_pct: vec![10.0],
        actions: 4,
        seed: 5,
    };
    non_trivial(disruption::run(PlatformId::Worlds, &cfg).to_string());
}

#[test]
fn ablations_render() {
    let cfg = ablations::AblationConfig {
        user_counts: vec![2, 4],
        trials: 1,
        duration_s: 25,
        video_mbps: 8.0,
        seed: 5,
    };
    non_trivial(ablations::remote_rendering(&cfg).to_string());
    assert_eq!(ablations::embodiment_cost_curve().len(), 6);
}
