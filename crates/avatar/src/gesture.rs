//! Controller-gesture recognition driving facial expressions.
//!
//! §5.2: "only Worlds updates avatars' facial expressions via hand
//! gesture recognition by tracking users' hand motions through the
//! headset's controllers" — Figure 5 shows thumbs-up producing a smile
//! and thumbs-down a frown. [`GestureRecognizer`] classifies a stream of
//! controller samples into gestures and maps them to expressions, which
//! the Worlds platform model folds into its avatar updates (raising the
//! blendshape traffic that gives Worlds its 10× data rate).

use crate::skeleton::Vec3;

/// One controller sample: where the hand is and which way the thumb
/// points (unit vector in room coordinates).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HandSample {
    /// Hand position.
    pub position: Vec3,
    /// Thumb axis direction (unit).
    pub thumb_dir: Vec3,
}

/// A recognised hand gesture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gesture {
    /// Thumb pointing up, hand raised.
    ThumbsUp,
    /// Thumb pointing down.
    ThumbsDown,
    /// Rapid lateral oscillation at shoulder height.
    Wave,
}

/// A facial expression produced by a gesture (Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expression {
    /// Resting face.
    Neutral,
    /// Smile (thumbs-up reaction).
    Smile,
    /// Frown (thumbs-down reaction).
    Frown,
    /// Open-mouth greeting (wave reaction).
    Greeting,
}

impl Gesture {
    /// The expression a recognised gesture triggers.
    pub fn expression(self) -> Expression {
        match self {
            Gesture::ThumbsUp => Expression::Smile,
            Gesture::ThumbsDown => Expression::Frown,
            Gesture::Wave => Expression::Greeting,
        }
    }
}

/// Frames of consistent evidence required before a gesture is reported.
pub const CONFIRM_FRAMES: usize = 5;
/// Vertical thumb-component threshold for thumbs-up/down.
const THUMB_AXIS_THRESHOLD: f32 = 0.8;
/// Minimum hand height for deliberate gestures (metres).
const HAND_RAISED_Y: f32 = 0.9;
/// Lateral speed threshold for wave detection (m/s between samples at
/// the nominal frame interval).
const WAVE_SPEED: f32 = 0.8;
/// Direction changes within the window required for a wave.
const WAVE_REVERSALS: usize = 2;

/// Streaming gesture classifier for one hand.
#[derive(Debug, Default)]
pub struct GestureRecognizer {
    window: Vec<HandSample>,
    last_reported: Option<Gesture>,
}

impl GestureRecognizer {
    /// Create an empty recognizer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed one sample (call at the tracking rate, e.g. 30-70 Hz).
    /// Returns a gesture when newly recognised. The same gesture is not
    /// re-reported until the hand leaves the gesture posture.
    pub fn feed(&mut self, sample: HandSample) -> Option<Gesture> {
        self.window.push(sample);
        let cap = CONFIRM_FRAMES.max(8);
        if self.window.len() > cap {
            self.window.remove(0);
        }
        let current = self.classify();
        match current {
            Some(g) if self.last_reported != Some(g) => {
                self.last_reported = Some(g);
                Some(g)
            }
            Some(_) => None,
            None => {
                self.last_reported = None;
                None
            }
        }
    }

    fn classify(&self) -> Option<Gesture> {
        if self.window.len() < CONFIRM_FRAMES {
            return None;
        }
        let recent = &self.window[self.window.len() - CONFIRM_FRAMES..];

        let raised = recent.iter().all(|s| s.position.y >= HAND_RAISED_Y);
        if raised && recent.iter().all(|s| s.thumb_dir.y >= THUMB_AXIS_THRESHOLD) {
            return Some(Gesture::ThumbsUp);
        }
        if recent.iter().all(|s| s.thumb_dir.y <= -THUMB_AXIS_THRESHOLD) {
            return Some(Gesture::ThumbsDown);
        }

        // Wave: raised hand with fast lateral motion that reverses.
        if raised {
            let mut reversals = 0;
            let mut prev_sign = 0i8;
            let mut fast = true;
            for w in recent.windows(2) {
                let dx = w[1].position.x - w[0].position.x;
                if dx.abs() < WAVE_SPEED / 70.0 {
                    fast = false;
                }
                let sign = if dx > 0.0 { 1 } else { -1 };
                if prev_sign != 0 && sign != prev_sign {
                    reversals += 1;
                }
                prev_sign = sign;
            }
            if fast && reversals >= WAVE_REVERSALS {
                return Some(Gesture::Wave);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn up_sample() -> HandSample {
        HandSample { position: Vec3::new(0.3, 1.2, 0.4), thumb_dir: Vec3::new(0.0, 1.0, 0.0) }
    }

    fn down_sample() -> HandSample {
        HandSample { position: Vec3::new(0.3, 0.7, 0.4), thumb_dir: Vec3::new(0.0, -1.0, 0.0) }
    }

    fn neutral_sample() -> HandSample {
        HandSample { position: Vec3::new(0.3, 0.8, 0.4), thumb_dir: Vec3::new(1.0, 0.0, 0.0) }
    }

    #[test]
    fn thumbs_up_recognised_after_confirm_frames() {
        let mut r = GestureRecognizer::new();
        for i in 0..CONFIRM_FRAMES - 1 {
            assert_eq!(r.feed(up_sample()), None, "frame {i}");
        }
        assert_eq!(r.feed(up_sample()), Some(Gesture::ThumbsUp));
        assert_eq!(Gesture::ThumbsUp.expression(), Expression::Smile);
    }

    #[test]
    fn thumbs_down_recognised_even_lowered() {
        let mut r = GestureRecognizer::new();
        let mut got = None;
        for _ in 0..CONFIRM_FRAMES {
            got = r.feed(down_sample()).or(got);
        }
        assert_eq!(got, Some(Gesture::ThumbsDown));
        assert_eq!(Gesture::ThumbsDown.expression(), Expression::Frown);
    }

    #[test]
    fn gesture_not_rereported_while_held() {
        let mut r = GestureRecognizer::new();
        let mut reports = 0;
        for _ in 0..30 {
            if r.feed(up_sample()).is_some() {
                reports += 1;
            }
        }
        assert_eq!(reports, 1, "held gesture fires once");
        // Release, then repeat: fires again.
        for _ in 0..8 {
            assert_eq!(r.feed(neutral_sample()), None);
        }
        let mut again = 0;
        for _ in 0..10 {
            if r.feed(up_sample()).is_some() {
                again += 1;
            }
        }
        assert_eq!(again, 1);
    }

    #[test]
    fn jittery_thumb_not_recognised() {
        let mut r = GestureRecognizer::new();
        for i in 0..20 {
            let s = if i % 2 == 0 { up_sample() } else { neutral_sample() };
            assert_eq!(r.feed(s), None, "alternating frames never confirm");
        }
    }

    #[test]
    fn wave_recognised_from_lateral_oscillation() {
        let mut r = GestureRecognizer::new();
        let mut got = None;
        for i in 0..20 {
            // ±8 cm swings per frame at shoulder height.
            let x = if i % 2 == 0 { 0.2 } else { 0.28 };
            let s = HandSample {
                position: Vec3::new(x, 1.3, 0.3),
                thumb_dir: Vec3::new(1.0, 0.0, 0.0),
            };
            got = r.feed(s).or(got);
        }
        assert_eq!(got, Some(Gesture::Wave));
        assert_eq!(Gesture::Wave.expression(), Expression::Greeting);
    }

    #[test]
    fn slow_drift_is_not_a_wave() {
        let mut r = GestureRecognizer::new();
        for i in 0..30 {
            let s = HandSample {
                position: Vec3::new(0.2 + i as f32 * 0.001, 1.3, 0.3),
                thumb_dir: Vec3::new(1.0, 0.0, 0.0),
            };
            assert_eq!(r.feed(s), None);
        }
    }

    #[test]
    fn lowered_thumbs_up_not_recognised() {
        // Thumbs-up requires a deliberately raised hand.
        let mut r = GestureRecognizer::new();
        for _ in 0..10 {
            let s = HandSample {
                position: Vec3::new(0.3, 0.4, 0.4),
                thumb_dir: Vec3::new(0.0, 1.0, 0.0),
            };
            assert_eq!(r.feed(s), None);
        }
    }
}
