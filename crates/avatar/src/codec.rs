//! The avatar-update wire format.
//!
//! Every tick, a client serialises its pose with this codec and ships it
//! up the data channel; the server forwards it to other users (§5.1's
//! "simply forward (part of) the data uploaded by one user to others").
//! The byte cost per update is therefore the atom of the paper's
//! throughput analysis.
//!
//! Layout (big-endian):
//!
//! ```text
//! 0        4        8      9         11          12
//! +--------+--------+------+----------+-----------+---------------...
//! | avatar | tick   |flags |joint mask|blendshapes| joint data ...
//! +--------+--------+------+----------+-----------+---------------...
//! ```
//!
//! `flags`: bit 0 = full precision, bit 1 = velocities present. The
//! 16-bit joint mask selects joints in [`Joint::ALL`] order, so joint ids
//! never travel on the wire.

use crate::embodiment::{Embodiment, Precision};
use crate::quant;
use crate::skeleton::{Joint, JointPose, Pose, Quat, Vec3};
use svr_netsim::buf::{Bytes, BytesMut};

/// Fixed header length.
pub const HEADER_LEN: usize = 12;

/// An avatar state update.
#[derive(Debug, Clone, PartialEq)]
pub struct AvatarUpdate {
    /// Sender's avatar id.
    pub avatar_id: u32,
    /// Sender tick counter.
    pub tick: u32,
    /// The pose (joints present must match the embodiment's joint set).
    pub pose: Pose,
    /// Per-joint velocities, aligned with `pose.joints` (empty if the
    /// embodiment does not send velocities).
    pub velocities: Vec<Vec3>,
    /// Codec precision used.
    pub precision: Precision,
}

/// Bytes of one encoded update for an embodiment (codec payload only,
/// excluding channel/transport headers).
pub fn update_payload_size(e: &Embodiment) -> usize {
    let per_joint = match e.precision {
        Precision::Quantized => 10 + if e.velocities { 6 } else { 0 },
        Precision::Full => 28 + if e.velocities { 12 } else { 0 },
    };
    let per_blend = match e.precision {
        Precision::Quantized => 1,
        Precision::Full => 4,
    };
    HEADER_LEN + e.joints.len() * per_joint + e.blendshapes * per_blend
}

/// Same as [`update_payload_size`] — retained as the public name used by
/// the platform layer when computing wire budgets.
pub fn update_wire_size(e: &Embodiment) -> usize {
    update_payload_size(e)
}

fn joint_mask(joints: &[Joint]) -> u16 {
    let mut mask = 0u16;
    for j in joints {
        let idx = Joint::ALL.iter().position(|x| x == j).expect("known joint");
        mask |= 1 << idx;
    }
    mask
}

/// Encode an update. Panics if the pose's joints disagree with the
/// declared embodiment-style fields (a caller bug).
pub fn encode_update(u: &AvatarUpdate) -> Bytes {
    let velocities = !u.velocities.is_empty();
    if velocities {
        assert_eq!(u.velocities.len(), u.pose.joints.len(), "velocity per joint");
    }
    let full = u.precision == Precision::Full;
    let mut buf = BytesMut::new();
    buf.put_u32(u.avatar_id);
    buf.put_u32(u.tick);
    buf.put_u8((full as u8) | (velocities as u8) << 1);
    buf.put_u16(joint_mask(&u.pose.joints.iter().map(|(j, _)| *j).collect::<Vec<_>>()));
    buf.put_u8(u.pose.blendshapes.len() as u8);

    for (i, (_, jp)) in u.pose.joints.iter().enumerate() {
        if full {
            buf.put_f32(jp.position.x);
            buf.put_f32(jp.position.y);
            buf.put_f32(jp.position.z);
            buf.put_f32(jp.rotation.x);
            buf.put_f32(jp.rotation.y);
            buf.put_f32(jp.rotation.z);
            buf.put_f32(jp.rotation.w);
        } else {
            for q in quant::quantize_pos(jp.position) {
                buf.put_u16(q);
            }
            buf.put_u32(quant::quantize_quat(jp.rotation));
        }
        if velocities {
            let v = u.velocities[i];
            if full {
                buf.put_f32(v.x);
                buf.put_f32(v.y);
                buf.put_f32(v.z);
            } else {
                // mm/s in i16: ±32 m/s is far beyond human motion.
                buf.put_i16((v.x * 1000.0).clamp(-32_000.0, 32_000.0) as i16);
                buf.put_i16((v.y * 1000.0).clamp(-32_000.0, 32_000.0) as i16);
                buf.put_i16((v.z * 1000.0).clamp(-32_000.0, 32_000.0) as i16);
            }
        }
    }
    for w in &u.pose.blendshapes {
        if full {
            buf.put_f32(*w);
        } else {
            buf.put_u8(quant::quantize_weight(*w));
        }
    }
    buf.freeze()
}

/// Decoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Buffer ended before the declared content.
    Truncated,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "truncated avatar update")
    }
}

impl std::error::Error for CodecError {}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.pos + n > self.data.len() {
            return Err(CodecError::Truncated);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, CodecError> {
        let s = self.take(2)?;
        Ok(u16::from_be_bytes([s[0], s[1]]))
    }
    fn i16(&mut self) -> Result<i16, CodecError> {
        let s = self.take(2)?;
        Ok(i16::from_be_bytes([s[0], s[1]]))
    }
    fn u32(&mut self) -> Result<u32, CodecError> {
        let s = self.take(4)?;
        Ok(u32::from_be_bytes([s[0], s[1], s[2], s[3]]))
    }
    fn f32(&mut self) -> Result<f32, CodecError> {
        Ok(f32::from_bits(self.u32()?))
    }
}

/// Decode an update.
pub fn decode_update(data: &[u8]) -> Result<AvatarUpdate, CodecError> {
    let mut r = Reader { data, pos: 0 };
    let avatar_id = r.u32()?;
    let tick = r.u32()?;
    let flags = r.u8()?;
    let mask = r.u16()?;
    let n_blend = r.u8()? as usize;
    let full = flags & 1 != 0;
    let has_vel = flags & 2 != 0;

    let mut joints = Vec::new();
    let mut velocities = Vec::new();
    for (idx, joint) in Joint::ALL.iter().enumerate() {
        if mask & (1 << idx) == 0 {
            continue;
        }
        let (position, rotation) = if full {
            let p = Vec3::new(r.f32()?, r.f32()?, r.f32()?);
            let q = Quat { x: r.f32()?, y: r.f32()?, z: r.f32()?, w: r.f32()? };
            (p, q)
        } else {
            let p = quant::dequantize_pos([r.u16()?, r.u16()?, r.u16()?]);
            let q = quant::dequantize_quat(r.u32()?);
            (p, q)
        };
        joints.push((*joint, JointPose { position, rotation }));
        if has_vel {
            let v = if full {
                Vec3::new(r.f32()?, r.f32()?, r.f32()?)
            } else {
                Vec3::new(
                    r.i16()? as f32 / 1000.0,
                    r.i16()? as f32 / 1000.0,
                    r.i16()? as f32 / 1000.0,
                )
            };
            velocities.push(v);
        }
    }
    let mut blendshapes = Vec::with_capacity(n_blend);
    for _ in 0..n_blend {
        blendshapes.push(if full { r.f32()? } else { quant::dequantize_weight(r.u8()?) });
    }

    Ok(AvatarUpdate {
        avatar_id,
        tick,
        pose: Pose { joints, blendshapes },
        velocities,
        precision: if full { Precision::Full } else { Precision::Quantized },
    })
}

/// Build an update for a pose under an embodiment profile.
pub fn make_update(avatar_id: u32, tick: u32, e: &Embodiment, pose: Pose, velocities: Vec<Vec3>) -> AvatarUpdate {
    let velocities = if e.velocities {
        if velocities.is_empty() {
            vec![Vec3::ZERO; pose.joints.len()]
        } else {
            velocities
        }
    } else {
        Vec::new()
    };
    AvatarUpdate { avatar_id, tick, pose, velocities, precision: e.precision }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_pose(e: &Embodiment) -> Pose {
        let mut pose = Pose::rest(&e.joints, e.blendshapes);
        for (i, (_, jp)) in pose.joints.iter_mut().enumerate() {
            jp.position = Vec3::new(i as f32 * 0.3 - 2.0, 1.2 + i as f32 * 0.05, 0.5);
            jp.rotation = Quat::from_yaw(i as f32 * 0.4);
        }
        for (i, w) in pose.blendshapes.iter_mut().enumerate() {
            *w = (i as f32 / 10.0).min(1.0);
        }
        pose
    }

    #[test]
    fn encoded_size_matches_prediction_for_all_profiles() {
        for e in [
            Embodiment::upper_torso_no_face(),
            Embodiment::upper_torso_hands_no_face(),
            Embodiment::upper_torso_simple_face(),
            Embodiment::full_body_cartoon(),
            Embodiment::human_like(),
            Embodiment::photorealistic(),
        ] {
            let u = make_update(1, 0, &e, sample_pose(&e), Vec::new());
            let bytes = encode_update(&u);
            assert_eq!(bytes.len(), update_payload_size(&e), "profile {}", e.name);
        }
    }

    #[test]
    fn quantized_roundtrip_preserves_pose_within_error() {
        let e = Embodiment::full_body_cartoon();
        let u = make_update(42, 7, &e, sample_pose(&e), Vec::new());
        let dec = decode_update(&encode_update(&u)).unwrap();
        assert_eq!(dec.avatar_id, 42);
        assert_eq!(dec.tick, 7);
        assert_eq!(dec.pose.joints.len(), u.pose.joints.len());
        for ((j1, p1), (j2, p2)) in u.pose.joints.iter().zip(dec.pose.joints.iter()) {
            assert_eq!(j1, j2);
            assert!(p1.position.distance(p2.position) < 0.003, "joint {j1:?}");
            assert!(p1.rotation.angle_to(p2.rotation) < 0.01);
        }
        for (w1, w2) in u.pose.blendshapes.iter().zip(dec.pose.blendshapes.iter()) {
            assert!((w1 - w2).abs() < 0.005);
        }
    }

    #[test]
    fn full_precision_roundtrip_is_exact() {
        let e = Embodiment::human_like();
        let mut vel = Vec::new();
        for i in 0..e.joints.len() {
            vel.push(Vec3::new(0.1 * i as f32, -0.2, 0.05));
        }
        let u = make_update(9, 100, &e, sample_pose(&e), vel.clone());
        let dec = decode_update(&encode_update(&u)).unwrap();
        assert_eq!(dec.pose, u.pose);
        assert_eq!(dec.velocities, vel);
        assert_eq!(dec.precision, Precision::Full);
    }

    #[test]
    fn velocities_survive_quantized_roundtrip() {
        let e = Embodiment::upper_torso_simple_face();
        let vel: Vec<Vec3> =
            (0..e.joints.len()).map(|i| Vec3::new(0.5 * i as f32, 1.5, -0.25)).collect();
        let u = make_update(1, 1, &e, sample_pose(&e), vel.clone());
        let dec = decode_update(&encode_update(&u)).unwrap();
        for (a, b) in vel.iter().zip(dec.velocities.iter()) {
            assert!(a.distance(*b) < 0.002, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn truncated_update_rejected() {
        let e = Embodiment::human_like();
        let u = make_update(1, 1, &e, sample_pose(&e), Vec::new());
        let bytes = encode_update(&u);
        for cut in [0, 5, HEADER_LEN, bytes.len() - 1] {
            assert_eq!(decode_update(&bytes[..cut]), Err(CodecError::Truncated), "cut {cut}");
        }
    }

    #[test]
    fn make_update_fills_zero_velocities_when_profile_requires() {
        let e = Embodiment::human_like();
        let u = make_update(1, 1, &e, sample_pose(&e), Vec::new());
        assert_eq!(u.velocities.len(), e.joints.len());
        let e2 = Embodiment::upper_torso_no_face();
        let u2 = make_update(1, 1, &e2, sample_pose(&e2), Vec::new());
        assert!(u2.velocities.is_empty());
    }

    /// Deterministic seeded-loop fallbacks for the proptest versions below:
    /// always compiled, so the properties stay covered offline.
    #[test]
    fn prop_decode_never_panics_on_garbage_seeded() {
        let mut rng = svr_netsim::SimRng::seed_from_u64(0xC0DE_0001);
        for _case in 0..512 {
            let data: Vec<u8> = (0..rng.range_u64(0, 255))
                .map(|_| rng.range_u64(0, 255) as u8)
                .collect();
            let _ = decode_update(&data);
        }
    }

    #[test]
    fn prop_roundtrip_id_and_tick_seeded() {
        let mut rng = svr_netsim::SimRng::seed_from_u64(0xC0DE_0002);
        for _case in 0..64 {
            let id = rng.range_u64(0, u32::MAX as u64) as u32;
            let tick = rng.range_u64(0, u32::MAX as u64) as u32;
            let e = Embodiment::upper_torso_no_face();
            let u = make_update(id, tick, &e, sample_pose(&e), Vec::new());
            let dec = decode_update(&encode_update(&u)).unwrap();
            assert_eq!(dec.avatar_id, id);
            assert_eq!(dec.tick, tick);
        }
    }

    #[cfg(feature = "proptests")]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prop_decode_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..256)) {
                let _ = decode_update(&data);
            }

            #[test]
            fn prop_roundtrip_id_and_tick(id in any::<u32>(), tick in any::<u32>()) {
                let e = Embodiment::upper_torso_no_face();
                let u = make_update(id, tick, &e, sample_pose(&e), Vec::new());
                let dec = decode_update(&encode_update(&u)).unwrap();
                prop_assert_eq!(dec.avatar_id, id);
                prop_assert_eq!(dec.tick, tick);
            }
        }
    }
}
