//! Two-bone inverse kinematics.
//!
//! The paper notes that avatars lack arms and legs "due to the lack of
//! capture devices for modeling the lower limbs", and that the future
//! Metaverse should "recreate the full-body motion via kinematics"
//! (Implication 2). This module implements the standard analytic two-bone
//! IK solver that infers an elbow (or knee) from the tracked endpoints —
//! the building block of that extension, used by the "better embodiment"
//! ablation to upgrade three-point tracking into full-arm poses.

use crate::skeleton::Vec3;

/// Result of a two-bone IK solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IkSolution {
    /// Inferred middle-joint (elbow/knee) position.
    pub mid: Vec3,
    /// Effector position actually reached (equals the target when
    /// reachable, else the closest point on the reachable sphere).
    pub effector: Vec3,
    /// Whether the target was within reach.
    pub reachable: bool,
}

/// Solve a two-bone chain.
///
/// * `root` — fixed joint (shoulder / hip)
/// * `target` — desired effector position (hand / foot)
/// * `len_a` — upper bone length (root→mid)
/// * `len_b` — lower bone length (mid→effector)
/// * `pole` — bend-direction hint; the middle joint bends toward it
///
/// Degenerate chains (zero-length bones, coincident target) resolve
/// deterministically rather than producing NaNs.
pub fn solve_two_bone(root: Vec3, target: Vec3, len_a: f32, len_b: f32, pole: Vec3) -> IkSolution {
    assert!(len_a > 0.0 && len_b > 0.0, "bone lengths must be positive");
    let to_target = target - root;
    let dist = to_target.length();

    // Coincident target: fold the chain toward the pole.
    if dist < 1e-6 {
        let dir = (pole - root).normalized();
        let dir = if dir == Vec3::ZERO { Vec3::new(1.0, 0.0, 0.0) } else { dir };
        return IkSolution { mid: root + dir * len_a, effector: root, reachable: len_a == len_b };
    }

    let max_reach = len_a + len_b;
    let min_reach = (len_a - len_b).abs();
    let clamped = dist.clamp(min_reach.max(1e-6), max_reach);
    let reachable = (min_reach..=max_reach).contains(&dist);
    let dir = to_target * (1.0 / dist);
    let effector = root + dir * clamped;

    // Law of cosines: distance from root to the mid joint's projection.
    let a = (len_a * len_a - len_b * len_b + clamped * clamped) / (2.0 * clamped);
    let h_sq = (len_a * len_a - a * a).max(0.0);
    let h = h_sq.sqrt();

    // Bend plane: toward the pole, orthogonalised against the chain axis.
    let to_pole = pole - root;
    let bend = (to_pole - dir * to_pole.dot(dir)).normalized();
    let bend = if bend == Vec3::ZERO {
        // Pole collinear with the chain: pick any perpendicular.
        let fallback = if dir.x.abs() < 0.9 { Vec3::new(1.0, 0.0, 0.0) } else { Vec3::new(0.0, 1.0, 0.0) };
        (fallback - dir * fallback.dot(dir)).normalized()
    } else {
        bend
    };

    let mid = root + dir * a + bend * h;
    IkSolution { mid, effector, reachable }
}

/// Infer an elbow from shoulder and hand (the untracked-arm case):
/// anatomical bone lengths, elbow biased downward-outward.
pub fn infer_elbow(shoulder: Vec3, hand: Vec3) -> IkSolution {
    let pole = shoulder + Vec3::new(0.0, -0.5, -0.1);
    solve_two_bone(shoulder, hand, 0.28, 0.26, pole)
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f32 = 1e-3;

    #[test]
    fn reachable_target_is_hit_exactly() {
        let root = Vec3::new(0.0, 1.4, 0.0);
        let target = Vec3::new(0.3, 1.1, 0.2);
        let sol = solve_two_bone(root, target, 0.28, 0.26, root + Vec3::new(0.0, -1.0, 0.0));
        assert!(sol.reachable);
        assert!(sol.effector.distance(target) < EPS);
        // Bone lengths are preserved.
        assert!((sol.mid.distance(root) - 0.28).abs() < EPS);
        assert!((sol.mid.distance(sol.effector) - 0.26).abs() < EPS);
    }

    #[test]
    fn unreachable_target_clamps_to_full_extension() {
        let root = Vec3::ZERO;
        let target = Vec3::new(10.0, 0.0, 0.0);
        let sol = solve_two_bone(root, target, 0.3, 0.3, Vec3::new(0.0, -1.0, 0.0));
        assert!(!sol.reachable);
        assert!((sol.effector.distance(root) - 0.6).abs() < EPS, "full extension");
        // Effector lies on the line to the target.
        assert!(sol.effector.normalized().distance(Vec3::new(1.0, 0.0, 0.0)) < EPS);
    }

    #[test]
    fn too_close_target_clamps_to_min_reach() {
        let root = Vec3::ZERO;
        let target = Vec3::new(0.01, 0.0, 0.0);
        let sol = solve_two_bone(root, target, 0.4, 0.2, Vec3::new(0.0, 1.0, 0.0));
        assert!(!sol.reachable);
        assert!((sol.effector.distance(root) - 0.2).abs() < EPS, "min reach |a-b|");
    }

    #[test]
    fn elbow_bends_toward_pole() {
        let root = Vec3::ZERO;
        let target = Vec3::new(0.4, 0.0, 0.0);
        let down = solve_two_bone(root, target, 0.3, 0.3, Vec3::new(0.0, -1.0, 0.0));
        let up = solve_two_bone(root, target, 0.3, 0.3, Vec3::new(0.0, 1.0, 0.0));
        assert!(down.mid.y < 0.0);
        assert!(up.mid.y > 0.0);
    }

    #[test]
    fn degenerate_cases_do_not_nan() {
        let root = Vec3::new(1.0, 1.0, 1.0);
        // Coincident target.
        let s1 = solve_two_bone(root, root, 0.3, 0.3, root + Vec3::new(0.0, 1.0, 0.0));
        assert!(s1.mid.x.is_finite() && s1.mid.y.is_finite());
        // Pole collinear with chain.
        let s2 = solve_two_bone(root, root + Vec3::new(0.5, 0.0, 0.0), 0.3, 0.3, root + Vec3::new(2.0, 0.0, 0.0));
        assert!(s2.mid.y.is_finite());
        assert!((s2.mid.distance(root) - 0.3).abs() < EPS);
    }

    #[test]
    fn infer_elbow_anatomically_plausible() {
        let shoulder = Vec3::new(0.2, 1.45, 0.0);
        let hand = Vec3::new(0.35, 1.0, 0.25);
        let sol = infer_elbow(shoulder, hand);
        assert!(sol.reachable);
        // Elbow sits below the shoulder and above the hand's lowest reach.
        assert!(sol.mid.y < shoulder.y);
        assert!((sol.mid.distance(shoulder) - 0.28).abs() < EPS);
    }

    /// Deterministic seeded-loop fallbacks for the proptest versions below:
    /// always compiled, so the properties stay covered offline.
    #[test]
    fn prop_bone_lengths_always_preserved_seeded() {
        let mut rng = svr_netsim::SimRng::seed_from_u64(0x1C_0001);
        for _case in 0..256 {
            let tx = rng.range_f64(-1.0, 1.0) as f32;
            let ty = rng.range_f64(-1.0, 1.0) as f32;
            let tz = rng.range_f64(-1.0, 1.0) as f32;
            let la = rng.range_f64(0.1, 0.5) as f32;
            let lb = rng.range_f64(0.1, 0.5) as f32;
            let root = Vec3::ZERO;
            let sol =
                solve_two_bone(root, Vec3::new(tx, ty, tz), la, lb, Vec3::new(0.0, -1.0, 0.0));
            assert!((sol.mid.distance(root) - la).abs() < 1e-2);
            assert!((sol.mid.distance(sol.effector) - lb).abs() < 1e-2);
            assert!(sol.mid.x.is_finite() && sol.mid.y.is_finite() && sol.mid.z.is_finite());
        }
    }

    #[test]
    fn prop_reachable_iff_within_annulus_seeded() {
        let mut rng = svr_netsim::SimRng::seed_from_u64(0x1C_0002);
        for _case in 0..256 {
            let d = rng.range_f64(0.0, 1.5) as f32;
            let la = rng.range_f64(0.1, 0.5) as f32;
            let lb = rng.range_f64(0.1, 0.5) as f32;
            let root = Vec3::ZERO;
            let target = Vec3::new(d, 0.0, 0.0);
            let sol = solve_two_bone(root, target, la, lb, Vec3::new(0.0, 1.0, 0.0));
            let within = d >= (la - lb).abs() && d <= la + lb;
            if d > 1e-5 {
                assert_eq!(sol.reachable, within);
            }
        }
    }

    #[cfg(feature = "proptests")]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prop_bone_lengths_always_preserved(
                tx in -1.0f32..1.0, ty in -1.0f32..1.0, tz in -1.0f32..1.0,
                la in 0.1f32..0.5, lb in 0.1f32..0.5,
            ) {
                let root = Vec3::ZERO;
                let sol = solve_two_bone(root, Vec3::new(tx, ty, tz), la, lb, Vec3::new(0.0, -1.0, 0.0));
                prop_assert!((sol.mid.distance(root) - la).abs() < 1e-2);
                prop_assert!((sol.mid.distance(sol.effector) - lb).abs() < 1e-2);
                prop_assert!(sol.mid.x.is_finite() && sol.mid.y.is_finite() && sol.mid.z.is_finite());
            }

            #[test]
            fn prop_reachable_iff_within_annulus(
                d in 0.0f32..1.5, la in 0.1f32..0.5, lb in 0.1f32..0.5,
            ) {
                let root = Vec3::ZERO;
                let target = Vec3::new(d, 0.0, 0.0);
                let sol = solve_two_bone(root, target, la, lb, Vec3::new(0.0, 1.0, 0.0));
                let within = d >= (la - lb).abs() && d <= la + lb;
                if d > 1e-5 {
                    prop_assert_eq!(sol.reachable, within);
                }
            }
        }
    }
}
