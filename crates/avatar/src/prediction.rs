//! Dead-reckoning: client-side motion prediction for remote avatars.
//!
//! §8.2 observes that even 20 % packet loss is imperceptible and
//! speculates that "these platforms may compensate for the missing
//! movement data of avatars through methods such as motion prediction."
//! This module is that mechanism: between updates, a remote avatar is
//! extrapolated along its last known velocities; when the next update
//! arrives, the prediction error tells us how visible the gap would have
//! been.

use crate::codec::AvatarUpdate;
use crate::skeleton::{Joint, JointPose, Pose};
use svr_netsim::{SimDuration, SimTime};

/// Tracks one remote avatar and predicts its pose between updates.
#[derive(Debug)]
pub struct DeadReckoner {
    /// Last received update.
    last: Option<(SimTime, AvatarUpdate)>,
    /// Prediction errors measured at each update arrival (metres,
    /// root-position error of the extrapolation vs the truth).
    pub errors_m: Vec<f32>,
    /// Cap on extrapolation: beyond this the avatar freezes instead of
    /// drifting off (standard practice).
    pub max_extrapolation: SimDuration,
}

impl Default for DeadReckoner {
    fn default() -> Self {
        DeadReckoner {
            last: None,
            errors_m: Vec::new(),
            max_extrapolation: SimDuration::from_millis(500),
        }
    }
}

impl DeadReckoner {
    /// Create with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Predicted pose at `now`, extrapolated from the last update.
    pub fn predict(&self, now: SimTime) -> Option<Pose> {
        let (at, update) = self.last.as_ref()?;
        let dt = now.saturating_since(*at).min(self.max_extrapolation).as_secs_f64() as f32;
        let mut pose = update.pose.clone();
        if !update.velocities.is_empty() {
            for (i, (_, jp)) in pose.joints.iter_mut().enumerate() {
                if let Some(v) = update.velocities.get(i) {
                    jp.position = jp.position + *v * dt;
                }
            }
        }
        Some(pose)
    }

    /// Ingest a new update, recording how far the prediction had drifted
    /// from the now-known truth.
    pub fn observe(&mut self, now: SimTime, update: AvatarUpdate) {
        if let Some(predicted) = self.predict(now) {
            let truth = update.pose.root_position();
            let pred = predicted.root_position();
            self.errors_m.push(truth.distance(pred));
        }
        self.last = Some((now, update));
    }

    /// Mean prediction error so far, metres.
    pub fn mean_error_m(&self) -> f32 {
        if self.errors_m.is_empty() {
            return 0.0;
        }
        self.errors_m.iter().sum::<f32>() / self.errors_m.len() as f32
    }

    /// 95th-percentile error, metres.
    pub fn p95_error_m(&self) -> f32 {
        if self.errors_m.is_empty() {
            return 0.0;
        }
        let mut sorted = self.errors_m.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        sorted[((sorted.len() - 1) as f32 * 0.95) as usize]
    }

    /// Whether the last update is older than the extrapolation cap (the
    /// avatar appears frozen).
    pub fn is_stale(&self, now: SimTime) -> bool {
        match &self.last {
            Some((at, _)) => now.saturating_since(*at) > self.max_extrapolation,
            None => true,
        }
    }
}

/// Convenience: the root pose of a prediction (for render placement).
pub fn predicted_root(reckoner: &DeadReckoner, now: SimTime) -> Option<JointPose> {
    let pose = reckoner.predict(now)?;
    pose.joint(Joint::Root).or_else(|| pose.joint(Joint::Head)).copied()
}

/// Perceptibility heuristic: a positional pop under ~12 cm between
/// consecutive frames is hard to notice on today's rough avatars (§8.2's
/// "users may not be able to perceive the difference").
pub const PERCEPTIBLE_POP_M: f32 = 0.12;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::make_update;
    use crate::embodiment::Embodiment;
    use crate::motion::MotionState;
    use crate::skeleton::Vec3;

    fn walking_updates(
        hz: f64,
        seconds: f64,
        drop: impl Fn(usize) -> bool,
    ) -> (DeadReckoner, usize) {
        let e = Embodiment::upper_torso_simple_face(); // sends velocities
        let mut m = MotionState::new(3, Vec3::ZERO, 0.0);
        m.walk_to(Vec3::new(50.0, 0.0, 0.0));
        let mut r = DeadReckoner::new();
        let dt = 1.0 / hz;
        let mut dropped = 0;
        let steps = (seconds * hz) as usize;
        for k in 0..steps {
            let (pose, vel) = m.step(dt, &e);
            let update = make_update(1, k as u32, &e, pose, vel);
            let now = SimTime::from_micros((k as f64 * dt * 1e6) as u64);
            if drop(k) {
                dropped += 1;
                continue;
            }
            r.observe(now, update);
        }
        (r, dropped)
    }

    #[test]
    fn lossless_stream_has_tiny_error() {
        let (r, _) = walking_updates(28.0, 5.0, |_| false);
        assert!(r.mean_error_m() < 0.02, "mean error {}", r.mean_error_m());
    }

    #[test]
    fn twenty_percent_loss_stays_imperceptible() {
        // §8.2: users perceive nothing even at 20% loss — dead reckoning
        // keeps the positional pops below the perceptibility threshold.
        let (r, dropped) = walking_updates(28.0, 5.0, |k| k % 5 == 4);
        assert!(dropped > 20);
        assert!(
            r.p95_error_m() < PERCEPTIBLE_POP_M,
            "p95 error {} m with 20% loss",
            r.p95_error_m()
        );
    }

    #[test]
    fn error_grows_with_burst_loss() {
        let (light, _) = walking_updates(28.0, 5.0, |k| k % 10 == 9);
        // Burst loss: drop 9 of every 10 (90%).
        let (heavy, _) = walking_updates(28.0, 5.0, |k| k % 10 != 0);
        assert!(heavy.mean_error_m() > light.mean_error_m() * 2.0);
    }

    #[test]
    fn extrapolation_is_capped() {
        let e = Embodiment::upper_torso_simple_face();
        let mut m = MotionState::new(1, Vec3::ZERO, 0.0);
        m.walk_to(Vec3::new(50.0, 0.0, 0.0));
        let (pose, vel) = m.step(0.1, &e);
        let mut r = DeadReckoner::new();
        r.observe(SimTime::ZERO, make_update(1, 0, &e, pose, vel));
        let near = r.predict(SimTime::from_millis(400)).unwrap().root_position();
        let far = r.predict(SimTime::from_secs(30)).unwrap().root_position();
        // Beyond the cap the avatar freezes rather than walking to infinity.
        let capped = r.predict(SimTime::from_millis(500)).unwrap().root_position();
        assert!(far.distance(capped) < 1e-5, "frozen after cap");
        assert!(near.distance(capped) < 0.2);
        assert!(r.is_stale(SimTime::from_secs(30)));
        assert!(!r.is_stale(SimTime::from_millis(100)));
    }

    #[test]
    fn empty_reckoner_behaviour() {
        let r = DeadReckoner::new();
        assert!(r.predict(SimTime::ZERO).is_none());
        assert_eq!(r.mean_error_m(), 0.0);
        assert_eq!(r.p95_error_m(), 0.0);
        assert!(r.is_stale(SimTime::ZERO));
        assert!(predicted_root(&r, SimTime::ZERO).is_none());
    }

    #[test]
    fn updates_without_velocities_predict_last_pose() {
        let e = Embodiment::upper_torso_no_face(); // no velocities
        let mut m = MotionState::new(1, Vec3::ZERO, 0.0);
        m.walk_to(Vec3::new(10.0, 0.0, 0.0));
        let (pose, _) = m.step(0.1, &e);
        let root = pose.root_position();
        let mut r = DeadReckoner::new();
        r.observe(SimTime::ZERO, make_update(1, 0, &e, pose, Vec::new()));
        let pred = r.predict(SimTime::from_millis(300)).unwrap().root_position();
        assert!(pred.distance(root) < 1e-6, "no velocity → hold position");
    }
}
