//! Joints, poses, and the small vector math they need.


/// A 3-component vector (metres, room-local coordinates).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// X (right).
    pub x: f32,
    /// Y (up).
    pub y: f32,
    /// Z (forward).
    pub z: f32,
}

impl Vec3 {
    /// Construct.
    pub const fn new(x: f32, y: f32, z: f32) -> Self {
        Vec3 { x, y, z }
    }

    /// Zero vector.
    pub const ZERO: Vec3 = Vec3::new(0.0, 0.0, 0.0);

    /// Euclidean length.
    pub fn length(self) -> f32 {
        (self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Distance to another point.
    pub fn distance(self, other: Vec3) -> f32 {
        (self - other).length()
    }

    /// Dot product.
    pub fn dot(self, o: Vec3) -> f32 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product.
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    /// Unit vector (zero stays zero).
    pub fn normalized(self) -> Vec3 {
        let l = self.length();
        if l <= f32::EPSILON {
            Vec3::ZERO
        } else {
            self * (1.0 / l)
        }
    }
}

impl std::ops::Add for Vec3 {
    type Output = Vec3;
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl std::ops::Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl std::ops::Mul<f32> for Vec3 {
    type Output = Vec3;
    fn mul(self, k: f32) -> Vec3 {
        Vec3::new(self.x * k, self.y * k, self.z * k)
    }
}

/// A unit quaternion rotation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quat {
    /// x component.
    pub x: f32,
    /// y component.
    pub y: f32,
    /// z component.
    pub z: f32,
    /// w (scalar) component.
    pub w: f32,
}

impl Quat {
    /// Identity rotation.
    pub const IDENTITY: Quat = Quat { x: 0.0, y: 0.0, z: 0.0, w: 1.0 };

    /// Rotation of `angle` radians about the +Y (up) axis.
    pub fn from_yaw(angle: f32) -> Quat {
        let h = angle * 0.5;
        Quat { x: 0.0, y: h.sin(), z: 0.0, w: h.cos() }
    }

    /// Normalise to a unit quaternion.
    pub fn normalized(self) -> Quat {
        let n = (self.x * self.x + self.y * self.y + self.z * self.z + self.w * self.w).sqrt();
        if n <= f32::EPSILON {
            Quat::IDENTITY
        } else {
            Quat { x: self.x / n, y: self.y / n, z: self.z / n, w: self.w / n }
        }
    }

    /// Angular difference to another rotation, in radians.
    pub fn angle_to(self, o: Quat) -> f32 {
        let dot = (self.x * o.x + self.y * o.y + self.z * o.z + self.w * o.w)
            .abs()
            .clamp(0.0, 1.0);
        2.0 * dot.acos()
    }
}

/// A trackable body joint.
///
/// The ordering is the canonical wire order; codecs iterate joint sets in
/// this order so both ends agree without transmitting joint ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Joint {
    /// Avatar root (locomotion position + heading).
    Root,
    /// Hips.
    Hips,
    /// Spine/torso.
    Torso,
    /// Neck.
    Neck,
    /// Head (HMD pose).
    Head,
    /// Left shoulder.
    LeftShoulder,
    /// Left elbow.
    LeftElbow,
    /// Left hand (controller pose).
    LeftHand,
    /// Right shoulder.
    RightShoulder,
    /// Right elbow.
    RightElbow,
    /// Right hand (controller pose).
    RightHand,
    /// Left knee.
    LeftKnee,
    /// Left foot.
    LeftFoot,
    /// Right knee.
    RightKnee,
    /// Right foot.
    RightFoot,
}

impl Joint {
    /// All joints in canonical order.
    pub const ALL: [Joint; 15] = [
        Joint::Root,
        Joint::Hips,
        Joint::Torso,
        Joint::Neck,
        Joint::Head,
        Joint::LeftShoulder,
        Joint::LeftElbow,
        Joint::LeftHand,
        Joint::RightShoulder,
        Joint::RightElbow,
        Joint::RightHand,
        Joint::LeftKnee,
        Joint::LeftFoot,
        Joint::RightKnee,
        Joint::RightFoot,
    ];

    /// Joints actually tracked by hardware (HMD + two controllers); the
    /// rest must be inferred (see [`crate::ik`]), which is why most
    /// platforms ship upper-torso-only avatars (§5.2).
    pub fn hardware_tracked(self) -> bool {
        matches!(self, Joint::Head | Joint::LeftHand | Joint::RightHand)
    }
}

/// Pose of one joint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JointPose {
    /// Position in room-local metres.
    pub position: Vec3,
    /// Orientation.
    pub rotation: Quat,
}

impl Default for JointPose {
    fn default() -> Self {
        JointPose { position: Vec3::ZERO, rotation: Quat::IDENTITY }
    }
}

/// A full avatar pose: positions for a subset of joints plus facial
/// blendshape weights.
#[derive(Debug, Clone, PartialEq)]
pub struct Pose {
    /// `(joint, pose)` pairs in canonical joint order.
    pub joints: Vec<(Joint, JointPose)>,
    /// Facial expression blendshape weights in `[0, 1]`.
    pub blendshapes: Vec<f32>,
}

impl Pose {
    /// A rest pose for the given joints.
    pub fn rest(joints: &[Joint], blendshapes: usize) -> Pose {
        let mut js: Vec<(Joint, JointPose)> =
            joints.iter().map(|j| (*j, JointPose::default())).collect();
        js.sort_by_key(|(j, _)| *j);
        Pose { joints: js, blendshapes: vec![0.0; blendshapes] }
    }

    /// Pose of a specific joint, if present.
    pub fn joint(&self, j: Joint) -> Option<&JointPose> {
        self.joints.iter().find(|(jj, _)| *jj == j).map(|(_, p)| p)
    }

    /// Mutable pose of a specific joint.
    pub fn joint_mut(&mut self, j: Joint) -> Option<&mut JointPose> {
        self.joints.iter_mut().find(|(jj, _)| *jj == j).map(|(_, p)| p)
    }

    /// Root position (falls back to origin when the root is not tracked).
    pub fn root_position(&self) -> Vec3 {
        self.joint(Joint::Root)
            .or_else(|| self.joint(Joint::Head))
            .map(|p| p.position)
            .unwrap_or(Vec3::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec3_algebra() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!((a + b).x, 5.0);
        assert_eq!((b - a).z, 3.0);
        assert_eq!(a.dot(b), 32.0);
        assert!((a.cross(b).dot(a)).abs() < 1e-5, "cross ⊥ a");
        assert!((Vec3::new(3.0, 4.0, 0.0).length() - 5.0).abs() < 1e-6);
        assert!((Vec3::new(10.0, 0.0, 0.0).normalized().length() - 1.0).abs() < 1e-6);
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
    }

    #[test]
    fn quat_yaw_and_angle() {
        let q = Quat::from_yaw(std::f32::consts::FRAC_PI_2);
        let back = Quat::from_yaw(-std::f32::consts::FRAC_PI_2);
        let angle = q.angle_to(back);
        assert!((angle - std::f32::consts::PI).abs() < 1e-3, "angle {angle}");
        assert!(q.angle_to(q) < 1e-3);
        let n = Quat { x: 3.0, y: 0.0, z: 0.0, w: 4.0 }.normalized();
        assert!((n.x - 0.6).abs() < 1e-6 && (n.w - 0.8).abs() < 1e-6);
    }

    #[test]
    fn canonical_order_is_sorted() {
        let mut sorted = Joint::ALL.to_vec();
        sorted.sort();
        assert_eq!(sorted, Joint::ALL.to_vec());
    }

    #[test]
    fn hardware_tracked_joints() {
        assert!(Joint::Head.hardware_tracked());
        assert!(Joint::LeftHand.hardware_tracked());
        assert!(Joint::RightHand.hardware_tracked());
        assert!(!Joint::LeftElbow.hardware_tracked());
        assert!(!Joint::Root.hardware_tracked());
        assert_eq!(Joint::ALL.iter().filter(|j| j.hardware_tracked()).count(), 3);
    }

    #[test]
    fn pose_lookup_and_rest() {
        let pose = Pose::rest(&[Joint::Head, Joint::Root, Joint::LeftHand], 4);
        assert_eq!(pose.joints.len(), 3);
        assert_eq!(pose.blendshapes.len(), 4);
        assert!(pose.joint(Joint::Head).is_some());
        assert!(pose.joint(Joint::RightFoot).is_none());
        // Rest sorts into canonical order regardless of input order.
        assert_eq!(pose.joints[0].0, Joint::Root);
        assert_eq!(pose.root_position(), Vec3::ZERO);
    }

    #[test]
    fn root_position_falls_back_to_head() {
        let mut pose = Pose::rest(&[Joint::Head], 0);
        pose.joint_mut(Joint::Head).unwrap().position = Vec3::new(1.0, 1.7, 2.0);
        assert_eq!(pose.root_position(), Vec3::new(1.0, 1.7, 2.0));
    }
}
