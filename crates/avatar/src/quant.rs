//! Position and rotation quantizers with bounded error.
//!
//! Networked avatar systems quantise poses to cut bandwidth. We use the
//! two standard schemes: 16-bit fixed-point positions over the room
//! bounds, and "smallest-three" rotation packing (drop the largest
//! quaternion component, send the other three at 10 bits each).

use crate::skeleton::{Quat, Vec3};

/// Half-extent of the room coordinate range covered by the position
/// quantizer (±32 m covers any social-VR event space).
pub const POS_RANGE_M: f32 = 32.0;

/// Worst-case position error per axis after a quantise/dequantise trip.
pub const POS_MAX_ERROR_M: f32 = POS_RANGE_M / 65_535.0; // ~1 mm

/// Quantise one coordinate to 16 bits.
pub fn quantize_coord(v: f32) -> u16 {
    let clamped = v.clamp(-POS_RANGE_M, POS_RANGE_M);
    let unit = (clamped + POS_RANGE_M) / (2.0 * POS_RANGE_M); // [0,1]
    (unit * 65_535.0).round() as u16
}

/// Dequantise one coordinate.
pub fn dequantize_coord(q: u16) -> f32 {
    (q as f32 / 65_535.0) * 2.0 * POS_RANGE_M - POS_RANGE_M
}

/// Quantise a position (3 × 16 bits).
pub fn quantize_pos(v: Vec3) -> [u16; 3] {
    [quantize_coord(v.x), quantize_coord(v.y), quantize_coord(v.z)]
}

/// Dequantise a position.
pub fn dequantize_pos(q: [u16; 3]) -> Vec3 {
    Vec3::new(dequantize_coord(q[0]), dequantize_coord(q[1]), dequantize_coord(q[2]))
}

const COMPONENT_BITS: u32 = 10;
const COMPONENT_MAX: f32 = std::f32::consts::FRAC_1_SQRT_2; // |c| ≤ 1/√2 for non-largest

/// Pack a unit quaternion into 32 bits with the smallest-three scheme:
/// 2 bits select the dropped (largest-magnitude) component, 3 × 10 bits
/// carry the rest.
pub fn quantize_quat(q: Quat) -> u32 {
    let q = q.normalized();
    let comps = [q.x, q.y, q.z, q.w];
    let (largest_idx, _) = comps
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
        .unwrap();
    // Canonical sign: make the dropped component non-negative.
    let sign = if comps[largest_idx] < 0.0 { -1.0 } else { 1.0 };
    let mut packed = largest_idx as u32;
    let mut shift = 2;
    for (i, c) in comps.iter().enumerate() {
        if i == largest_idx {
            continue;
        }
        let v = (c * sign).clamp(-COMPONENT_MAX, COMPONENT_MAX);
        let unit = (v / COMPONENT_MAX + 1.0) / 2.0; // [0,1]
        let qv = (unit * ((1 << COMPONENT_BITS) - 1) as f32).round() as u32;
        packed |= qv << shift;
        shift += COMPONENT_BITS;
    }
    packed
}

/// Unpack a smallest-three quaternion.
pub fn dequantize_quat(packed: u32) -> Quat {
    let largest_idx = (packed & 0b11) as usize;
    let mut comps = [0.0f32; 4];
    let mut shift = 2;
    let mut sum_sq = 0.0;
    for (i, slot) in comps.iter_mut().enumerate() {
        if i == largest_idx {
            continue;
        }
        let qv = (packed >> shift) & ((1 << COMPONENT_BITS) - 1);
        let unit = qv as f32 / ((1 << COMPONENT_BITS) - 1) as f32;
        let v = (unit * 2.0 - 1.0) * COMPONENT_MAX;
        *slot = v;
        sum_sq += v * v;
        shift += COMPONENT_BITS;
    }
    comps[largest_idx] = (1.0 - sum_sq).max(0.0).sqrt();
    Quat { x: comps[0], y: comps[1], z: comps[2], w: comps[3] }.normalized()
}

/// Quantise a blendshape weight in `[0, 1]` to a byte.
pub fn quantize_weight(w: f32) -> u8 {
    (w.clamp(0.0, 1.0) * 255.0).round() as u8
}

/// Dequantise a blendshape weight.
pub fn dequantize_weight(b: u8) -> f32 {
    b as f32 / 255.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn position_roundtrip_error_bounded() {
        for v in [-32.0f32, -10.5, -0.001, 0.0, 0.001, 3.375, 31.99] {
            let err = (dequantize_coord(quantize_coord(v)) - v).abs();
            assert!(err <= POS_MAX_ERROR_M, "v={v} err={err}");
        }
    }

    #[test]
    fn out_of_range_positions_clamp() {
        assert_eq!(quantize_coord(1e9), u16::MAX);
        assert_eq!(quantize_coord(-1e9), 0);
        assert!((dequantize_coord(quantize_coord(100.0)) - 32.0).abs() < 1e-3);
    }

    #[test]
    fn quat_roundtrip_small_angle_error() {
        let cases = [
            Quat::IDENTITY,
            Quat::from_yaw(0.5),
            Quat::from_yaw(3.0),
            Quat { x: 0.5, y: 0.5, z: 0.5, w: 0.5 },
            Quat { x: -0.7, y: 0.1, z: 0.1, w: 0.7 }.normalized(),
        ];
        for q in cases {
            let back = dequantize_quat(quantize_quat(q));
            let err = q.angle_to(back);
            assert!(err < 0.01, "angle error {err} rad for {q:?}");
        }
    }

    #[test]
    fn quat_sign_canonicalisation() {
        // q and -q are the same rotation; the codec must treat them alike.
        let q = Quat { x: 0.3, y: -0.4, z: 0.5, w: 0.6 }.normalized();
        let neg = Quat { x: -q.x, y: -q.y, z: -q.z, w: -q.w };
        let a = dequantize_quat(quantize_quat(q));
        let b = dequantize_quat(quantize_quat(neg));
        assert!(a.angle_to(b) < 1e-3);
    }

    #[test]
    fn weight_roundtrip() {
        for w in [0.0f32, 0.25, 0.5, 1.0] {
            let err = (dequantize_weight(quantize_weight(w)) - w).abs();
            assert!(err < 1.0 / 255.0 + 1e-6);
        }
        assert_eq!(quantize_weight(2.0), 255);
        assert_eq!(quantize_weight(-1.0), 0);
    }

    /// Deterministic seeded-loop fallbacks for the proptest versions below:
    /// always compiled, so the properties stay covered offline.
    #[test]
    fn prop_position_roundtrip_seeded() {
        let mut rng = svr_netsim::SimRng::seed_from_u64(0x07A7_0001);
        for _case in 0..256 {
            let v = Vec3::new(
                rng.range_f64(-32.0, 32.0) as f32,
                rng.range_f64(-32.0, 32.0) as f32,
                rng.range_f64(-32.0, 32.0) as f32,
            );
            let back = dequantize_pos(quantize_pos(v));
            assert!(back.distance(v) <= POS_MAX_ERROR_M * 2.0);
        }
    }

    #[test]
    fn prop_quat_roundtrip_seeded() {
        let mut rng = svr_netsim::SimRng::seed_from_u64(0x07A7_0002);
        let mut cases = 0;
        while cases < 256 {
            let x = rng.range_f64(-1.0, 1.0) as f32;
            let y = rng.range_f64(-1.0, 1.0) as f32;
            let z = rng.range_f64(-1.0, 1.0) as f32;
            let w = rng.range_f64(-1.0, 1.0) as f32;
            if x * x + y * y + z * z + w * w <= 0.01 {
                continue;
            }
            cases += 1;
            let q = Quat { x, y, z, w }.normalized();
            let back = dequantize_quat(quantize_quat(q));
            let err = q.angle_to(back);
            assert!(err < 0.01, "error {} rad", err);
        }
    }

    #[test]
    fn prop_quat_decode_is_unit_seeded() {
        let mut rng = svr_netsim::SimRng::seed_from_u64(0x07A7_0003);
        for _case in 0..256 {
            let packed = rng.range_u64(0, u32::MAX as u64) as u32;
            let q = dequantize_quat(packed);
            let n = (q.x * q.x + q.y * q.y + q.z * q.z + q.w * q.w).sqrt();
            assert!((n - 1.0).abs() < 1e-3);
        }
    }

    #[cfg(feature = "proptests")]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prop_position_roundtrip(x in -32.0f32..32.0, y in -32.0f32..32.0, z in -32.0f32..32.0) {
                let v = Vec3::new(x, y, z);
                let back = dequantize_pos(quantize_pos(v));
                prop_assert!(back.distance(v) <= POS_MAX_ERROR_M * 2.0);
            }

            #[test]
            fn prop_quat_roundtrip(
                x in -1.0f32..1.0, y in -1.0f32..1.0, z in -1.0f32..1.0, w in -1.0f32..1.0
            ) {
                prop_assume!(x*x + y*y + z*z + w*w > 0.01);
                let q = Quat { x, y, z, w }.normalized();
                let back = dequantize_quat(quantize_quat(q));
                let err = q.angle_to(back);
                prop_assert!(err < 0.01, "error {} rad", err);
            }

            #[test]
            fn prop_quat_decode_is_unit(packed in any::<u32>()) {
                let q = dequantize_quat(packed);
                let n = (q.x*q.x + q.y*q.y + q.z*q.z + q.w*q.w).sqrt();
                prop_assert!((n - 1.0).abs() < 1e-3);
            }
        }
    }
}
