//! Deterministic avatar motion synthesis.
//!
//! The paper's experiments script user behaviour: "two users walk around
//! and chat" (§5.1), "U1 stands at the center ... then turns around 180°"
//! (§6.1), "users gather at the center" (§6.1 Exp. 2). [`MotionState`]
//! synthesises those behaviours as continuous joint motion, so the avatar
//! codec always has real, changing data to ship — the source of the
//! platforms' continuous traffic.

use crate::embodiment::Embodiment;
use crate::skeleton::{Joint, Pose, Quat, Vec3};
use svr_netsim::SimRng;

/// What the avatar is currently doing.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Mode {
    /// Standing, idle sway only.
    Stand,
    /// Walking toward a target point.
    Walk { target: Vec3 },
}

/// A deterministic motion synthesizer for one avatar.
#[derive(Debug)]
pub struct MotionState {
    /// Root position on the floor plane (y = 0).
    pub position: Vec3,
    /// Viewing/facing direction in degrees, counter-clockwise from +Z.
    pub heading_deg: f32,
    mode: Mode,
    /// If true, pick a new wander target whenever one is reached.
    pub wandering: bool,
    /// If set, the avatar keeps facing this point even while walking —
    /// conversational behaviour ("walk around and chat with each other",
    /// §5.1): bodies move, gazes stay on the group.
    pub face_point: Option<Vec3>,
    phase: f32,
    rng: SimRng,
    bounds: f32,
    walk_speed: f32,
    last_positions: Vec<(Joint, Vec3)>,
}

impl MotionState {
    /// Create an avatar standing at `spawn`, facing `heading_deg`.
    pub fn new(seed: u64, spawn: Vec3, heading_deg: f32) -> Self {
        MotionState {
            position: Vec3::new(spawn.x, 0.0, spawn.z),
            heading_deg: heading_deg.rem_euclid(360.0),
            mode: Mode::Stand,
            wandering: false,
            face_point: None,
            phase: 0.0,
            rng: SimRng::seed_from_u64(seed),
            bounds: 8.0,
            walk_speed: 1.2,
            last_positions: Vec::new(),
        }
    }

    /// Enable continuous wandering within the room bounds.
    pub fn wander(&mut self) {
        self.wandering = true;
        self.pick_target();
    }

    /// Stand still at the current position.
    pub fn stand(&mut self) {
        self.wandering = false;
        self.mode = Mode::Stand;
    }

    /// Instantly rotate by `delta` degrees (the VR-controller snap turn:
    /// AltspaceVR turns 360°/16 = 22.5° per operation, §6.1).
    pub fn turn(&mut self, delta_deg: f32) {
        self.heading_deg = (self.heading_deg + delta_deg).rem_euclid(360.0);
    }

    /// Face a specific heading.
    pub fn set_heading(&mut self, deg: f32) {
        self.heading_deg = deg.rem_euclid(360.0);
    }

    /// Walk to a point (overrides wandering until reached).
    pub fn walk_to(&mut self, target: Vec3) {
        self.mode = Mode::Walk { target: Vec3::new(target.x, 0.0, target.z) };
    }

    /// Keep facing `point` regardless of walk direction (conversational
    /// gaze); `None` restores heading-follows-motion.
    pub fn face_toward(&mut self, point: Option<Vec3>) {
        self.face_point = point;
    }

    /// Restrict wandering to a square of half-extent `half_m` (a chat
    /// circle rather than the whole venue).
    pub fn set_bounds(&mut self, half_m: f32) {
        assert!(half_m > 0.0);
        self.bounds = half_m;
    }

    fn pick_target(&mut self) {
        let b = self.bounds as f64;
        let t = Vec3::new(
            self.rng.range_f64(-b, b) as f32,
            0.0,
            self.rng.range_f64(-b, b) as f32,
        );
        self.mode = Mode::Walk { target: t };
    }

    /// Advance the motion by `dt_s` seconds and synthesise the pose for
    /// the given embodiment. Returns the pose and per-joint velocities.
    pub fn step(&mut self, dt_s: f64, e: &Embodiment) -> (Pose, Vec<Vec3>) {
        let dt = dt_s as f32;
        self.phase += dt * 2.0 * std::f32::consts::PI * 0.9; // ~0.9 Hz gait/sway

        // Locomotion.
        if let Mode::Walk { target } = self.mode {
            let to = target - self.position;
            let dist = to.length();
            let step = self.walk_speed * dt;
            if dist <= step {
                self.position = target;
                if self.wandering {
                    // Dwell decision: occasionally stand for a bit by
                    // picking the current position as the "target".
                    self.pick_target();
                } else {
                    self.mode = Mode::Stand;
                }
            } else {
                let dir = to * (1.0 / dist);
                self.position = self.position + dir * step;
                if self.face_point.is_none() {
                    self.heading_deg = dir.x.atan2(dir.z).to_degrees().rem_euclid(360.0);
                }
            }
        }

        // Conversational gaze overrides locomotion heading.
        if let Some(p) = self.face_point {
            let to = Vec3::new(p.x - self.position.x, 0.0, p.z - self.position.z);
            if to.length() > 1e-3 {
                self.heading_deg = to.x.atan2(to.z).to_degrees().rem_euclid(360.0);
            }
        }

        let yaw = self.heading_deg.to_radians();
        let facing = Quat::from_yaw(yaw);
        let fwd = Vec3::new(yaw.sin(), 0.0, yaw.cos());
        let right = Vec3::new(fwd.z, 0.0, -fwd.x);
        let sway = (self.phase).sin() * 0.02;
        let bob = (self.phase * 2.0).sin() * 0.015;
        let arm_swing = if matches!(self.mode, Mode::Walk { .. }) {
            (self.phase).sin() * 0.25
        } else {
            (self.phase * 0.5).sin() * 0.05
        };

        let mut pose = Pose::rest(&e.joints, e.blendshapes);
        let base = self.position;
        for (joint, jp) in pose.joints.iter_mut() {
            let local = match joint {
                Joint::Root => Vec3::new(0.0, 0.0, 0.0),
                Joint::Hips => Vec3::new(sway, 0.95 + bob, 0.0),
                Joint::Torso => Vec3::new(sway, 1.25 + bob, 0.0),
                Joint::Neck => Vec3::new(sway, 1.5 + bob, 0.0),
                Joint::Head => Vec3::new(sway, 1.65 + bob, 0.0),
                Joint::LeftShoulder => right * -0.2 + Vec3::new(0.0, 1.45 + bob, 0.0),
                Joint::LeftElbow => right * -0.25 + fwd * arm_swing + Vec3::new(0.0, 1.15, 0.0),
                Joint::LeftHand => right * -0.28 + fwd * (arm_swing * 1.6) + Vec3::new(0.0, 0.95, 0.0),
                Joint::RightShoulder => right * 0.2 + Vec3::new(0.0, 1.45 + bob, 0.0),
                Joint::RightElbow => right * 0.25 + fwd * -arm_swing + Vec3::new(0.0, 1.15, 0.0),
                Joint::RightHand => right * 0.28 + fwd * (-arm_swing * 1.6) + Vec3::new(0.0, 0.95, 0.0),
                Joint::LeftKnee => right * -0.1 + fwd * arm_swing + Vec3::new(0.0, 0.5, 0.0),
                Joint::LeftFoot => right * -0.1 + fwd * (arm_swing * 1.2) + Vec3::new(0.0, 0.05, 0.0),
                Joint::RightKnee => right * 0.1 + fwd * -arm_swing + Vec3::new(0.0, 0.5, 0.0),
                Joint::RightFoot => right * 0.1 + fwd * (-arm_swing * 1.2) + Vec3::new(0.0, 0.05, 0.0),
            };
            jp.position = base + local;
            jp.rotation = facing;
        }

        // Velocities from the previous step's positions.
        let mut velocities = Vec::with_capacity(pose.joints.len());
        for (joint, jp) in &pose.joints {
            let prev = self
                .last_positions
                .iter()
                .find(|(j, _)| j == joint)
                .map(|(_, p)| *p)
                .unwrap_or(jp.position);
            let v = if dt > 0.0 { (jp.position - prev) * (1.0 / dt) } else { Vec3::ZERO };
            velocities.push(v);
        }
        self.last_positions = pose.joints.iter().map(|(j, p)| (*j, p.position)).collect();

        (pose, velocities)
    }
}

/// Whether a point at `other` lies within a viewer's horizontal viewport
/// of `width_deg` degrees centred on `heading_deg` — the geometry behind
/// AltspaceVR's viewport-adaptive optimisation (§6.1, ~150° wide).
pub fn in_viewport(viewer_pos: Vec3, heading_deg: f32, width_deg: f32, other: Vec3) -> bool {
    let to = Vec3::new(other.x - viewer_pos.x, 0.0, other.z - viewer_pos.z);
    if to.length() < 1e-4 {
        return true; // coincident: always "visible"
    }
    let bearing = to.x.atan2(to.z).to_degrees().rem_euclid(360.0);
    let mut diff = (bearing - heading_deg.rem_euclid(360.0)).abs();
    if diff > 180.0 {
        diff = 360.0 - diff;
    }
    diff <= width_deg / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emb() -> Embodiment {
        Embodiment::full_body_cartoon()
    }

    #[test]
    fn standing_avatar_sways_but_stays_put() {
        let mut m = MotionState::new(1, Vec3::new(2.0, 0.0, 3.0), 0.0);
        let (p1, _) = m.step(0.1, &emb());
        for _ in 0..50 {
            m.step(0.1, &emb());
        }
        let (p2, _) = m.step(0.1, &emb());
        assert!(m.position.distance(Vec3::new(2.0, 0.0, 3.0)) < 1e-4);
        // But the pose itself moves (sway/bob): continuous data to send.
        let h1 = p1.joint(Joint::Head).unwrap().position;
        let h2 = p2.joint(Joint::Head).unwrap().position;
        assert!(h1.distance(h2) > 1e-5, "idle sway produces motion");
    }

    #[test]
    fn walking_reaches_target() {
        let mut m = MotionState::new(2, Vec3::ZERO, 0.0);
        m.walk_to(Vec3::new(3.0, 0.0, 4.0)); // 5 m away
        let mut t = 0.0;
        while t < 10.0 {
            m.step(0.05, &emb());
            t += 0.05;
        }
        assert!(m.position.distance(Vec3::new(3.0, 0.0, 4.0)) < 0.01);
        // ~5 m at 1.2 m/s ≈ 4.2 s; confirm it didn't teleport by checking
        // heading pointed toward the target while walking.
        let mut m2 = MotionState::new(2, Vec3::ZERO, 0.0);
        m2.walk_to(Vec3::new(3.0, 0.0, 4.0));
        m2.step(0.05, &emb());
        let expected = (3.0f32).atan2(4.0).to_degrees();
        assert!((m2.heading_deg - expected).abs() < 1.0);
    }

    #[test]
    fn snap_turns_accumulate_like_altspace_controller() {
        // 16 snap turns of 22.5° = full circle (§6.1).
        let mut m = MotionState::new(3, Vec3::ZERO, 90.0);
        for _ in 0..16 {
            m.turn(22.5);
        }
        assert!((m.heading_deg - 90.0).abs() < 1e-3);
        m.turn(180.0);
        assert!((m.heading_deg - 270.0).abs() < 1e-3);
    }

    #[test]
    fn velocities_reflect_walking_speed() {
        let mut m = MotionState::new(4, Vec3::ZERO, 0.0);
        m.walk_to(Vec3::new(0.0, 0.0, 10.0));
        m.step(0.1, &emb());
        let (_, vel) = m.step(0.1, &emb());
        // Root velocity magnitude ≈ walk speed.
        let root_v = vel[0].length();
        assert!((root_v - 1.2).abs() < 0.2, "root velocity {root_v}");
    }

    #[test]
    fn wander_stays_in_bounds() {
        let mut m = MotionState::new(5, Vec3::ZERO, 0.0);
        m.wander();
        for _ in 0..5000 {
            m.step(0.05, &emb());
            assert!(m.position.x.abs() <= 8.5 && m.position.z.abs() <= 8.5);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut m = MotionState::new(seed, Vec3::ZERO, 0.0);
            m.wander();
            for _ in 0..200 {
                m.step(0.05, &emb());
            }
            (m.position, m.heading_deg)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).0.distance(run(8).0), 0.0);
    }

    #[test]
    fn conversational_gaze_holds_while_walking() {
        let mut m = MotionState::new(9, Vec3::new(3.0, 0.0, 0.0), 0.0);
        m.face_toward(Some(Vec3::ZERO));
        m.walk_to(Vec3::new(3.0, 0.0, 4.0));
        for _ in 0..20 {
            m.step(0.05, &emb());
            // Bearing to the origin from wherever we are.
            let expect = (-m.position.x).atan2(-m.position.z).to_degrees().rem_euclid(360.0);
            let mut diff = (m.heading_deg - expect).abs();
            if diff > 180.0 {
                diff = 360.0 - diff;
            }
            assert!(diff < 1.0, "gaze {} vs bearing {expect}", m.heading_deg);
        }
        // Releasing the gaze restores motion-driven heading.
        m.face_toward(None);
        m.walk_to(Vec3::new(3.0, 0.0, 40.0));
        m.step(0.5, &emb());
        assert!((m.heading_deg - 0.0).abs() < 5.0 || (m.heading_deg - 360.0).abs() < 5.0);
    }

    #[test]
    fn bounds_can_shrink_the_wander_area() {
        let mut m = MotionState::new(10, Vec3::ZERO, 0.0);
        m.set_bounds(2.0);
        m.wander();
        for _ in 0..3000 {
            m.step(0.05, &emb());
            assert!(m.position.x.abs() <= 2.1 && m.position.z.abs() <= 2.1);
        }
    }

    #[test]
    fn viewport_membership_basic() {
        let viewer = Vec3::ZERO;
        // Facing +Z (heading 0), 150° viewport.
        assert!(in_viewport(viewer, 0.0, 150.0, Vec3::new(0.0, 0.0, 5.0)));
        assert!(in_viewport(viewer, 0.0, 150.0, Vec3::new(4.0, 0.0, 4.0))); // 45°
        assert!(!in_viewport(viewer, 0.0, 150.0, Vec3::new(0.0, 0.0, -5.0))); // behind
        assert!(!in_viewport(viewer, 0.0, 150.0, Vec3::new(5.0, 0.0, -0.5))); // ~96°
        // Coincident points are visible.
        assert!(in_viewport(viewer, 0.0, 150.0, viewer));
    }

    #[test]
    fn viewport_wraps_around_north() {
        let viewer = Vec3::ZERO;
        // Heading 350°, target at bearing 5°: angular diff 15°.
        let target = Vec3::new((5.0f32).to_radians().sin() * 3.0, 0.0, (5.0f32).to_radians().cos() * 3.0);
        assert!(in_viewport(viewer, 350.0, 60.0, target));
        assert!(!in_viewport(viewer, 180.0, 60.0, target));
    }

    #[test]
    fn turning_180_removes_formerly_visible_avatars() {
        // The §6.1 experiment: others visible, then U1 turns 180°.
        let viewer = Vec3::ZERO;
        let others = [Vec3::new(1.0, 0.0, 3.0), Vec3::new(-2.0, 0.0, 4.0)];
        for o in others {
            assert!(in_viewport(viewer, 0.0, 150.0, o));
            assert!(!in_viewport(viewer, 180.0, 150.0, o));
        }
    }

    /// Deterministic seeded-loop fallback for the proptest version below:
    /// always compiled, so the property stays covered offline.
    #[test]
    fn prop_viewport_width_monotone_seeded() {
        let mut rng = svr_netsim::SimRng::seed_from_u64(0x0170_0001);
        let mut cases = 0;
        while cases < 256 {
            let heading = rng.range_f64(0.0, 360.0) as f32;
            let bx = rng.range_f64(-10.0, 10.0) as f32;
            let bz = rng.range_f64(-10.0, 10.0) as f32;
            if bx.abs() <= 0.01 && bz.abs() <= 0.01 {
                continue;
            }
            cases += 1;
            let p = Vec3::new(bx, 0.0, bz);
            // Anything visible at width w is visible at any wider width.
            for w in [30.0f32, 90.0, 150.0, 250.0] {
                if in_viewport(Vec3::ZERO, heading, w, p) {
                    assert!(in_viewport(Vec3::ZERO, heading, w + 50.0, p));
                }
            }
            // A 360° viewport sees everything.
            assert!(in_viewport(Vec3::ZERO, heading, 360.0, p));
        }
    }

    #[cfg(feature = "proptests")]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prop_viewport_width_monotone(
                heading in 0.0f32..360.0,
                bx in -10.0f32..10.0,
                bz in -10.0f32..10.0,
            ) {
                prop_assume!(bx.abs() > 0.01 || bz.abs() > 0.01);
                let p = Vec3::new(bx, 0.0, bz);
                // Anything visible at width w is visible at any wider width.
                for w in [30.0f32, 90.0, 150.0, 250.0] {
                    if in_viewport(Vec3::ZERO, heading, w, p) {
                        prop_assert!(in_viewport(Vec3::ZERO, heading, w + 50.0, p));
                    }
                }
                // A 360° viewport sees everything.
                prop_assert!(in_viewport(Vec3::ZERO, heading, 360.0, p));
            }
        }
    }
}
