//! # svr-avatar
//!
//! The avatar-embodiment substrate for the social-VR platform models.
//!
//! §5.2 of the paper shows that avatar embodiment and motion dominate the
//! platforms' continuous traffic, and that the *complexity* of the
//! embodiment (arms? facial expressions? human-like?) is the dominating
//! factor in per-avatar throughput. This crate makes that relationship
//! mechanical: each platform's embodiment selects a joint set, facial
//! blendshape count, and codec precision; the wire codec then yields the
//! honest byte cost of every pose update.
//!
//! Modules:
//!
//! * [`skeleton`] — joints and poses;
//! * [`embodiment`] — per-platform embodiment profiles (Table 1 / Fig. 4);
//! * [`quant`] — position/rotation quantizers with bounded error;
//! * [`codec`] — the pose wire format (quantized or full-precision);
//! * [`motion`] — deterministic motion synthesis (idle, walk, turn);
//! * [`gesture`] — controller-gesture recognition driving facial
//!   expressions (Worlds' thumbs-up/down, Fig. 5);
//! * [`ik`] — two-bone inverse kinematics, the "recreate full-body motion
//!   via kinematics" extension the paper points to for the future
//!   Metaverse;
//! * [`prediction`] — dead-reckoning of remote avatars, the motion
//!   prediction §8.2 credits for loss tolerance.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod embodiment;
pub mod gesture;
pub mod ik;
pub mod motion;
pub mod prediction;
pub mod quant;
pub mod skeleton;

pub use codec::{decode_update, encode_update, AvatarUpdate};
pub use embodiment::{Embodiment, Precision};
pub use gesture::{Expression, Gesture, GestureRecognizer};
pub use motion::MotionState;
pub use prediction::DeadReckoner;
pub use skeleton::{Joint, JointPose, Pose, Vec3};
