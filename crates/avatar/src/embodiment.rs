//! Per-platform embodiment profiles.
//!
//! Figure 4 and §5.2 compare the five platforms' avatars: AltspaceVR and
//! Hubs have no arms and no facial expressions; Rec Room adds simple
//! facial emotes; VRChat has full (cartoon) bodies; Worlds is human-like
//! with gesture-driven facial expressions and is the only one whose data
//! rate is an order of magnitude higher. An [`Embodiment`] captures the
//! knobs that drive that cost: the joint set, the facial blendshape
//! count, the codec precision, and whether velocities are sent for
//! client-side extrapolation.

use crate::skeleton::Joint;

/// Pose codec precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Precision {
    /// Quantised: 16-bit fixed-point positions, smallest-three rotations.
    Quantized,
    /// Full `f32` components (Worlds' human-like avatar fidelity).
    Full,
}

/// An avatar embodiment profile.
#[derive(Debug, Clone, PartialEq)]
pub struct Embodiment {
    /// Profile name for reports.
    pub name: &'static str,
    /// Joints included in every update, canonical order.
    pub joints: Vec<Joint>,
    /// Facial blendshape channels (0 = no facial expression).
    pub blendshapes: usize,
    /// Codec precision.
    pub precision: Precision,
    /// Whether per-joint velocities are included (for extrapolation).
    pub velocities: bool,
}

impl Embodiment {
    /// Upper torso, no arms, no face — AltspaceVR's avatar (lowest rate
    /// in Table 3).
    pub fn upper_torso_no_face() -> Embodiment {
        Embodiment {
            name: "upper-torso/no-face",
            joints: vec![Joint::Root, Joint::Torso, Joint::Head],
            blendshapes: 0,
            precision: Precision::Quantized,
            velocities: false,
        }
    }

    /// Upper torso with floating hands, no face — Hubs' avatar (its high
    /// throughput comes from the HTTPS transport, not the embodiment).
    pub fn upper_torso_hands_no_face() -> Embodiment {
        Embodiment {
            name: "upper-torso+hands/no-face",
            joints: vec![Joint::Root, Joint::Torso, Joint::Head, Joint::LeftHand, Joint::RightHand],
            blendshapes: 0,
            precision: Precision::Quantized,
            velocities: false,
        }
    }

    /// Upper torso with hands and simple facial emotes — Rec Room.
    pub fn upper_torso_simple_face() -> Embodiment {
        Embodiment {
            name: "upper-torso/simple-face",
            joints: vec![Joint::Root, Joint::Torso, Joint::Head, Joint::LeftHand, Joint::RightHand],
            blendshapes: 8,
            precision: Precision::Quantized,
            velocities: true,
        }
    }

    /// Full cartoon body with facial flags — VRChat (the only full-body
    /// avatar among the five, §5.2).
    pub fn full_body_cartoon() -> Embodiment {
        Embodiment {
            name: "full-body/cartoon",
            joints: Joint::ALL.to_vec(),
            blendshapes: 4,
            precision: Precision::Quantized,
            velocities: false,
        }
    }

    /// Human-like upper body at full precision with rich gesture-driven
    /// facial expression — Worlds (10× the others' rate).
    pub fn human_like() -> Embodiment {
        Embodiment {
            name: "human-like",
            joints: vec![
                Joint::Root,
                Joint::Hips,
                Joint::Torso,
                Joint::Neck,
                Joint::Head,
                Joint::LeftShoulder,
                Joint::LeftElbow,
                Joint::LeftHand,
                Joint::RightShoulder,
                Joint::RightElbow,
                Joint::RightHand,
            ],
            blendshapes: 32,
            precision: Precision::Full,
            velocities: true,
        }
    }

    /// A photo-realistic volumetric capture stand-in (Holoportation-like,
    /// §5.2's >1 Gbps data point) — full body, dense blendshapes, full
    /// precision. Used by the "better embodiment" ablation.
    pub fn photorealistic() -> Embodiment {
        Embodiment {
            name: "photorealistic",
            joints: Joint::ALL.to_vec(),
            blendshapes: 128,
            precision: Precision::Full,
            velocities: true,
        }
    }

    /// Whether the avatar has arms (Fig. 4's visible difference).
    pub fn has_arms(&self) -> bool {
        self.joints.contains(&Joint::LeftElbow) || self.joints.contains(&Joint::LeftShoulder)
    }

    /// Whether the avatar can express emotion facially.
    pub fn has_facial_expression(&self) -> bool {
        self.blendshapes > 0
    }

    /// A scalar complexity score used by the client rendering model:
    /// joints plus a discounted blendshape term, doubled at full precision.
    pub fn complexity(&self) -> f64 {
        let base = self.joints.len() as f64 + self.blendshapes as f64 / 8.0;
        match self.precision {
            Precision::Quantized => base,
            Precision::Full => base * 2.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::update_wire_size;

    #[test]
    fn profiles_match_figure_4_features() {
        assert!(!Embodiment::upper_torso_no_face().has_arms());
        assert!(!Embodiment::upper_torso_no_face().has_facial_expression());
        assert!(!Embodiment::upper_torso_hands_no_face().has_facial_expression());
        assert!(Embodiment::upper_torso_simple_face().has_facial_expression());
        assert!(Embodiment::full_body_cartoon().has_arms());
        assert!(Embodiment::human_like().has_facial_expression());
        assert!(Embodiment::human_like().has_arms());
    }

    #[test]
    fn complexity_ordering_matches_paper() {
        // Worlds' avatar is by far the most complex; AltspaceVR's the
        // least (§5.2).
        let alts = Embodiment::upper_torso_no_face().complexity();
        let hubs = Embodiment::upper_torso_hands_no_face().complexity();
        let rec = Embodiment::upper_torso_simple_face().complexity();
        let worlds = Embodiment::human_like().complexity();
        assert!(alts < hubs);
        assert!(hubs < rec);
        assert!(rec < worlds);
        assert!(Embodiment::photorealistic().complexity() > worlds);
    }

    #[test]
    fn update_size_ordering_matches_throughput_ordering() {
        // Per-update byte cost must rank the platforms the way Table 3's
        // avatar throughput does (given their tick rates, see
        // svr-platform).
        let alts = update_wire_size(&Embodiment::upper_torso_no_face());
        let vrchat = update_wire_size(&Embodiment::full_body_cartoon());
        let worlds = update_wire_size(&Embodiment::human_like());
        assert!(alts < vrchat, "{alts} < {vrchat}");
        assert!(vrchat < worlds, "{vrchat} < {worlds}");
        // Worlds' update is several times the others'.
        assert!(worlds > 3 * alts);
    }

    #[test]
    fn full_precision_doubles_complexity() {
        let mut e = Embodiment::full_body_cartoon();
        let quantized = e.complexity();
        e.precision = Precision::Full;
        assert_eq!(e.complexity(), quantized * 2.0);
    }
}
