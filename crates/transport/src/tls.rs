//! TLS-shaped record layer and handshake choreography.
//!
//! All five platforms carry their control channels over HTTPS (Table 2),
//! so the byte counts the paper measured include TLS handshake flights and
//! per-record overhead. This module reproduces that shape without real
//! cryptography: application bytes are framed into records with the TLS
//! 1.3 wire overhead (5-byte record header + 17-byte AEAD expansion), and
//! the handshake exchanges flights of realistic sizes. The "ciphertext"
//! is the plaintext — we are modelling *byte counts on the wire*, not
//! confidentiality.

use svr_netsim::buf::{Bytes, BytesMut};

/// Record header: content type (1) + legacy version (2) + length (2).
pub const RECORD_HEADER_LEN: usize = 5;
/// AEAD tag (16) + content-type byte (1) appended to every record.
pub const RECORD_EXPANSION: usize = 17;
/// Total per-record overhead.
pub const RECORD_OVERHEAD: usize = RECORD_HEADER_LEN + RECORD_EXPANSION;
/// Maximum plaintext fragment per record.
pub const MAX_FRAGMENT: usize = 16_384;

/// Content type byte for application data records.
pub const CONTENT_APPDATA: u8 = 23;
/// Content type byte for handshake records.
pub const CONTENT_HANDSHAKE: u8 = 22;

/// Handshake flight sizes, calibrated to a typical TLS 1.3 exchange with
/// a certificate chain (the dominant cost of the platforms' short control
/// transactions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HandshakeProfile {
    /// ClientHello bytes.
    pub client_hello: usize,
    /// ServerHello + EncryptedExtensions + Certificate + Verify + Finished.
    pub server_flight: usize,
    /// Client Finished.
    pub client_finished: usize,
    /// NewSessionTicket(s).
    pub session_tickets: usize,
}

impl Default for HandshakeProfile {
    fn default() -> Self {
        HandshakeProfile {
            client_hello: 320,
            server_flight: 3_650,
            client_finished: 74,
            session_tickets: 250,
        }
    }
}

/// Encode one application-data record.
pub fn seal_record(content_type: u8, plaintext: &[u8]) -> Bytes {
    assert!(plaintext.len() <= MAX_FRAGMENT, "fragment too large");
    let body_len = plaintext.len() + RECORD_EXPANSION;
    let mut buf = BytesMut::with_capacity(RECORD_HEADER_LEN + body_len);
    buf.put_u8(CONTENT_APPDATA); // outer type is always appdata in TLS 1.3
    buf.put_u16(0x0303); // legacy version
    buf.put_u16(body_len as u16);
    buf.extend_from_slice(plaintext);
    buf.put_u8(content_type); // inner content type
    buf.put_bytes(0xA5, RECORD_EXPANSION - 1); // stand-in AEAD tag
    buf.freeze()
}

/// Split a plaintext into sealed records of at most [`MAX_FRAGMENT`].
pub fn seal_stream(content_type: u8, plaintext: &[u8]) -> Vec<Bytes> {
    if plaintext.is_empty() {
        return vec![seal_record(content_type, &[])];
    }
    plaintext
        .chunks(MAX_FRAGMENT)
        .map(|c| seal_record(content_type, c))
        .collect()
}

/// Wire bytes needed to carry `plain_len` bytes of application data.
pub fn sealed_len(plain_len: usize) -> usize {
    if plain_len == 0 {
        return RECORD_OVERHEAD;
    }
    let full = plain_len / MAX_FRAGMENT;
    let rem = plain_len % MAX_FRAGMENT;
    full * (MAX_FRAGMENT + RECORD_OVERHEAD) + if rem > 0 { rem + RECORD_OVERHEAD } else { 0 }
}

/// Errors unsealing a record stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TlsError {
    /// Record claims a length beyond the protocol limit.
    OversizedRecord(usize),
    /// Record body shorter than the AEAD expansion.
    ShortRecord(usize),
    /// The stand-in AEAD tag failed to verify (corruption).
    BadTag,
}

impl std::fmt::Display for TlsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TlsError::OversizedRecord(n) => write!(f, "record length {n} exceeds limit"),
            TlsError::ShortRecord(n) => write!(f, "record body {n} shorter than expansion"),
            TlsError::BadTag => write!(f, "record authentication failed"),
        }
    }
}

impl std::error::Error for TlsError {}

/// Incremental record-stream parser (handles records split across TCP
/// segment boundaries).
#[derive(Debug, Default)]
pub struct RecordUnsealer {
    buf: BytesMut,
}

/// One unsealed record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlainRecord {
    /// Inner content type ([`CONTENT_APPDATA`] or [`CONTENT_HANDSHAKE`]).
    pub content_type: u8,
    /// Decrypted plaintext.
    pub plaintext: Bytes,
}

impl RecordUnsealer {
    /// Create an empty parser.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed stream bytes; returns every complete record now available.
    pub fn feed(&mut self, data: &[u8]) -> Result<Vec<PlainRecord>, TlsError> {
        self.buf.extend_from_slice(data);
        let mut out = Vec::new();
        loop {
            if self.buf.len() < RECORD_HEADER_LEN {
                break;
            }
            let body_len = u16::from_be_bytes([self.buf[3], self.buf[4]]) as usize;
            if body_len > MAX_FRAGMENT + RECORD_EXPANSION {
                return Err(TlsError::OversizedRecord(body_len));
            }
            if body_len < RECORD_EXPANSION {
                return Err(TlsError::ShortRecord(body_len));
            }
            if self.buf.len() < RECORD_HEADER_LEN + body_len {
                break;
            }
            let record = self.buf.split_to(RECORD_HEADER_LEN + body_len);
            let body = &record[RECORD_HEADER_LEN..];
            let plain_len = body_len - RECORD_EXPANSION;
            // Verify the stand-in tag.
            if body[plain_len + 1..].iter().any(|&b| b != 0xA5) {
                return Err(TlsError::BadTag);
            }
            out.push(PlainRecord {
                content_type: body[plain_len],
                plaintext: Bytes::copy_from_slice(&body[..plain_len]),
            });
        }
        Ok(out)
    }

    /// Bytes buffered awaiting a complete record.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }
}

/// Client-side handshake driver layered over a byte stream.
///
/// Tracks which flight is due and produces the flight bytes to write to
/// the TCP stream. The session is `established` after the client Finished
/// is sent (TLS 1.3 allows the client to send data immediately after).
#[derive(Debug)]
pub struct TlsSession {
    profile: HandshakeProfile,
    /// Whether this endpoint initiated the connection.
    pub is_client: bool,
    state: HsState,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HsState {
    Start,
    HelloSent,
    Established,
}

impl TlsSession {
    /// New client-side session.
    pub fn client(profile: HandshakeProfile) -> Self {
        TlsSession { profile, is_client: true, state: HsState::Start }
    }

    /// New server-side session.
    pub fn server(profile: HandshakeProfile) -> Self {
        TlsSession { profile, is_client: false, state: HsState::Start }
    }

    /// Whether application data may flow.
    pub fn is_established(&self) -> bool {
        self.state == HsState::Established
    }

    /// The next handshake bytes this endpoint should write, if any.
    /// Call once the transport connects, and again after each incoming
    /// handshake record.
    pub fn flight_to_send(&mut self) -> Option<Bytes> {
        match (self.is_client, self.state) {
            (true, HsState::Start) => {
                self.state = HsState::HelloSent;
                Some(handshake_blob(self.profile.client_hello))
            }
            _ => None,
        }
    }

    /// Process an incoming handshake record; returns response bytes.
    pub fn on_handshake_record(&mut self, record: &PlainRecord) -> Option<Bytes> {
        if record.content_type != CONTENT_HANDSHAKE {
            return None;
        }
        match (self.is_client, self.state) {
            // Server receives ClientHello → sends its whole flight.
            (false, HsState::Start) => {
                self.state = HsState::HelloSent;
                Some(handshake_blob(self.profile.server_flight))
            }
            // Client receives server flight → Finished; established.
            (true, HsState::HelloSent) => {
                self.state = HsState::Established;
                Some(handshake_blob(self.profile.client_finished))
            }
            // Server receives client Finished → tickets; established.
            (false, HsState::HelloSent) => {
                self.state = HsState::Established;
                Some(handshake_blob(self.profile.session_tickets))
            }
            // Client receives tickets (already established).
            (true, HsState::Established) => None,
            _ => None,
        }
    }
}

/// A handshake flight as sealed record bytes totalling roughly `size`.
fn handshake_blob(size: usize) -> Bytes {
    let plain = vec![0x48u8; size.saturating_sub(RECORD_OVERHEAD)];
    let records = seal_stream(CONTENT_HANDSHAKE, &plain);
    let mut buf = BytesMut::new();
    for r in records {
        buf.extend_from_slice(&r);
    }
    buf.freeze()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrip() {
        let sealed = seal_record(CONTENT_APPDATA, b"GET / HTTP/1.1");
        assert_eq!(sealed.len(), 14 + RECORD_OVERHEAD);
        let mut u = RecordUnsealer::new();
        let recs = u.feed(&sealed).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].plaintext.as_ref(), b"GET / HTTP/1.1");
        assert_eq!(recs[0].content_type, CONTENT_APPDATA);
    }

    #[test]
    fn records_split_across_segments() {
        let sealed = seal_record(CONTENT_APPDATA, &[7u8; 1000]);
        let mut u = RecordUnsealer::new();
        assert!(u.feed(&sealed[..100]).unwrap().is_empty());
        assert!(u.feed(&sealed[100..600]).unwrap().is_empty());
        let recs = u.feed(&sealed[600..]).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].plaintext.len(), 1000);
        assert_eq!(u.pending(), 0);
    }

    #[test]
    fn large_stream_fragments() {
        let plain = vec![1u8; MAX_FRAGMENT * 2 + 100];
        let records = seal_stream(CONTENT_APPDATA, &plain);
        assert_eq!(records.len(), 3);
        let mut u = RecordUnsealer::new();
        let mut got = Vec::new();
        for r in &records {
            for rec in u.feed(r).unwrap() {
                got.extend_from_slice(&rec.plaintext);
            }
        }
        assert_eq!(got, plain);
    }

    #[test]
    fn sealed_len_matches_actual() {
        for n in [0usize, 1, 100, MAX_FRAGMENT, MAX_FRAGMENT + 1, 40_000] {
            let plain = vec![0u8; n];
            let actual: usize = seal_stream(CONTENT_APPDATA, &plain).iter().map(|r| r.len()).sum();
            assert_eq!(sealed_len(n), actual, "n = {n}");
        }
    }

    #[test]
    fn corrupted_tag_detected() {
        let sealed = seal_record(CONTENT_APPDATA, b"data");
        let mut bad = sealed.to_vec();
        let last = bad.len() - 1;
        bad[last] = 0;
        let mut u = RecordUnsealer::new();
        assert_eq!(u.feed(&bad).unwrap_err(), TlsError::BadTag);
    }

    #[test]
    fn oversized_record_rejected() {
        let mut hdr = vec![CONTENT_APPDATA, 3, 3];
        hdr.extend_from_slice(&(60_000u16).to_be_bytes());
        let mut u = RecordUnsealer::new();
        assert!(matches!(u.feed(&hdr).unwrap_err(), TlsError::OversizedRecord(_)));
    }

    #[test]
    fn full_handshake_choreography() {
        let mut client = TlsSession::client(HandshakeProfile::default());
        let mut server = TlsSession::server(HandshakeProfile::default());
        let mut c_un = RecordUnsealer::new();
        let mut s_un = RecordUnsealer::new();

        // Client hello.
        let hello = client.flight_to_send().expect("client hello");
        assert!(server.flight_to_send().is_none(), "server never speaks first");
        // Server processes, responds with its flight.
        let mut server_out = BytesMut::new();
        for rec in s_un.feed(&hello).unwrap() {
            if let Some(resp) = server.on_handshake_record(&rec) {
                server_out.extend_from_slice(&resp);
            }
        }
        assert!(!server.is_established());
        // Client processes server flight → Finished, established.
        let mut client_out = BytesMut::new();
        for rec in c_un.feed(&server_out).unwrap() {
            if let Some(resp) = client.on_handshake_record(&rec) {
                client_out.extend_from_slice(&resp);
            }
        }
        assert!(client.is_established());
        // Server processes Finished → tickets, established.
        let mut tickets = BytesMut::new();
        for rec in s_un.feed(&client_out).unwrap() {
            if let Some(resp) = server.on_handshake_record(&rec) {
                tickets.extend_from_slice(&resp);
            }
        }
        assert!(server.is_established());
        // Client consumes tickets silently.
        for rec in c_un.feed(&tickets).unwrap() {
            assert!(client.on_handshake_record(&rec).is_none());
        }
        // Handshake volume is dominated by the server flight.
        assert!(server_out.len() > hello.len());
        assert!(server_out.len() > 3_000);
    }

    #[test]
    fn appdata_records_ignored_by_handshake() {
        let mut server = TlsSession::server(HandshakeProfile::default());
        let rec = PlainRecord { content_type: CONTENT_APPDATA, plaintext: Bytes::from_static(b"x") };
        assert!(server.on_handshake_record(&rec).is_none());
    }

    /// Deterministic seeded-loop fallbacks for the proptest versions below:
    /// always compiled, so the properties stay covered offline.
    #[test]
    fn prop_stream_roundtrip_seeded() {
        let mut rng = svr_netsim::SimRng::seed_from_u64(0x715_0001);
        for _case in 0..32 {
            let plain: Vec<u8> = (0..rng.range_u64(0, 49_999))
                .map(|_| rng.range_u64(0, 255) as u8)
                .collect();
            let records = seal_stream(CONTENT_APPDATA, &plain);
            let mut u = RecordUnsealer::new();
            let mut got = Vec::new();
            for r in &records {
                for rec in u.feed(r).unwrap() {
                    got.extend_from_slice(&rec.plaintext);
                }
            }
            assert_eq!(got, plain);
            assert_eq!(u.pending(), 0);
        }
    }

    #[test]
    fn prop_arbitrary_split_points_seeded() {
        let mut rng = svr_netsim::SimRng::seed_from_u64(0x715_0002);
        for _case in 0..64 {
            let plain: Vec<u8> = (0..rng.range_u64(1, 4_999))
                .map(|_| rng.range_u64(0, 255) as u8)
                .collect();
            let cuts: Vec<usize> = (0..rng.range_u64(0, 19))
                .map(|_| rng.range_u64(1, 199) as usize)
                .collect();
            let mut stream = Vec::new();
            for r in seal_stream(CONTENT_APPDATA, &plain) {
                stream.extend_from_slice(&r);
            }
            let mut u = RecordUnsealer::new();
            let mut got = Vec::new();
            let mut pos = 0;
            for c in cuts {
                let end = (pos + c).min(stream.len());
                for rec in u.feed(&stream[pos..end]).unwrap() {
                    got.extend_from_slice(&rec.plaintext);
                }
                pos = end;
            }
            for rec in u.feed(&stream[pos..]).unwrap() {
                got.extend_from_slice(&rec.plaintext);
            }
            assert_eq!(got, plain);
        }
    }

    #[cfg(feature = "proptests")]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
        #[test]
        fn prop_stream_roundtrip(plain in proptest::collection::vec(any::<u8>(), 0..50_000)) {
            let records = seal_stream(CONTENT_APPDATA, &plain);
            let mut u = RecordUnsealer::new();
            let mut got = Vec::new();
            for r in &records {
                for rec in u.feed(r).unwrap() {
                    got.extend_from_slice(&rec.plaintext);
                }
            }
            prop_assert_eq!(got, plain);
            prop_assert_eq!(u.pending(), 0);
        }

        #[test]
        fn prop_arbitrary_split_points(
            plain in proptest::collection::vec(any::<u8>(), 1..5_000),
            cuts in proptest::collection::vec(1usize..200, 0..20),
        ) {
            let mut stream = Vec::new();
            for r in seal_stream(CONTENT_APPDATA, &plain) {
                stream.extend_from_slice(&r);
            }
            let mut u = RecordUnsealer::new();
            let mut got = Vec::new();
            let mut pos = 0;
            for c in cuts {
                let end = (pos + c).min(stream.len());
                for rec in u.feed(&stream[pos..end]).unwrap() {
                    got.extend_from_slice(&rec.plaintext);
                }
                pos = end;
            }
            for rec in u.feed(&stream[pos..]).unwrap() {
                got.extend_from_slice(&rec.plaintext);
            }
            prop_assert_eq!(got, plain);
        }
        }
    }
}
