//! ICMP and TCP-SYN echo measurement (§4.2).
//!
//! The paper estimates RTTs between the WiFi APs and platform servers
//! with ICMP pings, falling back to TCP pings where ICMP is blocked.
//! [`Pinger`] issues sequenced probes, matches replies, and accumulates
//! the mean/standard-deviation statistics reported in Table 2;
//! [`PingResponder`] plays the server side.

use svr_netsim::buf::{Bytes, BytesMut};
use svr_netsim::{Packet, Proto, SimDuration, SimTime, TcpFlags, TransportHeader};

/// Which probe flavour to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PingKind {
    /// ICMP echo request/reply.
    Icmp,
    /// TCP SYN → SYN-ACK (used when ICMP is filtered).
    TcpSyn,
}

/// Accumulated RTT statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PingStats {
    samples: Vec<f64>,
}

impl PingStats {
    /// Record one RTT sample.
    pub fn push(&mut self, rtt: SimDuration) {
        self.samples.push(rtt.as_millis_f64());
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Mean RTT in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Sample standard deviation in milliseconds.
    pub fn std_ms(&self) -> f64 {
        let n = self.samples.len();
        if n < 2 {
            return 0.0;
        }
        let m = self.mean_ms();
        (self.samples.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (n - 1) as f64).sqrt()
    }

    /// Minimum RTT in milliseconds.
    pub fn min_ms(&self) -> f64 {
        self.samples.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// The raw per-probe samples in milliseconds.
    pub fn samples_ms(&self) -> &[f64] {
        &self.samples
    }
}

const ECHO_MAGIC: &[u8; 4] = b"ECHO";
const REPLY_MAGIC: &[u8; 4] = b"RPLY";

/// Client side: issues probes and matches replies.
#[derive(Debug)]
pub struct Pinger {
    kind: PingKind,
    local_port: u16,
    remote_port: u16,
    next_seq: u32,
    outstanding: Vec<(u32, SimTime)>,
    /// Collected RTT statistics.
    pub stats: PingStats,
}

impl Pinger {
    /// Create a pinger.
    pub fn new(kind: PingKind, local_port: u16, remote_port: u16) -> Self {
        Pinger {
            kind,
            local_port,
            remote_port,
            next_seq: 0,
            outstanding: Vec::new(),
            stats: PingStats::default(),
        }
    }

    /// Build the next probe packet.
    pub fn probe(&mut self, now: SimTime) -> Packet {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.outstanding.push((seq, now));
        match self.kind {
            PingKind::Icmp => {
                let mut body = BytesMut::with_capacity(12);
                body.put_slice(ECHO_MAGIC);
                body.put_u32(seq);
                body.put_u32(0); // padding to a typical 56-byte echo would go here
                let mut hdr = TransportHeader::datagram(Proto::Icmp, 0, 0);
                hdr.seq = seq;
                Packet::new(hdr, body.freeze())
            }
            PingKind::TcpSyn => {
                let hdr = TransportHeader::tcp(self.local_port, self.remote_port, seq, 0, TcpFlags::SYN);
                Packet::new(hdr, Bytes::new())
            }
        }
    }

    /// Try to match a reply; records the RTT if it corresponds to an
    /// outstanding probe.
    pub fn on_packet(&mut self, now: SimTime, pkt: &Packet) -> bool {
        let seq = match self.kind {
            PingKind::Icmp => {
                if pkt.header.proto != Proto::Icmp || pkt.payload.len() < 8 {
                    return false;
                }
                if &pkt.payload[..4] != REPLY_MAGIC {
                    return false;
                }
                u32::from_be_bytes([pkt.payload[4], pkt.payload[5], pkt.payload[6], pkt.payload[7]])
            }
            PingKind::TcpSyn => {
                if pkt.header.proto != Proto::Tcp
                    || !(pkt.header.flags.syn && pkt.header.flags.ack)
                    || pkt.header.dst_port != self.local_port
                {
                    return false;
                }
                pkt.header.ack.wrapping_sub(1)
            }
        };
        if let Some(pos) = self.outstanding.iter().position(|(s, _)| *s == seq) {
            let (_, sent) = self.outstanding.swap_remove(pos);
            self.stats.push(now.saturating_since(sent));
            true
        } else {
            false
        }
    }

    /// Probes never answered.
    pub fn unanswered(&self) -> usize {
        self.outstanding.len()
    }
}

/// Server side: answers ICMP echoes and TCP SYN probes.
#[derive(Debug, Default)]
pub struct PingResponder {
    /// Probes answered.
    pub answered: u64,
    /// If true, ICMP echoes are dropped (the "ICMP blocked" servers of
    /// §4.2, which force the TCP fallback).
    pub block_icmp: bool,
}

impl PingResponder {
    /// Create a responder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a responder that filters ICMP.
    pub fn icmp_blocked() -> Self {
        PingResponder { answered: 0, block_icmp: true }
    }

    /// Produce the reply for a probe, if it is one we answer.
    pub fn on_packet(&mut self, pkt: &Packet) -> Option<Packet> {
        match pkt.header.proto {
            Proto::Icmp => {
                if self.block_icmp || pkt.payload.len() < 8 || &pkt.payload[..4] != ECHO_MAGIC {
                    return None;
                }
                self.answered += 1;
                let mut body = BytesMut::with_capacity(8);
                body.put_slice(REPLY_MAGIC);
                body.put_slice(&pkt.payload[4..8]);
                let mut hdr = TransportHeader::datagram(Proto::Icmp, 0, 0);
                hdr.seq = pkt.header.seq;
                Some(Packet::new(hdr, body.freeze()))
            }
            Proto::Tcp if pkt.header.flags.syn && !pkt.header.flags.ack => {
                self.answered += 1;
                let hdr = TransportHeader::tcp(
                    pkt.header.dst_port,
                    pkt.header.src_port,
                    0,
                    pkt.header.seq.wrapping_add(1),
                    TcpFlags::SYN_ACK,
                );
                Some(Packet::new(hdr, Bytes::new()))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn icmp_probe_reply_measures_rtt() {
        let mut pinger = Pinger::new(PingKind::Icmp, 0, 0);
        let mut responder = PingResponder::new();
        let probe = pinger.probe(SimTime::from_millis(100));
        let reply = responder.on_packet(&probe).expect("echo answered");
        assert!(pinger.on_packet(SimTime::from_millis(172), &reply));
        assert_eq!(pinger.stats.count(), 1);
        assert!((pinger.stats.mean_ms() - 72.0).abs() < 1e-9);
        assert_eq!(pinger.unanswered(), 0);
    }

    #[test]
    fn tcp_syn_fallback_works() {
        let mut pinger = Pinger::new(PingKind::TcpSyn, 40_000, 443);
        let mut responder = PingResponder::icmp_blocked();
        let probe = pinger.probe(SimTime::ZERO);
        assert_eq!(probe.header.proto, Proto::Tcp);
        let reply = responder.on_packet(&probe).expect("SYN answered");
        assert!(reply.header.flags.syn && reply.header.flags.ack);
        assert!(pinger.on_packet(SimTime::from_millis(3), &reply));
        assert!((pinger.stats.mean_ms() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn blocked_icmp_is_not_answered() {
        let mut pinger = Pinger::new(PingKind::Icmp, 0, 0);
        let mut responder = PingResponder::icmp_blocked();
        let probe = pinger.probe(SimTime::ZERO);
        assert!(responder.on_packet(&probe).is_none());
        assert_eq!(pinger.unanswered(), 1);
    }

    #[test]
    fn mismatched_reply_ignored() {
        let mut pinger = Pinger::new(PingKind::Icmp, 0, 0);
        let _ = pinger.probe(SimTime::ZERO);
        // Forged reply for a sequence never probed.
        let mut body = BytesMut::new();
        body.put_slice(REPLY_MAGIC);
        body.put_u32(999);
        let forged = Packet::new(TransportHeader::datagram(Proto::Icmp, 0, 0), body.freeze());
        assert!(!pinger.on_packet(SimTime::from_millis(1), &forged));
        assert_eq!(pinger.stats.count(), 0);
    }

    #[test]
    fn duplicate_reply_counted_once() {
        let mut pinger = Pinger::new(PingKind::Icmp, 0, 0);
        let mut responder = PingResponder::new();
        let probe = pinger.probe(SimTime::ZERO);
        let reply = responder.on_packet(&probe).unwrap();
        assert!(pinger.on_packet(SimTime::from_millis(5), &reply));
        assert!(!pinger.on_packet(SimTime::from_millis(6), &reply));
        assert_eq!(pinger.stats.count(), 1);
    }

    #[test]
    fn stats_mean_and_std() {
        let mut s = PingStats::default();
        for ms in [70, 72, 74] {
            s.push(SimDuration::from_millis(ms));
        }
        assert!((s.mean_ms() - 72.0).abs() < 1e-9);
        assert!((s.std_ms() - 2.0).abs() < 1e-9);
        assert!((s.min_ms() - 70.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = PingStats::default();
        assert_eq!(s.mean_ms(), 0.0);
        assert_eq!(s.std_ms(), 0.0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn many_probes_interleaved() {
        let mut pinger = Pinger::new(PingKind::Icmp, 0, 0);
        let mut responder = PingResponder::new();
        let mut replies = Vec::new();
        for i in 0..20u64 {
            let p = pinger.probe(SimTime::from_millis(i * 1000));
            replies.push((i, responder.on_packet(&p).unwrap()));
        }
        // Answer out of order.
        replies.reverse();
        for (i, r) in replies {
            assert!(pinger.on_packet(SimTime::from_millis(i * 1000 + 10), &r));
        }
        assert_eq!(pinger.stats.count(), 20);
        assert!((pinger.stats.mean_ms() - 10.0).abs() < 1e-9);
        assert_eq!(pinger.unanswered(), 0);
    }
}
