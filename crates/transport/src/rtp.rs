//! RTP/RTCP — the WebRTC media path of Mozilla Hubs.
//!
//! Hubs delivers voice over WebRTC (Table 2), i.e. RTP media packets plus
//! periodic RTCP sender/receiver reports. The paper could not ping Hubs'
//! data-channel server and instead read the RTT from Chrome's WebRTC
//! internals — which is derived from the RTCP LSR/DLSR exchange
//! implemented here (RFC 3550 §6.4). We reproduce that: the sender's
//! report carries a timestamp, the receiver echoes it with its holding
//! delay, and the sender recovers `RTT = now - LSR - DLSR`.

use svr_netsim::buf::{Bytes, BytesMut};
use svr_netsim::{Packet, Proto, SimDuration, SimTime, TransportHeader};

/// RTP fixed header length.
pub const RTP_HEADER_LEN: usize = 12;
/// Payload type we use for Opus-like voice frames.
pub const PT_VOICE: u8 = 111;

const RTCP_SR: u8 = 200;
const RTCP_RR: u8 = 201;

/// A parsed RTCP report (sender or receiver).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RtcpReport {
    /// Report kind: 200 = sender report, 201 = receiver report.
    pub kind: u8,
    /// Synchronisation source of the reporter.
    pub ssrc: u32,
    /// SR: the sender's clock at send time (µs). RR: echoed LSR.
    pub timestamp_us: u64,
    /// RR only: delay since receiving the last SR (µs).
    pub dlsr_us: u64,
    /// RR only: fraction of packets lost since the previous report (0-255).
    pub fraction_lost: u8,
}

/// RTP media sender with RTCP sender reports.
#[derive(Debug)]
pub struct RtpSender {
    ssrc: u32,
    local_port: u16,
    remote_port: u16,
    seq: u16,
    rtp_timestamp: u32,
    /// Samples-per-packet advance of the RTP timestamp (e.g. 960 for 20 ms
    /// of 48 kHz Opus).
    pub timestamp_step: u32,
    sr_interval: SimDuration,
    last_sr: SimTime,
    /// Media packets sent.
    pub packets_sent: u64,
    /// RTT estimates recovered from receiver reports.
    pub rtt_samples: Vec<SimDuration>,
}

impl RtpSender {
    /// Create a sender.
    pub fn new(ssrc: u32, local_port: u16, remote_port: u16) -> Self {
        RtpSender {
            ssrc,
            local_port,
            remote_port,
            seq: 0,
            rtp_timestamp: 0,
            timestamp_step: 960,
            sr_interval: SimDuration::from_secs(5),
            last_sr: SimTime::ZERO,
            packets_sent: 0,
            rtt_samples: Vec::new(),
        }
    }

    /// Build a media packet carrying one voice frame.
    pub fn media(&mut self, frame: &[u8]) -> Packet {
        let mut buf = BytesMut::with_capacity(RTP_HEADER_LEN + frame.len());
        buf.put_u8(0x80); // V=2, no padding/extension/CSRC
        buf.put_u8(PT_VOICE);
        buf.put_u16(self.seq);
        buf.put_u32(self.rtp_timestamp);
        buf.put_u32(self.ssrc);
        buf.extend_from_slice(frame);
        self.seq = self.seq.wrapping_add(1);
        self.rtp_timestamp = self.rtp_timestamp.wrapping_add(self.timestamp_step);
        self.packets_sent += 1;
        let hdr = TransportHeader::datagram(Proto::Udp, self.local_port, self.remote_port);
        Packet::new(hdr, buf.freeze())
    }

    /// Emit a sender report when due.
    pub fn on_tick(&mut self, now: SimTime) -> Option<Packet> {
        if now.saturating_since(self.last_sr) < self.sr_interval {
            return None;
        }
        self.last_sr = now;
        let mut buf = BytesMut::with_capacity(20);
        buf.put_u8(0x80);
        buf.put_u8(RTCP_SR);
        buf.put_u32(self.ssrc);
        buf.put_u64(now.as_micros());
        buf.put_u64(0);
        buf.put_u8(0);
        let hdr = TransportHeader::datagram(Proto::Udp, self.local_port, self.remote_port);
        Some(Packet::new(hdr, buf.freeze()))
    }

    /// Process a receiver report; recovers the RTT.
    pub fn on_rtcp(&mut self, now: SimTime, report: &RtcpReport) {
        if report.kind != RTCP_RR {
            return;
        }
        let lsr = SimTime::from_micros(report.timestamp_us);
        let rtt = now
            .saturating_since(lsr)
            .saturating_sub(SimDuration::from_micros(report.dlsr_us));
        self.rtt_samples.push(rtt);
    }

    /// Mean of the recovered RTT samples in milliseconds.
    pub fn mean_rtt_ms(&self) -> f64 {
        if self.rtt_samples.is_empty() {
            return 0.0;
        }
        self.rtt_samples.iter().map(|d| d.as_millis_f64()).sum::<f64>()
            / self.rtt_samples.len() as f64
    }
}

/// RTP media receiver with RTCP receiver reports.
#[derive(Debug)]
pub struct RtpReceiver {
    ssrc: u32,
    local_port: u16,
    remote_port: u16,
    highest_seq: Option<u16>,
    /// Media packets received.
    pub packets_received: u64,
    /// Estimated losses from sequence gaps.
    pub packets_lost: u64,
    lost_since_report: u64,
    expected_since_report: u64,
    /// Interarrival jitter estimate (RFC 3550 A.8), in timestamp units.
    pub jitter: f64,
    last_transit_us: Option<i64>,
    last_sr: Option<(SimTime, u64)>, // (received_at, sr timestamp)
}

impl RtpReceiver {
    /// Create a receiver.
    pub fn new(ssrc: u32, local_port: u16, remote_port: u16) -> Self {
        RtpReceiver {
            ssrc,
            local_port,
            remote_port,
            highest_seq: None,
            packets_received: 0,
            packets_lost: 0,
            lost_since_report: 0,
            expected_since_report: 0,
            jitter: 0.0,
            last_transit_us: None,
            last_sr: None,
        }
    }

    /// Process an incoming packet. Returns the voice frame for media
    /// packets, `None` for RTCP or foreign traffic. RTCP receiver reports
    /// to send back are produced by [`RtpReceiver::report`].
    pub fn on_packet(&mut self, now: SimTime, pkt: &Packet) -> Option<Bytes> {
        if pkt.header.proto != Proto::Udp || pkt.header.dst_port != self.local_port {
            return None;
        }
        let p = &pkt.payload;
        if p.len() < 2 {
            return None;
        }
        match p[1] {
            RTCP_SR if p.len() >= 14 => {
                let ts = u64::from_be_bytes([p[6], p[7], p[8], p[9], p[10], p[11], p[12], p[13]]);
                self.last_sr = Some((now, ts));
                None
            }
            PT_VOICE if p.len() >= RTP_HEADER_LEN => {
                let seq = u16::from_be_bytes([p[2], p[3]]);
                let rtp_ts = u32::from_be_bytes([p[4], p[5], p[6], p[7]]);
                self.track_seq(seq);
                self.track_jitter(now, rtp_ts);
                self.packets_received += 1;
                self.expected_since_report += 1;
                Some(pkt.payload.slice(RTP_HEADER_LEN..))
            }
            _ => None,
        }
    }

    fn track_seq(&mut self, seq: u16) {
        match self.highest_seq {
            None => self.highest_seq = Some(seq),
            Some(h) => {
                let delta = seq.wrapping_sub(h);
                if delta > 0 && delta < 0x8000 {
                    let gap = (delta - 1) as u64;
                    self.packets_lost += gap;
                    self.lost_since_report += gap;
                    self.expected_since_report += gap;
                    self.highest_seq = Some(seq);
                }
            }
        }
    }

    fn track_jitter(&mut self, now: SimTime, rtp_ts: u32) {
        // Transit time in µs assuming 48 kHz timestamp units.
        let ts_us = (rtp_ts as i64) * 1_000_000 / 48_000;
        let transit = now.as_micros() as i64 - ts_us;
        if let Some(prev) = self.last_transit_us {
            let d = (transit - prev).abs() as f64;
            self.jitter += (d - self.jitter) / 16.0;
        }
        self.last_transit_us = Some(transit);
    }

    /// Build a receiver report (call every few seconds).
    pub fn report(&mut self, now: SimTime) -> Packet {
        let fraction = (self.lost_since_report * 256)
            .checked_div(self.expected_since_report)
            .unwrap_or(0)
            .min(255) as u8;
        let (lsr, dlsr) = match self.last_sr {
            Some((recv_at, sr_ts)) => (sr_ts, now.saturating_since(recv_at).as_micros()),
            None => (0, 0),
        };
        self.lost_since_report = 0;
        self.expected_since_report = 0;
        let mut buf = BytesMut::with_capacity(30);
        buf.put_u8(0x80);
        buf.put_u8(RTCP_RR);
        buf.put_u32(self.ssrc);
        buf.put_u64(lsr);
        buf.put_u64(dlsr);
        buf.put_u8(fraction);
        let hdr = TransportHeader::datagram(Proto::Udp, self.local_port, self.remote_port);
        Packet::new(hdr, buf.freeze())
    }
}

/// Parse an RTCP packet payload into a report.
pub fn parse_rtcp(payload: &[u8]) -> Option<RtcpReport> {
    if payload.len() < 14 {
        return None;
    }
    let kind = payload[1];
    if kind != RTCP_SR && kind != RTCP_RR {
        return None;
    }
    let ssrc = u32::from_be_bytes([payload[2], payload[3], payload[4], payload[5]]);
    let timestamp_us = u64::from_be_bytes([
        payload[6], payload[7], payload[8], payload[9], payload[10], payload[11], payload[12],
        payload[13],
    ]);
    let (dlsr_us, fraction_lost) = if kind == RTCP_RR && payload.len() >= 23 {
        (
            u64::from_be_bytes([
                payload[14], payload[15], payload[16], payload[17], payload[18], payload[19],
                payload[20], payload[21],
            ]),
            payload[22],
        )
    } else {
        (0, 0)
    };
    Some(RtcpReport { kind, ssrc, timestamp_us, dlsr_us, fraction_lost })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn media_roundtrip() {
        let mut tx = RtpSender::new(0xAABB, 7000, 8000);
        let mut rx = RtpReceiver::new(0xCCDD, 8000, 7000);
        let pkt = tx.media(b"opus-frame-bytes");
        let frame = rx.on_packet(SimTime::from_millis(40), &pkt).expect("media");
        assert_eq!(frame.as_ref(), b"opus-frame-bytes");
        assert_eq!(rx.packets_received, 1);
    }

    #[test]
    fn sequence_and_timestamp_advance() {
        let mut tx = RtpSender::new(1, 7000, 8000);
        let p0 = tx.media(b"a");
        let p1 = tx.media(b"b");
        let s0 = u16::from_be_bytes([p0.payload[2], p0.payload[3]]);
        let s1 = u16::from_be_bytes([p1.payload[2], p1.payload[3]]);
        assert_eq!(s1, s0.wrapping_add(1));
        let t0 = u32::from_be_bytes([p0.payload[4], p0.payload[5], p0.payload[6], p0.payload[7]]);
        let t1 = u32::from_be_bytes([p1.payload[4], p1.payload[5], p1.payload[6], p1.payload[7]]);
        assert_eq!(t1 - t0, 960);
    }

    #[test]
    fn loss_detected_from_gaps() {
        let mut tx = RtpSender::new(1, 7000, 8000);
        let mut rx = RtpReceiver::new(2, 8000, 7000);
        let p0 = tx.media(b"0");
        let _p1 = tx.media(b"1"); // lost
        let p2 = tx.media(b"2");
        rx.on_packet(SimTime::from_millis(0), &p0);
        rx.on_packet(SimTime::from_millis(40), &p2);
        assert_eq!(rx.packets_lost, 1);
    }

    #[test]
    fn rtcp_rtt_estimation() {
        // The §4.2 method: SR at t, RR echoing it after a holding delay,
        // RTT recovered at the sender.
        let mut tx = RtpSender::new(1, 7000, 8000);
        let mut rx = RtpReceiver::new(2, 8000, 7000);
        let sr = tx.on_tick(SimTime::from_secs(5)).expect("SR due");
        // SR takes 37 ms to reach the receiver.
        rx.on_packet(SimTime::from_micros(5_037_000), &sr);
        // Receiver holds the report for 500 ms.
        let rr = rx.report(SimTime::from_micros(5_537_000));
        let report = parse_rtcp(&rr.payload).expect("parse RR");
        // RR takes 36.5 ms back; sender receives at 5.5735 s.
        tx.on_rtcp(SimTime::from_micros(5_573_500), &report);
        assert_eq!(tx.rtt_samples.len(), 1);
        let rtt_ms = tx.mean_rtt_ms();
        assert!((rtt_ms - 73.5).abs() < 0.1, "rtt {rtt_ms} ≈ 73.5 ms (Table 2 Hubs)");
    }

    #[test]
    fn sr_interval_respected() {
        let mut tx = RtpSender::new(1, 7000, 8000);
        assert!(tx.on_tick(SimTime::from_secs(5)).is_some());
        assert!(tx.on_tick(SimTime::from_secs(6)).is_none());
        assert!(tx.on_tick(SimTime::from_secs(10)).is_some());
    }

    #[test]
    fn fraction_lost_reported() {
        let mut tx = RtpSender::new(1, 7000, 8000);
        let mut rx = RtpReceiver::new(2, 8000, 7000);
        let mut pkts: Vec<Packet> = (0..10).map(|i| tx.media(&[i as u8])).collect();
        // Drop half.
        let kept: Vec<Packet> = pkts.drain(..).enumerate().filter(|(i, _)| i % 2 == 0).map(|(_, p)| p).collect();
        for p in &kept {
            rx.on_packet(SimTime::ZERO, p);
        }
        let rr = rx.report(SimTime::from_secs(1));
        let report = parse_rtcp(&rr.payload).unwrap();
        // 4 of 9 expected-after-first lost → fraction ≈ 4*256/9 ≈ 113.
        assert!(report.fraction_lost > 90 && report.fraction_lost < 130);
        // Counter resets after the report.
        let rr2 = rx.report(SimTime::from_secs(2));
        assert_eq!(parse_rtcp(&rr2.payload).unwrap().fraction_lost, 0);
    }

    #[test]
    fn jitter_grows_with_variable_delay() {
        let mut tx = RtpSender::new(1, 7000, 8000);
        let mut rx = RtpReceiver::new(2, 8000, 7000);
        // Packets sent every 20 ms of media time but delivered with
        // alternating 0/15 ms extra delay.
        for i in 0..50u64 {
            let p = tx.media(b"f");
            let extra = if i % 2 == 0 { 0 } else { 15 };
            rx.on_packet(SimTime::from_millis(i * 20 + extra), &p);
        }
        assert!(rx.jitter > 1_000.0, "jitter {} should reflect 15 ms swings", rx.jitter);
    }

    #[test]
    fn foreign_and_malformed_ignored() {
        let mut rx = RtpReceiver::new(2, 8000, 7000);
        let junk = Packet::new(
            TransportHeader::datagram(Proto::Udp, 7000, 8000),
            Bytes::from_static(&[1]),
        );
        assert!(rx.on_packet(SimTime::ZERO, &junk).is_none());
        let wrong_port = Packet::new(
            TransportHeader::datagram(Proto::Udp, 7000, 9999),
            Bytes::from_static(&[0x80, PT_VOICE, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 9]),
        );
        assert!(rx.on_packet(SimTime::ZERO, &wrong_port).is_none());
        assert!(parse_rtcp(&[0x80, 200]).is_none());
        assert!(parse_rtcp(&[0u8; 14]).is_none());
    }
}
