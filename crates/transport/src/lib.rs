//! # svr-transport
//!
//! Transport-layer protocols over the [`svr_netsim`] substrate, in the
//! poll-based state-machine style of smoltcp: no protocol owns the event
//! loop; each reacts to `on_packet`/`on_tick` and returns the packets it
//! wants transmitted. This makes every protocol unit-testable without a
//! network and lets the platform layer drive many endpoints from one
//! deterministic driver.
//!
//! The protocols here are the ones the paper observed on the wire
//! (Table 2):
//!
//! * [`udp`] — sequenced datagram channels with keep-alives, the data
//!   channel of AltspaceVR, Rec Room, VRChat, and Worlds;
//! * [`tcp`] — a simplified but real TCP (handshake, cumulative ACKs,
//!   RTO with exponential backoff, Reno congestion control, fast
//!   retransmit), carrying the HTTPS control channels;
//! * [`tls`] — TLS 1.3-shaped handshake and record overhead, so HTTPS
//!   byte counts are honest;
//! * [`http`] — request/response exchanges and the periodic client-report
//!   "spikes" the paper saw every ~10 s (§4.1);
//! * [`rtp`] — RTP/RTCP, Mozilla Hubs' WebRTC voice path, including the
//!   RTCP round-trip-time estimation used in §4.2;
//! * [`ping`] — ICMP/TCP echo for the RTT survey of §4.2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod http;
pub mod ping;
pub mod rtp;
pub mod tcp;
pub mod tls;
pub mod udp;

pub use http::{HttpClient, HttpExchange, HttpServer};
pub use ping::{PingKind, Pinger, PingResponder, PingStats};
pub use rtp::{RtcpReport, RtpReceiver, RtpSender};
pub use tcp::{TcpConfig, TcpConnection, TcpEvent, TcpState};
pub use tls::TlsSession;
pub use udp::UdpChannel;
