//! Sequenced UDP channels with keep-alives.
//!
//! Four of the five platforms deliver avatar and voice data over UDP
//! (Table 2). [`UdpChannel`] adds what those applications layer on top of
//! raw datagrams: a 16-byte application header (channel id, message kind,
//! sequence number, timestamp) for loss/reorder detection, periodic
//! keep-alives, and a liveness timeout — the mechanism behind the paper's
//! observation that Worlds' UDP session dies ~30 s after its traffic is
//! blocked and never recovers (§8.1).

use svr_netsim::buf::{Bytes, BytesMut};
use svr_netsim::{Packet, Proto, SimDuration, SimTime, TransportHeader};

/// Application-level header prepended to every channel datagram.
pub const APP_HEADER_LEN: usize = 16;

/// Message kinds multiplexed on one channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsgKind {
    /// Avatar embodiment / motion update.
    Avatar,
    /// Voice frame.
    Voice,
    /// Game state update.
    Game,
    /// Keep-alive probe.
    KeepAlive,
    /// Anything else (initialization blobs, etc.).
    Other,
}

impl MsgKind {
    fn to_byte(self) -> u8 {
        match self {
            MsgKind::Avatar => 1,
            MsgKind::Voice => 2,
            MsgKind::Game => 3,
            MsgKind::KeepAlive => 4,
            MsgKind::Other => 5,
        }
    }

    /// Inverse of `to_byte`; unknown values map to `Other`.
    pub fn from_byte(b: u8) -> MsgKind {
        match b {
            1 => MsgKind::Avatar,
            2 => MsgKind::Voice,
            3 => MsgKind::Game,
            4 => MsgKind::KeepAlive,
            _ => MsgKind::Other,
        }
    }
}

/// A decoded channel datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelMsg {
    /// Channel identifier.
    pub channel: u16,
    /// Message kind.
    pub kind: MsgKind,
    /// Sender sequence number.
    pub seq: u32,
    /// Sender timestamp (microseconds).
    pub sent_us: u64,
    /// Application payload.
    pub body: Bytes,
}

/// Receiver-side delivery statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UdpRxStats {
    /// Datagrams received.
    pub received: u64,
    /// Highest sequence seen.
    pub max_seq: u32,
    /// Datagrams that arrived with a sequence lower than one already seen.
    pub reordered: u64,
    /// Estimated losses (gaps in sequence space).
    pub lost: u64,
}

/// One endpoint of a sequenced UDP channel.
#[derive(Debug)]
pub struct UdpChannel {
    /// Channel id carried in every datagram.
    pub channel: u16,
    local_port: u16,
    remote_port: u16,
    next_seq: u32,
    highest_rx_seq: Option<u32>,
    /// Receiver stats.
    pub rx: UdpRxStats,
    /// Keep-alive interval (`None` disables).
    keepalive_every: Option<SimDuration>,
    last_tx: SimTime,
    last_rx: SimTime,
    /// Liveness timeout: if nothing is received for this long the channel
    /// is declared dead (Worlds' ~30 s behaviour).
    timeout: Option<SimDuration>,
    dead: bool,
    opened_at: SimTime,
}

impl UdpChannel {
    /// Create a channel endpoint.
    pub fn new(channel: u16, local_port: u16, remote_port: u16, now: SimTime) -> Self {
        UdpChannel {
            channel,
            local_port,
            remote_port,
            next_seq: 0,
            highest_rx_seq: None,
            rx: UdpRxStats::default(),
            keepalive_every: None,
            last_tx: now,
            last_rx: now,
            timeout: None,
            dead: false,
            opened_at: now,
        }
    }

    /// Enable keep-alive probes at the given interval.
    pub fn with_keepalive(mut self, every: SimDuration) -> Self {
        self.keepalive_every = Some(every);
        self
    }

    /// Enable the liveness timeout.
    pub fn with_timeout(mut self, timeout: SimDuration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Whether the channel has been declared dead. A dead channel never
    /// recovers — matching the frozen-screen behaviour in §8.1.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Tear the channel down permanently (the platform session layer
    /// giving up, e.g. Worlds after its UDP has been gated behind TCP
    /// for too long, §8.1). A dead channel neither sends nor receives.
    pub fn kill(&mut self) {
        self.dead = true;
    }

    /// Local port.
    pub fn local_port(&self) -> u16 {
        self.local_port
    }

    /// Remote port.
    pub fn remote_port(&self) -> u16 {
        self.remote_port
    }

    fn encode(&mut self, kind: MsgKind, now: SimTime, body: &[u8]) -> Packet {
        let mut buf = BytesMut::with_capacity(APP_HEADER_LEN + body.len());
        buf.put_u16(self.channel);
        buf.put_u8(kind.to_byte());
        buf.put_u8(0); // reserved
        buf.put_u32(self.next_seq);
        buf.put_u64(now.as_micros());
        buf.extend_from_slice(body);
        let mut hdr = TransportHeader::datagram(Proto::Udp, self.local_port, self.remote_port);
        hdr.seq = self.next_seq;
        self.next_seq += 1;
        self.last_tx = now;
        Packet::new(hdr, buf.freeze())
    }

    /// Build a datagram carrying `body`. Returns `None` if the channel is
    /// dead.
    pub fn send(&mut self, kind: MsgKind, now: SimTime, body: &[u8]) -> Option<Packet> {
        if self.dead {
            return None;
        }
        Some(self.encode(kind, now, body))
    }

    /// Decode an incoming datagram addressed to this channel and update
    /// receiver statistics. Returns `None` for foreign or malformed
    /// datagrams.
    pub fn on_packet(&mut self, now: SimTime, pkt: &Packet) -> Option<ChannelMsg> {
        if self.dead {
            return None; // frozen screen: incoming data is ignored
        }
        if pkt.header.proto != Proto::Udp || pkt.header.dst_port != self.local_port {
            return None;
        }
        let p = &pkt.payload;
        if p.len() < APP_HEADER_LEN {
            return None;
        }
        let channel = u16::from_be_bytes([p[0], p[1]]);
        if channel != self.channel {
            return None;
        }
        let kind = MsgKind::from_byte(p[2]);
        let seq = u32::from_be_bytes([p[4], p[5], p[6], p[7]]);
        let sent_us = u64::from_be_bytes([p[8], p[9], p[10], p[11], p[12], p[13], p[14], p[15]]);

        self.rx.received += 1;
        self.last_rx = now;
        match self.highest_rx_seq {
            None => self.highest_rx_seq = Some(seq),
            Some(h) if seq > h => {
                // Gap in sequence space counts as (provisional) loss.
                self.rx.lost += (seq - h - 1) as u64;
                self.highest_rx_seq = Some(seq);
            }
            Some(_) => {
                self.rx.reordered += 1;
                self.rx.lost = self.rx.lost.saturating_sub(1);
            }
        }
        self.rx.max_seq = self.highest_rx_seq.unwrap_or(0);

        Some(ChannelMsg {
            channel,
            kind,
            seq,
            sent_us,
            body: pkt.payload.slice(APP_HEADER_LEN..),
        })
    }

    /// Periodic maintenance: emits a keep-alive when due and checks the
    /// liveness timeout. Call at least every few hundred milliseconds.
    pub fn on_tick(&mut self, now: SimTime) -> Option<Packet> {
        if self.dead {
            return None;
        }
        if let Some(timeout) = self.timeout {
            // Grace period from open: don't declare death before any data.
            let last_alive = self.last_rx.max(self.opened_at);
            if now.saturating_since(last_alive) >= timeout {
                self.dead = true;
                return None;
            }
        }
        if let Some(every) = self.keepalive_every {
            if now.saturating_since(self.last_tx) >= every {
                return Some(self.encode(MsgKind::KeepAlive, now, &[]));
            }
        }
        None
    }

    /// Earliest future time at which [`UdpChannel::on_tick`] could act:
    /// the keep-alive due time or the liveness-timeout expiry, whichever
    /// comes first. `None` when the channel is dead or has no timers, so
    /// a driver may skip ticking it entirely.
    pub fn next_timer(&self) -> Option<SimTime> {
        if self.dead {
            return None;
        }
        let ka = self.keepalive_every.map(|every| self.last_tx + every);
        let to = self
            .timeout
            .map(|timeout| self.last_rx.max(self.opened_at) + timeout);
        match (ka, to) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// One-way delay of a message, derived from its embedded timestamp.
    /// Only meaningful when both endpoints share a clock domain (true in
    /// the simulator; the paper needed §7's clock sync to get this).
    pub fn one_way_delay(now: SimTime, msg: &ChannelMsg) -> SimDuration {
        now.saturating_since(SimTime::from_micros(msg.sent_us))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(now: SimTime) -> (UdpChannel, UdpChannel) {
        (
            UdpChannel::new(7, 4000, 5000, now),
            UdpChannel::new(7, 5000, 4000, now),
        )
    }

    #[test]
    fn roundtrip_preserves_message() {
        let now = SimTime::from_secs(1);
        let (mut tx, mut rx) = pair(now);
        let pkt = tx.send(MsgKind::Avatar, now, b"pose-data").unwrap();
        let msg = rx.on_packet(now + SimDuration::from_millis(20), &pkt).unwrap();
        assert_eq!(msg.kind, MsgKind::Avatar);
        assert_eq!(msg.body.as_ref(), b"pose-data");
        assert_eq!(msg.seq, 0);
        assert_eq!(
            UdpChannel::one_way_delay(now + SimDuration::from_millis(20), &msg),
            SimDuration::from_millis(20)
        );
    }

    #[test]
    fn sequence_numbers_increment() {
        let now = SimTime::ZERO;
        let (mut tx, _) = pair(now);
        for i in 0..5u32 {
            let pkt = tx.send(MsgKind::Avatar, now, &[]).unwrap();
            assert_eq!(pkt.header.seq, i);
        }
    }

    #[test]
    fn gap_counts_as_loss() {
        let now = SimTime::ZERO;
        let (mut tx, mut rx) = pair(now);
        let p0 = tx.send(MsgKind::Avatar, now, &[]).unwrap();
        let _p1 = tx.send(MsgKind::Avatar, now, &[]).unwrap(); // dropped
        let p2 = tx.send(MsgKind::Avatar, now, &[]).unwrap();
        rx.on_packet(now, &p0);
        rx.on_packet(now, &p2);
        assert_eq!(rx.rx.lost, 1);
        assert_eq!(rx.rx.received, 2);
    }

    #[test]
    fn reorder_repairs_provisional_loss() {
        let now = SimTime::ZERO;
        let (mut tx, mut rx) = pair(now);
        let p0 = tx.send(MsgKind::Avatar, now, &[]).unwrap();
        let p1 = tx.send(MsgKind::Avatar, now, &[]).unwrap();
        rx.on_packet(now, &p0);
        // p1 skipped → provisional loss...
        let p2 = tx.send(MsgKind::Avatar, now, &[]).unwrap();
        rx.on_packet(now, &p2);
        assert_eq!(rx.rx.lost, 1);
        // ...then p1 arrives late: loss repaired, reorder counted.
        rx.on_packet(now, &p1);
        assert_eq!(rx.rx.lost, 0);
        assert_eq!(rx.rx.reordered, 1);
    }

    #[test]
    fn foreign_packets_ignored() {
        let now = SimTime::ZERO;
        let (mut tx, mut rx) = pair(now);
        let mut other = UdpChannel::new(9, 4000, 5000, now);
        let pkt = other.send(MsgKind::Avatar, now, b"x").unwrap();
        assert!(rx.on_packet(now, &pkt).is_none(), "wrong channel id");
        let pkt2 = tx.send(MsgKind::Avatar, now, b"x").unwrap();
        let mut wrong_port = UdpChannel::new(7, 6000, 4000, now);
        assert!(wrong_port.on_packet(now, &pkt2).is_none(), "wrong port");
    }

    #[test]
    fn keepalive_fires_when_idle() {
        let now = SimTime::ZERO;
        let mut ch = UdpChannel::new(1, 1, 2, now).with_keepalive(SimDuration::from_secs(5));
        assert!(ch.on_tick(SimTime::from_secs(4)).is_none());
        let ka = ch.on_tick(SimTime::from_secs(5)).unwrap();
        let mut peer = UdpChannel::new(1, 2, 1, now);
        let msg = peer.on_packet(SimTime::from_secs(5), &ka).unwrap();
        assert_eq!(msg.kind, MsgKind::KeepAlive);
        // Sending data resets the keep-alive clock.
        ch.send(MsgKind::Avatar, SimTime::from_secs(6), &[]).unwrap();
        assert!(ch.on_tick(SimTime::from_secs(10)).is_none());
        assert!(ch.on_tick(SimTime::from_secs(11)).is_some());
    }

    #[test]
    fn next_timer_tracks_keepalive_and_timeout() {
        let now = SimTime::ZERO;
        let plain = UdpChannel::new(1, 1, 2, now);
        assert!(plain.next_timer().is_none(), "no timers configured");
        let mut ch = UdpChannel::new(1, 1, 2, now)
            .with_keepalive(SimDuration::from_secs(5))
            .with_timeout(SimDuration::from_secs(30));
        assert_eq!(ch.next_timer(), Some(SimTime::from_secs(5)));
        // Sending data pushes the keep-alive deadline out.
        ch.send(MsgKind::Avatar, SimTime::from_secs(4), &[]).unwrap();
        assert_eq!(ch.next_timer(), Some(SimTime::from_secs(9)));
        // Past the keep-alive horizon, the liveness timeout is next.
        let mut peer = UdpChannel::new(1, 2, 1, now);
        let pkt = peer.send(MsgKind::Avatar, SimTime::from_secs(6), &[]).unwrap();
        ch.on_packet(SimTime::from_secs(6), &pkt);
        ch.send(MsgKind::Avatar, SimTime::from_secs(33), &[]).unwrap();
        // Keep-alive due at 38, timeout (from last_rx = 6) due at 36.
        assert_eq!(ch.next_timer(), Some(SimTime::from_secs(36)));
        ch.kill();
        assert!(ch.next_timer().is_none(), "dead channels have no timers");
    }

    #[test]
    fn liveness_timeout_kills_channel_permanently() {
        let now = SimTime::ZERO;
        let mut ch = UdpChannel::new(1, 1, 2, now).with_timeout(SimDuration::from_secs(30));
        let (mut tx, _) = pair(now);
        let pkt = tx.send(MsgKind::Avatar, now, &[]).unwrap();
        // Wrong channel id, but keeps the port; feed a matching one instead.
        let mut peer = UdpChannel::new(1, 2, 1, now);
        let pkt = {
            let _ = pkt;
            peer.send(MsgKind::Avatar, SimTime::from_secs(1), &[]).unwrap()
        };
        ch.on_packet(SimTime::from_secs(1), &pkt);
        assert!(ch.on_tick(SimTime::from_secs(30)).is_none());
        assert!(!ch.is_dead());
        ch.on_tick(SimTime::from_secs(31));
        assert!(ch.is_dead());
        // Dead is forever: new incoming data does not resurrect sends.
        assert!(ch.send(MsgKind::Avatar, SimTime::from_secs(32), &[]).is_none());
        assert!(ch.on_tick(SimTime::from_secs(33)).is_none());
    }

    #[test]
    fn short_payload_rejected() {
        let now = SimTime::ZERO;
        let (_, mut rx) = pair(now);
        let pkt = Packet::new(
            TransportHeader::datagram(Proto::Udp, 5000, 4000),
            Bytes::from_static(&[0u8; 4]),
        );
        assert!(rx.on_packet(now, &pkt).is_none());
    }

    #[test]
    fn msg_kind_byte_roundtrip() {
        for k in [MsgKind::Avatar, MsgKind::Voice, MsgKind::Game, MsgKind::KeepAlive, MsgKind::Other] {
            assert_eq!(MsgKind::from_byte(k.to_byte()), k);
        }
        assert_eq!(MsgKind::from_byte(200), MsgKind::Other);
    }
}
