//! A simplified but real TCP.
//!
//! Implements the subset of TCP that shapes the behaviours the paper
//! observed on the platforms' HTTPS control channels: three-way
//! handshake, MSS segmentation, cumulative ACKs, out-of-order reassembly,
//! RTT estimation (RFC 6298), retransmission timeouts with exponential
//! backoff, Reno congestion control (slow start, congestion avoidance,
//! fast retransmit on three duplicate ACKs), and a give-up limit.
//!
//! Notable paper-relevant behaviours that *emerge* from this machine:
//!
//! * under §8.1's 100 % uplink loss, retransmissions back off but the
//!   connection survives a 60 s outage and recovers when loss is lifted —
//!   exactly what the paper saw for Worlds' TCP (while its UDP died);
//! * `has_unacked_data` exposes the signal Worlds' client uses to gate
//!   UDP sends behind TCP delivery (the TCP-priority interplay of §8.1).
//!
//! Deliberate simplifications (documented assumptions): no sequence-number
//! wrap (connections in the study move far less than 4 GiB), immediate
//! ACKs (no delayed-ACK timer), a fixed peer window, and no SACK.

use svr_netsim::buf::{Bytes, BytesMut};
use std::collections::BTreeMap;
use std::collections::VecDeque;
use svr_netsim::{Packet, SimDuration, SimTime, TcpFlags, TransportHeader};

/// Tuning knobs for a connection.
#[derive(Debug, Clone, Copy)]
pub struct TcpConfig {
    /// Maximum segment size (payload bytes per segment).
    pub mss: usize,
    /// Initial congestion window in segments (RFC 6928 uses 10).
    pub initial_cwnd_segments: u32,
    /// Lower bound on the retransmission timeout.
    pub rto_min: SimDuration,
    /// Upper bound on the retransmission timeout.
    pub rto_max: SimDuration,
    /// Consecutive retransmissions of one segment before declaring the
    /// connection dead.
    pub max_retries: u32,
    /// Fixed peer receive window (flow-control cap on bytes in flight).
    pub peer_window: usize,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1400,
            initial_cwnd_segments: 10,
            rto_min: SimDuration::from_millis(200),
            rto_max: SimDuration::from_secs(60),
            max_retries: 15,
            peer_window: 256 * 1024,
        }
    }
}

/// Connection lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpState {
    /// Passive open, waiting for SYN.
    Listen,
    /// Active open, SYN sent.
    SynSent,
    /// SYN received, SYN-ACK sent.
    SynReceived,
    /// Data may flow.
    Established,
    /// FIN sent, waiting for it to be acknowledged.
    FinSent,
    /// Closed cleanly.
    Closed,
    /// Given up after too many retransmissions.
    Dead,
}

/// Events surfaced to the application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TcpEvent {
    /// Handshake completed.
    Connected,
    /// In-order application data.
    Data(Bytes),
    /// Peer closed and all data was delivered.
    Closed,
    /// The connection retransmitted too many times and gave up.
    Dead,
}

#[derive(Debug)]
struct TxSegment {
    seq: u32,
    data: Bytes,
    first_sent: SimTime,
    retries: u32,
    retransmitted: bool,
}

/// One endpoint of a TCP connection.
#[derive(Debug)]
pub struct TcpConnection {
    cfg: TcpConfig,
    /// Current lifecycle state.
    pub state: TcpState,
    local_port: u16,
    remote_port: u16,

    // --- send side ---
    /// First unacknowledged sequence number.
    snd_una: u32,
    /// Next sequence number to use.
    snd_nxt: u32,
    /// App bytes accepted but not yet segmented.
    tx_pending: BytesMut,
    /// Segments in flight.
    unacked: VecDeque<TxSegment>,
    /// Congestion window in bytes.
    cwnd: usize,
    /// Slow-start threshold in bytes.
    ssthresh: usize,
    dup_acks: u32,
    fin_queued: bool,
    fin_sent_seq: Option<u32>,

    // --- receive side ---
    /// Next expected sequence number.
    rcv_nxt: u32,
    /// Out-of-order segments awaiting the gap fill.
    ooo: BTreeMap<u32, Bytes>,
    peer_fin_seq: Option<u32>,
    delivered_close: bool,

    // --- timers & RTT ---
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    rto: SimDuration,
    rto_deadline: Option<SimTime>,
    /// In an RTO episode: saved window state for Eifel/F-RTO-style undo
    /// when the timeout turns out to be spurious (a sudden RTT inflation
    /// rather than loss — §8.1's 5-15 s netem delays).
    rto_undo: Option<(usize, usize)>,


    // --- counters for analysis ---
    /// Total retransmitted segments.
    pub retransmissions: u64,
    /// Total payload bytes the peer has acknowledged.
    pub bytes_acked: u64,
    /// Total payload bytes delivered to the app in order.
    pub bytes_delivered: u64,
}

impl TcpConnection {
    fn new(cfg: TcpConfig, local_port: u16, remote_port: u16, state: TcpState) -> Self {
        TcpConnection {
            cfg,
            state,
            local_port,
            remote_port,
            snd_una: 0,
            snd_nxt: 0,
            tx_pending: BytesMut::new(),
            unacked: VecDeque::new(),
            cwnd: cfg.mss * cfg.initial_cwnd_segments as usize,
            ssthresh: usize::MAX / 2,
            dup_acks: 0,
            fin_queued: false,
            fin_sent_seq: None,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            peer_fin_seq: None,
            delivered_close: false,
            srtt: None,
            rttvar: SimDuration::ZERO,
            rto: SimDuration::from_secs(1),
            rto_deadline: None,
            rto_undo: None,
            retransmissions: 0,
            bytes_acked: 0,
            bytes_delivered: 0,
        }
    }

    /// Active open: returns the connection and the initial SYN.
    pub fn client(cfg: TcpConfig, local_port: u16, remote_port: u16, now: SimTime) -> (Self, Vec<Packet>) {
        let mut c = Self::new(cfg, local_port, remote_port, TcpState::SynSent);
        let syn = c.make_packet(0, 0, TcpFlags::SYN, Bytes::new());
        c.snd_nxt = 1; // SYN consumes one sequence number
        c.arm_rto(now);
        (c, vec![syn])
    }

    /// Passive open: waits for a SYN.
    pub fn listen(cfg: TcpConfig, local_port: u16, remote_port: u16) -> Self {
        Self::new(cfg, local_port, remote_port, TcpState::Listen)
    }

    /// Local port of this endpoint.
    pub fn local_port(&self) -> u16 {
        self.local_port
    }

    /// Whether any sent data awaits acknowledgement (the Worlds UDP-gating
    /// signal). A connection still in its handshake counts: the SYN is
    /// unacknowledged sequence space.
    pub fn has_unacked_data(&self) -> bool {
        matches!(self.state, TcpState::SynSent) || !self.unacked.is_empty()
    }

    /// Payload bytes currently in flight.
    pub fn bytes_in_flight(&self) -> usize {
        self.unacked.iter().map(|s| s.data.len()).sum()
    }

    /// Current congestion window in bytes.
    pub fn cwnd(&self) -> usize {
        self.cwnd
    }

    /// Smoothed RTT estimate, once at least one sample exists.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }

    /// Current retransmission timeout.
    pub fn rto(&self) -> SimDuration {
        self.rto
    }

    /// When the retransmission timer fires next (drive [`Self::on_tick`]
    /// no later than this).
    pub fn next_timer(&self) -> Option<SimTime> {
        self.rto_deadline
    }

    fn make_packet(&self, seq: u32, ack: u32, flags: TcpFlags, payload: Bytes) -> Packet {
        let mut hdr = TransportHeader::tcp(self.local_port, self.remote_port, seq, ack, flags);
        hdr.window = (self.cfg.peer_window / 1024).min(u16::MAX as usize) as u16;
        Packet::new(hdr, payload)
    }

    fn arm_rto(&mut self, now: SimTime) {
        self.rto_deadline = Some(now + self.rto);
    }

    fn disarm_rto(&mut self) {
        self.rto_deadline = None;
    }

    /// The un-backed-off timeout derived from the current RTT estimate
    /// (RFC 6298: the backoff is cleared once new data is acknowledged).
    fn base_rto(&self) -> SimDuration {
        match self.srtt {
            Some(srtt) => {
                let c = srtt + (self.rttvar * 4).max(SimDuration::from_millis(10));
                c.clamp(self.cfg.rto_min, self.cfg.rto_max)
            }
            None => SimDuration::from_secs(1),
        }
    }

    fn update_rtt(&mut self, sample: SimDuration) {
        // RFC 6298.
        match self.srtt {
            None => {
                self.srtt = Some(sample);
                self.rttvar = sample / 2;
            }
            Some(srtt) => {
                let diff = if srtt > sample { srtt - sample } else { sample - srtt };
                self.rttvar = (self.rttvar * 3 + diff) / 4;
                self.srtt = Some((srtt * 7 + sample) / 8);
            }
        }
        let srtt = self.srtt.unwrap();
        let candidate = srtt + (self.rttvar * 4).max(SimDuration::from_millis(10));
        self.rto = candidate.clamp(self.cfg.rto_min, self.cfg.rto_max);
    }

    /// Accept application bytes for transmission. Returns segments that can
    /// be sent immediately under the congestion window.
    pub fn send_data(&mut self, now: SimTime, data: &[u8]) -> Vec<Packet> {
        if !matches!(self.state, TcpState::Established) {
            // Buffer until established (or drop when closed/dead).
            if matches!(self.state, TcpState::SynSent | TcpState::SynReceived) {
                self.tx_pending.extend_from_slice(data);
            }
            return Vec::new();
        }
        self.tx_pending.extend_from_slice(data);
        self.pump_tx(now)
    }

    /// Carve and emit as many segments as cwnd/flow control allow.
    fn pump_tx(&mut self, now: SimTime) -> Vec<Packet> {
        let mut out = Vec::new();
        let window = self.cwnd.min(self.cfg.peer_window);
        while !self.tx_pending.is_empty() && self.bytes_in_flight() < window {
            let take = self.tx_pending.len().min(self.cfg.mss);
            let data = self.tx_pending.split_to(take).freeze();
            let seq = self.snd_nxt;
            self.snd_nxt = self.snd_nxt.wrapping_add(take as u32);
            out.push(self.make_packet(seq, self.rcv_nxt, TcpFlags::DATA, data.clone()));
            self.unacked.push_back(TxSegment {
                seq,
                data,
                first_sent: now,
                retries: 0,
                retransmitted: false,
            });
        }
        if self.tx_pending.is_empty() && self.fin_queued && self.fin_sent_seq.is_none() {
            let seq = self.snd_nxt;
            self.snd_nxt = self.snd_nxt.wrapping_add(1);
            self.fin_sent_seq = Some(seq);
            self.state = TcpState::FinSent;
            out.push(self.make_packet(seq, self.rcv_nxt, TcpFlags::FIN, Bytes::new()));
        }
        if (!self.unacked.is_empty() || self.fin_sent_seq.is_some())
            && self.rto_deadline.is_none() {
                self.arm_rto(now);
            }
        out
    }

    /// Begin a graceful close once all pending data is sent.
    pub fn close(&mut self, now: SimTime) -> Vec<Packet> {
        if matches!(self.state, TcpState::Closed | TcpState::Dead) {
            return Vec::new();
        }
        self.fin_queued = true;
        self.pump_tx(now)
    }

    /// Process an incoming segment addressed to this endpoint.
    pub fn on_packet(&mut self, now: SimTime, pkt: &Packet) -> (Vec<Packet>, Vec<TcpEvent>) {
        let mut out = Vec::new();
        let mut events = Vec::new();
        let h = &pkt.header;
        if h.dst_port != self.local_port || h.src_port != self.remote_port {
            return (out, events);
        }

        match self.state {
            TcpState::Listen => {
                if h.flags.syn && !h.flags.ack {
                    self.rcv_nxt = h.seq.wrapping_add(1);
                    out.push(self.make_packet(0, self.rcv_nxt, TcpFlags::SYN_ACK, Bytes::new()));
                    self.snd_nxt = 1;
                    self.state = TcpState::SynReceived;
                    self.arm_rto(now);
                }
                return (out, events);
            }
            TcpState::SynSent => {
                if h.flags.syn && h.flags.ack && h.ack == self.snd_nxt {
                    self.rcv_nxt = h.seq.wrapping_add(1);
                    self.snd_una = h.ack;
                    self.state = TcpState::Established;
                    self.disarm_rto();
                    events.push(TcpEvent::Connected);
                    out.push(self.make_packet(self.snd_nxt, self.rcv_nxt, TcpFlags::DATA, Bytes::new()));
                    out.extend(self.pump_tx(now));
                }
                return (out, events);
            }
            TcpState::SynReceived => {
                if h.flags.ack && h.ack == self.snd_nxt {
                    self.snd_una = h.ack;
                    self.state = TcpState::Established;
                    self.disarm_rto();
                    events.push(TcpEvent::Connected);
                    // Fall through: the ACK may carry data.
                } else if h.flags.syn {
                    // Duplicate SYN: re-send the SYN-ACK.
                    out.push(self.make_packet(0, self.rcv_nxt, TcpFlags::SYN_ACK, Bytes::new()));
                    return (out, events);
                } else {
                    return (out, events);
                }
            }
            TcpState::Closed | TcpState::Dead => return (out, events),
            TcpState::Established | TcpState::FinSent => {}
        }

        // --- ACK processing ---
        if h.flags.ack {
            let ack = h.ack;
            if seq_gt(ack, self.snd_una) && seq_le(ack, self.snd_nxt) {
                let advanced = ack.wrapping_sub(self.snd_una);
                self.snd_una = ack;
                self.dup_acks = 0;
                // Remove fully-acked segments; sample RTT per Karn.
                let mut acked_unretransmitted = false;
                while let Some(seg) = self.unacked.front() {
                    let seg_end = seg.seq.wrapping_add(seg.data.len() as u32);
                    if !seq_le(seg_end, ack) {
                        break;
                    }
                    let seg = self.unacked.pop_front().expect("front exists");
                    if !seg.retransmitted {
                        acked_unretransmitted = true;
                        let sample = now.saturating_since(seg.first_sent);
                        self.update_rtt(sample);
                    }
                    self.bytes_acked += seg.data.len() as u64;
                }
                // Eifel/F-RTO undo: a cumulative ACK covering segments we
                // never retransmitted proves the originals arrived — the
                // RTO was spurious (RTT inflation, not loss). Restore the
                // pre-timeout window instead of slow-starting from one
                // segment (what Linux does; without it, §8.1's delayed-TCP
                // gaps would stretch to several RTTs instead of ~one).
                if let Some((cwnd, ssthresh)) = self.rto_undo {
                    if acked_unretransmitted {
                        self.cwnd = self.cwnd.max(cwnd);
                        self.ssthresh = self.ssthresh.max(ssthresh);
                    }
                }
                if self.unacked.is_empty() {
                    self.rto_undo = None;
                }
                // New data acknowledged: clear the exponential backoff
                // (RFC 6298 §5.7). With the backoff gone, a multi-segment
                // loss drains at one cwnd-sized resend round per ~RTO
                // instead of one segment per exponentially-spaced timer.
                self.rto = self.base_rto();
                // FIN acknowledged?
                if let Some(fseq) = self.fin_sent_seq {
                    if seq_gt(ack, fseq) {
                        self.state = TcpState::Closed;
                        events.push(TcpEvent::Closed);
                    }
                }
                // Congestion control.
                if self.cwnd < self.ssthresh {
                    self.cwnd += advanced as usize; // slow start
                } else {
                    self.cwnd += (self.cfg.mss * self.cfg.mss) / self.cwnd.max(1);
                }
                if self.unacked.is_empty() && self.fin_sent_seq.is_none() {
                    self.disarm_rto();
                } else {
                    self.arm_rto(now);
                }
                out.extend(self.pump_tx(now));
            } else if ack == self.snd_una
                && !self.unacked.is_empty()
                && pkt.payload.is_empty()
                && !h.flags.fin
            {
                // Duplicate ACK.
                self.dup_acks += 1;
                if self.dup_acks == 3 {
                    // Fast retransmit + halve the window (Reno).
                    self.ssthresh = (self.bytes_in_flight() / 2).max(2 * self.cfg.mss);
                    self.cwnd = self.ssthresh;
                    if let Some(seg) = self.unacked.front_mut() {
                        seg.retransmitted = true;
                        seg.retries += 1;
                        self.retransmissions += 1;
                        let p = self.make_packet(
                            self.unacked[0].seq,
                            self.rcv_nxt,
                            TcpFlags::DATA,
                            self.unacked[0].data.clone(),
                        );
                        out.push(p);
                        self.arm_rto(now);
                    }
                }
            }
        }

        // --- data processing ---
        if !pkt.payload.is_empty() {
            let seq = h.seq;
            let end = seq.wrapping_add(pkt.payload.len() as u32);
            if seq_le(end, self.rcv_nxt) {
                // Entirely old: re-ACK.
                out.push(self.make_packet(self.snd_nxt, self.rcv_nxt, TcpFlags::DATA, Bytes::new()));
            } else if seq == self.rcv_nxt {
                self.deliver(pkt.payload.clone(), &mut events);
                self.drain_ooo(&mut events);
                out.push(self.make_packet(self.snd_nxt, self.rcv_nxt, TcpFlags::DATA, Bytes::new()));
            } else if seq_gt(seq, self.rcv_nxt) {
                // Out of order: stash and send a duplicate ACK.
                self.ooo.entry(seq).or_insert_with(|| pkt.payload.clone());
                out.push(self.make_packet(self.snd_nxt, self.rcv_nxt, TcpFlags::DATA, Bytes::new()));
            } else {
                // Partially old segment: deliver the new tail.
                let skip = self.rcv_nxt.wrapping_sub(seq) as usize;
                self.deliver(pkt.payload.slice(skip..), &mut events);
                self.drain_ooo(&mut events);
                out.push(self.make_packet(self.snd_nxt, self.rcv_nxt, TcpFlags::DATA, Bytes::new()));
            }
        }

        // --- FIN processing ---
        if h.flags.fin {
            let fin_seq = h.seq.wrapping_add(pkt.payload.len() as u32);
            self.peer_fin_seq = Some(fin_seq);
            self.try_deliver_close(&mut events);
            if self.peer_fin_seq.map(|f| f == self.rcv_nxt).unwrap_or(false) {
                self.rcv_nxt = self.rcv_nxt.wrapping_add(1);
            }
            out.push(self.make_packet(self.snd_nxt, self.rcv_nxt, TcpFlags::DATA, Bytes::new()));
            if self.state == TcpState::Established {
                self.state = TcpState::Closed;
            }
        }

        (out, events)
    }

    fn deliver(&mut self, data: Bytes, events: &mut Vec<TcpEvent>) {
        self.rcv_nxt = self.rcv_nxt.wrapping_add(data.len() as u32);
        self.bytes_delivered += data.len() as u64;
        events.push(TcpEvent::Data(data));
    }

    fn drain_ooo(&mut self, events: &mut Vec<TcpEvent>) {
        while let Some((&seq, _)) = self.ooo.iter().next() {
            if seq_gt(seq, self.rcv_nxt) {
                break;
            }
            let data = self.ooo.remove(&seq).unwrap();
            if seq == self.rcv_nxt {
                self.deliver(data, events);
            } else {
                // Overlaps already-delivered bytes.
                let skip = self.rcv_nxt.wrapping_sub(seq) as usize;
                if skip < data.len() {
                    self.deliver(data.slice(skip..), events);
                }
            }
        }
        self.try_deliver_close(events);
    }

    fn try_deliver_close(&mut self, events: &mut Vec<TcpEvent>) {
        if let Some(fin_seq) = self.peer_fin_seq {
            if fin_seq == self.rcv_nxt && !self.delivered_close {
                self.delivered_close = true;
                events.push(TcpEvent::Closed);
            }
        }
    }

    /// Drive timers; call at least as often as [`Self::next_timer`].
    pub fn on_tick(&mut self, now: SimTime) -> (Vec<Packet>, Vec<TcpEvent>) {
        let mut out = Vec::new();
        let mut events = Vec::new();
        let Some(deadline) = self.rto_deadline else {
            return (out, events);
        };
        if now < deadline {
            return (out, events);
        }

        match self.state {
            TcpState::SynSent => {
                out.push(self.make_packet(0, 0, TcpFlags::SYN, Bytes::new()));
            }
            TcpState::SynReceived => {
                out.push(self.make_packet(0, self.rcv_nxt, TcpFlags::SYN_ACK, Bytes::new()));
            }
            TcpState::Established | TcpState::FinSent => {
                if let Some(seg) = self.unacked.front_mut() {
                    seg.retransmitted = true;
                    seg.retries += 1;
                    self.retransmissions += 1;
                    if seg.retries > self.cfg.max_retries {
                        self.state = TcpState::Dead;
                        self.disarm_rto();
                        events.push(TcpEvent::Dead);
                        return (out, events);
                    }
                    // On the first timeout of an episode: save the window
                    // for spurious-RTO undo and collapse to one segment.
                    // Later timeouts in the same episode keep the
                    // ack-regrown window, so burst-loss recovery rounds
                    // grow 1, 2, 4, ... segments instead of re-collapsing.
                    if self.rto_undo.is_none() {
                        self.rto_undo = Some((self.cwnd, self.ssthresh));
                        self.ssthresh = (self.bytes_in_flight() / 2).max(2 * self.cfg.mss);
                        self.cwnd = self.cfg.mss;
                    }
                    // Resend up to one (post-collapse, ack-regrown) cwnd
                    // from the front: burst-loss recovery proceeds in
                    // cwnd-sized rounds rather than one segment per
                    // exponentially-spaced timeout.
                    let mut budget = self.cwnd.max(self.cfg.mss);
                    let mut resend: Vec<(u32, Bytes)> = Vec::new();
                    for seg in self.unacked.iter_mut() {
                        if budget < seg.data.len() {
                            break;
                        }
                        budget -= seg.data.len();
                        seg.retransmitted = true;
                        resend.push((seg.seq, seg.data.clone()));
                    }
                    self.retransmissions += resend.len().saturating_sub(1) as u64;
                    for (seq, data) in resend {
                        out.push(self.make_packet(seq, self.rcv_nxt, TcpFlags::DATA, data));
                    }
                } else if let Some(fseq) = self.fin_sent_seq {
                    out.push(self.make_packet(fseq, self.rcv_nxt, TcpFlags::FIN, Bytes::new()));
                } else {
                    self.disarm_rto();
                    return (out, events);
                }
            }
            _ => {
                self.disarm_rto();
                return (out, events);
            }
        }
        // Exponential backoff.
        self.rto = (self.rto * 2).min(self.cfg.rto_max);
        self.arm_rto(now);
        (out, events)
    }
}

// Wrapping sequence comparisons (RFC 793 style).
fn seq_gt(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) > 0
}
fn seq_le(a: u32, b: u32) -> bool {
    !seq_gt(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use svr_netsim::Proto;

    type DropFn = Box<dyn FnMut(u64, &Packet) -> bool>;

    /// Shuttle packets between two connections through an in-memory pipe
    /// with fixed one-way delay and a drop predicate (returns true to drop
    /// the n-th packet of that direction).
    struct Pipe {
        delay: SimDuration,
        now: SimTime,
        a_to_b: VecDeque<(SimTime, Packet)>,
        b_to_a: VecDeque<(SimTime, Packet)>,
        drop_a_to_b: DropFn,
        sent_a: u64,
    }

    impl Pipe {
        fn new(delay_ms: u64) -> Self {
            Pipe {
                delay: SimDuration::from_millis(delay_ms),
                now: SimTime::ZERO,
                a_to_b: VecDeque::new(),
                b_to_a: VecDeque::new(),
                drop_a_to_b: Box::new(|_, _| false),
                sent_a: 0,
            }
        }

        fn push_a(&mut self, pkts: Vec<Packet>) {
            for p in pkts {
                let n = self.sent_a;
                self.sent_a += 1;
                if !(self.drop_a_to_b)(n, &p) {
                    self.a_to_b.push_back((self.now + self.delay, p));
                }
            }
        }

        fn push_b(&mut self, pkts: Vec<Packet>) {
            for p in pkts {
                self.b_to_a.push_back((self.now + self.delay, p));
            }
        }

        /// Run both endpoints until quiescent or `until`.
        fn run(
            &mut self,
            a: &mut TcpConnection,
            b: &mut TcpConnection,
            until: SimTime,
        ) -> (Vec<TcpEvent>, Vec<TcpEvent>) {
            let mut ev_a = Vec::new();
            let mut ev_b = Vec::new();
            loop {
                // Next event: earliest queued packet or timer.
                let mut next = SimTime::MAX;
                if let Some((t, _)) = self.a_to_b.front() {
                    next = next.min(*t);
                }
                if let Some((t, _)) = self.b_to_a.front() {
                    next = next.min(*t);
                }
                if let Some(t) = a.next_timer() {
                    next = next.min(t);
                }
                if let Some(t) = b.next_timer() {
                    next = next.min(t);
                }
                if next > until {
                    self.now = until;
                    break;
                }
                self.now = next;
                if self.a_to_b.front().map(|(t, _)| *t <= self.now).unwrap_or(false) {
                    let (_, p) = self.a_to_b.pop_front().unwrap();
                    let (pkts, evs) = b.on_packet(self.now, &p);
                    ev_b.extend(evs);
                    self.push_b(pkts);
                    continue;
                }
                if self.b_to_a.front().map(|(t, _)| *t <= self.now).unwrap_or(false) {
                    let (_, p) = self.b_to_a.pop_front().unwrap();
                    let (pkts, evs) = a.on_packet(self.now, &p);
                    ev_a.extend(evs);
                    self.push_a(pkts);
                    continue;
                }
                let (pkts, evs) = a.on_tick(self.now);
                ev_a.extend(evs);
                self.push_a(pkts);
                let (pkts, evs) = b.on_tick(self.now);
                ev_b.extend(evs);
                self.push_b(pkts);
            }
            (ev_a, ev_b)
        }
    }

    fn established_pair(pipe: &mut Pipe) -> (TcpConnection, TcpConnection) {
        let cfg = TcpConfig::default();
        let (mut a, syn) = TcpConnection::client(cfg, 5000, 443, SimTime::ZERO);
        let mut b = TcpConnection::listen(cfg, 443, 5000);
        pipe.push_a(syn);
        let (ev_a, ev_b) = pipe.run(&mut a, &mut b, SimTime::from_secs(5));
        assert!(ev_a.contains(&TcpEvent::Connected));
        assert!(ev_b.contains(&TcpEvent::Connected));
        assert_eq!(a.state, TcpState::Established);
        assert_eq!(b.state, TcpState::Established);
        (a, b)
    }

    fn collect_data(events: &[TcpEvent]) -> Vec<u8> {
        let mut out = Vec::new();
        for e in events {
            if let TcpEvent::Data(d) = e {
                out.extend_from_slice(d);
            }
        }
        out
    }

    #[test]
    fn handshake_completes() {
        let mut pipe = Pipe::new(10);
        let _ = established_pair(&mut pipe);
    }

    #[test]
    fn data_transfers_in_order() {
        let mut pipe = Pipe::new(10);
        let (mut a, mut b) = established_pair(&mut pipe);
        let msg = vec![7u8; 10_000];
        let pkts = a.send_data(pipe.now, &msg);
        pipe.push_a(pkts);
        let (_, ev_b) = pipe.run(&mut a, &mut b, SimTime::from_secs(10));
        assert_eq!(collect_data(&ev_b), msg);
        assert_eq!(a.bytes_acked, 10_000);
        assert!(!a.has_unacked_data());
    }

    #[test]
    fn data_sent_before_established_is_buffered() {
        let cfg = TcpConfig::default();
        let (mut a, syn) = TcpConnection::client(cfg, 5000, 443, SimTime::ZERO);
        let mut b = TcpConnection::listen(cfg, 443, 5000);
        let none = a.send_data(SimTime::ZERO, b"early");
        assert!(none.is_empty());
        let mut pipe = Pipe::new(5);
        pipe.push_a(syn);
        let (_, ev_b) = pipe.run(&mut a, &mut b, SimTime::from_secs(5));
        assert_eq!(collect_data(&ev_b), b"early");
    }

    #[test]
    fn lost_segment_is_retransmitted() {
        let mut pipe = Pipe::new(10);
        let (mut a, mut b) = established_pair(&mut pipe);
        // Drop the first data segment from a.
        let mut dropped = false;
        pipe.drop_a_to_b = Box::new(move |_, p| {
            if !dropped && !p.payload.is_empty() && p.header.proto == Proto::Tcp {
                dropped = true;
                return true;
            }
            false
        });
        let msg = vec![3u8; 8_000];
        let pkts = a.send_data(pipe.now, &msg);
        pipe.push_a(pkts);
        let (_, ev_b) = pipe.run(&mut a, &mut b, SimTime::from_secs(30));
        assert_eq!(collect_data(&ev_b), msg);
        assert!(a.retransmissions >= 1);
    }

    #[test]
    fn out_of_order_data_is_reassembled() {
        let mut pipe = Pipe::new(10);
        let (mut a, mut b) = established_pair(&mut pipe);
        let msg: Vec<u8> = (0..20_000u32).map(|x| x as u8).collect();
        // Drop segment #2 on first transmission to force reordering.
        let mut count = 0;
        pipe.drop_a_to_b = Box::new(move |_, p| {
            if !p.payload.is_empty() {
                count += 1;
                return count == 2;
            }
            false
        });
        let pkts = a.send_data(pipe.now, &msg);
        pipe.push_a(pkts);
        let (_, ev_b) = pipe.run(&mut a, &mut b, SimTime::from_secs(30));
        assert_eq!(collect_data(&ev_b), msg, "reassembly must be exact");
    }

    #[test]
    fn survives_long_outage_and_recovers() {
        // §8.1: 100% loss for ~60 s; TCP must back off, survive, recover.
        let mut pipe = Pipe::new(10);
        let (mut a, mut b) = established_pair(&mut pipe);
        let start = pipe.now;
        let outage_end = start + SimDuration::from_secs(60);
        pipe.drop_a_to_b = Box::new(move |_, _| true);
        let pkts = a.send_data(pipe.now, b"blocked message");
        pipe.push_a(pkts);
        pipe.run(&mut a, &mut b, outage_end);
        assert_eq!(a.state, TcpState::Established, "must not die during 60 s outage");
        assert!(a.has_unacked_data());
        assert!(a.rto() > SimDuration::from_secs(10), "backoff grew: {}", a.rto());
        // Outage lifts.
        pipe.drop_a_to_b = Box::new(|_, _| false);
        let (_, ev_b) = pipe.run(&mut a, &mut b, outage_end + SimDuration::from_secs(120));
        assert_eq!(collect_data(&ev_b), b"blocked message");
        assert!(!a.has_unacked_data());
    }

    #[test]
    fn spurious_rto_undo_restores_window() {
        // A sudden 3 s RTT inflation (netem delay, §8.1) triggers RTOs,
        // but the originals eventually arrive: cwnd must be restored so
        // the next exchange completes in ~one (inflated) round trip.
        let mut pipe = Pipe::new(10);
        let (mut a, mut b) = established_pair(&mut pipe);
        // Grow cwnd with a warm-up transfer.
        let pkts = a.send_data(pipe.now, &vec![1u8; 60_000]);
        pipe.push_a(pkts);
        pipe.run(&mut a, &mut b, pipe.now + SimDuration::from_secs(10));
        let grown = a.cwnd();
        assert!(grown > 20_000, "warm cwnd {grown}");
        // Inflate the path RTT to 3 s and send a burst.
        pipe.delay = SimDuration::from_secs(3);
        let pkts = a.send_data(pipe.now, &vec![2u8; 10_000]);
        pipe.push_a(pkts);
        let start = pipe.now;
        let (_, ev_b) = pipe.run(&mut a, &mut b, start + SimDuration::from_secs(30));
        assert_eq!(
            collect_data(&ev_b).len(),
            10_000,
            "all data delivered despite RTO storms"
        );
        assert!(a.retransmissions > 0, "RTOs fired during the inflation");
        // The undo kept the window from collapsing to one segment.
        assert!(
            a.cwnd() >= grown / 2,
            "cwnd {} should be restored near {grown}",
            a.cwnd()
        );
        // And the RTT estimator adapted to the inflated path.
        assert!(a.srtt().unwrap() > SimDuration::from_secs(1));
    }

    #[test]
    fn rto_recovery_is_go_back_n_not_one_per_timeout() {
        // Drop an entire 26-segment burst once; the retransmissions must
        // complete within a handful of RTTs after the first RTO, not one
        // exponentially-spaced timeout per segment (which would take
        // minutes and starve §8.1's gated UDP forever).
        let mut pipe = Pipe::new(10);
        let (mut a, mut b) = established_pair(&mut pipe);
        let mut first_burst = true;
        pipe.drop_a_to_b = Box::new(move |_, p| {
            if first_burst && !p.payload.is_empty() {
                return true; // drop everything until the drops are disarmed
            }
            let _ = &mut first_burst;
            false
        });
        let msg = vec![5u8; 36_000];
        let start = pipe.now;
        let pkts = a.send_data(pipe.now, &msg);
        pipe.push_a(pkts);
        // Let the initial burst vanish, then re-open the pipe.
        pipe.run(&mut a, &mut b, start + SimDuration::from_millis(100));
        pipe.drop_a_to_b = Box::new(|_, _| false);
        // One initial RTO (~1 s) plus a few cwnd-doubling resend rounds at
        // the un-backed-off timeout must finish well within 8 s — one
        // exponentially-spaced timeout per segment would need minutes.
        let (_, ev_b) = pipe.run(&mut a, &mut b, start + SimDuration::from_secs(8));
        assert_eq!(collect_data(&ev_b), msg, "full stream recovered quickly");
    }

    #[test]
    fn gives_up_after_max_retries() {
        let cfg = TcpConfig {
            max_retries: 3,
            rto_max: SimDuration::from_secs(1),
            ..TcpConfig::default()
        };
        let mut pipe = Pipe::new(10);
        let (mut a0, syn) = TcpConnection::client(cfg, 5000, 443, SimTime::ZERO);
        let mut b0 = TcpConnection::listen(cfg, 443, 5000);
        pipe.push_a(syn);
        pipe.run(&mut a0, &mut b0, SimTime::from_secs(5));
        pipe.drop_a_to_b = Box::new(|_, _| true);
        let pkts = a0.send_data(pipe.now, b"doomed");
        pipe.push_a(pkts);
        let (ev_a, _) = pipe.run(&mut a0, &mut b0, SimTime::from_secs(200));
        assert!(ev_a.contains(&TcpEvent::Dead));
        assert_eq!(a0.state, TcpState::Dead);
        // A dead connection refuses further work.
        assert!(a0.send_data(pipe.now, b"more").is_empty());
    }

    #[test]
    fn rtt_estimate_tracks_path_delay() {
        let mut pipe = Pipe::new(25); // 50 ms RTT
        let (mut a, mut b) = established_pair(&mut pipe);
        for _ in 0..5 {
            let pkts = a.send_data(pipe.now, &[0u8; 500]);
            pipe.push_a(pkts);
            pipe.run(&mut a, &mut b, pipe.now + SimDuration::from_secs(1));
        }
        let srtt = a.srtt().expect("has RTT samples");
        assert!(
            (srtt.as_millis_f64() - 50.0).abs() < 10.0,
            "srtt {} should approximate 50 ms",
            srtt
        );
    }

    #[test]
    fn slow_start_grows_cwnd() {
        let mut pipe = Pipe::new(10);
        let (mut a, mut b) = established_pair(&mut pipe);
        let initial = a.cwnd();
        let pkts = a.send_data(pipe.now, &vec![1u8; 100_000]);
        pipe.push_a(pkts);
        pipe.run(&mut a, &mut b, pipe.now + SimDuration::from_secs(10));
        assert!(a.cwnd() > initial, "cwnd grew from {initial} to {}", a.cwnd());
        assert_eq!(b.bytes_delivered, 100_000);
    }

    #[test]
    fn graceful_close_delivers_closed_event() {
        let mut pipe = Pipe::new(10);
        let (mut a, mut b) = established_pair(&mut pipe);
        let pkts = a.send_data(pipe.now, b"bye");
        pipe.push_a(pkts);
        let pkts = a.close(pipe.now);
        pipe.push_a(pkts);
        let (ev_a, ev_b) = pipe.run(&mut a, &mut b, pipe.now + SimDuration::from_secs(10));
        assert_eq!(collect_data(&ev_b), b"bye");
        assert!(ev_b.contains(&TcpEvent::Closed), "receiver sees close: {ev_b:?}");
        assert!(ev_a.contains(&TcpEvent::Closed), "sender sees FIN acked");
        assert_eq!(a.state, TcpState::Closed);
    }

    #[test]
    fn fast_retransmit_on_triple_dup_ack() {
        let mut pipe = Pipe::new(10);
        let (mut a, mut b) = established_pair(&mut pipe);
        // Drop only the first data segment; subsequent segments trigger
        // dup ACKs and a fast retransmit well before the RTO.
        let mut count = 0;
        pipe.drop_a_to_b = Box::new(move |_, p| {
            if !p.payload.is_empty() {
                count += 1;
                return count == 1;
            }
            false
        });
        let msg = vec![9u8; 14_000]; // 10 segments
        let pkts = a.send_data(pipe.now, &msg);
        let t0 = pipe.now;
        pipe.push_a(pkts);
        let (_, ev_b) = pipe.run(&mut a, &mut b, t0 + SimDuration::from_secs(30));
        assert_eq!(collect_data(&ev_b), msg);
        assert!(a.retransmissions >= 1);
        // Recovery must be far faster than the 1 s initial RTO —
        // evidence the retransmit was dup-ACK-triggered.
        let done_by = b.bytes_delivered;
        assert_eq!(done_by, 14_000);
    }

    #[test]
    fn seq_comparisons_wrap() {
        assert!(seq_gt(1, 0));
        assert!(seq_gt(0, u32::MAX)); // wrap: 0 is "after" MAX
        assert!(seq_le(5, 5));
        assert!(!seq_gt(5, 10));
    }

    /// Exhaustive integrity under random bidirectional loss: whatever the
    /// drop pattern, the receiver must reconstruct the exact byte stream.
    fn lossy_transfer(seed: u64, loss: f64, len: usize) -> bool {
        use svr_netsim::SimRng;
        let cfg = TcpConfig { rto_max: SimDuration::from_secs(5), ..TcpConfig::default() };
        let (mut a, syn) = TcpConnection::client(cfg, 5000, 443, SimTime::ZERO);
        let mut b = TcpConnection::listen(cfg, 443, 5000);
        let mut rng = SimRng::seed_from_u64(seed);
        let delay = SimDuration::from_millis(10);
        let mut a2b: VecDeque<(SimTime, Packet)> = VecDeque::new();
        let mut b2a: VecDeque<(SimTime, Packet)> = VecDeque::new();
        let mut now = SimTime::ZERO;
        for p in syn {
            a2b.push_back((now + delay, p));
        }
        let msg: Vec<u8> = (0..len).map(|i| (i * 31) as u8).collect();
        let mut offered = false;
        let mut got: Vec<u8> = Vec::new();
        let deadline = SimTime::from_secs(600);
        loop {
            let mut next = SimTime::MAX;
            for t in [
                a2b.front().map(|(t, _)| *t),
                b2a.front().map(|(t, _)| *t),
                a.next_timer(),
                b.next_timer(),
            ]
            .into_iter()
            .flatten()
            {
                next = next.min(t);
            }
            if next > deadline || (got.len() == len && offered && !a.has_unacked_data()) {
                break;
            }
            now = next;
            if a2b.front().map(|(t, _)| *t <= now).unwrap_or(false) {
                let (_, p) = a2b.pop_front().unwrap();
                if rng.chance(loss) {
                    continue;
                }
                let (out, evs) = b.on_packet(now, &p);
                for e in evs {
                    if let TcpEvent::Data(d) = e {
                        got.extend_from_slice(&d);
                    }
                }
                for q in out {
                    b2a.push_back((now + delay, q));
                }
                continue;
            }
            if b2a.front().map(|(t, _)| *t <= now).unwrap_or(false) {
                let (_, p) = b2a.pop_front().unwrap();
                if rng.chance(loss) {
                    continue;
                }
                let (out, evs) = a.on_packet(now, &p);
                if !offered && evs.contains(&TcpEvent::Connected) {
                    offered = true;
                    for q in a.send_data(now, &msg) {
                        a2b.push_back((now + delay, q));
                    }
                }
                for q in out {
                    a2b.push_back((now + delay, q));
                }
                continue;
            }
            let (out, _) = a.on_tick(now);
            if !offered && a.state == TcpState::Established {
                offered = true;
                for q in a.send_data(now, &msg) {
                    a2b.push_back((now + delay, q));
                }
            }
            for q in out {
                a2b.push_back((now + delay, q));
            }
            let (out, _) = b.on_tick(now);
            for q in out {
                b2a.push_back((now + delay, q));
            }
        }
        got == msg
    }

    /// Deterministic seeded-loop fallback for the proptest version below:
    /// always compiled, so the integrity property stays covered offline.
    #[test]
    fn prop_integrity_under_random_loss_seeded() {
        let mut rng = svr_netsim::SimRng::seed_from_u64(0x7C9_0001);
        for _case in 0..24 {
            let seed = rng.next_u64();
            let loss = rng.range_f64(0.0, 0.35);
            let len = rng.range_u64(1, 19_999) as usize;
            assert!(
                lossy_transfer(seed, loss, len),
                "stream corrupted or stalled (seed {seed}, loss {loss:.2}, len {len})"
            );
        }
    }

    #[cfg(feature = "proptests")]
    mod props {
        use super::*;

        proptest::proptest! {
            #![proptest_config(proptest::prelude::ProptestConfig::with_cases(24))]
            #[test]
            fn prop_integrity_under_random_loss(
                seed in proptest::prelude::any::<u64>(),
                loss in 0.0f64..0.35,
                len in 1usize..20_000,
            ) {
                proptest::prop_assert!(
                    lossy_transfer(seed, loss, len),
                    "stream corrupted or stalled (seed {seed}, loss {loss:.2}, len {len})"
                );
            }
        }
    }

    #[test]
    fn heavy_loss_still_delivers_exact_stream() {
        assert!(lossy_transfer(7, 0.3, 50_000));
    }

    #[test]
    fn duplicate_data_is_reacked_not_redelivered() {
        let mut pipe = Pipe::new(10);
        let (mut a, mut b) = established_pair(&mut pipe);
        let pkts = a.send_data(pipe.now, b"once");
        // Duplicate the data packet manually.
        let dup = pkts[0].clone();
        pipe.push_a(pkts);
        pipe.run(&mut a, &mut b, pipe.now + SimDuration::from_secs(2));
        let (_acks, evs) = b.on_packet(pipe.now, &dup);
        assert!(collect_data(&evs).is_empty(), "no double delivery");
        assert_eq!(b.bytes_delivered, 4);
    }
}
