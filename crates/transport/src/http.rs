//! Minimal HTTP/1.1 over the TLS record layer over TCP.
//!
//! The control channel of every platform is HTTPS (§4.1): menu
//! operations, initialization downloads, and the periodic ~10 s client
//! report "spikes". [`HttpClient`] and [`HttpServer`] implement enough of
//! HTTP/1.1 (request line, `Content-Length` framing, pipelining) over the
//! [`crate::tls`] record layer and [`crate::tcp`] to generate honest wire
//! byte counts for those interactions.

use crate::tcp::{TcpConfig, TcpConnection, TcpEvent};
use crate::tls::{
    seal_stream, HandshakeProfile, PlainRecord, RecordUnsealer, TlsSession, CONTENT_APPDATA,
    CONTENT_HANDSHAKE,
};
use svr_netsim::buf::{Bytes, BytesMut};
use std::collections::VecDeque;
use svr_netsim::{Packet, SimTime};

/// A completed request/response exchange, as seen by the client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpExchange {
    /// Request path.
    pub path: String,
    /// Response status code.
    pub status: u16,
    /// Response body length.
    pub body_len: usize,
    /// When the request was issued.
    pub started: SimTime,
    /// When the full response arrived.
    pub completed: SimTime,
}

/// Events surfaced by [`HttpClient::on_packet`] / [`HttpClient::on_tick`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpEvent {
    /// TLS session established; requests will now flow.
    Ready,
    /// A response completed.
    Response(HttpExchange),
    /// The underlying TCP connection died.
    Dead,
}

/// Incremental parser for `Content-Length`-framed HTTP messages.
#[derive(Debug, Default)]
struct MessageParser {
    buf: BytesMut,
}

/// One parsed message: start line + body.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Message {
    start_line: String,
    body: Bytes,
}

impl MessageParser {
    fn feed(&mut self, data: &[u8]) -> Vec<Message> {
        self.buf.extend_from_slice(data);
        let mut out = Vec::new();
        while let Some(header_end) = find_subslice(&self.buf, b"\r\n\r\n") {
            let header = String::from_utf8_lossy(&self.buf[..header_end]).into_owned();
            let content_length = header
                .lines()
                .find_map(|l| {
                    let l = l.trim();
                    let rest = l
                        .strip_prefix("Content-Length:")
                        .or_else(|| l.strip_prefix("content-length:"))?;
                    rest.trim().parse::<usize>().ok()
                })
                .unwrap_or(0);
            let total = header_end + 4 + content_length;
            if self.buf.len() < total {
                break;
            }
            let msg = self.buf.split_to(total);
            let start_line = header.lines().next().unwrap_or_default().to_string();
            out.push(Message {
                start_line,
                body: Bytes::copy_from_slice(&msg[header_end + 4..]),
            });
        }
        out
    }
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

fn format_request(method: &str, path: &str, body_len: usize) -> String {
    format!(
        "{method} {path} HTTP/1.1\r\nHost: platform\r\nContent-Length: {body_len}\r\nConnection: keep-alive\r\n\r\n"
    )
}

fn format_response(status: u16, body_len: usize) -> String {
    let reason = if status == 200 { "OK" } else { "Error" };
    format!("HTTP/1.1 {status} {reason}\r\nContent-Length: {body_len}\r\n\r\n")
}

/// Seal application bytes and hand them to TCP.
fn send_sealed(tcp: &mut TcpConnection, now: SimTime, plain: &[u8]) -> Vec<Packet> {
    let mut stream = Vec::new();
    for rec in seal_stream(CONTENT_APPDATA, plain) {
        stream.extend_from_slice(&rec);
    }
    tcp.send_data(now, &stream)
}

/// HTTPS client endpoint.
#[derive(Debug)]
pub struct HttpClient {
    tcp: TcpConnection,
    tls: TlsSession,
    unsealer: RecordUnsealer,
    parser: MessageParser,
    /// Requests issued but not yet answered (FIFO; HTTP/1.1 pipelining).
    inflight: VecDeque<(String, SimTime)>,
    /// Requests queued until TLS establishes.
    queued: VecDeque<(String, Vec<u8>)>,
    ready_emitted: bool,
}

impl HttpClient {
    /// Open a connection; returns the client and the TCP SYN.
    pub fn connect(cfg: TcpConfig, local_port: u16, remote_port: u16, now: SimTime) -> (Self, Vec<Packet>) {
        let (tcp, pkts) = TcpConnection::client(cfg, local_port, remote_port, now);
        (
            HttpClient {
                tcp,
                tls: TlsSession::client(HandshakeProfile::default()),
                unsealer: RecordUnsealer::new(),
                parser: MessageParser::default(),
                inflight: VecDeque::new(),
                queued: VecDeque::new(),
                ready_emitted: false,
            },
            pkts,
        )
    }

    /// Whether TLS is established and requests flow immediately.
    pub fn is_ready(&self) -> bool {
        self.tls.is_established()
    }

    /// Whether TCP has unacknowledged data in flight (the Worlds
    /// UDP-gating signal of §8.1).
    pub fn has_unacked_data(&self) -> bool {
        self.tcp.has_unacked_data()
    }

    /// Access the underlying TCP connection (for diagnostics).
    pub fn tcp(&self) -> &TcpConnection {
        &self.tcp
    }

    /// Issue a request (queued until TLS is up).
    pub fn request(&mut self, now: SimTime, method: &str, path: &str, body: &[u8]) -> Vec<Packet> {
        if !self.tls.is_established() {
            self.queued.push_back((format!("{method} {path}"), body.to_vec()));
            // Store enough to rebuild: we re-issue from `queued` on Ready.
            self.inflight.push_back((path.to_string(), now));
            return Vec::new();
        }
        self.inflight.push_back((path.to_string(), now));
        let head = format_request(method, path, body.len());
        let mut plain = head.into_bytes();
        plain.extend_from_slice(body);
        send_sealed(&mut self.tcp, now, &plain)
    }

    fn drain_queued(&mut self, now: SimTime) -> Vec<Packet> {
        let mut out = Vec::new();
        while let Some((head, body)) = self.queued.pop_front() {
            let mut it = head.splitn(2, ' ');
            let method = it.next().unwrap_or("GET").to_string();
            let path = it.next().unwrap_or("/").to_string();
            let req = format_request(&method, &path, body.len());
            let mut plain = req.into_bytes();
            plain.extend_from_slice(&body);
            out.extend(send_sealed(&mut self.tcp, now, &plain));
        }
        out
    }

    fn process_tcp_events(
        &mut self,
        now: SimTime,
        tcp_events: Vec<TcpEvent>,
        out: &mut Vec<Packet>,
        events: &mut Vec<HttpEvent>,
    ) {
        for ev in tcp_events {
            match ev {
                TcpEvent::Connected => {
                    if let Some(flight) = self.tls.flight_to_send() {
                        out.extend(self.tcp.send_data(now, &flight));
                    }
                }
                TcpEvent::Data(data) => {
                    let records = match self.unsealer.feed(&data) {
                        Ok(r) => r,
                        Err(_) => continue, // corrupted record: drop
                    };
                    for rec in records {
                        self.handle_record(now, &rec, out, events);
                    }
                }
                TcpEvent::Dead => events.push(HttpEvent::Dead),
                TcpEvent::Closed => {}
            }
        }
    }

    fn handle_record(
        &mut self,
        now: SimTime,
        rec: &PlainRecord,
        out: &mut Vec<Packet>,
        events: &mut Vec<HttpEvent>,
    ) {
        if rec.content_type == CONTENT_HANDSHAKE {
            if let Some(resp) = self.tls.on_handshake_record(rec) {
                out.extend(self.tcp.send_data(now, &resp));
            }
            if self.tls.is_established() && !self.ready_emitted {
                self.ready_emitted = true;
                events.push(HttpEvent::Ready);
                out.extend(self.drain_queued(now));
            }
            return;
        }
        for msg in self.parser.feed(&rec.plaintext) {
            let status: u16 = msg
                .start_line
                .split_whitespace()
                .nth(1)
                .and_then(|s| s.parse().ok())
                .unwrap_or(0);
            if let Some((path, started)) = self.inflight.pop_front() {
                events.push(HttpEvent::Response(HttpExchange {
                    path,
                    status,
                    body_len: msg.body.len(),
                    started,
                    completed: now,
                }));
            }
        }
    }

    /// Process an incoming packet.
    pub fn on_packet(&mut self, now: SimTime, pkt: &Packet) -> (Vec<Packet>, Vec<HttpEvent>) {
        let (mut out, tcp_events) = self.tcp.on_packet(now, pkt);
        let mut events = Vec::new();
        self.process_tcp_events(now, tcp_events, &mut out, &mut events);
        (out, events)
    }

    /// Drive timers.
    pub fn on_tick(&mut self, now: SimTime) -> (Vec<Packet>, Vec<HttpEvent>) {
        let (mut out, tcp_events) = self.tcp.on_tick(now);
        let mut events = Vec::new();
        self.process_tcp_events(now, tcp_events, &mut out, &mut events);
        (out, events)
    }

    /// Next timer deadline of the underlying TCP machine.
    pub fn next_timer(&self) -> Option<SimTime> {
        self.tcp.next_timer()
    }
}

/// Decides the response to a request: `(status, body_len)`.
pub type Responder = Box<dyn FnMut(&str, usize) -> (u16, usize) + Send>;

/// HTTPS server endpoint (one per client connection).
pub struct HttpServer {
    tcp: TcpConnection,
    tls: TlsSession,
    unsealer: RecordUnsealer,
    parser: MessageParser,
    responder: Responder,
    /// Requests served.
    pub requests_served: u64,
}

impl std::fmt::Debug for HttpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpServer")
            .field("requests_served", &self.requests_served)
            .finish_non_exhaustive()
    }
}

impl HttpServer {
    /// Create a server endpoint awaiting a client SYN.
    pub fn listen(cfg: TcpConfig, local_port: u16, remote_port: u16, responder: Responder) -> Self {
        HttpServer {
            tcp: TcpConnection::listen(cfg, local_port, remote_port),
            tls: TlsSession::server(HandshakeProfile::default()),
            unsealer: RecordUnsealer::new(),
            parser: MessageParser::default(),
            responder,
            requests_served: 0,
        }
    }

    /// Process an incoming packet.
    pub fn on_packet(&mut self, now: SimTime, pkt: &Packet) -> Vec<Packet> {
        let (mut out, tcp_events) = self.tcp.on_packet(now, pkt);
        for ev in tcp_events {
            if let TcpEvent::Data(data) = ev {
                let Ok(records) = self.unsealer.feed(&data) else { continue };
                for rec in records {
                    if rec.content_type == CONTENT_HANDSHAKE {
                        if let Some(resp) = self.tls.on_handshake_record(&rec) {
                            out.extend(self.tcp.send_data(now, &resp));
                        }
                        continue;
                    }
                    for msg in self.parser.feed(&rec.plaintext) {
                        let path = msg
                            .start_line
                            .split_whitespace()
                            .nth(1)
                            .unwrap_or("/")
                            .to_string();
                        let (status, body_len) = (self.responder)(&path, msg.body.len());
                        self.requests_served += 1;
                        let head = format_response(status, body_len);
                        let mut plain = head.into_bytes();
                        plain.extend(std::iter::repeat_n(0x42u8, body_len));
                        out.extend(send_sealed(&mut self.tcp, now, &plain));
                    }
                }
            }
        }
        out
    }

    /// Drive timers.
    pub fn on_tick(&mut self, now: SimTime) -> Vec<Packet> {
        let (out, _) = self.tcp.on_tick(now);
        out
    }

    /// Next timer deadline.
    pub fn next_timer(&self) -> Option<SimTime> {
        self.tcp.next_timer()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svr_netsim::SimDuration;

    /// Drive a client/server pair over a zero-loss pipe with fixed delay.
    fn run_pair(
        client: &mut HttpClient,
        server: &mut HttpServer,
        mut from_client: Vec<Packet>,
        delay: SimDuration,
        start: SimTime,
        until: SimTime,
    ) -> Vec<HttpEvent> {
        let mut events = Vec::new();
        let mut c2s: VecDeque<(SimTime, Packet)> = VecDeque::new();
        let mut s2c: VecDeque<(SimTime, Packet)> = VecDeque::new();
        let mut now = start;
        for p in from_client.drain(..) {
            c2s.push_back((now + delay, p));
        }
        loop {
            let mut next = SimTime::MAX;
            if let Some((t, _)) = c2s.front() {
                next = next.min(*t);
            }
            if let Some((t, _)) = s2c.front() {
                next = next.min(*t);
            }
            if let Some(t) = client.next_timer() {
                next = next.min(t);
            }
            if let Some(t) = server.next_timer() {
                next = next.min(t);
            }
            if next > until {
                break;
            }
            now = next;
            if let Some((t, _)) = c2s.front() {
                if *t <= now {
                    let (_, p) = c2s.pop_front().unwrap();
                    for pkt in server.on_packet(now, &p) {
                        s2c.push_back((now + delay, pkt));
                    }
                    continue;
                }
            }
            if let Some((t, _)) = s2c.front() {
                if *t <= now {
                    let (_, p) = s2c.pop_front().unwrap();
                    let (pkts, evs) = client.on_packet(now, &p);
                    events.extend(evs);
                    for pkt in pkts {
                        c2s.push_back((now + delay, pkt));
                    }
                    continue;
                }
            }
            let (pkts, evs) = client.on_tick(now);
            events.extend(evs);
            for pkt in pkts {
                c2s.push_back((now + delay, pkt));
            }
            for pkt in server.on_tick(now) {
                s2c.push_back((now + delay, pkt));
            }
        }
        events
    }

    fn new_pair(responder: Responder) -> (HttpClient, HttpServer, Vec<Packet>) {
        let cfg = TcpConfig::default();
        let (client, syn) = HttpClient::connect(cfg, 50_000, 443, SimTime::ZERO);
        let server = HttpServer::listen(cfg, 443, 50_000, responder);
        (client, server, syn)
    }

    #[test]
    fn request_response_roundtrip() {
        let (mut client, mut server, syn) = new_pair(Box::new(|path, _| {
            assert_eq!(path, "/menu");
            (200, 5_000)
        }));
        let mut pkts = syn;
        pkts.extend(client.request(SimTime::ZERO, "GET", "/menu", &[]));
        let events = run_pair(
            &mut client,
            &mut server,
            pkts,
            SimDuration::from_millis(10),
            SimTime::ZERO,
            SimTime::from_secs(10),
        );
        assert!(events.contains(&HttpEvent::Ready));
        let resp = events
            .iter()
            .find_map(|e| match e {
                HttpEvent::Response(x) => Some(x.clone()),
                _ => None,
            })
            .expect("response arrived");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body_len, 5_000);
        assert_eq!(resp.path, "/menu");
        assert!(resp.completed > resp.started);
        assert_eq!(server.requests_served, 1);
    }

    #[test]
    fn queued_requests_flow_after_tls() {
        // Request issued immediately at connect time must survive the
        // handshake and still be answered.
        let (mut client, mut server, syn) = new_pair(Box::new(|_, _| (200, 10)));
        let mut pkts = syn;
        pkts.extend(client.request(SimTime::ZERO, "POST", "/report", &[1u8; 500]));
        let events = run_pair(
            &mut client,
            &mut server,
            pkts,
            SimDuration::from_millis(5),
            SimTime::ZERO,
            SimTime::from_secs(10),
        );
        let responses: Vec<_> = events
            .iter()
            .filter(|e| matches!(e, HttpEvent::Response(_)))
            .collect();
        assert_eq!(responses.len(), 1);
    }

    #[test]
    fn pipelined_requests_answered_in_order() {
        let (mut client, mut server, syn) = new_pair(Box::new(|path, _| {
            (200, if path == "/a" { 100 } else { 200 })
        }));
        let mut pkts = syn;
        pkts.extend(client.request(SimTime::ZERO, "GET", "/a", &[]));
        pkts.extend(client.request(SimTime::ZERO, "GET", "/b", &[]));
        let events = run_pair(
            &mut client,
            &mut server,
            pkts,
            SimDuration::from_millis(5),
            SimTime::ZERO,
            SimTime::from_secs(10),
        );
        let resps: Vec<HttpExchange> = events
            .into_iter()
            .filter_map(|e| match e {
                HttpEvent::Response(x) => Some(x),
                _ => None,
            })
            .collect();
        assert_eq!(resps.len(), 2);
        assert_eq!(resps[0].path, "/a");
        assert_eq!(resps[0].body_len, 100);
        assert_eq!(resps[1].path, "/b");
        assert_eq!(resps[1].body_len, 200);
    }

    #[test]
    fn large_response_spans_many_segments() {
        let (mut client, mut server, syn) = new_pair(Box::new(|_, _| (200, 300_000)));
        let mut pkts = syn;
        pkts.extend(client.request(SimTime::ZERO, "GET", "/world.glb", &[]));
        let events = run_pair(
            &mut client,
            &mut server,
            pkts,
            SimDuration::from_millis(10),
            SimTime::ZERO,
            SimTime::from_secs(60),
        );
        let resp = events
            .iter()
            .find_map(|e| match e {
                HttpEvent::Response(x) => Some(x.clone()),
                _ => None,
            })
            .expect("large response completes");
        assert_eq!(resp.body_len, 300_000);
    }

    #[test]
    fn request_latency_includes_handshake_and_rtt() {
        let (mut client, mut server, syn) = new_pair(Box::new(|_, _| (200, 10)));
        let mut pkts = syn;
        pkts.extend(client.request(SimTime::ZERO, "GET", "/x", &[]));
        let delay = SimDuration::from_millis(35); // one-way; RTT 70 ms like Hubs
        let events = run_pair(
            &mut client,
            &mut server,
            pkts,
            delay,
            SimTime::ZERO,
            SimTime::from_secs(10),
        );
        let resp = events
            .iter()
            .find_map(|e| match e {
                HttpEvent::Response(x) => Some(x.clone()),
                _ => None,
            })
            .unwrap();
        let elapsed = resp.completed.saturating_since(resp.started);
        // SYN exchange + TLS flights + request/response ≥ 3 RTTs = 210 ms.
        assert!(
            elapsed >= SimDuration::from_millis(210),
            "elapsed {elapsed} too fast for 70 ms RTT handshake"
        );
    }

    #[test]
    fn message_parser_handles_fragmentation() {
        let mut p = MessageParser::default();
        let msg = b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhello";
        assert!(p.feed(&msg[..10]).is_empty());
        assert!(p.feed(&msg[10..40]).is_empty());
        let done = p.feed(&msg[40..]);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].body.as_ref(), b"hello");
        assert_eq!(done[0].start_line, "HTTP/1.1 200 OK");
    }

    #[test]
    fn message_parser_handles_back_to_back_messages() {
        let mut p = MessageParser::default();
        let two = b"HTTP/1.1 200 OK\r\nContent-Length: 1\r\n\r\nAHTTP/1.1 404 Error\r\nContent-Length: 0\r\n\r\n";
        let done = p.feed(two);
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].body.as_ref(), b"A");
        assert!(done[1].start_line.contains("404"));
    }

    #[test]
    fn message_without_content_length_has_empty_body() {
        let mut p = MessageParser::default();
        let done = p.feed(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(done.len(), 1);
        assert!(done[0].body.is_empty());
    }
}
