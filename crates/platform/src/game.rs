//! In-world game workloads (§8's Arena Clash / Laser Tag / Voxel
//! Shooting).
//!
//! A game raises the data-channel rate (Worlds' shooter reaches
//! ~1.2 Mbps up / 0.7 Mbps down, §8.1) and — on Worlds — depends on the
//! TCP control channel for clock synchronisation: the in-game countdown
//! board stops updating when TCP is delayed, one of the paper's §8.1
//! observations.

use crate::config::GameTraffic;
use svr_netsim::{SimDuration, SimRng, SimTime};

/// Client-side state of a running game.
#[derive(Debug)]
pub struct GameClient {
    traffic: GameTraffic,
    next_tick: SimTime,
    rng: SimRng,
    /// When the last server clock sync arrived.
    pub last_sync: Option<SimTime>,
    /// Server-authoritative round end, set by clock syncs.
    pub round_ends_at: Option<SimTime>,
    /// Game-state updates produced.
    pub updates_sent: u64,
}

/// A countdown is considered stale when no sync arrived for this long.
pub const SYNC_STALE_AFTER: SimDuration = SimDuration::from_secs(15);

impl GameClient {
    /// Start a game session.
    pub fn new(traffic: GameTraffic, now: SimTime, seed: u64) -> Self {
        GameClient {
            traffic,
            next_tick: now,
            rng: SimRng::seed_from_u64(seed ^ 0x47414D45),
            last_sync: None,
            round_ends_at: None,
            updates_sent: 0,
        }
    }

    /// The game-state payload due at `now`, if the tick timer fired.
    pub fn on_tick(&mut self, now: SimTime) -> Option<Vec<u8>> {
        if now < self.next_tick {
            return None;
        }
        self.next_tick = now + SimDuration::from_secs_f64(1.0 / self.traffic.tick_hz);
        self.updates_sent += 1;
        // Synthesised game state: position deltas, shots, hits.
        let mut body = vec![0u8; self.traffic.bytes_per_tick];
        for b in body.iter_mut().take(8) {
            *b = (self.rng.next_u64() & 0xFF) as u8;
        }
        Some(body)
    }

    /// When the next game-state payload is due.
    pub fn next_timer(&self) -> SimTime {
        self.next_tick
    }

    /// Apply a clock sync from the control channel.
    pub fn apply_sync(&mut self, now: SimTime, round_ends_at: SimTime) {
        self.last_sync = Some(now);
        self.round_ends_at = Some(round_ends_at);
    }

    /// Whether the countdown board has stopped updating (no sync within
    /// [`SYNC_STALE_AFTER`]) — the frozen countdown of §8.1.
    pub fn countdown_stale(&self, now: SimTime) -> bool {
        match self.last_sync {
            Some(t) => now.saturating_since(t) > SYNC_STALE_AFTER,
            None => true,
        }
    }

    /// Remaining round time as displayed (extrapolated from the last
    /// sync; `None` before the first sync).
    pub fn countdown_remaining(&self, now: SimTime) -> Option<SimDuration> {
        self.round_ends_at.map(|end| end.saturating_since(now))
    }

    /// The configured traffic profile.
    pub fn traffic(&self) -> GameTraffic {
        self.traffic
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traffic() -> GameTraffic {
        GameTraffic { tick_hz: 60.0, bytes_per_tick: 815, forward_fraction: 0.62 }
    }

    #[test]
    fn ticks_at_configured_rate() {
        let mut g = GameClient::new(traffic(), SimTime::ZERO, 1);
        let mut count = 0;
        for ms in 0..1000u64 {
            if g.on_tick(SimTime::from_millis(ms)).is_some() {
                count += 1;
            }
        }
        assert!((55..=61).contains(&count), "{count} ticks in 1 s at 60 Hz");
        assert_eq!(g.updates_sent, count);
    }

    #[test]
    fn payload_size_matches_profile() {
        let mut g = GameClient::new(traffic(), SimTime::ZERO, 1);
        let body = g.on_tick(SimTime::ZERO).unwrap();
        assert_eq!(body.len(), 815);
    }

    #[test]
    fn countdown_requires_and_tracks_sync() {
        let mut g = GameClient::new(traffic(), SimTime::ZERO, 1);
        assert!(g.countdown_stale(SimTime::ZERO));
        assert_eq!(g.countdown_remaining(SimTime::ZERO), None);
        g.apply_sync(SimTime::from_secs(1), SimTime::from_secs(61));
        assert!(!g.countdown_stale(SimTime::from_secs(10)));
        assert_eq!(
            g.countdown_remaining(SimTime::from_secs(31)),
            Some(SimDuration::from_secs(30))
        );
        // 15 s without a sync: the board freezes (§8.1).
        assert!(g.countdown_stale(SimTime::from_secs(17)));
    }

    #[test]
    fn deterministic_payloads_per_seed() {
        let mut a = GameClient::new(traffic(), SimTime::ZERO, 7);
        let mut b = GameClient::new(traffic(), SimTime::ZERO, 7);
        assert_eq!(a.on_tick(SimTime::ZERO), b.on_tick(SimTime::ZERO));
    }
}
