//! Per-platform configuration: the measured identity of each platform.
//!
//! Everything the paper attributes to a specific platform is a field
//! here: protocols and server pools per channel (Table 2), avatar
//! embodiment/tick/envelope (which *produce* Table 3's rates through the
//! codec), client perf profile (Fig. 7/8), forwarding policy (§6),
//! processing latencies (Table 4), background-download behaviour (§5.2),
//! and Worlds' TCP-priority and clock-sync quirks (§8).
//!
//! Calibration note: tick rates and envelope sizes are chosen so that the
//! *mechanical* cost of one update (codec bytes + app/UDP/IP overheads)
//! times the tick rate lands on the paper's measured per-avatar rates;
//! the rates themselves are never hard-coded anywhere downstream.

use svr_avatar::Embodiment;
use svr_client::{DeviceProfile, PerfProfile, Resolution};
use svr_geo::{Owner, ServerPool, Site};
use svr_netsim::{Bitrate, SimDuration};

use crate::server::ForwardPolicy;

/// The five platforms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlatformId {
    /// AltspaceVR (Microsoft, 2015).
    AltspaceVr,
    /// Mozilla Hubs (2018) — Web-based.
    Hubs,
    /// Rec Room (2016).
    RecRoom,
    /// VRChat (2017).
    VrChat,
    /// Horizon Worlds (Meta, 2021).
    Worlds,
}

impl PlatformId {
    /// All platforms, alphabetical.
    pub const ALL: [PlatformId; 5] = [
        PlatformId::AltspaceVr,
        PlatformId::Hubs,
        PlatformId::RecRoom,
        PlatformId::VrChat,
        PlatformId::Worlds,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            PlatformId::AltspaceVr => "AltspaceVR",
            PlatformId::Hubs => "Hubs",
            PlatformId::RecRoom => "Rec Room",
            PlatformId::VrChat => "VRChat",
            PlatformId::Worlds => "Worlds",
        }
    }
}

impl std::fmt::Display for PlatformId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// How the data channel is carried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataTransport {
    /// Raw UDP datagrams (AltspaceVR, Rec Room, VRChat, Worlds).
    Udp,
    /// A TLS-framed TCP stream — Hubs sends avatar state over HTTPS
    /// while voice rides RTP/WebRTC (§4.1).
    TlsStream,
}

/// Channel classification used throughout the analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelKind {
    /// Menu operations, reports, clock sync — HTTPS.
    Control,
    /// Avatar embodiment, motion, voice, game state.
    Data,
}

/// Extra traffic a game adds on the data channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GameTraffic {
    /// Game-state update rate.
    pub tick_hz: f64,
    /// Payload per update.
    pub bytes_per_tick: usize,
    /// Fraction of game traffic the server forwards to peers (the rest is
    /// server-authoritative bookkeeping).
    pub forward_fraction: f64,
}

/// Full configuration of one platform.
#[derive(Debug, Clone)]
pub struct PlatformConfig {
    /// Which platform.
    pub id: PlatformId,
    /// Data-channel transport (Table 2).
    pub data_transport: DataTransport,
    /// Control-channel (HTTPS) server pool.
    pub control_pool: ServerPool,
    /// Data-channel server pool.
    pub data_pool: ServerPool,

    // --- avatar traffic (drives Table 3) ---
    /// Avatar embodiment profile.
    pub embodiment: Embodiment,
    /// Avatar update rate.
    pub avatar_tick_hz: f64,
    /// Extra envelope bytes per avatar update (framing/metadata beyond
    /// the pose codec — JSON-ish wrapping for Hubs, viseme/status for
    /// Worlds).
    pub avatar_envelope_bytes: usize,

    // --- miscellaneous data-channel traffic ---
    /// Client status messages on the data channel (not forwarded).
    pub status_rate_hz: f64,
    /// Bytes per status message.
    pub status_bytes: usize,
    /// Worlds-style telemetry: high-rate uplink the server keeps.
    pub telemetry_rate_hz: f64,
    /// Bytes per telemetry message.
    pub telemetry_bytes: usize,
    /// Server→client housekeeping on the data channel.
    pub server_status_rate_hz: f64,
    /// Bytes per server housekeeping message.
    pub server_status_bytes: usize,
    /// Voice frame rate when a user is unmuted (Opus-like 20 ms frames).
    pub voice_frame_hz: f64,
    /// Voice frame payload bytes.
    pub voice_frame_bytes: usize,

    // --- control channel ---
    /// Periodic client report interval (the ~10 s HTTPS spikes of §4.1).
    pub report_interval: Option<SimDuration>,
    /// Report upload size.
    pub report_up_bytes: usize,
    /// Report response size.
    pub report_down_bytes: usize,

    // --- initialization (§5.2 background download) ---
    /// Bytes downloaded when the app launches (virtual background etc.).
    pub init_download_bytes: u64,
    /// Hubs' behaviour: re-download on every join (no caching — the bug
    /// the authors reported to Mozilla).
    pub redownload_every_join: bool,

    // --- rendering ---
    /// Content resolution the app renders at (Table 3).
    pub resolution: Resolution,
    /// Client performance profile.
    pub perf: PerfProfile,

    // --- server behaviour ---
    /// Forwarding policy (§6: only AltspaceVR is viewport-adaptive).
    pub forward_policy: ForwardPolicy,
    /// Fixed server processing latency per forwarded message.
    pub server_base_proc: SimDuration,
    /// Quadratic queueing coefficient, ms: server processing grows as
    /// `base + quad × (N-2)²` with N concurrent users — the growing
    /// per-user latency deltas of Fig. 11.
    pub server_queue_quad_ms: f64,
    /// Fraction of avatar payload the server forwards (Worlds' uplink is
    /// visibly larger than its peers' downlink, §5.1).
    pub forward_compression: f64,

    // --- latency model (Table 4 anchors) ---
    /// Mean sender-side processing latency, ms.
    pub sender_proc_ms: f64,
    /// Mean receiver-side processing latency at two users, ms.
    pub receiver_proc_ms: f64,
    /// Extra receiver latency per additional concurrent user, ms
    /// (Fig. 11's growth is mainly receiver-side, §7).
    pub receiver_per_user_ms: f64,

    // --- quirks ---
    /// Worlds: UDP sends are gated while TCP has unacked data (§8.1).
    pub tcp_priority: bool,
    /// Worlds: periodic clock-sync over the control channel that games
    /// depend on (§8.1).
    pub clock_sync: bool,
    /// UDP data-channel liveness timeout (Worlds dies after ~30 s of
    /// silence and never recovers).
    pub udp_timeout: Option<SimDuration>,

    // --- games ---
    /// Game traffic profile, if the platform has games.
    pub game: Option<GameTraffic>,
}

impl PlatformConfig {
    /// Look up by id (the public production deployments).
    pub fn of(id: PlatformId) -> PlatformConfig {
        match id {
            PlatformId::AltspaceVr => Self::altspace(),
            PlatformId::Hubs => Self::hubs(),
            PlatformId::RecRoom => Self::recroom(),
            PlatformId::VrChat => Self::vrchat(),
            PlatformId::Worlds => Self::worlds(),
        }
    }

    /// AltspaceVR: anycast HTTPS control, unicast west-coast UDP data,
    /// simplest avatar, viewport-adaptive forwarding (~150°), highest
    /// server processing latency.
    pub fn altspace() -> PlatformConfig {
        PlatformConfig {
            id: PlatformId::AltspaceVr,
            data_transport: DataTransport::Udp,
            control_pool: ServerPool::anycast(
                Owner::Microsoft,
                "altspace-ctl",
                Site::anycast_global(),
            ),
            data_pool: ServerPool::unicast(Owner::Microsoft, "altspace-data", Site::SanJose)
                .with_sticky(),
            embodiment: Embodiment::upper_torso_no_face(),
            avatar_tick_hz: 14.0,
            avatar_envelope_bytes: 0,
            status_rate_hz: 20.0,
            status_bytes: 130,
            telemetry_rate_hz: 0.0,
            telemetry_bytes: 0,
            // AltspaceVR's world-state sync is symmetric: the server
            // echoes ~30 Kbps of non-avatar data (Table 3's downlink is
            // ≈ its uplink although the avatar itself is only ~11 Kbps).
            server_status_rate_hz: 20.0,
            server_status_bytes: 130,
            voice_frame_hz: 50.0,
            voice_frame_bytes: 80,
            report_interval: Some(SimDuration::from_secs(10)),
            report_up_bytes: 2_100,
            report_down_bytes: 6_200,
            init_download_bytes: 18_000_000,
            redownload_every_join: false,
            resolution: Resolution::new(2016, 2224),
            perf: PerfProfile::altspace(),
            forward_policy: ForwardPolicy::ViewportAdaptive { width_deg: 150.0 },
            server_base_proc: SimDuration::from_millis(62),
            server_queue_quad_ms: 0.70,
            forward_compression: 1.0,
            sender_proc_ms: 24.5,
            receiver_proc_ms: 36.1,
            receiver_per_user_ms: 4.5,
            tcp_priority: false,
            clock_sync: false,
            udp_timeout: None,
            game: Some(GameTraffic { tick_hz: 4.0, bytes_per_tick: 120, forward_fraction: 1.0 }),
        }
    }

    /// Mozilla Hubs: Web app; HTTPS control *and* avatar data (plus RTP
    /// voice) against west-coast AWS; highest E2E latency.
    pub fn hubs() -> PlatformConfig {
        PlatformConfig {
            id: PlatformId::Hubs,
            data_transport: DataTransport::TlsStream,
            control_pool: ServerPool::unicast(Owner::Aws, "hubs-ctl", Site::SanJose),
            data_pool: ServerPool::unicast(Owner::Aws, "hubs-webrtc", Site::SanJose).with_sticky(),
            embodiment: Embodiment::upper_torso_hands_no_face(),
            avatar_tick_hz: 20.0,
            avatar_envelope_bytes: 330,
            status_rate_hz: 0.0,
            status_bytes: 0,
            telemetry_rate_hz: 0.0,
            telemetry_bytes: 0,
            server_status_rate_hz: 4.0,
            server_status_bytes: 98,
            voice_frame_hz: 50.0,
            voice_frame_bytes: 80,
            report_interval: Some(SimDuration::from_secs(15)),
            report_up_bytes: 1_500,
            report_down_bytes: 2_000,
            init_download_bytes: 20_000_000,
            redownload_every_join: true,
            resolution: Resolution::new(1216, 1344),
            perf: PerfProfile::hubs(),
            forward_policy: ForwardPolicy::Direct,
            server_base_proc: SimDuration::from_millis(46),
            server_queue_quad_ms: 0.84,
            forward_compression: 1.0,
            sender_proc_ms: 42.4,
            receiver_proc_ms: 60.1,
            receiver_per_user_ms: 7.0,
            tcp_priority: false,
            clock_sync: false,
            udp_timeout: None,
            game: None,
        }
    }

    /// A private Hubs deployment on a nearby cloud instance (§7's Hubs*):
    /// same software, east-coast placement, unloaded server.
    pub fn private_hubs() -> PlatformConfig {
        let mut cfg = Self::hubs();
        cfg.control_pool = ServerPool::unicast(Owner::Mozilla, "hubs-private-ctl", Site::AshburnVa);
        cfg.data_pool =
            ServerPool::unicast(Owner::Mozilla, "hubs-private-data", Site::AshburnVa).with_sticky();
        cfg.server_base_proc = SimDuration::from_millis(13);
        cfg.server_queue_quad_ms = 0.30;
        cfg
    }

    /// Rec Room: anycast everywhere (ANS control, Cloudflare data),
    /// simple face, lowest latency.
    pub fn recroom() -> PlatformConfig {
        PlatformConfig {
            id: PlatformId::RecRoom,
            data_transport: DataTransport::Udp,
            control_pool: ServerPool::anycast(Owner::Ans, "recroom-ctl", Site::anycast_global()),
            data_pool: ServerPool::anycast(
                Owner::Cloudflare,
                "recroom-data",
                Site::anycast_global(),
            ),
            embodiment: Embodiment::upper_torso_simple_face(),
            avatar_tick_hz: 28.0,
            avatar_envelope_bytes: 0,
            status_rate_hz: 10.0,
            status_bytes: 21,
            telemetry_rate_hz: 0.0,
            telemetry_bytes: 0,
            server_status_rate_hz: 10.0,
            server_status_bytes: 21,
            voice_frame_hz: 50.0,
            voice_frame_bytes: 80,
            report_interval: None,
            report_up_bytes: 0,
            report_down_bytes: 0,
            init_download_bytes: 0, // pre-bundled in the 1.41 GB app
            redownload_every_join: false,
            resolution: Resolution::new(1224, 1346),
            perf: PerfProfile::recroom(),
            forward_policy: ForwardPolicy::Direct,
            server_base_proc: SimDuration::from_millis(27),
            server_queue_quad_ms: 0.58,
            forward_compression: 1.0,
            sender_proc_ms: 25.9,
            receiver_proc_ms: 39.9,
            receiver_per_user_ms: 4.8,
            tcp_priority: false,
            clock_sync: false,
            udp_timeout: None,
            game: Some(GameTraffic { tick_hz: 20.0, bytes_per_tick: 150, forward_fraction: 1.0 }),
        }
    }

    /// VRChat: east-coast AWS control, Cloudflare anycast data, the only
    /// full-body (cartoon) avatar.
    pub fn vrchat() -> PlatformConfig {
        PlatformConfig {
            id: PlatformId::VrChat,
            data_transport: DataTransport::Udp,
            control_pool: ServerPool::unicast(Owner::Aws, "vrchat-ctl", Site::AshburnVa),
            data_pool: ServerPool::anycast(
                Owner::Cloudflare,
                "vrchat-data",
                Site::anycast_global(),
            ),
            embodiment: Embodiment::full_body_cartoon(),
            avatar_tick_hz: 14.0,
            avatar_envelope_bytes: 0,
            status_rate_hz: 10.0,
            status_bytes: 21,
            telemetry_rate_hz: 0.0,
            telemetry_bytes: 0,
            server_status_rate_hz: 10.0,
            server_status_bytes: 25,
            voice_frame_hz: 50.0,
            voice_frame_bytes: 80,
            report_interval: None,
            report_up_bytes: 0,
            report_down_bytes: 0,
            init_download_bytes: 22_000_000,
            redownload_every_join: false,
            resolution: Resolution::new(1440, 1584),
            perf: PerfProfile::vrchat(),
            forward_policy: ForwardPolicy::Direct,
            server_base_proc: SimDuration::from_millis(30),
            server_queue_quad_ms: 0.60,
            forward_compression: 1.0,
            sender_proc_ms: 27.3,
            receiver_proc_ms: 37.4,
            receiver_per_user_ms: 4.6,
            tcp_priority: false,
            clock_sync: false,
            udp_timeout: None,
            game: Some(GameTraffic { tick_hz: 12.0, bytes_per_tick: 85, forward_fraction: 1.0 }),
        }
    }

    /// Horizon Worlds: Meta-owned east-coast servers, human-like avatar
    /// at full precision, TCP-priority rule, periodic clock-sync spikes,
    /// 30 s UDP liveness, uplink partially kept by the server.
    pub fn worlds() -> PlatformConfig {
        PlatformConfig {
            id: PlatformId::Worlds,
            data_transport: DataTransport::Udp,
            control_pool: ServerPool::unicast(Owner::Meta, "edge-star", Site::AshburnVa),
            data_pool: ServerPool::unicast(Owner::Meta, "oculus-verts", Site::AshburnVa),
            embodiment: Embodiment::human_like(),
            avatar_tick_hz: 60.0,
            avatar_envelope_bytes: 50,
            status_rate_hz: 0.0,
            status_bytes: 0,
            telemetry_rate_hz: 60.0,
            telemetry_bytes: 821,
            server_status_rate_hz: 20.0,
            server_status_bytes: 458,
            voice_frame_hz: 50.0,
            voice_frame_bytes: 80,
            report_interval: Some(SimDuration::from_secs(10)),
            report_up_bytes: 36_000,
            report_down_bytes: 0,
            init_download_bytes: 5_000_000, // "Preparing for Visitors"
            redownload_every_join: false,
            resolution: Resolution::new(1440, 1584),
            perf: PerfProfile::worlds(),
            forward_policy: ForwardPolicy::Direct,
            server_base_proc: SimDuration::from_millis(36),
            server_queue_quad_ms: 1.00,
            forward_compression: 1.0,
            sender_proc_ms: 26.2,
            receiver_proc_ms: 49.1,
            receiver_per_user_ms: 5.5,
            tcp_priority: true,
            clock_sync: true,
            udp_timeout: Some(SimDuration::from_secs(30)),
            game: Some(GameTraffic { tick_hz: 60.0, bytes_per_tick: 815, forward_fraction: 0.62 }),
        }
    }

    /// Expected wire bytes of one avatar update on this platform's data
    /// channel (codec + envelope + channel/transport overheads).
    pub fn avatar_update_wire_bytes(&self) -> usize {
        let codec = svr_avatar::codec::update_payload_size(&self.embodiment);
        let payload = codec + self.avatar_envelope_bytes;
        match self.data_transport {
            // 16 app header + 8 UDP + 34 L2/L3.
            DataTransport::Udp => payload + 16 + 8 + 34,
            // 4 length prefix + TLS record 22 + TCP 20 + 34 L2/L3.
            DataTransport::TlsStream => payload + 4 + 22 + 20 + 34,
        }
    }

    /// Predicted per-avatar data rate (the Table 3 "Avatar" column).
    pub fn predicted_avatar_rate(&self) -> Bitrate {
        let bytes_per_s = self.avatar_update_wire_bytes() as f64 * self.avatar_tick_hz;
        Bitrate::from_bps((bytes_per_s * 8.0) as u64)
    }

    /// The device users run this platform on in the study.
    pub fn device(&self) -> DeviceProfile {
        DeviceProfile::quest2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Table 3, "Avatar" column, in Kbps.
    const PAPER_AVATAR_KBPS: [(PlatformId, f64); 5] = [
        (PlatformId::VrChat, 24.7),
        (PlatformId::AltspaceVr, 11.1),
        (PlatformId::RecRoom, 35.2),
        (PlatformId::Hubs, 77.4),
        (PlatformId::Worlds, 332.0),
    ];

    #[test]
    fn predicted_avatar_rates_match_table3_within_10_percent() {
        for (id, paper) in PAPER_AVATAR_KBPS {
            let cfg = PlatformConfig::of(id);
            let predicted = cfg.predicted_avatar_rate().as_kbps();
            let err = (predicted - paper).abs() / paper;
            assert!(
                err < 0.10,
                "{}: predicted {predicted:.1} Kbps vs paper {paper} Kbps ({:.0}% off)",
                id,
                err * 100.0
            );
        }
    }

    #[test]
    fn worlds_rate_is_an_order_of_magnitude_above_the_rest() {
        let worlds = PlatformConfig::worlds().predicted_avatar_rate().as_kbps();
        for id in [PlatformId::AltspaceVr, PlatformId::RecRoom, PlatformId::VrChat] {
            let other = PlatformConfig::of(id).predicted_avatar_rate().as_kbps();
            assert!(worlds > 9.0 * other, "{worlds} vs {id}: {other}");
        }
    }

    #[test]
    fn table2_protocols() {
        // UDP data everywhere except Hubs.
        for id in PlatformId::ALL {
            let cfg = PlatformConfig::of(id);
            match id {
                PlatformId::Hubs => assert_eq!(cfg.data_transport, DataTransport::TlsStream),
                _ => assert_eq!(cfg.data_transport, DataTransport::Udp),
            }
        }
    }

    #[test]
    fn table2_anycast_flags() {
        // Control: AltspaceVR & Rec Room anycast; data: Rec Room & VRChat.
        let anycast_ctl: Vec<PlatformId> = PlatformId::ALL
            .into_iter()
            .filter(|id| PlatformConfig::of(*id).control_pool.is_anycast())
            .collect();
        assert_eq!(anycast_ctl, vec![PlatformId::AltspaceVr, PlatformId::RecRoom]);
        let anycast_data: Vec<PlatformId> = PlatformId::ALL
            .into_iter()
            .filter(|id| PlatformConfig::of(*id).data_pool.is_anycast())
            .collect();
        assert_eq!(anycast_data, vec![PlatformId::RecRoom, PlatformId::VrChat]);
    }

    #[test]
    fn west_coast_unicast_platforms() {
        // AltspaceVR data and both Hubs channels sit on the west coast
        // (>70 ms from the east-coast testbed).
        let east = Site::FairfaxVa;
        assert!(PlatformConfig::altspace().data_pool.rtt_from(east).as_millis_f64() > 60.0);
        assert!(PlatformConfig::hubs().data_pool.rtt_from(east).as_millis_f64() > 60.0);
        assert!(PlatformConfig::hubs().control_pool.rtt_from(east).as_millis_f64() > 60.0);
        // Worlds and VRChat control are nearby (<4 ms).
        assert!(PlatformConfig::worlds().data_pool.rtt_from(east).as_millis_f64() < 4.0);
        assert!(PlatformConfig::vrchat().control_pool.rtt_from(east).as_millis_f64() < 4.0);
    }

    #[test]
    fn only_altspace_is_viewport_adaptive() {
        for id in PlatformId::ALL {
            let cfg = PlatformConfig::of(id);
            match id {
                PlatformId::AltspaceVr => assert!(matches!(
                    cfg.forward_policy,
                    ForwardPolicy::ViewportAdaptive { width_deg } if (width_deg - 150.0).abs() < 1.0
                )),
                _ => assert!(matches!(cfg.forward_policy, ForwardPolicy::Direct)),
            }
        }
    }

    #[test]
    fn worlds_quirks() {
        let w = PlatformConfig::worlds();
        assert!(w.tcp_priority);
        assert!(w.clock_sync);
        assert_eq!(w.udp_timeout, Some(SimDuration::from_secs(30)));
        assert!(w.game.is_some());
        // Server keeps telemetry: uplink exceeds what peers receive.
        assert!(w.telemetry_rate_hz > 0.0);
        // No other platform has these.
        for id in [PlatformId::AltspaceVr, PlatformId::Hubs, PlatformId::RecRoom, PlatformId::VrChat] {
            let c = PlatformConfig::of(id);
            assert!(!c.tcp_priority, "{id}");
            assert!(!c.clock_sync, "{id}");
        }
    }

    #[test]
    fn hubs_is_the_only_gameless_platform() {
        for id in PlatformId::ALL {
            let has_game = PlatformConfig::of(id).game.is_some();
            assert_eq!(has_game, id != PlatformId::Hubs, "{id}");
        }
    }

    #[test]
    fn private_hubs_is_nearby_and_fast() {
        let pub_hubs = PlatformConfig::hubs();
        let prv = PlatformConfig::private_hubs();
        assert!(prv.data_pool.rtt_from(Site::FairfaxVa) < pub_hubs.data_pool.rtt_from(Site::FairfaxVa));
        assert!(prv.server_base_proc < pub_hubs.server_base_proc);
        assert_eq!(prv.id, PlatformId::Hubs);
    }

    #[test]
    fn resolutions_match_table3() {
        assert_eq!(PlatformConfig::altspace().resolution.to_string(), "2016x2224");
        assert_eq!(PlatformConfig::recroom().resolution.to_string(), "1224x1346");
        assert_eq!(PlatformConfig::vrchat().resolution.to_string(), "1440x1584");
        assert_eq!(PlatformConfig::worlds().resolution.to_string(), "1440x1584");
        assert_eq!(PlatformConfig::hubs().resolution.to_string(), "1216x1344");
    }

    #[test]
    fn init_download_behaviour() {
        // Rec Room pre-bundles; Hubs re-downloads every join (§5.2).
        assert_eq!(PlatformConfig::recroom().init_download_bytes, 0);
        assert!(PlatformConfig::hubs().redownload_every_join);
        assert!(!PlatformConfig::vrchat().redownload_every_join);
        let alts = PlatformConfig::altspace().init_download_bytes;
        assert!((10_000_000..=30_000_000).contains(&alts));
    }
}
