//! Platform data-channel servers and their forwarding policies.
//!
//! §6 identifies "the platform servers' direct forwarding of avatar data
//! ... without further processing" as the root cause of the scalability
//! issues, with AltspaceVR's viewport-adaptive variant as the only
//! optimisation found, and remote rendering (§6.3) as the proposed
//! architecture. [`DataServer`] implements all three policies over the
//! same registry, so the scalability experiments compare them on equal
//! footing.

use crate::config::{DataTransport, PlatformConfig};
use crate::stream::{StreamChannel, StreamEvent};
use svr_netsim::buf::Bytes;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap};
use svr_avatar::motion::in_viewport;
use svr_avatar::skeleton::Vec3;
use svr_netsim::{Bitrate, NodeId, Packet, SimDuration, SimRng, SimTime};
use svr_transport::tcp::TcpConfig;
use svr_transport::udp::{MsgKind, UdpChannel};

/// The server's forwarding policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ForwardPolicy {
    /// Forward every avatar update to every other user (all platforms
    /// but AltspaceVR).
    Direct,
    /// Forward only updates from avatars inside the receiver's predicted
    /// viewport (AltspaceVR, ~150° wide, §6.1).
    ViewportAdaptive {
        /// Viewport width in degrees.
        width_deg: f32,
    },
    /// The §6.3 proposal: render server-side, stream encoded video to
    /// each user; downlink is independent of the user count.
    RemoteRender {
        /// Per-user video bitrate.
        bitrate: Bitrate,
        /// Encoded frame rate.
        frame_hz: f64,
    },
    /// §6.2's further optimisation (Donnybrook-style interest
    /// management): full update rate for the `focus` nearest avatars,
    /// a reduced rate for everyone else.
    InterestManagement {
        /// Avatars forwarded at full rate (the receiver's focus set).
        focus: usize,
        /// Update rate for out-of-focus avatars, Hz.
        background_hz: f64,
    },
}

/// Port the data server listens on.
pub const DATA_SERVER_PORT: u16 = 7_000;

/// Port the SFU listens on for RTP voice (stream-based platforms).
pub const VOICE_SERVER_PORT: u16 = 7_001;

/// The client-side RTP voice port for a user.
pub fn voice_port(user_id: u32) -> u16 {
    45_000 + user_id as u16
}

/// Kind byte prefixed to stream messages (mirrors [`MsgKind`]).
pub fn stream_frame(kind: MsgKind, body: &[u8]) -> Vec<u8> {
    let kind_byte = match kind {
        MsgKind::Avatar => 1u8,
        MsgKind::Voice => 2,
        MsgKind::Game => 3,
        MsgKind::KeepAlive => 4,
        MsgKind::Other => 5,
    };
    let mut v = Vec::with_capacity(1 + body.len());
    v.push(kind_byte);
    v.extend_from_slice(body);
    v
}

/// Split a stream message back into kind and body.
pub fn parse_stream_frame(msg: &[u8]) -> Option<(MsgKind, &[u8])> {
    let (&k, body) = msg.split_first()?;
    let kind = match k {
        1 => MsgKind::Avatar,
        2 => MsgKind::Voice,
        3 => MsgKind::Game,
        4 => MsgKind::KeepAlive,
        _ => MsgKind::Other,
    };
    Some((kind, body))
}

enum ServerChannel {
    Udp(UdpChannel),
    Stream(Box<StreamChannel>),
}

/// The cached focus-set boundary for one receiver: everything needed to
/// answer "is `sender` among my `focus` nearest?" in O(1) without
/// re-sorting the room.
///
/// Membership is decided on the lexicographic key `(distance, user id)`
/// — exactly the order the original stable distance sort produced, since
/// users iterate in ascending-id order out of the `BTreeMap` and a
/// stable sort keeps that order among equal distances.
#[derive(Debug, Clone, Copy)]
enum FocusBound {
    /// `focus == 0`: nobody is in focus.
    Empty,
    /// Fewer than `focus` other users: everybody is in focus.
    All,
    /// The `focus`-th smallest `(distance, id)` key; a sender is in
    /// focus iff its own key is ≤ this bound.
    Key(f32, u32),
}

#[derive(Debug, Clone, Copy)]
struct FocusCache {
    /// [`DataServer::pos_epoch`] the bound was computed at.
    epoch: u64,
    /// The `focus` parameter the bound was computed for.
    focus: usize,
    bound: FocusBound,
}

impl FocusCache {
    /// A cache that can never match a live epoch (epochs start at 1).
    const STALE: FocusCache = FocusCache { epoch: 0, focus: 0, bound: FocusBound::Empty };
}

struct UserEntry {
    node: NodeId,
    /// The client's data-channel source port (key of the address index).
    client_port: u16,
    chan: ServerChannel,
    position: Vec3,
    heading_deg: f32,
    next_status: SimTime,
    next_frame: SimTime,
    /// Last application data (keep-alives do not count).
    last_data: SimTime,
    /// Per-sender throttle clock for interest management:
    /// (sender, earliest next forward).
    background_next: Vec<(u32, SimTime)>,
    /// Cached k-NN boundary for this receiver's focus set.
    focus_cache: FocusCache,
}

/// The transferable state of a user crossing a shard boundary (portal
/// hop / world transfer): everything the destination [`DataServer`]
/// needs to continue the session without a fresh spawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UserProfile {
    /// The user's id.
    pub user_id: u32,
    /// Last known avatar root position.
    pub position: Vec3,
    /// Last known heading, degrees.
    pub heading_deg: f32,
}

/// Counters exposed to the experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Avatar/game messages forwarded to peers.
    pub forwards: u64,
    /// Forwards suppressed by the viewport policy.
    pub viewport_suppressed: u64,
    /// Messages consumed (status, telemetry, keep-alives).
    pub consumed: u64,
    /// Remote-render video frames emitted.
    pub video_frames: u64,
    /// Forwards throttled by interest management.
    pub interest_throttled: u64,
}

struct PendingForward {
    due: SimTime,
    seq: u64,
    dst_user: u32,
    kind: MsgKind,
    body: Bytes,
}

impl PartialEq for PendingForward {
    fn eq(&self, o: &Self) -> bool {
        (self.due, self.seq) == (o.due, o.seq)
    }
}
impl Eq for PendingForward {}
impl PartialOrd for PendingForward {
    fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(o))
    }
}
impl Ord for PendingForward {
    fn cmp(&self, o: &Self) -> std::cmp::Ordering {
        (self.due, self.seq).cmp(&(o.due, o.seq))
    }
}

/// A platform data server.
pub struct DataServer {
    /// The network node the server occupies.
    pub node: NodeId,
    policy: ForwardPolicy,
    base_proc: SimDuration,
    queue_quad_ms: f64,
    server_status_rate_hz: f64,
    server_status_bytes: usize,
    transport: DataTransport,
    users: BTreeMap<u32, UserEntry>,
    /// `(source node, source port) → user`: O(1) packet-to-user lookup
    /// instead of a roster scan. Stream platforms get a second entry per
    /// user for the RTP voice port.
    addr_index: HashMap<(NodeId, u16), u32>,
    pending: BinaryHeap<Reverse<PendingForward>>,
    seq: u64,
    rng: SimRng,
    /// Bumped whenever any user's position changes or the roster
    /// changes; focus caches stamped with an older epoch are stale.
    pos_epoch: u64,
    /// Scratch for focus-bound selection, reused across messages.
    focus_scratch: Vec<(f32, u32)>,
    /// Scratch for the receiver list, reused across messages.
    recv_scratch: Vec<u32>,
    /// Scratch zero-filled body for status/video emission.
    zero_scratch: Vec<u8>,
    /// Counters.
    pub stats: ServerStats,
}

impl DataServer {
    /// Build the server for a platform.
    pub fn new(node: NodeId, cfg: &PlatformConfig, seed: u64) -> Self {
        DataServer {
            node,
            policy: cfg.forward_policy,
            base_proc: cfg.server_base_proc,
            queue_quad_ms: cfg.server_queue_quad_ms,
            server_status_rate_hz: cfg.server_status_rate_hz,
            server_status_bytes: cfg.server_status_bytes,
            transport: cfg.data_transport,
            users: BTreeMap::new(),
            addr_index: HashMap::new(),
            pending: BinaryHeap::new(),
            seq: 0,
            rng: SimRng::seed_from_u64(seed ^ 0x5345_5256),
            pos_epoch: 1,
            focus_scratch: Vec::new(),
            recv_scratch: Vec::new(),
            zero_scratch: Vec::new(),
            stats: ServerStats::default(),
        }
    }

    /// Register a user connecting over the platform's data transport.
    pub fn register(&mut self, user_id: u32, node: NodeId, client_port: u16, now: SimTime) {
        let chan = match self.transport {
            DataTransport::Udp => ServerChannel::Udp(UdpChannel::new(
                user_id as u16,
                DATA_SERVER_PORT,
                client_port,
                now,
            )),
            DataTransport::TlsStream => ServerChannel::Stream(Box::new(StreamChannel::listen(
                TcpConfig::default(),
                DATA_SERVER_PORT,
                client_port,
            ))),
        };
        // Re-registration replaces the old connection (and its index
        // entries) rather than leaking them.
        self.remove_user(user_id);
        self.addr_index.insert((node, client_port), user_id);
        if self.transport == DataTransport::TlsStream {
            self.addr_index.insert((node, voice_port(user_id)), user_id);
        }
        self.users.insert(
            user_id,
            UserEntry {
                node,
                client_port,
                chan,
                position: Vec3::ZERO,
                heading_deg: 0.0,
                next_status: now,
                next_frame: now,
                last_data: now,
                background_next: Vec::new(),
                focus_cache: FocusCache::STALE,
            },
        );
        self.pos_epoch += 1;
    }

    /// Drop a user from the roster and the address index; bumps the
    /// position epoch when the user existed.
    fn remove_user(&mut self, user_id: u32) -> Option<UserEntry> {
        let entry = self.users.remove(&user_id)?;
        self.addr_index.remove(&(entry.node, entry.client_port));
        if self.transport == DataTransport::TlsStream {
            self.addr_index.remove(&(entry.node, voice_port(user_id)));
        }
        self.pos_epoch += 1;
        Some(entry)
    }

    /// Remove a user (left the event).
    pub fn unregister(&mut self, user_id: u32) {
        self.remove_user(user_id);
    }

    /// Connected user count.
    pub fn user_count(&self) -> usize {
        self.users.len()
    }

    /// Iterate over connected user ids, in ascending order.
    pub fn user_ids(&self) -> impl Iterator<Item = u32> + '_ {
        self.users.keys().copied()
    }

    /// Whether `user_id` is currently connected.
    pub fn contains_user(&self, user_id: u32) -> bool {
        self.users.contains_key(&user_id)
    }

    /// The configured forwarding policy.
    pub fn policy(&self) -> ForwardPolicy {
        self.policy
    }

    /// Detach a user for a cross-shard hop: remove it from this server
    /// and hand back the state the destination shard needs to continue
    /// the session seamlessly. Returns `None` for unknown users.
    pub fn extract_user(&mut self, user_id: u32) -> Option<UserProfile> {
        let entry = self.remove_user(user_id)?;
        Some(UserProfile {
            user_id,
            position: entry.position,
            heading_deg: entry.heading_deg,
        })
    }

    /// Admit a hopped-in user: register it on this server's transport and
    /// restore the avatar state carried in its [`UserProfile`].
    pub fn admit_user(
        &mut self,
        profile: &UserProfile,
        node: NodeId,
        client_port: u16,
        now: SimTime,
    ) {
        self.register(profile.user_id, node, client_port, now);
        let entry = self.users.get_mut(&profile.user_id).expect("just registered");
        entry.position = profile.position;
        entry.heading_deg = profile.heading_deg;
    }

    /// The server's modelled processing latency at the current load:
    /// `base + quad×(N-2)² ms`, with multiplicative jitter.
    fn proc_delay(&mut self) -> SimDuration {
        let n = self.users.len() as f64;
        let queue_ms = self.queue_quad_ms * ((n - 2.0).max(0.0)).powi(2);
        let total_ms = self.base_proc.as_millis_f64() + queue_ms;
        let jittered = self.rng.gaussian_at_least(total_ms, total_ms * 0.12, 1.0);
        SimDuration::from_millis_f64(jittered)
    }

    fn schedule_forwards(&mut self, now: SimTime, from_user: u32, kind: MsgKind, body: &Bytes) {
        // Sender's position, for viewport checks.
        let sender_pos = match self.users.get(&from_user) {
            Some(u) => u.position,
            None => return,
        };
        let mut receivers = std::mem::take(&mut self.recv_scratch);
        receivers.clear();
        receivers.extend(self.users.keys().copied().filter(|u| *u != from_user));
        for dst in receivers.iter().copied() {
            if let ForwardPolicy::ViewportAdaptive { width_deg } = self.policy {
                let r = &self.users[&dst];
                if !in_viewport(r.position, r.heading_deg, width_deg, sender_pos) {
                    self.stats.viewport_suppressed += 1;
                    continue;
                }
            }
            if matches!(self.policy, ForwardPolicy::RemoteRender { .. }) {
                // Rendered server-side; no avatar data goes out.
                continue;
            }
            if let ForwardPolicy::InterestManagement { focus, background_hz } = self.policy {
                if kind == MsgKind::Avatar && !self.in_focus(dst, from_user, focus) {
                    let interval = SimDuration::from_secs_f64(1.0 / background_hz.max(0.01));
                    let entry = self.users.get_mut(&dst).expect("receiver exists");
                    let slot = entry
                        .background_next
                        .iter_mut()
                        .find(|(s, _)| *s == from_user);
                    let due = match slot {
                        Some((_, t)) => t,
                        None => {
                            entry.background_next.push((from_user, SimTime::ZERO));
                            &mut entry.background_next.last_mut().unwrap().1
                        }
                    };
                    if now < *due {
                        self.stats.interest_throttled += 1;
                        continue;
                    }
                    *due = now + interval;
                }
            }
            let due = now + self.proc_delay();
            let seq = self.seq;
            self.seq += 1;
            self.pending.push(Reverse(PendingForward { due, seq, dst_user: dst, kind, body: body.clone() }));
        }
        self.recv_scratch = receivers;
    }

    /// Whether `sender` is among `receiver`'s `focus` nearest avatars.
    ///
    /// Answered from the receiver's cached [`FocusBound`]; the k-NN
    /// boundary is recomputed (O(n) selection, no allocation) only when
    /// a position or the roster changed since it was stamped. Decisions
    /// are identical to the original full stable distance sort: both
    /// rank users by the lexicographic key `(distance, id)`, and
    /// `total_cmp` agrees with `partial_cmp` on the non-negative
    /// distances `sqrt` produces while also tolerating NaN positions
    /// (which sort last instead of panicking).
    fn in_focus(&mut self, receiver: u32, sender: u32, focus: usize) -> bool {
        let Some(r) = self.users.get(&receiver) else { return true };
        let r_pos = r.position;
        let cached = r.focus_cache;
        let bound = if cached.epoch == self.pos_epoch && cached.focus == focus {
            cached.bound
        } else {
            let bound = self.compute_focus_bound(receiver, r_pos, focus);
            let epoch = self.pos_epoch;
            if let Some(entry) = self.users.get_mut(&receiver) {
                entry.focus_cache = FocusCache { epoch, focus, bound };
            }
            bound
        };
        match bound {
            FocusBound::Empty => false,
            FocusBound::All => true,
            FocusBound::Key(bound_dist, bound_id) => {
                let Some(s) = self.users.get(&sender) else { return false };
                let d = s.position.distance(r_pos);
                match d.total_cmp(&bound_dist) {
                    std::cmp::Ordering::Less => true,
                    std::cmp::Ordering::Equal => sender <= bound_id,
                    std::cmp::Ordering::Greater => false,
                }
            }
        }
    }

    /// Select the `focus`-th smallest `(distance, id)` key around
    /// `receiver` — the focus-set boundary — reusing the scratch vector.
    fn compute_focus_bound(&mut self, receiver: u32, r_pos: Vec3, focus: usize) -> FocusBound {
        if focus == 0 {
            return FocusBound::Empty;
        }
        let mut scratch = std::mem::take(&mut self.focus_scratch);
        scratch.clear();
        scratch.extend(
            self.users
                .iter()
                .filter(|(id, _)| **id != receiver)
                .map(|(id, u)| (u.position.distance(r_pos), *id)),
        );
        let bound = if scratch.len() <= focus {
            FocusBound::All
        } else {
            let (_, kth, _) = scratch
                .select_nth_unstable_by(focus - 1, |a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            FocusBound::Key(kth.0, kth.1)
        };
        self.focus_scratch = scratch;
        bound
    }

    fn handle_msg(&mut self, now: SimTime, from_user: u32, kind: MsgKind, body: Bytes) {
        if kind != MsgKind::KeepAlive {
            if let Some(u) = self.users.get_mut(&from_user) {
                u.last_data = now;
            }
        }
        match kind {
            MsgKind::Avatar => {
                // Track the sender's pose for viewport decisions.
                if let Ok(update) = svr_avatar::codec::decode_update(&body) {
                    let pos = update.pose.root_position();
                    let heading = update
                        .pose
                        .joint(svr_avatar::Joint::Root)
                        .or_else(|| update.pose.joint(svr_avatar::Joint::Head))
                        .map(|jp| {
                            2.0 * jp.rotation.y.atan2(jp.rotation.w).to_degrees()
                        })
                        .unwrap_or(0.0)
                        .rem_euclid(360.0);
                    if let Some(u) = self.users.get_mut(&from_user) {
                        // `!=` is false only for bit-equal non-NaN
                        // positions, so a NaN pose conservatively
                        // invalidates the focus caches too.
                        if u.position != pos {
                            self.pos_epoch += 1;
                        }
                        u.position = pos;
                        u.heading_deg = heading;
                    }
                }
                self.schedule_forwards(now, from_user, kind, &body);
            }
            MsgKind::Game | MsgKind::Voice => {
                self.schedule_forwards(now, from_user, kind, &body);
            }
            MsgKind::KeepAlive | MsgKind::Other => {
                self.stats.consumed += 1;
            }
        }
    }

    /// Process a packet delivered to the server node. Returns packets to
    /// transmit immediately (stream ACKs, handshakes).
    pub fn on_packet(&mut self, now: SimTime, pkt: &Packet) -> Vec<(NodeId, Packet)> {
        let mut out = Vec::new();
        // RTP voice for stream-based platforms: an SFU relay — forward the
        // frame verbatim to every other user's voice port (Table 2's
        // "central routing machine" for Hubs WebRTC).
        if self.transport == DataTransport::TlsStream
            && pkt.header.proto == svr_netsim::Proto::Udp
            && pkt.header.dst_port == VOICE_SERVER_PORT
        {
            let from = self
                .addr_index
                .get(&(pkt.src, pkt.header.src_port))
                .copied()
                .filter(|id| voice_port(*id) == pkt.header.src_port);
            if let Some(from_user) = from {
                if let Some(u) = self.users.get_mut(&from_user) {
                    u.last_data = now;
                }
                for (id, u) in &self.users {
                    if *id == from_user {
                        continue;
                    }
                    let mut fwd = pkt.clone();
                    fwd.header.src_port = VOICE_SERVER_PORT;
                    fwd.header.dst_port = voice_port(*id);
                    out.push((u.node, fwd));
                    self.stats.forwards += 1;
                }
            }
            return out;
        }
        // Find the owning user by source node + port: one index probe
        // instead of a roster scan (both transports connect from the
        // client's data port).
        let owner = self.addr_index.get(&(pkt.src, pkt.header.src_port)).copied();
        let Some(user_id) = owner.filter(|id| {
            self.users[id].client_port == pkt.header.src_port
        }) else {
            return out;
        };
        let node = self.users[&user_id].node;

        let mut msgs: Vec<(MsgKind, Bytes)> = Vec::new();
        match &mut self.users.get_mut(&user_id).unwrap().chan {
            ServerChannel::Udp(c) => {
                if let Some(m) = c.on_packet(now, pkt) {
                    msgs.push((m.kind, m.body));
                }
            }
            ServerChannel::Stream(s) => {
                let (pkts, events) = s.on_packet(now, pkt);
                for p in pkts {
                    out.push((node, p));
                }
                for ev in events {
                    if let StreamEvent::Message(m) = ev {
                        if let Some((kind, body)) = parse_stream_frame(&m) {
                            msgs.push((kind, Bytes::copy_from_slice(body)));
                        }
                    }
                }
            }
        }
        for (kind, body) in msgs {
            self.handle_msg(now, user_id, kind, body);
        }
        out
    }

    fn send_to(
        entry: &mut UserEntry,
        now: SimTime,
        kind: MsgKind,
        body: &[u8],
        out: &mut Vec<(NodeId, Packet)>,
    ) {
        match &mut entry.chan {
            ServerChannel::Udp(c) => {
                if let Some(p) = c.send(kind, now, body) {
                    out.push((entry.node, p));
                }
            }
            ServerChannel::Stream(s) => {
                for p in s.send(now, &stream_frame(kind, body)) {
                    out.push((entry.node, p));
                }
            }
        }
    }

    /// How long a client may stay silent (no application data) before the
    /// server drops it from the session (§8.1's server-side teardown).
    pub const CLIENT_TIMEOUT: SimDuration = SimDuration::from_secs(30);

    /// Drive timers: due forwards, housekeeping, remote-render frames,
    /// stream retransmissions. Call every few milliseconds.
    pub fn on_tick(&mut self, now: SimTime) -> Vec<(NodeId, Packet)> {
        let mut out = Vec::new();

        // Drop silent clients.
        let stale: Vec<u32> = self
            .users
            .iter()
            .filter(|(_, u)| now.saturating_since(u.last_data) > Self::CLIENT_TIMEOUT)
            .map(|(id, _)| *id)
            .collect();
        for id in stale {
            self.remove_user(id);
        }

        // Due forwards.
        while let Some(Reverse(head)) = self.pending.peek() {
            if head.due > now {
                break;
            }
            let Reverse(f) = self.pending.pop().unwrap();
            if let Some(entry) = self.users.get_mut(&f.dst_user) {
                Self::send_to(entry, now, f.kind, &f.body, &mut out);
                self.stats.forwards += 1;
            }
        }

        // Housekeeping + remote-render frames.
        let status_interval = if self.server_status_rate_hz > 0.0 {
            Some(SimDuration::from_secs_f64(1.0 / self.server_status_rate_hz))
        } else {
            None
        };
        let render = match self.policy {
            ForwardPolicy::RemoteRender { bitrate, frame_hz } => {
                let frame_bytes = (bitrate.as_bps() as f64 / frame_hz / 8.0) as usize;
                Some((SimDuration::from_secs_f64(1.0 / frame_hz), frame_bytes))
            }
            _ => None,
        };
        let status_bytes = self.server_status_bytes;
        // One shared zero-filled body instead of a fresh Vec per user
        // per interval; sized for the largest emission this tick.
        let max_body = status_bytes.max(render.map(|(_, b)| b).unwrap_or(0));
        let mut zeros = std::mem::take(&mut self.zero_scratch);
        if zeros.len() < max_body {
            zeros.resize(max_body, 0);
        }
        let mut video_frames = 0;
        for entry in self.users.values_mut() {
            if let Some(interval) = status_interval {
                if now >= entry.next_status {
                    entry.next_status = now + interval;
                    Self::send_to(entry, now, MsgKind::Other, &zeros[..status_bytes], &mut out);
                }
            }
            if let Some((interval, frame_bytes)) = render {
                if now >= entry.next_frame {
                    entry.next_frame = now + interval;
                    Self::send_to(entry, now, MsgKind::Other, &zeros[..frame_bytes], &mut out);
                    video_frames += 1;
                }
            }
            // Stream maintenance (retransmits).
            if let ServerChannel::Stream(s) = &mut entry.chan {
                if s.next_timer().map(|t| t <= now).unwrap_or(false) {
                    let (pkts, _) = s.on_tick(now);
                    for p in pkts {
                        out.push((entry.node, p));
                    }
                }
            }
        }
        self.zero_scratch = zeros;
        self.stats.video_frames += video_frames;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PlatformConfig;
    use svr_avatar::codec::{encode_update, make_update};
    use svr_avatar::motion::MotionState;
    

    fn avatar_body(cfg: &PlatformConfig, seed: u64, pos: Vec3, heading: f32) -> Bytes {
        let mut m = MotionState::new(seed, pos, heading);
        let (pose, vel) = m.step(0.05, &cfg.embodiment);
        encode_update(&make_update(seed as u32, 0, &cfg.embodiment, pose, vel))
    }

    fn udp_avatar_packet(
        client: &mut UdpChannel,
        now: SimTime,
        body: &Bytes,
        src: NodeId,
        dst: NodeId,
    ) -> Packet {
        let mut p = client.send(MsgKind::Avatar, now, body).unwrap();
        p.src = src;
        p.dst = dst;
        p
    }

    fn node(i: u32) -> NodeId {
        // NodeId construction via a tiny helper network.
        let mut net = svr_netsim::Network::new(0);
        let mut last = None;
        for k in 0..=i {
            last = Some(net.add_node(format!("n{k}"), svr_netsim::NodeKind::Headset));
        }
        last.unwrap()
    }

    #[test]
    fn direct_policy_forwards_to_all_others() {
        let cfg = PlatformConfig::vrchat();
        let snode = node(9);
        let mut server = DataServer::new(snode, &cfg, 1);
        let mut clients: Vec<UdpChannel> = (0..3)
            .map(|i| {
                server.register(i, node(i), 40_000 + i as u16, SimTime::ZERO);
                UdpChannel::new(i as u16, 40_000 + i as u16, DATA_SERVER_PORT, SimTime::ZERO)
            })
            .collect();
        let body = avatar_body(&cfg, 0, Vec3::ZERO, 0.0);
        let pkt = udp_avatar_packet(&mut clients[0], SimTime::from_millis(10), &body, node(0), snode);
        server.on_packet(SimTime::from_millis(10), &pkt);
        // Forwards are delayed by server processing (~30 ms + queue);
        // only housekeeping status may go out immediately.
        let early = server.on_tick(SimTime::from_millis(11));
        assert!(early.iter().all(|(_, p)| p.payload.len() < 100), "no early forwards");
        let sent = server.on_tick(SimTime::from_millis(200));
        let forwards: Vec<_> = sent
            .iter()
            .filter(|(_, p)| p.payload.len() > 50) // avatar bodies, not status
            .collect();
        assert_eq!(forwards.len(), 2, "one forward per other user");
        assert_eq!(server.stats.forwards, 2);
    }

    #[test]
    fn server_processing_latency_matches_config() {
        let cfg = PlatformConfig::recroom();
        let snode = node(9);
        let mut server = DataServer::new(snode, &cfg, 2);
        server.register(0, node(0), 40_000, SimTime::ZERO);
        server.register(1, node(1), 40_001, SimTime::ZERO);
        let mut c0 = UdpChannel::new(0, 40_000, DATA_SERVER_PORT, SimTime::ZERO);
        let body = avatar_body(&cfg, 0, Vec3::ZERO, 0.0);
        let pkt = udp_avatar_packet(&mut c0, SimTime::ZERO, &body, node(0), snode);
        server.on_packet(SimTime::ZERO, &pkt);
        // No forward before ~base_proc; exactly one within 2× base.
        let base = cfg.server_base_proc.as_millis();
        let early = server.on_tick(SimTime::from_millis(base / 2));
        assert!(early.iter().all(|(_, p)| p.payload.len() < 100), "no early forwards");
        let sent = server.on_tick(SimTime::from_millis(base * 2));
        let forwards: Vec<_> = sent.iter().filter(|(_, p)| p.payload.len() > 100).collect();
        assert_eq!(forwards.len(), 1);
    }

    #[test]
    fn viewport_policy_suppresses_behind_receiver() {
        let cfg = PlatformConfig::altspace();
        let snode = node(9);
        let mut server = DataServer::new(snode, &cfg, 3);
        server.register(0, node(0), 40_000, SimTime::ZERO);
        server.register(1, node(1), 40_001, SimTime::ZERO);
        let mut c0 = UdpChannel::new(0, 40_000, DATA_SERVER_PORT, SimTime::ZERO);
        let mut c1 = UdpChannel::new(1, 40_001, DATA_SERVER_PORT, SimTime::ZERO);

        // User 1 stands at origin facing +Z (heading 0); user 0 is BEHIND
        // user 1 (at -Z).
        let b1 = avatar_body(&cfg, 1, Vec3::ZERO, 0.0);
        let p1 = udp_avatar_packet(&mut c1, SimTime::ZERO, &b1, node(1), snode);
        server.on_packet(SimTime::ZERO, &p1);
        server.on_tick(SimTime::from_secs(1)); // flush

        let before = server.stats.viewport_suppressed;
        let b0 = avatar_body(&cfg, 0, Vec3::new(0.0, 0.0, -5.0), 180.0);
        let p0 = udp_avatar_packet(&mut c0, SimTime::from_secs(1), &b0, node(0), snode);
        server.on_packet(SimTime::from_secs(1), &p0);
        server.on_tick(SimTime::from_secs(2));
        assert_eq!(server.stats.viewport_suppressed, before + 1, "0 is outside 1's viewport");

        // User 0 in FRONT of user 1: forwarded.
        let before_fwd = server.stats.forwards;
        let b0 = avatar_body(&cfg, 0, Vec3::new(0.0, 0.0, 5.0), 180.0);
        let p0 = udp_avatar_packet(&mut c0, SimTime::from_secs(2), &b0, node(0), snode);
        server.on_packet(SimTime::from_secs(2), &p0);
        server.on_tick(SimTime::from_secs(3));
        assert!(server.stats.forwards > before_fwd);
    }

    #[test]
    fn remote_render_emits_constant_rate_video_instead_of_forwards() {
        let mut cfg = PlatformConfig::vrchat();
        cfg.forward_policy = ForwardPolicy::RemoteRender {
            bitrate: Bitrate::from_mbps(8),
            frame_hz: 60.0,
        };
        let snode = node(9);
        let mut server = DataServer::new(snode, &cfg, 4);
        for i in 0..5u32 {
            server.register(i, node(i), 40_000 + i as u16, SimTime::ZERO);
        }
        let mut c0 = UdpChannel::new(0, 40_000, DATA_SERVER_PORT, SimTime::ZERO);
        let body = avatar_body(&cfg, 0, Vec3::ZERO, 0.0);
        let pkt = udp_avatar_packet(&mut c0, SimTime::from_millis(5), &body, node(0), snode);
        server.on_packet(SimTime::from_millis(5), &pkt);
        // Drive one second of ticks.
        let mut video_bytes_per_user = std::collections::HashMap::new();
        for ms in 0..1000u64 {
            for (n, p) in server.on_tick(SimTime::from_millis(ms)) {
                *video_bytes_per_user.entry(n).or_insert(0u64) += p.payload.len() as u64;
            }
        }
        assert_eq!(server.stats.forwards, 0, "no avatar forwards");
        assert_eq!(video_bytes_per_user.len(), 5, "every user gets a stream");
        for (_, bytes) in video_bytes_per_user {
            let mbps = bytes as f64 * 8.0 / 1e6;
            assert!((mbps - 8.0).abs() < 1.0, "video ≈ 8 Mbps, got {mbps}");
        }
    }

    #[test]
    fn unknown_source_ignored() {
        let cfg = PlatformConfig::vrchat();
        let mut server = DataServer::new(node(9), &cfg, 5);
        server.register(0, node(0), 40_000, SimTime::ZERO);
        let mut foreign = UdpChannel::new(7, 41_000, DATA_SERVER_PORT, SimTime::ZERO);
        let body = avatar_body(&cfg, 7, Vec3::ZERO, 0.0);
        let pkt = udp_avatar_packet(&mut foreign, SimTime::ZERO, &body, node(5), node(9));
        assert!(server.on_packet(SimTime::ZERO, &pkt).is_empty());
        // Only housekeeping may appear; no forwards of the foreign data.
        let sent = server.on_tick(SimTime::from_secs(1));
        assert!(sent.iter().all(|(_, p)| p.payload.len() < 100));
        assert_eq!(server.stats.forwards, 0);
    }

    #[test]
    fn queue_latency_grows_quadratically_with_users() {
        let cfg = PlatformConfig::hubs();
        let mut s2 = DataServer::new(node(9), &cfg, 6);
        let mut s7 = DataServer::new(node(9), &cfg, 6);
        for i in 0..2 {
            s2.register(i, node(i), 40_000 + i as u16, SimTime::ZERO);
        }
        for i in 0..7 {
            s7.register(i, node(i), 40_000 + i as u16, SimTime::ZERO);
        }
        let d2: f64 = (0..200).map(|_| s2.proc_delay().as_millis_f64()).sum::<f64>() / 200.0;
        let d7: f64 = (0..200).map(|_| s7.proc_delay().as_millis_f64()).sum::<f64>() / 200.0;
        let expected_extra = cfg.server_queue_quad_ms * 25.0;
        assert!(
            ((d7 - d2) - expected_extra).abs() < expected_extra * 0.4,
            "Δ {} vs expected {expected_extra}",
            d7 - d2
        );
    }

    /// The pre-cache `in_focus`: full stable sort by distance, exactly
    /// as the original implementation (the reference the cache must
    /// reproduce decision-for-decision).
    fn brute_force_in_focus(server: &DataServer, receiver: u32, sender: u32, focus: usize) -> bool {
        let Some(r) = server.users.get(&receiver) else { return true };
        let mut dists: Vec<(u32, f32)> = server
            .users
            .iter()
            .filter(|(id, _)| **id != receiver)
            .map(|(id, u)| (*id, u.position.distance(r.position)))
            .collect();
        dists.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        dists.iter().take(focus).any(|(id, _)| *id == sender)
    }

    /// Directly move a user (tests reach the private fields) and bump
    /// the epoch the way `handle_msg` would.
    fn place(server: &mut DataServer, id: u32, pos: Vec3) {
        let u = server.users.get_mut(&id).unwrap();
        if u.position != pos {
            server.pos_epoch += 1;
        }
        u.position = pos;
    }

    #[test]
    fn focus_cache_matches_brute_force_over_seeded_trace() {
        let mut cfg = PlatformConfig::vrchat();
        cfg.forward_policy = ForwardPolicy::InterestManagement { focus: 8, background_hz: 1.0 };
        let mut server = DataServer::new(node(0), &cfg, 11);
        let n: u32 = 200;
        for i in 0..n {
            server.register(i, node(0), 40_000 + i as u16, SimTime::ZERO);
        }
        let mut rng = svr_netsim::SimRng::seed_from_u64(0xF0C5);
        // Several epochs: move a random subset each round (including
        // coincident positions so distance ties exercise the id
        // tie-break), then compare every (receiver, sender) decision.
        for round in 0..6 {
            for i in 0..n {
                if round == 0 || rng.chance(0.3) {
                    // Snap to a coarse grid so exact distance ties occur.
                    let x = rng.range_u64(0, 8) as f32;
                    let z = rng.range_u64(0, 8) as f32;
                    place(&mut server, i, Vec3::new(x, 0.0, z));
                }
            }
            for focus in [0usize, 1, 8, 64, 199, 400] {
                for recv in (0..n).step_by(17) {
                    for sender in 0..n {
                        if sender == recv {
                            continue;
                        }
                        let expect = brute_force_in_focus(&server, recv, sender, focus);
                        let got = server.in_focus(recv, sender, focus);
                        assert_eq!(
                            got, expect,
                            "round {round} focus {focus} recv {recv} sender {sender}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn focus_cache_invalidates_on_roster_change() {
        let mut cfg = PlatformConfig::vrchat();
        cfg.forward_policy = ForwardPolicy::InterestManagement { focus: 1, background_hz: 1.0 };
        let mut server = DataServer::new(node(0), &cfg, 12);
        for i in 0..3u32 {
            server.register(i, node(0), 40_000 + i as u16, SimTime::ZERO);
        }
        place(&mut server, 0, Vec3::ZERO);
        place(&mut server, 1, Vec3::new(1.0, 0.0, 0.0));
        place(&mut server, 2, Vec3::new(5.0, 0.0, 0.0));
        // User 1 is 0's single focus neighbour; 2 is not.
        assert!(server.in_focus(0, 1, 1));
        assert!(!server.in_focus(0, 2, 1));
        // Drop user 1: user 2 becomes the nearest without any position
        // changing — the roster bump must invalidate the cached bound.
        server.unregister(1);
        assert!(server.in_focus(0, 2, 1));
        // A join reshuffles again.
        server.register(3, node(0), 40_003, SimTime::ZERO);
        place(&mut server, 3, Vec3::new(0.5, 0.0, 0.0));
        assert!(server.in_focus(0, 3, 1));
        assert!(!server.in_focus(0, 2, 1));
    }

    #[test]
    fn nan_position_does_not_panic_and_sorts_out_of_focus() {
        let mut cfg = PlatformConfig::vrchat();
        cfg.forward_policy = ForwardPolicy::InterestManagement { focus: 2, background_hz: 1.0 };
        let snode = node(9);
        let mut server = DataServer::new(snode, &cfg, 13);
        for i in 0..4u32 {
            server.register(i, node(i), 40_000 + i as u16, SimTime::ZERO);
        }
        place(&mut server, 0, Vec3::ZERO);
        place(&mut server, 1, Vec3::new(1.0, 0.0, 0.0));
        place(&mut server, 2, Vec3::new(2.0, 0.0, 0.0));
        place(&mut server, 3, Vec3::new(f32::NAN, 0.0, 0.0));
        // The original implementation panicked on `partial_cmp` here;
        // with `total_cmp` the NaN-positioned user ranks last.
        assert!(server.in_focus(0, 1, 2));
        assert!(server.in_focus(0, 2, 2));
        assert!(!server.in_focus(0, 3, 2));
        // A NaN receiver must not panic either (all distances NaN).
        for sender in [0u32, 1, 2] {
            let _ = server.in_focus(3, sender, 2);
        }
        // The full forwarding path still runs.
        let mut c1 = UdpChannel::new(1, 40_001, DATA_SERVER_PORT, SimTime::ZERO);
        let body = avatar_body(&cfg, 1, Vec3::new(1.0, 0.0, 0.0), 0.0);
        let pkt = udp_avatar_packet(&mut c1, SimTime::from_millis(5), &body, node(1), snode);
        server.on_packet(SimTime::from_millis(5), &pkt);
        server.on_tick(SimTime::from_secs(1));
    }

    #[test]
    fn addr_index_distinguishes_users_behind_one_node() {
        // Many users behind a single client node (the sharded-world
        // topology): only the source port tells them apart.
        let cfg = PlatformConfig::vrchat();
        let snode = node(9);
        let shared = node(3);
        let mut server = DataServer::new(snode, &cfg, 21);
        for i in 0..4u32 {
            server.register(i, shared, 40_000 + i as u16, SimTime::ZERO);
        }
        let mut c2 = UdpChannel::new(2, 40_002, DATA_SERVER_PORT, SimTime::ZERO);
        let body = avatar_body(&cfg, 2, Vec3::new(1.0, 0.0, 2.0), 0.0);
        let pkt = udp_avatar_packet(&mut c2, SimTime::from_millis(5), &body, shared, snode);
        server.on_packet(SimTime::from_millis(5), &pkt);
        server.on_tick(SimTime::from_secs(1));
        assert_eq!(server.stats.forwards, 3, "attributed to user 2, fanned to the other 3");
        // After unregistering, the same packet is ignored.
        server.unregister(2);
        let before = server.stats.forwards;
        let pkt = udp_avatar_packet(&mut c2, SimTime::from_secs(2), &body, shared, snode);
        server.on_packet(SimTime::from_secs(2), &pkt);
        server.on_tick(SimTime::from_secs(3));
        assert_eq!(server.stats.forwards, before, "stale index entry removed");
    }

    #[test]
    fn extract_then_admit_preserves_avatar_state() {
        let cfg = PlatformConfig::vrchat();
        let mut src = DataServer::new(node(8), &cfg, 22);
        let mut dst = DataServer::new(node(9), &cfg, 23);
        src.register(7, node(1), 40_007, SimTime::ZERO);
        place(&mut src, 7, Vec3::new(3.0, 0.0, -2.0));
        let profile = src.extract_user(7).expect("user present");
        assert_eq!(src.user_count(), 0);
        assert!(!src.contains_user(7));
        assert_eq!(profile.position, Vec3::new(3.0, 0.0, -2.0));
        dst.admit_user(&profile, node(2), 40_007, SimTime::from_secs(1));
        assert!(dst.contains_user(7));
        assert_eq!(dst.user_count(), 1);
        assert_eq!(dst.users[&7].position, Vec3::new(3.0, 0.0, -2.0));
        // Unknown users extract to None.
        assert!(src.extract_user(99).is_none());
    }

    #[test]
    fn stream_frame_roundtrip() {
        for kind in [MsgKind::Avatar, MsgKind::Game, MsgKind::Voice, MsgKind::KeepAlive] {
            let framed = stream_frame(kind, b"body");
            let (k, b) = parse_stream_frame(&framed).unwrap();
            assert_eq!(k, kind);
            assert_eq!(b, b"body");
        }
        assert!(parse_stream_frame(&[]).is_none());
    }
}
