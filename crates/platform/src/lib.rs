//! # svr-platform
//!
//! Behavioural models of the five social-VR platforms the paper measures
//! — AltspaceVR, Horizon Worlds, Mozilla Hubs, Rec Room, and VRChat —
//! built on the netsim/transport/geo/avatar/client substrates.
//!
//! Each platform is a [`config::PlatformConfig`]: which protocols carry
//! its control and data channels (Table 2), which server pools host them,
//! the avatar embodiment and tick rate that set its data rate (Table 3),
//! the client performance profile (Fig. 7/8), the server's forwarding
//! policy (direct vs AltspaceVR's viewport-adaptive vs the proposed
//! remote rendering), and platform quirks like Worlds' TCP-over-UDP
//! priority rule (§8.1) and its periodic clock-sync spikes.
//!
//! [`session`] assembles a full testbed — users behind WiFi APs with
//! capture taps, geo-placed servers — and runs scripted experiments,
//! producing the captures and client metrics that `svr-core` analyses
//! exactly the way the paper analysed Wireshark + OVR Metrics data.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod autodriver;
pub mod config;
pub mod client_app;
pub mod features;
pub mod game;
pub mod server;
pub mod session;
pub mod stream;

pub use config::{ChannelKind, DataTransport, PlatformConfig, PlatformId};
pub use features::{FeatureMatrix, Locomotion};
pub use autodriver::parse_script;
pub use server::ForwardPolicy;
pub use session::{Behavior, SessionConfig, SessionResult, UserMetrics};
