//! Session orchestration: the full testbed in one deterministic run.
//!
//! A [`SessionConfig`] describes an experiment the way §3/§6/§7/§8
//! describe theirs: which platform, how many users, when each joins,
//! scripted behaviours (turns, walks, games, marked actions), and any
//! netem impairments on U1's links. [`run_session`] builds the topology
//! (headsets behind tapped APs, a campus router, geo-placed control and
//! data servers), drives every component, and returns the raw material
//! the paper's analysis consumed: per-AP packet captures, per-device
//! OVR-style metric samples, end-to-end action latencies, and server
//! counters.

use crate::client_app::{ClientApp, ClientEvent};
use crate::config::PlatformConfig;
use crate::server::{DataServer, ServerStats};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use svr_avatar::skeleton::Vec3;
use svr_client::{Monitor, MonitorSummary, RenderLoad, RenderModel, ResourceModel};
use svr_geo::Site;
use svr_netsim::{
    CaptureRecord, LinkSpec, NetemSchedule, Network, NodeId, NodeKind, Proto, SimDuration, SimRng,
    SimTime,
};

/// Scripted user behaviours.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Behavior {
    /// The user enters the social event.
    Join {
        /// User index.
        user: usize,
        /// When.
        at: SimTime,
    },
    /// Instant heading change (controller snap turn).
    Turn {
        /// User index.
        user: usize,
        /// When.
        at: SimTime,
        /// Degrees to rotate by.
        delta_deg: f32,
    },
    /// Face an absolute heading.
    SetHeading {
        /// User index.
        user: usize,
        /// When.
        at: SimTime,
        /// Heading in degrees.
        deg: f32,
    },
    /// Walk to a floor position.
    WalkTo {
        /// User index.
        user: usize,
        /// When.
        at: SimTime,
        /// Target x.
        x: f32,
        /// Target z.
        z: f32,
    },
    /// Wander the room continuously.
    Wander {
        /// User index.
        user: usize,
        /// When.
        at: SimTime,
    },
    /// Socialise: wander a small chat circle while facing the group
    /// (the paper's "walk around and chat with each other").
    Chat {
        /// User index.
        user: usize,
        /// When.
        at: SimTime,
    },
    /// Start the platform's game on every joined user.
    StartGame {
        /// When.
        at: SimTime,
    },
    /// Perform a marked action (the §7 finger-touch) on a user.
    Action {
        /// User index.
        user: usize,
        /// When.
        at: SimTime,
    },
    /// Unmute a user's microphone (experiments default to muted, §6.1).
    Unmute {
        /// User index.
        user: usize,
        /// When.
        at: SimTime,
    },
}

impl Behavior {
    /// When this behaviour fires.
    pub fn at(&self) -> SimTime {
        match self {
            Behavior::Join { at, .. }
            | Behavior::Turn { at, .. }
            | Behavior::SetHeading { at, .. }
            | Behavior::WalkTo { at, .. }
            | Behavior::Wander { at, .. }
            | Behavior::Chat { at, .. }
            | Behavior::StartGame { at }
            | Behavior::Action { at, .. }
            | Behavior::Unmute { at, .. } => *at,
        }
    }
}

/// One measured end-to-end action (§7's finger-touch).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActionLatency {
    /// Action id (unique per sender).
    pub action_id: u64,
    /// Sending user index.
    pub from: usize,
    /// Receiving user index.
    pub to: usize,
    /// When the sender performed the action.
    pub performed_at: SimTime,
    /// When the update left the sender's device.
    pub sent_at: SimTime,
    /// When the update was delivered to the receiver's device.
    pub arrived_at: SimTime,
    /// When the receiver's display reflected it.
    pub displayed_at: SimTime,
}

impl ActionLatency {
    /// The end-to-end latency.
    pub fn e2e(&self) -> SimDuration {
        self.displayed_at.saturating_since(self.performed_at)
    }

    /// Sender-side processing latency.
    pub fn sender(&self) -> SimDuration {
        self.sent_at.saturating_since(self.performed_at)
    }

    /// Receiver-side processing latency.
    pub fn receiver(&self) -> SimDuration {
        self.displayed_at.saturating_since(self.arrived_at)
    }

    /// Network transit plus server processing (the breakdown splits this
    /// further using the known path RTTs, as the paper did from traces).
    pub fn transit(&self) -> SimDuration {
        self.arrived_at.saturating_since(self.sent_at)
    }
}

/// The experiment description.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Platform under test.
    pub platform: PlatformConfig,
    /// Number of users.
    pub n_users: usize,
    /// Run length.
    pub duration: SimDuration,
    /// Random seed (a "trial" in paper terms: ≥20 seeds per experiment).
    pub seed: u64,
    /// Vantage point of the testbed.
    pub vantage: Site,
    /// Scripted behaviours.
    pub behaviors: Vec<Behavior>,
    /// Netem on user-0's uplink (headset→AP), all traffic.
    pub netem_uplink: Option<NetemSchedule>,
    /// Netem on user-0's downlink (AP→headset), all traffic.
    pub netem_downlink: Option<NetemSchedule>,
    /// Netem on user-0's uplink, TCP only (§8.1 Fig. 13 bottom).
    pub netem_tcp_uplink: Option<NetemSchedule>,
    /// Capture packets at every AP (default: first two users only).
    pub capture_all: bool,
    /// Driver step.
    pub dt: SimDuration,
    /// Reference mode: tick every client every step instead of using the
    /// earliest-deadline queue. Produces identical results; kept as the
    /// oracle the equivalence test compares against.
    pub poll_all_clients: bool,
}

impl SessionConfig {
    /// A basic scenario: `n` users, all joining at `t=5s`, wandering and
    /// "chatting" (muted, like the paper's experiments) for `duration`.
    pub fn walk_and_chat(
        platform: PlatformConfig,
        n_users: usize,
        duration: SimDuration,
        seed: u64,
    ) -> Self {
        let mut behaviors = Vec::new();
        for u in 0..n_users {
            behaviors.push(Behavior::Join { user: u, at: SimTime::from_secs(5) });
            behaviors.push(Behavior::Chat { user: u, at: SimTime::from_secs(6) });
        }
        SessionConfig {
            platform,
            n_users,
            duration,
            seed,
            vantage: Site::FairfaxVa,
            behaviors,
            netem_uplink: None,
            netem_downlink: None,
            netem_tcp_uplink: None,
            capture_all: false,
            dt: SimDuration::from_millis(2),
            poll_all_clients: false,
        }
    }
}

/// Per-user results.
#[derive(Debug)]
pub struct UserMetrics {
    /// Packets captured at this user's AP (empty unless tapped).
    pub ap_records: Vec<CaptureRecord>,
    /// OVR-style metric samples (1 Hz).
    pub samples: Vec<svr_client::MetricSample>,
    /// When the data channel died, if it did (§8.1's frozen screen).
    pub frozen_at: Option<SimTime>,
    /// This user's headset node.
    pub node: NodeId,
    /// This user's AP node.
    pub ap: NodeId,
    /// Data-channel client port (for flow classification).
    pub data_port: u16,
    /// Control-channel client port.
    pub control_port: u16,
    /// Avatar updates received.
    pub avatar_updates_received: u64,
    /// Video bytes received (remote-render ablation).
    pub video_bytes: u64,
    /// When this user joined the event (if they did).
    pub joined_at: Option<SimTime>,
    /// Seconds during which a running game's countdown board was stale
    /// (no clock sync within the staleness window, §8.1).
    pub countdown_stale_seconds: u64,
    /// 95th-percentile dead-reckoning pop, metres (§8.2 perceptibility).
    pub prediction_p95_m: f32,
}

impl UserMetrics {
    /// Summarise this user's monitor samples over `[from, to)`.
    pub fn summarize_between(&self, from: SimTime, to: SimTime) -> MonitorSummary {
        let slice: Vec<svr_client::MetricSample> = self
            .samples
            .iter()
            .copied()
            .filter(|s| s.ts >= from && s.ts < to)
            .collect();
        summarize_samples(&slice)
    }
}

fn summarize_samples(slice: &[svr_client::MetricSample]) -> MonitorSummary {
    let n = slice.len();
    if n == 0 {
        return MonitorSummary {
            avg_fps: 0.0,
            avg_stale: 0.0,
            avg_cpu: 0.0,
            avg_gpu: 0.0,
            avg_memory_mb: 0.0,
            battery_used_pct: 0.0,
            samples: 0,
        };
    }
    let avg = |f: fn(&svr_client::MetricSample) -> f64| {
        slice.iter().map(f).sum::<f64>() / n as f64
    };
    MonitorSummary {
        avg_fps: avg(|s| s.fps),
        avg_stale: avg(|s| s.stale),
        avg_cpu: avg(|s| s.cpu),
        avg_gpu: avg(|s| s.gpu),
        avg_memory_mb: avg(|s| s.memory_mb),
        // Max − min over the window, not first − last: samples are not
        // guaranteed monotone (a charging headset, or a window cut
        // across a battery reset) and drain can never be negative.
        battery_used_pct: {
            let max = slice.iter().map(|s| s.battery_pct).fold(f64::MIN, f64::max);
            let min = slice.iter().map(|s| s.battery_pct).fold(f64::MAX, f64::min);
            max - min
        },
        samples: n,
    }
}

/// Everything a run produced.
#[derive(Debug)]
pub struct SessionResult {
    /// Per-user metrics & captures.
    pub users: Vec<UserMetrics>,
    /// Measured end-to-end actions.
    pub actions: Vec<ActionLatency>,
    /// Data-server counters.
    pub server_stats: ServerStats,
    /// Data-server node (for flow classification).
    pub data_server_node: NodeId,
    /// Control-server node.
    pub control_server_node: NodeId,
    /// Run duration.
    pub duration: SimDuration,
}

/// Run one experiment session.
pub fn run_session(cfg: &SessionConfig) -> SessionResult {
    Session::build(cfg).run()
}

struct UserRuntime {
    app: ClientApp,
    monitor: Monitor,
    node: NodeId,
    ap: NodeId,
    control_server: svr_transport::HttpServer,
    frozen_at: Option<SimTime>,
    joined_at: Option<SimTime>,
    avatar_updates_received: u64,
    countdown_stale_seconds: u64,
    /// Rolling byte counter of data-channel downlink (current second).
    downlink_bytes_this_second: u64,
    downlink_mbps: f64,
    /// Avatar updates received this second (for reconciliation estimate).
    updates_this_second: u64,
}

struct PendingMarker {
    action_id: u64,
    from: usize,
    tick: u32,
    performed_at: SimTime,
    sent_at: SimTime,
}

struct Session {
    net: Network,
    users: Vec<UserRuntime>,
    server: DataServer,
    data_server_node: NodeId,
    control_server_node: NodeId,
    behaviors: Vec<Behavior>,
    next_behavior: usize,
    markers: Vec<PendingMarker>,
    actions: Vec<ActionLatency>,
    duration: SimDuration,
    dt: SimDuration,
    rng: SimRng,
    platform: PlatformConfig,
    next_sample: SimTime,
    poll_all_clients: bool,
    /// Earliest-deadline queue over per-user timers: idle clients are
    /// skipped instead of ticked every step. `user_due` holds the
    /// currently-armed deadline; heap entries that disagree with it are
    /// stale and ignored (lazy invalidation).
    timer_heap: BinaryHeap<Reverse<(SimTime, usize)>>,
    user_due: Vec<SimTime>,
    due_scratch: Vec<usize>,
}

impl Session {
    fn build(cfg: &SessionConfig) -> Session {
        assert!(cfg.n_users >= 1, "need at least one user");
        let mut net = Network::new(cfg.seed);
        let router = net.add_node("campus-router", NodeKind::Router);

        // Servers, placed so the AP↔server RTT matches the geo model.
        let data_rtt = cfg.platform.data_pool.rtt_from(cfg.vantage);
        let ctl_rtt = cfg.platform.control_pool.rtt_from(cfg.vantage);
        let data_server_node = net.add_node("data-server", NodeKind::Server);
        let control_server_node = net.add_node("control-server", NodeKind::Server);
        let backbone = |rtt: SimDuration| {
            let one_way_us = (rtt / 2).as_micros().saturating_sub(350).max(50);
            LinkSpec::backbone(SimDuration::from_micros(one_way_us))
        };
        net.add_duplex_link(router, data_server_node, backbone(data_rtt), backbone(data_rtt));
        net.add_duplex_link(router, control_server_node, backbone(ctl_rtt), backbone(ctl_rtt));

        let mut server = DataServer::new(data_server_node, &cfg.platform, cfg.seed);
        let _ = &mut server;

        let mut rng = SimRng::seed_from_u64(cfg.seed ^ 0x005E_5510);
        let mut users = Vec::with_capacity(cfg.n_users);
        for u in 0..cfg.n_users {
            let headset = net.add_node(format!("U{}", u + 1), NodeKind::Headset);
            let ap = net.add_node(format!("AP{}", u + 1), NodeKind::AccessPoint);
            net.add_duplex_link(headset, ap, LinkSpec::wifi(), LinkSpec::wifi());
            net.add_duplex_link(ap, router, LinkSpec::campus(), LinkSpec::campus());
            if cfg.capture_all || u < 2 {
                net.add_tap(ap);
            }
            // Netem on user 0's wifi hop.
            if u == 0 {
                if let Some(sched) = &cfg.netem_uplink {
                    let l = net.link_between(headset, ap).unwrap();
                    net.link_mut(l).set_netem(sched.clone());
                }
                if let Some(sched) = &cfg.netem_tcp_uplink {
                    let l = net.link_between(headset, ap).unwrap();
                    net.link_mut(l).set_netem_filtered(sched.clone(), Proto::Tcp);
                }
                if let Some(sched) = &cfg.netem_downlink {
                    // Shape upstream of the AP so the AP capture (like
                    // Wireshark behind tc on the testbed AP) sees the
                    // post-shaping traffic the headset actually receives.
                    let l = net.link_between(router, ap).unwrap();
                    net.link_mut(l).set_netem(sched.clone());
                }
            }

            // Spawn in a rough circle so everyone is mutually visible by
            // default (the §6.1 center-of-the-room setup).
            let angle = u as f32 / cfg.n_users.max(1) as f32 * std::f32::consts::TAU;
            let spawn = Vec3::new(angle.cos() * 2.0, 0.0, angle.sin() * 2.0);
            // Face the room center.
            let heading = (-spawn.x).atan2(-spawn.z).to_degrees();

            let app = ClientApp::new(
                u as u32,
                cfg.platform.clone(),
                headset,
                data_server_node,
                control_server_node,
                cfg.seed ^ ((u as u64) << 32),
                spawn,
                heading,
            );

            // Control server endpoint for this client.
            let init_bytes = cfg.platform.init_download_bytes as usize;
            let report_down = cfg.platform.report_down_bytes;
            let mut resp_rng = rng.fork(u as u64 + 1);
            let responder: svr_transport::http::Responder =
                Box::new(move |path: &str, _len: usize| match path {
                    "/init" | "/world" => (200, init_bytes),
                    "/report" | "/sync" => (200, report_down),
                    _ => (200, resp_rng.range_u64(15_000, 120_000) as usize),
                });
            let control_server = svr_transport::HttpServer::listen(
                svr_transport::tcp::TcpConfig::default(),
                443,
                50_000 + u as u16,
                responder,
            );

            let monitor = Monitor::new(RenderModel::new(
                ResourceModel::new(cfg.platform.perf, cfg.platform.device().compute_scale),
                cfg.platform.device(),
            ));

            users.push(UserRuntime {
                app,
                monitor,
                node: headset,
                ap,
                control_server,
                frozen_at: None,
                joined_at: None,
                avatar_updates_received: 0,
                countdown_stale_seconds: 0,
                downlink_bytes_this_second: 0,
                downlink_mbps: 0.0,
                updates_this_second: 0,
            });
        }

        let mut behaviors = cfg.behaviors.clone();
        behaviors.sort_by_key(|b| b.at());

        let n = users.len();
        Session {
            net,
            users,
            server,
            data_server_node,
            control_server_node,
            behaviors,
            next_behavior: 0,
            markers: Vec::new(),
            actions: Vec::new(),
            duration: cfg.duration,
            dt: cfg.dt,
            rng,
            platform: cfg.platform.clone(),
            next_sample: SimTime::from_secs(1),
            poll_all_clients: cfg.poll_all_clients,
            timer_heap: BinaryHeap::with_capacity(n),
            user_due: vec![SimTime::ZERO; n],
            due_scratch: Vec::with_capacity(n),
        }
    }

    /// (Re)arm user `idx`'s deadline from its component timers, no
    /// earlier than `floor`. Reference-mode sessions skip the bookkeeping
    /// entirely.
    fn arm(&mut self, idx: usize, now: SimTime, floor: SimTime) {
        if self.poll_all_clients {
            return;
        }
        let u = &self.users[idx];
        let app = u.app.next_timer(now);
        let ctl = u.control_server.next_timer();
        let due = match (app, ctl) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            // Nothing armed: never wake spontaneously (packets re-arm).
            (None, None) => SimTime::MAX,
        }
        .max(floor);
        self.user_due[idx] = due;
        if due < SimTime::MAX {
            self.timer_heap.push(Reverse((due, idx)));
        }
    }

    fn joined_count(&self) -> usize {
        self.users.iter().filter(|u| u.joined_at.is_some()).count()
    }

    fn receiver_proc(&mut self, n_joined: usize) -> SimDuration {
        let mean = self.platform.receiver_proc_ms
            + self.platform.receiver_per_user_ms * (n_joined.saturating_sub(2)) as f64;
        SimDuration::from_millis_f64(self.rng.gaussian_at_least(mean, mean * 0.12, 2.0))
    }

    fn apply_behaviors(&mut self, now: SimTime) {
        while self.next_behavior < self.behaviors.len()
            && self.behaviors[self.next_behavior].at() <= now
        {
            let b = self.behaviors[self.next_behavior];
            self.next_behavior += 1;
            // A behaviour can arm new client timers (join, game start,
            // unmute, actions): re-arm the touched users afterwards.
            let touched: Option<usize> = match b {
                Behavior::StartGame { .. } => None, // touches everyone
                Behavior::Join { user, .. }
                | Behavior::Turn { user, .. }
                | Behavior::SetHeading { user, .. }
                | Behavior::WalkTo { user, .. }
                | Behavior::Wander { user, .. }
                | Behavior::Chat { user, .. }
                | Behavior::Action { user, .. }
                | Behavior::Unmute { user, .. } => Some(user),
            };
            match b {
                Behavior::Join { user, .. } => {
                    let joined = {
                        let u = &mut self.users[user];
                        if u.joined_at.is_some() {
                            continue;
                        }
                        u.joined_at = Some(now);
                        let out = u.app.enter_event(now);
                        let node = u.node;
                        (out, node)
                    };
                    let (out, node) = joined;
                    self.server.register(user as u32, node, 40_000 + user as u16, now);
                    for (dst, p) in out {
                        self.net.send(node, dst, p);
                    }
                }
                Behavior::Turn { user, delta_deg, .. } => {
                    self.users[user].app.motion.turn(delta_deg);
                }
                Behavior::SetHeading { user, deg, .. } => {
                    self.users[user].app.motion.set_heading(deg);
                }
                Behavior::WalkTo { user, x, z, .. } => {
                    self.users[user].app.motion.walk_to(Vec3::new(x, 0.0, z));
                }
                Behavior::Wander { user, .. } => {
                    self.users[user].app.motion.wander();
                }
                Behavior::Chat { user, .. } => {
                    let m = &mut self.users[user].app.motion;
                    m.set_bounds(2.5);
                    m.face_toward(Some(svr_avatar::Vec3::ZERO));
                    m.wander();
                }
                Behavior::StartGame { .. } => {
                    for u in &mut self.users {
                        if u.joined_at.is_some() {
                            u.app.start_game(now);
                        }
                    }
                }
                Behavior::Action { user, .. } => {
                    self.users[user].app.perform_action(now);
                }
                Behavior::Unmute { user, .. } => {
                    self.users[user].app.muted = false;
                }
            }
            match touched {
                Some(user) => self.arm(user, now, now),
                None => {
                    for idx in 0..self.users.len() {
                        self.arm(idx, now, now);
                    }
                }
            }
        }
    }

    fn handle_client_events(&mut self, user: usize, now: SimTime, events: Vec<ClientEvent>) {
        for ev in events {
            match ev {
                ClientEvent::ActionSent { action_id, tick, performed_at } => {
                    self.markers.push(PendingMarker {
                        action_id,
                        from: user,
                        tick,
                        performed_at,
                        sent_at: now,
                    });
                }
                ClientEvent::AvatarReceived { from, tick } => {
                    self.users[user].avatar_updates_received += 1;
                    self.users[user].updates_this_second += 1;
                    // Marked action arriving?
                    let n_joined = self.joined_count();
                    if let Some(pos) = self
                        .markers
                        .iter()
                        .position(|m| m.from as u32 == from && m.tick == tick)
                    {
                        let m = &self.markers[pos];
                        let (action_id, from_u, performed_at, sent_at) =
                            (m.action_id, m.from, m.performed_at, m.sent_at);
                        let proc = self.receiver_proc(n_joined);
                        self.actions.push(ActionLatency {
                            action_id,
                            from: from_u,
                            to: user,
                            performed_at,
                            sent_at,
                            arrived_at: now,
                            displayed_at: now + proc,
                        });
                        // Keep the marker: other receivers may still get it.
                    }
                }
                ClientEvent::DataChannelDead => {
                    if self.users[user].frozen_at.is_none() {
                        self.users[user].frozen_at = Some(now);
                    }
                }
                ClientEvent::WelcomeReached => {}
            }
        }
    }

    fn dispatch_delivery(&mut self, now: SimTime, delivery: svr_netsim::Delivery) {
        let dst = delivery.dst;
        let pkt = delivery.packet;
        if dst == self.data_server_node {
            for (node, p) in self.server.on_packet(now, &pkt) {
                self.net.send(self.data_server_node, node, p);
            }
            return;
        }
        if dst == self.control_server_node {
            // Find the owning per-user control endpoint by client port.
            let port = pkt.header.src_port;
            if let Some(idx) = self
                .users
                .iter()
                .position(|u| u.node == pkt.src && 50_000 + (u.app.user_id as u16) == port)
            {
                let node = self.users[idx].node;
                let out = self.users[idx].control_server.on_packet(now, &pkt);
                for p in out {
                    self.net.send(self.control_server_node, node, p);
                }
                self.arm(idx, now, now);
            }
            return;
        }
        // A client node.
        if let Some(idx) = self.users.iter().position(|u| u.node == dst) {
            // Track data-channel downlink bytes for the decode-load model.
            if pkt.src == self.data_server_node {
                self.users[idx].downlink_bytes_this_second += pkt.wire_size().as_bytes();
            }
            let (out, events) = self.users[idx].app.on_packet(now, &pkt);
            let node = self.users[idx].node;
            for (d, p) in out {
                self.net.send(node, d, p);
            }
            self.handle_client_events(idx, now, events);
            self.arm(idx, now, now);
        }
    }

    fn reconciliation_estimate(&self, user: usize, now: SimTime) -> f64 {
        // Fraction of expected peer updates that failed to arrive in the
        // last second — the §8.1 "process missing critical information"
        // load.
        let u = &self.users[user];
        if u.joined_at.is_none() {
            return 0.0;
        }
        let peers = u.app.active_peers(now).max(
            self.joined_count().saturating_sub(1).min(1), // at least 1 peer once others joined
        );
        if peers == 0 || self.joined_count() < 2 {
            return 0.0;
        }
        let expected = self.platform.avatar_tick_hz * peers as f64;
        if expected <= 0.0 {
            return 0.0;
        }
        (1.0 - u.updates_this_second as f64 / expected).clamp(0.0, 1.0)
    }

    fn sample_monitors(&mut self, now: SimTime) {
        for idx in 0..self.users.len() {
            let recon = self.reconciliation_estimate(idx, now);
            let u = &mut self.users[idx];
            // Downlink rate over the past second.
            u.downlink_mbps = u.downlink_bytes_this_second as f64 * 8.0 / 1e6;
            u.downlink_bytes_this_second = 0;
            u.updates_this_second = 0;
            let load = RenderLoad {
                visible_avatars: u.app.active_peers(now) as f64,
                downlink_mbps: u.downlink_mbps,
                game_active: u.app.game.is_some(),
                // Reconciliation work is game-state resync: only games
                // chase missing critical state (§8.1).
                reconciliation: if u.app.game.is_some() { recon } else { 0.0 },
            };
            u.monitor.sample(now, load, 1.0);
            if let Some(g) = &u.app.game {
                if g.countdown_stale(now) && g.last_sync.is_some() {
                    u.countdown_stale_seconds += 1;
                }
            }
        }
    }

    fn run(mut self) -> SessionResult {
        // Launch every app at t=0, then arm its first deadline.
        for idx in 0..self.users.len() {
            let now = SimTime::ZERO;
            let out = self.users[idx].app.launch(now);
            let node = self.users[idx].node;
            for (d, p) in out {
                self.net.send(node, d, p);
            }
            self.arm(idx, now, now);
        }

        let mut t = SimTime::ZERO;
        let end = SimTime::ZERO + self.duration;
        while t < end {
            t = (t + self.dt).min(end);
            self.apply_behaviors(t);

            // Network deliveries up to t.
            let deliveries = self.net.poll_all(t);
            for d in deliveries {
                self.dispatch_delivery(t, d);
            }

            // Component timers: only users whose earliest deadline has
            // arrived are ticked (every user, in reference mode). Ties
            // and early deadlines collapse onto this step's grid point,
            // in user order — exactly the schedule full polling runs.
            let mut due_users = std::mem::take(&mut self.due_scratch);
            due_users.clear();
            if self.poll_all_clients {
                due_users.extend(0..self.users.len());
            } else {
                while let Some(&Reverse((due, idx))) = self.timer_heap.peek() {
                    if due > t {
                        break;
                    }
                    self.timer_heap.pop();
                    if self.user_due[idx] == due {
                        due_users.push(idx);
                    } // else: stale entry, superseded by a re-arm
                }
                due_users.sort_unstable();
                due_users.dedup();
            }
            for &idx in &due_users {
                let (out, events) = self.users[idx].app.on_tick(t);
                let node = self.users[idx].node;
                for (d, p) in out {
                    self.net.send(node, d, p);
                }
                self.handle_client_events(idx, t, events);
                // Control server timers (TCP retransmits on big downloads).
                let pkts = self.users[idx].control_server.on_tick(t);
                let node = self.users[idx].node;
                for p in pkts {
                    self.net.send(self.control_server_node, node, p);
                }
                // Past this step: the next wake is at least one step out.
                self.arm(idx, t, t + self.dt);
            }
            self.due_scratch = due_users;
            for (node, p) in self.server.on_tick(t) {
                self.net.send(self.data_server_node, node, p);
            }

            // 1 Hz monitor sampling.
            if t >= self.next_sample {
                self.sample_monitors(t);
                self.next_sample += SimDuration::from_secs(1);
            }
        }

        let users = self
            .users
            .into_iter()
            .enumerate()
            .map(|(i, u)| UserMetrics {
                ap_records: self.net.take_tap_records(u.ap),
                samples: u.monitor.samples().to_vec(),
                frozen_at: u.frozen_at,
                node: u.node,
                ap: u.ap,
                data_port: 40_000 + i as u16,
                control_port: 50_000 + i as u16,
                avatar_updates_received: u.avatar_updates_received,
                video_bytes: u.app.video_bytes,
                joined_at: u.joined_at,
                countdown_stale_seconds: u.countdown_stale_seconds,
                prediction_p95_m: u.app.prediction_p95_m(),
            })
            .collect();

        SessionResult {
            users,
            actions: self.actions,
            server_stats: self.server.stats,
            data_server_node: self.data_server_node,
            control_server_node: self.control_server_node,
            duration: self.duration,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PlatformConfig, PlatformId};
    use svr_netsim::capture::{by_server, Direction};

    fn short_session(platform: PlatformConfig, n: usize, secs: u64, seed: u64) -> SessionResult {
        let cfg = SessionConfig::walk_and_chat(
            platform,
            n,
            SimDuration::from_secs(secs),
            seed,
        );
        run_session(&cfg)
    }

    #[test]
    fn two_user_session_produces_data_traffic() {
        let r = short_session(PlatformConfig::vrchat(), 2, 30, 1);
        assert_eq!(r.users.len(), 2);
        // Both users received the other's avatar updates.
        for u in &r.users {
            assert!(
                u.avatar_updates_received > 100,
                "received {}",
                u.avatar_updates_received
            );
        }
        assert!(r.server_stats.forwards > 200);
        // The AP capture saw both directions of data traffic.
        let recs = &r.users[0].ap_records;
        let data = by_server(recs, r.data_server_node);
        assert!(!data.is_empty());
        assert!(data.iter().any(|x| x.direction == Direction::Uplink));
        assert!(data.iter().any(|x| x.direction == Direction::Downlink));
    }

    #[test]
    fn vrchat_two_user_throughput_matches_table3_shape() {
        let r = short_session(PlatformConfig::vrchat(), 2, 40, 2);
        let recs = &r.users[0].ap_records;
        let data = by_server(recs, r.data_server_node);
        // Steady-state window: 10–40 s (joined at 5 s).
        let up: u64 = data
            .iter()
            .filter(|x| x.direction == Direction::Uplink && x.ts >= SimTime::from_secs(10))
            .map(|x| x.wire_bytes)
            .sum();
        let kbps = up as f64 * 8.0 / 30.0 / 1e3;
        assert!(
            (20.0..45.0).contains(&kbps),
            "VRChat uplink {kbps:.1} Kbps vs paper 31.4"
        );
    }

    #[test]
    fn hubs_data_flows_over_tcp() {
        let r = short_session(PlatformConfig::hubs(), 2, 30, 3);
        let recs = &r.users[0].ap_records;
        let data = by_server(recs, r.data_server_node);
        assert!(!data.is_empty());
        assert!(data.iter().all(|x| x.flow.proto == Proto::Tcp), "Hubs data = HTTPS");
        assert!(r.users[0].avatar_updates_received > 50);
    }

    #[test]
    fn action_latency_measured_between_users() {
        let platform = PlatformConfig::recroom();
        let mut cfg = SessionConfig::walk_and_chat(platform, 2, SimDuration::from_secs(30), 4);
        for k in 0..5 {
            cfg.behaviors.push(Behavior::Action { user: 0, at: SimTime::from_secs(12 + k * 3) });
        }
        let r = run_session(&cfg);
        let to_u2: Vec<&ActionLatency> = r.actions.iter().filter(|a| a.to == 1).collect();
        assert!(to_u2.len() >= 4, "actions measured: {}", to_u2.len());
        for a in &to_u2 {
            let ms = a.e2e().as_millis_f64();
            // Rec Room ≈ 101.7 ms ± noise.
            assert!((70.0..160.0).contains(&ms), "RecRoom E2E {ms:.1} ms");
        }
    }

    #[test]
    fn monitors_track_joined_peers() {
        let r = short_session(PlatformConfig::vrchat(), 3, 25, 5);
        let u0 = &r.users[0];
        let late = u0.summarize_between(SimTime::from_secs(15), SimTime::from_secs(25));
        assert!(late.samples > 0);
        assert!(late.avg_fps > 30.0 && late.avg_fps <= 72.0);
        assert!(late.avg_cpu > 50.0);
    }

    #[test]
    fn edf_timer_queue_matches_full_polling() {
        // The earliest-deadline queue must be invisible: skipping idle
        // clients may not change a single packet. Compare against the
        // poll-every-client reference on platforms covering UDP, TLS
        // stream, TCP-priority gating, games, and voice.
        for (platform, secs, seed) in [
            (PlatformConfig::vrchat(), 25u64, 7u64),
            (PlatformConfig::hubs(), 20, 8),
            (PlatformConfig::worlds(), 20, 9),
        ] {
            let mut cfg = SessionConfig::walk_and_chat(platform, 3, SimDuration::from_secs(secs), seed);
            cfg.behaviors.push(Behavior::StartGame { at: SimTime::from_secs(10) });
            cfg.behaviors.push(Behavior::Unmute { user: 1, at: SimTime::from_secs(8) });
            cfg.behaviors.push(Behavior::Action { user: 0, at: SimTime::from_secs(12) });
            let edf = run_session(&cfg);
            let mut ref_cfg = cfg.clone();
            ref_cfg.poll_all_clients = true;
            let reference = run_session(&ref_cfg);
            assert_eq!(edf.server_stats, reference.server_stats);
            assert_eq!(edf.actions.len(), reference.actions.len());
            for (a, b) in edf.actions.iter().zip(&reference.actions) {
                assert_eq!((a.performed_at, a.sent_at, a.arrived_at), (b.performed_at, b.sent_at, b.arrived_at));
            }
            for (u, v) in edf.users.iter().zip(&reference.users) {
                assert_eq!(u.avatar_updates_received, v.avatar_updates_received);
                assert_eq!(u.ap_records.len(), v.ap_records.len());
                for (x, y) in u.ap_records.iter().zip(&v.ap_records) {
                    assert_eq!((x.ts, x.wire_bytes, x.payload_len), (y.ts, y.wire_bytes, y.payload_len));
                }
                assert_eq!(u.frozen_at, v.frozen_at);
                assert_eq!(u.video_bytes, v.video_bytes);
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = short_session(PlatformConfig::recroom(), 2, 15, 9);
        let b = short_session(PlatformConfig::recroom(), 2, 15, 9);
        assert_eq!(
            a.users[0].avatar_updates_received,
            b.users[0].avatar_updates_received
        );
        assert_eq!(a.server_stats, b.server_stats);
        assert_eq!(a.users[0].ap_records.len(), b.users[0].ap_records.len());
    }

    #[test]
    fn unmuted_user_adds_voice_traffic() {
        // Both runs identical except U1's microphone.
        let base = SessionConfig::walk_and_chat(
            PlatformConfig::vrchat(),
            2,
            SimDuration::from_secs(30),
            21,
        );
        let muted = run_session(&base);
        let mut unmuted_cfg = base.clone();
        unmuted_cfg.behaviors.push(Behavior::Unmute { user: 0, at: SimTime::from_secs(6) });
        let unmuted = run_session(&unmuted_cfg);
        let up = |r: &SessionResult| -> u64 {
            svr_netsim::capture::by_server(&r.users[0].ap_records, r.data_server_node)
                .iter()
                .filter(|x| {
                    x.direction == svr_netsim::capture::Direction::Uplink
                        && x.ts >= SimTime::from_secs(10)
                })
                .map(|x| x.wire_bytes)
                .sum()
        };
        let muted_kbps = up(&muted) as f64 * 8.0 / 20.0 / 1e3;
        let unmuted_kbps = up(&unmuted) as f64 * 8.0 / 20.0 / 1e3;
        let voice = unmuted_kbps - muted_kbps;
        // 50 Hz × (80 B + 58 B overhead) ≈ 55 Kbps.
        assert!(
            (40.0..70.0).contains(&voice),
            "voice contribution {voice:.1} Kbps (muted {muted_kbps:.1}, unmuted {unmuted_kbps:.1})"
        );
        // And the peer receives it: U2 downlink also grows.
        let down = |r: &SessionResult| -> u64 {
            svr_netsim::capture::by_server(&r.users[1].ap_records, r.data_server_node)
                .iter()
                .filter(|x| x.direction == svr_netsim::capture::Direction::Downlink)
                .map(|x| x.wire_bytes)
                .sum()
        };
        assert!(down(&unmuted) > down(&muted) + 50_000);
    }

    #[test]
    fn hubs_voice_rides_rtp_over_udp() {
        // Table 2: Hubs' data channel is "RTP/RTCP + HTTPS" — avatars on
        // the TLS stream, voice on UDP. Unmuting a Hubs user must produce
        // UDP traffic on an otherwise all-TCP platform, and the peer must
        // receive the frames.
        let mut cfg = SessionConfig::walk_and_chat(
            PlatformConfig::hubs(),
            2,
            SimDuration::from_secs(25),
            44,
        );
        cfg.behaviors.push(Behavior::Unmute { user: 0, at: SimTime::from_secs(8) });
        let r = run_session(&cfg);
        let recs =
            svr_netsim::capture::by_server(&r.users[0].ap_records, r.data_server_node);
        let udp = recs
            .iter()
            .filter(|x| x.flow.proto == svr_netsim::Proto::Udp)
            .count();
        let tcp = recs
            .iter()
            .filter(|x| x.flow.proto == svr_netsim::Proto::Tcp)
            .count();
        assert!(udp > 300, "RTP voice packets: {udp}");
        assert!(tcp > 300, "TLS avatar stream: {tcp}");
        // Muted U2 still *receives* U1's voice via the SFU.
        assert!(
            r.users[1].samples.len() > 10, // session ran
        );
        let u2_udp_down = svr_netsim::capture::by_server(
            &r.users[1].ap_records,
            r.data_server_node,
        )
        .iter()
        .filter(|x| {
            x.flow.proto == svr_netsim::Proto::Udp
                && x.direction == svr_netsim::capture::Direction::Downlink
        })
        .count();
        assert!(u2_udp_down > 300, "forwarded voice reaches U2: {u2_udp_down}");
    }

    #[test]
    fn interest_management_throttles_distant_avatars() {
        use crate::server::ForwardPolicy;
        let mut pcfg = PlatformConfig::vrchat();
        pcfg.forward_policy =
            ForwardPolicy::InterestManagement { focus: 2, background_hz: 2.0 };
        let cfg = SessionConfig::walk_and_chat(pcfg, 6, SimDuration::from_secs(25), 33);
        let r = run_session(&cfg);
        assert!(
            r.server_stats.interest_throttled > 200,
            "distant avatars throttled: {}",
            r.server_stats.interest_throttled
        );
        // Compare against direct forwarding: downlink must shrink.
        let direct_cfg = SessionConfig::walk_and_chat(
            PlatformConfig::vrchat(),
            6,
            SimDuration::from_secs(25),
            33,
        );
        let direct = run_session(&direct_cfg);
        let down = |res: &SessionResult| -> u64 {
            svr_netsim::capture::by_server(&res.users[0].ap_records, res.data_server_node)
                .iter()
                .filter(|x| x.direction == svr_netsim::capture::Direction::Downlink)
                .map(|x| x.wire_bytes)
                .sum()
        };
        assert!(
            down(&r) < down(&direct) * 8 / 10,
            "interest management cuts downlink: {} vs {}",
            down(&r),
            down(&direct)
        );
        // Everyone still receives *some* updates from everyone.
        assert!(r.users[0].avatar_updates_received > 100);
    }

    #[test]
    fn all_platforms_run_without_panic() {
        for id in PlatformId::ALL {
            let r = short_session(PlatformConfig::of(id), 2, 20, 11);
            assert!(
                r.users[0].avatar_updates_received > 0,
                "{id}: no avatar data"
            );
        }
    }
}
