//! Message-oriented TLS/TCP stream — Hubs' data channel.
//!
//! Hubs carries avatar state over its HTTPS connection (§4.1) rather
//! than UDP: in practice a WebSocket-style message stream inside TLS.
//! [`StreamChannel`] reproduces that stack on our transports: 4-byte
//! length-prefixed messages, sealed into TLS records, carried by the
//! simplified TCP. The protocol/encryption overhead this adds per update
//! is one reason Hubs' avatar traffic is heavier than its embodiment
//! alone would suggest (§5.2).

use svr_netsim::buf::{Bytes, BytesMut};
use svr_netsim::{Packet, SimTime};
use svr_transport::tcp::{TcpConfig, TcpConnection, TcpEvent};
use svr_transport::tls::{
    seal_stream, HandshakeProfile, RecordUnsealer, TlsSession, CONTENT_APPDATA, CONTENT_HANDSHAKE,
};

/// Events from the stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamEvent {
    /// TLS established; messages flow.
    Ready,
    /// A complete application message.
    Message(Bytes),
    /// The TCP connection died.
    Dead,
}

/// One endpoint of a message stream over TLS over TCP.
#[derive(Debug)]
pub struct StreamChannel {
    tcp: TcpConnection,
    tls: TlsSession,
    unsealer: RecordUnsealer,
    rx_buf: BytesMut,
    queued: Vec<Bytes>,
    ready_emitted: bool,
}

impl StreamChannel {
    /// Client side; returns the SYN to transmit.
    pub fn connect(cfg: TcpConfig, local_port: u16, remote_port: u16, now: SimTime) -> (Self, Vec<Packet>) {
        let (tcp, pkts) = TcpConnection::client(cfg, local_port, remote_port, now);
        (
            StreamChannel {
                tcp,
                tls: TlsSession::client(HandshakeProfile::default()),
                unsealer: RecordUnsealer::new(),
                rx_buf: BytesMut::new(),
                queued: Vec::new(),
                ready_emitted: false,
            },
            pkts,
        )
    }

    /// Server side; awaits the SYN.
    pub fn listen(cfg: TcpConfig, local_port: u16, remote_port: u16) -> Self {
        StreamChannel {
            tcp: TcpConnection::listen(cfg, local_port, remote_port),
            tls: TlsSession::server(HandshakeProfile::default()),
            unsealer: RecordUnsealer::new(),
            rx_buf: BytesMut::new(),
            queued: Vec::new(),
            ready_emitted: false,
        }
    }

    /// Whether messages currently flow without queueing.
    pub fn is_ready(&self) -> bool {
        self.tls.is_established()
    }

    /// Whether TCP holds unacknowledged data.
    pub fn has_unacked_data(&self) -> bool {
        self.tcp.has_unacked_data()
    }

    /// Queue/send one message. Returns packets to transmit now.
    pub fn send(&mut self, now: SimTime, msg: &[u8]) -> Vec<Packet> {
        if !self.tls.is_established() {
            self.queued.push(Bytes::copy_from_slice(msg));
            return Vec::new();
        }
        self.send_now(now, msg)
    }

    fn send_now(&mut self, now: SimTime, msg: &[u8]) -> Vec<Packet> {
        let mut framed = BytesMut::with_capacity(4 + msg.len());
        framed.put_u32(msg.len() as u32);
        framed.extend_from_slice(msg);
        let mut stream = Vec::new();
        for rec in seal_stream(CONTENT_APPDATA, &framed) {
            stream.extend_from_slice(&rec);
        }
        self.tcp.send_data(now, &stream)
    }

    fn drain_queued(&mut self, now: SimTime, out: &mut Vec<Packet>) {
        let queued = std::mem::take(&mut self.queued);
        for msg in queued {
            let pkts = self.send_now(now, &msg);
            out.extend(pkts);
        }
    }

    fn handle_tcp_events(
        &mut self,
        now: SimTime,
        tcp_events: Vec<TcpEvent>,
        out: &mut Vec<Packet>,
        events: &mut Vec<StreamEvent>,
    ) {
        for ev in tcp_events {
            match ev {
                TcpEvent::Connected => {
                    if let Some(flight) = self.tls.flight_to_send() {
                        out.extend(self.tcp.send_data(now, &flight));
                    }
                }
                TcpEvent::Data(data) => {
                    let Ok(records) = self.unsealer.feed(&data) else { continue };
                    for rec in records {
                        if rec.content_type == CONTENT_HANDSHAKE {
                            if let Some(resp) = self.tls.on_handshake_record(&rec) {
                                out.extend(self.tcp.send_data(now, &resp));
                            }
                            if self.tls.is_established() && !self.ready_emitted {
                                self.ready_emitted = true;
                                events.push(StreamEvent::Ready);
                                self.drain_queued(now, out);
                            }
                        } else {
                            self.rx_buf.extend_from_slice(&rec.plaintext);
                            self.extract_messages(events);
                        }
                    }
                }
                TcpEvent::Dead => events.push(StreamEvent::Dead),
                TcpEvent::Closed => {}
            }
        }
    }

    fn extract_messages(&mut self, events: &mut Vec<StreamEvent>) {
        loop {
            if self.rx_buf.len() < 4 {
                break;
            }
            let len = u32::from_be_bytes([
                self.rx_buf[0],
                self.rx_buf[1],
                self.rx_buf[2],
                self.rx_buf[3],
            ]) as usize;
            if self.rx_buf.len() < 4 + len {
                break;
            }
            let frame = self.rx_buf.split_to(4 + len);
            events.push(StreamEvent::Message(Bytes::copy_from_slice(&frame[4..])));
        }
    }

    /// Process an incoming packet.
    pub fn on_packet(&mut self, now: SimTime, pkt: &Packet) -> (Vec<Packet>, Vec<StreamEvent>) {
        let (mut out, tcp_events) = self.tcp.on_packet(now, pkt);
        let mut events = Vec::new();
        self.handle_tcp_events(now, tcp_events, &mut out, &mut events);
        (out, events)
    }

    /// Drive TCP timers.
    pub fn on_tick(&mut self, now: SimTime) -> (Vec<Packet>, Vec<StreamEvent>) {
        let (mut out, tcp_events) = self.tcp.on_tick(now);
        let mut events = Vec::new();
        self.handle_tcp_events(now, tcp_events, &mut out, &mut events);
        (out, events)
    }

    /// Next TCP timer deadline.
    pub fn next_timer(&self) -> Option<SimTime> {
        self.tcp.next_timer()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;
    use svr_netsim::SimDuration;

    fn run(
        a: &mut StreamChannel,
        b: &mut StreamChannel,
        initial: Vec<Packet>,
        until: SimTime,
    ) -> (Vec<StreamEvent>, Vec<StreamEvent>) {
        let delay = SimDuration::from_millis(10);
        let mut a2b: VecDeque<(SimTime, Packet)> = VecDeque::new();
        let mut b2a: VecDeque<(SimTime, Packet)> = VecDeque::new();
        let mut now = SimTime::ZERO;
        let (mut ev_a, mut ev_b) = (Vec::new(), Vec::new());
        for p in initial {
            a2b.push_back((now + delay, p));
        }
        loop {
            let mut next = SimTime::MAX;
            for t in [
                a2b.front().map(|(t, _)| *t),
                b2a.front().map(|(t, _)| *t),
                a.next_timer(),
                b.next_timer(),
            ]
            .into_iter()
            .flatten()
            {
                next = next.min(t);
            }
            if next > until {
                break;
            }
            now = next;
            if a2b.front().map(|(t, _)| *t <= now).unwrap_or(false) {
                let (_, p) = a2b.pop_front().unwrap();
                let (pkts, evs) = b.on_packet(now, &p);
                ev_b.extend(evs);
                for q in pkts {
                    b2a.push_back((now + delay, q));
                }
                continue;
            }
            if b2a.front().map(|(t, _)| *t <= now).unwrap_or(false) {
                let (_, p) = b2a.pop_front().unwrap();
                let (pkts, evs) = a.on_packet(now, &p);
                ev_a.extend(evs);
                for q in pkts {
                    a2b.push_back((now + delay, q));
                }
                continue;
            }
            let (pkts, evs) = a.on_tick(now);
            ev_a.extend(evs);
            for q in pkts {
                a2b.push_back((now + delay, q));
            }
            let (pkts, evs) = b.on_tick(now);
            ev_b.extend(evs);
            for q in pkts {
                b2a.push_back((now + delay, q));
            }
        }
        (ev_a, ev_b)
    }

    #[test]
    fn messages_flow_both_ways_after_handshake() {
        let cfg = TcpConfig::default();
        let (mut a, syn) = StreamChannel::connect(cfg, 4000, 443, SimTime::ZERO);
        let mut b = StreamChannel::listen(cfg, 443, 4000);
        let mut initial = syn;
        initial.extend(a.send(SimTime::ZERO, b"early-avatar-update"));
        let (ev_a, ev_b) = run(&mut a, &mut b, initial, SimTime::from_secs(5));
        assert!(ev_a.contains(&StreamEvent::Ready));
        assert!(ev_b
            .iter()
            .any(|e| matches!(e, StreamEvent::Message(m) if m.as_ref() == b"early-avatar-update")));
    }

    #[test]
    fn large_and_small_messages_preserved_in_order() {
        let cfg = TcpConfig::default();
        let (mut a, syn) = StreamChannel::connect(cfg, 4000, 443, SimTime::ZERO);
        let mut b = StreamChannel::listen(cfg, 443, 4000);
        let mut initial = syn;
        let msgs: Vec<Vec<u8>> =
            vec![vec![1u8; 10], vec![2u8; 5_000], vec![3u8; 100], vec![4u8; 20_000]];
        for m in &msgs {
            initial.extend(a.send(SimTime::ZERO, m));
        }
        let (_, ev_b) = run(&mut a, &mut b, initial, SimTime::from_secs(30));
        let got: Vec<Bytes> = ev_b
            .into_iter()
            .filter_map(|e| match e {
                StreamEvent::Message(m) => Some(m),
                _ => None,
            })
            .collect();
        assert_eq!(got.len(), msgs.len());
        for (g, m) in got.iter().zip(msgs.iter()) {
            assert_eq!(g.as_ref(), m.as_slice());
        }
    }

    #[test]
    fn unacked_data_visible_during_flight() {
        let cfg = TcpConfig::default();
        let (mut a, syn) = StreamChannel::connect(cfg, 4000, 443, SimTime::ZERO);
        let mut b = StreamChannel::listen(cfg, 443, 4000);
        run(&mut a, &mut b, syn, SimTime::from_secs(5));
        assert!(a.is_ready());
        let _pkts = a.send(SimTime::from_secs(5), b"msg");
        assert!(a.has_unacked_data(), "segment in flight");
    }
}
