//! AutoDriver-style scripted input playback (§9).
//!
//! The paper's future-work tooling extends Oculus AutoDriver, which
//! "enables the test of VR applications by automatically playing back
//! pre-defined inputs". This module is that player for the simulated
//! testbed: a tiny line-oriented script format that compiles into
//! session [`Behavior`]s, so crowd-sourced experiment definitions can be
//! shipped as plain text.
//!
//! Script grammar (one command per line, `#` comments):
//!
//! ```text
//! 5.0  join    0          # user 0 enters the event at t=5 s
//! 6.0  chat    0          # socialise (wander + face the group)
//! 6.0  wander  1
//! 50   walk    1  3.0 4.0 # walk user 1 to (x=3, z=4)
//! 250  turn    0  180     # snap turn by 180°
//! 90   heading 0  270     # face absolute heading 270°
//! 30   game               # start the platform's game for everyone
//! 40   action  0          # §7 finger-touch marker
//! 12   unmute  0
//! ```

use crate::session::Behavior;
use svr_netsim::SimTime;

/// A script parse error with its line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ScriptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "script line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ScriptError {}

fn err(line: usize, message: impl Into<String>) -> ScriptError {
    ScriptError { line, message: message.into() }
}

/// Parse an AutoDriver script into behaviours (sorted by time).
pub fn parse_script(script: &str) -> Result<Vec<Behavior>, ScriptError> {
    let mut out = Vec::new();
    for (idx, raw) in script.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        if tokens.len() < 2 {
            return Err(err(line_no, format!("expected '<time> <command> ...', got '{line}'")));
        }
        let t: f64 = tokens[0]
            .parse()
            .map_err(|_| err(line_no, format!("bad time '{}'", tokens[0])))?;
        if !(0.0..=1e7).contains(&t) {
            return Err(err(line_no, format!("time {t} out of range")));
        }
        let at = SimTime::from_micros((t * 1e6) as u64);
        let user = |k: usize| -> Result<usize, ScriptError> {
            tokens
                .get(k)
                .ok_or_else(|| err(line_no, "missing user index"))?
                .parse()
                .map_err(|_| err(line_no, format!("bad user index '{}'", tokens[k])))
        };
        let num = |k: usize| -> Result<f32, ScriptError> {
            tokens
                .get(k)
                .ok_or_else(|| err(line_no, "missing numeric argument"))?
                .parse()
                .map_err(|_| err(line_no, format!("bad number '{}'", tokens[k])))
        };
        let b = match tokens[1] {
            "join" => Behavior::Join { user: user(2)?, at },
            "chat" => Behavior::Chat { user: user(2)?, at },
            "wander" => Behavior::Wander { user: user(2)?, at },
            "walk" => Behavior::WalkTo { user: user(2)?, at, x: num(3)?, z: num(4)? },
            "turn" => Behavior::Turn { user: user(2)?, at, delta_deg: num(3)? },
            "heading" => Behavior::SetHeading { user: user(2)?, at, deg: num(3)? },
            "game" => Behavior::StartGame { at },
            "action" => Behavior::Action { user: user(2)?, at },
            "unmute" => Behavior::Unmute { user: user(2)?, at },
            other => return Err(err(line_no, format!("unknown command '{other}'"))),
        };
        out.push(b);
    }
    out.sort_by_key(|b| b.at());
    Ok(out)
}

/// The §6.1 controlled experiment as a script (users join at 50 s
/// intervals, U1 turns away at 250 s) — a ready-made example.
pub fn fig6_script() -> &'static str {
    "\
# §6.1 scalability experiment (Fig. 6, Exp. 1)
1    join 0
50   join 1
100  join 2
150  join 3
200  join 4
250  turn 0 180
"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_fig6_script() {
        let behaviors = parse_script(fig6_script()).unwrap();
        assert_eq!(behaviors.len(), 6);
        assert_eq!(behaviors[0], Behavior::Join { user: 0, at: SimTime::from_secs(1) });
        assert_eq!(
            behaviors[5],
            Behavior::Turn { user: 0, at: SimTime::from_secs(250), delta_deg: 180.0 }
        );
    }

    #[test]
    fn parses_every_command() {
        let script = "\
0.5 join 0
1   chat 0
2   wander 1
3   walk 1 -2.5 4.0
4   turn 0 22.5
5   heading 0 270
6   game
7   action 0
8   unmute 1
";
        let b = parse_script(script).unwrap();
        assert_eq!(b.len(), 9);
        assert_eq!(b[0], Behavior::Join { user: 0, at: SimTime::from_millis(500) });
        assert!(matches!(b[3], Behavior::WalkTo { user: 1, x, z, .. } if x == -2.5 && z == 4.0));
        assert!(matches!(b[6], Behavior::StartGame { .. }));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let b = parse_script("# nothing\n\n   \n1 join 0 # inline\n").unwrap();
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn sorts_by_time() {
        let b = parse_script("9 join 1\n1 join 0\n").unwrap();
        assert_eq!(b[0], Behavior::Join { user: 0, at: SimTime::from_secs(1) });
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_script("1 join 0\nbogus\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse_script("1 warp 0\n").unwrap_err();
        assert!(e.message.contains("unknown command"));
        let e = parse_script("x join 0\n").unwrap_err();
        assert!(e.message.contains("bad time"));
        let e = parse_script("1 walk 0 1.0\n").unwrap_err();
        assert!(e.message.contains("missing numeric"));
    }

    #[test]
    fn scripted_session_runs() {
        use crate::config::PlatformConfig;
        use crate::session::{run_session, SessionConfig};
        use svr_netsim::SimDuration;
        let mut cfg = SessionConfig::walk_and_chat(
            PlatformConfig::recroom(),
            2,
            SimDuration::from_secs(15),
            77,
        );
        cfg.behaviors = parse_script("1 join 0\n1 join 1\n2 chat 0\n2 chat 1\n").unwrap();
        let r = run_session(&cfg);
        assert!(r.users[0].avatar_updates_received > 50);
    }
}
