//! The client application state machine for all five platforms.
//!
//! A [`ClientApp`] drives one user's traffic: the HTTPS control channel
//! (initialization download, welcome-page menu interactions, the
//! periodic ~10 s report spikes of §4.1), the data channel (avatar
//! updates at the platform tick rate, status/telemetry, game state), and
//! the platform quirks — Worlds' TCP-priority gating of UDP sends and
//! its permanent UDP death after 30 s of silence (§8.1).

use crate::config::{DataTransport, PlatformConfig};
use crate::game::GameClient;
use crate::server::{stream_frame, DATA_SERVER_PORT};
use crate::stream::{StreamChannel, StreamEvent};
use svr_netsim::buf::Bytes;
use std::collections::VecDeque;
use svr_avatar::codec::{decode_update, encode_update, make_update};
use svr_avatar::motion::MotionState;
use svr_avatar::skeleton::Vec3;
use svr_netsim::packet::zero_payload;
use svr_netsim::{NodeId, Packet, SimDuration, SimRng, SimTime};
use svr_transport::http::{HttpClient, HttpEvent};
use svr_transport::rtp::{RtpReceiver, RtpSender};
use svr_transport::tcp::TcpConfig;
use svr_transport::udp::{MsgKind, UdpChannel};

/// Application lifecycle phase (§2.1's design pattern: welcome page →
/// social interaction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Connecting / system initialization.
    Connecting,
    /// On the welcome page (control-channel traffic only).
    WelcomePage,
    /// In a social event (data channel active).
    SocialEvent,
}

/// A packet to transmit, with its destination node.
pub type Outgoing = (NodeId, Packet);

/// Events the session driver consumes.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientEvent {
    /// Control channel became ready (welcome page reached).
    WelcomeReached,
    /// An avatar update from a peer arrived (used for E2E latency and
    /// peer tracking).
    AvatarReceived {
        /// Peer avatar id.
        from: u32,
        /// Peer tick counter.
        tick: u32,
    },
    /// A marked action left the device (sender processing done).
    ActionSent {
        /// Action identifier.
        action_id: u64,
        /// The avatar tick carrying it.
        tick: u32,
        /// When the user performed the action.
        performed_at: SimTime,
    },
    /// The data channel died permanently (Worlds after 30 s of silence).
    DataChannelDead,
}

enum DataChannel {
    NotOpen,
    Udp(UdpChannel),
    Stream(Box<StreamChannel>),
}

/// One user's client application.
pub struct ClientApp {
    /// User / avatar identifier.
    pub user_id: u32,
    /// Platform configuration (owned copy).
    pub cfg: PlatformConfig,
    /// This client's network node.
    pub node: NodeId,
    /// Data-server node.
    pub data_server: NodeId,
    /// Control-server node.
    pub control_server: NodeId,
    /// Motion synthesizer (public so experiments can script it).
    pub motion: MotionState,

    phase: Phase,
    data: DataChannel,
    control: HttpClient,
    data_port: u16,

    next_avatar: SimTime,
    next_status: SimTime,
    next_voice: SimTime,
    /// Whether the microphone is live (the paper's experiments join
    /// muted; unmute to study voice traffic).
    pub muted: bool,
    next_telemetry: SimTime,
    next_report: SimTime,
    /// A report/sync request is in flight; the next one waits for its
    /// response (request-response, not pipelined — which is why §8.1's
    /// UDP gaps track the TCP delay instead of merging into starvation).
    report_outstanding: bool,
    next_menu: SimTime,
    avatar_tick: u32,
    menus_remaining: u32,

    /// Worlds gating: UDP messages held while TCP has unacked data.
    gated: VecDeque<(MsgKind, Bytes)>,
    /// When continuous gating began (None when not gated).
    gated_since: Option<SimTime>,
    /// TCP bytes acked at the last progress check: any growth counts as
    /// progress and defers the give-up timer (heavily-throttled links
    /// deliver acks late but deliver them; only total TCP silence — the
    /// §8.1 100% loss stage — kills the session).
    last_acked_seen: u64,
    /// Running game, if any.
    pub game: Option<GameClient>,

    pending_action: Option<(u64, SimTime, SimTime)>, // (id, performed, send_at)
    next_action_id: u64,

    /// Peers seen recently: (peer id, last update time).
    peers: Vec<(u32, SimTime)>,
    /// Dead-reckoners per peer: motion prediction between updates, the
    /// §8.2 loss-tolerance mechanism.
    reckoners: Vec<(u32, svr_avatar::DeadReckoner)>,
    /// Hubs only: voice rides RTP/UDP while avatars ride the TLS stream
    /// (Table 2's "RTP/RTCP + HTTPS" data channel).
    rtp_voice: Option<(RtpSender, RtpReceiver)>,
    /// Voice frames received (any transport).
    pub voice_frames_received: u64,
    rng: SimRng,
    frozen_reported: bool,
    /// Total video bytes received (remote-rendering ablation).
    pub video_bytes: u64,
}

impl ClientApp {
    /// Create a client for `user_id` at `spawn`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        user_id: u32,
        cfg: PlatformConfig,
        node: NodeId,
        data_server: NodeId,
        control_server: NodeId,
        seed: u64,
        spawn: Vec3,
        heading: f32,
    ) -> Self {
        let data_port = 40_000 + user_id as u16;
        ClientApp {
            user_id,
            node,
            data_server,
            control_server,
            motion: MotionState::new(seed ^ 0xA5A5, spawn, heading),
            phase: Phase::Connecting,
            data: DataChannel::NotOpen,
            control: HttpClient::connect(TcpConfig::default(), 50_000 + user_id as u16, 443, SimTime::ZERO).0,
            cfg,
            data_port,
            next_avatar: SimTime::ZERO,
            next_status: SimTime::ZERO,
            next_voice: SimTime::ZERO,
            muted: true,
            next_telemetry: SimTime::ZERO,
            next_report: SimTime::ZERO,
            report_outstanding: false,
            next_menu: SimTime::ZERO,
            avatar_tick: 0,
            menus_remaining: 0,
            gated: VecDeque::new(),
            gated_since: None,
            last_acked_seen: 0,
            game: None,
            pending_action: None,
            next_action_id: 0,
            peers: Vec::new(),
            reckoners: Vec::new(),
            rtp_voice: None,
            voice_frames_received: 0,
            rng: SimRng::seed_from_u64(seed ^ 0xC11E),
            frozen_reported: false,
            video_bytes: 0,
        }
    }

    /// Launch the app: opens the control channel and requests the
    /// initialization download (§5.2). Returns packets to transmit.
    pub fn launch(&mut self, now: SimTime) -> Vec<Outgoing> {
        let (control, syn) =
            HttpClient::connect(TcpConfig::default(), 50_000 + self.user_id as u16, 443, now);
        self.control = control;
        let mut out: Vec<Outgoing> =
            syn.into_iter().map(|p| (self.control_server, p)).collect();
        if self.cfg.init_download_bytes > 0 {
            let pkts = self.control.request(now, "GET", "/init", &[]);
            out.extend(pkts.into_iter().map(|p| (self.control_server, p)));
        }
        self.phase = Phase::WelcomePage;
        self.menus_remaining = 16 + (self.rng.next_u64() % 6) as u32;
        self.next_menu = now + SimDuration::from_secs(3);
        if self.cfg.report_interval.is_some() {
            self.next_report = now + SimDuration::from_secs(5);
        }
        out
    }

    /// Join a social event: opens the data channel. The session must also
    /// register this user with the data server.
    pub fn enter_event(&mut self, now: SimTime) -> Vec<Outgoing> {
        self.phase = Phase::SocialEvent;
        let mut out = Vec::new();
        match self.cfg.data_transport {
            DataTransport::Udp => {
                let mut chan =
                    UdpChannel::new(self.user_id as u16, self.data_port, DATA_SERVER_PORT, now)
                        .with_keepalive(SimDuration::from_secs(2));
                if let Some(t) = self.cfg.udp_timeout {
                    chan = chan.with_timeout(t);
                }
                self.data = DataChannel::Udp(chan);
            }
            DataTransport::TlsStream => {
                let (chan, syn) =
                    StreamChannel::connect(TcpConfig::default(), self.data_port, DATA_SERVER_PORT, now);
                out.extend(syn.into_iter().map(|p| (self.data_server, p)));
                self.data = DataChannel::Stream(Box::new(chan));
                // Voice goes over RTP/UDP to the SFU (Table 2).
                let voice_port = crate::server::voice_port(self.user_id);
                self.rtp_voice = Some((
                    RtpSender::new(self.user_id, voice_port, crate::server::VOICE_SERVER_PORT),
                    RtpReceiver::new(self.user_id, voice_port, crate::server::VOICE_SERVER_PORT),
                ));
            }
        }
        // Hubs re-downloads the world on every join (§5.2's caching bug).
        if self.cfg.redownload_every_join && self.cfg.init_download_bytes > 0 {
            let pkts = self.control.request(now, "GET", "/world", &[]);
            out.extend(pkts.into_iter().map(|p| (self.control_server, p)));
        }
        self.next_avatar = now;
        self.next_status = now;
        self.next_telemetry = now;
        out
    }

    /// Current lifecycle phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Whether the data channel died permanently (frozen screen, §8.1).
    pub fn is_frozen(&self) -> bool {
        matches!(&self.data, DataChannel::Udp(c) if c.is_dead())
    }

    /// Peers that sent an update within the last 2 s — the client's
    /// rendering load.
    pub fn active_peers(&self, now: SimTime) -> usize {
        self.peers
            .iter()
            .filter(|(_, t)| now.saturating_since(*t) < SimDuration::from_secs(2))
            .count()
    }

    /// 95th-percentile dead-reckoning pop across all peers, metres —
    /// how visible network losses were to this user (§8.2).
    pub fn prediction_p95_m(&self) -> f32 {
        self.reckoners
            .iter()
            .map(|(_, r)| r.p95_error_m())
            .fold(0.0, f32::max)
    }

    /// Start the platform's game (no-op if the platform has none).
    pub fn start_game(&mut self, now: SimTime) {
        if let Some(traffic) = self.cfg.game {
            self.game = Some(GameClient::new(traffic, now, self.user_id as u64));
        }
    }

    /// Stop the game.
    pub fn stop_game(&mut self) {
        self.game = None;
    }

    /// Perform a user action (the §7 finger-touch): the action is
    /// encoded into an avatar update that leaves the device after the
    /// sender-side processing latency. Returns the action id.
    pub fn perform_action(&mut self, now: SimTime) -> u64 {
        let id = self.next_action_id;
        self.next_action_id += 1;
        let delay_ms =
            self.rng.gaussian_at_least(self.cfg.sender_proc_ms, self.cfg.sender_proc_ms * 0.2, 2.0);
        let send_at = now + SimDuration::from_millis_f64(delay_ms);
        self.pending_action = Some((id, now, send_at));
        id
    }

    /// The client's earliest deadline: the first instant at which
    /// [`ClientApp::on_tick`] could do anything. Conservative — it may
    /// be earlier than the next actual emission (a spurious wake is a
    /// no-op, since every firing branch re-checks its own clock), but
    /// never later, so a driver may skip ticks until this time without
    /// changing behaviour. `None` means no timer is armed at all.
    pub fn next_timer(&self, now: SimTime) -> Option<SimTime> {
        let mut due: Option<SimTime> = None;
        let mut add = |t: SimTime| due = Some(due.map_or(t, |d: SimTime| d.min(t)));
        if let Some(t) = self.control.next_timer() {
            add(t);
        }
        if self.phase == Phase::WelcomePage && self.menus_remaining > 0 {
            add(self.next_menu);
        }
        if self.cfg.report_interval.is_some()
            && self.phase != Phase::Connecting
            && !self.report_outstanding
        {
            add(self.next_report);
        }
        if self.phase == Phase::SocialEvent {
            // Worlds' gating re-checks TCP ack progress every tick while
            // active, and the channel-death event fires on the tick after
            // the kill: both need an immediate wake.
            if self.cfg.tcp_priority && self.gated_since.is_some() {
                add(now);
            }
            match &self.data {
                DataChannel::NotOpen => {}
                DataChannel::Udp(c) => {
                    if let Some(t) = c.next_timer() {
                        add(t);
                    }
                    if c.is_dead() && !self.frozen_reported {
                        add(now);
                    }
                }
                DataChannel::Stream(s) => {
                    if let Some(t) = s.next_timer() {
                        add(t);
                    }
                }
            }
            if !self.is_frozen() {
                if let Some((_, _, send_at)) = self.pending_action {
                    add(send_at);
                }
                add(self.next_avatar);
                if !self.muted && self.cfg.voice_frame_hz > 0.0 {
                    add(self.next_voice);
                }
                if self.cfg.status_rate_hz > 0.0 {
                    add(self.next_status);
                }
                if self.cfg.telemetry_rate_hz > 0.0 {
                    add(self.next_telemetry);
                }
                if let Some(g) = &self.game {
                    add(g.next_timer());
                }
            }
        }
        due
    }

    // --- internals ---

    fn avatar_body(&mut self, dt: f64) -> Vec<u8> {
        let (pose, vel) = self.motion.step(dt, &self.cfg.embodiment);
        // Delta selection: platforms ship only the joints that are
        // actually moving (root and head always go, to keep presence
        // alive). A walking avatar sends its full skeleton; a standing
        // one only the idle sway — the motion-driven traffic behind
        // Fig. 3's uplink/downlink matching.
        let mut joints = Vec::with_capacity(pose.joints.len());
        let mut vels = Vec::with_capacity(pose.joints.len());
        for (i, (j, jp)) in pose.joints.iter().enumerate() {
            let v = vel.get(i).copied().unwrap_or(svr_avatar::Vec3::ZERO);
            let always = matches!(j, svr_avatar::Joint::Root | svr_avatar::Joint::Head);
            if always || v.length() > 0.3 {
                joints.push((*j, *jp));
                vels.push(v);
            }
        }
        let pose = svr_avatar::Pose { joints, blendshapes: pose.blendshapes };
        let update = make_update(self.user_id, self.avatar_tick, &self.cfg.embodiment, pose, vels);
        self.avatar_tick += 1;
        let mut body = encode_update(&update).to_vec();
        body.resize(body.len() + self.cfg.avatar_envelope_bytes, 0);
        body
    }

    /// Send (or gate) a data-channel message.
    fn send_data(&mut self, now: SimTime, kind: MsgKind, body: Bytes, out: &mut Vec<Outgoing>) {
        // Worlds' TCP-priority rule: hold UDP while TCP has unacked data.
        if self.cfg.tcp_priority && self.control.has_unacked_data() {
            self.gated_since.get_or_insert(now);
            self.gated.push_back((kind, body));
            return;
        }
        self.gated_since = None;
        self.transmit_data(now, kind, &body, out);
    }

    fn transmit_data(&mut self, now: SimTime, kind: MsgKind, body: &[u8], out: &mut Vec<Outgoing>) {
        match &mut self.data {
            DataChannel::NotOpen => {}
            DataChannel::Udp(c) => {
                if let Some(p) = c.send(kind, now, body) {
                    out.push((self.data_server, p));
                }
            }
            DataChannel::Stream(s) => {
                for p in s.send(now, &stream_frame(kind, body)) {
                    out.push((self.data_server, p));
                }
            }
        }
    }

    fn flush_gated(&mut self, now: SimTime, out: &mut Vec<Outgoing>) {
        self.gated_since = None;
        if self.gated.is_empty() {
            return;
        }
        // Stale motion updates are superseded: keep only the most recent
        // avatar and game update, but every telemetry message.
        let mut latest_avatar: Option<Bytes> = None;
        let mut latest_game: Option<Bytes> = None;
        let mut others: Vec<(MsgKind, Bytes)> = Vec::new();
        for (kind, body) in self.gated.drain(..) {
            match kind {
                MsgKind::Avatar => latest_avatar = Some(body),
                MsgKind::Game => latest_game = Some(body),
                k => others.push((k, body)),
            }
        }
        for (k, b) in others {
            self.transmit_data(now, k, &b, out);
        }
        if let Some(b) = latest_avatar {
            self.transmit_data(now, MsgKind::Avatar, &b, out);
        }
        if let Some(b) = latest_game {
            self.transmit_data(now, MsgKind::Game, &b, out);
        }
    }

    fn handle_data_msg(&mut self, now: SimTime, kind: MsgKind, body: &[u8], events: &mut Vec<ClientEvent>) {
        match kind {
            MsgKind::Avatar => {
                if let Ok(update) = decode_update(body) {
                    match self.peers.iter_mut().find(|(id, _)| *id == update.avatar_id) {
                        Some(p) => p.1 = now,
                        None => self.peers.push((update.avatar_id, now)),
                    }
                    events.push(ClientEvent::AvatarReceived {
                        from: update.avatar_id,
                        tick: update.tick,
                    });
                    // Dead reckoning: measure how far the extrapolated
                    // pose had drifted, then re-anchor (§8.2).
                    let reckoner = match self
                        .reckoners
                        .iter_mut()
                        .find(|(id, _)| *id == update.avatar_id)
                    {
                        Some((_, r)) => r,
                        None => {
                            self.reckoners
                                .push((update.avatar_id, svr_avatar::DeadReckoner::new()));
                            &mut self.reckoners.last_mut().unwrap().1
                        }
                    };
                    reckoner.observe(now, update);
                }
            }
            MsgKind::Voice => {
                self.voice_frames_received += 1;
            }
            MsgKind::Other => {
                // Server housekeeping or remote-render video.
                self.video_bytes += body.len() as u64;
            }
            _ => {}
        }
    }

    /// Handle an incoming packet.
    pub fn on_packet(&mut self, now: SimTime, pkt: &Packet) -> (Vec<Outgoing>, Vec<ClientEvent>) {
        let mut out = Vec::new();
        let mut events = Vec::new();

        // Control channel (packets from the control server).
        if pkt.src == self.control_server {
            let (pkts, http_events) = self.control.on_packet(now, pkt);
            out.extend(pkts.into_iter().map(|p| (self.control_server, p)));
            for ev in http_events {
                match ev {
                    HttpEvent::Ready => events.push(ClientEvent::WelcomeReached),
                    HttpEvent::Response(x) => {
                        if x.path == "/sync" || x.path == "/report" {
                            self.report_outstanding = false;
                            if let Some(interval) = self.cfg.report_interval {
                                self.next_report = self.next_report.max(now + interval / 2);
                            }
                        }
                        if x.path == "/sync" {
                            if let Some(g) = &mut self.game {
                                g.apply_sync(now, now + SimDuration::from_secs(120));
                            }
                        }
                    }
                    HttpEvent::Dead => {}
                }
            }
            // TCP just made progress: maybe release gated UDP (§8.1).
            if self.cfg.tcp_priority && !self.control.has_unacked_data() {
                self.flush_gated(now, &mut out);
            }
            return (out, events);
        }

        // RTP voice (Hubs).
        if pkt.header.proto == svr_netsim::Proto::Udp {
            if let Some((_, rx)) = &mut self.rtp_voice {
                if rx.on_packet(now, pkt).is_some() {
                    self.voice_frames_received += 1;
                    return (out, events);
                }
            }
        }

        // Data channel.
        let mut msgs: Vec<(MsgKind, Bytes)> = Vec::new();
        match &mut self.data {
            DataChannel::NotOpen => {}
            DataChannel::Udp(c) => {
                if let Some(m) = c.on_packet(now, pkt) {
                    msgs.push((m.kind, m.body));
                }
            }
            DataChannel::Stream(s) => {
                let (pkts, stream_events) = s.on_packet(now, pkt);
                out.extend(pkts.into_iter().map(|p| (self.data_server, p)));
                for ev in stream_events {
                    if let StreamEvent::Message(m) = ev {
                        if let Some((kind, body)) = crate::server::parse_stream_frame(&m) {
                            msgs.push((kind, Bytes::copy_from_slice(body)));
                        }
                    }
                }
            }
        }
        for (kind, body) in msgs {
            self.handle_data_msg(now, kind, &body, &mut events);
        }
        (out, events)
    }

    /// Drive timers. Call every few milliseconds.
    pub fn on_tick(&mut self, now: SimTime) -> (Vec<Outgoing>, Vec<ClientEvent>) {
        let mut out = Vec::new();
        let mut events = Vec::new();

        // Control-channel timers (TCP retransmits, TLS).
        if self.control.next_timer().map(|t| t <= now).unwrap_or(false) {
            let (pkts, _) = self.control.on_tick(now);
            out.extend(pkts.into_iter().map(|p| (self.control_server, p)));
        }

        // Welcome-page menu interactions (§5.1's bursty control traffic).
        if self.phase == Phase::WelcomePage && self.menus_remaining > 0 && now >= self.next_menu {
            self.menus_remaining -= 1;
            self.next_menu = now + SimDuration::from_secs_f64(self.rng.range_f64(3.0, 8.0));
            let up = self.rng.range_u64(2_000, 8_000) as usize;
            let pkts = self.control.request(now, "POST", "/menu", &vec![0u8; up]);
            out.extend(pkts.into_iter().map(|p| (self.control_server, p)));
        }

        // Periodic client reports (the ~10 s HTTPS spikes of §4.1). A
        // report waits for the previous one's response.
        if let Some(interval) = self.cfg.report_interval {
            if now >= self.next_report && self.phase != Phase::Connecting && !self.report_outstanding {
                self.next_report = now + interval;
                self.report_outstanding = true;
                let path = if self.cfg.clock_sync && self.game.is_some() { "/sync" } else { "/report" };
                let pkts =
                    self.control.request(now, "POST", path, &vec![0u8; self.cfg.report_up_bytes]);
                out.extend(pkts.into_iter().map(|p| (self.control_server, p)));
            }
        }

        if self.phase == Phase::SocialEvent {
            self.data_channel_ticks(now, &mut out, &mut events);
        }

        (out, events)
    }

    fn data_channel_ticks(&mut self, now: SimTime, out: &mut Vec<Outgoing>, events: &mut Vec<ClientEvent>) {
        // The Worlds session layer gives up after its UDP has been gated
        // behind a TCP connection that made no progress for ~30 s (§8.1):
        // the UDP connection breaks and never recovers. Any ACK progress
        // (even seconds late under throttling) resets the timer.
        if self.cfg.tcp_priority {
            let acked = self.control.tcp().bytes_acked;
            if acked != self.last_acked_seen {
                self.last_acked_seen = acked;
                if let Some(since) = &mut self.gated_since {
                    *since = now;
                }
            }
            if let Some(since) = self.gated_since {
                if now.saturating_since(since) >= SimDuration::from_secs(30) {
                    if let DataChannel::Udp(c) = &mut self.data {
                        c.kill();
                    }
                    self.gated.clear();
                    self.gated_since = None;
                }
            }
        }
        // Channel maintenance: keep-alives & liveness.
        if let DataChannel::Udp(c) = &mut self.data {
            if let Some(p) = c.on_tick(now) {
                out.push((self.data_server, p));
            }
            if c.is_dead() && !self.frozen_reported {
                self.frozen_reported = true;
                events.push(ClientEvent::DataChannelDead);
            }
        }
        if let DataChannel::Stream(s) = &mut self.data {
            if s.next_timer().map(|t| t <= now).unwrap_or(false) {
                let (pkts, _) = s.on_tick(now);
                out.extend(pkts.into_iter().map(|p| (self.data_server, p)));
            }
        }
        if self.is_frozen() {
            return;
        }

        // Marked action: a dedicated update after sender processing.
        if let Some((id, performed, send_at)) = self.pending_action {
            if now >= send_at {
                self.pending_action = None;
                let tick = self.avatar_tick;
                let body = self.avatar_body(0.0);
                events.push(ClientEvent::ActionSent { action_id: id, tick, performed_at: performed });
                self.send_data(now, MsgKind::Avatar, Bytes::from(body), out);
            }
        }

        // Avatar updates at the platform tick rate.
        let avatar_interval = SimDuration::from_secs_f64(1.0 / self.cfg.avatar_tick_hz);
        if now >= self.next_avatar {
            self.next_avatar = now + avatar_interval;
            let body = self.avatar_body(avatar_interval.as_secs_f64());
            self.send_data(now, MsgKind::Avatar, Bytes::from(body), out);
        }

        // Voice frames (when unmuted).
        if !self.muted && self.cfg.voice_frame_hz > 0.0 && now >= self.next_voice {
            self.next_voice = now + SimDuration::from_secs_f64(1.0 / self.cfg.voice_frame_hz);
            let body = zero_payload(self.cfg.voice_frame_bytes);
            if let Some((tx, _)) = &mut self.rtp_voice {
                // Hubs: voice over RTP/UDP, avatar over HTTPS (§4.1).
                out.push((self.data_server, tx.media(&body)));
                if let Some(sr) = tx.on_tick(now) {
                    out.push((self.data_server, sr));
                }
            } else {
                self.send_data(now, MsgKind::Voice, body, out);
            }
        }

        // Status messages.
        if self.cfg.status_rate_hz > 0.0 && now >= self.next_status {
            self.next_status = now + SimDuration::from_secs_f64(1.0 / self.cfg.status_rate_hz);
            let body = zero_payload(self.cfg.status_bytes);
            self.send_data(now, MsgKind::Other, body, out);
        }

        // Telemetry (Worlds' server-kept uplink).
        if self.cfg.telemetry_rate_hz > 0.0 && now >= self.next_telemetry {
            self.next_telemetry =
                now + SimDuration::from_secs_f64(1.0 / self.cfg.telemetry_rate_hz);
            let body = zero_payload(self.cfg.telemetry_bytes);
            self.send_data(now, MsgKind::Other, body, out);
        }

        // Game updates.
        let game_body = self.game.as_mut().and_then(|g| g.on_tick(now));
        if let Some(body) = game_body {
            self.send_data(now, MsgKind::Game, Bytes::from(body), out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PlatformId;

    fn nodes() -> (NodeId, NodeId, NodeId) {
        let mut net = svr_netsim::Network::new(0);
        let a = net.add_node("u", svr_netsim::NodeKind::Headset);
        let b = net.add_node("data", svr_netsim::NodeKind::Server);
        let c = net.add_node("ctl", svr_netsim::NodeKind::Server);
        (a, b, c)
    }

    fn app(cfg: PlatformConfig) -> ClientApp {
        let (n, d, c) = nodes();
        ClientApp::new(1, cfg, n, d, c, 42, Vec3::ZERO, 0.0)
    }

    #[test]
    fn launch_opens_control_and_requests_init() {
        let mut a = app(PlatformConfig::vrchat());
        let out = a.launch(SimTime::ZERO);
        assert!(!out.is_empty(), "SYN leaves at launch");
        assert!(out.iter().all(|(dst, _)| *dst == a.control_server));
        assert_eq!(a.phase(), Phase::WelcomePage);
    }

    #[test]
    fn avatar_updates_tick_at_platform_rate() {
        let mut a = app(PlatformConfig::vrchat());
        a.launch(SimTime::ZERO);
        a.enter_event(SimTime::ZERO);
        // Keep walking so the delta encoder ships the full skeleton.
        a.motion.walk_to(Vec3::new(50.0, 0.0, 50.0));
        let mut avatar_packets = 0;
        for ms in (0..1000u64).step_by(2) {
            let (out, _) = a.on_tick(SimTime::from_millis(ms));
            avatar_packets += out
                .iter()
                .filter(|(dst, p)| *dst == a.data_server && p.payload.len() > 100)
                .count();
        }
        // VRChat: 14 Hz avatar updates (status msgs are smaller).
        assert!((13..=15).contains(&avatar_packets), "{avatar_packets} updates");
    }

    #[test]
    fn worlds_gates_udp_while_tcp_unacked() {
        let mut a = app(PlatformConfig::worlds());
        a.launch(SimTime::ZERO);
        a.enter_event(SimTime::ZERO);
        // The launch left TCP data in flight (SYN/TLS/init) that never
        // gets acked in this isolated test → every UDP send is gated.
        assert!(a.control.has_unacked_data() || {
            // Force a report to put data in flight.
            a.on_tick(SimTime::from_secs(6));
            a.control.has_unacked_data()
        });
        let mut udp_sent = 0;
        for ms in (0..500u64).step_by(2) {
            let (out, _) = a.on_tick(SimTime::from_millis(ms));
            udp_sent += out
                .iter()
                .filter(|(_, p)| p.header.proto == svr_netsim::Proto::Udp)
                .count();
        }
        assert_eq!(udp_sent, 0, "UDP blocked while TCP unacked (§8.1)");
        assert!(!a.gated.is_empty());
    }

    #[test]
    fn vrchat_does_not_gate_udp() {
        let mut a = app(PlatformConfig::vrchat());
        a.launch(SimTime::ZERO);
        a.enter_event(SimTime::ZERO);
        let mut udp_sent = 0;
        for ms in (0..500u64).step_by(2) {
            let (out, _) = a.on_tick(SimTime::from_millis(ms));
            udp_sent += out
                .iter()
                .filter(|(_, p)| p.header.proto == svr_netsim::Proto::Udp)
                .count();
        }
        assert!(udp_sent > 5, "non-Worlds platforms send UDP regardless of TCP");
    }

    #[test]
    fn gated_messages_flush_keeping_only_latest_avatar() {
        let mut a = app(PlatformConfig::worlds());
        a.launch(SimTime::ZERO);
        a.enter_event(SimTime::ZERO);
        for ms in (0..500u64).step_by(2) {
            a.on_tick(SimTime::from_millis(ms));
        }
        let gated_before = a.gated.len();
        assert!(gated_before > 10);
        let mut out = Vec::new();
        a.flush_gated(SimTime::from_secs(1), &mut out);
        // Telemetry all flushed; avatar collapsed to one.
        let avatars = out.iter().filter(|(_, p)| p.payload.len() > 500 && p.payload.len() < 700).count();
        assert!(avatars <= 2, "stale avatar updates dropped: {avatars}");
        assert!(a.gated.is_empty());
    }

    #[test]
    fn marked_action_sends_after_sender_processing() {
        let mut a = app(PlatformConfig::recroom());
        a.launch(SimTime::ZERO);
        a.enter_event(SimTime::ZERO);
        let t0 = SimTime::from_secs(1);
        let id = a.perform_action(t0);
        let mut sent_at = None;
        for ms in 1000..1300u64 {
            let (_, events) = a.on_tick(SimTime::from_millis(ms));
            for e in events {
                if let ClientEvent::ActionSent { action_id, performed_at, .. } = e {
                    assert_eq!(action_id, id);
                    assert_eq!(performed_at, t0);
                    sent_at = Some(SimTime::from_millis(ms));
                }
            }
        }
        let sent = sent_at.expect("action sent");
        let delay = sent.saturating_since(t0).as_millis_f64();
        // Rec Room sender processing ≈ 25.9 ms.
        assert!((10.0..60.0).contains(&delay), "sender delay {delay} ms");
    }

    #[test]
    fn peer_tracking_from_received_updates() {
        let cfg = PlatformConfig::vrchat();
        let mut a = app(cfg.clone());
        a.launch(SimTime::ZERO);
        a.enter_event(SimTime::ZERO);
        // Build a fake forwarded avatar update from peer 9 via the
        // server's UDP channel.
        let mut server_chan = UdpChannel::new(1, DATA_SERVER_PORT, a.data_port, SimTime::ZERO);
        let mut m = MotionState::new(9, Vec3::new(1.0, 0.0, 1.0), 0.0);
        let (pose, vel) = m.step(0.05, &cfg.embodiment);
        let body = encode_update(&make_update(9, 3, &cfg.embodiment, pose, vel));
        let mut pkt = server_chan.send(MsgKind::Avatar, SimTime::from_secs(1), &body).unwrap();
        pkt.src = a.data_server;
        pkt.dst = a.node;
        let (_, events) = a.on_packet(SimTime::from_secs(1), &pkt);
        assert!(events.contains(&ClientEvent::AvatarReceived { from: 9, tick: 3 }));
        assert_eq!(a.active_peers(SimTime::from_secs(1)), 1);
        assert_eq!(a.active_peers(SimTime::from_secs(10)), 0, "peers age out");
    }

    #[test]
    fn hubs_uses_stream_transport() {
        let mut a = app(PlatformConfig::hubs());
        a.launch(SimTime::ZERO);
        let out = a.enter_event(SimTime::ZERO);
        // The stream SYN goes to the data server over TCP.
        assert!(out
            .iter()
            .any(|(dst, p)| *dst == a.data_server && p.header.proto == svr_netsim::Proto::Tcp));
        assert!(matches!(a.data, DataChannel::Stream(_)));
    }

    #[test]
    fn worlds_udp_dies_after_30s_silence() {
        let mut a = app(PlatformConfig::worlds());
        a.launch(SimTime::ZERO);
        a.enter_event(SimTime::ZERO);
        let mut dead_event = false;
        for s in 0..40u64 {
            let (_, events) = a.on_tick(SimTime::from_secs(s));
            if events.contains(&ClientEvent::DataChannelDead) {
                dead_event = true;
                assert!(s >= 30, "died too early at {s}s");
            }
        }
        assert!(dead_event);
        assert!(a.is_frozen());
        // No recovery: still frozen later.
        a.on_tick(SimTime::from_secs(100));
        assert!(a.is_frozen());
    }

    #[test]
    fn platform_ids_consistent() {
        for id in PlatformId::ALL {
            let a = app(PlatformConfig::of(id));
            assert_eq!(a.cfg.id, id);
        }
    }
}
