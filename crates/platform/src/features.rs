//! Table 1: the feature matrix of the five platforms.


use crate::config::PlatformId;

/// Locomotion modes a platform offers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Locomotion {
    /// Continuous walking.
    Walk,
    /// Jumping.
    Jump,
    /// Flying.
    Fly,
    /// Instantaneous transport without moving step by step.
    Teleport,
}

/// One platform's row of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureMatrix {
    /// Which platform.
    pub platform: PlatformId,
    /// Operating company.
    pub company: &'static str,
    /// First-release year.
    pub released: u16,
    /// Locomotion options.
    pub locomotion: Vec<Locomotion>,
    /// Avatar facial expressions.
    pub facial_expression: bool,
    /// Personal space / boundary protection.
    pub personal_space: bool,
    /// In-world games.
    pub games: bool,
    /// Screen sharing.
    pub share_screen: bool,
    /// In-world shopping.
    pub shopping: bool,
    /// NFT support.
    pub nft: bool,
}

impl FeatureMatrix {
    /// The feature row for a platform (Table 1 verbatim).
    pub fn of(platform: PlatformId) -> FeatureMatrix {
        use Locomotion::*;
        match platform {
            PlatformId::AltspaceVr => FeatureMatrix {
                platform,
                company: "Microsoft",
                released: 2015,
                locomotion: vec![Walk, Teleport],
                facial_expression: false,
                personal_space: true,
                games: true,
                share_screen: true,
                shopping: false,
                nft: false,
            },
            PlatformId::RecRoom => FeatureMatrix {
                platform,
                company: "Rec Room",
                released: 2016,
                locomotion: vec![Walk, Jump, Teleport],
                facial_expression: true,
                personal_space: true,
                games: true,
                share_screen: false,
                shopping: true,
                nft: true,
            },
            PlatformId::VrChat => FeatureMatrix {
                platform,
                company: "VRChat",
                released: 2017,
                locomotion: vec![Walk, Jump, Teleport],
                facial_expression: true,
                personal_space: true,
                games: true,
                share_screen: false,
                shopping: false,
                nft: false,
            },
            PlatformId::Hubs => FeatureMatrix {
                platform,
                company: "Mozilla",
                released: 2018,
                locomotion: vec![Walk, Fly, Teleport],
                facial_expression: false,
                personal_space: false,
                games: false,
                share_screen: true,
                shopping: false,
                nft: false,
            },
            PlatformId::Worlds => FeatureMatrix {
                platform,
                company: "Meta",
                released: 2021,
                locomotion: vec![Walk, Teleport],
                facial_expression: true,
                personal_space: true,
                games: true,
                share_screen: false,
                shopping: false,
                nft: false,
            },
        }
    }

    /// All five rows in Table 1's order (by release year).
    pub fn all() -> Vec<FeatureMatrix> {
        let mut rows: Vec<FeatureMatrix> =
            PlatformId::ALL.iter().map(|p| FeatureMatrix::of(*p)).collect();
        rows.sort_by_key(|r| r.released);
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_key_facts() {
        // Hubs is the only platform without games and without a personal
        // space boundary (§8.2, §9).
        let no_games: Vec<PlatformId> = FeatureMatrix::all()
            .into_iter()
            .filter(|f| !f.games)
            .map(|f| f.platform)
            .collect();
        assert_eq!(no_games, vec![PlatformId::Hubs]);
        let no_space: Vec<PlatformId> = FeatureMatrix::all()
            .into_iter()
            .filter(|f| !f.personal_space)
            .map(|f| f.platform)
            .collect();
        assert_eq!(no_space, vec![PlatformId::Hubs]);
        // Rec Room is the only NFT/shopping platform.
        let nft: Vec<PlatformId> =
            FeatureMatrix::all().into_iter().filter(|f| f.nft).map(|f| f.platform).collect();
        assert_eq!(nft, vec![PlatformId::RecRoom]);
    }

    #[test]
    fn rows_sorted_by_release_year() {
        let rows = FeatureMatrix::all();
        assert_eq!(rows.first().unwrap().platform, PlatformId::AltspaceVr);
        assert_eq!(rows.last().unwrap().platform, PlatformId::Worlds);
        for w in rows.windows(2) {
            assert!(w[0].released <= w[1].released);
        }
    }

    #[test]
    fn facial_expression_platforms() {
        // Rec Room, VRChat, Worlds have facial expressions; AltspaceVR and
        // Hubs do not (Table 1 — mirrored by the embodiment profiles).
        for f in FeatureMatrix::all() {
            let expected = !matches!(f.platform, PlatformId::AltspaceVr | PlatformId::Hubs);
            assert_eq!(f.facial_expression, expected, "{:?}", f.platform);
        }
    }

    #[test]
    fn every_platform_can_walk_and_teleport() {
        for f in FeatureMatrix::all() {
            assert!(f.locomotion.contains(&Locomotion::Walk));
            assert!(f.locomotion.contains(&Locomotion::Teleport));
        }
        // Only Hubs can fly.
        assert!(FeatureMatrix::of(PlatformId::Hubs).locomotion.contains(&Locomotion::Fly));
    }
}
