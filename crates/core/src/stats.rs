//! Multi-trial statistics.
//!
//! §3.2: "Unless otherwise mentioned, we report the averaged measurement
//! results from more than 20 experiments", with standard deviations in
//! the tables and 95 % confidence-interval bands in the figures.


/// Summary statistics over independent trials.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator).
    pub std: f64,
    /// Half-width of the 95 % confidence interval of the mean.
    pub ci95: f64,
    /// Number of samples.
    pub n: usize,
}

impl Summary {
    /// Summarise a sample set. Empty input yields all-zero summary.
    pub fn of(samples: &[f64]) -> Summary {
        let n = samples.len();
        if n == 0 {
            return Summary { mean: 0.0, std: 0.0, ci95: 0.0, n: 0 };
        }
        let mean = samples.iter().sum::<f64>() / n as f64;
        if n == 1 {
            return Summary { mean, std: 0.0, ci95: 0.0, n };
        }
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        let std = var.sqrt();
        // Normal-approximation CI; the paper's n ≥ 20 makes this sound.
        let ci95 = 1.96 * std / (n as f64).sqrt();
        Summary { mean, std, ci95, n }
    }

    /// Lower edge of the 95 % CI band.
    pub fn lo(&self) -> f64 {
        self.mean - self.ci95
    }

    /// Upper edge of the 95 % CI band.
    pub fn hi(&self) -> f64 {
        self.mean + self.ci95
    }

    /// Format as the paper's "mean/std" cell (e.g. "41.3/2.1").
    pub fn cell(&self) -> String {
        format!("{:.1}/{:.1}", self.mean, self.std)
    }
}

/// Relative error of `measured` against a `reference` value.
pub fn relative_error(measured: f64, reference: f64) -> f64 {
    if reference == 0.0 {
        return if measured == 0.0 { 0.0 } else { f64::INFINITY };
    }
    (measured - reference).abs() / reference.abs()
}

/// Pearson correlation coefficient between two equal-length series
/// (used by the Fig. 3 uplink/downlink matching analysis).
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "series lengths differ");
    let n = a.len();
    if n < 2 {
        return 0.0;
    }
    let ma = a.iter().sum::<f64>() / n as f64;
    let mb = b.iter().sum::<f64>() / n as f64;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for i in 0..n {
        let da = a[i] - ma;
        let db = b[i] - mb;
        cov += da * db;
        va += da * da;
        vb += db * db;
    }
    if va == 0.0 || vb == 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

/// Least-squares slope of `y` against `x` (used to test the "almost
/// linear" throughput growth claims of §6).
pub fn linear_fit(x: &[f64], y: &[f64]) -> (f64, f64, f64) {
    assert_eq!(x.len(), y.len());
    let n = x.len() as f64;
    assert!(n >= 2.0, "need at least two points");
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    for i in 0..x.len() {
        sxy += (x[i] - mx) * (y[i] - my);
        sxx += (x[i] - mx) * (x[i] - mx);
    }
    let slope = if sxx == 0.0 { 0.0 } else { sxy / sxx };
    let intercept = my - slope * mx;
    // R².
    let mut ss_res = 0.0;
    let mut ss_tot = 0.0;
    for i in 0..x.len() {
        let pred = intercept + slope * x[i];
        ss_res += (y[i] - pred).powi(2);
        ss_tot += (y[i] - my).powi(2);
    }
    let r2 = if ss_tot == 0.0 { 1.0 } else { 1.0 - ss_res / ss_tot };
    (slope, intercept, r2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[2.0, 4.0, 6.0]);
        assert_eq!(s.mean, 4.0);
        assert!((s.std - 2.0).abs() < 1e-12);
        assert_eq!(s.n, 3);
        assert!(s.lo() < 4.0 && s.hi() > 4.0);
        assert_eq!(s.cell(), "4.0/2.0");
    }

    #[test]
    fn summary_edge_cases() {
        assert_eq!(Summary::of(&[]).n, 0);
        let one = Summary::of(&[7.5]);
        assert_eq!(one.mean, 7.5);
        assert_eq!(one.std, 0.0);
        assert_eq!(one.ci95, 0.0);
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let few: Vec<f64> = (0..5).map(|i| (i % 2) as f64).collect();
        let many: Vec<f64> = (0..500).map(|i| (i % 2) as f64).collect();
        assert!(Summary::of(&many).ci95 < Summary::of(&few).ci95);
    }

    #[test]
    fn pearson_known_values() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let up = [2.0, 4.0, 6.0, 8.0];
        let down = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &up) - 1.0).abs() < 1e-12);
        assert!((pearson(&x, &down) + 1.0).abs() < 1e-12);
        let flat = [5.0, 5.0, 5.0, 5.0];
        assert_eq!(pearson(&x, &flat), 0.0);
    }

    #[test]
    fn linear_fit_recovers_line() {
        let x: Vec<f64> = (1..=15).map(|v| v as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v + 1.0).collect();
        let (slope, intercept, r2) = linear_fit(&x, &y);
        assert!((slope - 3.0).abs() < 1e-9);
        assert!((intercept - 1.0).abs() < 1e-9);
        assert!((r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn relative_error_handles_zero() {
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert_eq!(relative_error(1.0, 0.0), f64::INFINITY);
        assert!((relative_error(11.0, 10.0) - 0.1).abs() < 1e-12);
    }

    /// Deterministic seeded-loop fallbacks for the proptest versions below:
    /// always compiled, so the properties stay covered offline.
    #[test]
    fn prop_mean_within_min_max_seeded() {
        let mut rng = svr_netsim::SimRng::seed_from_u64(0x57A7_0001);
        for _case in 0..128 {
            let n = rng.range_u64(1, 99) as usize;
            let samples: Vec<f64> = (0..n).map(|_| rng.range_f64(-1e6, 1e6)).collect();
            let s = Summary::of(&samples);
            let min = samples.iter().cloned().fold(f64::MAX, f64::min);
            let max = samples.iter().cloned().fold(f64::MIN, f64::max);
            assert!(s.mean >= min - 1e-6 && s.mean <= max + 1e-6);
            assert!(s.std >= 0.0);
        }
    }

    #[test]
    fn prop_pearson_bounded_seeded() {
        let mut rng = svr_netsim::SimRng::seed_from_u64(0x57A7_0002);
        for _case in 0..128 {
            let n = rng.range_u64(2, 49) as usize;
            let a: Vec<f64> = (0..n).map(|_| rng.range_f64(-1e3, 1e3)).collect();
            let b: Vec<f64> = (0..n).map(|_| rng.range_f64(-1e3, 1e3)).collect();
            let r = pearson(&a, &b);
            assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        }
    }

    #[cfg(feature = "proptests")]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prop_mean_within_min_max(samples in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
                let s = Summary::of(&samples);
                let min = samples.iter().cloned().fold(f64::MAX, f64::min);
                let max = samples.iter().cloned().fold(f64::MIN, f64::max);
                prop_assert!(s.mean >= min - 1e-6 && s.mean <= max + 1e-6);
                prop_assert!(s.std >= 0.0);
            }

            #[test]
            fn prop_pearson_bounded(
                pairs in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 2..50)
            ) {
                let a: Vec<f64> = pairs.iter().map(|p| p.0).collect();
                let b: Vec<f64> = pairs.iter().map(|p| p.1).collect();
                let r = pearson(&a, &b);
                prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
            }
        }
    }
}
