//! End-to-end latency aggregation and the Table 4 breakdown.
//!
//! §7 decomposes E2E latency into sender processing, network transit,
//! server processing, and receiver processing, by correlating the
//! recorded screens with packet timestamps from the AP traces. Here the
//! session gives us the same three instrumentation points (sent,
//! arrived, displayed); the network share is estimated from the known
//! path RTTs exactly as the paper subtracted ping-measured RTTs.

use crate::stats::Summary;
use svr_geo::Site;
use svr_platform::session::ActionLatency;
use svr_platform::PlatformConfig;

/// Aggregated latency breakdown over many measured actions, all in ms.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyBreakdown {
    /// End-to-end.
    pub e2e: Summary,
    /// Sender-side processing.
    pub sender: Summary,
    /// Receiver-side processing.
    pub receiver: Summary,
    /// Server processing (transit minus estimated network path time).
    pub server: Summary,
    /// Estimated one-way network share used for the server split, ms.
    pub network_est_ms: f64,
}

/// Estimated network time between the two headsets via the data server:
/// WiFi hops on both sides plus AP↔server RTT (up half + down half).
pub fn network_path_estimate_ms(cfg: &PlatformConfig, vantage: Site) -> f64 {
    let server_rtt = cfg.data_pool.rtt_from(vantage).as_millis_f64();
    // Two WiFi air hops (~2 ms each) and two campus hops (~0.3 ms each).
    server_rtt + 2.0 * 2.0 + 2.0 * 0.3
}

/// Break down a set of measured actions.
///
/// Actions whose transit time is wildly above the median are excluded:
/// these are TCP-retransmitted deliveries (a lost segment waits a full
/// RTO), which the paper's screen-recording method never counts — a
/// finger movement superseded by later frames is simply re-measured.
pub fn breakdown(actions: &[ActionLatency], cfg: &PlatformConfig, vantage: Site) -> LatencyBreakdown {
    let net = network_path_estimate_ms(cfg, vantage);
    let mut transits: Vec<f64> = actions.iter().map(|a| a.transit().as_millis_f64()).collect();
    transits.sort_by(|a, b| a.total_cmp(b));
    let median = transits.get(transits.len() / 2).copied().unwrap_or(0.0);
    let keep: Vec<&ActionLatency> = actions
        .iter()
        .filter(|a| transits.is_empty() || a.transit().as_millis_f64() <= median * 2.0 + 5.0)
        .collect();
    let e2e: Vec<f64> = keep.iter().map(|a| a.e2e().as_millis_f64()).collect();
    let sender: Vec<f64> = keep.iter().map(|a| a.sender().as_millis_f64()).collect();
    let receiver: Vec<f64> = keep.iter().map(|a| a.receiver().as_millis_f64()).collect();
    let server: Vec<f64> = keep
        .iter()
        .map(|a| (a.transit().as_millis_f64() - net).max(0.0))
        .collect();
    LatencyBreakdown {
        e2e: Summary::of(&e2e),
        sender: Summary::of(&sender),
        receiver: Summary::of(&receiver),
        server: Summary::of(&server),
        network_est_ms: net,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svr_netsim::SimTime;

    fn action(performed: u64, sent: u64, arrived: u64, displayed: u64) -> ActionLatency {
        ActionLatency {
            action_id: 0,
            from: 0,
            to: 1,
            performed_at: SimTime::from_millis(performed),
            sent_at: SimTime::from_millis(sent),
            arrived_at: SimTime::from_millis(arrived),
            displayed_at: SimTime::from_millis(displayed),
        }
    }

    #[test]
    fn breakdown_parts_sum_to_e2e() {
        let a = action(0, 26, 66, 105);
        assert_eq!(a.sender().as_millis(), 26);
        assert_eq!(a.transit().as_millis(), 40);
        assert_eq!(a.receiver().as_millis(), 39);
        assert_eq!(a.e2e().as_millis(), 105);
        assert_eq!(
            a.sender().as_millis() + a.transit().as_millis() + a.receiver().as_millis(),
            a.e2e().as_millis()
        );
    }

    #[test]
    fn network_estimate_tracks_server_distance() {
        let near = network_path_estimate_ms(&PlatformConfig::worlds(), Site::FairfaxVa);
        let far = network_path_estimate_ms(&PlatformConfig::hubs(), Site::FairfaxVa);
        assert!(near < 12.0, "Worlds path {near} ms");
        assert!(far > 70.0, "Hubs path {far} ms");
    }

    #[test]
    fn aggregate_breakdown_statistics() {
        let cfg = PlatformConfig::recroom();
        let actions: Vec<ActionLatency> =
            (0..20).map(|k| action(k * 1000, k * 1000 + 25, k * 1000 + 60, k * 1000 + 100)).collect();
        let b = breakdown(&actions, &cfg, Site::FairfaxVa);
        assert_eq!(b.e2e.n, 20);
        assert!((b.e2e.mean - 100.0).abs() < 1e-9);
        assert!((b.sender.mean - 25.0).abs() < 1e-9);
        assert!((b.receiver.mean - 40.0).abs() < 1e-9);
        // Server = transit (35) − network estimate, floored at 0.
        assert!(b.server.mean >= 0.0 && b.server.mean <= 35.0);
    }

    #[test]
    fn empty_actions_summarise_to_zero() {
        let b = breakdown(&[], &PlatformConfig::vrchat(), Site::FairfaxVa);
        assert_eq!(b.e2e.n, 0);
        assert_eq!(b.e2e.mean, 0.0);
    }
}
