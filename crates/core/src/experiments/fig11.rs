//! Figure 11: end-to-end latency vs number of users.
//!
//! The §7 action measurement repeated with 2–7 concurrent users. The
//! expected shape: latency grows for every platform, and the per-user
//! increment itself grows (Hubs: +7, +9, +11, +13, +16 ms in the paper)
//! — server queueing plus receiver-side rendering load.

use crate::experiments::trial_seed;
use crate::report::TextTable;
use crate::stats::Summary;
use svr_netsim::{SimDuration, SimTime};
use svr_platform::session::run_session;
use svr_platform::{Behavior, PlatformConfig, PlatformId, SessionConfig};

/// Latency at one user count for one platform.
#[derive(Debug, Clone)]
pub struct Fig11Point {
    /// User count.
    pub users: usize,
    /// E2E latency (ms) from U1's actions observed at U2.
    pub e2e_ms: Summary,
}

/// The sweep for one platform.
#[derive(Debug, Clone)]
pub struct Fig11Series {
    /// Platform.
    pub platform: PlatformId,
    /// One point per user count.
    pub points: Vec<Fig11Point>,
}

/// The full figure.
#[derive(Debug, Clone)]
pub struct Fig11Report {
    /// One series per platform.
    pub series: Vec<Fig11Series>,
}

/// Parameters.
#[derive(Debug, Clone)]
pub struct Fig11Config {
    /// User counts (paper: 2–7).
    pub user_counts: Vec<usize>,
    /// Actions per run.
    pub actions: usize,
    /// Trials per point.
    pub trials: usize,
    /// Seed.
    pub seed: u64,
}

impl Fig11Config {
    /// Paper fidelity.
    pub fn full() -> Self {
        Fig11Config { user_counts: (2..=7).collect(), actions: 15, trials: 3, seed: 0xF1611 }
    }

    /// CI-sized.
    pub fn quick() -> Self {
        Fig11Config { user_counts: vec![2, 4, 6], actions: 6, trials: 1, seed: 0xF1611 }
    }
}

/// Run one platform's sweep.
pub fn run(platform: PlatformId, cfg: &Fig11Config) -> Fig11Series {
    let pcfg = PlatformConfig::of(platform);
    let mut points = Vec::new();
    for &n in &cfg.user_counts {
        let mut samples = Vec::new();
        for k in 0..cfg.trials {
            let seed = trial_seed(cfg.seed ^ ((n as u64) << 8) ^ ((platform as u64) << 16), k);
            let duration_s = 12 + cfg.actions as u64 * 2;
            let mut scfg = SessionConfig::walk_and_chat(
                pcfg.clone(),
                n,
                SimDuration::from_secs(duration_s),
                seed,
            );
            for a in 0..cfg.actions {
                scfg.behaviors.push(Behavior::Action {
                    user: 0,
                    at: SimTime::from_secs(10 + a as u64 * 2),
                });
            }
            let r = run_session(&scfg);
            samples.extend(
                r.actions
                    .iter()
                    .filter(|a| a.to == 1)
                    .map(|a| a.e2e().as_millis_f64()),
            );
        }
        points.push(Fig11Point { users: n, e2e_ms: Summary::of(&samples) });
    }
    Fig11Series { platform, points }
}

/// Run all five platforms.
pub fn run_all(cfg: &Fig11Config) -> Fig11Report {
    Fig11Report { series: PlatformId::ALL.into_iter().map(|p| run(p, cfg)).collect() }
}

impl Fig11Series {
    /// The per-step latency deltas between consecutive user counts.
    pub fn deltas(&self) -> Vec<f64> {
        self.points.windows(2).map(|w| w[1].e2e_ms.mean - w[0].e2e_ms.mean).collect()
    }
}

impl std::fmt::Display for Fig11Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Fig. 11: E2E latency vs users")?;
        let counts: Vec<String> = self
            .series
            .first()
            .map(|s| s.points.iter().map(|p| format!("{} users", p.users)).collect())
            .unwrap_or_default();
        let mut header = vec!["Platform".to_string()];
        header.extend(counts);
        let mut t = TextTable::new(header);
        for s in &self.series {
            let mut row = vec![s.platform.to_string()];
            row.extend(s.points.iter().map(|p| format!("{:.1}±{:.1}", p.e2e_ms.mean, p.e2e_ms.ci95)));
            t.row(row);
        }
        write!(f, "{}", t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_grows_with_users() {
        let cfg = Fig11Config::quick();
        for platform in [PlatformId::Hubs, PlatformId::RecRoom] {
            let s = run(platform, &cfg);
            let first = s.points.first().unwrap().e2e_ms.mean;
            let last = s.points.last().unwrap().e2e_ms.mean;
            assert!(
                last > first + 5.0,
                "{platform}: {first:.1} → {last:.1} ms should grow"
            );
        }
    }

    #[test]
    fn deltas_increase() {
        // The paper's growing per-user increments (server queue +
        // receiver load).
        let cfg = Fig11Config {
            user_counts: vec![2, 4, 6],
            actions: 10,
            trials: 2,
            seed: 0xF1611,
        };
        let s = run(PlatformId::Hubs, &cfg);
        let d = s.deltas();
        assert_eq!(d.len(), 2);
        assert!(
            d[1] > d[0] * 0.9,
            "deltas should grow (or at least not shrink): {d:?}"
        );
    }

    #[test]
    fn hubs_remains_the_slowest() {
        let cfg = Fig11Config::quick();
        let hubs = run(PlatformId::Hubs, &cfg);
        let rec = run(PlatformId::RecRoom, &cfg);
        for (h, r) in hubs.points.iter().zip(rec.points.iter()) {
            assert!(h.e2e_ms.mean > r.e2e_ms.mean, "at {} users", h.users);
        }
    }
}
