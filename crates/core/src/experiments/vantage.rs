//! §4.2's extra vantage points: western U.S. and Europe.
//!
//! The paper repeats its infrastructure survey from Los Angeles and the
//! United Kingdom and finds: AltspaceVR's and Hubs' data servers stay on
//! the U.S. west coast (~140-150 ms from Europe), while anycast platforms
//! and Worlds always provide a nearby server (<5 ms) — except that Worlds
//! is not available in Europe at all.

use crate::report::TextTable;
use svr_geo::Site;
use svr_platform::{ChannelKind, PlatformConfig, PlatformId};

/// RTT of one platform/channel from each vantage, ms.
#[derive(Debug, Clone)]
pub struct VantageRow {
    /// Platform.
    pub platform: PlatformId,
    /// Channel.
    pub channel: ChannelKind,
    /// `(vantage, rtt_ms)` per measured site; Worlds is absent from
    /// Europe ([`None`]), matching its U.S./Canada-only availability.
    pub rtts: Vec<(Site, Option<f64>)>,
}

/// The multi-vantage survey.
#[derive(Debug, Clone)]
pub struct VantageReport {
    /// Vantage points measured from.
    pub vantages: Vec<Site>,
    /// One row per platform/channel.
    pub rows: Vec<VantageRow>,
}

/// Run the survey from the paper's three measurement locations.
pub fn run() -> VantageReport {
    let vantages = vec![Site::FairfaxVa, Site::LosAngeles, Site::London];
    let mut rows = Vec::new();
    for id in PlatformId::ALL {
        let cfg = PlatformConfig::of(id);
        for (channel, pool) in
            [(ChannelKind::Control, &cfg.control_pool), (ChannelKind::Data, &cfg.data_pool)]
        {
            let rtts = vantages
                .iter()
                .map(|v| {
                    // Worlds is only available in the U.S. and Canada.
                    if id == PlatformId::Worlds && v.region() == svr_geo::Region::Europe {
                        (*v, None)
                    } else {
                        (*v, Some(pool.rtt_from(*v).as_millis_f64()))
                    }
                })
                .collect();
            rows.push(VantageRow { platform: id, channel, rtts });
        }
    }
    VantageReport { vantages, rows }
}

impl VantageReport {
    /// RTT of a platform/channel from a vantage, if measurable.
    pub fn rtt(&self, id: PlatformId, channel: ChannelKind, vantage: Site) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.platform == id && r.channel == channel)?
            .rtts
            .iter()
            .find(|(v, _)| *v == vantage)?
            .1
    }
}

impl std::fmt::Display for VantageReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "§4.2 multi-vantage RTT survey (ms)")?;
        let mut header = vec!["Platform".to_string(), "Channel".to_string()];
        header.extend(self.vantages.iter().map(|v| v.to_string()));
        let mut t = TextTable::new(header);
        for r in &self.rows {
            let mut row = vec![
                r.platform.to_string(),
                match r.channel {
                    ChannelKind::Control => "Control".to_string(),
                    ChannelKind::Data => "Data".to_string(),
                },
            ];
            row.extend(r.rtts.iter().map(|(_, rtt)| match rtt {
                Some(ms) => format!("{ms:.1}"),
                None => "n/a".to_string(),
            }));
            t.row(row);
        }
        write!(f, "{}", t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn altspace_and_hubs_data_servers_are_far_from_europe() {
        // Paper: ~150 ms (AltspaceVR) and ~140 ms (Hubs) from the UK.
        let r = run();
        let alts = r.rtt(PlatformId::AltspaceVr, ChannelKind::Data, Site::London).unwrap();
        assert!((120.0..175.0).contains(&alts), "AltspaceVR from UK: {alts} ms");
        let hubs = r.rtt(PlatformId::Hubs, ChannelKind::Data, Site::London).unwrap();
        assert!((120.0..175.0).contains(&hubs), "Hubs from UK: {hubs} ms");
    }

    #[test]
    fn anycast_platforms_are_near_every_vantage() {
        // Paper: Rec Room and VRChat assign nearby/anycast servers with
        // <5 ms everywhere; AltspaceVR's *control* anycast too.
        let r = run();
        for v in [Site::FairfaxVa, Site::LosAngeles, Site::London] {
            for (id, ch) in [
                (PlatformId::RecRoom, ChannelKind::Data),
                (PlatformId::VrChat, ChannelKind::Data),
                (PlatformId::RecRoom, ChannelKind::Control),
                (PlatformId::AltspaceVr, ChannelKind::Control),
            ] {
                let ms = r.rtt(id, ch, v).unwrap();
                assert!(ms < 5.0, "{id:?}/{ch:?} from {v}: {ms} ms");
            }
        }
    }

    #[test]
    fn worlds_is_unavailable_in_europe() {
        let r = run();
        assert_eq!(r.rtt(PlatformId::Worlds, ChannelKind::Data, Site::London), None);
        assert!(r.rtt(PlatformId::Worlds, ChannelKind::Data, Site::FairfaxVa).is_some());
    }

    #[test]
    fn hubs_control_is_regional_but_data_is_not() {
        // Paper: Hubs has HTTPS servers in Europe (<5 ms) but its WebRTC
        // SFU stays in the western U.S. We model the public production
        // Hubs of the study period with a single-region control plane, so
        // control from Europe is also far — but data must never be nearer
        // than control from any vantage.
        let r = run();
        for v in [Site::FairfaxVa, Site::LosAngeles, Site::London] {
            let ctl = r.rtt(PlatformId::Hubs, ChannelKind::Control, v).unwrap();
            let data = r.rtt(PlatformId::Hubs, ChannelKind::Data, v).unwrap();
            assert!(data + 1.0 >= ctl, "from {v}: data {data} vs control {ctl}");
        }
    }

    #[test]
    fn renders_with_all_vantages() {
        let s = run().to_string();
        assert!(s.contains("lax"));
        assert!(s.contains("lhr"));
        assert!(s.contains("n/a"), "Worlds row shows unavailability");
    }
}
