//! Table 3: two-user data-channel throughput, resolution, and the
//! avatar-only rate isolated by the §5.2 mute-join differencing.
//!
//! For every platform, over `trials` seeded runs: (a) two Quest 2 users
//! walk and chat; steady-state uplink/downlink rates are read from U1's
//! AP capture; (b) a solo run measures U1's downlink alone (`T`), so the
//! avatar rate is `T' − T` exactly as the paper computes it.

use crate::analysis::steady_data_rates;
use crate::experiments::{steady_from, trial_seed};
use crate::report::TextTable;
use crate::stats::Summary;
use svr_client::Resolution;
use svr_netsim::{SimDuration, SimTime};
use svr_platform::session::run_session;
use svr_platform::{PlatformConfig, PlatformId, SessionConfig};

/// One platform's measured row.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Platform.
    pub platform: PlatformId,
    /// Uplink throughput, Kbps.
    pub up: Summary,
    /// Downlink throughput, Kbps.
    pub down: Summary,
    /// Rendered content resolution.
    pub resolution: Resolution,
    /// Avatar-only rate from the differencing method, Kbps.
    pub avatar: Summary,
}

/// The full table.
#[derive(Debug, Clone)]
pub struct Table3Report {
    /// One row per platform (paper order: by ascending throughput).
    pub rows: Vec<Table3Row>,
}

/// Parameters.
#[derive(Debug, Clone, Copy)]
pub struct Table3Config {
    /// Independent trials per platform (paper: >20).
    pub trials: usize,
    /// Session length per trial, seconds.
    pub duration_s: u64,
    /// Base seed.
    pub seed: u64,
}

impl Table3Config {
    /// Paper fidelity.
    pub fn full() -> Self {
        Table3Config { trials: 20, duration_s: 60, seed: 0x7AB1E3 }
    }

    /// CI-sized.
    pub fn quick() -> Self {
        Table3Config { trials: 2, duration_s: 35, seed: 0x7AB1E3 }
    }
}

/// Measure one platform.
pub fn run_platform(id: PlatformId, cfg: Table3Config) -> Table3Row {
    let pcfg = PlatformConfig::of(id);
    let duration = SimDuration::from_secs(cfg.duration_s);
    let mut ups = Vec::new();
    let mut downs = Vec::new();
    let mut avatars = Vec::new();
    for k in 0..cfg.trials {
        let seed = trial_seed(cfg.seed ^ (id as u64) << 8, k);
        // Two-user run.
        let scfg = SessionConfig::walk_and_chat(pcfg.clone(), 2, duration, seed);
        let r2 = run_session(&scfg);
        let to = SimTime::ZERO + duration;
        let rates2 =
            steady_data_rates(&r2.users[0].ap_records, r2.data_server_node, steady_from(), to);
        ups.push(rates2.up_kbps);
        downs.push(rates2.down_kbps);
        // Solo run: U1 alone, downlink is server housekeeping only.
        let scfg1 = SessionConfig::walk_and_chat(pcfg.clone(), 1, duration, seed ^ 0x0501);
        let r1 = run_session(&scfg1);
        let rates1 =
            steady_data_rates(&r1.users[0].ap_records, r1.data_server_node, steady_from(), to);
        avatars.push(crate::analysis::avatar_rate_by_differencing(
            rates1.down_kbps,
            rates2.down_kbps,
        ));
    }
    Table3Row {
        platform: id,
        up: Summary::of(&ups),
        down: Summary::of(&downs),
        resolution: pcfg.resolution,
        avatar: Summary::of(&avatars),
    }
}

/// Run for all five platforms.
pub fn run(cfg: Table3Config) -> Table3Report {
    let order = [
        PlatformId::VrChat,
        PlatformId::AltspaceVr,
        PlatformId::RecRoom,
        PlatformId::Hubs,
        PlatformId::Worlds,
    ];
    Table3Report { rows: order.into_iter().map(|id| run_platform(id, cfg)).collect() }
}

/// The paper's Table 3 values for comparison: (up, down, avatar), Kbps.
pub fn paper_values(id: PlatformId) -> (f64, f64, f64) {
    match id {
        PlatformId::VrChat => (31.4, 31.3, 24.7),
        PlatformId::AltspaceVr => (41.3, 40.4, 11.1),
        PlatformId::RecRoom => (41.7, 41.5, 35.2),
        PlatformId::Hubs => (83.3, 83.1, 77.4),
        PlatformId::Worlds => (752.0, 413.0, 332.0),
    }
}

impl std::fmt::Display for Table3Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = TextTable::new(vec![
            "Platform", "Up (Kbps)", "Down (Kbps)", "Resolution", "Avatar (Kbps)", "Paper (up/down/avatar)",
        ]);
        for r in &self.rows {
            let (pu, pd, pa) = paper_values(r.platform);
            t.row(vec![
                r.platform.to_string(),
                r.up.cell(),
                r.down.cell(),
                r.resolution.to_string(),
                r.avatar.cell(),
                format!("{pu}/{pd}/{pa}"),
            ]);
        }
        writeln!(f, "Table 3: two-user throughput and avatar data rate")?;
        write!(f, "{}", t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::relative_error;

    #[test]
    fn vrchat_rates_match_paper_band() {
        let row = run_platform(PlatformId::VrChat, Table3Config::quick());
        let (pu, pd, pa) = paper_values(PlatformId::VrChat);
        assert!(relative_error(row.up.mean, pu) < 0.30, "up {} vs {pu}", row.up.mean);
        assert!(relative_error(row.down.mean, pd) < 0.30, "down {} vs {pd}", row.down.mean);
        assert!(relative_error(row.avatar.mean, pa) < 0.35, "avatar {} vs {pa}", row.avatar.mean);
    }

    #[test]
    fn worlds_uplink_exceeds_downlink() {
        // §5.1: the server keeps part of Worlds' uplink (telemetry), so
        // U2's downlink is visibly lower than U1's uplink.
        let row = run_platform(PlatformId::Worlds, Table3Config::quick());
        assert!(
            row.up.mean > row.down.mean * 1.4,
            "up {} vs down {}",
            row.up.mean,
            row.down.mean
        );
        // And an order of magnitude above the light platforms.
        assert!(row.up.mean > 400.0, "{}", row.up.mean);
    }

    #[test]
    fn symmetric_platforms_have_matching_up_down() {
        for id in [PlatformId::VrChat, PlatformId::RecRoom] {
            let row = run_platform(id, Table3Config::quick());
            let ratio = row.up.mean / row.down.mean.max(0.001);
            assert!((0.7..1.4).contains(&ratio), "{id}: up/down ratio {ratio}");
        }
    }

    #[test]
    fn avatar_rate_ordering_matches_embodiment_complexity() {
        let cfg = Table3Config::quick();
        let alts = run_platform(PlatformId::AltspaceVr, cfg).avatar.mean;
        let vrchat = run_platform(PlatformId::VrChat, cfg).avatar.mean;
        let worlds = run_platform(PlatformId::Worlds, cfg).avatar.mean;
        assert!(alts < vrchat, "{alts} < {vrchat}");
        assert!(vrchat < worlds, "{vrchat} < {worlds}");
        assert!(worlds > 8.0 * vrchat, "Worlds 10x: {worlds} vs {vrchat}");
    }

    #[test]
    fn resolution_is_reported_per_platform() {
        let rep = run(Table3Config { trials: 1, duration_s: 25, seed: 1 });
        let alts = rep.rows.iter().find(|r| r.platform == PlatformId::AltspaceVr).unwrap();
        assert_eq!(alts.resolution.to_string(), "2016x2224");
        assert!(rep.to_string().contains("1440x1584"));
    }
}
