//! One module per table and figure of the paper's evaluation.
//!
//! Every experiment follows the same contract: a `Config` with a
//! [`full`](table3::Table3Config::full)-fidelity preset (paper-scale
//! trials) and a `quick` preset (CI-sized), a `run` function that
//! executes the simulated measurement and returns a typed report, and a
//! `Display` impl that prints the same rows/series the paper shows.
//!
//! | Module | Paper artefact |
//! |---|---|
//! | [`table1`] | Table 1 — feature matrix |
//! | [`table2`] | Table 2 — protocols, servers, anycast, RTT |
//! | [`fig2`] | Fig. 2 — control/data channel timelines |
//! | [`table3`] | Table 3 — two-user throughput & avatar isolation |
//! | [`fig3`] | Fig. 3 — U1-uplink ↔ U2-downlink matching |
//! | [`fig6`] | Fig. 6 — join timeline & viewport optimisation |
//! | [`viewport`] | §6.1 — AltspaceVR viewport-width probe |
//! | [`fig7`] | Fig. 7 — downlink & FPS vs user count |
//! | [`fig8`] | Fig. 8 — CPU/GPU/memory vs user count |
//! | [`fig9`] | Fig. 9 — private-Hubs large event (15–28 users) |
//! | [`table4`] | Table 4 — E2E latency breakdown |
//! | [`fig11`] | Fig. 11 — E2E latency vs user count |
//! | [`fig12`] | Fig. 12 — Worlds downlink throttling |
//! | [`fig13`] | Fig. 13 — Worlds uplink throttling & TCP priority |
//! | [`disruption`] | §8.2 — latency/loss tolerance |
//! | [`vantage`] | §4.2 — west-coast & Europe vantage survey |
//! | [`takeaways`] | the paper's Takeaways/Implications as a checklist |
//! | [`ablations`] | §6.3 remote rendering; §5.1 device independence |

pub mod ablations;
pub mod disruption;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig2;
pub mod fig3;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod takeaways;
pub mod vantage;
pub mod viewport;

use svr_netsim::SimTime;

/// Derive the seed for trial `k` of an experiment.
pub(crate) fn trial_seed(base: u64, k: usize) -> u64 {
    base.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((k as u64).wrapping_mul(0x1234_5678_9ABC_DEF1))
}

/// The steady-state analysis window used when users join at t=5 s.
pub(crate) fn steady_from() -> SimTime {
    SimTime::from_secs(15)
}
