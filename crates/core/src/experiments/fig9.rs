//! Figure 9: the large-scale private-Hubs event (15–28 users).
//!
//! The public platforms cap events at ~15–16 users, so the paper hosts a
//! larger event on its own Hubs server. We do the same with the
//! private-Hubs configuration: user counts up to 28, measuring U1's
//! downlink and FPS. Expected shape: throughput keeps growing linearly
//! and FPS keeps falling (~32 % from 15 to 28 users).

use crate::analysis::steady_data_rates;
use crate::experiments::{steady_from, trial_seed};
use crate::report::TextTable;
use crate::stats::{linear_fit, Summary};
use svr_netsim::{SimDuration, SimTime};
use svr_platform::session::run_session;
use svr_platform::{PlatformConfig, SessionConfig};

/// One user-count point.
#[derive(Debug, Clone)]
pub struct Fig9Point {
    /// Concurrent users.
    pub users: usize,
    /// U1 downlink, Mbps.
    pub down_mbps: Summary,
    /// U1 FPS.
    pub fps: Summary,
}

/// The report.
#[derive(Debug, Clone)]
pub struct Fig9Report {
    /// Points for each user count.
    pub points: Vec<Fig9Point>,
}

/// Parameters.
#[derive(Debug, Clone)]
pub struct Fig9Config {
    /// User counts (paper: 15, 20, 25, 28).
    pub user_counts: Vec<usize>,
    /// Trials per point.
    pub trials: usize,
    /// Session length, seconds.
    pub duration_s: u64,
    /// Seed.
    pub seed: u64,
}

impl Fig9Config {
    /// Paper fidelity.
    pub fn full() -> Self {
        Fig9Config { user_counts: vec![15, 20, 25, 28], trials: 3, duration_s: 45, seed: 0xF169 }
    }

    /// CI-sized (smaller event; the shape still shows).
    pub fn quick() -> Self {
        Fig9Config { user_counts: vec![4, 8], trials: 1, duration_s: 25, seed: 0xF169 }
    }
}

/// Run the experiment on the private Hubs deployment.
pub fn run(cfg: &Fig9Config) -> Fig9Report {
    let pcfg = PlatformConfig::private_hubs();
    let mut points = Vec::new();
    for &n in &cfg.user_counts {
        let mut down = Vec::new();
        let mut fps = Vec::new();
        for k in 0..cfg.trials {
            let seed = trial_seed(cfg.seed ^ ((n as u64) << 8), k);
            let scfg = SessionConfig::walk_and_chat(
                pcfg.clone(),
                n,
                SimDuration::from_secs(cfg.duration_s),
                seed,
            );
            let r = run_session(&scfg);
            let to = SimTime::from_secs(cfg.duration_s);
            let rates =
                steady_data_rates(&r.users[0].ap_records, r.data_server_node, steady_from(), to);
            down.push(rates.down_kbps / 1e3);
            fps.push(r.users[0].summarize_between(steady_from(), to).avg_fps);
        }
        points.push(Fig9Point { users: n, down_mbps: Summary::of(&down), fps: Summary::of(&fps) });
    }
    Fig9Report { points }
}

impl Fig9Report {
    /// Linearity of downlink growth: `(slope Mbps/user, R²)`.
    pub fn downlink_linearity(&self) -> (f64, f64) {
        let x: Vec<f64> = self.points.iter().map(|p| p.users as f64).collect();
        let y: Vec<f64> = self.points.iter().map(|p| p.down_mbps.mean).collect();
        let (s, _i, r2) = linear_fit(&x, &y);
        (s, r2)
    }
}

impl std::fmt::Display for Fig9Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Fig. 9: private-Hubs large event")?;
        let mut t = TextTable::new(vec!["Users", "Downlink (Mbps)", "FPS"]);
        for p in &self.points {
            t.row(vec![
                p.users.to_string(),
                format!("{:.2}±{:.2}", p.down_mbps.mean, p.down_mbps.ci95),
                format!("{:.1}±{:.1}", p.fps.mean, p.fps.ci95),
            ]);
        }
        write!(f, "{}", t.render())?;
        let (slope, r2) = self.downlink_linearity();
        writeln!(f, "slope {slope:.3} Mbps/user, R² {r2:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_keeps_growing_and_fps_keeps_falling() {
        let r = run(&Fig9Config::quick());
        assert!(r.points.len() >= 2);
        let first = &r.points[0];
        let last = r.points.last().unwrap();
        assert!(last.down_mbps.mean > first.down_mbps.mean * 1.5);
        assert!(last.fps.mean < first.fps.mean);
        let (slope, r2) = r.downlink_linearity();
        assert!(slope > 0.0);
        assert!(r2 > 0.9, "R² {r2}");
    }
}
