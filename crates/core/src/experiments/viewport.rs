//! §6.1's viewport-width probe for AltspaceVR.
//!
//! Two users; U2 stands still. U1 starts facing away from U2 and snaps
//! the controller 16 times (22.5° each — one full circle), dwelling at
//! each heading. For each dwell the probe checks whether U2's avatar data
//! flowed on U1's downlink; the count of data-carrying headings times
//! 22.5° estimates the server's forwarding viewport — the paper measures
//! ~150°, for up to ~58 % data savings.

use svr_netsim::capture::{by_server, Direction};
use svr_netsim::{SimDuration, SimTime};
use svr_platform::session::run_session;
use svr_platform::{Behavior, PlatformConfig, PlatformId, SessionConfig};

/// The probe's outcome.
#[derive(Debug, Clone)]
pub struct ViewportReport {
    /// Per-heading downlink mean (Kbps), heading index 0..16.
    pub per_heading_kbps: Vec<f64>,
    /// Headings classified as "avatar visible".
    pub visible_headings: usize,
    /// Estimated viewport width in degrees.
    pub estimated_width_deg: f64,
    /// Theoretical data saving: `1 − width/360`.
    pub max_saving: f64,
}

/// Parameters.
#[derive(Debug, Clone, Copy)]
pub struct ViewportConfig {
    /// Dwell per heading, seconds.
    pub dwell_s: u64,
    /// Seed.
    pub seed: u64,
}

impl ViewportConfig {
    /// Paper-scale dwell.
    pub fn full() -> Self {
        ViewportConfig { dwell_s: 10, seed: 0x56D0 }
    }

    /// CI-sized.
    pub fn quick() -> Self {
        ViewportConfig { dwell_s: 4, seed: 0x56D0 }
    }
}

/// Run the probe (on AltspaceVR unless another platform is passed — the
/// same probe on a direct-forwarding platform measures 360°).
pub fn run(platform: PlatformId, cfg: ViewportConfig) -> ViewportReport {
    let pcfg = PlatformConfig::of(platform);
    let steps = 16usize;
    let settle = 6u64;
    let duration_s = settle + cfg.dwell_s * steps as u64;
    let mut scfg = SessionConfig::walk_and_chat(
        pcfg,
        2,
        SimDuration::from_secs(duration_s),
        cfg.seed,
    );
    scfg.behaviors = vec![
        Behavior::Join { user: 0, at: SimTime::from_secs(1) },
        Behavior::Join { user: 1, at: SimTime::from_secs(1) },
        // U2 stands 4 m "north" of U1's spawn; U1 initially faces south.
        Behavior::WalkTo { user: 1, at: SimTime::from_millis(1_200), x: 2.0, z: 4.0 },
        Behavior::SetHeading { user: 0, at: SimTime::from_millis(1_200), deg: 180.0 },
    ];
    for k in 1..steps {
        scfg.behaviors.push(Behavior::Turn {
            user: 0,
            at: SimTime::from_secs(settle + cfg.dwell_s * k as u64),
            delta_deg: 22.5,
        });
    }
    let result = run_session(&scfg);
    let data = by_server(&result.users[0].ap_records, result.data_server_node);

    let mut per_heading = Vec::with_capacity(steps);
    for k in 0..steps {
        let start = settle + cfg.dwell_s * k as u64;
        let end = start + cfg.dwell_s;
        // Skip the first second of each dwell (forwarding decisions use
        // the heading the server learned from U1's own updates).
        let from = SimTime::from_secs(start + 1);
        let to = SimTime::from_secs(end);
        let bytes: u64 = data
            .iter()
            .filter(|r| r.direction == Direction::Downlink && r.ts >= from && r.ts < to)
            .map(|r| r.wire_bytes)
            .sum();
        per_heading.push(bytes as f64 * 8.0 / (to.saturating_since(from)).as_secs_f64() / 1e3);
    }

    // Visible = downlink clearly above the housekeeping floor. If the
    // series is essentially flat, there is no viewport gating at all
    // (direct forwarding) and the whole circle is "visible".
    let floor = per_heading.iter().cloned().fold(f64::MAX, f64::min);
    let peak = per_heading.iter().cloned().fold(0.0, f64::max);
    let (visible, width) = if peak - floor < 0.15 * peak.max(1e-9) {
        (steps, 360.0)
    } else {
        let threshold = floor + (peak - floor) * 0.4;
        let visible = per_heading.iter().filter(|v| **v > threshold).count();
        (visible, visible as f64 * 22.5)
    };

    ViewportReport {
        per_heading_kbps: per_heading,
        visible_headings: visible,
        estimated_width_deg: width,
        max_saving: 1.0 - width / 360.0,
    }
}

impl std::fmt::Display for ViewportReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "§6.1 viewport probe: {} of 16 headings carry avatar data → width ≈ {:.1}° (paper ~150°), max saving {:.0}%",
            self.visible_headings,
            self.estimated_width_deg,
            self.max_saving * 100.0
        )?;
        let pts: Vec<(f64, f64)> = self
            .per_heading_kbps
            .iter()
            .enumerate()
            .map(|(i, v)| (i as f64 * 22.5, *v))
            .collect();
        writeln!(f, "{}", crate::report::series_line("  downlink by heading (Kbps)", &pts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn altspace_viewport_is_about_150_degrees() {
        let r = run(PlatformId::AltspaceVr, ViewportConfig::quick());
        assert!(
            (120.0..=190.0).contains(&r.estimated_width_deg),
            "estimated width {}° (paper ~150°), per-heading {:?}",
            r.estimated_width_deg,
            r.per_heading_kbps
        );
        // Savings up to ~58 %.
        assert!(r.max_saving > 0.4, "saving {}", r.max_saving);
    }

    #[test]
    fn direct_platform_measures_full_circle() {
        let r = run(PlatformId::VrChat, ViewportConfig::quick());
        // Without viewport adaptation every heading carries data.
        assert_eq!(r.visible_headings, 16, "per-heading {:?}", r.per_heading_kbps);
        assert_eq!(r.estimated_width_deg, 360.0);
    }
}
