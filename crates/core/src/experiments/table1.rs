//! Table 1: the feature comparison of the five platforms.
//!
//! Unlike the measurement tables this one is a structured capability
//! survey; the experiment renders it and checks its internal consistency
//! against the behavioural configs (a platform with facial expressions
//! must have a facial-capable embodiment, the only gameless platform must
//! have no game traffic profile, and so on).

use crate::report::TextTable;
use svr_platform::{FeatureMatrix, Locomotion, PlatformConfig};

/// The rendered feature matrix plus consistency findings.
#[derive(Debug, Clone)]
pub struct Table1Report {
    /// One row per platform, in release order.
    pub rows: Vec<FeatureMatrix>,
    /// Cross-checks between Table 1 and the behavioural models.
    pub consistency_errors: Vec<String>,
}

/// Build the report.
pub fn run() -> Table1Report {
    let rows = FeatureMatrix::all();
    let mut errors = Vec::new();
    for row in &rows {
        let cfg = PlatformConfig::of(row.platform);
        if row.facial_expression != cfg.embodiment.has_facial_expression() {
            errors.push(format!(
                "{}: Table 1 facial expression = {} but embodiment '{}' disagrees",
                row.platform, row.facial_expression, cfg.embodiment.name
            ));
        }
        if row.games != cfg.game.is_some() {
            errors.push(format!(
                "{}: Table 1 games = {} but traffic model disagrees",
                row.platform, row.games
            ));
        }
    }
    Table1Report { rows, consistency_errors: errors }
}

impl std::fmt::Display for Table1Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = TextTable::new(vec![
            "Platform", "Company", "Locomotion", "Facial Expr.", "Pers. Space", "Game",
            "Share Screen", "Shopping", "NFT",
        ]);
        let tick = |b: bool| if b { "yes" } else { "no" }.to_string();
        for r in &self.rows {
            let loco: Vec<&str> = r
                .locomotion
                .iter()
                .map(|l| match l {
                    Locomotion::Walk => "Walk",
                    Locomotion::Jump => "Jump",
                    Locomotion::Fly => "Fly",
                    Locomotion::Teleport => "Teleport",
                })
                .collect();
            t.row(vec![
                format!("{} ('{})", r.platform, r.released % 100),
                r.company.to_string(),
                loco.join(", "),
                tick(r.facial_expression),
                tick(r.personal_space),
                tick(r.games),
                tick(r.share_screen),
                tick(r.shopping),
                tick(r.nft),
            ]);
        }
        writeln!(f, "Table 1: platform feature comparison")?;
        write!(f, "{}", t.render())?;
        for e in &self.consistency_errors {
            writeln!(f, "INCONSISTENT: {e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svr_platform::PlatformId;

    #[test]
    fn feature_matrix_consistent_with_behaviour_models() {
        let r = run();
        assert!(r.consistency_errors.is_empty(), "{:?}", r.consistency_errors);
        assert_eq!(r.rows.len(), 5);
    }

    #[test]
    fn rendering_contains_all_platforms() {
        let s = run().to_string();
        for id in PlatformId::ALL {
            assert!(s.contains(id.name()), "{s}");
        }
        assert!(s.contains("Teleport"));
    }
}
