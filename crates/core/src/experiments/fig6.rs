//! Figure 6: throughput scalability timeline and the viewport-adaptive
//! optimisation.
//!
//! U1 is in the event from the start; U2–U5 join at 50/100/150/200 s
//! (scaled for shorter runs); everyone stands so visibility is purely a
//! matter of viewport geometry. At the "turn point" (250 s in the paper)
//! U1 rotates 180°, putting every avatar behind them:
//!
//! * direct-forwarding platforms keep streaming — downlink unchanged;
//! * AltspaceVR's viewport-adaptive server stops forwarding the invisible
//!   avatars — downlink collapses (Fig. 6(e));
//! * Experiment 2 inverts it: U1 faces away for the whole run, the others
//!   gather centre-stage, and U1's downlink stays near zero until the
//!   turn (Fig. 6(f)).

use crate::analysis::RateSeries;
use svr_netsim::capture::{by_server, Direction};
use svr_netsim::{SimDuration, SimTime};
use svr_platform::session::run_session;
use svr_platform::{Behavior, PlatformConfig, PlatformId, SessionConfig};

/// Which §6.1 experiment variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Others visible first, U1 turns away at the turn point (Exp. 1).
    VisibleThenAway,
    /// U1 faces a corner first, turns to the centre at the turn point
    /// (Exp. 2).
    AwayThenVisible,
}

/// Timeline report for one platform.
#[derive(Debug, Clone)]
pub struct Fig6Report {
    /// Platform.
    pub platform: PlatformId,
    /// Variant run.
    pub variant: Variant,
    /// U1 downlink, Kbps per second.
    pub down: RateSeries,
    /// U1 uplink, Kbps per second.
    pub up: RateSeries,
    /// Join times of U2..U5.
    pub join_times_s: Vec<u64>,
    /// When U1 turned.
    pub turn_s: u64,
}

/// Parameters.
#[derive(Debug, Clone, Copy)]
pub struct Fig6Config {
    /// Interval between joins (paper: 50 s).
    pub join_every_s: u64,
    /// Time after the last join before U1 turns (paper: 50 s).
    pub settle_s: u64,
    /// Tail after the turn (paper: 50 s).
    pub tail_s: u64,
    /// Number of users (paper: 5).
    pub n_users: usize,
    /// Seed.
    pub seed: u64,
}

impl Fig6Config {
    /// Paper fidelity: joins at 50/100/150/200 s, turn at 250 s, 300 s run.
    pub fn full() -> Self {
        Fig6Config { join_every_s: 50, settle_s: 50, tail_s: 50, n_users: 5, seed: 0xF166 }
    }

    /// CI-sized: joins every 8 s, 4 users.
    pub fn quick() -> Self {
        Fig6Config { join_every_s: 8, settle_s: 8, tail_s: 8, n_users: 4, seed: 0xF166 }
    }

    /// Turn time.
    pub fn turn_s(&self) -> u64 {
        self.join_every_s * (self.n_users as u64 - 1) + self.settle_s
    }

    /// Total duration.
    pub fn duration_s(&self) -> u64 {
        self.turn_s() + self.tail_s
    }
}

/// Run one platform/variant.
pub fn run(platform: PlatformId, variant: Variant, cfg: Fig6Config) -> Fig6Report {
    let pcfg = PlatformConfig::of(platform);
    let duration = SimDuration::from_secs(cfg.duration_s());
    let mut scfg = SessionConfig::walk_and_chat(pcfg, cfg.n_users, duration, cfg.seed);
    scfg.behaviors.clear();

    // U1 joins immediately and stands still at its spawn.
    scfg.behaviors.push(Behavior::Join { user: 0, at: SimTime::from_secs(1) });
    let turn = cfg.turn_s();
    let mut joins = Vec::new();
    for u in 1..cfg.n_users {
        let at = cfg.join_every_s * u as u64;
        joins.push(at);
        scfg.behaviors.push(Behavior::Join { user: u, at: SimTime::from_secs(at) });
    }
    match variant {
        Variant::VisibleThenAway => {
            // Default spawn circle: everyone faces the centre, mutually
            // visible. U1 turns away at the turn point.
            scfg.behaviors.push(Behavior::Turn { user: 0, at: SimTime::from_secs(turn), delta_deg: 180.0 });
        }
        Variant::AwayThenVisible => {
            // U1 faces outward from the start; others walk to the centre
            // as they join.
            scfg.behaviors.push(Behavior::Turn { user: 0, at: SimTime::from_millis(1_500), delta_deg: 180.0 });
            for u in 1..cfg.n_users {
                let at = cfg.join_every_s * u as u64;
                scfg.behaviors.push(Behavior::WalkTo {
                    user: u,
                    at: SimTime::from_secs(at) + SimDuration::from_millis(500),
                    x: 0.0,
                    z: 0.0,
                });
            }
            // The turn brings them into view.
            scfg.behaviors.push(Behavior::Turn { user: 0, at: SimTime::from_secs(turn), delta_deg: 180.0 });
        }
    }

    let result = run_session(&scfg);
    let data = by_server(&result.users[0].ap_records, result.data_server_node);
    Fig6Report {
        platform,
        variant,
        down: RateSeries::from_records(&data, Direction::Downlink, duration),
        up: RateSeries::from_records(&data, Direction::Uplink, duration),
        join_times_s: joins,
        turn_s: turn,
    }
}

impl Fig6Report {
    /// Mean downlink in the window after join `k` (0 = U1 alone).
    pub fn down_after_join(&self, k: usize, _cfg: &Fig6Config) -> f64 {
        let start = if k == 0 { 2 } else { self.join_times_s[k - 1] as usize + 2 };
        let end = if k < self.join_times_s.len() {
            self.join_times_s[k] as usize
        } else {
            self.turn_s as usize
        };
        self.down.mean_kbps(start, end)
    }

    /// Mean downlink after the turn.
    pub fn down_after_turn(&self) -> f64 {
        self.down.mean_kbps(self.turn_s as usize + 2, self.down.len())
    }

    /// Mean downlink just before the turn.
    pub fn down_before_turn(&self) -> f64 {
        let last_join = *self.join_times_s.last().unwrap_or(&0) as usize;
        self.down.mean_kbps(last_join + 2, self.turn_s as usize)
    }
}

impl std::fmt::Display for Fig6Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Fig. 6 ({}, {:?}): joins at {:?} s, turn at {} s",
            self.platform, self.variant, self.join_times_s, self.turn_s
        )?;
        let pts = |s: &RateSeries| -> Vec<(f64, f64)> {
            s.kbps.iter().enumerate().step_by(4).map(|(i, v)| (i as f64, *v)).collect()
        };
        writeln!(f, "{}", crate::report::series_line("  downlink (Kbps)", &pts(&self.down)))?;
        writeln!(f, "{}", crate::report::series_line("  uplink   (Kbps)", &pts(&self.up)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downlink_steps_up_with_each_join() {
        let cfg = Fig6Config::quick();
        let r = run(PlatformId::VrChat, Variant::VisibleThenAway, cfg);
        let mut last = 0.0;
        for k in 0..cfg.n_users {
            let mean = r.down_after_join(k, &cfg);
            assert!(
                mean > last,
                "join {k}: downlink {mean} Kbps should exceed previous {last}"
            );
            last = mean;
        }
    }

    #[test]
    fn direct_platforms_ignore_the_turn() {
        let cfg = Fig6Config::quick();
        let r = run(PlatformId::RecRoom, Variant::VisibleThenAway, cfg);
        let before = r.down_before_turn();
        let after = r.down_after_turn();
        assert!(
            after > before * 0.8,
            "direct forwarding keeps streaming: {before} → {after}"
        );
    }

    #[test]
    fn altspace_downlink_collapses_after_turning_away() {
        let cfg = Fig6Config::quick();
        let r = run(PlatformId::AltspaceVr, Variant::VisibleThenAway, cfg);
        let before = r.down_before_turn();
        let after = r.down_after_turn();
        assert!(
            after < before * 0.55,
            "viewport optimisation should cut the downlink: {before} → {after}"
        );
    }

    #[test]
    fn altspace_exp2_stays_low_until_turn() {
        let cfg = Fig6Config::quick();
        let r = run(PlatformId::AltspaceVr, Variant::AwayThenVisible, cfg);
        let before = r.down_before_turn();
        let after = r.down_after_turn();
        assert!(
            after > before * 1.8,
            "turning toward the crowd should raise the downlink: {before} → {after}"
        );
    }

    #[test]
    fn uplink_unaffected_by_peer_count() {
        // §6.1: "the uplink throughput of each user is unaffected by the
        // presence of more avatars".
        let cfg = Fig6Config::quick();
        let r = run(PlatformId::VrChat, Variant::VisibleThenAway, cfg);
        let early = r.up.mean_kbps(3, cfg.join_every_s as usize);
        let late = r.up.mean_kbps(r.turn_s as usize - 6, r.turn_s as usize);
        assert!(
            (late - early).abs() < early * 0.4 + 3.0,
            "uplink {early} → {late} should stay flat"
        );
    }
}
