//! Table 2: network protocols and infrastructure of the five platforms.
//!
//! For each platform and channel this experiment (a) identifies the
//! transport protocol, (b) resolves the serving pool and measures RTT
//! with real ICMP pings through the simulated network — or the RTCP
//! LSR/DLSR method for Hubs' WebRTC data channel, which drops ICMP just
//! like the real deployment (§4.2), (c) runs the multi-vantage anycast
//! detection, and (d) attributes ownership and location via WHOIS-style
//! lookup (location is "–" for anycast, as in the paper).

use crate::report::TextTable;
use crate::stats::Summary;
use svr_geo::{detect_anycast, Owner, ServerPool, Site, WhoisDb};
use svr_netsim::{LinkSpec, Network, NodeKind, SimDuration, SimRng, SimTime};
use svr_platform::{ChannelKind, PlatformConfig, PlatformId};
use svr_transport::rtp::{parse_rtcp, RtpReceiver, RtpSender};
use svr_transport::{PingKind, Pinger, PingResponder};

/// One measured row (platform × channel).
#[derive(Debug, Clone)]
pub struct ChannelRow {
    /// Platform.
    pub platform: PlatformId,
    /// Which channel.
    pub channel: ChannelKind,
    /// Protocol string as the paper prints it.
    pub protocol: String,
    /// Server location ("–" when anycast).
    pub location: String,
    /// Server operator.
    pub owner: Owner,
    /// Anycast verdict from the detection algorithm.
    pub anycast: bool,
    /// RTT statistics (ms) from the east-coast vantage.
    pub rtt: Summary,
}

/// The full table.
#[derive(Debug, Clone)]
pub struct Table2Report {
    /// Rows in platform order.
    pub rows: Vec<ChannelRow>,
}

/// Experiment parameters.
#[derive(Debug, Clone, Copy)]
pub struct Table2Config {
    /// Ping probes per channel.
    pub probes: usize,
    /// Base seed.
    pub seed: u64,
}

impl Table2Config {
    /// Paper fidelity (20+ probes).
    pub fn full() -> Self {
        Table2Config { probes: 25, seed: 0x7AB1E2 }
    }

    /// CI-sized.
    pub fn quick() -> Self {
        Table2Config { probes: 5, seed: 0x7AB1E2 }
    }
}

/// Build the ping topology to a pool and measure RTT from the AP, the
/// way §4.2 pings from the WiFi APs.
fn ping_pool(pool: &ServerPool, vantage: Site, probes: usize, rng: &mut SimRng) -> Summary {
    let rtt = pool.rtt_from(vantage);
    let mut net = Network::new(rng.next_u64());
    let ap = net.add_node("ap", NodeKind::AccessPoint);
    let router = net.add_node("router", NodeKind::Router);
    let server = net.add_node("server", NodeKind::Server);
    net.add_duplex_link(ap, router, LinkSpec::campus(), LinkSpec::campus());
    let one_way = SimDuration::from_micros((rtt / 2).as_micros().saturating_sub(350).max(50));
    net.add_duplex_link(router, server, LinkSpec::backbone(one_way), LinkSpec::backbone(one_way));

    let mut pinger = Pinger::new(PingKind::Icmp, 33_000, 7);
    let mut responder = PingResponder::new();
    let mut t = SimTime::ZERO;
    for _ in 0..probes {
        let probe = pinger.probe(net.now().max(t));
        net.send(ap, server, probe);
        // Deliver the echo, answer it, deliver the reply.
        while let Some(d) = net.poll(t + SimDuration::from_secs(2)) {
            if d.dst == server {
                if let Some(reply) = responder.on_packet(&d.packet) {
                    net.send(server, ap, reply);
                }
            } else {
                // Kernel/scheduler noise on the echo timestamping.
                let noisy = d.at + SimDuration::from_micros(rng.range_u64(0, 400));
                pinger.on_packet(noisy, &d.packet);
                break;
            }
        }
        t += SimDuration::from_secs(1);
        net.poll_all(t);
    }
    Summary::of(pinger.stats.samples_ms())
}

/// RTCP-based RTT for Hubs' WebRTC server (Chrome's
/// `RTCIceCandidatePairStats` method, §4.2).
fn rtcp_rtt(pool: &ServerPool, vantage: Site, probes: usize, rng: &mut SimRng) -> Summary {
    let rtt = pool.rtt_from(vantage);
    let mut net = Network::new(rng.next_u64());
    let ap = net.add_node("ap", NodeKind::AccessPoint);
    let server = net.add_node("sfu", NodeKind::Server);
    let one_way = SimDuration::from_micros((rtt / 2).as_micros().max(50));
    net.add_duplex_link(ap, server, LinkSpec::backbone(one_way), LinkSpec::backbone(one_way));

    let mut sender = RtpSender::new(0xC0FFEE, 9_000, 9_001);
    let mut receiver = RtpReceiver::new(0xD00D, 9_001, 9_000);
    for k in 0..probes {
        // Force an SR each round (5 s apart satisfies the SR interval).
        let t = SimTime::from_secs(5 * (k as u64 + 1));
        net.poll_all(t);
        if let Some(sr) = sender.on_tick(t) {
            net.send(ap, server, sr);
        }
        while let Some(d) = net.poll(t + SimDuration::from_secs(4)) {
            if d.dst == server {
                receiver.on_packet(d.at, &d.packet);
                // Receiver holds the report briefly, then replies.
                let hold = SimDuration::from_micros(rng.range_u64(200, 1_200));
                net.poll_all(d.at + hold);
                let rr = receiver.report(d.at + hold);
                net.send(server, ap, rr);
            } else if let Some(report) = parse_rtcp(&d.packet.payload) {
                sender.on_rtcp(d.at, &report);
                break;
            }
        }
    }
    let samples: Vec<f64> = sender.rtt_samples.iter().map(|d| d.as_millis_f64()).collect();
    Summary::of(&samples)
}

fn measure_channel(
    id: PlatformId,
    channel: ChannelKind,
    cfg: &PlatformConfig,
    probes: usize,
    rng: &mut SimRng,
) -> ChannelRow {
    let (pool, protocol) = match channel {
        ChannelKind::Control => (&cfg.control_pool, "HTTPS".to_string()),
        ChannelKind::Data => {
            let proto = match cfg.data_transport {
                svr_platform::DataTransport::Udp => "UDP".to_string(),
                svr_platform::DataTransport::TlsStream => "RTP/RTCP + HTTPS".to_string(),
            };
            (&cfg.data_pool, proto)
        }
    };
    let vantage = Site::FairfaxVa;
    let verdict = detect_anycast(pool);
    let assignment = pool.assign(vantage, 0);
    let whois = WhoisDb::new();
    let location = if verdict.is_anycast {
        "-".to_string()
    } else {
        whois
            .geolocate(assignment.ip)
            .map(|s| s.region().to_string())
            .unwrap_or_else(|| "-".to_string())
    };
    // Hubs' data server filters ICMP; measure via RTCP instead (§4.2).
    let rtt = if id == PlatformId::Hubs && channel == ChannelKind::Data {
        rtcp_rtt(pool, vantage, probes, rng)
    } else {
        ping_pool(pool, vantage, probes, rng)
    };
    ChannelRow { platform: id, channel, protocol, location, owner: pool.owner, anycast: verdict.is_anycast, rtt }
}

/// Run the Table 2 measurement.
pub fn run(cfg: Table2Config) -> Table2Report {
    let mut rng = SimRng::seed_from_u64(cfg.seed);
    let mut rows = Vec::new();
    for id in PlatformId::ALL {
        let pcfg = PlatformConfig::of(id);
        rows.push(measure_channel(id, ChannelKind::Control, &pcfg, cfg.probes, &mut rng));
        rows.push(measure_channel(id, ChannelKind::Data, &pcfg, cfg.probes, &mut rng));
    }
    Table2Report { rows }
}

impl std::fmt::Display for Table2Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = TextTable::new(vec![
            "Platform", "Channel", "Protocol", "Server Loc./Owner", "Anycast?", "RTT (ms)",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.platform.to_string(),
                match r.channel {
                    ChannelKind::Control => "Control".to_string(),
                    ChannelKind::Data => "Data".to_string(),
                },
                r.protocol.clone(),
                format!("{} / {}", r.location, r.owner),
                if r.anycast { "yes" } else { "no" }.to_string(),
                format!("{:.2}/{:.2}", r.rtt.mean, r.rtt.std),
            ]);
        }
        writeln!(f, "Table 2: network protocols and infrastructure (east-coast vantage)")?;
        write!(f, "{}", t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(rep: &Table2Report, id: PlatformId, ch: ChannelKind) -> &ChannelRow {
        rep.rows.iter().find(|r| r.platform == id && r.channel == ch).unwrap()
    }

    #[test]
    fn protocols_match_paper() {
        let rep = run(Table2Config::quick());
        for id in PlatformId::ALL {
            assert_eq!(row(&rep, id, ChannelKind::Control).protocol, "HTTPS");
        }
        assert_eq!(row(&rep, PlatformId::Hubs, ChannelKind::Data).protocol, "RTP/RTCP + HTTPS");
        assert_eq!(row(&rep, PlatformId::Worlds, ChannelKind::Data).protocol, "UDP");
    }

    #[test]
    fn anycast_and_location_match_paper() {
        let rep = run(Table2Config::quick());
        // Anycast: AltspaceVR ctl, Rec Room both, VRChat data.
        assert!(row(&rep, PlatformId::AltspaceVr, ChannelKind::Control).anycast);
        assert!(!row(&rep, PlatformId::AltspaceVr, ChannelKind::Data).anycast);
        assert!(row(&rep, PlatformId::RecRoom, ChannelKind::Control).anycast);
        assert!(row(&rep, PlatformId::RecRoom, ChannelKind::Data).anycast);
        assert!(row(&rep, PlatformId::VrChat, ChannelKind::Data).anycast);
        assert!(!row(&rep, PlatformId::Worlds, ChannelKind::Data).anycast);
        // Locations: anycast rows show "-", AltspaceVR data = western US.
        assert_eq!(row(&rep, PlatformId::RecRoom, ChannelKind::Data).location, "-");
        assert_eq!(row(&rep, PlatformId::AltspaceVr, ChannelKind::Data).location, "Western U.S.");
        assert_eq!(row(&rep, PlatformId::Worlds, ChannelKind::Data).location, "Eastern U.S.");
    }

    #[test]
    fn rtts_match_paper_shape() {
        let rep = run(Table2Config::quick());
        // Nearby channels < 5 ms; west-coast unicast > 60 ms.
        assert!(row(&rep, PlatformId::Worlds, ChannelKind::Data).rtt.mean < 5.0);
        assert!(row(&rep, PlatformId::VrChat, ChannelKind::Control).rtt.mean < 5.0);
        assert!(row(&rep, PlatformId::RecRoom, ChannelKind::Data).rtt.mean < 5.0);
        let alts_data = row(&rep, PlatformId::AltspaceVr, ChannelKind::Data).rtt.mean;
        assert!(alts_data > 60.0, "AltspaceVR data RTT {alts_data}");
        let hubs_ctl = row(&rep, PlatformId::Hubs, ChannelKind::Control).rtt.mean;
        assert!(hubs_ctl > 60.0, "Hubs control RTT {hubs_ctl}");
        // Hubs data via RTCP also shows the west-coast RTT.
        let hubs_data = row(&rep, PlatformId::Hubs, ChannelKind::Data).rtt.mean;
        assert!(hubs_data > 60.0, "Hubs RTCP RTT {hubs_data}");
    }

    #[test]
    fn owners_match_whois() {
        let rep = run(Table2Config::quick());
        assert_eq!(row(&rep, PlatformId::RecRoom, ChannelKind::Data).owner, Owner::Cloudflare);
        assert_eq!(row(&rep, PlatformId::RecRoom, ChannelKind::Control).owner, Owner::Ans);
        assert_eq!(row(&rep, PlatformId::VrChat, ChannelKind::Control).owner, Owner::Aws);
        assert_eq!(row(&rep, PlatformId::Worlds, ChannelKind::Data).owner, Owner::Meta);
        assert_eq!(row(&rep, PlatformId::AltspaceVr, ChannelKind::Data).owner, Owner::Microsoft);
    }

    #[test]
    fn display_renders_all_rows() {
        let rep = run(Table2Config::quick());
        let s = rep.to_string();
        assert_eq!(rep.rows.len(), 10);
        assert!(s.contains("RTP/RTCP"));
        assert!(s.contains("Cloudflare"));
    }
}
