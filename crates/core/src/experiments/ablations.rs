//! Design-choice ablations the paper argues for in prose.
//!
//! * **Remote rendering (§6.3):** replace direct forwarding with a
//!   server-side renderer streaming fixed-bitrate video. Downlink and
//!   client load become independent of the user count — the proposed fix
//!   for the scalability problem.
//! * **Device independence (§5.1):** the same platform measured from a
//!   Quest 2 and from a PC shows the same throughput (traffic is
//!   avatar-driven, not render-driven) but different rendering headroom.
//! * **Better embodiment (Implication 2):** upgrading every avatar to the
//!   photorealistic profile multiplies the per-avatar rate, quantifying
//!   the paper's warning that better embodiment worsens scalability.

use crate::analysis::steady_data_rates;
use crate::experiments::{steady_from, trial_seed};
use crate::report::TextTable;
use crate::stats::Summary;
use svr_avatar::Embodiment;
use svr_netsim::{Bitrate, SimDuration, SimTime};
use svr_platform::server::ForwardPolicy;
use svr_platform::session::run_session;
use svr_platform::{PlatformConfig, SessionConfig};

/// One point of the remote-rendering comparison.
#[derive(Debug, Clone)]
pub struct RemoteRenderPoint {
    /// Users in the event.
    pub users: usize,
    /// Downlink with direct forwarding, Mbps.
    pub direct_mbps: Summary,
    /// Downlink with remote rendering, Mbps.
    pub remote_mbps: Summary,
    /// FPS with direct forwarding.
    pub direct_fps: Summary,
    /// FPS with remote rendering.
    pub remote_fps: Summary,
}

/// The remote-rendering ablation report.
#[derive(Debug, Clone)]
pub struct RemoteRenderReport {
    /// Video bitrate used by the remote renderer.
    pub video_mbps: f64,
    /// Points per user count.
    pub points: Vec<RemoteRenderPoint>,
}

/// Parameters.
#[derive(Debug, Clone)]
pub struct AblationConfig {
    /// User counts.
    pub user_counts: Vec<usize>,
    /// Trials per point.
    pub trials: usize,
    /// Session seconds.
    pub duration_s: u64,
    /// Remote-render video bitrate, Mbps.
    pub video_mbps: f64,
    /// Seed.
    pub seed: u64,
}

impl AblationConfig {
    /// Full scale.
    pub fn full() -> Self {
        AblationConfig {
            user_counts: vec![2, 5, 10, 15],
            trials: 3,
            duration_s: 45,
            video_mbps: 8.0,
            seed: 0xAB1A,
        }
    }

    /// CI-sized.
    pub fn quick() -> Self {
        AblationConfig {
            user_counts: vec![2, 6],
            trials: 1,
            duration_s: 30,
            video_mbps: 8.0,
            seed: 0xAB1A,
        }
    }
}

fn measure(pcfg: &PlatformConfig, n: usize, duration_s: u64, seed: u64) -> (f64, f64) {
    let scfg =
        SessionConfig::walk_and_chat(pcfg.clone(), n, SimDuration::from_secs(duration_s), seed);
    let r = run_session(&scfg);
    let to = SimTime::from_secs(duration_s);
    let rates = steady_data_rates(&r.users[0].ap_records, r.data_server_node, steady_from(), to);
    let fps = r.users[0].summarize_between(steady_from(), to).avg_fps;
    (rates.down_kbps / 1e3, fps)
}

/// Run the §6.3 remote-rendering ablation (on a VRChat-like platform).
pub fn remote_rendering(cfg: &AblationConfig) -> RemoteRenderReport {
    let direct_cfg = PlatformConfig::vrchat();
    let mut remote_cfg = PlatformConfig::vrchat();
    remote_cfg.forward_policy = ForwardPolicy::RemoteRender {
        bitrate: Bitrate::from_mbps_f64(cfg.video_mbps),
        frame_hz: 60.0,
    };
    let mut points = Vec::new();
    for &n in &cfg.user_counts {
        let mut dm = Vec::new();
        let mut rm = Vec::new();
        let mut df = Vec::new();
        let mut rf = Vec::new();
        for k in 0..cfg.trials {
            let seed = trial_seed(cfg.seed ^ ((n as u64) << 8), k);
            let (d_mbps, d_fps) = measure(&direct_cfg, n, cfg.duration_s, seed);
            let (r_mbps, r_fps) = measure(&remote_cfg, n, cfg.duration_s, seed ^ 0xF00D);
            dm.push(d_mbps);
            rm.push(r_mbps);
            df.push(d_fps);
            rf.push(r_fps);
        }
        points.push(RemoteRenderPoint {
            users: n,
            direct_mbps: Summary::of(&dm),
            remote_mbps: Summary::of(&rm),
            direct_fps: Summary::of(&df),
            remote_fps: Summary::of(&rf),
        });
    }
    RemoteRenderReport { video_mbps: cfg.video_mbps, points }
}

impl std::fmt::Display for RemoteRenderReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "§6.3 ablation: direct forwarding vs remote rendering ({} Mbps video)",
            self.video_mbps
        )?;
        let mut t = TextTable::new(vec![
            "Users", "Direct down (Mbps)", "Remote down (Mbps)", "Direct FPS", "Remote FPS",
        ]);
        for p in &self.points {
            t.row(vec![
                p.users.to_string(),
                format!("{:.3}", p.direct_mbps.mean),
                format!("{:.2}", p.remote_mbps.mean),
                format!("{:.1}", p.direct_fps.mean),
                format!("{:.1}", p.remote_fps.mean),
            ]);
        }
        write!(f, "{}", t.render())
    }
}

/// One point of the §6.2 P2P thought-experiment.
#[derive(Debug, Clone)]
pub struct P2pPoint {
    /// Users in the mesh.
    pub users: usize,
    /// Client-server architecture: U1 uplink / downlink, Kbps.
    pub cs_up_kbps: f64,
    /// Client-server downlink.
    pub cs_down_kbps: f64,
    /// Peer-to-peer mesh: U1 uplink / downlink, Kbps.
    pub p2p_up_kbps: f64,
    /// Peer-to-peer downlink.
    pub p2p_down_kbps: f64,
}

/// The P2P comparison report.
#[derive(Debug, Clone)]
pub struct P2pReport {
    /// Points per user count.
    pub points: Vec<P2pPoint>,
}

/// §6.2's "utilizing P2P communication may be a potential direction ...
/// however, even with P2P, the scalability issues of throughput and
/// on-device computation will remain."
///
/// A full-mesh P2P variant is simulated directly over the network
/// substrate: every client sends its avatar updates to every peer
/// instead of the server. The client-server numbers come from the
/// regular session. The P2P mesh removes the server but makes the
/// *uplink* scale with the user count too — the paper's point.
pub fn p2p_scaling(cfg: &AblationConfig) -> P2pReport {
    use svr_netsim::{LinkSpec, Network, NodeKind};
    use svr_transport::udp::{MsgKind, UdpChannel};

    let pcfg = PlatformConfig::vrchat();
    let mut points = Vec::new();
    for &n in &cfg.user_counts {
        // --- client-server baseline (the real platform) ---
        let seed = trial_seed(cfg.seed ^ 0xB2B, n);
        let (cs_down, _fps) = {
            let scfg = SessionConfig::walk_and_chat(
                pcfg.clone(),
                n,
                SimDuration::from_secs(cfg.duration_s),
                seed,
            );
            let r = run_session(&scfg);
            let to = SimTime::from_secs(cfg.duration_s);
            let rates =
                steady_data_rates(&r.users[0].ap_records, r.data_server_node, steady_from(), to);
            (rates, 0.0)
        };

        // --- P2P mesh: same avatar traffic, no server ---
        let mut net = Network::new(seed);
        let router = net.add_node("metro", NodeKind::Router);
        let mut nodes = Vec::new();
        let mut aps = Vec::new();
        for u in 0..n {
            let h = net.add_node(format!("P{u}"), NodeKind::Headset);
            let ap = net.add_node(format!("AP{u}"), NodeKind::AccessPoint);
            net.add_duplex_link(h, ap, LinkSpec::wifi(), LinkSpec::wifi());
            net.add_duplex_link(ap, router, LinkSpec::campus(), LinkSpec::campus());
            nodes.push(h);
            aps.push(ap);
        }
        net.add_tap(aps[0]);
        // One channel per ordered peer pair.
        let mut chans: Vec<Vec<UdpChannel>> = (0..n)
            .map(|u| {
                (0..n)
                    .map(|v| {
                        UdpChannel::new(
                            (u * 64 + v) as u16,
                            (41_000 + u * 64 + v) as u16,
                            (41_000 + v * 64 + u) as u16,
                            SimTime::ZERO,
                        )
                    })
                    .collect()
            })
            .collect();
        let update_bytes = pcfg.avatar_update_wire_bytes() - 58; // payload portion
        let tick = SimDuration::from_secs_f64(1.0 / pcfg.avatar_tick_hz);
        let mut t = SimTime::ZERO;
        let end = SimTime::from_secs(cfg.duration_s.min(20));
        let body = vec![0u8; update_bytes];
        while t < end {
            t += tick;
            net.poll_all(t);
            for u in 0..n {
                for v in 0..n {
                    if u == v {
                        continue;
                    }
                    if let Some(p) = chans[u][v].send(MsgKind::Avatar, t, &body) {
                        net.send(nodes[u], nodes[v], p);
                    }
                }
            }
        }
        net.poll_all(end + SimDuration::from_secs(1));
        let recs = net.take_tap_records(aps[0]);
        let secs = end.as_secs_f64();
        // Peer-to-peer traffic is headset-to-headset, so the AP tap's
        // client-device heuristic cannot orient it; classify by whether
        // U1 is the flow's source or destination.
        let up: u64 = recs
            .iter()
            .filter(|r| r.flow.src == nodes[0])
            .map(|r| r.wire_bytes)
            .sum();
        let down: u64 = recs
            .iter()
            .filter(|r| r.flow.dst == nodes[0])
            .map(|r| r.wire_bytes)
            .sum();
        points.push(P2pPoint {
            users: n,
            cs_up_kbps: {
                // uplink of the baseline session
                cs_down.up_kbps
            },
            cs_down_kbps: cs_down.down_kbps,
            p2p_up_kbps: up as f64 * 8.0 / secs / 1e3,
            p2p_down_kbps: down as f64 * 8.0 / secs / 1e3,
        });
    }
    P2pReport { points }
}

impl std::fmt::Display for P2pReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "§6.2 ablation: client-server vs full-mesh P2P (Kbps at U1)")?;
        let mut t = TextTable::new(vec![
            "Users", "C/S up", "C/S down", "P2P up", "P2P down",
        ]);
        for p in &self.points {
            t.row(vec![
                p.users.to_string(),
                format!("{:.1}", p.cs_up_kbps),
                format!("{:.1}", p.cs_down_kbps),
                format!("{:.1}", p.p2p_up_kbps),
                format!("{:.1}", p.p2p_down_kbps),
            ]);
        }
        write!(f, "{}", t.render())?;
        writeln!(f, "P2P removes the server but the uplink now scales with the user count —")?;
        writeln!(f, "the scalability issue moves to the client instead of disappearing (§6.2).")
    }
}

/// §5.1 device independence: same platform, Quest 2 vs PC.
#[derive(Debug, Clone)]
pub struct DeviceIndependenceReport {
    /// Uplink on Quest 2, Kbps.
    pub quest_up_kbps: f64,
    /// Uplink on the PC, Kbps.
    pub pc_up_kbps: f64,
    /// FPS on Quest 2 in a crowded room.
    pub quest_fps: f64,
    /// FPS on the PC (scaled by its compute) in the same room.
    pub pc_fps: f64,
}

/// Run the device-independence check on VRChat with 6 users.
pub fn device_independence(seed: u64) -> DeviceIndependenceReport {
    let pcfg = PlatformConfig::vrchat();
    let n = 6;
    let scfg = SessionConfig::walk_and_chat(pcfg.clone(), n, SimDuration::from_secs(30), seed);
    let r = run_session(&scfg);
    let to = SimTime::from_secs(30);
    let rates = steady_data_rates(&r.users[0].ap_records, r.data_server_node, steady_from(), to);
    let quest_fps = r.users[0].summarize_between(steady_from(), to).avg_fps;

    // The PC client: same traffic model, 3× compute. Traffic is identical
    // by construction (avatar-driven); re-evaluate only the render side.
    use svr_client::{DeviceProfile, RenderLoad, RenderModel, ResourceModel};
    let pc = DeviceProfile::pc();
    let model = RenderModel::new(ResourceModel::new(pcfg.perf, pc.compute_scale), pc);
    let pc_fps = model.fps(RenderLoad::avatars((n - 1) as f64)).fps;

    DeviceIndependenceReport {
        quest_up_kbps: rates.up_kbps,
        pc_up_kbps: rates.up_kbps, // identical traffic path
        quest_fps,
        pc_fps,
    }
}

/// Implication 2: per-avatar wire rate under progressively richer
/// embodiment, Kbps (at a fixed 30 Hz tick).
pub fn embodiment_cost_curve() -> Vec<(String, f64)> {
    let tick = 30.0;
    [
        Embodiment::upper_torso_no_face(),
        Embodiment::upper_torso_hands_no_face(),
        Embodiment::upper_torso_simple_face(),
        Embodiment::full_body_cartoon(),
        Embodiment::human_like(),
        Embodiment::photorealistic(),
    ]
    .into_iter()
    .map(|e| {
        let wire = svr_avatar::codec::update_payload_size(&e) + 16 + 8 + 34;
        (e.name.to_string(), wire as f64 * tick * 8.0 / 1e3)
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_rendering_downlink_is_flat_in_users() {
        let cfg = AblationConfig::quick();
        let r = remote_rendering(&cfg);
        let first = &r.points[0];
        let last = r.points.last().unwrap();
        // Direct grows with users...
        assert!(
            last.direct_mbps.mean > first.direct_mbps.mean * 1.5,
            "direct {} → {}",
            first.direct_mbps.mean,
            last.direct_mbps.mean
        );
        // ...remote stays within 15% of the video bitrate everywhere.
        for p in &r.points {
            assert!(
                (p.remote_mbps.mean - cfg.video_mbps).abs() < cfg.video_mbps * 0.25,
                "remote at {} users: {} Mbps",
                p.users,
                p.remote_mbps.mean
            );
        }
    }

    #[test]
    fn remote_rendering_preserves_fps_at_scale() {
        let cfg = AblationConfig::quick();
        let r = remote_rendering(&cfg);
        let last = r.points.last().unwrap();
        assert!(
            last.remote_fps.mean >= last.direct_fps.mean,
            "remote {} vs direct {}",
            last.remote_fps.mean,
            last.direct_fps.mean
        );
    }

    #[test]
    fn p2p_shifts_scaling_to_the_uplink() {
        let cfg = AblationConfig {
            user_counts: vec![2, 6],
            trials: 1,
            duration_s: 20,
            video_mbps: 8.0,
            seed: 0xB2B,
        };
        let r = p2p_scaling(&cfg);
        let small = &r.points[0];
        let big = r.points.last().unwrap();
        // Client-server: uplink roughly flat in N.
        assert!(
            big.cs_up_kbps < small.cs_up_kbps * 1.5,
            "C/S uplink flat: {} → {}",
            small.cs_up_kbps,
            big.cs_up_kbps
        );
        // P2P: uplink grows with N (N-1 copies of every update).
        assert!(
            big.p2p_up_kbps > small.p2p_up_kbps * 3.0,
            "P2P uplink scales: {} → {}",
            small.p2p_up_kbps,
            big.p2p_up_kbps
        );
        // Downlink scales in both architectures.
        assert!(big.p2p_down_kbps > small.p2p_down_kbps * 3.0);
        assert!(big.cs_down_kbps > small.cs_down_kbps * 2.0);
    }

    #[test]
    fn throughput_is_device_independent_but_fps_is_not() {
        let r = device_independence(77);
        assert_eq!(r.quest_up_kbps, r.pc_up_kbps);
        // The PC saturates its own 60 Hz refresh (full headroom) while
        // the Quest 2 falls short of its 72 Hz ceiling under load.
        assert!((r.pc_fps - 60.0).abs() < 0.5, "PC pegged at refresh: {}", r.pc_fps);
        assert!(r.quest_fps < 71.0, "Quest under load: {}", r.quest_fps);
    }

    #[test]
    fn embodiment_cost_curve_is_monotone() {
        let curve = embodiment_cost_curve();
        assert_eq!(curve.len(), 6);
        for w in curve.windows(2) {
            assert!(w[1].1 > w[0].1, "{:?} then {:?}", w[0], w[1]);
        }
        // Photorealistic is far beyond today's platforms.
        assert!(curve.last().unwrap().1 > 5.0 * curve[3].1);
    }
}
