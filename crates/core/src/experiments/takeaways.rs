//! The paper's Takeaways and Implications as a verifiable checklist.
//!
//! The paper condenses its evaluation into three "Takeaways" boxes
//! (§5.1, §6.3, §8.2) and three "Implications to the Metaverse". This
//! module re-derives each claim from quick experiment runs and reports
//! pass/fail — the repository's self-check that the reproduction still
//! supports every conclusion the paper draws.

use crate::analysis::steady_data_rates;
use crate::experiments::{fig13, fig6, fig7, table2, table3, table4, viewport};
use crate::report::TextTable;
use svr_netsim::{SimDuration, SimTime};
use svr_platform::session::run_session;
use svr_platform::{ChannelKind, PlatformConfig, PlatformId, SessionConfig};

/// One verified claim.
#[derive(Debug, Clone)]
pub struct Claim {
    /// Which box it comes from.
    pub source: &'static str,
    /// The claim, paraphrased.
    pub claim: &'static str,
    /// Whether the reproduction supports it.
    pub holds: bool,
    /// The measured evidence.
    pub evidence: String,
}

/// The full checklist.
#[derive(Debug, Clone)]
pub struct TakeawaysReport {
    /// All verified claims.
    pub claims: Vec<Claim>,
}

impl TakeawaysReport {
    /// Whether every claim holds.
    pub fn all_hold(&self) -> bool {
        self.claims.iter().all(|c| c.holds)
    }
}

/// Run the checklist (quick-fidelity sub-experiments; a few minutes in
/// release mode).
pub fn run() -> TakeawaysReport {
    let mut claims = Vec::new();
    let mut add = |source, claim, holds, evidence: String| {
        claims.push(Claim { source, claim, holds, evidence });
    };

    // ---- Takeaway 1 (§5.1) ----
    let t3 = table3::run(table3::Table3Config::quick());
    let max_kbps = t3
        .rows
        .iter()
        .map(|r| r.up.mean.max(r.down.mean))
        .fold(0.0, f64::max);
    add(
        "Takeaway 1",
        "two-user throughput is below 1 Mbps on every platform",
        max_kbps < 1_000.0,
        format!("max observed {max_kbps:.0} Kbps"),
    );
    let avatar_share: Vec<f64> =
        t3.rows.iter().map(|r| r.avatar.mean / r.down.mean.max(0.01)).collect();
    add(
        "Takeaway 1",
        "avatar embodiment and motion account for a major share of throughput",
        avatar_share.iter().filter(|s| **s > 0.5).count() >= 3,
        format!("avatar/downlink shares: {:?}", avatar_share.iter().map(|s| (s * 100.0).round()).collect::<Vec<_>>()),
    );
    let worlds = t3.rows.iter().find(|r| r.platform == PlatformId::Worlds).unwrap();
    let others_max = t3
        .rows
        .iter()
        .filter(|r| r.platform != PlatformId::Worlds && r.platform != PlatformId::Hubs)
        .map(|r| r.avatar.mean)
        .fold(0.0, f64::max);
    add(
        "Takeaway 1",
        "Worlds' refined avatar needs ~10x the bandwidth of the others",
        worlds.avatar.mean > 6.0 * others_max,
        format!("Worlds {:.0} Kbps vs others ≤{others_max:.0} Kbps", worlds.avatar.mean),
    );

    // ---- Takeaway 2 (§6.3) ----
    let sweep = fig7::run(PlatformId::VrChat, &fig7::ScalingConfig::quick());
    let (slope, r2) = sweep.downlink_linearity();
    add(
        "Takeaway 2",
        "throughput increases almost linearly with the number of users",
        r2 > 0.95 && slope > 0.0,
        format!("slope {slope:.1} Kbps/user, R² {r2:.3}"),
    );
    let f6 = fig6::Fig6Config::quick();
    let alts = fig6::run(PlatformId::AltspaceVr, fig6::Variant::VisibleThenAway, f6);
    let rec = fig6::run(PlatformId::RecRoom, fig6::Variant::VisibleThenAway, f6);
    add(
        "Takeaway 2",
        "only AltspaceVR adopts the viewport-adaptive optimisation",
        alts.down_after_turn() < alts.down_before_turn() * 0.55
            && rec.down_after_turn() > rec.down_before_turn() * 0.8,
        format!(
            "turn cuts AltspaceVR {:.0}→{:.0} Kbps; Rec Room {:.0}→{:.0}",
            alts.down_before_turn(),
            alts.down_after_turn(),
            rec.down_before_turn(),
            rec.down_after_turn()
        ),
    );
    let hubs_sweep = fig7::run(PlatformId::Hubs, &fig7::ScalingConfig::quick());
    let fps_drop = hubs_sweep.fps_drop();
    add(
        "Takeaway 2",
        "on-device utilisation rises and FPS degrades as users grow",
        fps_drop > 0.05,
        format!("Hubs FPS drop {:.0}% over the quick sweep", fps_drop * 100.0),
    );

    // ---- Takeaway 3 (§8.2) ----
    let caps = fig13::run_uplink_caps(&fig13::UplinkCapsConfig::quick());
    add(
        "Takeaway 3",
        "downlink/uplink drops couple with computation (and the session survives rate caps)",
        caps.frozen_at_s.is_none(),
        format!("no UDP death under rate caps (died: {:?})", caps.frozen_at_s),
    );
    let tcp = fig13::run_tcp_priority(&fig13::TcpPriorityConfig::quick());
    add(
        "Takeaway 3",
        "Worlds gives TCP priority over UDP, blocking UDP until TCP delivers",
        tcp.frozen_at_s.is_some() && tcp.countdown_went_stale,
        format!(
            "UDP gaps track TCP delay; 100% TCP loss froze UDP at {:?}s",
            tcp.frozen_at_s
        ),
    );

    // ---- Implication 1 (§4.2) ----
    let t2 = table2::run(table2::Table2Config::quick());
    let far = t2.rows.iter().filter(|r| r.rtt.mean > 60.0).count();
    add(
        "Implication 1",
        "some platforms are not well-provisioned: servers >70 ms from users",
        far >= 2,
        format!("{far} of 10 channels are ≥60 ms away"),
    );

    // ---- Implication 2 (§5.2) ----
    let curve = crate::experiments::ablations::embodiment_cost_curve();
    let monotone = curve.windows(2).all(|w| w[1].1 > w[0].1);
    add(
        "Implication 2",
        "better avatar embodiment costs strictly more bandwidth",
        monotone,
        format!(
            "{} → {} Kbps across embodiment tiers",
            curve.first().map(|c| c.1.round()).unwrap_or(0.0),
            curve.last().map(|c| c.1.round()).unwrap_or(0.0)
        ),
    );

    // ---- Implication 3 (§6.2) ----
    let probe = viewport::run(PlatformId::AltspaceVr, viewport::ViewportConfig::quick());
    add(
        "Implication 3",
        "viewport adaptation helps only partially (saving bounded by the ~150° window)",
        probe.max_saving > 0.3 && probe.max_saving < 0.8,
        format!("width {:.0}°, max saving {:.0}%", probe.estimated_width_deg, probe.max_saving * 100.0),
    );

    // ---- §7 headline ----
    let t4 = table4::run(table4::Table4Config::quick());
    let over_150: Vec<&str> = t4
        .rows
        .iter()
        .filter(|r| r.breakdown.e2e.mean > 150.0 && r.label != "Hubs*")
        .map(|r| r.label.as_str())
        .collect();
    add(
        "§7",
        "Hubs and AltspaceVR exceed the 150 ms immersive-collaboration threshold",
        over_150.contains(&"Hubs") && over_150.contains(&"AltspaceVR") && over_150.len() == 2,
        format!("platforms over 150 ms: {over_150:?}"),
    );

    // ---- §4.1: no remote rendering in production ----
    let cfg = SessionConfig::walk_and_chat(
        PlatformConfig::vrchat(),
        2,
        SimDuration::from_secs(25),
        0x7A7A,
    );
    let r = run_session(&cfg);
    let rates = steady_data_rates(
        &r.users[0].ap_records,
        r.data_server_node,
        SimTime::from_secs(10),
        SimTime::from_secs(25),
    );
    add(
        "§6.3",
        "local rendering everywhere: data rates are far below video-streaming rates",
        rates.down_kbps < 1_000.0,
        format!("{:.0} Kbps vs >10,000 Kbps for 1080p60 video", rates.down_kbps),
    );
    let _ = ChannelKind::Data; // (channel classification exercised above)

    TakeawaysReport { claims }
}

impl std::fmt::Display for TakeawaysReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Paper findings checklist ({} claims)", self.claims.len())?;
        let mut t = TextTable::new(vec!["Source", "Claim", "Holds", "Evidence"]);
        for c in &self.claims {
            t.row(vec![
                c.source.to_string(),
                c.claim.to_string(),
                if c.holds { "PASS" } else { "FAIL" }.to_string(),
                c.evidence.clone(),
            ]);
        }
        write!(f, "{}", t.render())?;
        writeln!(
            f,
            "{}",
            if self.all_hold() { "All findings hold." } else { "SOME FINDINGS FAILED." }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_paper_finding_holds() {
        let report = run();
        for c in &report.claims {
            assert!(c.holds, "[{}] {} — evidence: {}", c.source, c.claim, c.evidence);
        }
        assert!(report.claims.len() >= 12);
        let s = report.to_string();
        assert!(s.contains("All findings hold."));
    }
}
