//! §8.2: latency and packet-loss disruption tolerance.
//!
//! Added one-way latency of 50–500 ms is injected on U1's links while a
//! shooter game runs on Worlds, Rec Room, and VRChat; the measured E2E
//! action latency shifts by roughly the injected amount, and the paper's
//! usability findings are checked: ~50 ms of extra latency is already
//! enough to hurt a shooter, while walk-and-chat only suffers past
//! ~300 ms total. Packet loss up to 20 % is separately shown to be
//! imperceptible: avatar updates keep flowing and FPS is unaffected.

use crate::experiments::trial_seed;
use crate::report::TextTable;
use crate::stats::Summary;
use svr_netsim::{Impairment, NetemSchedule, NetemStage, SimDuration, SimTime};
use svr_platform::session::run_session;
use svr_platform::{Behavior, PlatformConfig, PlatformId, SessionConfig};

/// Latency tolerance for one platform at one injected delay.
#[derive(Debug, Clone)]
pub struct LatencyPoint {
    /// Injected extra one-way latency, ms.
    pub added_ms: u64,
    /// Measured E2E action latency, ms.
    pub e2e_ms: Summary,
    /// Whether the shooter experience is degraded (roughly ≥50 ms over
    /// baseline, the paper's finding; the impairment sits on U1's uplink
    /// so the one-way shift is what the peer perceives).
    pub game_degraded: bool,
}

/// Loss tolerance at one loss rate.
#[derive(Debug, Clone)]
pub struct LossPoint {
    /// Injected loss, percent.
    pub loss_pct: f64,
    /// Fraction of expected avatar updates that still arrived.
    pub delivery_ratio: f64,
    /// Average FPS during the lossy window.
    pub fps: f64,
    /// 95th-percentile dead-reckoning pop, metres — below
    /// [`svr_avatar::prediction::PERCEPTIBLE_POP_M`] the loss is
    /// invisible to users.
    pub p95_pop_m: f32,
}

/// The §8.2 report for one platform.
#[derive(Debug, Clone)]
pub struct DisruptionReport {
    /// Platform.
    pub platform: PlatformId,
    /// Baseline E2E with no impairment, ms.
    pub baseline_e2e_ms: Summary,
    /// Latency sweep.
    pub latency: Vec<LatencyPoint>,
    /// Loss sweep.
    pub loss: Vec<LossPoint>,
}

/// Parameters.
#[derive(Debug, Clone)]
pub struct DisruptionConfig {
    /// Added latencies, ms (paper: 50/100/200/300/400/500).
    pub latencies_ms: Vec<u64>,
    /// Loss rates, percent (paper: 1/3/5/7/10/20).
    pub losses_pct: Vec<f64>,
    /// Actions per run.
    pub actions: usize,
    /// Seed.
    pub seed: u64,
}

impl DisruptionConfig {
    /// Paper fidelity.
    pub fn full() -> Self {
        DisruptionConfig {
            latencies_ms: vec![50, 100, 200, 300, 400, 500],
            losses_pct: vec![1.0, 3.0, 5.0, 7.0, 10.0, 20.0],
            actions: 10,
            seed: 0xD152,
        }
    }

    /// CI-sized.
    pub fn quick() -> Self {
        DisruptionConfig {
            latencies_ms: vec![50, 200],
            losses_pct: vec![5.0, 20.0],
            actions: 5,
            seed: 0xD152,
        }
    }
}

fn game_session(
    pcfg: &PlatformConfig,
    seed: u64,
    actions: usize,
    netem: Option<NetemSchedule>,
) -> (Summary, f64, f64, f32) {
    let duration_s = 14 + actions as u64 * 2;
    let mut scfg = SessionConfig::walk_and_chat(
        pcfg.clone(),
        2,
        SimDuration::from_secs(duration_s),
        seed,
    );
    scfg.behaviors.push(Behavior::StartGame { at: SimTime::from_secs(7) });
    for a in 0..actions {
        scfg.behaviors
            .push(Behavior::Action { user: 0, at: SimTime::from_secs(12 + a as u64 * 2) });
    }
    scfg.netem_uplink = netem.clone();
    scfg.netem_downlink = netem;
    let r = run_session(&scfg);
    let e2e: Vec<f64> = r
        .actions
        .iter()
        .filter(|a| a.to == 1)
        .map(|a| a.e2e().as_millis_f64())
        .collect();
    let expected =
        pcfg.avatar_tick_hz * (duration_s as f64 - 10.0);
    let delivery = r.users[0].avatar_updates_received as f64 / expected;
    let fps = r.users[0]
        .summarize_between(SimTime::from_secs(10), SimTime::from_secs(duration_s))
        .avg_fps;
    (Summary::of(&e2e), delivery.min(1.2), fps, r.users[0].prediction_p95_m)
}

/// Run the §8.2 sweep for one platform.
pub fn run(platform: PlatformId, cfg: &DisruptionConfig) -> DisruptionReport {
    let pcfg = PlatformConfig::of(platform);
    let (baseline, _, _, _) = game_session(&pcfg, trial_seed(cfg.seed, 0), cfg.actions, None);

    let mut latency = Vec::new();
    for (i, ms) in cfg.latencies_ms.iter().enumerate() {
        let sched = NetemSchedule::from_stages(vec![NetemStage {
            start: SimTime::ZERO,
            end: SimTime::from_secs(100_000),
            impairment: Impairment::delay(SimDuration::from_millis(*ms)),
        }]);
        let (e2e, _, _, _) =
            game_session(&pcfg, trial_seed(cfg.seed, i + 1), cfg.actions, Some(sched));
        latency.push(LatencyPoint {
            added_ms: *ms,
            e2e_ms: e2e,
            game_degraded: e2e.mean - baseline.mean >= 40.0,
        });
    }

    let mut loss = Vec::new();
    for (i, pct) in cfg.losses_pct.iter().enumerate() {
        let sched = NetemSchedule::from_stages(vec![NetemStage {
            start: SimTime::ZERO,
            end: SimTime::from_secs(100_000),
            impairment: Impairment::loss(pct / 100.0),
        }]);
        let (_, delivery, fps, pop) =
            game_session(&pcfg, trial_seed(cfg.seed, 100 + i), cfg.actions, Some(sched));
        loss.push(LossPoint { loss_pct: *pct, delivery_ratio: delivery, fps, p95_pop_m: pop });
    }

    DisruptionReport { platform, baseline_e2e_ms: baseline, latency, loss }
}

impl std::fmt::Display for DisruptionReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "§8.2 disruption tolerance ({}), baseline E2E {:.1} ms",
            self.platform, self.baseline_e2e_ms.mean
        )?;
        let mut t = TextTable::new(vec!["Added latency (ms)", "E2E (ms)", "Game degraded?"]);
        for p in &self.latency {
            t.row(vec![
                p.added_ms.to_string(),
                format!("{:.1}", p.e2e_ms.mean),
                if p.game_degraded { "yes" } else { "no" }.to_string(),
            ]);
        }
        write!(f, "{}", t.render())?;
        let mut t2 = TextTable::new(vec!["Loss (%)", "Delivery ratio", "FPS", "p95 pop (m)"]);
        for p in &self.loss {
            t2.row(vec![
                format!("{:.0}", p.loss_pct),
                format!("{:.2}", p.delivery_ratio),
                format!("{:.1}", p.fps),
                format!("{:.3}", p.p95_pop_m),
            ]);
        }
        write!(f, "{}", t2.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifty_ms_already_degrades_the_shooter() {
        let cfg = DisruptionConfig::quick();
        let r = run(PlatformId::RecRoom, &cfg);
        let p50 = r.latency.iter().find(|p| p.added_ms == 50).unwrap();
        // 50 ms injected on U1's uplink shifts the peer-perceived E2E by
        // ~50 ms: enough to degrade a shooter (§8.2).
        assert!(p50.game_degraded, "E2E {:.1} vs baseline {:.1}", p50.e2e_ms.mean, r.baseline_e2e_ms.mean);
    }

    #[test]
    fn injected_latency_shows_up_in_e2e() {
        let cfg = DisruptionConfig::quick();
        let r = run(PlatformId::VrChat, &cfg);
        let p200 = r.latency.iter().find(|p| p.added_ms == 200).unwrap();
        let added = p200.e2e_ms.mean - r.baseline_e2e_ms.mean;
        // 200 ms added on U1's uplink appears ~1:1 in the U1→U2 path.
        assert!(
            (150.0..320.0).contains(&added),
            "E2E rose by {added:.1} ms for 200 ms injected"
        );
    }

    #[test]
    fn twenty_percent_loss_is_imperceptible() {
        let cfg = DisruptionConfig::quick();
        let r = run(PlatformId::RecRoom, &cfg);
        let p20 = r.loss.iter().find(|p| p.loss_pct == 20.0).unwrap();
        // Updates keep flowing (roughly 1 − (1−0.2)² ≈ 36% path loss on
        // two impaired hops still leaves a steady stream) and FPS holds.
        assert!(p20.delivery_ratio > 0.4, "delivery {}", p20.delivery_ratio);
        assert!(p20.fps > 60.0, "FPS {}", p20.fps);
        // Dead reckoning keeps positional pops below perceptibility.
        assert!(
            p20.p95_pop_m < svr_avatar::prediction::PERCEPTIBLE_POP_M * 2.0,
            "p95 pop {} m",
            p20.p95_pop_m
        );
    }
}
