//! Figure 7: average downlink throughput and FPS vs number of users —
//! and the shared user-count sweep that Figure 8 reads its resource
//! columns from.
//!
//! For each user count (paper: 1,2,3,4,5 controlled + 7,10,12,15 public)
//! and each platform, `trials` seeded sessions run with everyone
//! wandering; U1's steady-state downlink, FPS, CPU, GPU and memory are
//! aggregated with 95 % CIs.

use crate::analysis::steady_data_rates;
use crate::experiments::{steady_from, trial_seed};
use crate::report::TextTable;
use crate::stats::{linear_fit, Summary};
use svr_netsim::{SimDuration, SimTime};
use svr_platform::session::run_session;
use svr_platform::{PlatformConfig, PlatformId, SessionConfig};

/// Measurements at one user count.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Number of concurrent users.
    pub users: usize,
    /// U1 downlink, Kbps.
    pub down_kbps: Summary,
    /// U1 average FPS.
    pub fps: Summary,
    /// U1 average stale frames per second.
    pub stale: Summary,
    /// U1 CPU %.
    pub cpu: Summary,
    /// U1 GPU %.
    pub gpu: Summary,
    /// U1 memory MB.
    pub memory_mb: Summary,
}

/// The sweep for one platform.
#[derive(Debug, Clone)]
pub struct ScalingReport {
    /// Platform.
    pub platform: PlatformId,
    /// One point per user count.
    pub points: Vec<ScalePoint>,
}

/// Parameters.
#[derive(Debug, Clone)]
pub struct ScalingConfig {
    /// User counts to sweep (paper: 1,2,3,4,5,7,10,12,15).
    pub user_counts: Vec<usize>,
    /// Trials per point.
    pub trials: usize,
    /// Session length per trial, seconds.
    pub duration_s: u64,
    /// Base seed.
    pub seed: u64,
}

impl ScalingConfig {
    /// Paper fidelity.
    pub fn full() -> Self {
        ScalingConfig {
            user_counts: vec![1, 2, 3, 4, 5, 7, 10, 12, 15],
            trials: 5,
            duration_s: 60,
            seed: 0xF167,
        }
    }

    /// CI-sized.
    pub fn quick() -> Self {
        ScalingConfig { user_counts: vec![1, 3, 5], trials: 1, duration_s: 30, seed: 0xF167 }
    }
}

/// Run the sweep for one platform.
pub fn run(platform: PlatformId, cfg: &ScalingConfig) -> ScalingReport {
    let pcfg = PlatformConfig::of(platform);
    let mut points = Vec::new();
    for &n in &cfg.user_counts {
        let mut down = Vec::new();
        let mut fps = Vec::new();
        let mut stale = Vec::new();
        let mut cpu = Vec::new();
        let mut gpu = Vec::new();
        let mut mem = Vec::new();
        for k in 0..cfg.trials {
            let seed = trial_seed(cfg.seed ^ ((platform as u64) << 16) ^ ((n as u64) << 8), k);
            let scfg = SessionConfig::walk_and_chat(
                pcfg.clone(),
                n,
                SimDuration::from_secs(cfg.duration_s),
                seed,
            );
            let r = run_session(&scfg);
            let to = SimTime::from_secs(cfg.duration_s);
            let rates =
                steady_data_rates(&r.users[0].ap_records, r.data_server_node, steady_from(), to);
            down.push(rates.down_kbps);
            let summary = r.users[0].summarize_between(steady_from(), to);
            fps.push(summary.avg_fps);
            stale.push(summary.avg_stale);
            cpu.push(summary.avg_cpu);
            gpu.push(summary.avg_gpu);
            mem.push(summary.avg_memory_mb);
        }
        points.push(ScalePoint {
            users: n,
            down_kbps: Summary::of(&down),
            fps: Summary::of(&fps),
            stale: Summary::of(&stale),
            cpu: Summary::of(&cpu),
            gpu: Summary::of(&gpu),
            memory_mb: Summary::of(&mem),
        });
    }
    ScalingReport { platform, points }
}

/// Run for all five platforms.
pub fn run_all(cfg: &ScalingConfig) -> Vec<ScalingReport> {
    PlatformId::ALL.into_iter().map(|p| run(p, cfg)).collect()
}

impl ScalingReport {
    /// Least-squares fit of downlink (Kbps) against user count — §6's
    /// "increases almost linearly" check. Returns `(slope, r²)`.
    pub fn downlink_linearity(&self) -> (f64, f64) {
        let x: Vec<f64> = self.points.iter().map(|p| p.users as f64).collect();
        let y: Vec<f64> = self.points.iter().map(|p| p.down_kbps.mean).collect();
        let (slope, _b, r2) = linear_fit(&x, &y);
        (slope, r2)
    }

    /// FPS drop fraction from the first to the last point.
    pub fn fps_drop(&self) -> f64 {
        let first = self.points.first().map(|p| p.fps.mean).unwrap_or(0.0);
        let last = self.points.last().map(|p| p.fps.mean).unwrap_or(0.0);
        if first <= 0.0 {
            return 0.0;
        }
        (first - last) / first
    }
}

impl std::fmt::Display for ScalingReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Fig. 7/8 sweep ({}):", self.platform)?;
        let mut t = TextTable::new(vec![
            "Users", "Down (Kbps)", "FPS", "Stale/s", "CPU %", "GPU %", "Mem (MB)",
        ]);
        for p in &self.points {
            t.row(vec![
                p.users.to_string(),
                format!("{:.1}±{:.1}", p.down_kbps.mean, p.down_kbps.ci95),
                format!("{:.1}±{:.1}", p.fps.mean, p.fps.ci95),
                format!("{:.1}", p.stale.mean),
                format!("{:.1}±{:.1}", p.cpu.mean, p.cpu.ci95),
                format!("{:.1}±{:.1}", p.gpu.mean, p.gpu.ci95),
                format!("{:.0}", p.memory_mb.mean),
            ]);
        }
        write!(f, "{}", t.render())?;
        let (slope, r2) = self.downlink_linearity();
        writeln!(f, "downlink vs users: slope {slope:.1} Kbps/user, R² {r2:.3}; FPS drop {:.0}%", self.fps_drop() * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downlink_grows_linearly_with_users() {
        let cfg = ScalingConfig::quick();
        let r = run(PlatformId::VrChat, &cfg);
        let (slope, r2) = r.downlink_linearity();
        // §6: almost-linear growth with slope ≈ per-avatar rate (~25 Kbps).
        assert!(r2 > 0.95, "linearity R² {r2}");
        assert!((15.0..40.0).contains(&slope), "slope {slope} Kbps/user");
    }

    #[test]
    fn fps_declines_with_users() {
        let cfg = ScalingConfig::quick();
        let r = run(PlatformId::Hubs, &cfg);
        let first = r.points.first().unwrap().fps.mean;
        let last = r.points.last().unwrap().fps.mean;
        assert!(first > last + 2.0, "Hubs FPS {first} → {last}");
    }

    #[test]
    fn worlds_downlink_dwarfs_the_rest() {
        let cfg = ScalingConfig::quick();
        let worlds = run(PlatformId::Worlds, &cfg);
        let vrchat = run(PlatformId::VrChat, &cfg);
        let w = worlds.points.last().unwrap().down_kbps.mean;
        let v = vrchat.points.last().unwrap().down_kbps.mean;
        assert!(w > 5.0 * v, "Worlds {w} vs VRChat {v}");
    }

    #[test]
    fn memory_grows_modestly() {
        let cfg = ScalingConfig::quick();
        let r = run(PlatformId::RecRoom, &cfg);
        let first = r.points.first().unwrap().memory_mb.mean;
        let last = r.points.last().unwrap().memory_mb.mean;
        let per_avatar = (last - first)
            / (r.points.last().unwrap().users - r.points.first().unwrap().users) as f64;
        assert!((5.0..20.0).contains(&per_avatar), "≈10 MB/avatar, got {per_avatar}");
    }
}
