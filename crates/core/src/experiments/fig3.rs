//! Figure 3: U1's uplink matches U2's downlink.
//!
//! §5.1 infers direct forwarding from the instantaneous match between
//! one user's uplink and the other's downlink. We script U1 with stop-go
//! motion (walk 5 s, stand 5 s): the delta-encoded avatar traffic rises
//! and falls with motion, and the same pattern must appear — shifted by
//! the forwarding latency — in U2's downlink. The report carries both
//! per-second series and their Pearson correlation.

use crate::analysis::RateSeries;
use crate::stats::pearson;
use svr_netsim::capture::{by_server, Direction};
use svr_netsim::{SimDuration, SimTime};
use svr_platform::session::run_session;
use svr_platform::{Behavior, PlatformConfig, PlatformId, SessionConfig};

/// Series pair + correlation for one platform.
#[derive(Debug, Clone)]
pub struct Fig3Report {
    /// Platform.
    pub platform: PlatformId,
    /// U1 uplink, Kbps per second.
    pub u1_up: RateSeries,
    /// U2 downlink, Kbps per second.
    pub u2_down: RateSeries,
    /// Pearson correlation over the steady window.
    pub correlation: f64,
}

/// Parameters.
#[derive(Debug, Clone, Copy)]
pub struct Fig3Config {
    /// Trace length, seconds.
    pub duration_s: u64,
    /// Seed.
    pub seed: u64,
}

impl Fig3Config {
    /// Paper-scale trace.
    pub fn full() -> Self {
        Fig3Config { duration_s: 120, seed: 0xF163 }
    }

    /// CI-sized.
    pub fn quick() -> Self {
        Fig3Config { duration_s: 60, seed: 0xF163 }
    }
}

/// Run for one platform.
pub fn run(platform: PlatformId, cfg: Fig3Config) -> Fig3Report {
    let pcfg = PlatformConfig::of(platform);
    let duration = SimDuration::from_secs(cfg.duration_s);
    let mut scfg = SessionConfig::walk_and_chat(pcfg, 2, duration, cfg.seed);
    // Stop-go script for U1: walk ~5 s, stand ~5 s. U2 stands still.
    scfg.behaviors = vec![
        Behavior::Join { user: 0, at: SimTime::from_secs(2) },
        Behavior::Join { user: 1, at: SimTime::from_secs(2) },
    ];
    let mut toggle = false;
    let mut t = 5u64;
    while t < cfg.duration_s {
        let (x, z) = if toggle { (3.0, 3.0) } else { (-3.0, -3.0) };
        scfg.behaviors.push(Behavior::WalkTo { user: 0, at: SimTime::from_secs(t), x, z });
        toggle = !toggle;
        t += 10;
    }
    let result = run_session(&scfg);

    let u1_data = by_server(&result.users[0].ap_records, result.data_server_node);
    let u2_data = by_server(&result.users[1].ap_records, result.data_server_node);
    let u1_up = RateSeries::from_records(&u1_data, Direction::Uplink, duration);
    let u2_down = RateSeries::from_records(&u2_data, Direction::Downlink, duration);

    // Correlate over the steady window (skip join & tail).
    let from = 6usize;
    let to = cfg.duration_s as usize - 1;
    let correlation = pearson(&u1_up.kbps[from..to], &u2_down.kbps[from..to]);

    Fig3Report { platform, u1_up, u2_down, correlation }
}

impl std::fmt::Display for Fig3Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Fig. 3 ({}): U1 uplink vs U2 downlink, Pearson r = {:.3}",
            self.platform, self.correlation
        )?;
        let pts = |s: &RateSeries| -> Vec<(f64, f64)> {
            s.kbps.iter().enumerate().step_by(5).map(|(i, v)| (i as f64, *v)).collect()
        };
        writeln!(f, "{}", crate::report::series_line("  U1 up   (Kbps)", &pts(&self.u1_up)))?;
        writeln!(f, "{}", crate::report::series_line("  U2 down (Kbps)", &pts(&self.u2_down)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recroom_uplink_reappears_in_peer_downlink() {
        let r = run(PlatformId::RecRoom, Fig3Config::quick());
        assert!(
            r.correlation > 0.6,
            "direct forwarding should correlate the series: r = {}",
            r.correlation
        );
    }

    #[test]
    fn worlds_trend_matches_despite_kept_telemetry() {
        // For Worlds only the *trend* matches (§5.1): the server keeps
        // telemetry, so levels differ but motion-driven swings survive.
        let r = run(PlatformId::Worlds, Fig3Config::quick());
        assert!(r.correlation > 0.5, "r = {}", r.correlation);
        // Levels differ: uplink mean well above downlink mean.
        let up = r.u1_up.mean_kbps(6, r.u1_up.len());
        let down = r.u2_down.mean_kbps(6, r.u2_down.len());
        assert!(up > down * 1.3, "up {up} vs down {down}");
    }

    #[test]
    fn motion_modulates_the_rate() {
        // The stop-go script must actually produce rate variation —
        // otherwise the correlation above would be vacuous.
        let r = run(PlatformId::RecRoom, Fig3Config::quick());
        let w = &r.u1_up.kbps[6..];
        let max = w.iter().cloned().fold(0.0, f64::max);
        let min = w.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max > min * 1.3, "rate swing: {min}..{max}");
    }
}
