//! Figure 8: CPU / GPU utilisation and memory footprint vs user count.
//!
//! Reads the same sweep as Figure 7 (the paper collected both from one
//! set of runs via the OVR Metrics Tool) and reports the resource
//! columns, plus the §6.2 findings as checked properties: Hubs' CPU is
//! the highest and approaches 100 % at 15 users; AltspaceVR shifts the
//! extra load to the GPU while the others lean on the CPU; memory grows
//! ~10 MB per avatar with Worlds owning the largest footprint.

use crate::experiments::fig7::{run as run_sweep, ScalingConfig, ScalingReport};
use svr_platform::PlatformId;

/// The Figure 8 report: resource views over the shared sweep.
#[derive(Debug, Clone)]
pub struct Fig8Report {
    /// Per-platform sweeps.
    pub sweeps: Vec<ScalingReport>,
}

/// Run the resource sweep for all platforms.
pub fn run(cfg: &ScalingConfig) -> Fig8Report {
    Fig8Report { sweeps: PlatformId::ALL.into_iter().map(|p| run_sweep(p, cfg)).collect() }
}

impl Fig8Report {
    /// The sweep for one platform.
    pub fn of(&self, id: PlatformId) -> &ScalingReport {
        self.sweeps.iter().find(|s| s.platform == id).expect("platform present")
    }

    /// CPU and GPU growth (first → last point) for a platform.
    pub fn growth(&self, id: PlatformId) -> (f64, f64) {
        let s = self.of(id);
        let first = s.points.first().unwrap();
        let last = s.points.last().unwrap();
        (last.cpu.mean - first.cpu.mean, last.gpu.mean - first.gpu.mean)
    }
}

impl std::fmt::Display for Fig8Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Fig. 8: CPU/GPU/memory vs users")?;
        for s in &self.sweeps {
            let first = s.points.first().unwrap();
            let last = s.points.last().unwrap();
            writeln!(
                f,
                "  {:<11} CPU {:>5.1}% → {:>5.1}%   GPU {:>5.1}% → {:>5.1}%   Mem {:>6.0} → {:>6.0} MB",
                s.platform.to_string(),
                first.cpu.mean,
                last.cpu.mean,
                first.gpu.mean,
                last.gpu.mean,
                first.memory_mb.mean,
                last.memory_mb.mean,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Fig8Report {
        run(&ScalingConfig::quick())
    }

    #[test]
    fn hubs_cpu_is_highest() {
        let r = quick();
        let hubs = r.of(PlatformId::Hubs).points.last().unwrap().cpu.mean;
        for id in [PlatformId::AltspaceVr, PlatformId::RecRoom, PlatformId::VrChat, PlatformId::Worlds] {
            let other = r.of(id).points.last().unwrap().cpu.mean;
            assert!(hubs > other, "Hubs {hubs} vs {id} {other}");
        }
    }

    #[test]
    fn altspace_is_gpu_leaning_others_cpu_leaning() {
        let r = quick();
        let (alt_cpu, alt_gpu) = r.growth(PlatformId::AltspaceVr);
        assert!(alt_gpu > alt_cpu, "AltspaceVR: ΔCPU {alt_cpu} vs ΔGPU {alt_gpu}");
        for id in [PlatformId::RecRoom, PlatformId::VrChat, PlatformId::Worlds] {
            let (dc, dg) = r.growth(id);
            assert!(dc > dg, "{id}: ΔCPU {dc} vs ΔGPU {dg}");
        }
    }

    #[test]
    fn worlds_memory_is_largest() {
        let r = quick();
        let worlds = r.of(PlatformId::Worlds).points.last().unwrap().memory_mb.mean;
        for id in [PlatformId::AltspaceVr, PlatformId::Hubs, PlatformId::RecRoom, PlatformId::VrChat] {
            let other = r.of(id).points.last().unwrap().memory_mb.mean;
            assert!(worlds > other, "Worlds {worlds} vs {id} {other}");
        }
    }

    #[test]
    fn display_lists_all_platforms() {
        let s = quick().to_string();
        for id in PlatformId::ALL {
            assert!(s.contains(id.name()));
        }
    }
}
