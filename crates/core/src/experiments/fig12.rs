//! Figure 12: Worlds' shooter under downlink throttling.
//!
//! Two users play the Arena-Clash-like game; U1's downlink is capped at
//! 1.0/0.7/0.5/0.3/0.2/0.1 Mbps in 40-second stages, then released. The
//! report carries per-second uplink/downlink throughput, CPU/GPU
//! utilisation, and FPS/stale-frame series, reproducing the paper's three
//! panels: throughput clamps to the cap, CPU climbs toward 100 % as the
//! client reconciles missing state, the uplink destabilises, and FPS
//! collapses while stale frames surge.

use crate::analysis::RateSeries;
use svr_netsim::capture::{by_server, Direction};
use svr_netsim::{Bitrate, Impairment, NetemSchedule, SimDuration, SimTime};
use svr_platform::session::run_session;
use svr_platform::{Behavior, PlatformConfig, SessionConfig};

/// Per-second traces of the disruption run.
#[derive(Debug, Clone)]
pub struct Fig12Report {
    /// Stage rate caps in Mbps, in order.
    pub stages_mbps: Vec<f64>,
    /// Stage length, seconds.
    pub stage_s: u64,
    /// First stage start, seconds.
    pub start_s: u64,
    /// U1 uplink (Mbps per second).
    pub up_mbps: Vec<f64>,
    /// U1 downlink (Mbps per second).
    pub down_mbps: Vec<f64>,
    /// U1 CPU % per second.
    pub cpu: Vec<f64>,
    /// U1 GPU % per second.
    pub gpu: Vec<f64>,
    /// U1 FPS per second.
    pub fps: Vec<f64>,
    /// U1 stale frames per second.
    pub stale: Vec<f64>,
}

/// Parameters.
#[derive(Debug, Clone)]
pub struct Fig12Config {
    /// Rate caps per stage, Mbps (paper: 1.0 … 0.1).
    pub stages_mbps: Vec<f64>,
    /// Stage length (paper: 40 s).
    pub stage_s: u64,
    /// Recovery tail (paper: 60 s).
    pub tail_s: u64,
    /// Time before the first stage (game warm-up).
    pub start_s: u64,
    /// Seed.
    pub seed: u64,
}

impl Fig12Config {
    /// Paper fidelity.
    pub fn full() -> Self {
        Fig12Config {
            stages_mbps: vec![1.0, 0.7, 0.5, 0.3, 0.2, 0.1],
            stage_s: 40,
            tail_s: 60,
            start_s: 20,
            seed: 0xF1612,
        }
    }

    /// CI-sized.
    pub fn quick() -> Self {
        Fig12Config {
            stages_mbps: vec![0.7, 0.2],
            stage_s: 12,
            tail_s: 12,
            start_s: 10,
            seed: 0xF1612,
        }
    }

    /// Total run length.
    pub fn duration_s(&self) -> u64 {
        self.start_s + self.stage_s * self.stages_mbps.len() as u64 + self.tail_s
    }
}

/// Run the experiment.
pub fn run(cfg: &Fig12Config) -> Fig12Report {
    let pcfg = PlatformConfig::worlds();
    let duration = SimDuration::from_secs(cfg.duration_s());
    let mut scfg = SessionConfig::walk_and_chat(pcfg, 2, duration, cfg.seed);
    scfg.behaviors.push(Behavior::StartGame { at: SimTime::from_secs(7) });
    let imps: Vec<Impairment> = cfg
        .stages_mbps
        .iter()
        .map(|m| Impairment::rate(Bitrate::from_mbps_f64(*m)))
        .collect();
    scfg.netem_downlink = Some(NetemSchedule::staircase(
        SimTime::from_secs(cfg.start_s),
        SimDuration::from_secs(cfg.stage_s),
        &imps,
    ));
    let r = run_session(&scfg);

    let data = by_server(&r.users[0].ap_records, r.data_server_node);
    let up = RateSeries::from_records(&data, Direction::Uplink, duration);
    let down = RateSeries::from_records(&data, Direction::Downlink, duration);
    let samples = &r.users[0].samples;
    Fig12Report {
        stages_mbps: cfg.stages_mbps.clone(),
        stage_s: cfg.stage_s,
        start_s: cfg.start_s,
        up_mbps: up.kbps.iter().map(|k| k / 1e3).collect(),
        down_mbps: down.kbps.iter().map(|k| k / 1e3).collect(),
        cpu: samples.iter().map(|s| s.cpu).collect(),
        gpu: samples.iter().map(|s| s.gpu).collect(),
        fps: samples.iter().map(|s| s.fps).collect(),
        stale: samples.iter().map(|s| s.stale).collect(),
    }
}

impl Fig12Report {
    /// Second-range of stage `k`.
    pub fn stage_window(&self, k: usize) -> (usize, usize) {
        let start = self.start_s as usize + self.stage_s as usize * k;
        (start + 2, start + self.stage_s as usize)
    }

    /// Mean of a series over a window.
    pub fn mean(series: &[f64], from: usize, to: usize) -> f64 {
        let to = to.min(series.len());
        if from >= to {
            return 0.0;
        }
        series[from..to].iter().sum::<f64>() / (to - from) as f64
    }

    /// Mean downlink during stage `k`, Mbps.
    pub fn down_in_stage(&self, k: usize) -> f64 {
        let (a, b) = self.stage_window(k);
        Self::mean(&self.down_mbps, a, b)
    }
}

impl std::fmt::Display for Fig12Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Fig. 12: Worlds shooter, downlink caps {:?} Mbps ({}s stages from {}s)",
            self.stages_mbps, self.stage_s, self.start_s
        )?;
        let pts = |s: &[f64]| -> Vec<(f64, f64)> {
            s.iter().enumerate().step_by(4).map(|(i, v)| (i as f64, *v)).collect()
        };
        writeln!(f, "{}", crate::report::series_line("  uplink  (Mbps)", &pts(&self.up_mbps)))?;
        writeln!(f, "{}", crate::report::series_line("  downlink(Mbps)", &pts(&self.down_mbps)))?;
        writeln!(f, "{}", crate::report::series_line("  CPU (%)       ", &pts(&self.cpu)))?;
        writeln!(f, "{}", crate::report::series_line("  GPU (%)       ", &pts(&self.gpu)))?;
        writeln!(f, "{}", crate::report::series_line("  FPS           ", &pts(&self.fps)))?;
        writeln!(f, "{}", crate::report::series_line("  stale/s       ", &pts(&self.stale)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn game_traffic_reaches_game_rates_before_throttling() {
        let cfg = Fig12Config::quick();
        let r = run(&cfg);
        // Paper: ~0.7 Mbps down / ~1.2 Mbps up in the shooter.
        let up = Fig12Report::mean(&r.up_mbps, 8, cfg.start_s as usize);
        let down = Fig12Report::mean(&r.down_mbps, 8, cfg.start_s as usize);
        assert!((0.8..1.7).contains(&up), "game uplink {up} Mbps");
        assert!((0.45..1.1).contains(&down), "game downlink {down} Mbps");
    }

    #[test]
    fn downlink_clamps_to_each_cap() {
        let cfg = Fig12Config::quick();
        let r = run(&cfg);
        for (k, cap) in cfg.stages_mbps.iter().enumerate() {
            let got = r.down_in_stage(k);
            assert!(
                got <= cap * 1.25,
                "stage {k}: downlink {got} vs cap {cap}"
            );
            // And uses most of the available bandwidth ("aggressive").
            assert!(got > cap * 0.5, "stage {k}: downlink {got} under-uses cap {cap}");
        }
    }

    #[test]
    fn cpu_rises_and_fps_falls_under_throttling() {
        let cfg = Fig12Config::quick();
        let r = run(&cfg);
        let before_cpu = Fig12Report::mean(&r.cpu, 8, cfg.start_s as usize);
        let (a, b) = r.stage_window(cfg.stages_mbps.len() - 1); // harshest stage
        let during_cpu = Fig12Report::mean(&r.cpu, a, b);
        assert!(
            during_cpu > before_cpu + 8.0,
            "CPU should climb: {before_cpu:.1} → {during_cpu:.1}"
        );
        let before_fps = Fig12Report::mean(&r.fps, 8, cfg.start_s as usize);
        let during_fps = Fig12Report::mean(&r.fps, a, b);
        assert!(
            during_fps < before_fps - 10.0,
            "FPS should fall: {before_fps:.1} → {during_fps:.1}"
        );
        let during_stale = Fig12Report::mean(&r.stale, a, b);
        assert!(during_stale > 5.0, "stale frames surge: {during_stale:.1}");
    }

    #[test]
    fn recovery_after_stages() {
        let cfg = Fig12Config::quick();
        let r = run(&cfg);
        let tail_from = cfg.duration_s() as usize - cfg.tail_s as usize + 4;
        let down = Fig12Report::mean(&r.down_mbps, tail_from, r.down_mbps.len());
        assert!(down > 0.4, "downlink recovers after the caps lift: {down}");
        let fps = Fig12Report::mean(&r.fps, tail_from, r.fps.len());
        assert!(fps > 50.0, "FPS recovers: {fps}");
    }
}
