//! Table 4: end-to-end latency and its sender/receiver/server breakdown.
//!
//! Two users; U1 performs marked actions (the finger-touch of §7) every
//! couple of seconds; each action's journey is timestamped at the four
//! instrumentation points, giving E2E plus the sender, server (transit
//! minus the ping-estimated network share), and receiver components.
//! Includes the paper's private-Hubs row (Hubs*), which shows the same
//! software with a nearby, unloaded server.

use crate::experiments::trial_seed;
use crate::latency::{breakdown, LatencyBreakdown};
use crate::report::TextTable;
use svr_geo::Site;
use svr_netsim::{SimDuration, SimTime};
use svr_platform::session::run_session;
use svr_platform::{Behavior, PlatformConfig, SessionConfig};

/// One measured row.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Label ("Hubs*" for the private deployment).
    pub label: String,
    /// The aggregated breakdown, all in ms.
    pub breakdown: LatencyBreakdown,
}

/// The full table.
#[derive(Debug, Clone)]
pub struct Table4Report {
    /// Rows in the paper's order (ascending E2E).
    pub rows: Vec<Table4Row>,
}

/// Parameters.
#[derive(Debug, Clone, Copy)]
pub struct Table4Config {
    /// Trials per platform.
    pub trials: usize,
    /// Actions per trial.
    pub actions: usize,
    /// Seed.
    pub seed: u64,
}

impl Table4Config {
    /// Paper fidelity.
    pub fn full() -> Self {
        Table4Config { trials: 4, actions: 20, seed: 0x7AB1E4 }
    }

    /// CI-sized.
    pub fn quick() -> Self {
        Table4Config { trials: 1, actions: 8, seed: 0x7AB1E4 }
    }
}

/// Measure one configuration.
pub fn run_config(label: &str, pcfg: PlatformConfig, cfg: Table4Config) -> Table4Row {
    let mut all_actions = Vec::new();
    let duration_s = 12 + cfg.actions as u64 * 2;
    for k in 0..cfg.trials {
        let seed = trial_seed(cfg.seed ^ (label.len() as u64) << 40, k);
        let mut scfg = SessionConfig::walk_and_chat(
            pcfg.clone(),
            2,
            SimDuration::from_secs(duration_s),
            seed,
        );
        for a in 0..cfg.actions {
            scfg.behaviors.push(Behavior::Action {
                user: 0,
                at: SimTime::from_secs(10 + a as u64 * 2),
            });
        }
        let r = run_session(&scfg);
        all_actions.extend(r.actions.into_iter().filter(|a| a.to == 1));
    }
    Table4Row { label: label.to_string(), breakdown: breakdown(&all_actions, &pcfg, Site::FairfaxVa) }
}

/// Run the full table: the five platforms plus the private Hubs.
pub fn run(cfg: Table4Config) -> Table4Report {
    let mut rows = vec![
        run_config("Rec Room", PlatformConfig::recroom(), cfg),
        run_config("VRChat", PlatformConfig::vrchat(), cfg),
        run_config("Worlds", PlatformConfig::worlds(), cfg),
        run_config("AltspaceVR", PlatformConfig::altspace(), cfg),
        run_config("Hubs", PlatformConfig::hubs(), cfg),
        run_config("Hubs*", PlatformConfig::private_hubs(), cfg),
    ];
    // The paper orders by ascending E2E (with Hubs* last).
    let hubs_star = rows.pop().unwrap();
    rows.sort_by(|a, b| a.breakdown.e2e.mean.total_cmp(&b.breakdown.e2e.mean));
    rows.push(hubs_star);
    Table4Report { rows }
}

/// Paper values: (e2e, sender, receiver, server) in ms.
pub fn paper_values(label: &str) -> Option<(f64, f64, f64, f64)> {
    Some(match label {
        "Rec Room" => (101.7, 25.9, 39.9, 29.9),
        "VRChat" => (104.3, 27.3, 37.4, 33.5),
        "Worlds" => (128.5, 26.2, 49.1, 40.2),
        "AltspaceVR" => (209.2, 24.5, 36.1, 68.6),
        "Hubs" => (239.1, 42.4, 60.1, 52.2),
        "Hubs*" => (130.7, 40.3, 61.5, 16.2),
        _ => return None,
    })
}

impl std::fmt::Display for Table4Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = TextTable::new(vec![
            "Platform", "E2E (ms)", "Sender", "Receiver", "Server", "Paper E2E",
        ]);
        for r in &self.rows {
            let b = &r.breakdown;
            let paper = paper_values(&r.label).map(|p| format!("{:.1}", p.0)).unwrap_or_default();
            t.row(vec![
                r.label.clone(),
                b.e2e.cell(),
                b.sender.cell(),
                b.receiver.cell(),
                b.server.cell(),
                paper,
            ]);
        }
        writeln!(f, "Table 4: end-to-end latency breakdown (two users, east coast)")?;
        write!(f, "{}", t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::relative_error;

    #[test]
    fn e2e_ordering_matches_paper() {
        let rep = run(Table4Config::quick());
        let e2e = |label: &str| {
            rep.rows.iter().find(|r| r.label == label).unwrap().breakdown.e2e.mean
        };
        // Rec Room ≈ VRChat < Worlds < AltspaceVR < Hubs; Hubs* ≪ Hubs.
        assert!(e2e("Rec Room") < e2e("Worlds"));
        assert!(e2e("VRChat") < e2e("Worlds"));
        assert!(e2e("Worlds") < e2e("AltspaceVR"));
        assert!(e2e("AltspaceVR") < e2e("Hubs"));
        assert!(e2e("Hubs*") < e2e("Hubs") * 0.7, "private server cuts latency");
    }

    #[test]
    fn absolute_values_within_paper_band() {
        let rep = run(Table4Config::quick());
        for r in &rep.rows {
            let (paper_e2e, ..) = paper_values(&r.label).unwrap();
            let err = relative_error(r.breakdown.e2e.mean, paper_e2e);
            assert!(
                err < 0.25,
                "{}: measured {:.1} vs paper {paper_e2e} ({:.0}% off)",
                r.label,
                r.breakdown.e2e.mean,
                err * 100.0
            );
        }
    }

    #[test]
    fn receiver_exceeds_sender_everywhere() {
        // §7: receiver-side processing is higher than sender-side on all
        // platforms — an indication of local rendering.
        let rep = run(Table4Config::quick());
        for r in &rep.rows {
            assert!(
                r.breakdown.receiver.mean > r.breakdown.sender.mean,
                "{}: receiver {:.1} vs sender {:.1}",
                r.label,
                r.breakdown.receiver.mean,
                r.breakdown.sender.mean
            );
        }
    }

    #[test]
    fn altspace_has_highest_server_latency() {
        // §7 attributes it to the viewport-prediction work.
        let rep = run(Table4Config::quick());
        let alts = rep.rows.iter().find(|r| r.label == "AltspaceVR").unwrap().breakdown.server.mean;
        for r in &rep.rows {
            if r.label != "AltspaceVR" {
                assert!(alts > r.breakdown.server.mean, "AltspaceVR {alts} vs {} {}", r.label, r.breakdown.server.mean);
            }
        }
    }

    #[test]
    fn hubs_private_server_processing_collapses() {
        // ~70% server-latency reduction on the t3.medium deployment (§7).
        let rep = run(Table4Config::quick());
        let public = rep.rows.iter().find(|r| r.label == "Hubs").unwrap().breakdown.server.mean;
        let private = rep.rows.iter().find(|r| r.label == "Hubs*").unwrap().breakdown.server.mean;
        assert!(private < public * 0.5, "server proc {public} → {private}");
    }
}
