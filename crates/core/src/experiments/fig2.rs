//! Figure 2: control- vs data-channel throughput timelines.
//!
//! Two users launch the app, sit on the welcome page, and enter a social
//! event at 90 s (as in the paper's 180-second traces). U1's AP capture
//! is split into control and data channels; the report carries four
//! per-second series (control/data × up/down). The expected shape: the
//! control channel is busy on the welcome page and (for AltspaceVR-like
//! platforms) spikes periodically afterwards; the data channel is silent
//! until the event starts. The >100 Mbps Hubs initial download is
//! reported separately, as the paper excludes it from the plot.

use crate::analysis::{channel_records, RateSeries};
use svr_netsim::capture::Direction;
use svr_netsim::{SimDuration, SimTime};
use svr_platform::{
    Behavior, ChannelKind, PlatformConfig, PlatformId, SessionConfig,
};

/// Per-second series for one platform.
#[derive(Debug, Clone)]
pub struct Fig2Report {
    /// Platform measured.
    pub platform: PlatformId,
    /// Control-channel uplink, Kbps per second.
    pub control_up: RateSeries,
    /// Control-channel downlink.
    pub control_down: RateSeries,
    /// Data-channel uplink.
    pub data_up: RateSeries,
    /// Data-channel downlink.
    pub data_down: RateSeries,
    /// When the users entered the event.
    pub event_at: SimTime,
}

/// Parameters.
#[derive(Debug, Clone, Copy)]
pub struct Fig2Config {
    /// Trace length (paper: 180 s).
    pub duration_s: u64,
    /// When users join the event (paper: 90 s).
    pub join_s: u64,
    /// Seed.
    pub seed: u64,
}

impl Fig2Config {
    /// Paper fidelity.
    pub fn full() -> Self {
        Fig2Config { duration_s: 180, join_s: 90, seed: 0xF162 }
    }

    /// CI-sized.
    pub fn quick() -> Self {
        Fig2Config { duration_s: 60, join_s: 30, seed: 0xF162 }
    }
}

/// Run for one platform.
pub fn run(platform: PlatformId, cfg: Fig2Config) -> Fig2Report {
    let pcfg = PlatformConfig::of(platform);
    let duration = SimDuration::from_secs(cfg.duration_s);
    let join = SimTime::from_secs(cfg.join_s);
    let mut scfg = SessionConfig::walk_and_chat(pcfg, 2, duration, cfg.seed);
    scfg.behaviors = vec![
        Behavior::Join { user: 0, at: join },
        Behavior::Join { user: 1, at: join },
        Behavior::Wander { user: 0, at: join + SimDuration::from_secs(1) },
        Behavior::Wander { user: 1, at: join + SimDuration::from_secs(1) },
    ];
    let result = svr_platform::session::run_session(&scfg);
    let records = &result.users[0].ap_records;
    let ctl = channel_records(records, ChannelKind::Control, result.control_server_node, result.data_server_node);
    let data = channel_records(records, ChannelKind::Data, result.control_server_node, result.data_server_node);
    Fig2Report {
        platform,
        control_up: RateSeries::from_records(&ctl, Direction::Uplink, duration),
        control_down: RateSeries::from_records(&ctl, Direction::Downlink, duration),
        data_up: RateSeries::from_records(&data, Direction::Uplink, duration),
        data_down: RateSeries::from_records(&data, Direction::Downlink, duration),
        event_at: join,
    }
}

/// Run for the three platforms the paper plots.
pub fn run_all(cfg: Fig2Config) -> Vec<Fig2Report> {
    [PlatformId::VrChat, PlatformId::Hubs, PlatformId::AltspaceVr]
        .into_iter()
        .map(|p| run(p, cfg))
        .collect()
}

impl Fig2Report {
    /// Mean data-channel downlink before the event (should be ~0).
    pub fn data_down_before_event(&self) -> f64 {
        self.data_down.mean_kbps(0, self.event_at.as_millis() as usize / 1000)
    }

    /// Mean data-channel downlink during the event.
    pub fn data_down_during_event(&self) -> f64 {
        let from = self.event_at.as_millis() as usize / 1000 + 5;
        self.data_down.mean_kbps(from, self.data_down.len())
    }

    /// Mean control-channel traffic (both directions) on the welcome page.
    pub fn control_on_welcome(&self) -> f64 {
        let to = self.event_at.as_millis() as usize / 1000;
        self.control_up.mean_kbps(0, to) + self.control_down.mean_kbps(0, to)
    }
}

impl std::fmt::Display for Fig2Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Fig. 2 ({}): welcome page 0-{}s, social event after",
            self.platform,
            self.event_at.as_millis() / 1000
        )?;
        // Control traffic is bursty (menu clicks, report spikes):
        // show the peak within each 10 s bin so bursts stay visible.
        let every = |s: &RateSeries| -> Vec<(f64, f64)> {
            s.kbps
                .chunks(10)
                .enumerate()
                .map(|(i, chunk)| {
                    ((i * 10) as f64, chunk.iter().cloned().fold(0.0, f64::max))
                })
                .collect()
        };
        writeln!(f, "{}", crate::report::series_line("  control up  (Kbps)", &every(&self.control_up)))?;
        writeln!(f, "{}", crate::report::series_line("  control down(Kbps)", &every(&self.control_down)))?;
        writeln!(f, "{}", crate::report::series_line("  data up     (Kbps)", &every(&self.data_up)))?;
        writeln!(f, "{}", crate::report::series_line("  data down   (Kbps)", &every(&self.data_down)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_channel_silent_until_event() {
        let r = run(PlatformId::VrChat, Fig2Config::quick());
        assert!(r.data_down_before_event() < 1.0, "{}", r.data_down_before_event());
        assert!(r.data_down_during_event() > 15.0, "{}", r.data_down_during_event());
    }

    #[test]
    fn control_channel_active_on_welcome_page() {
        let r = run(PlatformId::VrChat, Fig2Config::quick());
        assert!(r.control_on_welcome() > 10.0, "{}", r.control_on_welcome());
    }

    #[test]
    fn altspace_control_spikes_continue_during_event() {
        // AltspaceVR reports every ~10 s even inside the event (§4.1).
        let r = run(PlatformId::AltspaceVr, Fig2Config::quick());
        let from = r.event_at.as_millis() as usize / 1000 + 5;
        let during: f64 = r.control_up.kbps[from..].iter().sum();
        assert!(during > 0.5, "control uplink during event: {during}");
    }

    #[test]
    fn hubs_data_flows_during_event_over_stream() {
        let r = run(PlatformId::Hubs, Fig2Config::quick());
        assert!(r.data_down_during_event() > 30.0, "{}", r.data_down_during_event());
    }

    #[test]
    fn display_shows_series() {
        let r = run(PlatformId::VrChat, Fig2Config::quick());
        let s = r.to_string();
        assert!(s.contains("control up"));
        assert!(s.contains("data down"));
    }
}
