//! Figure 13: Worlds' uplink under throttling, and the TCP/UDP
//! priority interplay.
//!
//! Top panel: U1's whole uplink is rate-capped in stages
//! (1.5/1.2/1.0/0.7/0.5/0.3 Mbps); we trace UDP uplink, TCP uplink, and
//! UDP downlink.
//!
//! Bottom panel: only the TCP uplink is impaired — added delays of
//! 5/10/15 s, then 100 % loss, then recovery. The expected §8.1
//! behaviour: UDP transmission gaps whose length matches the TCP delay
//! (Worlds blocks UDP until TCP delivers), only keep-alive trickles
//! during the loss stage, permanent UDP death ~30 s in, a frozen screen,
//! and no UDP recovery even after TCP comes back.

use crate::analysis::RateSeries;
use svr_netsim::capture::{by_server, by_proto, Direction};
use svr_netsim::{
    Bitrate, Impairment, NetemSchedule, NetemStage, Proto, SimDuration, SimTime,
};
use svr_platform::session::run_session;
use svr_platform::{Behavior, PlatformConfig, SessionConfig};

/// Traces of one run (either panel).
#[derive(Debug, Clone)]
pub struct Fig13Report {
    /// UDP uplink, Mbps per second.
    pub udp_up: Vec<f64>,
    /// TCP uplink (control channel), Mbps per second.
    pub tcp_up: Vec<f64>,
    /// UDP downlink, Mbps per second.
    pub udp_down: Vec<f64>,
    /// When U1's data channel died, if it did (seconds).
    pub frozen_at_s: Option<u64>,
    /// Whether the in-game countdown went stale during the run.
    pub countdown_went_stale: bool,
}

/// Top-panel parameters: full-uplink rate caps.
#[derive(Debug, Clone)]
pub struct UplinkCapsConfig {
    /// Caps in Mbps (paper: 1.5/1.2/1.0/0.7/0.5/0.3).
    pub stages_mbps: Vec<f64>,
    /// Stage length (paper: 40 s).
    pub stage_s: u64,
    /// Warm-up before the first stage.
    pub start_s: u64,
    /// Recovery tail.
    pub tail_s: u64,
    /// Seed.
    pub seed: u64,
}

impl UplinkCapsConfig {
    /// Paper fidelity.
    pub fn full() -> Self {
        UplinkCapsConfig {
            stages_mbps: vec![1.5, 1.2, 1.0, 0.7, 0.5, 0.3],
            stage_s: 40,
            start_s: 20,
            tail_s: 60,
            seed: 0xF1613,
        }
    }

    /// CI-sized.
    pub fn quick() -> Self {
        UplinkCapsConfig {
            stages_mbps: vec![1.0, 0.5],
            stage_s: 12,
            start_s: 10,
            tail_s: 10,
            seed: 0xF1613,
        }
    }

    /// Total duration.
    pub fn duration_s(&self) -> u64 {
        self.start_s + self.stage_s * self.stages_mbps.len() as u64 + self.tail_s
    }
}

/// Bottom-panel parameters: TCP-only impairment.
#[derive(Debug, Clone)]
pub struct TcpPriorityConfig {
    /// Added TCP delays in seconds (paper: 5, 10, 15).
    pub delays_s: Vec<u64>,
    /// Length of each delay stage (paper: 60 s).
    pub stage_s: u64,
    /// Length of the 100 % loss stage (paper: 60 s).
    pub loss_s: u64,
    /// Warm-up before the first stage.
    pub start_s: u64,
    /// Recovery tail after loss lifts (paper: 60 s).
    pub tail_s: u64,
    /// Seed.
    pub seed: u64,
}

impl TcpPriorityConfig {
    /// Paper fidelity: 5/10/15 s delays in 60 s stages, 60 s of 100 %
    /// loss, 60 s recovery.
    pub fn full() -> Self {
        TcpPriorityConfig {
            delays_s: vec![5, 10, 15],
            stage_s: 60,
            loss_s: 60,
            start_s: 15,
            tail_s: 60,
            seed: 0xF1613B,
        }
    }

    /// CI-sized: one short delay stage plus the loss stage.
    pub fn quick() -> Self {
        TcpPriorityConfig {
            delays_s: vec![4],
            stage_s: 20,
            loss_s: 40,
            start_s: 10,
            tail_s: 15,
            seed: 0xF1613B,
        }
    }

    /// When the 100 % loss stage starts.
    pub fn loss_start_s(&self) -> u64 {
        self.start_s + self.stage_s * self.delays_s.len() as u64
    }

    /// Total duration.
    pub fn duration_s(&self) -> u64 {
        self.loss_start_s() + self.loss_s + self.tail_s
    }
}

fn collect(result: &svr_platform::SessionResult, duration: SimDuration) -> Fig13Report {
    let recs = &result.users[0].ap_records;
    let data = by_server(recs, result.data_server_node);
    let ctl = by_server(recs, result.control_server_node);
    let udp = by_proto(&data, Proto::Udp);
    let tcp = by_proto(&ctl, Proto::Tcp);
    let udp_up = RateSeries::from_records(&udp, Direction::Uplink, duration);
    let udp_down = RateSeries::from_records(&udp, Direction::Downlink, duration);
    let tcp_up = RateSeries::from_records(&tcp, Direction::Uplink, duration);
    Fig13Report {
        udp_up: udp_up.kbps.iter().map(|k| k / 1e3).collect(),
        tcp_up: tcp_up.kbps.iter().map(|k| k / 1e3).collect(),
        udp_down: udp_down.kbps.iter().map(|k| k / 1e3).collect(),
        frozen_at_s: result.users[0].frozen_at.map(|t| t.as_millis() / 1000),
        countdown_went_stale: false,
    }
}

/// Run the top panel: full-uplink rate caps.
pub fn run_uplink_caps(cfg: &UplinkCapsConfig) -> Fig13Report {
    let pcfg = PlatformConfig::worlds();
    let duration = SimDuration::from_secs(cfg.duration_s());
    let mut scfg = SessionConfig::walk_and_chat(pcfg, 2, duration, cfg.seed);
    scfg.behaviors.push(Behavior::StartGame { at: SimTime::from_secs(7) });
    let imps: Vec<Impairment> = cfg
        .stages_mbps
        .iter()
        .map(|m| Impairment::rate(Bitrate::from_mbps_f64(*m)))
        .collect();
    scfg.netem_uplink = Some(NetemSchedule::staircase(
        SimTime::from_secs(cfg.start_s),
        SimDuration::from_secs(cfg.stage_s),
        &imps,
    ));
    let r = run_session(&scfg);
    collect(&r, duration)
}

/// Run the bottom panel: TCP-only delay stages then 100 % TCP loss.
pub fn run_tcp_priority(cfg: &TcpPriorityConfig) -> Fig13Report {
    let pcfg = PlatformConfig::worlds();
    let duration = SimDuration::from_secs(cfg.duration_s());
    let mut scfg = SessionConfig::walk_and_chat(pcfg, 2, duration, cfg.seed);
    scfg.behaviors.push(Behavior::StartGame { at: SimTime::from_secs(7) });
    let mut stages = Vec::new();
    let mut t = cfg.start_s;
    for d in &cfg.delays_s {
        stages.push(NetemStage {
            start: SimTime::from_secs(t),
            end: SimTime::from_secs(t + cfg.stage_s),
            impairment: Impairment::delay(SimDuration::from_secs(*d)),
        });
        t += cfg.stage_s;
    }
    stages.push(NetemStage {
        start: SimTime::from_secs(t),
        end: SimTime::from_secs(t + cfg.loss_s),
        impairment: Impairment::loss(1.0),
    });
    scfg.netem_tcp_uplink = Some(NetemSchedule::from_stages(stages));
    let r = run_session(&scfg);
    let mut rep = collect(&r, duration);
    // §8.1: "the countdown board in the game fails to update" — the
    // client saw no clock sync for longer than the staleness window.
    rep.countdown_went_stale = r.users[0].countdown_stale_seconds > 3;
    rep
}

impl Fig13Report {
    /// Longest run of consecutive near-zero seconds in the UDP uplink
    /// within `[from, to)` — the transmission "gaps" of §8.1.
    pub fn longest_udp_gap(&self, from: usize, to: usize) -> usize {
        let to = to.min(self.udp_up.len());
        let mut best = 0;
        let mut cur = 0;
        for v in &self.udp_up[from.min(to)..to] {
            if *v < 0.02 {
                cur += 1;
                best = best.max(cur);
            } else {
                cur = 0;
            }
        }
        best
    }

    /// Mean of a series over `[from, to)`.
    pub fn mean(series: &[f64], from: usize, to: usize) -> f64 {
        let to = to.min(series.len());
        if from >= to {
            return 0.0;
        }
        series[from..to].iter().sum::<f64>() / (to - from) as f64
    }
}

impl std::fmt::Display for Fig13Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Fig. 13: Worlds uplink disruption")?;
        let pts = |s: &[f64]| -> Vec<(f64, f64)> {
            s.iter().enumerate().step_by(4).map(|(i, v)| (i as f64, *v)).collect()
        };
        writeln!(f, "{}", crate::report::series_line("  UDP uplink  (Mbps)", &pts(&self.udp_up)))?;
        writeln!(f, "{}", crate::report::series_line("  TCP uplink  (Mbps)", &pts(&self.tcp_up)))?;
        writeln!(f, "{}", crate::report::series_line("  UDP downlink(Mbps)", &pts(&self.udp_down)))?;
        if let Some(t) = self.frozen_at_s {
            writeln!(f, "  UDP connection died at {t}s (screen frozen; never recovers)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uplink_caps_clamp_udp_uplink() {
        let cfg = UplinkCapsConfig::quick();
        let r = run_uplink_caps(&cfg);
        // Before stages: free-running game uplink > 1.0 Mbps.
        let before = Fig13Report::mean(&r.udp_up, 7, cfg.start_s as usize);
        assert!(before > 0.8, "game uplink {before}");
        // Harshest stage clamps below the cap.
        let k = cfg.stages_mbps.len() - 1;
        let a = cfg.start_s as usize + cfg.stage_s as usize * k + 2;
        let b = a + cfg.stage_s as usize - 2;
        let during = Fig13Report::mean(&r.udp_up, a, b);
        let cap = cfg.stages_mbps[k];
        assert!(during <= cap * 1.25, "capped uplink {during} vs {cap}");
    }

    #[test]
    fn constrained_uplink_depresses_peer_feedback_downlink() {
        // §8.1: U1's starved uplink degrades U2's experience, which in
        // turn reduces what U1 receives. At minimum the downlink must not
        // grow during the cap stages.
        let cfg = UplinkCapsConfig::quick();
        let r = run_uplink_caps(&cfg);
        let before = Fig13Report::mean(&r.udp_down, 7, cfg.start_s as usize);
        let k = cfg.stages_mbps.len() - 1;
        let a = cfg.start_s as usize + cfg.stage_s as usize * k + 2;
        let during = Fig13Report::mean(&r.udp_down, a, a + cfg.stage_s as usize - 2);
        assert!(during <= before * 1.15, "downlink {before} → {during}");
    }

    #[test]
    fn tcp_delay_gates_udp_for_matching_duration() {
        let cfg = TcpPriorityConfig::quick();
        let r = run_tcp_priority(&cfg);
        let delay = cfg.delays_s[0] as usize;
        let a = cfg.start_s as usize;
        let b = a + cfg.stage_s as usize;
        let gap = r.longest_udp_gap(a, b);
        // Gap of about the TCP delay (±2 s of quantisation).
        assert!(
            gap + 2 >= delay && gap <= delay + 4,
            "UDP gap {gap}s vs TCP delay {delay}s"
        );
    }

    #[test]
    fn full_tcp_loss_kills_udp_permanently() {
        let cfg = TcpPriorityConfig::quick();
        let r = run_tcp_priority(&cfg);
        let loss_start = cfg.loss_start_s();
        // Death ~30 s into the loss stage.
        let died = r.frozen_at_s.expect("UDP must die during 100% TCP loss");
        assert!(
            died >= loss_start + 25 && died <= loss_start + 40,
            "died at {died}s; loss began {loss_start}s"
        );
        // No UDP recovery after the loss lifts, even though TCP recovers.
        let tail_from = (loss_start + cfg.loss_s) as usize + 3;
        let udp_after = Fig13Report::mean(&r.udp_up, tail_from, r.udp_up.len());
        assert!(udp_after < 0.02, "UDP must stay dead: {udp_after} Mbps");
        let tcp_after = Fig13Report::mean(&r.tcp_up, tail_from, r.tcp_up.len());
        assert!(tcp_after > 0.0, "TCP recovers: {tcp_after} Mbps");
    }

    #[test]
    fn countdown_freezes_when_tcp_sync_is_blocked() {
        // §8.1: delaying/blocking TCP stalls the in-game countdown board.
        let cfg = TcpPriorityConfig::quick();
        let r = run_tcp_priority(&cfg);
        assert!(r.countdown_went_stale);
    }

    #[test]
    fn keepalive_trickle_before_death() {
        // "only tiny data exchanges over UDP for about 30 s" — the
        // keep-alives that bypass the gate.
        let cfg = TcpPriorityConfig::quick();
        let r = run_tcp_priority(&cfg);
        let loss_start = cfg.loss_start_s() as usize;
        let died = r.frozen_at_s.unwrap() as usize;
        // Measure well inside the gated window (gating starts at the
        // first report after the loss begins, up to ~10 s in).
        let from = (died.saturating_sub(15)).max(loss_start + 2);
        let trickle = Fig13Report::mean(&r.udp_up, from, died);
        assert!(
            trickle > 0.0 && trickle < 0.01,
            "tiny keep-alive trickle expected, got {trickle} Mbps"
        );
    }
}
