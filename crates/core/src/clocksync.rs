//! §7's clock synchronisation of two unsynchronised Quest 2 headsets.
//!
//! NTP is unavailable on an unrooted Quest 2, so the paper synchronises
//! each headset against the WiFi AP: read the device clock over ADB,
//! read the AP clock at the same instant, and correct by half the
//! measured AP↔device RTT. This module models drifting device clocks and
//! implements that estimation procedure, with its inherent ±RTT/2 error —
//! demonstrating the method achieves the "millisecond level" sync the §7
//! latency measurements need.

use svr_netsim::{SimDuration, SimRng, SimTime};

/// A device clock with a fixed offset and a slow drift against true
/// (simulation) time.
#[derive(Debug, Clone, Copy)]
pub struct DeviceClock {
    /// Offset at t=0: device_time − true_time, in microseconds.
    pub offset_us: i64,
    /// Drift in parts-per-million (positive = device runs fast).
    pub drift_ppm: f64,
}

impl DeviceClock {
    /// A clock with the given offset and drift.
    pub fn new(offset_us: i64, drift_ppm: f64) -> Self {
        DeviceClock { offset_us, drift_ppm }
    }

    /// What the device clock reads at true time `t`.
    pub fn read(&self, t: SimTime) -> i64 {
        let drift = (t.as_micros() as f64 * self.drift_ppm / 1e6) as i64;
        t.as_micros() as i64 + self.offset_us + drift
    }

    /// The true offset (device − true) at time `t`, µs.
    pub fn true_offset_at(&self, t: SimTime) -> i64 {
        self.read(t) - t.as_micros() as i64
    }
}

/// One ADB probe: the AP asks the device for its clock; the reply takes
/// half the RTT each way plus jitter.
#[derive(Debug, Clone, Copy)]
pub struct SyncProbe {
    /// AP clock when the probe was issued (true time, µs).
    pub ap_sent_us: u64,
    /// Device clock value returned.
    pub device_reading_us: i64,
    /// AP clock when the reply arrived (true time, µs).
    pub ap_received_us: u64,
}

/// Run one probe against a device over a link with the given RTT and
/// jitter (models `adb shell echo $EPOCHREALTIME`).
pub fn probe(clock: &DeviceClock, now: SimTime, rtt: SimDuration, rng: &mut SimRng) -> SyncProbe {
    let jitter = |rng: &mut SimRng| {
        let base = rtt.as_micros() as f64 / 2.0;
        rng.gaussian_at_least(base, base * 0.15, 1.0) as u64
    };
    let fwd = jitter(rng);
    let back = jitter(rng);
    let device_time = now + SimDuration::from_micros(fwd);
    SyncProbe {
        ap_sent_us: now.as_micros(),
        device_reading_us: clock.read(device_time),
        ap_received_us: (device_time + SimDuration::from_micros(back)).as_micros(),
    }
}

/// Estimate the device−AP clock offset from a probe: assume the reading
/// was taken at the midpoint of the exchange (the RTT/2 correction).
pub fn estimate_offset(p: &SyncProbe) -> i64 {
    let midpoint = (p.ap_sent_us + p.ap_received_us) / 2;
    p.device_reading_us - midpoint as i64
}

/// Estimate with the median of several probes (robust to jitter).
pub fn estimate_offset_median(probes: &[SyncProbe]) -> i64 {
    assert!(!probes.is_empty());
    let mut offsets: Vec<i64> = probes.iter().map(estimate_offset).collect();
    offsets.sort_unstable();
    offsets[offsets.len() / 2]
}

/// Synchronise two devices via the same AP and return the estimated
/// clock difference (device A − device B), µs. This is exactly what §7
/// needs: timestamps from two headsets on a common timeline.
pub fn sync_pair(
    a: &DeviceClock,
    b: &DeviceClock,
    now: SimTime,
    rtt: SimDuration,
    probes: usize,
    rng: &mut SimRng,
) -> i64 {
    let pa: Vec<SyncProbe> = (0..probes).map(|_| probe(a, now, rtt, rng)).collect();
    let pb: Vec<SyncProbe> = (0..probes).map(|_| probe(b, now, rtt, rng)).collect();
    estimate_offset_median(&pa) - estimate_offset_median(&pb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_reads_reflect_offset_and_drift() {
        let c = DeviceClock::new(5_000_000, 100.0); // +5 s, 100 ppm fast
        assert_eq!(c.read(SimTime::ZERO), 5_000_000);
        // After 1000 s: drift adds 100 ppm × 1000 s = 0.1 s.
        let t = SimTime::from_secs(1000);
        let expect = 1_000_000_000 + 5_000_000 + 100_000;
        assert_eq!(c.read(t), expect);
    }

    #[test]
    fn estimation_error_is_bounded_by_rtt() {
        // §7's claim: AP-based sync reaches millisecond accuracy. With a
        // 4 ms WiFi RTT, the estimate must land within ~2 ms of truth.
        let mut rng = SimRng::seed_from_u64(42);
        let clock = DeviceClock::new(123_456_789, 20.0);
        let now = SimTime::from_secs(60);
        let rtt = SimDuration::from_millis(4);
        let p = probe(&clock, now, rtt, &mut rng);
        let est = estimate_offset(&p);
        let truth = clock.true_offset_at(now);
        assert!(
            (est - truth).abs() < 2_000,
            "error {} µs exceeds RTT/2 bound",
            est - truth
        );
    }

    #[test]
    fn median_of_probes_beats_single_probe_on_average() {
        let mut rng = SimRng::seed_from_u64(7);
        let clock = DeviceClock::new(-50_000, 0.0);
        let now = SimTime::from_secs(10);
        let rtt = SimDuration::from_millis(6);
        let truth = clock.true_offset_at(now);
        let mut single_err = 0.0;
        let mut median_err = 0.0;
        for _ in 0..200 {
            let p = probe(&clock, now, rtt, &mut rng);
            single_err += (estimate_offset(&p) - truth).abs() as f64;
            let probes: Vec<SyncProbe> = (0..7).map(|_| probe(&clock, now, rtt, &mut rng)).collect();
            median_err += (estimate_offset_median(&probes) - truth).abs() as f64;
        }
        assert!(median_err < single_err, "{median_err} vs {single_err}");
    }

    #[test]
    fn pair_sync_recovers_relative_offset() {
        // Two headsets with wildly different clocks; after sync their
        // relative offset is known to ~ms, enabling cross-device
        // timestamp comparison (the §7 method).
        let mut rng = SimRng::seed_from_u64(99);
        let u1 = DeviceClock::new(1_700_000_000_000, 15.0);
        let u2 = DeviceClock::new(-3_600_000_000, -10.0);
        let now = SimTime::from_secs(30);
        let rtt = SimDuration::from_millis(4);
        let est = sync_pair(&u1, &u2, now, rtt, 7, &mut rng);
        let truth = u1.true_offset_at(now) - u2.true_offset_at(now);
        assert!(
            (est - truth).abs() < 2_500,
            "pair error {} µs not millisecond-level",
            est - truth
        );
    }

    #[test]
    fn corrected_timestamps_measure_latency_correctly() {
        // End-to-end: an event at true time T1 on U1 is displayed at true
        // time T2 on U2; with synced clocks the measured latency must be
        // close to T2−T1 despite the clock chaos.
        let mut rng = SimRng::seed_from_u64(5);
        let u1 = DeviceClock::new(987_654_321, 30.0);
        let u2 = DeviceClock::new(-123_456_789, -25.0);
        let sync_at = SimTime::from_secs(10);
        let rel = sync_pair(&u1, &u2, sync_at, SimDuration::from_millis(4), 7, &mut rng);

        let t1 = SimTime::from_millis(20_000);
        let t2 = SimTime::from_millis(20_104); // 104 ms later (VRChat-ish)
        let stamp1 = u1.read(t1);
        let stamp2 = u2.read(t2);
        // Correct U1's stamp onto U2's clock domain: stamp1 − rel.
        let measured_us = stamp2 - (stamp1 - rel);
        assert!(
            (measured_us - 104_000).abs() < 3_000,
            "measured {measured_us} µs vs true 104 ms"
        );
    }
}
