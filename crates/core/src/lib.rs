//! # svr-core
//!
//! The paper's actual contribution, as a library: the measurement
//! methodology of *"Are We Ready for Metaverse? A Measurement Study of
//! Social Virtual Reality Platforms"* (IMC 2022), run against the
//! simulated platform ecosystem in [`svr_platform`].
//!
//! * [`stats`] — multi-trial statistics (mean, σ, 95 % CI), matching the
//!   "averaged results from more than 20 experiments" protocol of §3.2;
//! * [`analysis`] — the Wireshark-trace analysis: channel classification,
//!   windowed throughput series, and the §5.2 mute-join differencing that
//!   isolates avatar traffic;
//! * [`clocksync`] — §7's ADB-based millisecond clock synchronisation of
//!   two unsynchronised headsets;
//! * [`latency`] — end-to-end latency aggregation and the
//!   sender/server/receiver breakdown of Table 4;
//! * [`report`] — plain-text table rendering for the reproduced rows;
//! * [`experiments`] — one module per table and figure of the paper's
//!   evaluation, each regenerating its rows/series.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod clocksync;
pub mod experiments;
pub mod latency;
pub mod report;
pub mod stats;

pub use stats::Summary;
