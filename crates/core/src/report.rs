//! Plain-text table rendering for the reproduced results.
//!
//! Every experiment's report implements `Display` using these helpers so
//! `cargo bench` / the examples print rows shaped like the paper's
//! tables and figure series.

/// A simple fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with a header row.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append a row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with column alignment.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cell, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Write rows as CSV (quoting cells that contain commas/quotes), for
/// downstream plotting of the reproduced figures.
pub fn write_csv<W: std::io::Write>(
    mut w: W,
    header: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<()> {
    let quote = |cell: &str| -> String {
        if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
            format!("\"{}\"", cell.replace('"', "\"\""))
        } else {
            cell.to_string()
        }
    };
    writeln!(w, "{}", header.iter().map(|h| quote(h)).collect::<Vec<_>>().join(","))?;
    for row in rows {
        writeln!(w, "{}", row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","))?;
    }
    Ok(())
}

/// Render a `(x, y)` series compactly for figure reproductions.
pub fn series_line(label: &str, points: &[(f64, f64)]) -> String {
    let body: Vec<String> =
        points.iter().map(|(x, y)| format!("({x:.0}, {y:.2})")).collect();
    format!("{label}: {}", body.join(" "))
}

/// Format a paper-vs-measured comparison cell.
pub fn compare(paper: f64, measured: f64) -> String {
    let err = if paper.abs() > f64::EPSILON {
        format!("{:+.0}%", (measured - paper) / paper * 100.0)
    } else {
        "n/a".to_string()
    };
    format!("paper {paper:.1} / ours {measured:.1} ({err})")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(vec!["Platform", "Tput (Kbps)"]);
        t.row(vec!["VRChat", "31.4/2.6"]);
        t.row(vec!["Worlds", "752/12"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Platform"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[2].contains("VRChat"));
        // Columns align: "31.4/2.6" starts at the same offset as header col 2.
        let col = lines[0].find("Tput").unwrap();
        assert_eq!(lines[2].find("31.4").unwrap(), col);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn short_rows_padded() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.row(vec!["x"]);
        assert!(t.render().contains('x'));
    }

    #[test]
    fn csv_writes_and_escapes() {
        let mut buf = Vec::new();
        write_csv(
            &mut buf,
            &["users", "down,kbps", "note"],
            &[
                vec!["1".into(), "30.1".into(), "plain".into()],
                vec!["2".into(), "39.3".into(), "has \"quotes\"".into()],
            ],
        )
        .unwrap();
        let s = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "users,\"down,kbps\",note");
        assert!(lines[2].contains("\"has \"\"quotes\"\"\""));
    }

    #[test]
    fn series_and_compare_format() {
        let s = series_line("FPS", &[(1.0, 72.0), (15.0, 33.4)]);
        assert_eq!(s, "FPS: (1, 72.00) (15, 33.40)");
        let c = compare(100.0, 110.0);
        assert!(c.contains("+10%"), "{c}");
        assert!(compare(0.0, 5.0).contains("n/a"));
    }
}
