//! Capture-trace analysis: what the paper's scripts did with pcap files.
//!
//! Classification of flows into control vs data channels (§4.1),
//! per-second throughput series split by channel and direction (Figures
//! 2, 3, 6, 12, 13), steady-state rate extraction (Table 3), and the
//! §5.2 mute-join differencing that isolates avatar traffic.

use svr_netsim::capture::{by_server, CaptureRecord, Direction};
use svr_netsim::{Bitrate, NodeId, Proto, SimDuration, SimTime};
use svr_platform::ChannelKind;

/// Classify a captured packet into control or data channel by its remote
/// endpoint (the method of §4.1: the two channels terminate at different
/// servers — or, for Hubs, different flows on the same stack).
pub fn classify(record: &CaptureRecord, control_server: NodeId, data_server: NodeId) -> Option<ChannelKind> {
    let remote = match record.direction {
        Direction::Uplink => record.flow.dst,
        Direction::Downlink => record.flow.src,
    };
    if remote == control_server {
        Some(ChannelKind::Control)
    } else if remote == data_server {
        Some(ChannelKind::Data)
    } else {
        None
    }
}

/// Filter records to one channel.
pub fn channel_records(
    records: &[CaptureRecord],
    kind: ChannelKind,
    control_server: NodeId,
    data_server: NodeId,
) -> Vec<CaptureRecord> {
    records
        .iter()
        .filter(|r| classify(r, control_server, data_server) == Some(kind))
        .copied()
        .collect()
}

/// A per-second throughput series in Kbps.
#[derive(Debug, Clone, PartialEq)]
pub struct RateSeries {
    /// Kbps per one-second window, starting at t=0.
    pub kbps: Vec<f64>,
}

impl RateSeries {
    /// Build from records, one direction, padded to `duration`.
    pub fn from_records(records: &[CaptureRecord], direction: Direction, duration: SimDuration) -> RateSeries {
        let windows = duration.as_micros().div_ceil(1_000_000) as usize;
        let mut bytes = vec![0u64; windows];
        for r in records {
            if r.direction != direction {
                continue;
            }
            let idx = (r.ts.as_micros() / 1_000_000) as usize;
            if idx < windows {
                bytes[idx] += r.wire_bytes;
            }
        }
        RateSeries { kbps: bytes.into_iter().map(|b| b as f64 * 8.0 / 1e3).collect() }
    }

    /// Mean rate over windows `[from_s, to_s)`.
    pub fn mean_kbps(&self, from_s: usize, to_s: usize) -> f64 {
        let to = to_s.min(self.kbps.len());
        if from_s >= to {
            return 0.0;
        }
        self.kbps[from_s..to].iter().sum::<f64>() / (to - from_s) as f64
    }

    /// Maximum windowed rate.
    pub fn peak_kbps(&self) -> f64 {
        self.kbps.iter().cloned().fold(0.0, f64::max)
    }

    /// Number of windows.
    pub fn len(&self) -> usize {
        self.kbps.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.kbps.is_empty()
    }
}

/// Steady-state data-channel rates for one user, in Kbps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SteadyRates {
    /// Uplink mean.
    pub up_kbps: f64,
    /// Downlink mean.
    pub down_kbps: f64,
}

/// Extract steady-state data-channel rates from a user's AP capture over
/// the window `[from, to)`.
pub fn steady_data_rates(
    records: &[CaptureRecord],
    data_server: NodeId,
    from: SimTime,
    to: SimTime,
) -> SteadyRates {
    let span_s = to.saturating_since(from).as_secs_f64();
    if span_s <= 0.0 {
        return SteadyRates { up_kbps: 0.0, down_kbps: 0.0 };
    }
    let data = by_server(records, data_server);
    let mut up = 0u64;
    let mut down = 0u64;
    for r in &data {
        if r.ts < from || r.ts >= to {
            continue;
        }
        match r.direction {
            Direction::Uplink => up += r.wire_bytes,
            Direction::Downlink => down += r.wire_bytes,
        }
    }
    SteadyRates {
        up_kbps: up as f64 * 8.0 / span_s / 1e3,
        down_kbps: down as f64 * 8.0 / span_s / 1e3,
    }
}

/// The §5.2 avatar-isolation method: downlink throughput with the peer
/// present (`with_peer`) minus without (`alone`) approximates one
/// avatar's data rate.
pub fn avatar_rate_by_differencing(alone_down_kbps: f64, with_peer_down_kbps: f64) -> f64 {
    (with_peer_down_kbps - alone_down_kbps).max(0.0)
}

/// Protocol mix of a record set (Table 2's protocol identification).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ProtocolMix {
    /// UDP packets.
    pub udp: u64,
    /// TCP packets.
    pub tcp: u64,
    /// ICMP packets.
    pub icmp: u64,
}

impl ProtocolMix {
    /// Count protocols in a record set.
    pub fn of(records: &[CaptureRecord]) -> ProtocolMix {
        let mut mix = ProtocolMix::default();
        for r in records {
            match r.flow.proto {
                Proto::Udp => mix.udp += 1,
                Proto::Tcp => mix.tcp += 1,
                Proto::Icmp => mix.icmp += 1,
            }
        }
        mix
    }

    /// The dominant protocol, if any traffic exists.
    pub fn dominant(&self) -> Option<Proto> {
        let m = self.udp.max(self.tcp).max(self.icmp);
        if m == 0 {
            return None;
        }
        if m == self.udp {
            Some(Proto::Udp)
        } else if m == self.tcp {
            Some(Proto::Tcp)
        } else {
            Some(Proto::Icmp)
        }
    }
}

/// Mean rate of a [`Bitrate`]-valued series helper: convert Kbps → Bitrate.
pub fn kbps_to_bitrate(kbps: f64) -> Bitrate {
    Bitrate::from_bps((kbps * 1e3).max(0.0) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use svr_netsim::FlowKey;

    fn nid(i: u32) -> NodeId {
        let mut net = svr_netsim::Network::new(0);
        let mut last = None;
        for k in 0..=i {
            last = Some(net.add_node(format!("n{k}"), svr_netsim::NodeKind::Server));
        }
        last.unwrap()
    }

    fn rec(ts_s: u64, src: u32, dst: u32, dir: Direction, bytes: u64, proto: Proto) -> CaptureRecord {
        CaptureRecord {
            ts: SimTime::from_secs(ts_s),
            flow: FlowKey { src: nid(src), dst: nid(dst), src_port: 1, dst_port: 2, proto },
            wire_bytes: bytes,
            payload_len: bytes as u32,
            direction: dir,
            packet_id: 0,
        }
    }

    #[test]
    fn classification_by_remote_endpoint() {
        let ctl = nid(8);
        let data = nid(9);
        let up_ctl = rec(1, 0, 8, Direction::Uplink, 100, Proto::Tcp);
        let down_data = rec(1, 9, 0, Direction::Downlink, 100, Proto::Udp);
        let other = rec(1, 0, 5, Direction::Uplink, 100, Proto::Udp);
        assert_eq!(classify(&up_ctl, ctl, data), Some(ChannelKind::Control));
        assert_eq!(classify(&down_data, ctl, data), Some(ChannelKind::Data));
        assert_eq!(classify(&other, ctl, data), None);
    }

    #[test]
    fn rate_series_buckets_per_second() {
        let recs = vec![
            rec(0, 9, 0, Direction::Downlink, 125, Proto::Udp),
            rec(0, 9, 0, Direction::Downlink, 125, Proto::Udp),
            rec(2, 9, 0, Direction::Downlink, 250, Proto::Udp),
            rec(2, 0, 9, Direction::Uplink, 999, Proto::Udp), // other direction
        ];
        let s = RateSeries::from_records(&recs, Direction::Downlink, SimDuration::from_secs(4));
        assert_eq!(s.len(), 4);
        assert_eq!(s.kbps[0], 2.0);
        assert_eq!(s.kbps[1], 0.0);
        assert_eq!(s.kbps[2], 2.0);
        assert_eq!(s.kbps[3], 0.0);
        assert_eq!(s.peak_kbps(), 2.0);
        assert_eq!(s.mean_kbps(0, 4), 1.0);
        assert_eq!(s.mean_kbps(3, 3), 0.0);
    }

    #[test]
    fn steady_rates_respect_window_and_server() {
        let data = nid(9);
        let recs = vec![
            rec(5, 0, 9, Direction::Uplink, 1_250, Proto::Udp),  // in window
            rec(6, 9, 0, Direction::Downlink, 2_500, Proto::Udp), // in window
            rec(1, 0, 9, Direction::Uplink, 9_999, Proto::Udp),  // before window
            rec(5, 0, 7, Direction::Uplink, 9_999, Proto::Udp),  // other server
        ];
        let r = steady_data_rates(&recs, data, SimTime::from_secs(5), SimTime::from_secs(15));
        assert!((r.up_kbps - 1.0).abs() < 1e-9, "{}", r.up_kbps);
        assert!((r.down_kbps - 2.0).abs() < 1e-9);
    }

    #[test]
    fn avatar_differencing() {
        assert!((avatar_rate_by_differencing(10.0, 45.0) - 35.0).abs() < 1e-12);
        assert_eq!(avatar_rate_by_differencing(50.0, 45.0), 0.0);
    }

    #[test]
    fn protocol_mix_dominance() {
        let recs = vec![
            rec(0, 0, 9, Direction::Uplink, 10, Proto::Udp),
            rec(0, 0, 9, Direction::Uplink, 10, Proto::Udp),
            rec(0, 0, 9, Direction::Uplink, 10, Proto::Tcp),
        ];
        let mix = ProtocolMix::of(&recs);
        assert_eq!(mix.udp, 2);
        assert_eq!(mix.tcp, 1);
        assert_eq!(mix.dominant(), Some(Proto::Udp));
        assert_eq!(ProtocolMix::default().dominant(), None);
    }
}
