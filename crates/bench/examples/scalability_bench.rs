//! `scalability_bench` — the room-size sweep behind `BENCH_netsim.json`.
//!
//! Sweeps room sizes 2 → 512 users across the four forwarding policies
//! (direct, viewport-adaptive, interest management, remote rendering),
//! measuring wall time, simulated events/sec and packets/sec per point
//! through `svr_bench::scalability`, and writes the result as a
//! `BENCH_netsim.json` document via the harness telemetry path (the
//! dependency-free JSON emitter + git revision probe that also produce
//! `BENCH_harness.json`).
//!
//! ```sh
//! cargo run --release -p svr-bench --example scalability_bench            # writes ./BENCH_netsim.json
//! cargo run --release -p svr-bench --example scalability_bench -- --out /tmp/B.json --seed 7
//! ```
//!
//! Like `BENCH_harness.json`, the document carries wall-clock rates and
//! is **not** expected to be byte-reproducible; the determinism gate
//! ignores `BENCH_*.json`.

use svr_bench::scalability::{run_sweep, PointResult};
use svr_harness::json::Json;
use svr_harness::telemetry::git_rev;

fn row(r: &PointResult) -> Json {
    Json::obj()
        .set("policy", r.policy)
        .set("users", r.users)
        .set("messages", r.messages)
        .set("forwards", r.forwards)
        .set("sim_events", r.sim_events)
        .set("sim_packets", r.sim_packets)
        .set("wall_s", r.wall.as_secs_f64())
        .set("events_per_sec", r.events_per_sec())
        .set("packets_per_sec", r.packets_per_sec())
}

fn main() {
    let mut out = String::from("BENCH_netsim.json");
    let mut seed = 1u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(path) => out = path,
                None => return fail("--out needs a path"),
            },
            "--seed" => match args.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = s,
                None => return fail("--seed needs an integer"),
            },
            "--help" | "-h" => {
                println!("usage: scalability_bench [--out FILE] [--seed N]");
                return;
            }
            other => return fail(&format!("unknown flag `{other}`")),
        }
    }

    eprintln!("scalability_bench: sweeping room sizes 2..512 over 4 policies (seed {seed})");
    let rows = run_sweep(seed);
    for r in &rows {
        eprintln!(
            "  {:<13} {:>4} users  {:>8} msgs  {:>9} fwds  {:>11.0} events/s  {:>10.0} pkts/s  {:>7.3}s",
            r.policy,
            r.users,
            r.messages,
            r.forwards,
            r.events_per_sec(),
            r.packets_per_sec(),
            r.wall.as_secs_f64(),
        );
    }

    let doc = Json::obj()
        .set("bench", "svr-netsim scalability")
        .set("artefact", "room-size sweep (2..512 users) per forwarding policy")
        .set("seed", seed)
        .set("git_rev", git_rev().map(Json::Str).unwrap_or(Json::Null))
        .set("rows", Json::Arr(rows.iter().map(row).collect()));
    if let Err(e) = std::fs::write(&out, doc.pretty()) {
        return fail(&format!("cannot write {out}: {e}"));
    }
    eprintln!("scalability_bench: wrote {out}");
}

fn fail(msg: &str) {
    eprintln!("error: {msg}");
    std::process::exit(1);
}
