//! `world_bench` — the multi-room world sweep behind `BENCH_world.json`.
//!
//! Sweeps world grids from 64 rooms x 64 users up to 2048 rooms x 512
//! users (1,048,576 concurrent users) across the four forwarding
//! policies, measuring wall time, aggregated simulation events/sec and
//! packets/sec per point through `svr_bench::worldscale`, and writes
//! the result as a `BENCH_world.json` document via the harness
//! telemetry path.
//!
//! ```sh
//! cargo run --release -p svr-bench --example world_bench                # full sweep -> ./BENCH_world.json
//! cargo run --release -p svr-bench --example world_bench -- --smoke    # tiny grids (CI-sized)
//! cargo run --release -p svr-bench --example world_bench -- --out /tmp/B.json --seed 7 --jobs 4
//! ```
//!
//! Like every `BENCH_*.json`, the document carries wall-clock rates and
//! is **not** expected to be byte-reproducible; the determinism gate
//! ignores it. The `fact_digest` column *is* reproducible — it is the
//! same digest the world determinism tests pin across worker counts.

use svr_bench::worldscale::{run_sweep, WorldPoint};
use svr_harness::json::Json;
use svr_harness::telemetry::git_rev;

fn row(r: &WorldPoint) -> Json {
    Json::obj()
        .set("policy", r.policy)
        .set("rooms", r.rooms)
        .set("users", r.users)
        .set("ticks", r.ticks)
        .set("messages", r.messages)
        .set("forwards", r.forwards)
        .set("hops", r.hops)
        .set("transfers", r.transfers)
        .set("presence", r.presence)
        .set("sim_events", r.sim_events)
        .set("sim_packets", r.sim_packets)
        .set("fact_digest", format!("{:016x}", r.fact_digest))
        .set("wall_s", r.wall.as_secs_f64())
        .set("events_per_sec", r.events_per_sec())
        .set("packets_per_sec", r.packets_per_sec())
}

fn main() {
    let mut out = String::from("BENCH_world.json");
    let mut seed = 1u64;
    let mut jobs = 1usize;
    let mut full = true;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(path) => out = path,
                None => return fail("--out needs a path"),
            },
            "--seed" => match args.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = s,
                None => return fail("--seed needs an integer"),
            },
            "--jobs" => match args.next().and_then(|s| s.parse().ok()) {
                Some(j) => jobs = j,
                None => return fail("--jobs needs an integer"),
            },
            "--smoke" => full = false,
            "--help" | "-h" => {
                println!("usage: world_bench [--out FILE] [--seed N] [--jobs N] [--smoke]");
                return;
            }
            other => return fail(&format!("unknown flag `{other}`")),
        }
    }

    let tier = if full { "full (up to 2048 rooms, 1M+ users)" } else { "smoke" };
    eprintln!("world_bench: {tier} sweep over 4 policies (seed {seed}, jobs {jobs})");
    let rows = run_sweep(seed, full, jobs);
    for r in &rows {
        eprintln!(
            "  {:<13} {:>4} rooms {:>8} users  {:>7} msgs  {:>9} fwds  {:>5} hops  {:>11.0} events/s  {:>8.3}s",
            r.policy,
            r.rooms,
            r.users,
            r.messages,
            r.forwards,
            r.hops,
            r.events_per_sec(),
            r.wall.as_secs_f64(),
        );
    }

    let doc = Json::obj()
        .set("bench", "svr-world scaling")
        .set("artefact", "multi-room world sweep (rooms x users per forwarding policy)")
        .set("seed", seed)
        .set("jobs", jobs)
        .set("tier", if full { "full" } else { "smoke" })
        .set("git_rev", git_rev().map(Json::Str).unwrap_or(Json::Null))
        .set("rows", Json::Arr(rows.iter().map(row).collect()));
    if let Err(e) = std::fs::write(&out, doc.pretty()) {
        return fail(&format!("cannot write {out}: {e}"));
    }
    eprintln!("world_bench: wrote {out}");
}

fn fail(msg: &str) {
    eprintln!("error: {msg}");
    std::process::exit(1);
}
