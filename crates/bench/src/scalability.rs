//! Room-size scalability sweep over the forwarding policies.
//!
//! The paper's §6 finding — per-user throughput grows almost linearly
//! with room population under direct forwarding — lives at room sizes
//! the full session harness cannot reach cheaply. This module drives the
//! platform [`DataServer`] over a real [`Network`] in a stripped-down
//! microworld (no monitors, no control channel, no games): `n` users on
//! dedicated campus links push avatar updates while the server forwards
//! them under one [`ForwardPolicy`]. Wall time and the thread-local
//! simulation counters yield events/sec and packets/sec per point, the
//! perf trajectory recorded in `BENCH_netsim.json`.
//!
//! Everything here is measurement-only: the sweep shares the simulator's
//! determinism (same seed → same forwarding decisions) but its wall
//! times are, by nature, not reproducible.

use std::time::{Duration, Instant};

use svr_avatar::codec::{encode_update, make_update};
use svr_avatar::motion::MotionState;
use svr_avatar::skeleton::Vec3;
use svr_netsim::counters;
use svr_netsim::{Bitrate, LinkSpec, Network, NodeId, NodeKind, SimDuration, SimTime};
use svr_platform::server::{DataServer, DATA_SERVER_PORT};
use svr_platform::{ForwardPolicy, PlatformConfig};
use svr_transport::udp::{MsgKind, UdpChannel};

/// One measured (policy, room size) point.
#[derive(Debug, Clone)]
pub struct PointResult {
    /// Policy label (`direct`, `viewport`, `interest`, `remote_render`).
    pub policy: &'static str,
    /// Concurrent users in the room.
    pub users: usize,
    /// Avatar messages injected by clients.
    pub messages: u64,
    /// Messages the server fanned out to receivers.
    pub forwards: u64,
    /// Discrete network events processed (Tx completions, hop arrivals).
    pub sim_events: u64,
    /// Packets delivered end-to-end.
    pub sim_packets: u64,
    /// Wall-clock time for the point.
    pub wall: Duration,
}

impl PointResult {
    fn per_sec(&self, count: u64) -> f64 {
        let s = self.wall.as_secs_f64();
        if s > 0.0 {
            count as f64 / s
        } else {
            0.0
        }
    }

    /// Simulation events processed per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        self.per_sec(self.sim_events)
    }

    /// Packets delivered per wall-clock second.
    pub fn packets_per_sec(&self) -> f64 {
        self.per_sec(self.sim_packets)
    }
}

/// The policies the sweep compares, with stable labels.
pub fn policies() -> Vec<(&'static str, ForwardPolicy)> {
    vec![
        ("direct", ForwardPolicy::Direct),
        ("viewport", ForwardPolicy::ViewportAdaptive { width_deg: 150.0 }),
        ("interest", ForwardPolicy::InterestManagement { focus: 8, background_hz: 1.0 }),
        (
            "remote_render",
            ForwardPolicy::RemoteRender { bitrate: Bitrate::from_mbps(8), frame_hz: 60.0 },
        ),
    ]
}

/// Default room sizes for the sweep (2 → 512 users).
pub const ROOM_SIZES: [usize; 5] = [2, 8, 32, 128, 512];

/// Update rounds per room size: total injected messages are bounded so
/// the 512-user points stay tractable while small rooms get enough
/// rounds for stable timing.
pub fn rounds_for(users: usize) -> u64 {
    (1024 / users as u64).clamp(2, 32)
}

/// Deterministic spawn spot for user `u`: a loose spiral so distances —
/// and therefore focus sets and viewport decisions — are non-trivial.
fn spawn(u: usize) -> Vec3 {
    let golden = 2.399_963_f32; // radians
    let r = 1.0 + 0.15 * u as f32;
    let a = u as f32 * golden;
    Vec3::new(r * a.cos(), 0.0, r * a.sin())
}

/// Run one (policy, room size) point and measure it.
///
/// The microworld: one server node, `users` headsets each on a duplex
/// campus link straight to the server. Every 100 ms of simulated time
/// each user steps its wander motion and uploads one avatar update; the
/// pump interleaves deliveries, server processing, and server timers,
/// then drains two extra seconds so every scheduled forward lands.
pub fn run_point(policy: ForwardPolicy, label: &'static str, users: usize, seed: u64) -> PointResult {
    let started = Instant::now();
    let before = counters::snapshot();

    let mut cfg = PlatformConfig::vrchat();
    cfg.forward_policy = policy;

    let mut net = Network::new(seed);
    let server_node = net.add_node("data-server", NodeKind::Server);
    let mut nodes: Vec<NodeId> = Vec::with_capacity(users);
    for u in 0..users {
        let node = net.add_node(format!("U{u}"), NodeKind::Headset);
        net.add_duplex_link(node, server_node, LinkSpec::campus(), LinkSpec::campus());
        nodes.push(node);
    }

    let mut server = DataServer::new(server_node, &cfg, seed);
    let mut channels: Vec<UdpChannel> = Vec::with_capacity(users);
    let mut motions: Vec<MotionState> = Vec::with_capacity(users);
    for (u, &node) in nodes.iter().enumerate() {
        let port = 20_000 + u as u16;
        server.register(u as u32, node, port, SimTime::ZERO);
        channels.push(UdpChannel::new(u as u16, port, DATA_SERVER_PORT, SimTime::ZERO));
        let mut m = MotionState::new(seed ^ (u as u64).wrapping_mul(0x9E37_79B9), spawn(u), 0.0);
        m.wander();
        motions.push(m);
    }

    let rounds = rounds_for(users);
    let round_len = SimDuration::from_millis(100);
    let mut messages = 0u64;

    let pump = |net: &mut Network, server: &mut DataServer, t: SimTime| {
        for d in net.poll_all(t) {
            if d.dst == server_node {
                for (node, p) in server.on_packet(d.at, &d.packet) {
                    net.send(server_node, node, p);
                }
            }
            // Client-bound deliveries are sinks: the microworld measures
            // the server + network hot path, not client decode.
        }
        for (node, p) in server.on_tick(t) {
            net.send(server_node, node, p);
        }
    };

    for r in 0..rounds {
        let t = SimTime::ZERO + round_len * r;
        for u in 0..users {
            let (pose, vel) = motions[u].step(0.1, &cfg.embodiment);
            let body = encode_update(&make_update(u as u32, r as u32, &cfg.embodiment, pose, vel));
            if let Some(p) = channels[u].send(MsgKind::Avatar, t, &body) {
                net.send(nodes[u], server_node, p);
                messages += 1;
            }
        }
        pump(&mut net, &mut server, t);
    }

    // Drain: run the clock past every pending proc-delay forward.
    let end = SimTime::ZERO + round_len * rounds;
    for k in 1..=40u64 {
        pump(&mut net, &mut server, end + SimDuration::from_millis(50) * k);
    }

    let delta = counters::snapshot().since(before);
    PointResult {
        policy: label,
        users,
        messages,
        forwards: server.stats.forwards,
        sim_events: delta.events,
        sim_packets: delta.packets_delivered,
        wall: started.elapsed(),
    }
}

/// Run the full sweep: every policy × every room size.
pub fn run_sweep(seed: u64) -> Vec<PointResult> {
    let mut rows = Vec::new();
    for (label, policy) in policies() {
        for &n in ROOM_SIZES.iter() {
            rows.push(run_point(policy, label, n, seed));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_counts_messages_and_forwards() {
        let r = run_point(ForwardPolicy::Direct, "direct", 4, 7);
        assert_eq!(r.users, 4);
        assert_eq!(r.messages, 4 * rounds_for(4));
        // Direct forwarding fans every message out to the other 3 users.
        assert_eq!(r.forwards, r.messages * 3);
        assert!(r.sim_events > 0 && r.sim_packets > 0);
        assert!(r.events_per_sec() > 0.0);
    }

    #[test]
    fn interest_management_throttles_out_of_focus() {
        let r = run_point(
            ForwardPolicy::InterestManagement { focus: 2, background_hz: 0.5 },
            "interest",
            16,
            7,
        );
        // With focus=2 of 15 possible receivers, most forwards are
        // suppressed relative to direct fan-out.
        assert!(r.forwards < r.messages * 15 / 2, "forwards {} of {} msgs", r.forwards, r.messages);
    }

    #[test]
    fn rounds_scale_down_with_room_size() {
        assert_eq!(rounds_for(2), 32);
        assert_eq!(rounds_for(512), 2);
        assert!(rounds_for(128) < rounds_for(32));
    }
}
