//! Multi-room world scaling sweep over the forwarding policies.
//!
//! The single-room sweep (`scalability`) stops where one room stops —
//! 512 users on one server. Platforms run *worlds*: thousands of rooms
//! with users hopping between them. This module drives [`svr_world`]
//! grids from a few hundred users up to 1M+ users across 2k+ room
//! shards, per forwarding policy, and records wall time plus the
//! simulation counters aggregated across every shard — the perf
//! trajectory written to `BENCH_world.json`.
//!
//! The world runs themselves are deterministic (the ordered commit
//! makes reports identical at any `jobs`); the wall-clock rates are, by
//! nature, not reproducible, so `BENCH_world.json` stays outside the
//! determinism gate like every `BENCH_*.json`.

use std::time::{Duration, Instant};

use svr_world::{policies, World, WorldConfig};

/// One measured (policy, grid) point.
#[derive(Debug, Clone)]
pub struct WorldPoint {
    /// Policy label (`direct`, `viewport`, `interest`, `remote_render`).
    pub policy: &'static str,
    /// Room shards.
    pub rooms: usize,
    /// Total users across the world.
    pub users: usize,
    /// Commit windows run.
    pub ticks: u64,
    /// Avatar messages injected.
    pub messages: u64,
    /// Messages the shard servers fanned out.
    pub forwards: u64,
    /// Portal hops committed.
    pub hops: u64,
    /// World transfers committed.
    pub transfers: u64,
    /// Presence facts committed.
    pub presence: u64,
    /// Discrete network events across all shards.
    pub sim_events: u64,
    /// Packets delivered across all shards.
    pub sim_packets: u64,
    /// Committed fact-stream digest (determinism fingerprint).
    pub fact_digest: u64,
    /// Wall-clock time for the point (construction + run).
    pub wall: Duration,
}

impl WorldPoint {
    fn per_sec(&self, count: u64) -> f64 {
        let s = self.wall.as_secs_f64();
        if s > 0.0 {
            count as f64 / s
        } else {
            0.0
        }
    }

    /// Simulation events processed per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        self.per_sec(self.sim_events)
    }

    /// Packets delivered per wall-clock second.
    pub fn packets_per_sec(&self) -> f64 {
        self.per_sec(self.sim_packets)
    }
}

/// The sweep grids: `(rooms, users_per_room, ticks)`.
///
/// The full tier tops out at 2048 rooms x 512 users = 1,048,576
/// concurrent users; the smoke tier keeps `cargo test` fast.
pub fn grid(full: bool) -> Vec<(usize, usize, u64)> {
    if full {
        vec![(64, 64, 6), (256, 128, 4), (2048, 512, 2)]
    } else {
        vec![(4, 8, 3), (8, 16, 2)]
    }
}

/// Build the world configuration for one sweep point.
pub fn point_config(
    policy: svr_platform::ForwardPolicy,
    rooms: usize,
    users_per_room: usize,
    ticks: u64,
    seed: u64,
    jobs: usize,
) -> WorldConfig {
    let mut cfg = WorldConfig::small(seed);
    cfg.rooms = rooms;
    cfg.users_per_room = users_per_room;
    cfg.worlds = 4.min(rooms);
    cfg.policy = policy;
    cfg.ticks = ticks;
    cfg.jobs = jobs;
    // Big grids sample fewer senders per room so total injected load
    // grows with the room count, not with rooms x users.
    cfg.senders_per_room = if rooms * users_per_room >= 100_000 { 1 } else { 2 };
    cfg.validated()
}

/// Run one (policy, grid) point and measure it.
pub fn run_point(
    policy: svr_platform::ForwardPolicy,
    label: &'static str,
    rooms: usize,
    users_per_room: usize,
    ticks: u64,
    seed: u64,
    jobs: usize,
) -> WorldPoint {
    let started = Instant::now();
    let cfg = point_config(policy, rooms, users_per_room, ticks, seed, jobs);
    let rep = World::run(cfg);
    WorldPoint {
        policy: label,
        rooms,
        users: rep.users(),
        ticks: rep.ticks,
        messages: rep.stats.messages,
        forwards: rep.forwards,
        hops: rep.stats.hops,
        transfers: rep.stats.transfers,
        presence: rep.stats.presence_sent,
        sim_events: rep.stats.sim_events,
        sim_packets: rep.stats.sim_packets,
        fact_digest: rep.stats.fact_digest,
        wall: started.elapsed(),
    }
}

/// Run the sweep: every policy x every grid point.
pub fn run_sweep(seed: u64, full: bool, jobs: usize) -> Vec<WorldPoint> {
    let mut rows = Vec::new();
    for (label, policy) in policies() {
        for &(rooms, users_per_room, ticks) in grid(full).iter() {
            rows.push(run_point(policy, label, rooms, users_per_room, ticks, seed, jobs));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use svr_platform::ForwardPolicy;

    /// Smoke tier: the whole smoke sweep runs inside `cargo test`.
    #[test]
    fn smoke_sweep_produces_rows_for_every_policy() {
        let rows = run_sweep(7, false, 1);
        assert_eq!(rows.len(), policies().len() * grid(false).len());
        for r in &rows {
            assert!(r.users > 0 && r.rooms > 0);
            assert!(r.messages > 0, "{}: no traffic", r.policy);
            assert!(r.sim_events > 0, "{}: no events", r.policy);
            assert!(r.hops > 0, "{}: no cross-shard hops", r.policy);
        }
    }

    /// The measured run is the same world the determinism tests pin:
    /// identical seeds produce identical digests at any job count.
    #[test]
    fn point_digest_is_stable_across_jobs() {
        let a = run_point(ForwardPolicy::Direct, "direct", 4, 8, 2, 11, 1);
        let b = run_point(ForwardPolicy::Direct, "direct", 4, 8, 2, 11, 3);
        assert_eq!(a.fact_digest, b.fact_digest);
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.sim_events, b.sim_events);
    }
}
