//! Shared support for the benchmark harness.
//!
//! Each bench target regenerates paper tables/figures: it prints the
//! reproduced rows once (so `cargo bench` output doubles as the
//! reproduction record) and then times the regeneration.
//!
//! Timing backend: by default the in-tree [`timing`] module — a
//! dependency-free loop that mirrors the slice of criterion's API the
//! bench targets use, so the workspace builds with no external crates
//! and no network. Enabling the `criterion` feature (after uncommenting
//! the dev-dependency in `Cargo.toml`; it needs registry access) swaps
//! the same bench sources onto real criterion unchanged.

pub mod scalability;
pub mod worldscale;

/// Print a report exactly once per process (the timing loop calls the
/// closure many times; the rows only need to appear once).
pub fn print_once(flag: &std::sync::Once, report: impl std::fmt::Display) {
    flag.call_once(|| {
        println!("\n{report}");
    });
}

pub mod timing {
    //! A minimal, dependency-free stand-in for the criterion API.
    //!
    //! Implements exactly the surface the bench targets use —
    //! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
    //! [`BenchmarkGroup::sample_size`], [`BenchmarkGroup::throughput`],
    //! [`Bencher::iter`], [`Throughput`], and the `criterion_group!` /
    //! `criterion_main!` macros — so the same bench sources compile
    //! against either backend. Each benchmark runs one warm-up
    //! iteration, then `sample_size` timed iterations, and prints
    //! mean / min nanoseconds per iteration plus derived throughput.

    use std::time::Instant;

    /// Throughput annotation: scales the per-iteration time into a rate.
    #[derive(Debug, Clone, Copy)]
    pub enum Throughput {
        /// Items processed per iteration.
        Elements(u64),
        /// Bytes processed per iteration.
        Bytes(u64),
    }

    /// Entry point handed to each benchmark function.
    #[derive(Default)]
    pub struct Criterion {}

    impl Criterion {
        /// Time a single benchmark with default settings.
        pub fn bench_function<F>(&mut self, name: impl AsRef<str>, f: F) -> &mut Self
        where
            F: FnMut(&mut Bencher),
        {
            run_one(name.as_ref(), 10, None, f);
            self
        }

        /// Open a named group of related benchmarks.
        pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
            BenchmarkGroup { _criterion: self, name: name.to_string(), samples: 10, throughput: None }
        }
    }

    /// A group of benchmarks sharing sample-size/throughput settings.
    pub struct BenchmarkGroup<'a> {
        _criterion: &'a mut Criterion,
        name: String,
        samples: usize,
        throughput: Option<Throughput>,
    }

    impl BenchmarkGroup<'_> {
        /// Timed iterations per benchmark (criterion's sample count).
        pub fn sample_size(&mut self, n: usize) -> &mut Self {
            self.samples = n.max(1);
            self
        }

        /// Annotate work per iteration so a rate is reported.
        pub fn throughput(&mut self, t: Throughput) -> &mut Self {
            self.throughput = Some(t);
            self
        }

        /// Time one benchmark in this group.
        pub fn bench_function<F>(&mut self, name: impl AsRef<str>, f: F) -> &mut Self
        where
            F: FnMut(&mut Bencher),
        {
            let name = format!("{}/{}", self.name, name.as_ref());
            run_one(&name, self.samples, self.throughput, f);
            self
        }

        /// End the group (output is flushed eagerly; kept for API parity).
        pub fn finish(self) {}
    }

    /// Runs the closure under the timer.
    pub struct Bencher {
        samples: Vec<f64>,
        samples_wanted: usize,
    }

    impl Bencher {
        /// Time `routine` once per sample, one untimed warm-up first.
        pub fn iter<O, R>(&mut self, mut routine: R)
        where
            R: FnMut() -> O,
        {
            std::hint::black_box(routine());
            for _ in 0..self.samples_wanted {
                let started = Instant::now();
                std::hint::black_box(routine());
                self.samples.push(started.elapsed().as_secs_f64() * 1e9);
            }
        }
    }

    fn run_one<F>(name: &str, samples: usize, throughput: Option<Throughput>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { samples: Vec::new(), samples_wanted: samples };
        f(&mut bencher);
        if bencher.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let mean = bencher.samples.iter().sum::<f64>() / bencher.samples.len() as f64;
        let min = bencher.samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let rate = throughput.map(|t| match t {
            Throughput::Elements(n) => format!("  {:>10.0} elem/s", n as f64 / (mean / 1e9)),
            Throughput::Bytes(n) => {
                format!("  {:>10.1} MiB/s", n as f64 / (mean / 1e9) / (1024.0 * 1024.0))
            }
        });
        println!(
            "{name:<40} mean {:>12} ns  min {:>12} ns{}",
            group_digits(mean),
            group_digits(min),
            rate.unwrap_or_default(),
        );
    }

    /// `1234567.8` → `"1,234,568"`, for readable nanosecond columns.
    fn group_digits(x: f64) -> String {
        let raw = format!("{:.0}", x);
        let mut out = String::with_capacity(raw.len() + raw.len() / 3);
        for (i, c) in raw.chars().enumerate() {
            if i > 0 && (raw.len() - i) % 3 == 0 {
                out.push(',');
            }
            out.push(c);
        }
        out
    }

    /// Expands to a function running each benchmark in sequence.
    #[macro_export]
    macro_rules! criterion_group {
        ($name:ident, $($target:path),+ $(,)?) => {
            fn $name() {
                let mut criterion = $crate::timing::Criterion::default();
                $( $target(&mut criterion); )+
            }
        };
    }

    /// Expands to `main`, running each group.
    #[macro_export]
    macro_rules! criterion_main {
        ($($group:path),+ $(,)?) => {
            fn main() {
                $( $group(); )+
            }
        };
    }

    pub use crate::{criterion_group, criterion_main};

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn group_digits_inserts_separators() {
            assert_eq!(group_digits(1234567.8), "1,234,568");
            assert_eq!(group_digits(999.0), "999");
            assert_eq!(group_digits(0.2), "0");
        }

        #[test]
        fn bencher_collects_the_requested_samples() {
            let mut c = Criterion::default();
            let mut calls = 0u32;
            let mut g = c.benchmark_group("shim");
            g.sample_size(3);
            g.throughput(Throughput::Elements(1));
            g.bench_function("counts", |b| {
                b.iter(|| {
                    calls += 1;
                    calls
                })
            });
            g.finish();
            // 1 warm-up + 3 samples.
            assert_eq!(calls, 4);
        }
    }
}
