//! Shared support for the benchmark harness.
//!
//! Each bench target regenerates paper tables/figures: it prints the
//! reproduced rows once (so `cargo bench` output doubles as the
//! reproduction record) and then lets Criterion time the regeneration.

/// Print a report exactly once per process (criterion calls the closure
/// many times; the rows only need to appear once).
pub fn print_once(flag: &std::sync::Once, report: impl std::fmt::Display) {
    flag.call_once(|| {
        println!("\n{report}");
    });
}
