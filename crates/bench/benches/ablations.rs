//! Ablation benches: the §6.1 viewport probe, the §6.3 remote-rendering
//! comparison, the §5.1 device-independence check, and the Implication-2
//! embodiment cost curve.

#[cfg(feature = "criterion")]
use criterion::{criterion_group, criterion_main, Criterion};
#[cfg(not(feature = "criterion"))]
use svr_bench::timing::{criterion_group, criterion_main, Criterion};
use std::sync::Once;
use svr_bench::print_once;
use svr_core::experiments::{ablations, viewport};
use svr_platform::PlatformId;

static VP: Once = Once::new();
static RR: Once = Once::new();
static DI: Once = Once::new();

fn bench_viewport(c: &mut Criterion) {
    let cfg = viewport::ViewportConfig::full();
    print_once(&VP, viewport::run(PlatformId::AltspaceVr, cfg));
    let mut g = c.benchmark_group("viewport_probe");
    g.sample_size(10);
    let small = viewport::ViewportConfig::quick();
    g.bench_function("altspace_150_degrees", |b| {
        b.iter(|| std::hint::black_box(viewport::run(PlatformId::AltspaceVr, small)))
    });
    g.finish();
}

fn bench_remote_rendering(c: &mut Criterion) {
    let cfg = ablations::AblationConfig {
        user_counts: vec![2, 5, 10, 15],
        trials: 1,
        duration_s: 35,
        video_mbps: 8.0,
        seed: 0xAB1A,
    };
    print_once(&RR, ablations::remote_rendering(&cfg));
    let mut g = c.benchmark_group("remote_rendering");
    g.sample_size(10);
    let small = ablations::AblationConfig::quick();
    g.bench_function("direct_vs_remote", |b| {
        b.iter(|| std::hint::black_box(ablations::remote_rendering(&small)))
    });
    g.finish();
}

fn bench_device_independence(c: &mut Criterion) {
    DI.call_once(|| {
        let r = ablations::device_independence(0xD11CE);
        println!(
            "\n§5.1 device independence: Quest up {:.1} Kbps == PC up {:.1} Kbps; Quest FPS {:.1} vs PC FPS {:.1}",
            r.quest_up_kbps, r.pc_up_kbps, r.quest_fps, r.pc_fps
        );
        println!("Implication-2 embodiment cost curve (Kbps @ 30 Hz):");
        for (name, kbps) in ablations::embodiment_cost_curve() {
            println!("  {name:<24} {kbps:>9.1}");
        }
    });
    let mut g = c.benchmark_group("device_independence");
    g.sample_size(10);
    g.bench_function("quest_vs_pc", |b| {
        b.iter(|| std::hint::black_box(ablations::device_independence(0xD11CE)))
    });
    g.finish();
}

criterion_group!(ablation_benches, bench_viewport, bench_remote_rendering, bench_device_independence);
criterion_main!(ablation_benches);
