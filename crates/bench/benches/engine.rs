//! Engine micro-benchmarks: the substrates every experiment runs on.
//!
//! These justify the simulator's fitness for the workload: packet-pump
//! throughput, TCP transfer speed, avatar codec cost, quantizer cost,
//! and whole-session step rate.

use svr_netsim::buf::Bytes;
#[cfg(feature = "criterion")]
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
#[cfg(not(feature = "criterion"))]
use svr_bench::timing::{criterion_group, criterion_main, Criterion, Throughput};
use svr_avatar::codec::{decode_update, encode_update, make_update};
use svr_avatar::motion::MotionState;
use svr_avatar::quant::{dequantize_quat, quantize_quat};
use svr_avatar::skeleton::{Quat, Vec3};
use svr_avatar::Embodiment;
use svr_netsim::{LinkSpec, Network, NodeKind, Packet, Proto, SimDuration, SimTime, TransportHeader};
use svr_platform::session::run_session;
use svr_platform::{PlatformConfig, SessionConfig};

fn bench_packet_pump(c: &mut Criterion) {
    let mut g = c.benchmark_group("netsim");
    let n_packets = 10_000u64;
    g.throughput(Throughput::Elements(n_packets));
    g.bench_function("pump_10k_packets_3hop", |b| {
        b.iter(|| {
            let mut net = Network::new(1);
            let a = net.add_node("a", NodeKind::Headset);
            let ap = net.add_node("ap", NodeKind::AccessPoint);
            let s = net.add_node("s", NodeKind::Server);
            net.add_duplex_link(a, ap, LinkSpec::wifi(), LinkSpec::wifi());
            net.add_duplex_link(ap, s, LinkSpec::campus(), LinkSpec::campus());
            for i in 0..n_packets {
                if i % 64 == 0 {
                    net.poll_all(SimTime::from_micros(i * 100));
                }
                net.send(
                    a,
                    s,
                    Packet::new(
                        TransportHeader::datagram(Proto::Udp, 1, 2),
                        Bytes::from_static(&[0u8; 200]),
                    ),
                );
            }
            std::hint::black_box(net.poll_all(SimTime::from_secs(100)).len())
        })
    });
    g.finish();
}

fn bench_tcp_transfer(c: &mut Criterion) {
    use svr_transport::tcp::{TcpConfig, TcpConnection, TcpEvent};
    let mut g = c.benchmark_group("tcp");
    let bytes = 1_000_000u64;
    g.throughput(Throughput::Bytes(bytes));
    g.bench_function("transfer_1mb_loopback", |b| {
        b.iter(|| {
            let cfg = TcpConfig::default();
            let (mut a, syn) = TcpConnection::client(cfg, 1, 2, SimTime::ZERO);
            let mut srv = TcpConnection::listen(cfg, 2, 1);
            let mut a2b: Vec<Packet> = syn;
            let mut b2a: Vec<Packet> = Vec::new();
            let mut now = SimTime::ZERO;
            let payload = vec![7u8; bytes as usize];
            let mut offered = false;
            let mut delivered = 0u64;
            while delivered < bytes {
                now += SimDuration::from_millis(1);
                for p in a2b.drain(..) {
                    let (out, evs) = srv.on_packet(now, &p);
                    b2a.extend(out);
                    for e in evs {
                        if let TcpEvent::Data(d) = e {
                            delivered += d.len() as u64;
                        }
                    }
                }
                for p in b2a.drain(..) {
                    let (out, evs) = a.on_packet(now, &p);
                    a2b.extend(out);
                    if !offered && evs.contains(&TcpEvent::Connected) {
                        offered = true;
                        a2b.extend(a.send_data(now, &payload));
                    }
                }
                let (out, _) = a.on_tick(now);
                a2b.extend(out);
            }
            std::hint::black_box(delivered)
        })
    });
    g.finish();
}

fn bench_avatar_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("avatar_codec");
    for e in [Embodiment::upper_torso_no_face(), Embodiment::human_like()] {
        let mut m = MotionState::new(1, Vec3::ZERO, 0.0);
        m.wander();
        let (pose, vel) = m.step(0.05, &e);
        let update = make_update(1, 0, &e, pose, vel);
        let encoded = encode_update(&update);
        g.throughput(Throughput::Bytes(encoded.len() as u64));
        g.bench_function(format!("encode_{}", e.name), |b| {
            b.iter(|| std::hint::black_box(encode_update(&update)))
        });
        g.bench_function(format!("decode_{}", e.name), |b| {
            b.iter(|| std::hint::black_box(decode_update(&encoded).unwrap()))
        });
    }
    g.finish();
}

fn bench_quantizer(c: &mut Criterion) {
    let q = Quat::from_yaw(1.234).normalized();
    let packed = quantize_quat(q);
    c.bench_function("quant_quat_roundtrip", |b| {
        b.iter(|| std::hint::black_box(dequantize_quat(quantize_quat(std::hint::black_box(q)))))
    });
    c.bench_function("quant_quat_decode", |b| {
        b.iter(|| std::hint::black_box(dequantize_quat(std::hint::black_box(packed))))
    });
}

fn bench_session_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("session");
    g.sample_size(10);
    g.bench_function("five_user_vrchat_20s", |b| {
        b.iter(|| {
            let cfg = SessionConfig::walk_and_chat(
                PlatformConfig::vrchat(),
                5,
                SimDuration::from_secs(20),
                99,
            );
            std::hint::black_box(run_session(&cfg).server_stats.forwards)
        })
    });
    g.finish();
}

criterion_group!(
    engine,
    bench_packet_pump,
    bench_tcp_transfer,
    bench_avatar_codec,
    bench_quantizer,
    bench_session_step
);
criterion_main!(engine);
