//! Regenerate the paper's Figures 12 and 13 and the §8.2 tolerance
//! sweeps.

#[cfg(feature = "criterion")]
use criterion::{criterion_group, criterion_main, Criterion};
#[cfg(not(feature = "criterion"))]
use svr_bench::timing::{criterion_group, criterion_main, Criterion};
use std::sync::Once;
use svr_bench::print_once;
use svr_core::experiments::{disruption, fig12, fig13};
use svr_platform::PlatformId;

static F12: Once = Once::new();
static F13A: Once = Once::new();
static F13B: Once = Once::new();
static D82: Once = Once::new();

fn bench_fig12(c: &mut Criterion) {
    let cfg = fig12::Fig12Config {
        stages_mbps: vec![1.0, 0.7, 0.5, 0.3, 0.2, 0.1],
        stage_s: 20,
        tail_s: 30,
        start_s: 15,
        seed: 0xF1612,
    };
    print_once(&F12, fig12::run(&cfg));
    let mut g = c.benchmark_group("fig12");
    g.sample_size(10);
    let small = fig12::Fig12Config::quick();
    g.bench_function("worlds_downlink_staircase", |b| {
        b.iter(|| std::hint::black_box(fig12::run(&small)))
    });
    g.finish();
}

fn bench_fig13_top(c: &mut Criterion) {
    let cfg = fig13::UplinkCapsConfig {
        stages_mbps: vec![1.5, 1.2, 1.0, 0.7, 0.5, 0.3],
        stage_s: 20,
        start_s: 15,
        tail_s: 30,
        seed: 0xF1613,
    };
    print_once(&F13A, fig13::run_uplink_caps(&cfg));
    let mut g = c.benchmark_group("fig13_top");
    g.sample_size(10);
    let small = fig13::UplinkCapsConfig::quick();
    g.bench_function("worlds_uplink_staircase", |b| {
        b.iter(|| std::hint::black_box(fig13::run_uplink_caps(&small)))
    });
    g.finish();
}

fn bench_fig13_bottom(c: &mut Criterion) {
    let cfg = fig13::TcpPriorityConfig {
        delays_s: vec![5, 10, 15],
        stage_s: 30,
        loss_s: 45,
        start_s: 12,
        tail_s: 30,
        seed: 0xF1613B,
    };
    F13B.call_once(|| {
        let rep = fig13::run_tcp_priority(&cfg);
        println!("\n{rep}");
        for (i, d) in cfg.delays_s.iter().enumerate() {
            let a = cfg.start_s as usize + cfg.stage_s as usize * i;
            let gap = rep.longest_udp_gap(a, a + cfg.stage_s as usize);
            println!("  TCP delay {d}s → longest UDP gap {gap}s");
        }
        println!("  countdown stale during run: {}", rep.countdown_went_stale);
    });
    let mut g = c.benchmark_group("fig13_bottom");
    g.sample_size(10);
    let small = fig13::TcpPriorityConfig::quick();
    g.bench_function("worlds_tcp_priority", |b| {
        b.iter(|| std::hint::black_box(fig13::run_tcp_priority(&small)))
    });
    g.finish();
}

fn bench_disruption_82(c: &mut Criterion) {
    let cfg = disruption::DisruptionConfig {
        latencies_ms: vec![50, 100, 200, 300, 400, 500],
        losses_pct: vec![1.0, 3.0, 5.0, 7.0, 10.0, 20.0],
        actions: 8,
        seed: 0xD152,
    };
    D82.call_once(|| {
        for p in [PlatformId::Worlds, PlatformId::RecRoom, PlatformId::VrChat] {
            println!("\n{}", disruption::run(p, &cfg));
        }
    });
    let mut g = c.benchmark_group("disruption_82");
    g.sample_size(10);
    let small = disruption::DisruptionConfig::quick();
    g.bench_function("latency_loss_tolerance", |b| {
        b.iter(|| std::hint::black_box(disruption::run(PlatformId::RecRoom, &small)))
    });
    g.finish();
}

criterion_group!(
    disruption_benches,
    bench_fig12,
    bench_fig13_top,
    bench_fig13_bottom,
    bench_disruption_82
);
criterion_main!(disruption_benches);
