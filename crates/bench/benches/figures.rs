//! Regenerate the paper's Figures 2, 3, 6, 7, 8, 9 and 11.

#[cfg(feature = "criterion")]
use criterion::{criterion_group, criterion_main, Criterion};
#[cfg(not(feature = "criterion"))]
use svr_bench::timing::{criterion_group, criterion_main, Criterion};
use std::sync::Once;
use svr_bench::print_once;
use svr_core::experiments::{fig11, fig2, fig3, fig6, fig7, fig8, fig9};
use svr_platform::PlatformId;

static F2: Once = Once::new();
static F3: Once = Once::new();
static F6: Once = Once::new();
static F7: Once = Once::new();
static F8: Once = Once::new();
static F9: Once = Once::new();
static F11: Once = Once::new();

fn bench_fig2(c: &mut Criterion) {
    let cfg = fig2::Fig2Config { duration_s: 120, join_s: 60, seed: 0xF162 };
    F2.call_once(|| {
        for rep in fig2::run_all(cfg) {
            println!("\n{rep}");
        }
    });
    let mut g = c.benchmark_group("fig2");
    g.sample_size(10);
    g.bench_function("channel_timelines", |b| {
        b.iter(|| std::hint::black_box(fig2::run(PlatformId::VrChat, cfg)))
    });
    g.finish();
}

fn bench_fig3(c: &mut Criterion) {
    let cfg = fig3::Fig3Config::quick();
    print_once(&F3, fig3::run(PlatformId::RecRoom, cfg));
    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    g.bench_function("uplink_downlink_matching", |b| {
        b.iter(|| std::hint::black_box(fig3::run(PlatformId::RecRoom, cfg)))
    });
    g.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let cfg = fig6::Fig6Config { join_every_s: 12, settle_s: 12, tail_s: 12, n_users: 5, seed: 0xF166 };
    F6.call_once(|| {
        for variant in [fig6::Variant::VisibleThenAway, fig6::Variant::AwayThenVisible] {
            let rep = fig6::run(PlatformId::AltspaceVr, variant, cfg);
            println!("\n{rep}");
            println!(
                "  downlink before turn {:.1} Kbps → after turn {:.1} Kbps",
                rep.down_before_turn(),
                rep.down_after_turn()
            );
        }
    });
    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    g.bench_function("join_timeline_viewport", |b| {
        b.iter(|| {
            std::hint::black_box(fig6::run(PlatformId::AltspaceVr, fig6::Variant::VisibleThenAway, cfg))
        })
    });
    g.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let cfg = fig7::ScalingConfig {
        user_counts: vec![1, 2, 3, 5, 7, 10],
        trials: 1,
        duration_s: 40,
        seed: 0xF167,
    };
    F7.call_once(|| {
        for rep in fig7::run_all(&cfg) {
            println!("\n{rep}");
        }
    });
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    let small = fig7::ScalingConfig { user_counts: vec![1, 3, 5], trials: 1, duration_s: 30, seed: 0xF167 };
    g.bench_function("throughput_fps_sweep", |b| {
        b.iter(|| std::hint::black_box(fig7::run(PlatformId::VrChat, &small)))
    });
    g.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let cfg = fig7::ScalingConfig { user_counts: vec![1, 3, 5], trials: 1, duration_s: 30, seed: 0xF168 };
    print_once(&F8, fig8::run(&cfg));
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    g.bench_function("resource_sweep", |b| b.iter(|| std::hint::black_box(fig8::run(&cfg))));
    g.finish();
}

fn bench_fig9(c: &mut Criterion) {
    let cfg = fig9::Fig9Config { user_counts: vec![15, 20, 28], trials: 1, duration_s: 35, seed: 0xF169 };
    print_once(&F9, fig9::run(&cfg));
    let mut g = c.benchmark_group("fig9");
    g.sample_size(10);
    let small = fig9::Fig9Config::quick();
    g.bench_function("private_hubs_large_event", |b| {
        b.iter(|| std::hint::black_box(fig9::run(&small)))
    });
    g.finish();
}

fn bench_fig11(c: &mut Criterion) {
    let cfg = fig11::Fig11Config { user_counts: vec![2, 3, 4, 5, 6, 7], actions: 8, trials: 1, seed: 0xF1611 };
    print_once(&F11, fig11::run_all(&cfg));
    let mut g = c.benchmark_group("fig11");
    g.sample_size(10);
    let small = fig11::Fig11Config::quick();
    g.bench_function("latency_vs_users", |b| {
        b.iter(|| std::hint::black_box(fig11::run(PlatformId::RecRoom, &small)))
    });
    g.finish();
}

criterion_group!(
    figures,
    bench_fig2,
    bench_fig3,
    bench_fig6,
    bench_fig7,
    bench_fig8,
    bench_fig9,
    bench_fig11
);
criterion_main!(figures);
