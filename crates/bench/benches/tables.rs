//! Regenerate the paper's Tables 1–4.
//!
//! Each bench prints the reproduced table once, then Criterion times the
//! regeneration. Run the full-fidelity reproduction with
//! `REPRO_FULL=1 cargo run --release --example reproduce_all`.

#[cfg(feature = "criterion")]
use criterion::{criterion_group, criterion_main, Criterion};
#[cfg(not(feature = "criterion"))]
use svr_bench::timing::{criterion_group, criterion_main, Criterion};
use std::sync::Once;
use svr_bench::print_once;
use svr_core::experiments::{table1, table2, table3, table4};

static T1: Once = Once::new();
static T2: Once = Once::new();
static T3: Once = Once::new();
static T4: Once = Once::new();

fn bench_table1(c: &mut Criterion) {
    print_once(&T1, table1::run());
    c.bench_function("table1_feature_matrix", |b| {
        b.iter(|| std::hint::black_box(table1::run()))
    });
}

fn bench_table2(c: &mut Criterion) {
    let cfg = table2::Table2Config::full();
    print_once(&T2, table2::run(cfg));
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    g.bench_function("protocols_servers_rtt", |b| {
        b.iter(|| std::hint::black_box(table2::run(cfg)))
    });
    g.finish();
}

fn bench_table3(c: &mut Criterion) {
    let cfg = table3::Table3Config { trials: 2, duration_s: 40, seed: 0x7AB1E3 };
    print_once(&T3, table3::run(cfg));
    let mut g = c.benchmark_group("table3");
    g.sample_size(10);
    g.bench_function("two_user_throughput", |b| {
        b.iter(|| std::hint::black_box(table3::run(cfg)))
    });
    g.finish();
}

fn bench_table4(c: &mut Criterion) {
    let cfg = table4::Table4Config { trials: 1, actions: 10, seed: 0x7AB1E4 };
    print_once(&T4, table4::run(cfg));
    let mut g = c.benchmark_group("table4");
    g.sample_size(10);
    g.bench_function("latency_breakdown", |b| {
        b.iter(|| std::hint::black_box(table4::run(cfg)))
    });
    g.finish();
}

criterion_group!(tables, bench_table1, bench_table2, bench_table3, bench_table4);
criterion_main!(tables);
