//! In-tree byte buffers.
//!
//! A minimal, dependency-free replacement for the `bytes` crate covering
//! exactly the surface the simulator uses: an immutable, cheaply-cloneable
//! [`Bytes`] (shared `Arc<[u8]>` storage with zero-copy `clone`/`slice`)
//! and a growable [`BytesMut`] writer with big-endian `put_*` methods,
//! `split_to` framing, and `freeze`. Keeping this in-tree is part of the
//! offline/no-deps policy: the default feature set of the workspace must
//! build and test with no network access and no registry cache.

use std::fmt;
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous slice of memory.
///
/// `clone` and [`slice`](Bytes::slice) are O(1): they share the same
/// reference-counted allocation and only adjust the view window.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (does not allocate a backing store per call).
    pub fn new() -> Self {
        Bytes::default()
    }

    /// A buffer viewing a static slice (copied once into shared storage).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::copy_from_slice(data)
    }

    /// Copy `data` into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        let arc: Arc<[u8]> = Arc::from(data);
        let len = arc.len();
        Bytes { data: arc, start: 0, end: len }
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A zero-copy sub-view of this buffer.
    ///
    /// # Panics
    /// Panics if the range is out of bounds or decreasing.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end, "slice range reversed: {begin}..{end}");
        assert!(end <= len, "slice out of bounds: {end} > {len}");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// The bytes as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            // Match the escape style of the `bytes` crate closely enough
            // for test failure messages to stay readable.
            match b {
                b'"' => write!(f, "\\\"")?,
                b'\\' => write!(f, "\\\\")?,
                b'\n' => write!(f, "\\n")?,
                b'\r' => write!(f, "\\r")?,
                b'\t' => write!(f, "\\t")?,
                0x20..=0x7e => write!(f, "{}", b as char)?,
                _ => write!(f, "\\x{b:02x}")?,
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let arc: Arc<[u8]> = Arc::from(v);
        let len = arc.len();
        Bytes { data: arc, start: 0, end: len }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<BytesMut> for Bytes {
    fn from(m: BytesMut) -> Self {
        m.freeze()
    }
}

/// A growable byte buffer for assembling frames.
///
/// Writes append at the end; [`split_to`](BytesMut::split_to) removes a
/// framed prefix; [`freeze`](BytesMut::freeze) converts to an immutable
/// [`Bytes`] without copying.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with pre-reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut { data: Vec::with_capacity(capacity) }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Append a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    /// Append a big-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `i16`.
    pub fn put_i16(&mut self, v: i16) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a big-endian IEEE-754 `f32`.
    pub fn put_f32(&mut self, v: f32) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a slice.
    pub fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Append `cnt` copies of `val`.
    pub fn put_bytes(&mut self, val: u8, cnt: usize) {
        self.data.resize(self.data.len() + cnt, val);
    }

    /// Append a slice (`Vec`-style alias of [`put_slice`](Self::put_slice)).
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Remove and return the first `at` bytes, keeping the rest.
    ///
    /// # Panics
    /// Panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.data.len(), "split_to out of bounds");
        let rest = self.data.split_off(at);
        BytesMut { data: std::mem::replace(&mut self.data, rest) }
    }

    /// Convert to an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_share_storage_on_clone_and_slice() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let c = b.clone();
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(c, b);
        assert!(Arc::ptr_eq(&b.data, &s.data));
    }

    #[test]
    fn slice_forms() {
        let b = Bytes::from(vec![0, 1, 2, 3]);
        assert_eq!(&b.slice(..)[..], &[0, 1, 2, 3]);
        assert_eq!(&b.slice(2..)[..], &[2, 3]);
        assert_eq!(&b.slice(..2)[..], &[0, 1]);
        assert_eq!(&b.slice(1..=2)[..], &[1, 2]);
        let nested = b.slice(1..).slice(1..);
        assert_eq!(&nested[..], &[2, 3]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        let b = Bytes::from(vec![0, 1]);
        let _ = b.slice(..3);
    }

    #[test]
    fn put_methods_are_big_endian() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u8(0xAB);
        m.put_u16(0x0102);
        m.put_u32(0x03040506);
        m.put_u64(0x0708090A0B0C0D0E);
        let b = m.freeze();
        assert_eq!(
            &b[..],
            &[0xAB, 1, 2, 3, 4, 5, 6, 7, 8, 9, 0x0A, 0x0B, 0x0C, 0x0D, 0x0E]
        );
    }

    #[test]
    fn put_bytes_and_slices() {
        let mut m = BytesMut::new();
        m.put_slice(b"ab");
        m.extend_from_slice(b"cd");
        m.put_bytes(0xFF, 3);
        assert_eq!(&m[..], b"abcd\xff\xff\xff");
    }

    #[test]
    fn split_to_frames() {
        let mut m = BytesMut::new();
        m.put_slice(b"headbody");
        let head = m.split_to(4);
        assert_eq!(&head[..], b"head");
        assert_eq!(&m[..], b"body");
        let empty = m.split_to(0);
        assert!(empty.is_empty());
        assert_eq!(&m[..], b"body");
    }

    #[test]
    fn equality_across_types() {
        let b = Bytes::from_static(b"abc");
        assert_eq!(b, Bytes::copy_from_slice(b"abc"));
        assert_eq!(b, *b"abc");
        assert_eq!(b, b"abc"[..]);
        assert_eq!(b, b"abc".to_vec());
        assert_ne!(b, Bytes::new());
    }

    #[test]
    fn debug_is_printable() {
        let b = Bytes::from_static(b"a\"\n\x01");
        assert_eq!(format!("{b:?}"), "b\"a\\\"\\n\\x01\"");
    }
}
