//! A hierarchical timer wheel for the event queue.
//!
//! The simulator's events are keyed by `(time, insertion sequence)` and
//! that order is load-bearing: every experiment artifact is a function
//! of it. [`TimerWheel`] replaces the former `BinaryHeap` with a
//! calendar-queue layout — O(1) amortized push/pop for the dense,
//! near-future timers a packet simulation generates — while popping in
//! **exactly** the same total `(time, seq)` order (the model-based
//! tests below check it pop-for-pop against a reference heap).
//!
//! ## Layout
//!
//! Time is split into fixed-width slots of [`SLOT_MICROS`] µs:
//!
//! * `current` — a small min-heap over the slot window being drained.
//!   Whenever the wheel is non-empty, `current` is non-empty and its
//!   top is the global minimum — which is what lets
//!   [`TimerWheel::peek`] take `&self`. Because it only ever holds
//!   roughly one slot's worth of events, its sift costs stay at
//!   O(log w) for a small w instead of O(log n) over every pending
//!   timer (and, unlike a sorted vector, a burst of same-window pushes
//!   never degrades to per-push memmoves).
//! * `slots` — a ring of [`SLOTS`] unsorted buckets covering the next
//!   `SLOTS × SLOT_MICROS` µs after the current window; an entry lands
//!   in bucket `(t / SLOT_MICROS) % SLOTS`. Buckets are tipped into
//!   `current` when their window comes up, and keep their allocation
//!   for reuse.
//! * `overflow` — a binary heap for entries beyond the ring's horizon
//!   (long timers); migrated into the ring as the window advances.
//!
//! When the ring runs dry but the overflow still holds entries, the
//! window jumps straight to the overflow minimum instead of stepping
//! through empty slots, so sparse timelines cost no more than dense
//! ones. Keys `(time, seq)` are unique (`seq` is a monotone counter),
//! so the pop order is total and deterministic.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Width of one wheel slot, in microseconds (2^10 = 1.024 ms).
pub const SLOT_MICROS: u64 = 1 << 10;

/// Number of slots in the ring; the wheel covers `SLOTS × SLOT_MICROS`
/// (≈ 1.05 s) past the slot being drained before spilling to overflow.
pub const SLOTS: usize = 1 << 10;

/// One scheduled entry. Ordered by `(at, seq)` only; the payload does
/// not participate in comparisons.
#[derive(Debug)]
struct Entry<T> {
    at: SimTime,
    seq: u64,
    item: T,
}

impl<T> Entry<T> {
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// A priority queue over `(SimTime, u64)` keys with timer-wheel
/// performance and heap-identical pop order.
#[derive(Debug)]
pub struct TimerWheel<T> {
    slots: Vec<Vec<Entry<T>>>,
    /// Entries currently held in `slots`.
    wheel_len: usize,
    /// Min-heap over the window being drained; its top is the global
    /// minimum whenever `len > 0`.
    current: BinaryHeap<Reverse<Entry<T>>>,
    overflow: BinaryHeap<Reverse<Entry<T>>>,
    /// Exclusive upper bound (µs) of the window `current` covers; the
    /// ring covers `[current_end, horizon)`.
    current_end: u64,
    len: usize,
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimerWheel<T> {
    /// An empty wheel.
    pub fn new() -> Self {
        TimerWheel {
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
            wheel_len: 0,
            current: BinaryHeap::new(),
            overflow: BinaryHeap::new(),
            current_end: SLOT_MICROS,
            len: 0,
        }
    }

    /// Number of scheduled entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entries are scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// First µs tick *after* the slot containing `t` (saturating near
    /// `u64::MAX`; a saturated window simply keeps everything sorted in
    /// `current`, which stays correct).
    fn anchor_after(t: u64) -> u64 {
        (t / SLOT_MICROS)
            .checked_add(1)
            .and_then(|s| s.checked_mul(SLOT_MICROS))
            .unwrap_or(u64::MAX)
    }

    fn horizon(&self) -> u64 {
        self.current_end.saturating_add(SLOT_MICROS * SLOTS as u64)
    }

    fn slot_index(t: u64) -> usize {
        ((t / SLOT_MICROS) % SLOTS as u64) as usize
    }

    /// Schedule `item` at `(at, seq)`. Keys must be unique; `seq` is
    /// expected to come from a monotone counter.
    pub fn push(&mut self, at: SimTime, seq: u64, item: T) {
        let t = at.as_micros();
        let e = Entry { at, seq, item };
        self.len += 1;
        if self.len == 1 {
            // Re-anchor the window on the first entry after an empty
            // spell: its own slot becomes the current window.
            self.current_end = Self::anchor_after(t);
            self.current.push(Reverse(e));
        } else if t < self.current_end {
            self.current.push(Reverse(e));
        } else if t < self.horizon() {
            self.slots[Self::slot_index(t)].push(e);
            self.wheel_len += 1;
        } else {
            self.overflow.push(Reverse(e));
        }
    }

    /// The smallest `(time, seq)` key, without removing it.
    pub fn peek(&self) -> Option<(SimTime, u64)> {
        self.current.peek().map(|Reverse(e)| e.key())
    }

    /// Remove and return the entry with the smallest `(time, seq)`.
    pub fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        let Reverse(e) = self.current.pop()?;
        self.len -= 1;
        if self.current.is_empty() && self.len > 0 {
            self.refill();
        }
        Some((e.at, e.seq, e.item))
    }

    /// Move overflow entries that now fall inside the window into the
    /// ring (or straight into `current` if already past its start).
    fn migrate_overflow(&mut self) {
        let horizon = self.horizon();
        while let Some(Reverse(top)) = self.overflow.peek() {
            if top.at.as_micros() >= horizon {
                break;
            }
            let Reverse(e) = self.overflow.pop().expect("peeked");
            let t = e.at.as_micros();
            if t < self.current_end {
                self.current.push(Reverse(e));
            } else {
                self.slots[Self::slot_index(t)].push(e);
                self.wheel_len += 1;
            }
        }
    }

    /// Restore the invariant that `current` holds the minimum: advance
    /// the window slot by slot (or jump straight to the overflow
    /// minimum when the ring is empty) until a non-empty slot drains.
    fn refill(&mut self) {
        debug_assert!(self.current.is_empty() && self.len > 0);
        while self.current.is_empty() {
            if self.wheel_len == 0 {
                // Only overflow left: jump, don't walk empty slots.
                let next = self.overflow.peek().expect("len > 0").0.at.as_micros();
                self.current_end = Self::anchor_after(next);
            }
            self.migrate_overflow();
            if self.current.is_empty() && self.wheel_len > 0 {
                let idx = Self::slot_index(self.current_end);
                let slot = &mut self.slots[idx];
                self.wheel_len -= slot.len();
                // `drain` keeps the slot's buffer for reuse.
                self.current.extend(slot.drain(..).map(Reverse));
                self.current_end = self.current_end.saturating_add(SLOT_MICROS);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    /// Reference implementation: the `BinaryHeap` the wheel replaced.
    #[derive(Default)]
    struct RefHeap {
        heap: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
    }

    impl RefHeap {
        fn push(&mut self, at: SimTime, seq: u64, item: u32) {
            self.heap.push(Reverse((at, seq, item)));
        }
        fn pop(&mut self) -> Option<(SimTime, u64, u32)> {
            self.heap.pop().map(|Reverse(e)| e)
        }
        fn peek(&self) -> Option<(SimTime, u64)> {
            self.heap.peek().map(|Reverse((at, seq, _))| (*at, *seq))
        }
    }

    fn model_check(mut times: impl FnMut(&mut SimRng, SimTime) -> u64, seed: u64, ops: usize) {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut wheel = TimerWheel::new();
        let mut reference = RefHeap::default();
        let mut seq = 0u64;
        let mut now = SimTime::ZERO;
        for _ in 0..ops {
            if wheel.is_empty() || rng.chance(0.6) {
                // Schedule at or after `now` (the simulator never
                // schedules into the past).
                let at = SimTime::from_micros(times(&mut rng, now));
                wheel.push(at, seq, seq as u32);
                reference.push(at, seq, seq as u32);
                seq += 1;
            } else {
                assert_eq!(wheel.peek(), reference.peek());
                let got = wheel.pop();
                let want = reference.pop();
                assert_eq!(got, want);
                if let Some((at, _, _)) = got {
                    now = at;
                }
            }
            assert_eq!(wheel.len(), reference.heap.len());
        }
        // Drain both completely; order must match to the last entry.
        while let Some(want) = reference.pop() {
            assert_eq!(wheel.pop(), Some(want));
        }
        assert!(wheel.is_empty());
        assert_eq!(wheel.pop(), None);
        assert_eq!(wheel.peek(), None);
    }

    #[test]
    fn matches_heap_on_dense_near_future_times() {
        // Sub-slot-width deltas: everything lands in current/near slots.
        model_check(|rng, now| now.as_micros() + rng.range_u64(0, 2_000), 0xA1, 4_000);
    }

    #[test]
    fn matches_heap_on_mixed_horizons() {
        // Mix of in-slot, in-ring, and far-overflow times.
        model_check(
            |rng, now| {
                let base = now.as_micros();
                match rng.range_u64(0, 3) {
                    0 => base + rng.range_u64(0, 500),
                    1 => base + rng.range_u64(0, SLOT_MICROS * SLOTS as u64),
                    _ => base + rng.range_u64(0, 120_000_000), // up to 2 min out
                }
            },
            0xB2,
            4_000,
        );
    }

    #[test]
    fn matches_heap_on_sparse_far_jumps() {
        // Every timer lands far beyond the horizon: exercises the jump
        // path (no slot walking) repeatedly.
        model_check(
            |rng, now| now.as_micros() + 2_000_000_000 + rng.range_u64(0, 1_000_000),
            0xC3,
            1_200,
        );
    }

    #[test]
    fn matches_heap_with_equal_times_tie_broken_by_seq() {
        // Many entries at identical times: order must follow seq.
        model_check(|rng, now| now.as_micros() + rng.range_u64(0, 3) * 40_000, 0xD4, 3_000);
    }

    #[test]
    fn empty_reanchor_handles_regression_to_earlier_windows() {
        // Drain to empty at a large time, then schedule near zero again:
        // the re-anchor must not leave the window stuck in the future.
        let mut w = TimerWheel::new();
        w.push(SimTime::from_secs(100), 0, 'a');
        assert_eq!(w.pop().map(|e| e.2), Some('a'));
        assert!(w.is_empty());
        w.push(SimTime::from_micros(5), 1, 'b');
        w.push(SimTime::from_secs(50), 2, 'c');
        w.push(SimTime::from_micros(4), 3, 'd');
        assert_eq!(w.peek(), Some((SimTime::from_micros(4), 3)));
        assert_eq!(w.pop().map(|e| e.2), Some('d'));
        assert_eq!(w.pop().map(|e| e.2), Some('b'));
        assert_eq!(w.pop().map(|e| e.2), Some('c'));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn push_during_drain_lands_in_sorted_position() {
        let mut w = TimerWheel::new();
        for i in 0..10u64 {
            w.push(SimTime::from_micros(100 + i), i, i);
        }
        assert_eq!(w.pop().map(|e| e.2), Some(0));
        // Earlier than everything still queued, inside the current window.
        w.push(SimTime::from_micros(50), 10, 99);
        assert_eq!(w.peek(), Some((SimTime::from_micros(50), 10)));
        assert_eq!(w.pop().map(|e| e.2), Some(99));
        assert_eq!(w.pop().map(|e| e.2), Some(1));
    }

    #[test]
    fn slot_buffers_are_reused_across_windows() {
        // Two bursts a window apart reuse the same slot index; this is
        // a behavioural smoke test that draining leaves the wheel
        // consistent (capacity reuse itself is invisible from outside).
        let mut w = TimerWheel::new();
        let mut seq = 0u64;
        for round in 0..3u64 {
            let base = round * SLOT_MICROS * SLOTS as u64;
            for i in 0..100u64 {
                w.push(SimTime::from_micros(base + i * 7), seq, seq as u32);
                seq += 1;
            }
            let mut last = None;
            for _ in 0..100 {
                let (at, s, _) = w.pop().unwrap();
                assert!(last <= Some((at, s)));
                last = Some((at, s));
            }
            assert!(w.is_empty());
        }
    }
}
