//! Byte-level wire encoding of simulated packets.
//!
//! The simulator moves typed [`crate::Packet`]s, but the capture subsystem
//! (and the pcap dump writer) needs an honest on-wire byte representation,
//! the way a real AP capture would see frames. This module defines the
//! fixed-size `SVRP` header that frames every simulated packet, with an
//! Internet-style ones-complement checksum over header and payload.
//!
//! Layout (network byte order, 28 bytes):
//!
//! ```text
//!  0      2      3      4      6      8      12     16     18     20     24     28
//!  +------+------+------+------+------+------+------+------+------+------+------+
//!  |magic |proto |flags |sport |dport | seq  | ack  |window| plen | src  | dst  |
//!  +------+------+------+------+------+------+------+------+------+------+------+
//!  | csum | payload ...
//!  +------+-------------
//! ```

use crate::packet::{Packet, Proto, TcpFlags, TransportHeader};
use crate::buf::{Bytes, BytesMut};

/// Magic bytes identifying an SVRP frame ("VR").
pub const MAGIC: u16 = 0x5652;

/// Encoded header length in bytes (before payload).
pub const HEADER_LEN: usize = 30;

/// Errors produced when decoding a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Buffer shorter than the fixed header.
    Truncated {
        /// Bytes required.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// Magic bytes did not match.
    BadMagic(u16),
    /// Unknown protocol discriminant.
    BadProto(u8),
    /// Checksum over header+payload did not verify.
    BadChecksum {
        /// Checksum carried in the frame.
        expected: u16,
        /// Checksum computed over the received bytes.
        computed: u16,
    },
    /// Payload length field exceeds the remaining buffer.
    BadLength {
        /// Payload length claimed by the header.
        claimed: usize,
        /// Payload bytes actually present.
        present: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { needed, got } => {
                write!(f, "truncated frame: need {needed} bytes, got {got}")
            }
            WireError::BadMagic(m) => write!(f, "bad magic 0x{m:04x}"),
            WireError::BadProto(p) => write!(f, "unknown protocol {p}"),
            WireError::BadChecksum { expected, computed } => {
                write!(f, "checksum mismatch: frame 0x{expected:04x}, computed 0x{computed:04x}")
            }
            WireError::BadLength { claimed, present } => {
                write!(f, "payload length {claimed} exceeds buffer ({present} present)")
            }
        }
    }
}

impl std::error::Error for WireError {}

fn proto_to_byte(p: Proto) -> u8 {
    match p {
        Proto::Udp => 17,
        Proto::Tcp => 6,
        Proto::Icmp => 1,
    }
}

fn proto_from_byte(b: u8) -> Result<Proto, WireError> {
    match b {
        17 => Ok(Proto::Udp),
        6 => Ok(Proto::Tcp),
        1 => Ok(Proto::Icmp),
        other => Err(WireError::BadProto(other)),
    }
}

/// RFC 1071 Internet checksum (ones-complement sum of 16-bit words).
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

/// Encode a packet into its on-wire byte representation.
pub fn encode(pkt: &Packet) -> Bytes {
    let h = &pkt.header;
    let mut buf = BytesMut::with_capacity(HEADER_LEN + pkt.payload.len());
    buf.put_u16(MAGIC);
    buf.put_u8(proto_to_byte(h.proto));
    buf.put_u8(h.flags.to_byte());
    buf.put_u16(h.src_port);
    buf.put_u16(h.dst_port);
    buf.put_u32(h.seq);
    buf.put_u32(h.ack);
    buf.put_u16(h.window);
    buf.put_u16(pkt.payload.len() as u16);
    buf.put_u32(pkt.src.index() as u32);
    buf.put_u32(pkt.dst.index() as u32);
    buf.put_u16(0); // checksum placeholder
    buf.extend_from_slice(&pkt.payload);
    let csum = internet_checksum(&buf);
    buf[HEADER_LEN - 2..HEADER_LEN].copy_from_slice(&csum.to_be_bytes());
    buf.freeze()
}

/// A decoded frame: header, payload, and routing metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedFrame {
    /// Transport header.
    pub header: TransportHeader,
    /// Payload bytes.
    pub payload: Bytes,
    /// Source node index carried in the frame.
    pub src: u32,
    /// Destination node index carried in the frame.
    pub dst: u32,
}

/// Decode and verify an SVRP frame.
pub fn decode(data: &[u8]) -> Result<DecodedFrame, WireError> {
    if data.len() < HEADER_LEN {
        return Err(WireError::Truncated { needed: HEADER_LEN, got: data.len() });
    }
    let magic = u16::from_be_bytes([data[0], data[1]]);
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let proto = proto_from_byte(data[2])?;
    let flags = TcpFlags::from_byte(data[3]);
    let src_port = u16::from_be_bytes([data[4], data[5]]);
    let dst_port = u16::from_be_bytes([data[6], data[7]]);
    let seq = u32::from_be_bytes([data[8], data[9], data[10], data[11]]);
    let ack = u32::from_be_bytes([data[12], data[13], data[14], data[15]]);
    let window = u16::from_be_bytes([data[16], data[17]]);
    let plen = u16::from_be_bytes([data[18], data[19]]) as usize;
    let src = u32::from_be_bytes([data[20], data[21], data[22], data[23]]);
    let dst = u32::from_be_bytes([data[24], data[25], data[26], data[27]]);
    let expected = u16::from_be_bytes([data[28], data[29]]);

    let present = data.len() - HEADER_LEN;
    if plen > present {
        return Err(WireError::BadLength { claimed: plen, present });
    }
    let frame = &data[..HEADER_LEN + plen];
    let mut zeroed = frame.to_vec();
    zeroed[HEADER_LEN - 2] = 0;
    zeroed[HEADER_LEN - 1] = 0;
    let computed = internet_checksum(&zeroed);
    if computed != expected {
        return Err(WireError::BadChecksum { expected, computed });
    }

    Ok(DecodedFrame {
        header: TransportHeader { proto, src_port, dst_port, seq, ack, flags, window },
        payload: Bytes::copy_from_slice(&frame[HEADER_LEN..]),
        src,
        dst,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::TransportHeader;

    fn sample_packet(payload: &'static [u8]) -> Packet {
        let mut p = Packet::new(
            TransportHeader::tcp(443, 50123, 1000, 2000, TcpFlags::DATA),
            Bytes::from_static(payload),
        );
        p.src = crate::node::NodeId(3);
        p.dst = crate::node::NodeId(9);
        p
    }

    #[test]
    fn encode_decode_roundtrip() {
        let pkt = sample_packet(b"avatar-update");
        let bytes = encode(&pkt);
        let dec = decode(&bytes).unwrap();
        assert_eq!(dec.header, pkt.header);
        assert_eq!(dec.payload, pkt.payload);
        assert_eq!(dec.src, 3);
        assert_eq!(dec.dst, 9);
    }

    #[test]
    fn truncated_frame_rejected() {
        let pkt = sample_packet(b"x");
        let bytes = encode(&pkt);
        let err = decode(&bytes[..10]).unwrap_err();
        assert!(matches!(err, WireError::Truncated { .. }));
    }

    #[test]
    fn bad_magic_rejected() {
        let pkt = sample_packet(b"x");
        let mut bytes = encode(&pkt).to_vec();
        bytes[0] = 0xAB;
        assert!(matches!(decode(&bytes).unwrap_err(), WireError::BadMagic(_)));
    }

    #[test]
    fn corrupt_payload_fails_checksum() {
        let pkt = sample_packet(b"hello world");
        let mut bytes = encode(&pkt).to_vec();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        assert!(matches!(decode(&bytes).unwrap_err(), WireError::BadChecksum { .. }));
    }

    #[test]
    fn corrupt_header_fails_checksum() {
        let pkt = sample_packet(b"hello world");
        let mut bytes = encode(&pkt).to_vec();
        bytes[8] ^= 0x01; // seq
        assert!(matches!(decode(&bytes).unwrap_err(), WireError::BadChecksum { .. }));
    }

    #[test]
    fn bad_proto_rejected() {
        let pkt = sample_packet(b"x");
        let mut bytes = encode(&pkt).to_vec();
        bytes[2] = 99;
        // Proto is checked before checksum, so this surfaces as BadProto.
        assert!(matches!(decode(&bytes).unwrap_err(), WireError::BadProto(99)));
    }

    #[test]
    fn length_overrun_rejected() {
        let pkt = sample_packet(b"abc");
        let mut bytes = encode(&pkt).to_vec();
        bytes[18] = 0xFF;
        bytes[19] = 0xFF;
        assert!(matches!(decode(&bytes).unwrap_err(), WireError::BadLength { .. }));
    }

    #[test]
    fn trailing_garbage_ignored() {
        // A capture buffer may hold more bytes than the frame; decode should
        // honor the length field.
        let pkt = sample_packet(b"abc");
        let mut bytes = encode(&pkt).to_vec();
        bytes.extend_from_slice(b"garbage");
        let dec = decode(&bytes).unwrap();
        assert_eq!(dec.payload, Bytes::from_static(b"abc"));
    }

    #[test]
    fn checksum_known_vector() {
        // RFC 1071 example-style check: sum of all-zero data is 0xFFFF.
        assert_eq!(internet_checksum(&[0, 0, 0, 0]), 0xFFFF);
        // Odd-length input pads with zero.
        assert_eq!(internet_checksum(&[0xFF]), internet_checksum(&[0xFF, 0x00]));
    }

    /// Deterministic seeded-loop fallbacks for the proptest versions below:
    /// always compiled, so the properties stay covered offline.
    #[test]
    fn prop_roundtrip_seeded() {
        let mut rng = crate::rng::SimRng::seed_from_u64(0x517E_0001);
        for _case in 0..128 {
            let payload: Vec<u8> = (0..rng.range_u64(0, 1399))
                .map(|_| rng.range_u64(0, 255) as u8)
                .collect();
            let proto = match rng.range_u64(0, 2) {
                0 => Proto::Udp,
                1 => Proto::Tcp,
                _ => Proto::Icmp,
            };
            let header = TransportHeader {
                proto,
                src_port: rng.range_u64(0, u16::MAX as u64) as u16,
                dst_port: rng.range_u64(0, u16::MAX as u64) as u16,
                seq: rng.range_u64(0, u32::MAX as u64) as u32,
                ack: rng.range_u64(0, u32::MAX as u64) as u32,
                flags: TcpFlags::from_byte(rng.range_u64(0, 31) as u8),
                window: rng.range_u64(0, u16::MAX as u64) as u16,
            };
            let mut pkt = Packet::new(header, Bytes::from(payload.clone()));
            pkt.src = crate::node::NodeId(1);
            pkt.dst = crate::node::NodeId(2);
            let enc = encode(&pkt);
            let dec = decode(&enc).unwrap();
            assert_eq!(dec.header, header);
            assert_eq!(dec.payload.as_ref(), payload.as_slice());
        }
    }

    #[test]
    fn prop_single_bitflip_detected_seeded() {
        let mut rng = crate::rng::SimRng::seed_from_u64(0x517E_0002);
        for _case in 0..128 {
            let payload: Vec<u8> = (0..rng.range_u64(1, 255))
                .map(|_| rng.range_u64(0, 255) as u8)
                .collect();
            let flip_bit = rng.range_u64(0, 63) as usize;
            let mut pkt = Packet::new(
                TransportHeader::datagram(Proto::Udp, 10, 20),
                Bytes::from(payload),
            );
            pkt.src = crate::node::NodeId(0);
            pkt.dst = crate::node::NodeId(1);
            let enc = encode(&pkt).to_vec();
            let byte = (flip_bit / 8) % enc.len();
            let bit = flip_bit % 8;
            let mut corrupted = enc.clone();
            corrupted[byte] ^= 1 << bit;
            // A single bit flip must never decode to the same frame content.
            if let Ok(frame) = decode(&corrupted) {
                let orig = decode(&enc).unwrap();
                assert_ne!(frame, orig);
            }
        }
    }

    #[cfg(feature = "proptests")]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
        #[test]
        fn prop_roundtrip(
            payload in proptest::collection::vec(any::<u8>(), 0..1400),
            sport in any::<u16>(),
            dport in any::<u16>(),
            seq in any::<u32>(),
            ack in any::<u32>(),
            flags_byte in 0u8..32,
            window in any::<u16>(),
            proto_sel in 0u8..3,
        ) {
            let proto = match proto_sel { 0 => Proto::Udp, 1 => Proto::Tcp, _ => Proto::Icmp };
            let header = TransportHeader {
                proto,
                src_port: sport,
                dst_port: dport,
                seq,
                ack,
                flags: TcpFlags::from_byte(flags_byte),
                window,
            };
            let mut pkt = Packet::new(header, Bytes::from(payload.clone()));
            pkt.src = crate::node::NodeId(1);
            pkt.dst = crate::node::NodeId(2);
            let enc = encode(&pkt);
            let dec = decode(&enc).unwrap();
            prop_assert_eq!(dec.header, header);
            prop_assert_eq!(dec.payload.as_ref(), payload.as_slice());
        }

        #[test]
        fn prop_single_bitflip_detected(
            payload in proptest::collection::vec(any::<u8>(), 1..256),
            flip_bit in 0usize..64,
        ) {
            let mut pkt = Packet::new(
                TransportHeader::datagram(Proto::Udp, 10, 20),
                Bytes::from(payload),
            );
            pkt.src = crate::node::NodeId(0);
            pkt.dst = crate::node::NodeId(1);
            let enc = encode(&pkt).to_vec();
            let byte = (flip_bit / 8) % enc.len();
            let bit = flip_bit % 8;
            let mut corrupted = enc.clone();
            corrupted[byte] ^= 1 << bit;
            // A single bit flip must never decode to the same frame content.
            match decode(&corrupted) {
                Err(_) => {}
                Ok(frame) => {
                    let orig = decode(&enc).unwrap();
                    prop_assert_ne!(frame, orig);
                }
            }
        }
        }
    }
}
