//! `tc-netem`-style impairment schedules.
//!
//! §8 of the paper disrupts one user's uplink or downlink with a staircase
//! of rate caps, added delays, and packet-loss rates, each stage lasting
//! 40 s followed by a 60 s recovery window. [`NetemSchedule`] reproduces
//! that tool: a time-indexed sequence of [`Impairment`]s applied to one
//! direction of one link.

use crate::time::{SimDuration, SimTime};
use crate::units::Bitrate;

/// The impairment applied during one schedule stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Impairment {
    /// Cap on the link rate (`None` = link native rate).
    pub rate_limit: Option<Bitrate>,
    /// Extra one-way delay added after serialization.
    pub extra_delay: SimDuration,
    /// Uniform random jitter added on top of `extra_delay` (tc-netem's
    /// `delay <base> <jitter>`): each packet gets `U(0, jitter)` more.
    pub jitter: SimDuration,
    /// Additional random loss probability in `[0, 1]`.
    pub loss: f64,
    /// Probability of flipping one payload byte in transit (smoltcp-style
    /// fault injection). Checksummed transports (TCP) discard corrupted
    /// segments; raw datagrams deliver the damage to the application.
    pub corrupt: f64,
}

impl Impairment {
    /// No impairment (the "N" stages in the paper's figures).
    pub const NONE: Impairment = Impairment {
        rate_limit: None,
        extra_delay: SimDuration::ZERO,
        jitter: SimDuration::ZERO,
        loss: 0.0,
        corrupt: 0.0,
    };

    /// Rate cap only.
    pub fn rate(limit: Bitrate) -> Self {
        Impairment { rate_limit: Some(limit), ..Impairment::NONE }
    }

    /// Added delay only.
    pub fn delay(extra: SimDuration) -> Self {
        Impairment { extra_delay: extra, ..Impairment::NONE }
    }

    /// Added delay with uniform jitter (netem `delay base jitter`).
    pub fn delay_jitter(extra: SimDuration, jitter: SimDuration) -> Self {
        Impairment { extra_delay: extra, jitter, ..Impairment::NONE }
    }

    /// Random loss only.
    pub fn loss(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss probability out of range: {p}");
        Impairment { loss: p, ..Impairment::NONE }
    }

    /// Random single-byte corruption only.
    pub fn corrupt(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "corrupt probability out of range: {p}");
        Impairment { corrupt: p, ..Impairment::NONE }
    }
}

/// One stage of a schedule: `[start, end)` with a fixed impairment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetemStage {
    /// Stage start (inclusive).
    pub start: SimTime,
    /// Stage end (exclusive).
    pub end: SimTime,
    /// Impairment in force during the stage.
    pub impairment: Impairment,
}

/// A time-ordered impairment schedule for one link direction.
#[derive(Debug, Clone, Default)]
pub struct NetemSchedule {
    stages: Vec<NetemStage>,
}

impl NetemSchedule {
    /// An empty schedule (never impairs).
    pub fn none() -> Self {
        NetemSchedule { stages: Vec::new() }
    }

    /// Build from explicit stages. Stages must be non-overlapping and
    /// sorted by start time.
    pub fn from_stages(stages: Vec<NetemStage>) -> Self {
        for w in stages.windows(2) {
            assert!(
                w[0].end <= w[1].start,
                "netem stages overlap: {:?} then {:?}",
                w[0],
                w[1]
            );
        }
        for s in &stages {
            assert!(s.start < s.end, "empty netem stage: {s:?}");
        }
        NetemSchedule { stages }
    }

    /// The paper's §8 pattern: consecutive equal-length stages starting at
    /// `start`, one per impairment, back to normal afterwards.
    pub fn staircase(start: SimTime, stage_len: SimDuration, impairments: &[Impairment]) -> Self {
        let mut stages = Vec::with_capacity(impairments.len());
        let mut t = start;
        for imp in impairments {
            stages.push(NetemStage { start: t, end: t + stage_len, impairment: *imp });
            t += stage_len;
        }
        NetemSchedule { stages }
    }

    /// The impairment in force at `t` ([`Impairment::NONE`] between stages).
    pub fn at(&self, t: SimTime) -> Impairment {
        // Schedules are tiny (≤ ~8 stages); linear scan is clearest.
        for s in &self.stages {
            if t >= s.start && t < s.end {
                return s.impairment;
            }
        }
        Impairment::NONE
    }

    /// Whether any stage is configured.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// End of the last stage, if any (useful for sizing experiment runs).
    pub fn last_end(&self) -> Option<SimTime> {
        self.stages.last().map(|s| s.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staircase_matches_paper_pattern() {
        // §8: downlink stages 1.0/0.7/0.5/0.3/0.2/0.1 Mbps, 40 s each.
        let caps = [1.0, 0.7, 0.5, 0.3, 0.2, 0.1];
        let imps: Vec<Impairment> =
            caps.iter().map(|m| Impairment::rate(Bitrate::from_mbps_f64(*m))).collect();
        let sched =
            NetemSchedule::staircase(SimTime::from_secs(40), SimDuration::from_secs(40), &imps);
        // Before the first stage: unimpaired.
        assert_eq!(sched.at(SimTime::from_secs(10)), Impairment::NONE);
        // Mid second stage (40+40..40+80 → t=100 is stage #2).
        let imp = sched.at(SimTime::from_secs(100));
        assert_eq!(imp.rate_limit, Some(Bitrate::from_mbps_f64(0.7)));
        // After the last stage (40 + 6*40 = 280): recovered.
        assert_eq!(sched.at(SimTime::from_secs(281)), Impairment::NONE);
        assert_eq!(sched.last_end(), Some(SimTime::from_secs(280)));
    }

    #[test]
    fn stage_bounds_are_half_open() {
        let sched = NetemSchedule::from_stages(vec![NetemStage {
            start: SimTime::from_secs(1),
            end: SimTime::from_secs(2),
            impairment: Impairment::loss(0.5),
        }]);
        assert_eq!(sched.at(SimTime::from_secs(1)).loss, 0.5);
        assert_eq!(sched.at(SimTime::from_secs(2)), Impairment::NONE);
        assert_eq!(sched.at(SimTime::from_micros(999_999)), Impairment::NONE);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_stages_rejected() {
        let s = |a: u64, b: u64| NetemStage {
            start: SimTime::from_secs(a),
            end: SimTime::from_secs(b),
            impairment: Impairment::NONE,
        };
        NetemSchedule::from_stages(vec![s(0, 10), s(5, 15)]);
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn invalid_loss_rejected() {
        let _ = Impairment::loss(1.5);
    }

    #[test]
    fn empty_schedule_never_impairs() {
        let sched = NetemSchedule::none();
        assert!(sched.is_empty());
        assert_eq!(sched.at(SimTime::from_secs(123)), Impairment::NONE);
        assert_eq!(sched.last_end(), None);
    }

    #[test]
    fn jitter_constructor() {
        let i = Impairment::delay_jitter(SimDuration::from_millis(100), SimDuration::from_millis(20));
        assert_eq!(i.extra_delay.as_millis(), 100);
        assert_eq!(i.jitter.as_millis(), 20);
        assert_eq!(Impairment::NONE.jitter, SimDuration::ZERO);
    }

    #[test]
    fn combined_impairment_constructors() {
        let i = Impairment::delay(SimDuration::from_millis(50));
        assert_eq!(i.extra_delay.as_millis(), 50);
        assert_eq!(i.rate_limit, None);
        assert_eq!(i.loss, 0.0);
        let r = Impairment::rate(Bitrate::from_kbps(300));
        assert_eq!(r.rate_limit.unwrap().as_kbps(), 300.0);
    }
}
