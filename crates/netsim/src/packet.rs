//! Packets and transport headers.
//!
//! A [`Packet`] couples a typed transport header with an opaque payload.
//! The payload bytes are produced by real codecs in the higher crates
//! (avatar wire format, TLV control messages), so packet sizes on the
//! simulated wire are honest consequences of what is being carried —
//! the property the paper's throughput analysis (§5) depends on.

use crate::node::NodeId;
use crate::time::SimTime;
use crate::units::ByteSize;
use crate::buf::Bytes;
use std::fmt;

/// Transport protocol carried by a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Proto {
    /// User Datagram Protocol — the data channel of four of the five
    /// platforms (Table 2).
    Udp,
    /// Transmission Control Protocol — carries the HTTPS control channels.
    Tcp,
    /// ICMP echo, used by the RTT measurements of §4.2.
    Icmp,
}

impl Proto {
    /// L4 header length on the wire, in bytes.
    pub fn header_len(self) -> u64 {
        match self {
            Proto::Udp => 8,
            Proto::Tcp => 20,
            Proto::Icmp => 8,
        }
    }
}

impl fmt::Display for Proto {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Proto::Udp => write!(f, "UDP"),
            Proto::Tcp => write!(f, "TCP"),
            Proto::Icmp => write!(f, "ICMP"),
        }
    }
}

/// TCP header flags (subset used by the simplified stack).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct TcpFlags {
    /// Synchronise sequence numbers (connection setup).
    pub syn: bool,
    /// Acknowledgement field significant.
    pub ack: bool,
    /// No more data from sender.
    pub fin: bool,
    /// Reset the connection.
    pub rst: bool,
}

impl TcpFlags {
    /// Pure data segment (ACK flag set, as on every established-state segment).
    pub const DATA: TcpFlags = TcpFlags { syn: false, ack: true, fin: false, rst: false };
    /// SYN segment.
    pub const SYN: TcpFlags = TcpFlags { syn: true, ack: false, fin: false, rst: false };
    /// SYN+ACK segment.
    pub const SYN_ACK: TcpFlags = TcpFlags { syn: true, ack: true, fin: false, rst: false };
    /// FIN+ACK segment.
    pub const FIN: TcpFlags = TcpFlags { syn: false, ack: true, fin: true, rst: false };

    /// Pack into the low nibble of a byte (FIN=1, SYN=2, RST=4, ACK=16 as
    /// in the real TCP header bit layout, minus the unused bits).
    pub fn to_byte(self) -> u8 {
        (self.fin as u8) | (self.syn as u8) << 1 | (self.rst as u8) << 2 | (self.ack as u8) << 4
    }

    /// Unpack from [`TcpFlags::to_byte`]'s encoding.
    pub fn from_byte(b: u8) -> Self {
        TcpFlags {
            fin: b & 0x01 != 0,
            syn: b & 0x02 != 0,
            rst: b & 0x04 != 0,
            ack: b & 0x10 != 0,
        }
    }
}

/// Typed transport header attached to every simulated packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TransportHeader {
    /// Transport protocol.
    pub proto: Proto,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number (TCP byte sequence; datagram counter for UDP).
    pub seq: u32,
    /// Acknowledgement number (TCP only; zero otherwise).
    pub ack: u32,
    /// TCP flags (all-false for UDP/ICMP).
    pub flags: TcpFlags,
    /// Advertised receive window (TCP only).
    pub window: u16,
}

impl TransportHeader {
    /// A plain datagram header (UDP or ICMP).
    pub fn datagram(proto: Proto, src_port: u16, dst_port: u16) -> Self {
        TransportHeader {
            proto,
            src_port,
            dst_port,
            seq: 0,
            ack: 0,
            flags: TcpFlags::default(),
            window: 0,
        }
    }

    /// A TCP segment header.
    pub fn tcp(src_port: u16, dst_port: u16, seq: u32, ack: u32, flags: TcpFlags) -> Self {
        TransportHeader {
            proto: Proto::Tcp,
            src_port,
            dst_port,
            seq,
            ack,
            flags,
            window: 0xFFFF,
        }
    }
}

/// Fixed L2+L3 overhead per packet: Ethernet (14) + IPv4 (20) bytes.
pub const L2_L3_OVERHEAD: u64 = 34;

/// An all-zero payload of `len` bytes backed by a shared, thread-local
/// buffer: repeated padding bodies (status beacons, synthetic video
/// frames, fixed-size game ticks) alias one allocation instead of
/// building a fresh `Vec` per packet. The backing block grows
/// monotonically to the largest size requested, so steady-state calls
/// are O(1) reference-count bumps.
pub fn zero_payload(len: usize) -> Bytes {
    use std::cell::RefCell;
    thread_local! {
        static ZEROS: RefCell<Bytes> = RefCell::new(Bytes::new());
    }
    ZEROS.with(|z| {
        let mut z = z.borrow_mut();
        if z.len() < len {
            *z = Bytes::from(vec![0u8; len.next_power_of_two()]);
        }
        z.slice(..len)
    })
}

/// A packet in flight.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Transport header.
    pub header: TransportHeader,
    /// Application payload bytes.
    pub payload: Bytes,
    /// Node that originated the packet (filled in by [`crate::Network::send`]).
    pub src: NodeId,
    /// Final destination node (filled in by [`crate::Network::send`]).
    pub dst: NodeId,
    /// Time the packet entered the network (filled in by `send`).
    pub sent_at: SimTime,
    /// Unique per-network packet id, in send order (filled in by `send`).
    pub id: u64,
}

impl Packet {
    /// Build a packet; routing fields are filled in by [`crate::Network::send`].
    pub fn new(header: TransportHeader, payload: Bytes) -> Self {
        Packet {
            header,
            payload,
            src: NodeId(u32::MAX),
            dst: NodeId(u32::MAX),
            sent_at: SimTime::ZERO,
            id: u64::MAX,
        }
    }

    /// Total size on the wire, headers included.
    pub fn wire_size(&self) -> ByteSize {
        ByteSize::from_bytes(L2_L3_OVERHEAD + self.header.proto.header_len() + self.payload.len() as u64)
    }

    /// Payload length in bytes.
    pub fn payload_len(&self) -> usize {
        self.payload.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_payload_aliases_one_allocation() {
        let a = zero_payload(100);
        let b = zero_payload(64);
        assert_eq!(a.len(), 100);
        assert!(a.iter().all(|&x| x == 0));
        assert_eq!(b.len(), 64);
        // Both slices view the same backing block.
        assert_eq!(a.as_slice()[..64].as_ptr(), b.as_slice().as_ptr());
        // Growing past the cached block reallocates once, then aliases.
        let big = zero_payload(5000);
        assert_eq!(big.len(), 5000);
        let again = zero_payload(5000);
        assert_eq!(big.as_slice().as_ptr(), again.as_slice().as_ptr());
    }

    #[test]
    fn wire_size_includes_all_headers() {
        let p = Packet::new(
            TransportHeader::datagram(Proto::Udp, 1, 2),
            Bytes::from_static(&[0u8; 100]),
        );
        assert_eq!(p.wire_size().as_bytes(), 34 + 8 + 100);
        let t = Packet::new(
            TransportHeader::tcp(1, 2, 0, 0, TcpFlags::SYN),
            Bytes::new(),
        );
        assert_eq!(t.wire_size().as_bytes(), 34 + 20);
    }

    #[test]
    fn tcp_flags_roundtrip() {
        for fin in [false, true] {
            for syn in [false, true] {
                for rst in [false, true] {
                    for ack in [false, true] {
                        let f = TcpFlags { fin, syn, rst, ack };
                        assert_eq!(TcpFlags::from_byte(f.to_byte()), f);
                    }
                }
            }
        }
    }

    #[test]
    fn flag_constants() {
        // Round-trip through the wire encoding so the assertions exercise
        // runtime behaviour rather than constants.
        let syn = TcpFlags::from_byte(TcpFlags::SYN.to_byte());
        assert!(syn.syn && !syn.ack);
        let syn_ack = TcpFlags::from_byte(TcpFlags::SYN_ACK.to_byte());
        assert!(syn_ack.syn && syn_ack.ack);
        let fin = TcpFlags::from_byte(TcpFlags::FIN.to_byte());
        assert!(fin.fin && fin.ack);
        let data = TcpFlags::from_byte(TcpFlags::DATA.to_byte());
        assert!(data.ack && !data.syn && !data.fin);
    }

    #[test]
    fn proto_header_lengths() {
        assert_eq!(Proto::Udp.header_len(), 8);
        assert_eq!(Proto::Tcp.header_len(), 20);
        assert_eq!(Proto::Icmp.header_len(), 8);
    }

    #[test]
    fn datagram_header_has_no_tcp_fields() {
        let h = TransportHeader::datagram(Proto::Udp, 10, 20);
        assert_eq!(h.seq, 0);
        assert_eq!(h.ack, 0);
        assert_eq!(h.flags, TcpFlags::default());
    }
}
