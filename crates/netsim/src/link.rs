//! Directed links: bandwidth, propagation delay, queueing, loss, netem.
//!
//! A link models one direction of a physical or logical hop (headset→AP,
//! AP→Internet, Internet→server). Store-and-forward semantics: a packet
//! is serialized at the link rate (possibly capped by a netem stage),
//! waits in a drop-tail queue while the link is busy, then propagates for
//! the link delay plus any netem extra delay, and may be dropped by
//! baseline or netem random loss.

use crate::netem::{Impairment, NetemSchedule};
use crate::node::NodeId;
use crate::queue::DropTailQueue;
use crate::time::{SimDuration, SimTime};
use crate::units::{Bitrate, ByteSize};

/// Identifier of a directed link within a [`crate::Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkId(pub(crate) u32);

impl LinkId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Static parameters of a link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Serialization rate.
    pub bandwidth: Bitrate,
    /// One-way propagation delay.
    pub delay: SimDuration,
    /// Baseline random loss probability in `[0, 1]`.
    pub loss: f64,
    /// Drop-tail buffer size in bytes.
    pub queue_capacity: ByteSize,
}

impl LinkSpec {
    /// Typical consumer WiFi hop: ~200 Mbps, 2 ms air latency, light loss.
    pub fn wifi() -> Self {
        LinkSpec {
            bandwidth: Bitrate::from_mbps(200),
            delay: SimDuration::from_millis(2),
            loss: 0.0005,
            queue_capacity: ByteSize::from_kb(256),
        }
    }

    /// Campus/metro access hop: 1 Gbps, sub-millisecond.
    pub fn campus() -> Self {
        LinkSpec {
            bandwidth: Bitrate::from_mbps(1000),
            delay: SimDuration::from_micros(300),
            loss: 0.0,
            queue_capacity: ByteSize::from_mb(1),
        }
    }

    /// Wide-area backbone hop with a configurable one-way delay.
    pub fn backbone(one_way: SimDuration) -> Self {
        LinkSpec {
            bandwidth: Bitrate::from_mbps(10_000),
            delay: one_way,
            loss: 0.0,
            queue_capacity: ByteSize::from_mb(4),
        }
    }

    /// Server NIC / datacenter fabric hop.
    pub fn datacenter() -> Self {
        LinkSpec {
            bandwidth: Bitrate::from_mbps(10_000),
            delay: SimDuration::from_micros(100),
            loss: 0.0,
            queue_capacity: ByteSize::from_mb(4),
        }
    }

    /// Override the propagation delay.
    pub fn with_delay(mut self, delay: SimDuration) -> Self {
        self.delay = delay;
        self
    }

    /// Override the baseline loss probability.
    pub fn with_loss(mut self, loss: f64) -> Self {
        assert!((0.0..=1.0).contains(&loss), "loss out of range: {loss}");
        self.loss = loss;
        self
    }

    /// Override the bandwidth.
    pub fn with_bandwidth(mut self, bw: Bitrate) -> Self {
        self.bandwidth = bw;
        self
    }
}

/// Per-link counters, exposed for experiment diagnostics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Packets fully serialized onto the wire.
    pub tx_packets: u64,
    /// Bytes fully serialized onto the wire.
    pub tx_bytes: u64,
    /// Packets dropped by random loss (baseline + netem).
    pub lost_packets: u64,
    /// Packets dropped by queue overflow.
    pub queue_drops: u64,
}

/// A directed link between two nodes.
#[derive(Debug)]
pub struct Link {
    /// Transmitting node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Static parameters.
    pub spec: LinkSpec,
    /// Waiting room while the link serializes.
    pub(crate) queue: DropTailQueue,
    /// Time the current transmission finishes (`SimTime::ZERO` if idle
    /// in the past).
    pub(crate) busy_until: SimTime,
    /// Impairment schedule (tc-netem equivalent).
    pub(crate) netem: NetemSchedule,
    /// If set, the netem schedule applies only to this protocol —
    /// tc's filter-based classification, used by §8.1's TCP-only
    /// uplink impairment.
    pub(crate) netem_filter: Option<crate::packet::Proto>,
    /// Counters.
    pub stats: LinkStats,
}

impl Link {
    pub(crate) fn new(src: NodeId, dst: NodeId, spec: LinkSpec) -> Self {
        Link {
            src,
            dst,
            spec,
            queue: DropTailQueue::new(spec.queue_capacity),
            busy_until: SimTime::ZERO,
            netem: NetemSchedule::none(),
            netem_filter: None,
            stats: LinkStats::default(),
        }
    }

    /// Install (or replace) the netem schedule on this link, applying to
    /// all traffic.
    pub fn set_netem(&mut self, schedule: NetemSchedule) {
        self.netem = schedule;
        self.netem_filter = None;
    }

    /// Install a netem schedule that impairs only packets of `proto`
    /// (tc's u32/protocol filter, used by §8.1's TCP-only experiments).
    pub fn set_netem_filtered(&mut self, schedule: NetemSchedule, proto: crate::packet::Proto) {
        self.netem = schedule;
        self.netem_filter = Some(proto);
    }

    fn netem_applies(&self, proto: crate::packet::Proto) -> bool {
        self.netem_filter.map(|f| f == proto).unwrap_or(true)
    }

    /// The impairment in force at `t` for a packet of `proto`.
    pub fn impairment_at(&self, t: SimTime, proto: crate::packet::Proto) -> Impairment {
        if self.netem_applies(proto) {
            self.netem.at(t)
        } else {
            Impairment::NONE
        }
    }

    /// Effective serialization rate at `t` (native bandwidth capped by netem).
    pub fn effective_rate(&self, t: SimTime, proto: crate::packet::Proto) -> Bitrate {
        match self.impairment_at(t, proto).rate_limit {
            Some(cap) => cap.min(self.spec.bandwidth),
            None => self.spec.bandwidth,
        }
    }

    /// Combined loss probability at `t`: baseline and netem losses are
    /// independent Bernoulli events, so `p = 1 - (1-a)(1-b)`.
    pub fn effective_loss(&self, t: SimTime, proto: crate::packet::Proto) -> f64 {
        let a = self.spec.loss;
        let b = self.impairment_at(t, proto).loss;
        1.0 - (1.0 - a) * (1.0 - b)
    }

    /// One-way latency applied after serialization at `t`.
    pub fn effective_delay(&self, t: SimTime, proto: crate::packet::Proto) -> SimDuration {
        self.spec.delay + self.impairment_at(t, proto).extra_delay
    }

    /// When an unfiltered netem rate cap is active, the queue is bounded
    /// to ~one second of drain time at the capped rate (tc's shaper keeps
    /// its latency budget small; an unbounded byte buffer would add tens
    /// of seconds of queueing at paper-scale caps like 0.1 Mbps).
    pub fn shaped_queue_cap(&self, t: SimTime) -> Option<ByteSize> {
        if self.netem_filter.is_some() {
            return None; // filtered schedules shape one protocol only
        }
        self.netem.at(t).rate_limit.map(|cap| cap.bytes_in(SimDuration::from_secs(1)))
    }

    /// Packets currently waiting in the queue.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Bytes currently waiting in the queue.
    pub fn queue_bytes(&self) -> ByteSize {
        self.queue.buffered()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netem::NetemStage;

    use crate::packet::Proto;

    fn link() -> Link {
        Link::new(NodeId(0), NodeId(1), LinkSpec::wifi())
    }

    const P: Proto = Proto::Udp;

    #[test]
    fn effective_rate_respects_netem_cap() {
        let mut l = link();
        assert_eq!(l.effective_rate(SimTime::ZERO, P), Bitrate::from_mbps(200));
        l.set_netem(NetemSchedule::from_stages(vec![NetemStage {
            start: SimTime::from_secs(10),
            end: SimTime::from_secs(20),
            impairment: Impairment::rate(Bitrate::from_kbps(500)),
        }]));
        assert_eq!(l.effective_rate(SimTime::from_secs(15), P), Bitrate::from_kbps(500));
        assert_eq!(l.effective_rate(SimTime::from_secs(25), P), Bitrate::from_mbps(200));
    }

    #[test]
    fn netem_cap_never_raises_rate() {
        let mut l = link();
        l.set_netem(NetemSchedule::from_stages(vec![NetemStage {
            start: SimTime::ZERO,
            end: SimTime::from_secs(1),
            impairment: Impairment::rate(Bitrate::from_mbps(100_000)),
        }]));
        assert_eq!(l.effective_rate(SimTime::ZERO, P), Bitrate::from_mbps(200));
    }

    #[test]
    fn loss_probabilities_combine_independently() {
        let mut l = link();
        l.spec.loss = 0.1;
        l.set_netem(NetemSchedule::from_stages(vec![NetemStage {
            start: SimTime::ZERO,
            end: SimTime::from_secs(1),
            impairment: Impairment::loss(0.2),
        }]));
        let p = l.effective_loss(SimTime::ZERO, P);
        assert!((p - (1.0 - 0.9 * 0.8)).abs() < 1e-12);
        // Outside the stage only baseline applies.
        assert!((l.effective_loss(SimTime::from_secs(2), P) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn delay_adds_netem_extra() {
        let mut l = link();
        l.set_netem(NetemSchedule::from_stages(vec![NetemStage {
            start: SimTime::ZERO,
            end: SimTime::from_secs(1),
            impairment: Impairment::delay(SimDuration::from_millis(100)),
        }]));
        assert_eq!(l.effective_delay(SimTime::ZERO, P).as_millis(), 102);
        assert_eq!(l.effective_delay(SimTime::from_secs(2), P).as_millis(), 2);
    }

    #[test]
    fn filtered_netem_applies_only_to_matching_proto() {
        let mut l = link();
        l.set_netem_filtered(
            NetemSchedule::from_stages(vec![NetemStage {
                start: SimTime::ZERO,
                end: SimTime::from_secs(10),
                impairment: Impairment::delay(SimDuration::from_secs(5)),
            }]),
            Proto::Tcp,
        );
        // TCP is impaired; UDP sails through (§8.1 Fig. 13 bottom).
        assert!(l.effective_delay(SimTime::ZERO, Proto::Tcp) > SimDuration::from_secs(4));
        assert_eq!(l.effective_delay(SimTime::ZERO, Proto::Udp), l.spec.delay);
        // Unfiltered set_netem clears the filter.
        l.set_netem(NetemSchedule::none());
        assert_eq!(l.effective_delay(SimTime::ZERO, Proto::Tcp), l.spec.delay);
    }

    #[test]
    fn spec_builders() {
        let s = LinkSpec::campus()
            .with_delay(SimDuration::from_millis(7))
            .with_loss(0.01)
            .with_bandwidth(Bitrate::from_mbps(50));
        assert_eq!(s.delay.as_millis(), 7);
        assert_eq!(s.loss, 0.01);
        assert_eq!(s.bandwidth.as_mbps(), 50.0);
    }
}
