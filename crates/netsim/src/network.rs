//! The discrete-event network: topology + event pump.
//!
//! [`Network`] owns nodes, directed links, capture taps, and the event
//! queue. It is *poll-based*: higher layers call [`Network::send`] to
//! inject packets and [`Network::poll`] / [`Network::poll_all`] to advance
//! simulated time and collect deliveries, interleaving their own timers
//! however they like. The event order is total and deterministic: events
//! are keyed by `(time, insertion sequence)`.

use crate::capture::{CaptureRecord, CaptureTap, Direction};
use crate::link::{Link, LinkId, LinkSpec};
use crate::node::{Node, NodeId, NodeKind};
use crate::packet::Packet;
use crate::rng::SimRng;
use crate::time::SimTime;
use crate::wheel::TimerWheel;
use std::collections::{HashMap, HashSet, VecDeque};

/// A packet handed to its destination node.
#[derive(Debug, Clone)]
pub struct Delivery {
    /// Arrival time.
    pub at: SimTime,
    /// Destination node.
    pub dst: NodeId,
    /// The delivered packet.
    pub packet: Packet,
}

#[derive(Debug)]
enum EventKind {
    /// A link finished serializing a packet.
    TxDone { link: LinkId, packet: Packet },
    /// A packet arrived at a node after propagation.
    HopArrive { node: NodeId, packet: Packet },
}

/// The simulated network.
#[derive(Debug)]
pub struct Network {
    nodes: Vec<Node>,
    links: Vec<Link>,
    /// Outgoing links per node.
    adjacency: Vec<Vec<LinkId>>,
    /// Next-hop cache: (from, to) → first link of the shortest path.
    routes: HashMap<(NodeId, NodeId), LinkId>,
    /// Pending events in `(time, seq)` order; the wheel pops in exactly
    /// the order the former binary heap did.
    events: TimerWheel<EventKind>,
    now: SimTime,
    next_seq: u64,
    next_packet_id: u64,
    rng: SimRng,
    taps: HashMap<NodeId, CaptureTap>,
    pending: VecDeque<Delivery>,
    /// Shard-boundary nodes: deliveries addressed to them leave this
    /// network through [`Network::drain_egress`] instead of `poll`.
    boundary: HashSet<NodeId>,
    egress: VecDeque<Delivery>,
}

impl Network {
    /// Create an empty network with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        Network {
            nodes: Vec::new(),
            links: Vec::new(),
            adjacency: Vec::new(),
            routes: HashMap::new(),
            events: TimerWheel::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            next_packet_id: 0,
            rng: SimRng::seed_from_u64(seed ^ 0x6E65_7473_696D), // "netsim"
            taps: HashMap::new(),
            pending: VecDeque::new(),
            boundary: HashSet::new(),
            egress: VecDeque::new(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Add a node; returns its id.
    pub fn add_node(&mut self, name: impl Into<String>, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node { name: name.into(), kind });
        self.adjacency.push(Vec::new());
        id
    }

    /// Node metadata.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Add a directed link; returns its id.
    pub fn add_link(&mut self, src: NodeId, dst: NodeId, spec: LinkSpec) -> LinkId {
        assert!(src != dst, "self-loop link");
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link::new(src, dst, spec));
        self.adjacency[src.index()].push(id);
        self.routes.clear(); // topology changed; recompute lazily
        id
    }

    /// Add a pair of directed links between `a` and `b`.
    pub fn add_duplex_link(
        &mut self,
        a: NodeId,
        b: NodeId,
        spec_ab: LinkSpec,
        spec_ba: LinkSpec,
    ) -> (LinkId, LinkId) {
        (self.add_link(a, b, spec_ab), self.add_link(b, a, spec_ba))
    }

    /// Immutable access to a link.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// Mutable access to a link (e.g. to install a netem schedule).
    pub fn link_mut(&mut self, id: LinkId) -> &mut Link {
        &mut self.links[id.index()]
    }

    /// The directed link from `a` to `b`, if one exists.
    pub fn link_between(&self, a: NodeId, b: NodeId) -> Option<LinkId> {
        self.adjacency[a.index()]
            .iter()
            .copied()
            .find(|l| self.links[l.index()].dst == b)
    }

    /// Mark `node` as a shard boundary (idempotent).
    ///
    /// A boundary node models the edge of this network's shard: packets
    /// *addressed to it* are not handed to `poll`/`poll_all` but parked on
    /// a separate egress queue, in arrival `(time, seq)` order, until the
    /// owning layer collects them with [`Network::drain_egress`] and
    /// forwards their contents across the shard boundary.
    pub fn set_boundary(&mut self, node: NodeId) {
        self.boundary.insert(node);
    }

    /// Whether `node` is a shard boundary.
    pub fn is_boundary(&self, node: NodeId) -> bool {
        self.boundary.contains(&node)
    }

    /// Drain packets that arrived at boundary nodes, in arrival order.
    pub fn drain_egress(&mut self) -> Vec<Delivery> {
        self.egress.drain(..).collect()
    }

    /// Install a capture tap on `node` (idempotent).
    pub fn add_tap(&mut self, node: NodeId) {
        self.taps.entry(node).or_default();
    }

    /// Records captured at `node` so far.
    pub fn tap_records(&self, node: NodeId) -> &[CaptureRecord] {
        self.taps.get(&node).map(|t| t.records()).unwrap_or(&[])
    }

    /// Drain the records captured at `node`.
    pub fn take_tap_records(&mut self, node: NodeId) -> Vec<CaptureRecord> {
        self.taps.get_mut(&node).map(|t| t.take_records()).unwrap_or_default()
    }

    fn schedule(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.push(at, seq, kind);
    }

    /// Compute (and cache) the next hop from `from` toward `to` with a BFS
    /// over link hops. Panics when no route exists — a topology bug.
    fn next_hop(&mut self, from: NodeId, to: NodeId) -> LinkId {
        if let Some(&l) = self.routes.get(&(from, to)) {
            return l;
        }
        // BFS from `from`; record the first hop used to reach each node.
        let n = self.nodes.len();
        let mut first_hop: Vec<Option<LinkId>> = vec![None; n];
        let mut visited = vec![false; n];
        let mut q = VecDeque::new();
        visited[from.index()] = true;
        q.push_back(from);
        while let Some(u) = q.pop_front() {
            for &l in &self.adjacency[u.index()] {
                let v = self.links[l.index()].dst;
                if !visited[v.index()] {
                    visited[v.index()] = true;
                    first_hop[v.index()] =
                        if u == from { Some(l) } else { first_hop[u.index()] };
                    q.push_back(v);
                }
            }
        }
        let hop = first_hop[to.index()].unwrap_or_else(|| {
            panic!(
                "no route from {} ({}) to {} ({})",
                self.nodes[from.index()].name,
                from,
                self.nodes[to.index()].name,
                to
            )
        });
        self.routes.insert((from, to), hop);
        hop
    }

    /// Inject a packet at `from` destined for `to`.
    ///
    /// Fills in the packet's routing metadata (src, dst, send time, id) and
    /// offers it to the first link of the shortest path.
    pub fn send(&mut self, from: NodeId, to: NodeId, mut packet: Packet) {
        assert!(from != to, "packet to self");
        packet.src = from;
        packet.dst = to;
        packet.sent_at = self.now;
        packet.id = self.next_packet_id;
        self.next_packet_id += 1;
        let hop = self.next_hop(from, to);
        self.offer(hop, packet);
    }

    /// Offer a packet to a link: transmit now if idle, else queue.
    fn offer(&mut self, link_id: LinkId, packet: Packet) {
        let now = self.now;
        let link = &mut self.links[link_id.index()];
        if link.busy_until > now {
            // Link busy: queue (drop-tail, bounded further while shaped).
            let admitted = match link.shaped_queue_cap(now) {
                Some(cap) => link.queue.push_capped(packet, cap),
                None => link.queue.push(packet),
            };
            if !admitted {
                link.stats.queue_drops += 1;
            }
        } else {
            self.start_tx(link_id, packet);
        }
    }

    fn start_tx(&mut self, link_id: LinkId, packet: Packet) {
        let now = self.now;
        let link = &mut self.links[link_id.index()];
        let rate = link.effective_rate(now, packet.header.proto);
        let ser = rate.serialization_time(packet.wire_size());
        let done = now.checked_add(ser).unwrap_or(SimTime::MAX);
        link.busy_until = done;
        if done < SimTime::MAX {
            self.schedule(done, EventKind::TxDone { link: link_id, packet });
        }
        // A zero-rate link swallows the packet: it never finishes
        // serializing, exactly like a fully-blocked qdisc.
    }

    fn on_tx_done(&mut self, link_id: LinkId, mut packet: Packet) {
        let now = self.now;
        let link = &mut self.links[link_id.index()];
        link.stats.tx_packets += 1;
        link.stats.tx_bytes += packet.wire_size().as_bytes();
        // Fault injection: flip one payload byte. A checksummed transport
        // (TCP) detects and discards the segment — identical to loss from
        // the endpoint's view; datagrams deliver the damage upward.
        let corrupt_p = link.impairment_at(now, packet.header.proto).corrupt;
        let loss = link.effective_loss(now, packet.header.proto);
        let mut delay = link.effective_delay(now, packet.header.proto);
        let jitter = link.impairment_at(now, packet.header.proto).jitter;
        let dst = link.dst;
        if jitter > crate::time::SimDuration::ZERO {
            delay += crate::time::SimDuration::from_micros(
                self.rng.range_u64(0, jitter.as_micros()),
            );
        }
        let mut lost = self.rng.chance(loss);
        if !lost && corrupt_p > 0.0 && self.rng.chance(corrupt_p) && !packet.payload.is_empty() {
            if packet.header.proto == crate::packet::Proto::Tcp {
                // The receiver's checksum discards it.
                lost = true;
            } else {
                let idx = self.rng.index(packet.payload.len());
                let mut bytes = packet.payload.to_vec();
                bytes[idx] ^= 0xA5;
                packet.payload = crate::buf::Bytes::from(bytes);
            }
        }
        if lost {
            self.links[link_id.index()].stats.lost_packets += 1;
        } else {
            let arrive = now.checked_add(delay).unwrap_or(SimTime::MAX);
            if arrive < SimTime::MAX {
                self.schedule(arrive, EventKind::HopArrive { node: dst, packet });
            }
        }
        // Link is free: pull the next queued packet, if any.
        if let Some(next) = self.links[link_id.index()].queue.pop() {
            self.start_tx(link_id, next);
        }
    }

    fn on_hop_arrive(&mut self, node: NodeId, packet: Packet) {
        // Capture at tapped nodes (both transit and final-destination
        // arrivals, like a port-mirrored AP).
        if let Some(tap) = self.taps.get_mut(&node) {
            let dir = if self.nodes[packet.src.index()].kind.is_client_device() {
                Direction::Uplink
            } else {
                Direction::Downlink
            };
            tap.record(self.now, &packet, dir);
        }
        if node == packet.dst {
            crate::counters::count_delivery();
            let d = Delivery { at: self.now, dst: node, packet };
            if !self.boundary.is_empty() && self.boundary.contains(&node) {
                self.egress.push_back(d);
            } else {
                self.pending.push_back(d);
            }
        } else {
            let dst = packet.dst;
            let hop = self.next_hop(node, dst);
            self.offer(hop, packet);
        }
    }

    /// The time of the next scheduled network event, if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        if !self.pending.is_empty() {
            return Some(self.now);
        }
        self.events.peek().map(|(at, _)| at)
    }

    fn step(&mut self) {
        let (at, _seq, kind) = self.events.pop().expect("step with empty queue");
        debug_assert!(at >= self.now, "event in the past");
        crate::counters::count_event();
        self.now = at;
        match kind {
            EventKind::TxDone { link, packet } => self.on_tx_done(link, packet),
            EventKind::HopArrive { node, packet } => self.on_hop_arrive(node, packet),
        }
    }

    /// Advance until the first delivery at or before `until`.
    ///
    /// Returns `None` when no delivery happens by `until`; in that case the
    /// clock has advanced to `until` (or stays at `now` if already past).
    pub fn poll(&mut self, until: SimTime) -> Option<Delivery> {
        loop {
            if let Some(d) = self.pending.pop_front() {
                return Some(d);
            }
            match self.events.peek() {
                Some((at, _)) if at <= until => self.step(),
                _ => {
                    self.now = self.now.max(until);
                    return None;
                }
            }
        }
    }

    /// Advance to `until`, collecting every delivery on the way.
    pub fn poll_all(&mut self, until: SimTime) -> Vec<Delivery> {
        let mut out = Vec::new();
        while let Some((at, _)) = self.events.peek() {
            if at > until {
                break;
            }
            self.step();
            out.extend(self.pending.drain(..));
        }
        out.extend(self.pending.drain(..));
        self.now = self.now.max(until);
        out
    }

    /// Total packets dropped anywhere in the network (loss + queue drops).
    pub fn total_drops(&self) -> u64 {
        self.links
            .iter()
            .map(|l| l.stats.lost_packets + l.stats.queue_drops)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netem::{Impairment, NetemSchedule, NetemStage};
    use crate::packet::{Proto, TransportHeader};
    use crate::time::SimDuration;
    use crate::units::{Bitrate, ByteSize};
    use crate::buf::Bytes;

    fn two_node_net(spec: LinkSpec) -> (Network, NodeId, NodeId) {
        let mut net = Network::new(1);
        let a = net.add_node("a", NodeKind::Headset);
        let b = net.add_node("b", NodeKind::Server);
        net.add_duplex_link(a, b, spec, spec);
        (net, a, b)
    }

    fn udp_pkt(n: usize) -> Packet {
        Packet::new(
            TransportHeader::datagram(Proto::Udp, 1000, 2000),
            Bytes::from(vec![0u8; n]),
        )
    }

    #[test]
    fn delivery_time_is_serialization_plus_propagation() {
        // 12 Mbps, 10 ms delay; 1458-byte payload → 1500 wire bytes → 1 ms ser.
        let spec = LinkSpec {
            bandwidth: Bitrate::from_mbps(12),
            delay: SimDuration::from_millis(10),
            loss: 0.0,
            queue_capacity: ByteSize::from_mb(1),
        };
        let (mut net, a, b) = two_node_net(spec);
        net.send(a, b, udp_pkt(1458));
        let d = net.poll(SimTime::from_secs(1)).unwrap();
        assert_eq!(d.at.as_micros(), 11_000);
        assert_eq!(d.dst, b);
        assert_eq!(d.packet.src, a);
    }

    #[test]
    fn back_to_back_packets_queue_behind_each_other() {
        let spec = LinkSpec {
            bandwidth: Bitrate::from_mbps(12),
            delay: SimDuration::from_millis(1),
            loss: 0.0,
            queue_capacity: ByteSize::from_mb(1),
        };
        let (mut net, a, b) = two_node_net(spec);
        net.send(a, b, udp_pkt(1458)); // 1 ms ser
        net.send(a, b, udp_pkt(1458)); // waits for the first
        let d1 = net.poll(SimTime::from_secs(1)).unwrap();
        let d2 = net.poll(SimTime::from_secs(1)).unwrap();
        assert_eq!(d1.at.as_micros(), 2_000);
        assert_eq!(d2.at.as_micros(), 3_000);
    }

    #[test]
    fn multi_hop_route_found_and_timed() {
        let mut net = Network::new(1);
        let a = net.add_node("headset", NodeKind::Headset);
        let ap = net.add_node("ap", NodeKind::AccessPoint);
        let s = net.add_node("server", NodeKind::Server);
        let hop = LinkSpec {
            bandwidth: Bitrate::from_mbps(1000),
            delay: SimDuration::from_millis(5),
            loss: 0.0,
            queue_capacity: ByteSize::from_mb(1),
        };
        net.add_duplex_link(a, ap, hop, hop);
        net.add_duplex_link(ap, s, hop, hop);
        net.send(a, s, udp_pkt(100));
        let d = net.poll(SimTime::from_secs(1)).unwrap();
        // Two hops of 5 ms plus two tiny serializations.
        assert!(d.at >= SimTime::from_millis(10));
        assert!(d.at < SimTime::from_millis(11));
        assert_eq!(d.dst, s);
    }

    #[test]
    #[should_panic(expected = "no route")]
    fn unroutable_packet_panics() {
        let mut net = Network::new(1);
        let a = net.add_node("a", NodeKind::Headset);
        let b = net.add_node("b", NodeKind::Server);
        // no links
        net.send(a, b, udp_pkt(10));
    }

    #[test]
    fn poll_returns_none_and_advances_clock_when_idle() {
        let (mut net, _a, _b) = two_node_net(LinkSpec::wifi());
        assert!(net.poll(SimTime::from_secs(5)).is_none());
        assert_eq!(net.now(), SimTime::from_secs(5));
    }

    #[test]
    fn random_loss_drops_proportionally() {
        let spec = LinkSpec::wifi().with_loss(0.5);
        let (mut net, a, b) = two_node_net(spec);
        let n = 400;
        let mut delivered = 0;
        for i in 0..n {
            // Space sends out so the queue never overflows.
            let at = SimTime::from_millis(10 * i as u64);
            delivered += net.poll_all(at).len();
            net.send(a, b, udp_pkt(100));
        }
        delivered += net.poll_all(SimTime::from_secs(100)).len();
        assert_eq!(delivered + net.total_drops() as usize, n);
        let lost = net.total_drops() as f64 / n as f64;
        assert!((lost - 0.5).abs() < 0.1, "loss fraction {lost}");
    }

    #[test]
    fn shaped_queue_bounds_latency_not_just_bytes() {
        // A 100 Kbps cap with a megabyte buffer must not build tens of
        // seconds of backlog: the shaper admits ~1 s of queue.
        let spec = LinkSpec {
            bandwidth: Bitrate::from_mbps(100),
            delay: SimDuration::from_millis(1),
            loss: 0.0,
            queue_capacity: ByteSize::from_mb(10),
        };
        let (mut net, a, b) = two_node_net(spec);
        let link = net.link_between(a, b).unwrap();
        net.link_mut(link).set_netem(NetemSchedule::from_stages(vec![NetemStage {
            start: SimTime::ZERO,
            end: SimTime::from_secs(1000),
            impairment: Impairment::rate(Bitrate::from_kbps(100)),
        }]));
        // Offer 100 KB instantly: only ~12.5 KB (1 s at 100 Kbps) queues.
        for _ in 0..100 {
            net.send(a, b, udp_pkt(958)); // 1000 wire bytes each
        }
        let deliveries = net.poll_all(SimTime::from_secs(60));
        let last = deliveries.last().unwrap().at;
        assert!(
            last < SimTime::from_millis(1_700),
            "worst queueing delay bounded to ~1 s of drain: {last}"
        );
        assert!(net.total_drops() > 80, "excess dropped, not buffered");
    }

    #[test]
    fn netem_rate_cap_throttles_throughput() {
        let spec = LinkSpec {
            bandwidth: Bitrate::from_mbps(100),
            delay: SimDuration::from_millis(1),
            loss: 0.0,
            queue_capacity: ByteSize::from_mb(10),
        };
        let (mut net, a, b) = two_node_net(spec);
        let link = net.link_between(a, b).unwrap();
        net.link_mut(link).set_netem(NetemSchedule::from_stages(vec![NetemStage {
            start: SimTime::ZERO,
            end: SimTime::from_secs(100),
            impairment: Impairment::rate(Bitrate::from_kbps(100)),
        }]));
        // 10 packets of 1000 wire bytes at 100 kbps: 80 ms each.
        for _ in 0..10 {
            net.send(a, b, udp_pkt(958));
        }
        let deliveries = net.poll_all(SimTime::from_secs(10));
        assert_eq!(deliveries.len(), 10);
        let last = deliveries.last().unwrap().at;
        // 10 * 80 ms serialization + 1 ms propagation = 801 ms.
        assert_eq!(last.as_millis(), 801);
    }

    #[test]
    fn corruption_damages_udp_but_drops_tcp() {
        use crate::packet::TcpFlags;
        let spec = LinkSpec::campus();
        let (mut net, a, b) = two_node_net(spec);
        let link = net.link_between(a, b).unwrap();
        net.link_mut(link).set_netem(NetemSchedule::from_stages(vec![NetemStage {
            start: SimTime::ZERO,
            end: SimTime::from_secs(1000),
            impairment: Impairment::corrupt(1.0),
        }]));
        // UDP: delivered, payload damaged.
        let mut damaged = 0;
        for _ in 0..50 {
            net.send(a, b, udp_pkt(64));
        }
        let deliveries = net.poll_all(SimTime::from_secs(10));
        assert_eq!(deliveries.len(), 50, "corruption is not loss for UDP");
        for d in deliveries {
            if d.packet.payload.iter().any(|&b| b != 0) {
                damaged += 1;
            }
        }
        assert_eq!(damaged, 50, "every UDP payload damaged at p=1");
        // TCP: corrupted segments are dropped (checksum).
        for _ in 0..50 {
            let pkt = Packet::new(
                TransportHeader::tcp(1, 2, 0, 0, TcpFlags::DATA),
                Bytes::from(vec![0u8; 64]),
            );
            net.send(a, b, pkt);
        }
        let delivered = net.poll_all(SimTime::from_secs(60)).len();
        assert_eq!(delivered, 0, "all corrupted TCP segments dropped");
    }

    #[test]
    fn netem_jitter_spreads_arrivals() {
        let (mut net, a, b) = two_node_net(LinkSpec::campus());
        let link = net.link_between(a, b).unwrap();
        net.link_mut(link).set_netem(NetemSchedule::from_stages(vec![NetemStage {
            start: SimTime::ZERO,
            end: SimTime::from_secs(100),
            impairment: Impairment::delay_jitter(
                SimDuration::from_millis(50),
                SimDuration::from_millis(40),
            ),
        }]));
        let mut delays = Vec::new();
        for i in 0..50u64 {
            let t0 = SimTime::from_millis(i * 200);
            net.poll_all(t0);
            net.send(a, b, udp_pkt(100));
            let d = net.poll(t0 + SimDuration::from_millis(150)).unwrap();
            delays.push(d.at.saturating_since(t0).as_millis_f64());
        }
        let min = delays.iter().cloned().fold(f64::MAX, f64::min);
        let max = delays.iter().cloned().fold(0.0, f64::max);
        assert!(min >= 50.0, "base delay respected: {min}");
        assert!(max <= 91.0, "jitter bounded: {max}");
        assert!(max - min > 15.0, "jitter actually spreads arrivals: {min}..{max}");
    }

    #[test]
    fn netem_extra_delay_shifts_arrivals() {
        let (mut net, a, b) = two_node_net(LinkSpec::campus());
        let link = net.link_between(a, b).unwrap();
        net.link_mut(link).set_netem(NetemSchedule::from_stages(vec![NetemStage {
            start: SimTime::ZERO,
            end: SimTime::from_secs(10),
            impairment: Impairment::delay(SimDuration::from_millis(200)),
        }]));
        net.send(a, b, udp_pkt(100));
        let d = net.poll(SimTime::from_secs(1)).unwrap();
        assert!(d.at >= SimTime::from_millis(200));
    }

    #[test]
    fn tap_records_transit_traffic_with_direction() {
        let mut net = Network::new(1);
        let u1 = net.add_node("u1", NodeKind::Headset);
        let ap = net.add_node("ap", NodeKind::AccessPoint);
        let s = net.add_node("server", NodeKind::Server);
        net.add_duplex_link(u1, ap, LinkSpec::wifi(), LinkSpec::wifi());
        net.add_duplex_link(ap, s, LinkSpec::campus(), LinkSpec::campus());
        net.add_tap(ap);
        net.send(u1, s, udp_pkt(50));
        net.poll_all(SimTime::from_secs(1));
        net.send(s, u1, udp_pkt(60));
        net.poll_all(SimTime::from_secs(2));
        let recs = net.tap_records(ap);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].direction, Direction::Uplink);
        assert_eq!(recs[1].direction, Direction::Downlink);
        assert_eq!(recs[0].payload_len, 50);
        assert_eq!(recs[1].payload_len, 60);
    }

    #[test]
    fn queue_overflow_counts_drops() {
        let spec = LinkSpec {
            bandwidth: Bitrate::from_kbps(8), // 1 KB/s: glacial
            delay: SimDuration::from_millis(1),
            loss: 0.0,
            queue_capacity: ByteSize::from_bytes(300),
        };
        let (mut net, a, b) = two_node_net(spec);
        for _ in 0..10 {
            net.send(a, b, udp_pkt(100)); // 142 wire bytes each
        }
        // One in flight, two fit in the 300-byte queue, rest dropped.
        assert!(net.total_drops() >= 7, "drops = {}", net.total_drops());
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let (mut net, a, b) = two_node_net(LinkSpec::wifi().with_loss(0.3));
            let mut times = Vec::new();
            for _ in 0..50 {
                net.send(a, b, udp_pkt(500));
            }
            for d in net.poll_all(SimTime::from_secs(10)) {
                times.push(d.at.as_micros());
            }
            times
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn boundary_node_diverts_deliveries_to_egress() {
        let mut net = Network::new(1);
        let a = net.add_node("a", NodeKind::Headset);
        let s = net.add_node("server", NodeKind::Server);
        let gw = net.add_node("gateway", NodeKind::Server);
        net.add_duplex_link(a, s, LinkSpec::wifi(), LinkSpec::wifi());
        net.add_duplex_link(s, gw, LinkSpec::campus(), LinkSpec::campus());
        net.set_boundary(gw);
        assert!(net.is_boundary(gw) && !net.is_boundary(s));
        // One packet to the in-shard server, two across the boundary.
        net.send(a, s, udp_pkt(100));
        net.send(a, gw, udp_pkt(200));
        net.send(a, gw, udp_pkt(300));
        let local = net.poll_all(SimTime::from_secs(1));
        assert_eq!(local.len(), 1, "only the in-shard delivery is polled");
        assert_eq!(local[0].dst, s);
        let egress = net.drain_egress();
        assert_eq!(egress.len(), 2);
        assert_eq!(egress[0].dst, gw);
        assert!(egress[0].at <= egress[1].at, "egress keeps arrival order");
        assert_eq!(egress[0].packet.payload.len(), 200);
        assert_eq!(egress[1].packet.payload.len(), 300);
        assert!(net.drain_egress().is_empty(), "drain empties the queue");
    }

    #[test]
    fn fifo_order_preserved_per_flow() {
        let (mut net, a, b) = two_node_net(LinkSpec::wifi());
        for _ in 0..20 {
            net.send(a, b, udp_pkt(700));
        }
        let ids: Vec<u64> = net
            .poll_all(SimTime::from_secs(5))
            .iter()
            .map(|d| d.packet.id)
            .collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted, "in-order delivery on a FIFO link");
    }
}
