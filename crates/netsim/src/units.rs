//! Bandwidth and data-size units.
//!
//! The paper reports throughput in Kbps and Mbps and data volumes in KB/MB;
//! these newtypes keep the unit conversions in one audited place instead of
//! scattering `* 1000 / 8` arithmetic through the simulator.

use crate::time::SimDuration;
use std::fmt;
use std::ops::{Add, AddAssign};

/// A link or flow rate in **bits per second**.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bitrate(u64);

impl Bitrate {
    /// Zero rate (a fully-blocked link).
    pub const ZERO: Bitrate = Bitrate(0);

    /// From raw bits per second.
    pub const fn from_bps(bps: u64) -> Self {
        Bitrate(bps)
    }

    /// From kilobits per second (decimal, as in the paper's "Kbps").
    pub const fn from_kbps(kbps: u64) -> Self {
        Bitrate(kbps * 1_000)
    }

    /// From megabits per second.
    pub const fn from_mbps(mbps: u64) -> Self {
        Bitrate(mbps * 1_000_000)
    }

    /// From fractional megabits per second.
    pub fn from_mbps_f64(mbps: f64) -> Self {
        assert!(mbps.is_finite() && mbps >= 0.0, "invalid rate: {mbps}");
        Bitrate((mbps * 1e6).round() as u64)
    }

    /// Raw bits per second.
    pub const fn as_bps(self) -> u64 {
        self.0
    }

    /// Kilobits per second as a float.
    pub fn as_kbps(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Megabits per second as a float.
    pub fn as_mbps(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time to serialize `bytes` onto a link of this rate.
    ///
    /// Returns [`SimDuration::MAX`] for a zero rate: a blocked link never
    /// finishes transmitting, which is exactly how a 100% netem rate cap
    /// behaves.
    pub fn serialization_time(self, bytes: ByteSize) -> SimDuration {
        if self.0 == 0 {
            return SimDuration::MAX;
        }
        let bits = bytes.as_bytes() as u128 * 8;
        let us = bits * 1_000_000 / self.0 as u128;
        SimDuration::from_micros(us.min(u64::MAX as u128) as u64)
    }

    /// Bytes transferable in `d` at this rate (truncating).
    pub fn bytes_in(self, d: SimDuration) -> ByteSize {
        let bits = self.0 as u128 * d.as_micros() as u128 / 1_000_000;
        ByteSize::from_bytes((bits / 8).min(u64::MAX as u128) as u64)
    }
}

impl fmt::Display for Bitrate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.2} Mbps", self.as_mbps())
        } else if self.0 >= 1_000 {
            write!(f, "{:.1} Kbps", self.as_kbps())
        } else {
            write!(f, "{} bps", self.0)
        }
    }
}

/// A quantity of data in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ByteSize(u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// From raw bytes.
    pub const fn from_bytes(b: u64) -> Self {
        ByteSize(b)
    }

    /// From kilobytes (decimal).
    pub const fn from_kb(kb: u64) -> Self {
        ByteSize(kb * 1_000)
    }

    /// From megabytes (decimal).
    pub const fn from_mb(mb: u64) -> Self {
        ByteSize(mb * 1_000_000)
    }

    /// Raw byte count.
    pub const fn as_bytes(self) -> u64 {
        self.0
    }

    /// Kilobytes as a float.
    pub fn as_kb(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Megabytes as a float.
    pub fn as_mb(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The average rate achieved by moving this much data in `d`.
    pub fn rate_over(self, d: SimDuration) -> Bitrate {
        if d == SimDuration::ZERO {
            return Bitrate::ZERO;
        }
        let bps = self.0 as u128 * 8 * 1_000_000 / d.as_micros() as u128;
        Bitrate::from_bps(bps.min(u64::MAX as u128) as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(other.0))
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 + rhs.0)
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.2} MB", self.as_mb())
        } else if self.0 >= 1_000 {
            write!(f, "{:.1} KB", self.as_kb())
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_conversions() {
        assert_eq!(Bitrate::from_kbps(750).as_bps(), 750_000);
        assert_eq!(Bitrate::from_mbps(25).as_kbps(), 25_000.0);
        assert_eq!(Bitrate::from_mbps_f64(1.5).as_bps(), 1_500_000);
    }

    #[test]
    fn serialization_time_basics() {
        // 1500 bytes at 12 Mbps = 1500*8/12e6 s = 1 ms.
        let t = Bitrate::from_mbps(12).serialization_time(ByteSize::from_bytes(1500));
        assert_eq!(t.as_micros(), 1_000);
        // Zero-rate link blocks forever.
        assert_eq!(
            Bitrate::ZERO.serialization_time(ByteSize::from_bytes(1)),
            SimDuration::MAX
        );
        // Zero bytes serialize instantly.
        assert_eq!(
            Bitrate::from_kbps(1).serialization_time(ByteSize::ZERO),
            SimDuration::ZERO
        );
    }

    #[test]
    fn bytes_in_inverts_serialization() {
        let rate = Bitrate::from_mbps(10);
        let moved = rate.bytes_in(SimDuration::from_secs(2));
        assert_eq!(moved.as_bytes(), 2_500_000);
    }

    #[test]
    fn rate_over_computes_average_throughput() {
        // 125 KB in 1 s is 1 Mbps.
        let r = ByteSize::from_kb(125).rate_over(SimDuration::from_secs(1));
        assert_eq!(r.as_bps(), 1_000_000);
        assert_eq!(ByteSize::from_kb(1).rate_over(SimDuration::ZERO), Bitrate::ZERO);
    }

    #[test]
    fn display_units() {
        assert_eq!(Bitrate::from_kbps(41).to_string(), "41.0 Kbps");
        assert_eq!(Bitrate::from_mbps_f64(4.5).to_string(), "4.50 Mbps");
        assert_eq!(ByteSize::from_mb(20).to_string(), "20.00 MB");
        assert_eq!(ByteSize::from_bytes(12).to_string(), "12 B");
    }

    #[test]
    fn bytesize_arithmetic() {
        let a = ByteSize::from_kb(2);
        let b = ByteSize::from_bytes(500);
        assert_eq!((a + b).as_bytes(), 2500);
        assert_eq!(a.saturating_sub(b).as_bytes(), 1500);
        assert_eq!(b.saturating_sub(a), ByteSize::ZERO);
    }
}
