//! Thread-local simulation counters for run telemetry.
//!
//! The experiment harness (`svr-harness`) reports simulated packets/sec
//! and events/sec per experiment. Each simulation is single-threaded, so
//! plain thread-local tallies observe exactly the work done by the
//! worker thread running that unit: the scheduler snapshots the counters
//! around each work unit and attributes the delta. The counters are pure
//! observers — they never feed back into simulation behaviour, so they
//! cannot perturb determinism.

use std::cell::Cell;

thread_local! {
    static EVENTS: Cell<u64> = const { Cell::new(0) };
    static DELIVERIES: Cell<u64> = const { Cell::new(0) };
}

/// A point-in-time reading of this thread's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterSnapshot {
    /// Discrete events processed (transmissions completed, hop arrivals).
    pub events: u64,
    /// Packets delivered to their final destination.
    pub packets_delivered: u64,
}

impl CounterSnapshot {
    /// Counters accumulated since `earlier` (saturating).
    pub fn since(&self, earlier: CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            events: self.events.saturating_sub(earlier.events),
            packets_delivered: self
                .packets_delivered
                .saturating_sub(earlier.packets_delivered),
        }
    }
}

/// Read this thread's counters.
pub fn snapshot() -> CounterSnapshot {
    CounterSnapshot {
        events: EVENTS.with(Cell::get),
        packets_delivered: DELIVERIES.with(Cell::get),
    }
}

pub(crate) fn count_event() {
    EVENTS.with(|c| c.set(c.get().wrapping_add(1)));
}

pub(crate) fn count_delivery() {
    DELIVERIES.with(|c| c.set(c.get().wrapping_add(1)));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_accumulate() {
        let before = snapshot();
        count_event();
        count_event();
        count_delivery();
        let d = snapshot().since(before);
        assert_eq!(d.events, 2);
        assert_eq!(d.packets_delivered, 1);
    }
}
