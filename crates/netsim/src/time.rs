//! Simulated time.
//!
//! The simulator keeps time as an integer number of **microseconds** since
//! the start of the run. Microsecond resolution is fine-grained enough for
//! sub-millisecond RTTs (the paper reports RTTs down to 2.21 ms) while an
//! unsigned 64-bit counter still covers ~584 000 years of simulated time.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time (microseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Raw microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since simulation start (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since simulation start as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time elapsed since `earlier`, saturating at zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration (None on overflow).
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest microsecond.
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        SimDuration((s * 1e6).round() as u64)
    }

    /// Construct from fractional milliseconds, rounding to the nearest microsecond.
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms / 1e3)
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiply by an integer factor, saturating at the maximum.
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Scale by a non-negative float, rounding to the nearest microsecond.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        assert!(k.is_finite() && k >= 0.0, "invalid scale: {k}");
        SimDuration((self.0 as f64 * k).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0 - d.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics if `rhs` is later than `self`; use [`SimTime::saturating_since`]
    /// when ordering is uncertain.
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_secs(1).as_millis(), 1_000);
        assert_eq!(SimDuration::from_secs_f64(0.0015).as_micros(), 1_500);
        assert_eq!(SimDuration::from_millis_f64(2.5).as_micros(), 2_500);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_millis(250);
        assert_eq!((t + d).as_micros(), 10_250_000);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d).saturating_since(t), d);
        assert_eq!(t.saturating_since(t + d), SimDuration::ZERO);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(100);
        assert_eq!((d * 3).as_millis(), 300);
        assert_eq!((d / 4).as_millis(), 25);
        assert_eq!(d.mul_f64(0.5).as_millis(), 50);
        assert_eq!(d.saturating_mul(u64::MAX), SimDuration::MAX);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn time_subtraction_underflow_panics() {
        let _ = SimTime::from_secs(1) - SimTime::from_secs(2);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_millis(999) < SimTime::from_secs(1));
        assert!(SimDuration::from_micros(1) > SimDuration::ZERO);
        assert_eq!(SimTime::ZERO.max(SimTime::from_secs(1)), SimTime::from_secs(1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_micros(500).to_string(), "500us");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(SimTime::MAX.checked_add(SimDuration::from_micros(1)).is_none());
        assert_eq!(
            SimTime::ZERO.checked_add(SimDuration::from_secs(1)),
            Some(SimTime::from_secs(1))
        );
    }
}
