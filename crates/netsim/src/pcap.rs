//! Classic libpcap-format dump of simulated traffic.
//!
//! The paper's raw data is Wireshark pcap files collected on the APs. For
//! parity (and for debugging the simulator with real tooling), this module
//! writes captured packets in the classic libpcap file format, using
//! `LINKTYPE_USER0` (147) with SVRP-encoded frames (see [`crate::wire`]),
//! and can read such files back.

use crate::packet::Packet;
use crate::time::SimTime;
use crate::wire::{self, DecodedFrame};
use std::io::{self, Read, Write};

/// libpcap magic number (microsecond timestamps, little-endian).
pub const PCAP_MAGIC: u32 = 0xA1B2_C3D4;
/// Link type for user-defined encapsulation #0.
pub const LINKTYPE_USER0: u32 = 147;
/// Snap length we declare (larger than any simulated frame).
pub const SNAPLEN: u32 = 65_535;

/// Streaming pcap writer.
pub struct PcapWriter<W: Write> {
    out: W,
    packets: u64,
}

impl<W: Write> PcapWriter<W> {
    /// Create a writer and emit the global header.
    pub fn new(mut out: W) -> io::Result<Self> {
        out.write_all(&PCAP_MAGIC.to_le_bytes())?;
        out.write_all(&2u16.to_le_bytes())?; // version major
        out.write_all(&4u16.to_le_bytes())?; // version minor
        out.write_all(&0i32.to_le_bytes())?; // thiszone
        out.write_all(&0u32.to_le_bytes())?; // sigfigs
        out.write_all(&SNAPLEN.to_le_bytes())?;
        out.write_all(&LINKTYPE_USER0.to_le_bytes())?;
        Ok(PcapWriter { out, packets: 0 })
    }

    /// Append one packet with its capture timestamp.
    pub fn write_packet(&mut self, ts: SimTime, pkt: &Packet) -> io::Result<()> {
        let frame = wire::encode(pkt);
        let us = ts.as_micros();
        let secs = (us / 1_000_000) as u32;
        let micros = (us % 1_000_000) as u32;
        self.out.write_all(&secs.to_le_bytes())?;
        self.out.write_all(&micros.to_le_bytes())?;
        self.out.write_all(&(frame.len() as u32).to_le_bytes())?;
        self.out.write_all(&(frame.len() as u32).to_le_bytes())?;
        self.out.write_all(&frame)?;
        self.packets += 1;
        Ok(())
    }

    /// Packets written so far.
    pub fn packet_count(&self) -> u64 {
        self.packets
    }

    /// Flush and return the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// A packet read back from a pcap file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcapRecord {
    /// Capture timestamp.
    pub ts: SimTime,
    /// Decoded SVRP frame.
    pub frame: DecodedFrame,
}

/// Errors reading a pcap file.
#[derive(Debug)]
pub enum PcapError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// File header malformed or wrong magic/linktype.
    BadHeader(String),
    /// Frame failed SVRP decoding.
    BadFrame(wire::WireError),
}

impl std::fmt::Display for PcapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcapError::Io(e) => write!(f, "pcap io error: {e}"),
            PcapError::BadHeader(s) => write!(f, "bad pcap header: {s}"),
            PcapError::BadFrame(e) => write!(f, "bad frame: {e}"),
        }
    }
}

impl std::error::Error for PcapError {}

impl From<io::Error> for PcapError {
    fn from(e: io::Error) -> Self {
        PcapError::Io(e)
    }
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u16<R: Read>(r: &mut R) -> io::Result<u16> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}

/// Read an entire pcap file produced by [`PcapWriter`].
pub fn read_pcap<R: Read>(mut r: R) -> Result<Vec<PcapRecord>, PcapError> {
    let magic = read_u32(&mut r)?;
    if magic != PCAP_MAGIC {
        return Err(PcapError::BadHeader(format!("magic 0x{magic:08x}")));
    }
    let (maj, min) = (read_u16(&mut r)?, read_u16(&mut r)?);
    if (maj, min) != (2, 4) {
        return Err(PcapError::BadHeader(format!("version {maj}.{min}")));
    }
    let _thiszone = read_u32(&mut r)?;
    let _sigfigs = read_u32(&mut r)?;
    let _snaplen = read_u32(&mut r)?;
    let linktype = read_u32(&mut r)?;
    if linktype != LINKTYPE_USER0 {
        return Err(PcapError::BadHeader(format!("linktype {linktype}")));
    }

    let mut out = Vec::new();
    loop {
        let secs = match read_u32(&mut r) {
            Ok(v) => v,
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e.into()),
        };
        let micros = read_u32(&mut r)?;
        let incl_len = read_u32(&mut r)? as usize;
        let orig_len = read_u32(&mut r)? as usize;
        if incl_len != orig_len {
            return Err(PcapError::BadHeader(format!(
                "truncated capture record ({incl_len} of {orig_len} bytes)"
            )));
        }
        let mut buf = vec![0u8; incl_len];
        r.read_exact(&mut buf)?;
        let frame = wire::decode(&buf).map_err(PcapError::BadFrame)?;
        out.push(PcapRecord {
            ts: SimTime::from_micros(secs as u64 * 1_000_000 + micros as u64),
            frame,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;
    use crate::packet::{Proto, TransportHeader};
    use crate::buf::Bytes;

    fn pkt(payload: &'static [u8], id: u64) -> Packet {
        let mut p = Packet::new(
            TransportHeader::datagram(Proto::Udp, 4000, 443),
            Bytes::from_static(payload),
        );
        p.src = NodeId(0);
        p.dst = NodeId(1);
        p.id = id;
        p
    }

    #[test]
    fn write_read_roundtrip() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_packet(SimTime::from_millis(1500), &pkt(b"one", 1)).unwrap();
        w.write_packet(SimTime::from_millis(2500), &pkt(b"two-longer", 2)).unwrap();
        assert_eq!(w.packet_count(), 2);
        let buf = w.finish().unwrap();
        let recs = read_pcap(&buf[..]).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].ts, SimTime::from_millis(1500));
        assert_eq!(recs[0].frame.payload.as_ref(), b"one");
        assert_eq!(recs[1].frame.payload.as_ref(), b"two-longer");
        assert_eq!(recs[1].frame.header.proto, Proto::Udp);
    }

    #[test]
    fn empty_file_has_header_only() {
        let w = PcapWriter::new(Vec::new()).unwrap();
        let buf = w.finish().unwrap();
        assert_eq!(buf.len(), 24);
        assert!(read_pcap(&buf[..]).unwrap().is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = PcapWriter::new(Vec::new()).unwrap().finish().unwrap();
        buf[0] = 0;
        assert!(matches!(read_pcap(&buf[..]), Err(PcapError::BadHeader(_))));
    }

    #[test]
    fn corrupted_frame_detected() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_packet(SimTime::ZERO, &pkt(b"payload", 0)).unwrap();
        let mut buf = w.finish().unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0xFF;
        assert!(matches!(read_pcap(&buf[..]), Err(PcapError::BadFrame(_))));
    }

    #[test]
    fn timestamp_precision_is_microseconds() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        let t = SimTime::from_micros(3_000_007);
        w.write_packet(t, &pkt(b"x", 0)).unwrap();
        let buf = w.finish().unwrap();
        assert_eq!(read_pcap(&buf[..]).unwrap()[0].ts, t);
    }
}
