//! Deterministic randomness.
//!
//! Every stochastic decision in the simulator (packet loss, jitter, motion
//! synthesis, server load-balancing) draws from a [`SimRng`] seeded from
//! the experiment seed, so a run is reproducible bit-for-bit. Substreams
//! can be forked per component so that adding a consumer in one module
//! does not perturb the draws seen by another.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic random-number generator for simulation components.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Fork an independent substream labelled by `tag`.
    ///
    /// The child stream is a pure function of the parent's seed position
    /// and the tag, so two components forked with different tags never
    /// share draws.
    pub fn fork(&mut self, tag: u64) -> SimRng {
        let base = self.inner.next_u64();
        // SplitMix64-style mixing of (base, tag) into a child seed.
        let mut z = base ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        SimRng::seed_from_u64(z)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.unit() < p
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        self.inner.gen_range(lo..=hi)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "empty range");
        if lo == hi {
            return lo;
        }
        self.inner.gen_range(lo..hi)
    }

    /// A sample from a normal distribution via Box–Muller.
    ///
    /// Used for measurement noise (the paper reports standard deviations
    /// for every quantity).
    pub fn gaussian(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "negative std dev");
        if std_dev == 0.0 {
            return mean;
        }
        // Avoid ln(0).
        let u1: f64 = self.unit().max(f64::MIN_POSITIVE);
        let u2: f64 = self.unit();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + z * std_dev
    }

    /// A positive sample from a normal distribution, clamped at `min`.
    pub fn gaussian_at_least(&mut self, mean: f64, std_dev: f64, min: f64) -> f64 {
        self.gaussian(mean, std_dev).max(min)
    }

    /// Exponentially-distributed sample with the given mean (for
    /// Poisson-process inter-arrival times, e.g. background control bursts).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "non-positive mean");
        let u: f64 = self.unit().max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }

    /// Pick a uniformly random element index for a slice of length `len`.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "empty slice");
        self.inner.gen_range(0..len)
    }

    /// Raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be effectively independent");
    }

    #[test]
    fn forked_streams_are_independent_and_deterministic() {
        let mut parent1 = SimRng::seed_from_u64(99);
        let mut parent2 = SimRng::seed_from_u64(99);
        let mut c1 = parent1.fork(1);
        let mut c2 = parent2.fork(1);
        for _ in 0..32 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
        let mut parent = SimRng::seed_from_u64(99);
        let mut x = parent.fork(1);
        let mut parent_b = SimRng::seed_from_u64(99);
        let mut y = parent_b.fork(2);
        let same = (0..64).filter(|_| x.next_u64() == y.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from_u64(0);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn chance_frequency_tracks_probability() {
        let mut r = SimRng::seed_from_u64(1234);
        let n = 20_000;
        let hits = (0..n).filter(|_| r.chance(0.2)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.2).abs() < 0.02, "freq {freq}");
    }

    #[test]
    fn gaussian_moments() {
        let mut r = SimRng::seed_from_u64(55);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| r.gaussian(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn gaussian_zero_std_is_constant() {
        let mut r = SimRng::seed_from_u64(3);
        assert_eq!(r.gaussian(42.0, 0.0), 42.0);
    }

    #[test]
    fn exponential_mean() {
        let mut r = SimRng::seed_from_u64(77);
        let n = 50_000;
        let mean = (0..n).map(|_| r.exponential(5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SimRng::seed_from_u64(8);
        for _ in 0..1000 {
            let v = r.range_u64(3, 9);
            assert!((3..=9).contains(&v));
            let f = r.range_f64(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
            assert!(r.index(5) < 5);
        }
        assert_eq!(r.range_f64(2.0, 2.0), 2.0);
    }
}
