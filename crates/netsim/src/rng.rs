//! Deterministic randomness.
//!
//! Every stochastic decision in the simulator (packet loss, jitter, motion
//! synthesis, server load-balancing) draws from a [`SimRng`] seeded from
//! the experiment seed, so a run is reproducible bit-for-bit. Substreams
//! can be forked per component so that adding a consumer in one module
//! does not perturb the draws seen by another.
//!
//! # Implementation
//!
//! The generator is an in-tree **xoshiro256++** (Blackman & Vigna), the
//! same algorithm `rand`'s `SmallRng` uses on 64-bit targets, seeded by
//! expanding a 64-bit seed through **SplitMix64**. Keeping it in-tree
//! removes the workspace's last required external dependency on the hot
//! path and freezes the stream: the byte sequence for a given seed is
//! part of the artifact-determinism contract and must never change
//! silently (the harness determinism tests pin it).
//!
//! # Substream-fork guarantees
//!
//! [`SimRng::fork`] must keep three properties that the simulator relies
//! on (components fork one substream per module so that adding a consumer
//! in one module cannot perturb another):
//!
//! 1. **Determinism** — the child stream is a pure function of the
//!    parent's seed *position* and the tag: forking the same tag at the
//!    same point in the parent stream always yields the same child.
//! 2. **Independence by tag** — children forked with different tags from
//!    the same parent position produce effectively uncorrelated streams
//!    (the tag is mixed through SplitMix64's finalizer, which is a
//!    bijection on `u64` with full avalanche).
//! 3. **Parent advancement** — forking consumes exactly one draw from the
//!    parent, so sibling forks at successive positions are themselves
//!    decorrelated, and the parent stream after a fork does not overlap
//!    the child's.

/// SplitMix64 finalizer: a bijective mix with full avalanche, used both
/// for seed expansion and for fork-tag mixing. Public so callers (e.g.
/// the experiment harness) can derive well-spread sub-seeds from a user
/// seed without pulling in a generator.
#[inline]
pub fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One step of the SplitMix64 sequence (advances `state`, returns a draw).
#[inline]
fn splitmix64_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    splitmix64_mix(*state)
}

/// A deterministic random-number generator for simulation components.
///
/// xoshiro256++ with SplitMix64 seeding; see the module docs for the
/// stream-stability and fork guarantees.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    ///
    /// The 256-bit xoshiro state is filled from four successive SplitMix64
    /// draws, which guarantees a non-zero state for every seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            s: [
                splitmix64_next(&mut sm),
                splitmix64_next(&mut sm),
                splitmix64_next(&mut sm),
                splitmix64_next(&mut sm),
            ],
        }
    }

    /// Fork an independent substream labelled by `tag`.
    ///
    /// The child stream is a pure function of the parent's seed position
    /// and the tag, so two components forked with different tags never
    /// share draws. See the module docs for the full guarantee list.
    pub fn fork(&mut self, tag: u64) -> SimRng {
        let base = self.next_u64();
        let child_seed = splitmix64_mix(base ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        SimRng::seed_from_u64(child_seed)
    }

    /// Raw 64-bit draw (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn unit(&mut self) -> f64 {
        // Standard conversion: take the top 53 bits of a u64 draw.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.unit() < p
    }

    /// Uniform integer in `[lo, hi]` inclusive, unbiased.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        let n = span + 1;
        // Lemire's widening-multiply method with rejection to remove bias.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(n as u128);
        let mut low = m as u64;
        if low < n {
            let threshold = n.wrapping_neg() % n;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(n as u128);
                low = m as u64;
            }
        }
        lo + (m >> 64) as u64
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "empty range");
        if lo == hi {
            return lo;
        }
        let v = lo + self.unit() * (hi - lo);
        // Guard against rounding up to the exclusive bound.
        if v < hi {
            v
        } else {
            f64::from_bits(hi.to_bits() - 1).max(lo)
        }
    }

    /// A sample from a normal distribution via Box–Muller.
    ///
    /// Used for measurement noise (the paper reports standard deviations
    /// for every quantity).
    pub fn gaussian(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "negative std dev");
        if std_dev == 0.0 {
            return mean;
        }
        // Avoid ln(0).
        let u1: f64 = self.unit().max(f64::MIN_POSITIVE);
        let u2: f64 = self.unit();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + z * std_dev
    }

    /// A positive sample from a normal distribution, clamped at `min`.
    pub fn gaussian_at_least(&mut self, mean: f64, std_dev: f64, min: f64) -> f64 {
        self.gaussian(mean, std_dev).max(min)
    }

    /// Exponentially-distributed sample with the given mean (for
    /// Poisson-process inter-arrival times, e.g. background control bursts).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "non-positive mean");
        let u: f64 = self.unit().max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }

    /// Pick a uniformly random element index for a slice of length `len`.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "empty slice");
        self.range_u64(0, len as u64 - 1) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn stream_is_pinned() {
        // The exact draw sequence for a fixed seed is part of the artifact
        // determinism contract; changing the generator must fail loudly
        // here, not show up as silently different experiment output.
        let mut r = SimRng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let again: Vec<u64> = {
            let mut r = SimRng::seed_from_u64(0);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(first, again);
        // Reference values computed from SplitMix64(0) seeding feeding
        // xoshiro256++ as implemented above.
        let mut sm = 0u64;
        let s: [u64; 4] = [
            splitmix64_next(&mut sm),
            splitmix64_next(&mut sm),
            splitmix64_next(&mut sm),
            splitmix64_next(&mut sm),
        ];
        let expect0 = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        assert_eq!(first[0], expect0);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be effectively independent");
    }

    #[test]
    fn forked_streams_are_independent_and_deterministic() {
        let mut parent1 = SimRng::seed_from_u64(99);
        let mut parent2 = SimRng::seed_from_u64(99);
        let mut c1 = parent1.fork(1);
        let mut c2 = parent2.fork(1);
        for _ in 0..32 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
        let mut parent = SimRng::seed_from_u64(99);
        let mut x = parent.fork(1);
        let mut parent_b = SimRng::seed_from_u64(99);
        let mut y = parent_b.fork(2);
        let same = (0..64).filter(|_| x.next_u64() == y.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn fork_advances_parent_by_one_draw() {
        let mut a = SimRng::seed_from_u64(5);
        let mut b = SimRng::seed_from_u64(5);
        let _ = a.fork(9);
        let _ = b.next_u64();
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from_u64(0);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn chance_frequency_tracks_probability() {
        let mut r = SimRng::seed_from_u64(1234);
        let n = 20_000;
        let hits = (0..n).filter(|_| r.chance(0.2)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.2).abs() < 0.02, "freq {freq}");
    }

    #[test]
    fn unit_is_in_half_open_interval() {
        let mut r = SimRng::seed_from_u64(21);
        for _ in 0..10_000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u), "unit {u}");
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut r = SimRng::seed_from_u64(55);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| r.gaussian(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn gaussian_zero_std_is_constant() {
        let mut r = SimRng::seed_from_u64(3);
        assert_eq!(r.gaussian(42.0, 0.0), 42.0);
    }

    #[test]
    fn exponential_mean() {
        let mut r = SimRng::seed_from_u64(77);
        let n = 50_000;
        let mean = (0..n).map(|_| r.exponential(5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn range_u64_is_unbiased_at_small_spans() {
        let mut r = SimRng::seed_from_u64(42);
        let n = 30_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[r.range_u64(0, 2) as usize] += 1;
        }
        for c in counts {
            let freq = c as f64 / n as f64;
            assert!((freq - 1.0 / 3.0).abs() < 0.02, "freq {freq}");
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SimRng::seed_from_u64(8);
        for _ in 0..1000 {
            let v = r.range_u64(3, 9);
            assert!((3..=9).contains(&v));
            let f = r.range_f64(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
            assert!(r.index(5) < 5);
        }
        assert_eq!(r.range_f64(2.0, 2.0), 2.0);
    }
}
