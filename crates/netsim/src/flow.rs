//! Flow identification and windowed throughput series.
//!
//! The paper's throughput plots (Figures 2, 3, 6, 12, 13) are per-second
//! throughput series computed from Wireshark captures, split per flow
//! (control vs data channel) and direction. [`ThroughputSeries`] is that
//! computation.

use crate::node::NodeId;
use crate::packet::Proto;
use crate::time::{SimDuration, SimTime};
use crate::units::{Bitrate, ByteSize};
use std::fmt;

/// The 5-tuple identifying a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey {
    /// Originating node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Transport protocol.
    pub proto: Proto,
}

impl FlowKey {
    /// The reverse flow (server→client for a client→server key).
    pub fn reversed(self) -> FlowKey {
        FlowKey {
            src: self.dst,
            dst: self.src,
            src_port: self.dst_port,
            dst_port: self.src_port,
            proto: self.proto,
        }
    }

    /// The canonical bidirectional key: both directions map to the same
    /// value, so a conversation can be grouped regardless of direction.
    pub fn bidirectional(self) -> FlowKey {
        let fwd = (self.src, self.src_port);
        let rev = (self.dst, self.dst_port);
        if fwd <= rev {
            self
        } else {
            self.reversed()
        }
    }
}

impl fmt::Display for FlowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}:{} -> {}:{}",
            self.proto, self.src, self.src_port, self.dst, self.dst_port
        )
    }
}

/// Aggregate counters for one flow.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FlowStats {
    /// Packets observed.
    pub packets: u64,
    /// Wire bytes observed.
    pub bytes: u64,
    /// Timestamp of the first packet.
    pub first: Option<SimTime>,
    /// Timestamp of the last packet.
    pub last: Option<SimTime>,
}

impl FlowStats {
    /// Record one packet.
    pub fn record(&mut self, ts: SimTime, wire_bytes: ByteSize) {
        self.packets += 1;
        self.bytes += wire_bytes.as_bytes();
        if self.first.is_none() {
            self.first = Some(ts);
        }
        self.last = Some(ts);
    }

    /// Mean rate over the flow's active interval.
    pub fn mean_rate(&self) -> Bitrate {
        match (self.first, self.last) {
            (Some(a), Some(b)) if b > a => {
                ByteSize::from_bytes(self.bytes).rate_over(b - a)
            }
            _ => Bitrate::ZERO,
        }
    }
}

/// A per-window throughput series computed from `(timestamp, bytes)` samples.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputSeries {
    /// Window length.
    pub window: SimDuration,
    /// Start of the first window.
    pub origin: SimTime,
    /// Bytes accumulated per window (index k covers
    /// `[origin + k*window, origin + (k+1)*window)`).
    pub bytes: Vec<u64>,
}

impl ThroughputSeries {
    /// Create an empty series with the given window length and origin.
    pub fn new(window: SimDuration, origin: SimTime) -> Self {
        assert!(window > SimDuration::ZERO, "zero window");
        ThroughputSeries { window, origin, bytes: Vec::new() }
    }

    /// Accumulate a sample. Samples before `origin` are ignored; samples
    /// may arrive in any order.
    pub fn add(&mut self, ts: SimTime, wire_bytes: ByteSize) {
        if ts < self.origin {
            return;
        }
        let idx = ((ts - self.origin).as_micros() / self.window.as_micros()) as usize;
        if idx >= self.bytes.len() {
            self.bytes.resize(idx + 1, 0);
        }
        self.bytes[idx] += wire_bytes.as_bytes();
    }

    /// Extend the series (with zero-filled windows) to cover `until`.
    pub fn pad_until(&mut self, until: SimTime) {
        if until <= self.origin {
            return;
        }
        let idx = ((until - self.origin).as_micros().saturating_sub(1)
            / self.window.as_micros()) as usize;
        if idx >= self.bytes.len() {
            self.bytes.resize(idx + 1, 0);
        }
    }

    /// The rate in window `k`.
    pub fn rate_at(&self, k: usize) -> Bitrate {
        let b = self.bytes.get(k).copied().unwrap_or(0);
        ByteSize::from_bytes(b).rate_over(self.window)
    }

    /// All `(window_start, rate)` points.
    pub fn points(&self) -> Vec<(SimTime, Bitrate)> {
        (0..self.bytes.len())
            .map(|k| (self.origin + self.window * k as u64, self.rate_at(k)))
            .collect()
    }

    /// Mean rate across windows `[from, to)` (indices clamped to the series).
    pub fn mean_rate_in(&self, from: usize, to: usize) -> Bitrate {
        let to = to.min(self.bytes.len());
        if from >= to {
            return Bitrate::ZERO;
        }
        let total: u64 = self.bytes[from..to].iter().sum();
        let span = self.window * (to - from) as u64;
        ByteSize::from_bytes(total).rate_over(span)
    }

    /// Mean rate over the whole series.
    pub fn mean_rate(&self) -> Bitrate {
        self.mean_rate_in(0, self.bytes.len())
    }

    /// Number of windows.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether no windows exist yet.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> FlowKey {
        FlowKey {
            src: NodeId(1),
            dst: NodeId(2),
            src_port: 5000,
            dst_port: 443,
            proto: Proto::Tcp,
        }
    }

    #[test]
    fn reversed_swaps_endpoints() {
        let k = key();
        let r = k.reversed();
        assert_eq!(r.src, k.dst);
        assert_eq!(r.dst_port, k.src_port);
        assert_eq!(r.reversed(), k);
    }

    #[test]
    fn bidirectional_is_direction_invariant() {
        let k = key();
        assert_eq!(k.bidirectional(), k.reversed().bidirectional());
    }

    #[test]
    fn flow_stats_accumulate() {
        let mut s = FlowStats::default();
        s.record(SimTime::from_secs(1), ByteSize::from_bytes(500));
        s.record(SimTime::from_secs(3), ByteSize::from_bytes(500));
        assert_eq!(s.packets, 2);
        assert_eq!(s.bytes, 1000);
        // 1000 bytes over 2 s = 4000 bps.
        assert_eq!(s.mean_rate().as_bps(), 4000);
    }

    #[test]
    fn single_packet_flow_has_zero_rate() {
        let mut s = FlowStats::default();
        s.record(SimTime::from_secs(1), ByteSize::from_bytes(500));
        assert_eq!(s.mean_rate(), Bitrate::ZERO);
    }

    #[test]
    fn series_buckets_by_window() {
        let mut ts = ThroughputSeries::new(SimDuration::from_secs(1), SimTime::ZERO);
        ts.add(SimTime::from_millis(100), ByteSize::from_bytes(125));
        ts.add(SimTime::from_millis(900), ByteSize::from_bytes(125));
        ts.add(SimTime::from_millis(1000), ByteSize::from_bytes(250));
        assert_eq!(ts.len(), 2);
        // 250 B in 1 s = 2000 bps.
        assert_eq!(ts.rate_at(0).as_bps(), 2000);
        assert_eq!(ts.rate_at(1).as_bps(), 2000);
        assert_eq!(ts.rate_at(7), Bitrate::ZERO);
    }

    #[test]
    fn series_respects_origin() {
        let mut ts =
            ThroughputSeries::new(SimDuration::from_secs(1), SimTime::from_secs(10));
        ts.add(SimTime::from_secs(5), ByteSize::from_bytes(999)); // before origin: dropped
        ts.add(SimTime::from_secs(10), ByteSize::from_bytes(125));
        assert_eq!(ts.len(), 1);
        assert_eq!(ts.bytes[0], 125);
        let pts = ts.points();
        assert_eq!(pts[0].0, SimTime::from_secs(10));
    }

    #[test]
    fn mean_rate_in_range() {
        let mut ts = ThroughputSeries::new(SimDuration::from_secs(1), SimTime::ZERO);
        for k in 0..10u64 {
            ts.add(SimTime::from_secs(k), ByteSize::from_bytes(125));
        }
        assert_eq!(ts.mean_rate_in(0, 10).as_bps(), 1000);
        assert_eq!(ts.mean_rate_in(0, 100).as_bps(), 1000); // clamped
        assert_eq!(ts.mean_rate_in(5, 5), Bitrate::ZERO);
        assert_eq!(ts.mean_rate().as_bps(), 1000);
    }

    #[test]
    fn pad_until_extends_with_zeros() {
        let mut ts = ThroughputSeries::new(SimDuration::from_secs(1), SimTime::ZERO);
        ts.add(SimTime::from_secs(0), ByteSize::from_bytes(1));
        ts.pad_until(SimTime::from_secs(5));
        assert_eq!(ts.len(), 5);
        assert_eq!(ts.bytes[4], 0);
        // Padding to an exact boundary must not add a window beyond it.
        let mut t2 = ThroughputSeries::new(SimDuration::from_secs(1), SimTime::ZERO);
        t2.pad_until(SimTime::from_secs(3));
        assert_eq!(t2.len(), 3);
    }

    /// Deterministic seeded-loop fallbacks for the proptest versions below:
    /// always compiled, so the properties stay covered offline.
    #[test]
    fn prop_total_bytes_conserved_seeded() {
        let mut rng = crate::rng::SimRng::seed_from_u64(0xF10A_0001);
        for _case in 0..64 {
            let mut ts = ThroughputSeries::new(SimDuration::from_secs(1), SimTime::ZERO);
            let mut total = 0u64;
            for _ in 0..rng.range_u64(0, 299) {
                let us = rng.range_u64(0, 299_999_999);
                let b = rng.range_u64(1, 1999);
                ts.add(SimTime::from_micros(us), ByteSize::from_bytes(b));
                total += b;
            }
            assert_eq!(ts.bytes.iter().sum::<u64>(), total);
        }
    }

    #[test]
    fn prop_sample_lands_in_correct_window_seeded() {
        let mut rng = crate::rng::SimRng::seed_from_u64(0xF10A_0002);
        for _case in 0..256 {
            let us = rng.range_u64(0, 99_999_999);
            let mut ts = ThroughputSeries::new(SimDuration::from_secs(1), SimTime::ZERO);
            ts.add(SimTime::from_micros(us), ByteSize::from_bytes(1));
            let k = (us / 1_000_000) as usize;
            assert_eq!(ts.bytes[k], 1);
        }
    }

    #[cfg(feature = "proptests")]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prop_total_bytes_conserved(
                samples in proptest::collection::vec((0u64..300_000_000, 1u64..2000), 0..300)
            ) {
                let mut ts = ThroughputSeries::new(SimDuration::from_secs(1), SimTime::ZERO);
                let mut total = 0u64;
                for (us, b) in &samples {
                    ts.add(SimTime::from_micros(*us), ByteSize::from_bytes(*b));
                    total += b;
                }
                prop_assert_eq!(ts.bytes.iter().sum::<u64>(), total);
            }

            #[test]
            fn prop_sample_lands_in_correct_window(us in 0u64..100_000_000) {
                let mut ts = ThroughputSeries::new(SimDuration::from_secs(1), SimTime::ZERO);
                ts.add(SimTime::from_micros(us), ByteSize::from_bytes(1));
                let k = (us / 1_000_000) as usize;
                prop_assert_eq!(ts.bytes[k], 1);
            }
        }
    }
}
