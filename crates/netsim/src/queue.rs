//! Drop-tail packet queue.
//!
//! Each simulated link owns a finite buffer. When a packet arrives while
//! the link is serializing another, it waits here; when the buffer is full
//! the packet is dropped — the congestion behaviour the paper provokes
//! with `tc-netem` rate caps in §8.

use crate::packet::Packet;
use crate::units::ByteSize;
use std::collections::VecDeque;

/// A FIFO queue bounded by total buffered bytes.
#[derive(Debug)]
pub struct DropTailQueue {
    items: VecDeque<Packet>,
    buffered: ByteSize,
    capacity: ByteSize,
    /// Count of packets dropped because the buffer was full.
    pub drops: u64,
    /// High-water mark of buffered bytes, for diagnostics.
    pub max_buffered: ByteSize,
}

impl DropTailQueue {
    /// Create a queue holding at most `capacity` bytes of packets.
    ///
    /// The ring buffer is pre-sized for the packet count the byte
    /// capacity could plausibly hold (assuming ~256-byte packets,
    /// capped at 4096 slots), so bursts fill existing slots instead of
    /// reallocating mid-simulation; draining keeps the allocation.
    pub fn new(capacity: ByteSize) -> Self {
        let est = (capacity.as_bytes() / 256).clamp(8, 4096) as usize;
        DropTailQueue {
            items: VecDeque::with_capacity(est),
            buffered: ByteSize::ZERO,
            capacity,
            drops: 0,
            max_buffered: ByteSize::ZERO,
        }
    }

    /// Attempt to enqueue; returns `false` (and counts a drop) when the
    /// packet does not fit.
    pub fn push(&mut self, pkt: Packet) -> bool {
        let cap = self.capacity;
        self.push_capped(pkt, cap)
    }

    /// Enqueue against a tighter temporary capacity (a shaped link keeps
    /// its buffer shallow — tc's rate limiter bounds queueing *latency*,
    /// not bytes, so a 0.1 Mbps cap must not hide 20 s of backlog).
    pub fn push_capped(&mut self, pkt: Packet, cap: ByteSize) -> bool {
        let size = pkt.wire_size();
        if self.buffered + size > cap.min(self.capacity) {
            self.drops += 1;
            return false;
        }
        self.buffered += size;
        if self.buffered > self.max_buffered {
            self.max_buffered = self.buffered;
        }
        self.items.push_back(pkt);
        true
    }

    /// Dequeue the oldest packet.
    pub fn pop(&mut self) -> Option<Packet> {
        let pkt = self.items.pop_front()?;
        self.buffered = self.buffered.saturating_sub(pkt.wire_size());
        Some(pkt)
    }

    /// Number of queued packets.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Bytes currently buffered.
    pub fn buffered(&self) -> ByteSize {
        self.buffered
    }

    /// Configured capacity in bytes.
    pub fn capacity(&self) -> ByteSize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Proto, TransportHeader};
    use crate::buf::Bytes;

    fn pkt(n: usize) -> Packet {
        Packet::new(
            TransportHeader::datagram(Proto::Udp, 1, 2),
            Bytes::from(vec![0u8; n]),
        )
    }

    #[test]
    fn fifo_order() {
        let mut q = DropTailQueue::new(ByteSize::from_kb(10));
        for i in 0..5 {
            let mut p = pkt(10);
            p.id = i;
            assert!(q.push(p));
        }
        for i in 0..5 {
            assert_eq!(q.pop().unwrap().id, i);
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn overflow_drops_tail() {
        // Each 58-byte packet (34+8+16); capacity fits exactly two.
        let mut q = DropTailQueue::new(ByteSize::from_bytes(116));
        assert!(q.push(pkt(16)));
        assert!(q.push(pkt(16)));
        assert!(!q.push(pkt(16)));
        assert_eq!(q.drops, 1);
        assert_eq!(q.len(), 2);
        // Draining frees space again.
        q.pop();
        assert!(q.push(pkt(16)));
    }

    #[test]
    fn byte_accounting() {
        let mut q = DropTailQueue::new(ByteSize::from_kb(100));
        q.push(pkt(100));
        q.push(pkt(200));
        assert_eq!(q.buffered().as_bytes(), (34 + 8 + 100) + (34 + 8 + 200));
        q.pop();
        assert_eq!(q.buffered().as_bytes(), 34 + 8 + 200);
        q.pop();
        assert_eq!(q.buffered(), ByteSize::ZERO);
        assert_eq!(q.max_buffered.as_bytes(), (34 + 8 + 100) + (34 + 8 + 200));
    }

    /// Deterministic seeded-loop fallback for the proptest version below:
    /// always compiled, so the invariant stays covered offline.
    #[test]
    fn prop_buffered_never_exceeds_capacity_seeded() {
        let mut rng = crate::rng::SimRng::seed_from_u64(0x0B5E_55ED);
        for _case in 0..64 {
            let mut q = DropTailQueue::new(ByteSize::from_kb(8));
            let ops = rng.range_u64(1, 199);
            for _ in 0..ops {
                if rng.chance(0.5) {
                    q.push(pkt(rng.range_u64(0, 1199) as usize));
                } else {
                    q.pop();
                }
                assert!(q.buffered() <= q.capacity());
                // Buffered bytes must equal the sum over queued packets.
                let sum: u64 = q.items.iter().map(|p| p.wire_size().as_bytes()).sum();
                assert_eq!(q.buffered().as_bytes(), sum);
            }
        }
    }

    #[cfg(feature = "proptests")]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prop_buffered_never_exceeds_capacity(
                ops in proptest::collection::vec((any::<bool>(), 0usize..1200), 1..200)
            ) {
                let mut q = DropTailQueue::new(ByteSize::from_kb(8));
                for (push, size) in ops {
                    if push {
                        q.push(pkt(size));
                    } else {
                        q.pop();
                    }
                    prop_assert!(q.buffered() <= q.capacity());
                    // Buffered bytes must equal the sum over queued packets.
                    let sum: u64 = q.items.iter().map(|p| p.wire_size().as_bytes()).sum();
                    prop_assert_eq!(q.buffered().as_bytes(), sum);
                }
            }
        }
    }
}
