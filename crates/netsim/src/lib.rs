//! # svr-netsim
//!
//! A deterministic, single-threaded, discrete-event network simulator.
//!
//! This crate is the substrate for reproducing the measurement study
//! *"Are We Ready for Metaverse?"* (IMC 2022). It plays the role that the
//! physical campus network, WiFi access points, and `tc-netem` played in
//! the paper: it moves packets between nodes over links with configurable
//! bandwidth, propagation delay, drop-tail queues, random loss, and staged
//! impairment schedules, while a capture tap (the "Wireshark on the AP")
//! records every packet that crosses a vantage point.
//!
//! ## Design
//!
//! Following the event-driven, poll-based ethos of stacks like smoltcp,
//! the simulator does **not** own the program's event loop. Higher layers
//! (transport state machines, platform applications) are polled by a
//! driver that interleaves network deliveries with application timers:
//!
//! ```
//! use svr_netsim::{Network, NodeKind, LinkSpec, Packet, TransportHeader, Proto, SimTime};
//! use svr_netsim::buf::Bytes;
//!
//! let mut net = Network::new(42);
//! let a = net.add_node("U1", NodeKind::Headset);
//! let b = net.add_node("AP", NodeKind::AccessPoint);
//! net.add_duplex_link(a, b, LinkSpec::wifi(), LinkSpec::wifi());
//!
//! let hdr = TransportHeader::datagram(Proto::Udp, 5000, 6000);
//! net.send(a, b, Packet::new(hdr, Bytes::from_static(b"hello")));
//! let delivery = net.poll(SimTime::from_secs(1)).expect("delivered");
//! assert_eq!(delivery.dst, b);
//! ```
//!
//! Everything is deterministic: the same seed yields the same packet
//! trace, byte for byte, which is what makes the experiment reproductions
//! in `svr-core` meaningful.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buf;
pub mod capture;
pub mod counters;
pub mod flow;
pub mod link;
pub mod netem;
pub mod network;
pub mod node;
pub mod packet;
pub mod pcap;
pub mod queue;
pub mod rng;
pub mod time;
pub mod units;
pub mod wheel;
pub mod wire;

pub use buf::{Bytes, BytesMut};
pub use capture::{CaptureRecord, CaptureTap, Direction};
pub use flow::{FlowKey, FlowStats, ThroughputSeries};
pub use link::{Link, LinkId, LinkSpec};
pub use netem::{Impairment, NetemSchedule, NetemStage};
pub use network::{Delivery, Network};
pub use node::{NodeId, NodeKind};
pub use packet::{Packet, Proto, TcpFlags, TransportHeader};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
pub use units::{Bitrate, ByteSize};
