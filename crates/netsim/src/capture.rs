//! Packet capture at a vantage node — "Wireshark on the WiFi AP" (§3.2).
//!
//! A [`CaptureTap`] installed on a node records every packet that transits
//! it, with a timestamp, the flow 5-tuple, the wire size, and the traffic
//! direction relative to the client devices behind the tap. The analysis
//! code in `svr-core` consumes these records exactly the way the paper's
//! scripts consumed pcap files.

use crate::flow::{FlowKey, FlowStats, ThroughputSeries};
use crate::node::NodeId;
use crate::packet::{Packet, Proto};
use crate::time::{SimDuration, SimTime};
use std::collections::HashMap;

/// Traffic direction relative to the client device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Client → server.
    Uplink,
    /// Server → client.
    Downlink,
}

impl Direction {
    /// The opposite direction.
    pub fn flipped(self) -> Direction {
        match self {
            Direction::Uplink => Direction::Downlink,
            Direction::Downlink => Direction::Uplink,
        }
    }
}

/// One captured packet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CaptureRecord {
    /// Capture timestamp (when the packet transited the tap node).
    pub ts: SimTime,
    /// Flow 5-tuple.
    pub flow: FlowKey,
    /// Size on the wire, headers included.
    pub wire_bytes: u64,
    /// Application payload length.
    pub payload_len: u32,
    /// Direction relative to the client side of the tap.
    pub direction: Direction,
    /// Globally unique packet id (send order).
    pub packet_id: u64,
}

/// A capture tap bound to one vantage node.
#[derive(Debug, Default)]
pub struct CaptureTap {
    records: Vec<CaptureRecord>,
}

impl CaptureTap {
    /// Create an empty tap.
    pub fn new() -> Self {
        CaptureTap::default()
    }

    /// Record a packet transiting the tap.
    pub fn record(&mut self, ts: SimTime, pkt: &Packet, direction: Direction) {
        self.records.push(CaptureRecord {
            ts,
            flow: FlowKey {
                src: pkt.src,
                dst: pkt.dst,
                src_port: pkt.header.src_port,
                dst_port: pkt.header.dst_port,
                proto: pkt.header.proto,
            },
            wire_bytes: pkt.wire_size().as_bytes(),
            payload_len: pkt.payload.len() as u32,
            direction,
            packet_id: pkt.id,
        });
    }

    /// All records, in capture order.
    pub fn records(&self) -> &[CaptureRecord] {
        &self.records
    }

    /// Move the records out, leaving the tap empty.
    pub fn take_records(&mut self) -> Vec<CaptureRecord> {
        std::mem::take(&mut self.records)
    }

    /// Number of captured packets.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// Filter records by direction.
pub fn by_direction(records: &[CaptureRecord], d: Direction) -> Vec<CaptureRecord> {
    records.iter().filter(|r| r.direction == d).copied().collect()
}

/// Filter records by transport protocol.
pub fn by_proto(records: &[CaptureRecord], p: Proto) -> Vec<CaptureRecord> {
    records.iter().filter(|r| r.flow.proto == p).copied().collect()
}

/// Filter records whose remote endpoint (the non-client end) is `server`.
pub fn by_server(records: &[CaptureRecord], server: NodeId) -> Vec<CaptureRecord> {
    records
        .iter()
        .filter(|r| match r.direction {
            Direction::Uplink => r.flow.dst == server,
            Direction::Downlink => r.flow.src == server,
        })
        .copied()
        .collect()
}

/// Build a windowed throughput series from records.
pub fn throughput_series(
    records: &[CaptureRecord],
    window: SimDuration,
    origin: SimTime,
    until: SimTime,
) -> ThroughputSeries {
    let mut s = ThroughputSeries::new(window, origin);
    for r in records {
        s.add(r.ts, crate::units::ByteSize::from_bytes(r.wire_bytes));
    }
    s.pad_until(until);
    s
}

/// Aggregate per-flow statistics from records.
pub fn flow_table(records: &[CaptureRecord]) -> HashMap<FlowKey, FlowStats> {
    let mut table: HashMap<FlowKey, FlowStats> = HashMap::new();
    for r in records {
        table
            .entry(r.flow)
            .or_default()
            .record(r.ts, crate::units::ByteSize::from_bytes(r.wire_bytes));
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::TransportHeader;
    use crate::buf::Bytes;

    fn mk_pkt(src: u32, dst: u32, proto: Proto, payload: usize, id: u64) -> Packet {
        let mut p = Packet::new(
            TransportHeader::datagram(proto, 40000, 443),
            Bytes::from(vec![0u8; payload]),
        );
        p.src = NodeId(src);
        p.dst = NodeId(dst);
        p.id = id;
        p
    }

    #[test]
    fn record_captures_flow_fields() {
        let mut tap = CaptureTap::new();
        let pkt = mk_pkt(1, 9, Proto::Udp, 120, 77);
        tap.record(SimTime::from_secs(5), &pkt, Direction::Uplink);
        let r = tap.records()[0];
        assert_eq!(r.flow.src, NodeId(1));
        assert_eq!(r.flow.dst, NodeId(9));
        assert_eq!(r.wire_bytes, 34 + 8 + 120);
        assert_eq!(r.payload_len, 120);
        assert_eq!(r.packet_id, 77);
        assert_eq!(r.direction, Direction::Uplink);
    }

    #[test]
    fn filters_compose() {
        let mut tap = CaptureTap::new();
        tap.record(SimTime::from_secs(1), &mk_pkt(1, 9, Proto::Udp, 10, 0), Direction::Uplink);
        tap.record(SimTime::from_secs(2), &mk_pkt(9, 1, Proto::Udp, 10, 1), Direction::Downlink);
        tap.record(SimTime::from_secs(3), &mk_pkt(1, 8, Proto::Tcp, 10, 2), Direction::Uplink);
        let recs = tap.records();
        assert_eq!(by_direction(recs, Direction::Uplink).len(), 2);
        assert_eq!(by_proto(recs, Proto::Tcp).len(), 1);
        // Server 9 matches both the uplink (dst) and downlink (src) packets.
        assert_eq!(by_server(recs, NodeId(9)).len(), 2);
        assert_eq!(by_server(recs, NodeId(8)).len(), 1);
    }

    #[test]
    fn throughput_series_from_records() {
        let mut tap = CaptureTap::new();
        for k in 0..4u64 {
            tap.record(
                SimTime::from_secs(k),
                &mk_pkt(1, 9, Proto::Udp, 83, k), // 34+8+83 = 125 B = 1000 bits
                Direction::Uplink,
            );
        }
        let s = throughput_series(
            tap.records(),
            SimDuration::from_secs(1),
            SimTime::ZERO,
            SimTime::from_secs(6),
        );
        assert_eq!(s.len(), 6);
        assert_eq!(s.rate_at(0).as_bps(), 1000);
        assert_eq!(s.rate_at(5).as_bps(), 0);
    }

    #[test]
    fn flow_table_groups_by_five_tuple() {
        let mut tap = CaptureTap::new();
        tap.record(SimTime::from_secs(1), &mk_pkt(1, 9, Proto::Udp, 10, 0), Direction::Uplink);
        tap.record(SimTime::from_secs(2), &mk_pkt(1, 9, Proto::Udp, 10, 1), Direction::Uplink);
        tap.record(SimTime::from_secs(3), &mk_pkt(9, 1, Proto::Udp, 10, 2), Direction::Downlink);
        let table = flow_table(tap.records());
        assert_eq!(table.len(), 2);
        let up_key = tap.records()[0].flow;
        assert_eq!(table[&up_key].packets, 2);
    }

    #[test]
    fn take_records_empties_tap() {
        let mut tap = CaptureTap::new();
        tap.record(SimTime::ZERO, &mk_pkt(1, 9, Proto::Udp, 1, 0), Direction::Uplink);
        assert_eq!(tap.len(), 1);
        let recs = tap.take_records();
        assert_eq!(recs.len(), 1);
        assert!(tap.is_empty());
    }

    #[test]
    fn direction_flip() {
        assert_eq!(Direction::Uplink.flipped(), Direction::Downlink);
        assert_eq!(Direction::Downlink.flipped(), Direction::Uplink);
    }
}
