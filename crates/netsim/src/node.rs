//! Nodes: the endpoints and middleboxes of the simulated network.
//!
//! The paper's testbed (§3.2, Figure 1) consists of VR headsets behind
//! WiFi access points on a campus network, talking to platform servers
//! across the Internet. [`NodeKind`] captures those roles; the capture
//! taps in [`crate::capture`] use them to orient packet direction
//! (uplink vs downlink) the same way Wireshark on the AP did.

use std::fmt;

/// Identifier of a node within a [`crate::Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Raw index (stable for the lifetime of the network).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The role a node plays in the testbed topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// An untethered VR headset (Oculus Quest 2 in the paper).
    Headset,
    /// A tethered VR headset driven by a PC (HTC VIVE Cosmos).
    TetheredHeadset,
    /// A desktop PC client.
    Pc,
    /// A WiFi access point — the paper's capture vantage point.
    AccessPoint,
    /// An Internet router hop (used by the synthetic traceroute paths).
    Router,
    /// A platform server (control- or data-channel).
    Server,
}

impl NodeKind {
    /// Whether this node is a client-side device (traffic from it is uplink).
    pub fn is_client_device(self) -> bool {
        matches!(
            self,
            NodeKind::Headset | NodeKind::TetheredHeadset | NodeKind::Pc
        )
    }
}

/// A node in the network: a name for diagnostics plus its role.
#[derive(Debug, Clone)]
pub struct Node {
    /// Human-readable label ("U1", "AP-east", "worlds-data-iad").
    pub name: String,
    /// Role in the topology.
    pub kind: NodeKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_device_classification() {
        assert!(NodeKind::Headset.is_client_device());
        assert!(NodeKind::TetheredHeadset.is_client_device());
        assert!(NodeKind::Pc.is_client_device());
        assert!(!NodeKind::AccessPoint.is_client_device());
        assert!(!NodeKind::Server.is_client_device());
        assert!(!NodeKind::Router.is_client_device());
    }

    #[test]
    fn node_id_display_and_index() {
        let id = NodeId(7);
        assert_eq!(id.to_string(), "n7");
        assert_eq!(id.index(), 7);
    }
}
