//! The harness's central contract: artifacts are byte-identical for any
//! worker count, and the registry covers the whole experiment surface.
//!
//! A fast but representative selection exercises the merge machinery —
//! single-unit experiments (table1, table2, vantage) and a
//! multi-unit per-platform sweep (fig3) — under `jobs = 1` vs
//! `jobs = 8`, comparing the serialized bytes of every artifact.
//! (Header-merged tables share the exact same slot-ordered merge path;
//! their byte-stability is covered by the `experiment::merge` unit
//! tests, keeping this integration test seconds, not minutes.)

use svr_harness::{registry, run_selected, Fidelity, RunCtx, RunOptions};

fn run_with_jobs(jobs: usize, only: &[&str]) -> Vec<(String, String, String)> {
    let opts = RunOptions {
        ctx: RunCtx { fidelity: Fidelity::Quick, seed: 0 },
        jobs,
        only: Some(only.iter().map(|s| s.to_string()).collect()),
    };
    run_selected(&opts)
        .expect("selection is valid")
        .artifacts
        .into_iter()
        .map(|a| (a.name.to_string(), a.json.pretty(), a.display))
        .collect()
}

#[test]
fn artifacts_are_byte_identical_for_jobs_1_and_8() {
    // fig3 has two per-platform units (real parallel slicing);
    // table1/table2/vantage one each.
    let selection = ["table1", "table2", "vantage", "fig3"];
    let sequential = run_with_jobs(1, &selection);
    let parallel = run_with_jobs(8, &selection);

    assert_eq!(sequential.len(), parallel.len());
    for ((name_1, json_1, display_1), (name_8, json_8, display_8)) in
        sequential.into_iter().zip(parallel)
    {
        assert_eq!(name_1, name_8);
        assert_eq!(json_1, json_8, "{name_1}: artifact bytes differ between jobs=1 and jobs=8");
        assert_eq!(display_1, display_8, "{name_1}: console report differs");
    }
}

#[test]
fn reruns_are_byte_identical_even_with_a_custom_seed() {
    // Same seed twice → same bytes; the user seed changes the numbers
    // but not the determinism.
    let opts = RunOptions {
        ctx: RunCtx { fidelity: Fidelity::Quick, seed: 0xC0FFEE },
        jobs: 4,
        only: Some(vec!["fig3".to_string()]),
    };
    let first = run_selected(&opts).unwrap();
    let second = run_selected(&opts).unwrap();
    assert_eq!(first.artifacts[0].json.pretty(), second.artifacts[0].json.pretty());

    let baseline = run_with_jobs(1, &["fig3"]);
    assert_ne!(
        first.artifacts[0].json.pretty(),
        baseline[0].1,
        "a nonzero --seed must actually remix the experiment seeds"
    );
}

#[test]
fn registry_covers_every_experiment_module_in_core() {
    // `pub mod <name>;` lines in svr-core's experiments/mod.rs are the
    // source of truth for what the crate can reproduce; each must be
    // runnable through the harness.
    let mod_rs = include_str!("../../core/src/experiments/mod.rs");
    let registered = registry::all();
    let mut modules = 0;
    for line in mod_rs.lines() {
        let Some(module) = line.trim().strip_prefix("pub mod ").and_then(|m| m.strip_suffix(';'))
        else {
            continue;
        };
        modules += 1;
        assert!(
            registered.iter().any(|e| e.name == module),
            "experiment module `{module}` is missing from the harness registry"
        );
    }
    assert!(modules >= 18, "expected the full experiment surface, found {modules} modules");
}
