//! Regression tests for the determinism gate's artifact comparator
//! (`scripts/compare_artifact_dirs.sh`).
//!
//! The original gate iterated `j1/*.json` only, so an artifact that
//! existed in one output directory but not the other slipped through.
//! These tests pin the hardened behaviour: byte differences fail, set
//! asymmetry fails *in both directions*, and `BENCH_*.json` telemetry
//! stays excluded.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn script() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scripts/compare_artifact_dirs.sh")
}

/// Run the comparator on two freshly-populated temp dirs; returns the
/// exit code. Each entry is `(file name, contents)`.
fn compare(a: &[(&str, &str)], b: &[(&str, &str)]) -> i32 {
    let base = std::env::temp_dir().join(format!(
        "svr-verify-gate-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let dir_a = base.join("a");
    let dir_b = base.join("b");
    let _ = fs::remove_dir_all(&base);
    fs::create_dir_all(&dir_a).unwrap();
    fs::create_dir_all(&dir_b).unwrap();
    for (name, contents) in a {
        fs::write(dir_a.join(name), contents).unwrap();
    }
    for (name, contents) in b {
        fs::write(dir_b.join(name), contents).unwrap();
    }
    let status = Command::new("bash")
        .arg(script())
        .arg(&dir_a)
        .arg(&dir_b)
        .output()
        .expect("run compare_artifact_dirs.sh");
    let _ = fs::remove_dir_all(&base);
    status.status.code().unwrap_or(-1)
}

#[test]
fn identical_directories_pass() {
    let files = [("t1.json", "{\"a\":1}"), ("t2.json", "{\"b\":2}")];
    assert_eq!(compare(&files, &files), 0);
}

#[test]
fn byte_difference_fails() {
    assert_eq!(compare(&[("t.json", "{\"a\":1}")], &[("t.json", "{\"a\":2}")]), 1);
}

#[test]
fn missing_artifact_in_second_dir_fails() {
    let a = [("t.json", "{}"), ("extra.json", "{}")];
    let b = [("t.json", "{}")];
    assert_eq!(compare(&a, &b), 1, "artifact only in dir A must fail");
}

#[test]
fn missing_artifact_in_first_dir_fails() {
    // The direction the one-sided `for f in j1/*.json` loop missed.
    let a = [("t.json", "{}")];
    let b = [("t.json", "{}"), ("extra.json", "{}")];
    assert_eq!(compare(&a, &b), 1, "artifact only in dir B must fail");
}

#[test]
fn bench_telemetry_is_excluded_even_when_asymmetric() {
    let a = [("t.json", "{}"), ("BENCH_harness.json", "{\"wall\":1.0}")];
    let b = [("t.json", "{}"), ("BENCH_netsim.json", "{\"wall\":2.0}")];
    assert_eq!(compare(&a, &b), 0, "BENCH_*.json never participates");
}

#[test]
fn empty_directories_fail_rather_than_vacuously_pass() {
    assert_eq!(compare(&[], &[]), 1, "no comparable artifacts is a failure");
}
