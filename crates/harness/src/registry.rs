//! The experiment registry: every paper artefact, expanded into units.
//!
//! One [`Experiment`] per module in `svr-core::experiments`, in paper
//! order. Each experiment's `build_units` slices the work along axes
//! whose per-trial seeds are value-derived (platform id, user count,
//! trial index), so the parallel merge reproduces the sequential run bit
//! for bit — see `experiment.rs`.
//!
//! A registry entry owns two jobs: picking the experiment's fidelity
//! preset (`Config::full()` / `Config::quick()`, reseeded through
//! [`RunCtx::reseed`]) and serializing the report structs into the
//! dependency-free [`Json`] model.

use crate::experiment::{Experiment, RunCtx, UnitResult, WorkUnit};
use crate::json::{arr, Json};
use svr_core::experiments::{
    ablations, disruption, fig11, fig12, fig13, fig2, fig3, fig6, fig7, fig9, table1, table2,
    table3, table4, takeaways, vantage, viewport,
};
use svr_core::Summary;
use svr_platform::{PlatformConfig, PlatformId};

/// All registered experiments, in paper order.
pub fn all() -> Vec<Experiment> {
    vec![
        Experiment {
            name: "table1",
            artefact: "Table 1: feature matrix of the five platforms",
            header: None,
            build_units: units_table1,
        },
        Experiment {
            name: "table2",
            artefact: "Table 2: control/data channel protocols, locations, ownership",
            header: None,
            build_units: units_table2,
        },
        Experiment {
            name: "vantage",
            artefact: "§4.2: server RTTs from geographically spread vantage points",
            header: None,
            build_units: units_vantage,
        },
        Experiment {
            name: "fig2",
            artefact: "Fig. 2: control vs data channel rate timelines around a join",
            header: None,
            build_units: units_fig2,
        },
        Experiment {
            name: "table3",
            artefact: "Table 3: steady-state streaming rates and avatar overhead",
            header: Some("Table 3: up/down rates (Kbps, mean/std) and avatar overhead"),
            build_units: units_table3,
        },
        Experiment {
            name: "fig3",
            artefact: "Fig. 3: uplink/downlink correlation on Rec Room and Worlds",
            header: None,
            build_units: units_fig3,
        },
        Experiment {
            name: "fig6",
            artefact: "Fig. 6: downlink reaction to visibility changes (Exp. 1 & 2)",
            header: None,
            build_units: units_fig6,
        },
        Experiment {
            name: "viewport",
            artefact: "§5.3: viewport-dependent delivery probe (AltspaceVR)",
            header: None,
            build_units: units_viewport,
        },
        Experiment {
            name: "fig7",
            artefact: "Fig. 7: downlink, FPS and staleness vs user count",
            header: None,
            build_units: units_fig7,
        },
        Experiment {
            name: "fig8",
            artefact: "Fig. 8: CPU/GPU utilisation and memory vs user count",
            header: Some("Fig. 8: CPU/GPU/memory vs users"),
            build_units: units_fig8,
        },
        Experiment {
            name: "fig9",
            artefact: "Fig. 9: Hubs browser-client scaling (downlink and FPS)",
            header: None,
            build_units: units_fig9,
        },
        Experiment {
            name: "table4",
            artefact: "Table 4: end-to-end latency breakdown (sender/server/receiver)",
            header: Some("Table 4: E2E latency and breakdown (ms, mean/std)"),
            build_units: units_table4,
        },
        Experiment {
            name: "fig11",
            artefact: "Fig. 11: end-to-end action latency vs user count",
            header: Some("Fig. 11: E2E latency vs users (ms, mean±ci95)"),
            build_units: units_fig11,
        },
        Experiment {
            name: "fig12",
            artefact: "Fig. 12: staged downlink bandwidth caps (QoE under throttling)",
            header: None,
            build_units: units_fig12,
        },
        Experiment {
            name: "fig13",
            artefact: "Fig. 13: staged uplink caps and TCP control-channel priority",
            header: None,
            build_units: units_fig13,
        },
        Experiment {
            name: "disruption",
            artefact: "§7.2: added latency and random loss disruption sweeps",
            header: None,
            build_units: units_disruption,
        },
        Experiment {
            name: "ablations",
            artefact: "§8: remote rendering, P2P scaling, device independence, embodiment",
            header: None,
            build_units: units_ablations,
        },
        Experiment {
            name: "takeaways",
            artefact: "§9: the paper's claims checked against the simulation",
            header: None,
            build_units: units_takeaways,
        },
        Experiment {
            name: "world",
            artefact: "sharded multi-room world: cross-shard hops/transfers/presence per policy",
            header: Some("world: sharded multi-room runs (one row per forwarding policy)"),
            build_units: units_world,
        },
    ]
}

/// Look up one experiment by registry name.
pub fn find(name: &str) -> Option<Experiment> {
    all().into_iter().find(|e| e.name == name)
}

// ---------------------------------------------------------------------
// Shared serializers
// ---------------------------------------------------------------------

fn summary(s: &Summary) -> Json {
    Json::obj()
        .set("mean", s.mean)
        .set("std", s.std)
        .set("ci95", s.ci95)
        .set("n", s.n)
}

fn farr(values: &[f64]) -> Json {
    arr(values.iter().copied())
}

fn platform_label(p: PlatformId) -> String {
    format!("{p:?}")
}

// ---------------------------------------------------------------------
// Tables 1 & 2, vantage
// ---------------------------------------------------------------------

fn units_table1(_ctx: &RunCtx) -> Vec<WorkUnit> {
    vec![WorkUnit::new("table1/all", move || {
        let report = table1::run();
        let rows = report
            .rows
            .iter()
            .map(|r| {
                Json::obj()
                    .set("platform", platform_label(r.platform))
                    .set("company", r.company)
                    .set("released", r.released)
                    .set("locomotion", arr(r.locomotion.iter().map(|l| format!("{l:?}"))))
                    .set("facial_expression", r.facial_expression)
                    .set("personal_space", r.personal_space)
                    .set("games", r.games)
                    .set("share_screen", r.share_screen)
                    .set("shopping", r.shopping)
                    .set("nft", r.nft)
            })
            .collect();
        UnitResult {
            json: Json::obj()
                .set("rows", Json::Arr(rows))
                .set("consistency_errors", arr(report.consistency_errors.iter().cloned())),
            display: format!("{report}"),
            trials: 1,
        }
    })]
}

fn units_table2(ctx: &RunCtx) -> Vec<WorkUnit> {
    let mut cfg = if ctx.full() { table2::Table2Config::full() } else { table2::Table2Config::quick() };
    cfg.seed = ctx.reseed(cfg.seed);
    vec![WorkUnit::new("table2/all", move || {
        let report = table2::run(cfg);
        let rows = report
            .rows
            .iter()
            .map(|r| {
                Json::obj()
                    .set("platform", platform_label(r.platform))
                    .set("channel", format!("{:?}", r.channel))
                    .set("protocol", r.protocol.clone())
                    .set("location", r.location.clone())
                    .set("owner", format!("{}", r.owner))
                    .set("anycast", r.anycast)
                    .set("rtt_ms", summary(&r.rtt))
            })
            .collect();
        UnitResult {
            json: Json::obj().set("rows", Json::Arr(rows)),
            display: format!("{report}"),
            trials: 1,
        }
    })]
}

fn units_vantage(_ctx: &RunCtx) -> Vec<WorkUnit> {
    vec![WorkUnit::new("vantage/all", move || {
        let report = vantage::run();
        let rows = report
            .rows
            .iter()
            .map(|r| {
                let rtts = r
                    .rtts
                    .iter()
                    .map(|(site, rtt)| {
                        Json::obj()
                            .set("site", format!("{site}"))
                            .set("rtt_ms", rtt.map(Json::Num).unwrap_or(Json::Null))
                    })
                    .collect();
                Json::obj()
                    .set("platform", platform_label(r.platform))
                    .set("channel", format!("{:?}", r.channel))
                    .set("rtts", Json::Arr(rtts))
            })
            .collect();
        UnitResult {
            json: Json::obj()
                .set("vantages", arr(report.vantages.iter().map(|s| format!("{s}"))))
                .set("rows", Json::Arr(rows)),
            display: format!("{report}"),
            trials: 1,
        }
    })]
}

// ---------------------------------------------------------------------
// Rate timelines: fig2, fig3, fig6, viewport
// ---------------------------------------------------------------------

fn units_fig2(ctx: &RunCtx) -> Vec<WorkUnit> {
    let mut cfg = if ctx.full() { fig2::Fig2Config::full() } else { fig2::Fig2Config::quick() };
    cfg.seed = ctx.reseed(cfg.seed);
    PlatformId::ALL
        .into_iter()
        .map(|p| {
            WorkUnit::new(format!("fig2/{}", platform_label(p)), move || {
                let rep = fig2::run(p, cfg);
                UnitResult {
                    json: Json::obj()
                        .set("platform", platform_label(rep.platform))
                        .set("event_at_s", rep.event_at.as_secs_f64())
                        .set("control_up_kbps", farr(&rep.control_up.kbps))
                        .set("control_down_kbps", farr(&rep.control_down.kbps))
                        .set("data_up_kbps", farr(&rep.data_up.kbps))
                        .set("data_down_kbps", farr(&rep.data_down.kbps)),
                    display: format!("{rep}"),
                    trials: 1,
                }
            })
        })
        .collect()
}

fn units_fig3(ctx: &RunCtx) -> Vec<WorkUnit> {
    let mut cfg = if ctx.full() { fig3::Fig3Config::full() } else { fig3::Fig3Config::quick() };
    cfg.seed = ctx.reseed(cfg.seed);
    [PlatformId::RecRoom, PlatformId::Worlds]
        .into_iter()
        .map(|p| {
            WorkUnit::new(format!("fig3/{}", platform_label(p)), move || {
                let rep = fig3::run(p, cfg);
                UnitResult {
                    json: Json::obj()
                        .set("platform", platform_label(rep.platform))
                        .set("correlation", rep.correlation),
                    display: format!("{rep}"),
                    trials: 1,
                }
            })
        })
        .collect()
}

fn units_fig6(ctx: &RunCtx) -> Vec<WorkUnit> {
    let mut cfg = if ctx.full() { fig6::Fig6Config::full() } else { fig6::Fig6Config::quick() };
    cfg.seed = ctx.reseed(cfg.seed);
    let mut cases: Vec<(PlatformId, fig6::Variant)> = PlatformId::ALL
        .into_iter()
        .map(|p| (p, fig6::Variant::VisibleThenAway))
        .collect();
    cases.push((PlatformId::AltspaceVr, fig6::Variant::AwayThenVisible));
    cases
        .into_iter()
        .map(|(p, variant)| {
            WorkUnit::new(
                format!("fig6/{}/{:?}", platform_label(p), variant),
                move || {
                    let rep = fig6::run(p, variant, cfg);
                    let mut display = format!("{rep}");
                    if variant == fig6::Variant::VisibleThenAway {
                        display.push_str(&format!(
                            "  downlink before turn {:.1} Kbps → after turn {:.1} Kbps\n",
                            rep.down_before_turn(),
                            rep.down_after_turn()
                        ));
                    }
                    UnitResult {
                        json: Json::obj()
                            .set("platform", platform_label(rep.platform))
                            .set("variant", format!("{:?}", rep.variant))
                            .set("turn_s", rep.turn_s)
                            .set("join_times_s", arr(rep.join_times_s.iter().copied()))
                            .set("down_kbps", farr(&rep.down.kbps))
                            .set("up_kbps", farr(&rep.up.kbps))
                            .set("down_before_turn_kbps", rep.down_before_turn())
                            .set("down_after_turn_kbps", rep.down_after_turn()),
                        display,
                        trials: 1,
                    }
                },
            )
        })
        .collect()
}

fn units_viewport(ctx: &RunCtx) -> Vec<WorkUnit> {
    let mut cfg =
        if ctx.full() { viewport::ViewportConfig::full() } else { viewport::ViewportConfig::quick() };
    cfg.seed = ctx.reseed(cfg.seed);
    vec![WorkUnit::new("viewport/AltspaceVr", move || {
        let rep = viewport::run(PlatformId::AltspaceVr, cfg);
        UnitResult {
            json: Json::obj()
                .set("platform", "AltspaceVr")
                .set("per_heading_kbps", farr(&rep.per_heading_kbps))
                .set("visible_headings", rep.visible_headings)
                .set("estimated_width_deg", rep.estimated_width_deg)
                .set("max_saving", rep.max_saving),
            display: format!("{rep}"),
            trials: 1,
        }
    })]
}

// ---------------------------------------------------------------------
// Scaling sweeps: fig7, fig8, fig9
// ---------------------------------------------------------------------

fn scaling_config(ctx: &RunCtx) -> fig7::ScalingConfig {
    let mut cfg = if ctx.full() { fig7::ScalingConfig::full() } else { fig7::ScalingConfig::quick() };
    cfg.seed = ctx.reseed(cfg.seed);
    cfg
}

fn scale_points(rep: &fig7::ScalingReport) -> Json {
    Json::Arr(
        rep.points
            .iter()
            .map(|pt| {
                Json::obj()
                    .set("users", pt.users)
                    .set("down_kbps", summary(&pt.down_kbps))
                    .set("fps", summary(&pt.fps))
                    .set("stale", summary(&pt.stale))
                    .set("cpu_pct", summary(&pt.cpu))
                    .set("gpu_pct", summary(&pt.gpu))
                    .set("memory_mb", summary(&pt.memory_mb))
            })
            .collect(),
    )
}

fn units_fig7(ctx: &RunCtx) -> Vec<WorkUnit> {
    let cfg = scaling_config(ctx);
    let trials = cfg.trials as u64 * cfg.user_counts.len() as u64;
    PlatformId::ALL
        .into_iter()
        .map(|p| {
            let cfg = cfg.clone();
            WorkUnit::new(format!("fig7/{}", platform_label(p)), move || {
                let rep = fig7::run(p, &cfg);
                UnitResult {
                    json: Json::obj()
                        .set("platform", platform_label(rep.platform))
                        .set("points", scale_points(&rep)),
                    display: format!("{rep}"),
                    trials,
                }
            })
        })
        .collect()
}

fn units_fig8(ctx: &RunCtx) -> Vec<WorkUnit> {
    // Fig. 8 reads the same sweep as Fig. 7 (one set of runs in the
    // paper), so each unit reruns one platform's sweep and reports the
    // resource columns.
    let cfg = scaling_config(ctx);
    let trials = cfg.trials as u64 * cfg.user_counts.len() as u64;
    PlatformId::ALL
        .into_iter()
        .map(|p| {
            let cfg = cfg.clone();
            WorkUnit::new(format!("fig8/{}", platform_label(p)), move || {
                let rep = fig7::run(p, &cfg);
                let first = rep.points.first().expect("sweep has points");
                let last = rep.points.last().expect("sweep has points");
                let display = format!(
                    "  {:<11} CPU {:>5.1}% → {:>5.1}%   GPU {:>5.1}% → {:>5.1}%   Mem {:>6.0} → {:>6.0} MB\n",
                    rep.platform.to_string(),
                    first.cpu.mean,
                    last.cpu.mean,
                    first.gpu.mean,
                    last.gpu.mean,
                    first.memory_mb.mean,
                    last.memory_mb.mean,
                );
                UnitResult {
                    json: Json::obj()
                        .set("platform", platform_label(rep.platform))
                        .set("cpu_growth_pct", last.cpu.mean - first.cpu.mean)
                        .set("gpu_growth_pct", last.gpu.mean - first.gpu.mean)
                        .set("memory_growth_mb", last.memory_mb.mean - first.memory_mb.mean)
                        .set("points", scale_points(&rep)),
                    display,
                    trials,
                }
            })
        })
        .collect()
}

fn units_fig9(ctx: &RunCtx) -> Vec<WorkUnit> {
    let mut cfg = if ctx.full() { fig9::Fig9Config::full() } else { fig9::Fig9Config::quick() };
    cfg.seed = ctx.reseed(cfg.seed);
    let trials = cfg.trials as u64 * cfg.user_counts.len() as u64;
    vec![WorkUnit::new("fig9/Hubs", move || {
        let rep = fig9::run(&cfg);
        let points = rep
            .points
            .iter()
            .map(|pt| {
                Json::obj()
                    .set("users", pt.users)
                    .set("down_mbps", summary(&pt.down_mbps))
                    .set("fps", summary(&pt.fps))
            })
            .collect();
        UnitResult {
            json: Json::obj().set("points", Json::Arr(points)),
            display: format!("{rep}"),
            trials,
        }
    })]
}

// ---------------------------------------------------------------------
// Table 3 & 4, fig11: per-platform latency / rate rows
// ---------------------------------------------------------------------

fn units_table3(ctx: &RunCtx) -> Vec<WorkUnit> {
    let mut cfg = if ctx.full() { table3::Table3Config::full() } else { table3::Table3Config::quick() };
    cfg.seed = ctx.reseed(cfg.seed);
    let trials = cfg.trials as u64;
    PlatformId::ALL
        .into_iter()
        .map(|p| {
            WorkUnit::new(format!("table3/{}", platform_label(p)), move || {
                let row = table3::run_platform(p, cfg);
                let (paper_up, paper_down, paper_avatar) = table3::paper_values(p);
                let display = format!(
                    "  {:<11} up {:>12} down {:>12} res {:>9} avatar {:>10}  (paper {:.1}/{:.1}/{:.1})\n",
                    row.platform.to_string(),
                    row.up.cell(),
                    row.down.cell(),
                    row.resolution.to_string(),
                    row.avatar.cell(),
                    paper_up,
                    paper_down,
                    paper_avatar,
                );
                UnitResult {
                    json: Json::obj()
                        .set("platform", platform_label(row.platform))
                        .set("up_kbps", summary(&row.up))
                        .set("down_kbps", summary(&row.down))
                        .set("resolution", row.resolution.to_string())
                        .set("avatar_kbps", summary(&row.avatar))
                        .set(
                            "paper",
                            Json::obj()
                                .set("up_kbps", paper_up)
                                .set("down_kbps", paper_down)
                                .set("avatar_kbps", paper_avatar),
                        ),
                    display,
                    trials,
                }
            })
        })
        .collect()
}

fn units_table4(ctx: &RunCtx) -> Vec<WorkUnit> {
    let mut cfg = if ctx.full() { table4::Table4Config::full() } else { table4::Table4Config::quick() };
    cfg.seed = ctx.reseed(cfg.seed);
    let trials = cfg.trials as u64;
    // Fixed configuration order (the sequential `table4::run` sorts rows
    // by measured E2E for presentation; the artifact keeps config order
    // so unit slicing stays trivially deterministic).
    type ConfigCtor = fn() -> PlatformConfig;
    let rows: Vec<(&'static str, ConfigCtor)> = vec![
        ("Rec Room", PlatformConfig::recroom),
        ("VRChat", PlatformConfig::vrchat),
        ("Worlds", PlatformConfig::worlds),
        ("AltspaceVR", PlatformConfig::altspace),
        ("Hubs", PlatformConfig::hubs),
        ("Hubs*", PlatformConfig::private_hubs),
    ];
    rows.into_iter()
        .map(|(label, pcfg)| {
            WorkUnit::new(format!("table4/{label}"), move || {
                let row = table4::run_config(label, pcfg(), cfg);
                let b = &row.breakdown;
                let paper = table4::paper_values(&row.label);
                let display = format!(
                    "  {:<11} E2E {:>11} sender {:>11} receiver {:>11} server {:>11}{}\n",
                    row.label,
                    b.e2e.cell(),
                    b.sender.cell(),
                    b.receiver.cell(),
                    b.server.cell(),
                    paper.map(|p| format!("  (paper E2E {:.1})", p.0)).unwrap_or_default(),
                );
                let paper_json = match paper {
                    Some((e2e, sender, receiver, server)) => Json::obj()
                        .set("e2e_ms", e2e)
                        .set("sender_ms", sender)
                        .set("receiver_ms", receiver)
                        .set("server_ms", server),
                    None => Json::Null,
                };
                UnitResult {
                    json: Json::obj()
                        .set("label", row.label.clone())
                        .set("e2e_ms", summary(&b.e2e))
                        .set("sender_ms", summary(&b.sender))
                        .set("receiver_ms", summary(&b.receiver))
                        .set("server_ms", summary(&b.server))
                        .set("network_est_ms", b.network_est_ms)
                        .set("paper", paper_json),
                    display,
                    trials,
                }
            })
        })
        .collect()
}

fn units_fig11(ctx: &RunCtx) -> Vec<WorkUnit> {
    let mut cfg = if ctx.full() { fig11::Fig11Config::full() } else { fig11::Fig11Config::quick() };
    cfg.seed = ctx.reseed(cfg.seed);
    let trials = cfg.trials as u64 * cfg.user_counts.len() as u64;
    PlatformId::ALL
        .into_iter()
        .map(|p| {
            let cfg = cfg.clone();
            WorkUnit::new(format!("fig11/{}", platform_label(p)), move || {
                let series = fig11::run(p, &cfg);
                let cells: Vec<String> = series
                    .points
                    .iter()
                    .map(|pt| format!("{}u {:.1}±{:.1}", pt.users, pt.e2e_ms.mean, pt.e2e_ms.ci95))
                    .collect();
                let display =
                    format!("  {:<11} {}\n", series.platform.to_string(), cells.join("   "));
                let points = series
                    .points
                    .iter()
                    .map(|pt| Json::obj().set("users", pt.users).set("e2e_ms", summary(&pt.e2e_ms)))
                    .collect();
                UnitResult {
                    json: Json::obj()
                        .set("platform", platform_label(series.platform))
                        .set("points", Json::Arr(points))
                        .set("deltas_ms", farr(&series.deltas())),
                    display,
                    trials,
                }
            })
        })
        .collect()
}

// ---------------------------------------------------------------------
// Impairment schedules: fig12, fig13, disruption
// ---------------------------------------------------------------------

fn units_fig12(ctx: &RunCtx) -> Vec<WorkUnit> {
    let mut cfg = if ctx.full() { fig12::Fig12Config::full() } else { fig12::Fig12Config::quick() };
    cfg.seed = ctx.reseed(cfg.seed);
    vec![WorkUnit::new("fig12/VrChat", move || {
        let rep = fig12::run(&cfg);
        UnitResult {
            json: Json::obj()
                .set("stages_mbps", farr(&rep.stages_mbps))
                .set("stage_s", rep.stage_s)
                .set("start_s", rep.start_s)
                .set("up_mbps", farr(&rep.up_mbps))
                .set("down_mbps", farr(&rep.down_mbps))
                .set("cpu_pct", farr(&rep.cpu))
                .set("gpu_pct", farr(&rep.gpu))
                .set("fps", farr(&rep.fps))
                .set("stale", farr(&rep.stale)),
            display: format!("{rep}"),
            trials: 1,
        }
    })]
}

fn fig13_json(rep: &fig13::Fig13Report) -> Json {
    Json::obj()
        .set("udp_up_kbps", farr(&rep.udp_up))
        .set("tcp_up_kbps", farr(&rep.tcp_up))
        .set("udp_down_kbps", farr(&rep.udp_down))
        .set("frozen_at_s", rep.frozen_at_s.map(Json::U64).unwrap_or(Json::Null))
        .set("countdown_went_stale", rep.countdown_went_stale)
}

fn units_fig13(ctx: &RunCtx) -> Vec<WorkUnit> {
    let mut caps =
        if ctx.full() { fig13::UplinkCapsConfig::full() } else { fig13::UplinkCapsConfig::quick() };
    caps.seed = ctx.reseed(caps.seed);
    let mut tcp =
        if ctx.full() { fig13::TcpPriorityConfig::full() } else { fig13::TcpPriorityConfig::quick() };
    tcp.seed = ctx.reseed(tcp.seed);
    vec![
        WorkUnit::new("fig13/uplink_caps", move || {
            let rep = fig13::run_uplink_caps(&caps);
            UnitResult { json: fig13_json(&rep), display: format!("{rep}"), trials: 1 }
        }),
        WorkUnit::new("fig13/tcp_priority", move || {
            let rep = fig13::run_tcp_priority(&tcp);
            UnitResult { json: fig13_json(&rep), display: format!("{rep}"), trials: 1 }
        }),
    ]
}

fn units_disruption(ctx: &RunCtx) -> Vec<WorkUnit> {
    let mut cfg =
        if ctx.full() { disruption::DisruptionConfig::full() } else { disruption::DisruptionConfig::quick() };
    cfg.seed = ctx.reseed(cfg.seed);
    [PlatformId::Worlds, PlatformId::RecRoom, PlatformId::VrChat]
        .into_iter()
        .map(|p| {
            let cfg = cfg.clone();
            WorkUnit::new(format!("disruption/{}", platform_label(p)), move || {
                let rep = disruption::run(p, &cfg);
                let latency = rep
                    .latency
                    .iter()
                    .map(|pt| {
                        Json::obj()
                            .set("added_ms", pt.added_ms)
                            .set("e2e_ms", summary(&pt.e2e_ms))
                            .set("game_degraded", pt.game_degraded)
                    })
                    .collect();
                let loss = rep
                    .loss
                    .iter()
                    .map(|pt| {
                        Json::obj()
                            .set("loss_pct", pt.loss_pct)
                            .set("delivery_ratio", pt.delivery_ratio)
                            .set("fps", pt.fps)
                            .set("p95_pop_m", pt.p95_pop_m)
                    })
                    .collect();
                UnitResult {
                    json: Json::obj()
                        .set("platform", platform_label(rep.platform))
                        .set("baseline_e2e_ms", summary(&rep.baseline_e2e_ms))
                        .set("latency", Json::Arr(latency))
                        .set("loss", Json::Arr(loss)),
                    display: format!("{rep}"),
                    trials: 1,
                }
            })
        })
        .collect()
}

// ---------------------------------------------------------------------
// Ablations & takeaways
// ---------------------------------------------------------------------

fn units_ablations(ctx: &RunCtx) -> Vec<WorkUnit> {
    let mut cfg =
        if ctx.full() { ablations::AblationConfig::full() } else { ablations::AblationConfig::quick() };
    cfg.seed = ctx.reseed(cfg.seed);
    let di_seed = ctx.reseed(0xD11CE);
    let trials = cfg.trials as u64 * cfg.user_counts.len() as u64;
    let remote_cfg = cfg.clone();
    let p2p_cfg = cfg;
    vec![
        WorkUnit::new("ablations/remote_rendering", move || {
            let rep = ablations::remote_rendering(&remote_cfg);
            let points = rep
                .points
                .iter()
                .map(|pt| {
                    Json::obj()
                        .set("users", pt.users)
                        .set("direct_mbps", summary(&pt.direct_mbps))
                        .set("remote_mbps", summary(&pt.remote_mbps))
                        .set("direct_fps", summary(&pt.direct_fps))
                        .set("remote_fps", summary(&pt.remote_fps))
                })
                .collect();
            UnitResult {
                json: Json::obj()
                    .set("video_mbps", rep.video_mbps)
                    .set("points", Json::Arr(points)),
                display: format!("{rep}"),
                trials,
            }
        }),
        WorkUnit::new("ablations/p2p_scaling", move || {
            let rep = ablations::p2p_scaling(&p2p_cfg);
            let points = rep
                .points
                .iter()
                .map(|pt| {
                    Json::obj()
                        .set("users", pt.users)
                        .set("cs_up_kbps", pt.cs_up_kbps)
                        .set("cs_down_kbps", pt.cs_down_kbps)
                        .set("p2p_up_kbps", pt.p2p_up_kbps)
                        .set("p2p_down_kbps", pt.p2p_down_kbps)
                })
                .collect();
            UnitResult {
                json: Json::obj().set("points", Json::Arr(points)),
                display: format!("{rep}"),
                trials,
            }
        }),
        WorkUnit::new("ablations/device_independence", move || {
            let di = ablations::device_independence(di_seed);
            let display = format!(
                "§5.1 device independence: Quest 2 uplink {:.1} Kbps == PC uplink {:.1} Kbps;\nQuest FPS {:.1} (of 72) vs PC FPS {:.1} (of 60)\n",
                di.quest_up_kbps, di.pc_up_kbps, di.quest_fps, di.pc_fps
            );
            UnitResult {
                json: Json::obj()
                    .set("quest_up_kbps", di.quest_up_kbps)
                    .set("pc_up_kbps", di.pc_up_kbps)
                    .set("quest_fps", di.quest_fps)
                    .set("pc_fps", di.pc_fps),
                display,
                trials: 2,
            }
        }),
        WorkUnit::new("ablations/embodiment_cost_curve", move || {
            let curve = ablations::embodiment_cost_curve();
            let mut display =
                String::from("Implication-2 embodiment cost curve (per-avatar Kbps at 30 Hz):\n");
            for (name, kbps) in &curve {
                display.push_str(&format!("  {name:<24} {kbps:>9.1}\n"));
            }
            let points = curve
                .iter()
                .map(|(name, kbps)| {
                    Json::obj().set("embodiment", name.clone()).set("kbps", *kbps)
                })
                .collect();
            UnitResult {
                json: Json::obj().set("curve", Json::Arr(points)),
                display,
                trials: 1,
            }
        }),
    ]
}

// ---------------------------------------------------------------------
// Sharded world (svr-world)
// ---------------------------------------------------------------------

fn units_world(ctx: &RunCtx) -> Vec<WorkUnit> {
    // One unit per forwarding policy. Each unit runs its world on a
    // fixed *internal* shard pool (`jobs = 2` inside the unit, set by
    // the presets), independent of the harness `--jobs` — the ordered
    // commit makes the report identical either way, which is exactly
    // what the determinism gate checks.
    let seed = ctx.reseed(0x0057_4F52_4C44);
    let full = ctx.full();
    svr_world::policies()
        .into_iter()
        .map(|(label, policy)| {
            WorkUnit::new(format!("world/{label}"), move || {
                let cfg = if full {
                    svr_world::WorldConfig::full(seed, policy)
                } else {
                    svr_world::WorldConfig::quick(seed, policy)
                };
                let ticks = cfg.ticks;
                let rep = svr_world::World::run(cfg);
                UnitResult {
                    json: Json::obj()
                        .set("policy", rep.policy)
                        .set("rooms", rep.rooms)
                        .set("users_per_room", rep.users_per_room)
                        .set("worlds", rep.worlds)
                        .set("ticks", rep.ticks)
                        .set("messages", rep.stats.messages)
                        .set("forwards", rep.forwards)
                        .set("hops", rep.stats.hops)
                        .set("transfers", rep.stats.transfers)
                        .set("presence_sent", rep.stats.presence_sent)
                        .set("presence_delivered", rep.stats.presence_delivered)
                        .set("presence_dropped", rep.stats.presence_dropped)
                        .set("client_rx", rep.client_rx)
                        .set("per_tick_facts", arr(rep.per_tick_facts.iter().copied()))
                        .set("fact_digest", format!("{:016x}", rep.stats.fact_digest)),
                    display: format!("{rep}"),
                    trials: ticks,
                }
            })
        })
        .collect()
}

fn units_takeaways(_ctx: &RunCtx) -> Vec<WorkUnit> {
    vec![WorkUnit::new("takeaways/all", move || {
        let report = takeaways::run();
        let claims = report
            .claims
            .iter()
            .map(|c| {
                Json::obj()
                    .set("source", c.source)
                    .set("claim", c.claim)
                    .set("holds", c.holds)
                    .set("evidence", c.evidence.clone())
            })
            .collect();
        UnitResult {
            json: Json::obj().set("claims", Json::Arr(claims)),
            display: format!("{report}"),
            trials: 1,
        }
    })]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Fidelity;

    /// Every `pub mod` in `svr-core::experiments` must be covered by a
    /// registry entry, so nothing the crate can reproduce is silently
    /// missing from `--list` and the artifact set.
    #[test]
    fn registry_covers_every_experiment_module() {
        let mod_rs = include_str!("../../core/src/experiments/mod.rs");
        let registered = all();
        for line in mod_rs.lines() {
            let line = line.trim();
            let Some(module) = line.strip_prefix("pub mod ").and_then(|m| m.strip_suffix(';'))
            else {
                continue;
            };
            let covered = registered.iter().any(|e| e.name == module);
            assert!(covered, "experiment module `{module}` has no registry entry");
        }
    }

    #[test]
    fn names_are_unique_and_find_works() {
        let exps = all();
        for (i, e) in exps.iter().enumerate() {
            assert!(
                exps.iter().skip(i + 1).all(|other| other.name != e.name),
                "duplicate registry name {}",
                e.name
            );
            assert!(find(e.name).is_some());
        }
        assert!(find("nope").is_none());
    }

    #[test]
    fn every_experiment_builds_at_least_one_unit() {
        let ctx = RunCtx { fidelity: Fidelity::Quick, seed: 0 };
        for exp in all() {
            let units = (exp.build_units)(&ctx);
            assert!(!units.is_empty(), "{} built no units", exp.name);
            for unit in &units {
                assert!(
                    unit.label.starts_with(exp.name),
                    "{}: unit label {} should be prefixed with the experiment name",
                    exp.name,
                    unit.label
                );
            }
        }
    }
}
