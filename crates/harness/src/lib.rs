//! # svr-harness
//!
//! A hermetic, parallel experiment harness for the paper reproduction.
//!
//! The crate turns the experiment modules of `svr-core` into a uniform,
//! schedulable registry:
//!
//! - [`experiment`] defines the [`Experiment`] descriptor — a paper
//!   artefact plus a builder that expands it into independent
//!   [`WorkUnit`]s — and the fidelity presets ([`Fidelity::Quick`] /
//!   [`Fidelity::Full`]).
//! - [`registry`] registers every module in `svr-core::experiments`
//!   (tables 1–4, figures 2–13, viewport, vantage, disruption,
//!   takeaways, ablations), sliced along (platform × variant) axes.
//! - [`scheduler`] fans units across a work-stealing thread pool built
//!   on `std::thread::scope`. Each simulation stays single-threaded and
//!   bit-deterministic; results are merged by unit index, so artifacts
//!   are **byte-identical for any `--jobs` value**.
//! - [`json`] is a dependency-free JSON model with a byte-stable
//!   pretty-printer (insertion-ordered objects, shortest-round-trip
//!   floats) — the workspace builds with zero external dependencies.
//! - [`telemetry`] quarantines everything schedule-dependent (wall
//!   times, trials/sec, simulated packets/sec, worker utilisation, git
//!   revision) into the separate `BENCH_harness.json`.
//! - [`runner`] orchestrates a run end to end and writes one
//!   `<name>.json` artifact per experiment.
//!
//! The CLI lives in `examples/reproduce_all.rs` at the workspace root:
//!
//! ```sh
//! cargo run --release --example reproduce_all -- --list
//! cargo run --release --example reproduce_all -- --only fig7,table3 --jobs 8 --out artifacts/
//! cargo run --release --example reproduce_all -- --full
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
pub mod json;
pub mod registry;
pub mod runner;
pub mod scheduler;
pub mod telemetry;

pub use experiment::{Artifact, Experiment, Fidelity, RunCtx, UnitResult, WorkUnit};
pub use json::Json;
pub use runner::{run_selected, write_artifacts, RunOptions, RunOutput};
