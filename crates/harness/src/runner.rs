//! The run orchestrator: select → expand → schedule → merge → write.
//!
//! `run_selected` is the single entry point used by the CLI
//! (`examples/reproduce_all.rs`) and by the determinism tests. It takes
//! a selection of registry names, expands each experiment into work
//! units, fans the units across the scheduler, merges results in unit
//! order, and (optionally) writes `<out>/<name>.json` per experiment
//! plus `<out>/BENCH_harness.json`.

use std::io;
use std::path::Path;

use crate::experiment::{merge, Artifact, Experiment, RunCtx};
use crate::registry;
use crate::scheduler;
use crate::telemetry;

/// Options for one harness run.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Shared fidelity + seed context.
    pub ctx: RunCtx,
    /// Worker threads (clamped to at least 1 and at most the unit count).
    pub jobs: usize,
    /// Registry names to run; `None` runs everything, in paper order.
    pub only: Option<Vec<String>>,
}

/// What a run produced.
pub struct RunOutput {
    /// Merged artifacts, in registry (paper) order.
    pub artifacts: Vec<Artifact>,
    /// The `BENCH_harness.json` document for this run.
    pub bench: crate::json::Json,
}

/// An `--only` selection named an experiment the registry doesn't have.
#[derive(Debug)]
pub struct UnknownExperiment {
    /// The unmatched name.
    pub name: String,
    /// Valid names, for the error message.
    pub known: Vec<&'static str>,
}

impl std::fmt::Display for UnknownExperiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown experiment `{}`; known: {}", self.name, self.known.join(", "))
    }
}

impl std::error::Error for UnknownExperiment {}

/// Resolve `only` against the registry, preserving paper order.
pub fn select(only: Option<&[String]>) -> Result<Vec<Experiment>, UnknownExperiment> {
    let all = registry::all();
    let Some(only) = only else { return Ok(all) };
    for name in only {
        if !all.iter().any(|e| e.name == name) {
            return Err(UnknownExperiment {
                name: name.clone(),
                known: all.iter().map(|e| e.name).collect(),
            });
        }
    }
    Ok(all.into_iter().filter(|e| only.iter().any(|n| n == e.name)).collect())
}

/// Run the selected experiments and merge their artifacts.
pub fn run_selected(opts: &RunOptions) -> Result<RunOutput, UnknownExperiment> {
    let experiments = select(opts.only.as_deref())?;
    let names: Vec<&'static str> = experiments.iter().map(|e| e.name).collect();

    // Expand every experiment into (experiment index, unit) pairs. The
    // flattened order is the deterministic "input order" the scheduler
    // preserves in its results.
    let mut units = Vec::new();
    for (exp_index, exp) in experiments.iter().enumerate() {
        for unit in (exp.build_units)(&opts.ctx) {
            units.push((exp_index, unit));
        }
    }

    let (completed, stats) = scheduler::run(units, opts.jobs);
    let rows = telemetry::per_experiment(&names, &completed);
    let bench = telemetry::bench_document(&opts.ctx, opts.jobs, &stats, &rows);

    // Completed units are in input order, i.e. grouped by experiment and
    // in build order within each experiment — exactly what merge needs.
    let mut buckets: Vec<Vec<(String, crate::experiment::UnitResult)>> =
        experiments.iter().map(|_| Vec::new()).collect();
    for unit in completed {
        buckets[unit.exp_index].push((unit.label, unit.result));
    }
    let artifacts = experiments
        .iter()
        .zip(buckets)
        .map(|(exp, results)| merge(exp, &opts.ctx, results))
        .collect();

    Ok(RunOutput { artifacts, bench })
}

/// Write artifacts and telemetry under `out_dir` (created if missing).
/// Returns the paths written, artifacts first, `BENCH_harness.json` last.
pub fn write_artifacts(out_dir: &Path, output: &RunOutput) -> io::Result<Vec<std::path::PathBuf>> {
    std::fs::create_dir_all(out_dir)?;
    let mut paths = Vec::new();
    for artifact in &output.artifacts {
        let path = out_dir.join(format!("{}.json", artifact.name));
        std::fs::write(&path, artifact.json.pretty())?;
        paths.push(path);
    }
    let bench_path = out_dir.join("BENCH_harness.json");
    std::fs::write(&bench_path, output.bench.pretty())?;
    paths.push(bench_path);
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Fidelity;

    #[test]
    fn select_keeps_paper_order_and_rejects_unknown_names() {
        let picked = select(Some(&["fig7".to_string(), "table1".to_string()])).unwrap();
        let names: Vec<_> = picked.iter().map(|e| e.name).collect();
        assert_eq!(names, ["table1", "fig7"], "registry order wins over flag order");

        let Err(err) = select(Some(&["fig99".to_string()])) else {
            panic!("unknown name must be rejected");
        };
        assert!(err.to_string().contains("fig99"));
        assert!(err.to_string().contains("fig7"));
    }

    #[test]
    fn run_selected_produces_one_artifact_per_experiment() {
        let opts = RunOptions {
            ctx: RunCtx { fidelity: Fidelity::Quick, seed: 0 },
            jobs: 2,
            only: Some(vec!["table1".to_string(), "vantage".to_string()]),
        };
        let out = run_selected(&opts).unwrap();
        assert_eq!(out.artifacts.len(), 2);
        assert_eq!(out.artifacts[0].name, "table1");
        assert_eq!(out.artifacts[1].name, "vantage");
        for artifact in &out.artifacts {
            let text = artifact.json.pretty();
            assert!(text.contains("\"experiment\""), "artifact envelope missing");
            assert!(!artifact.display.is_empty());
        }
        assert!(out.bench.pretty().contains("\"sim_packets_per_sec\""));
    }
}
