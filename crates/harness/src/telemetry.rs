//! Run telemetry: the `BENCH_harness.json` document.
//!
//! Everything schedule-dependent (wall times, throughput, worker
//! utilisation) lives here and **only** here: the experiment artifacts
//! are byte-deterministic, so timing must never leak into them. The
//! telemetry document is rebuilt every run and is not expected to be
//! reproducible.

use std::time::Duration;

use crate::experiment::RunCtx;
use crate::json::Json;
use crate::scheduler::{CompletedUnit, PoolStats};

/// Per-experiment roll-up of its units' telemetry.
pub struct ExperimentTelemetry {
    /// Registry name.
    pub name: &'static str,
    /// Units the experiment expanded into.
    pub units: usize,
    /// Simulated trials (sessions) across all units.
    pub trials: u64,
    /// Sum of unit wall times (CPU-seconds of simulation).
    pub busy: Duration,
    /// Simulation events processed.
    pub sim_events: u64,
    /// Simulated packets delivered.
    pub sim_packets: u64,
}

/// Roll completed units up into per-experiment telemetry, in experiment
/// index order. `names[i]` is the registry name of experiment index `i`.
pub fn per_experiment(names: &[&'static str], completed: &[CompletedUnit]) -> Vec<ExperimentTelemetry> {
    let mut rows: Vec<ExperimentTelemetry> = names
        .iter()
        .map(|name| ExperimentTelemetry {
            name,
            units: 0,
            trials: 0,
            busy: Duration::ZERO,
            sim_events: 0,
            sim_packets: 0,
        })
        .collect();
    for unit in completed {
        let row = &mut rows[unit.exp_index];
        row.units += 1;
        row.trials += unit.result.trials;
        row.busy += unit.elapsed;
        row.sim_events += unit.sim_events;
        row.sim_packets += unit.sim_packets;
    }
    rows
}

fn per_second(count: u64, busy: Duration) -> f64 {
    let secs = busy.as_secs_f64();
    if secs > 0.0 {
        count as f64 / secs
    } else {
        0.0
    }
}

/// Read the current git revision by parsing `.git/HEAD` directly (no
/// subprocess, works without git in `PATH`). Returns `None` outside a
/// repository.
pub fn git_rev() -> Option<String> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let head_path = dir.join(".git").join("HEAD");
        if let Ok(head) = std::fs::read_to_string(&head_path) {
            let head = head.trim();
            return if let Some(reference) = head.strip_prefix("ref: ") {
                let by_path = std::fs::read_to_string(dir.join(".git").join(reference))
                    .ok()
                    .map(|s| s.trim().to_string());
                by_path.or_else(|| {
                    // Packed refs: "<sha> <refname>" lines.
                    let packed = std::fs::read_to_string(dir.join(".git").join("packed-refs")).ok()?;
                    packed.lines().find_map(|line| {
                        let (sha, name) = line.split_once(' ')?;
                        (name == reference).then(|| sha.to_string())
                    })
                })
            } else {
                Some(head.to_string()) // detached HEAD
            };
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Build the `BENCH_harness.json` document.
pub fn bench_document(
    ctx: &RunCtx,
    jobs_requested: usize,
    stats: &PoolStats,
    experiments: &[ExperimentTelemetry],
) -> Json {
    let wall_s = stats.wall.as_secs_f64();
    let total_busy: Duration = stats.busy.iter().sum();
    let utilisation = if wall_s > 0.0 && stats.workers > 0 {
        total_busy.as_secs_f64() / (wall_s * stats.workers as f64)
    } else {
        0.0
    };

    let workers = stats
        .busy
        .iter()
        .enumerate()
        .map(|(i, busy)| {
            Json::obj().set("worker", i).set("busy_s", busy.as_secs_f64()).set(
                "utilisation",
                if wall_s > 0.0 { busy.as_secs_f64() / wall_s } else { 0.0 },
            )
        })
        .collect();

    let per_exp = experiments
        .iter()
        .map(|row| {
            Json::obj()
                .set("experiment", row.name)
                .set("units", row.units)
                .set("trials", row.trials)
                .set("wall_s", row.busy.as_secs_f64())
                .set("trials_per_sec", per_second(row.trials, row.busy))
                .set("sim_events", row.sim_events)
                .set("sim_packets", row.sim_packets)
                .set("sim_packets_per_sec", per_second(row.sim_packets, row.busy))
        })
        .collect();

    Json::obj()
        .set("harness", "svr-harness")
        .set("fidelity", ctx.fidelity.label())
        .set("seed", ctx.seed)
        .set("git_rev", git_rev().map(Json::Str).unwrap_or(Json::Null))
        .set("jobs_requested", jobs_requested)
        .set("workers", stats.workers)
        .set("wall_s", wall_s)
        .set("steals", stats.steals)
        .set("pool_utilisation", utilisation)
        .set("worker_busy", Json::Arr(workers))
        .set("experiments", Json::Arr(per_exp))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Fidelity;

    #[test]
    fn git_rev_resolves_in_this_repo() {
        // The repo this crate lives in is git-managed; the rev must be a
        // 40-hex sha (loose or packed ref, or detached HEAD).
        let rev = git_rev().expect("inside a git repository");
        assert_eq!(rev.len(), 40, "unexpected rev: {rev}");
        assert!(rev.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn bench_document_has_the_contract_fields() {
        let ctx = RunCtx { fidelity: Fidelity::Quick, seed: 7 };
        let stats = PoolStats {
            workers: 2,
            wall: Duration::from_millis(10),
            busy: vec![Duration::from_millis(6), Duration::from_millis(4)],
            steals: 1,
        };
        let rows = vec![ExperimentTelemetry {
            name: "fig7",
            units: 5,
            trials: 10,
            busy: Duration::from_millis(10),
            sim_events: 1000,
            sim_packets: 400,
        }];
        let doc = bench_document(&ctx, 2, &stats, &rows).pretty();
        for field in [
            "\"fidelity\"",
            "\"seed\"",
            "\"git_rev\"",
            "\"workers\"",
            "\"wall_s\"",
            "\"trials_per_sec\"",
            "\"sim_packets_per_sec\"",
            "\"pool_utilisation\"",
        ] {
            assert!(doc.contains(field), "missing {field} in {doc}");
        }
    }

    #[test]
    fn zero_busy_time_does_not_divide_by_zero() {
        assert_eq!(per_second(100, Duration::ZERO), 0.0);
    }
}
