//! The experiment abstraction: what the harness schedules and merges.
//!
//! Every paper artefact (a table, a figure, an ablation) is described by
//! an [`Experiment`]: a name, the artefact it reproduces, and a builder
//! that expands the experiment into independent [`WorkUnit`]s — one per
//! (platform × variant) slice that can run on its own worker thread.
//!
//! Decomposition is only legal where the underlying experiment derives
//! per-trial seeds from *values* (platform id, user count, trial index),
//! never from loop position; every module in `svr-core::experiments`
//! follows that rule, so splitting a sweep across workers reproduces the
//! sequential results bit for bit. The scheduler merges unit results in
//! unit-index order, which makes the merged artifact independent of
//! completion order and therefore of `--jobs`.

use crate::json::Json;

/// How much work a run does: the paper-scale sweep or a fast smoke pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Reduced user counts / trials (CI-sized configs). The default.
    Quick,
    /// The paper-scale configuration (`--full`).
    Full,
}

impl Fidelity {
    /// Lower-case label used in artifacts and telemetry.
    pub fn label(self) -> &'static str {
        match self {
            Fidelity::Quick => "quick",
            Fidelity::Full => "full",
        }
    }
}

/// Shared run parameters handed to every unit builder.
#[derive(Debug, Clone, Copy)]
pub struct RunCtx {
    /// Fidelity preset selecting `Config::full()` vs `Config::quick()`.
    pub fidelity: Fidelity,
    /// User seed. `0` keeps each experiment's built-in seed (the
    /// published reproduction); any other value remixes every
    /// experiment's base seed through SplitMix64.
    pub seed: u64,
}

impl RunCtx {
    /// Derive the effective base seed for an experiment whose built-in
    /// config seed is `builtin`.
    ///
    /// With the default `seed == 0` the builtin is used untouched so the
    /// default run reproduces the published numbers. A nonzero user seed
    /// is mixed with the builtin through the SplitMix64 finalizer (a
    /// bijection), so distinct experiments still get decorrelated
    /// streams from one user seed.
    pub fn reseed(&self, builtin: u64) -> u64 {
        if self.seed == 0 {
            builtin
        } else {
            svr_netsim::rng::splitmix64_mix(builtin ^ self.seed)
        }
    }

    /// True when running the paper-scale configuration.
    pub fn full(&self) -> bool {
        self.fidelity == Fidelity::Full
    }
}

/// What one work unit produced.
pub struct UnitResult {
    /// Structured data for this slice of the artifact.
    pub json: Json,
    /// Human-readable lines for the console report.
    pub display: String,
    /// Simulated trials (sessions) this unit ran, for telemetry.
    pub trials: u64,
}

/// One independently schedulable slice of an experiment.
pub struct WorkUnit {
    /// Stable label, e.g. `"fig7/RecRoom"`. Used in telemetry and to
    /// name the unit's slot in the merged artifact.
    pub label: String,
    /// The simulation closure. Runs single-threaded on one worker.
    pub run: Box<dyn FnOnce() -> UnitResult + Send>,
}

impl WorkUnit {
    /// Build a unit from a label and a closure.
    pub fn new(
        label: impl Into<String>,
        run: impl FnOnce() -> UnitResult + Send + 'static,
    ) -> WorkUnit {
        WorkUnit { label: label.into(), run: Box::new(run) }
    }
}

/// A registered experiment: one paper artefact, expandable into units.
pub struct Experiment {
    /// Registry key and artifact file stem, e.g. `"fig7"`.
    pub name: &'static str,
    /// The paper artefact this reproduces, e.g.
    /// `"Fig. 7: downlink, FPS and staleness vs. user count"`.
    pub artefact: &'static str,
    /// Console header printed above the unit display lines, for
    /// experiments whose units each render one row of a shared table.
    /// `None` when units carry self-contained display blocks.
    pub header: Option<&'static str>,
    /// Expand into independent work units for the given run context.
    pub build_units: fn(&RunCtx) -> Vec<WorkUnit>,
}

/// A merged, ready-to-write artifact.
pub struct Artifact {
    /// Experiment name (artifact file is `<name>.json`).
    pub name: &'static str,
    /// The merged JSON document.
    pub json: Json,
    /// The merged console report.
    pub display: String,
}

/// Merge unit results (already in unit-index order) into an artifact.
///
/// The document shape is uniform across experiments:
/// `{ experiment, artefact, fidelity, seed, units: [{unit, data}, …] }`.
/// Because the scheduler stores results by unit index, this merge — and
/// therefore the serialized bytes — is identical for any worker count.
pub fn merge(exp: &Experiment, ctx: &RunCtx, results: Vec<(String, UnitResult)>) -> Artifact {
    let mut units = Vec::new();
    let mut display = String::new();
    if let Some(header) = exp.header {
        display.push_str(header);
        display.push('\n');
    }
    for (label, result) in results {
        units.push(Json::obj().set("unit", label).set("data", result.json));
        display.push_str(&result.display);
        if !result.display.ends_with('\n') {
            display.push('\n');
        }
    }
    let json = Json::obj()
        .set("experiment", exp.name)
        .set("artefact", exp.artefact)
        .set("fidelity", ctx.fidelity.label())
        .set("seed", ctx.seed)
        .set("units", Json::Arr(units));
    Artifact { name: exp.name, json, display }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_result(n: u64, line: &str) -> UnitResult {
        UnitResult { json: Json::obj().set("n", n), display: line.to_string(), trials: 1 }
    }

    fn table_experiment() -> Experiment {
        Experiment {
            name: "t",
            artefact: "a table",
            header: Some("Col A  Col B"),
            build_units: |_| Vec::new(),
        }
    }

    #[test]
    fn merge_prefixes_the_header_and_keeps_unit_order() {
        let ctx = RunCtx { fidelity: Fidelity::Quick, seed: 0 };
        let results = vec![
            ("t/row1".to_string(), unit_result(1, "row one")),
            ("t/row2".to_string(), unit_result(2, "row two\n")),
        ];
        let artifact = merge(&table_experiment(), &ctx, results);
        // Header first, rows in unit order, exactly one newline each —
        // this is the byte-level contract the jobs-independence of
        // header-merged tables rests on.
        assert_eq!(artifact.display, "Col A  Col B\nrow one\nrow two\n");
        let json = artifact.json.pretty();
        assert!(json.contains("\"unit\": \"t/row1\""));
        let row1 = json.find("t/row1").unwrap();
        let row2 = json.find("t/row2").unwrap();
        assert!(row1 < row2, "unit slots must appear in unit-index order");
    }

    #[test]
    fn merge_is_byte_stable_across_calls() {
        let ctx = RunCtx { fidelity: Fidelity::Full, seed: 7 };
        let build = || {
            vec![
                ("t/x".to_string(), unit_result(10, "x")),
                ("t/y".to_string(), unit_result(20, "y")),
                ("t/z".to_string(), unit_result(30, "z")),
            ]
        };
        let a = merge(&table_experiment(), &ctx, build());
        let b = merge(&table_experiment(), &ctx, build());
        assert_eq!(a.json.pretty(), b.json.pretty());
        assert_eq!(a.display, b.display);
    }

    #[test]
    fn merge_without_header_concatenates_blocks_verbatim() {
        let exp = Experiment {
            name: "blocks",
            artefact: "self-contained displays",
            header: None,
            build_units: |_| Vec::new(),
        };
        let ctx = RunCtx { fidelity: Fidelity::Quick, seed: 0 };
        let results = vec![("blocks/only".to_string(), unit_result(1, "block\n"))];
        assert_eq!(merge(&exp, &ctx, results).display, "block\n");
    }

    #[test]
    fn reseed_keeps_builtins_by_default_and_remixes_otherwise() {
        let default = RunCtx { fidelity: Fidelity::Quick, seed: 0 };
        assert_eq!(default.reseed(0xF162), 0xF162);
        let custom = RunCtx { fidelity: Fidelity::Quick, seed: 0xC0FFEE };
        assert_ne!(custom.reseed(0xF162), 0xF162);
        // Distinct builtins stay distinct under the same user seed
        // (SplitMix64's finalizer is a bijection).
        assert_ne!(custom.reseed(0xF162), custom.reseed(0x7AB1E3));
    }
}
