//! A work-stealing scheduler for experiment units.
//!
//! Work units are distributed round-robin across per-worker deques; a
//! worker pops from the front of its own deque and, when empty, steals
//! from the back of the most loaded peer. Each unit's closure runs
//! single-threaded on whichever worker claims it — the simulations
//! themselves are strictly sequential, so the only shared state is the
//! deques and the results table.
//!
//! **Determinism.** A unit's result depends only on its closure (all
//! seeds are value-derived), never on which worker ran it or when.
//! Results are stored into a slot table indexed by the unit's global
//! index, so the merged ordering — and therefore every artifact byte —
//! is identical for any `--jobs` value and any interleaving. Telemetry
//! (durations, worker ids) is the only schedule-dependent output, and it
//! is quarantined in `BENCH_harness.json`.
//!
//! Built on `std::thread::scope`: no unsafe, no external crates, workers
//! cannot outlive the call.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use svr_netsim::counters;

use crate::experiment::{UnitResult, WorkUnit};

/// A completed unit, with telemetry attributed by the worker that ran it.
pub struct CompletedUnit {
    /// Index of the experiment this unit belongs to (caller-defined).
    pub exp_index: usize,
    /// The unit's label, e.g. `"fig7/RecRoom"`.
    pub label: String,
    /// What the unit produced.
    pub result: UnitResult,
    /// Wall time the unit spent running on its worker.
    pub elapsed: Duration,
    /// Simulation events processed while the unit ran.
    pub sim_events: u64,
    /// Packets delivered to their final destination while the unit ran.
    pub sim_packets: u64,
    /// Which worker ran the unit (telemetry only).
    pub worker: usize,
}

/// Scheduler telemetry for one `run` call.
pub struct PoolStats {
    /// Worker count actually used.
    pub workers: usize,
    /// Wall time of the whole pool run.
    pub wall: Duration,
    /// Per-worker busy time (sum of unit durations it ran).
    pub busy: Vec<Duration>,
    /// Units stolen from another worker's deque.
    pub steals: u64,
}

struct Slot {
    exp_index: usize,
    label: String,
    unit: WorkUnit,
}

/// Run `units` (tagged with their experiment index) across `jobs`
/// workers. Returns completed units **in input order** plus pool stats.
pub fn run(units: Vec<(usize, WorkUnit)>, jobs: usize) -> (Vec<CompletedUnit>, PoolStats) {
    let n = units.len();
    let workers = jobs.max(1).min(n.max(1));

    // Round-robin initial distribution; each deque entry carries the
    // unit's global index so results land in input order.
    let deques: Vec<Mutex<VecDeque<(usize, Slot)>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (global, (exp_index, unit)) in units.into_iter().enumerate() {
        let slot = Slot { exp_index, label: unit.label.clone(), unit };
        deques[global % workers].lock().unwrap().push_back((global, slot));
    }

    let results: Vec<Mutex<Option<CompletedUnit>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let busy: Vec<Mutex<Duration>> = (0..workers).map(|_| Mutex::new(Duration::ZERO)).collect();
    let steals = Mutex::new(0u64);

    let started = Instant::now();
    std::thread::scope(|scope| {
        for worker in 0..workers {
            let deques = &deques;
            let results = &results;
            let busy = &busy;
            let steals = &steals;
            scope.spawn(move || {
                let mut local_busy = Duration::ZERO;
                loop {
                    let claimed = claim(deques, worker, steals);
                    let Some((global, slot)) = claimed else { break };
                    let counters_before = counters::snapshot();
                    let unit_started = Instant::now();
                    let result = (slot.unit.run)();
                    let elapsed = unit_started.elapsed();
                    let delta = counters::snapshot().since(counters_before);
                    local_busy += elapsed;
                    *results[global].lock().unwrap() = Some(CompletedUnit {
                        exp_index: slot.exp_index,
                        label: slot.label,
                        result,
                        elapsed,
                        sim_events: delta.events,
                        sim_packets: delta.packets_delivered,
                        worker,
                    });
                }
                *busy[worker].lock().unwrap() = local_busy;
            });
        }
    });
    let wall = started.elapsed();

    let completed: Vec<CompletedUnit> = results
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("every unit completed"))
        .collect();
    let stats = PoolStats {
        workers,
        wall,
        busy: busy.into_iter().map(|b| b.into_inner().unwrap()).collect(),
        steals: steals.into_inner().unwrap(),
    };
    (completed, stats)
}

/// Pop from our own deque's front, else steal from the back of a peer
/// (tried in index order; the deques hold tens of units, so a smarter
/// victim policy would buy nothing). Returns `None` only after our own
/// deque and every peer were each observed empty; units are only ever
/// *removed* after the initial distribution, so that is terminal even
/// with concurrent pops — no deque can refill behind us.
fn claim(
    deques: &[Mutex<VecDeque<(usize, Slot)>>],
    worker: usize,
    steals: &Mutex<u64>,
) -> Option<(usize, Slot)> {
    if let Some(item) = deques[worker].lock().unwrap().pop_front() {
        return Some(item);
    }
    for victim in (0..deques.len()).filter(|&i| i != worker) {
        let stolen = deques[victim].lock().unwrap().pop_back();
        if let Some(item) = stolen {
            *steals.lock().unwrap() += 1;
            return Some(item);
        }
    }
    // Own deque and every peer were each observed empty; since nothing
    // is ever pushed after the initial distribution, that is terminal.
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::WorkUnit;
    use crate::json::Json;

    fn fake_unit(i: usize) -> WorkUnit {
        WorkUnit::new(format!("fake/{i}"), move || UnitResult {
            json: Json::obj().set("i", i),
            display: format!("unit {i}\n"),
            trials: 1,
        })
    }

    #[test]
    fn results_come_back_in_input_order_for_any_worker_count() {
        for jobs in [1, 2, 4, 9] {
            let units: Vec<(usize, WorkUnit)> = (0..9).map(|i| (i / 3, fake_unit(i))).collect();
            let (completed, stats) = run(units, jobs);
            assert_eq!(completed.len(), 9);
            assert!(stats.workers <= 9);
            for (i, c) in completed.iter().enumerate() {
                assert_eq!(c.label, format!("fake/{i}"));
                assert_eq!(c.exp_index, i / 3);
                assert_eq!(c.result.json, Json::obj().set("i", i));
            }
        }
    }

    #[test]
    fn zero_jobs_is_clamped_to_one_worker() {
        let (completed, stats) = run(vec![(0, fake_unit(0))], 0);
        assert_eq!(completed.len(), 1);
        assert_eq!(stats.workers, 1);
    }

    #[test]
    fn empty_unit_list_completes() {
        let (completed, stats) = run(Vec::new(), 4);
        assert!(completed.is_empty());
        assert_eq!(stats.steals, 0);
    }
}
