//! A dependency-free JSON document model and stable pretty-printer.
//!
//! The harness writes one artifact per experiment plus a telemetry file;
//! both must be **byte-stable**: the same inputs must always serialize
//! to the same bytes, regardless of `--jobs` or platform. To guarantee
//! that without pulling in `serde_json` (the workspace builds with zero
//! external dependencies, see `DESIGN.md`), this module keeps object
//! members in insertion order (a `Vec`, not a hash map) and formats
//! numbers with Rust's shortest-round-trip float formatting, which is
//! fully specified and identical on every platform.

use std::fmt::Write as _;

/// A JSON value.
///
/// Objects preserve insertion order so serialization is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer, printed without a fractional part.
    U64(u64),
    /// A signed integer, printed without a fractional part.
    I64(i64),
    /// A float, printed with shortest-round-trip formatting.
    /// Non-finite values serialize as `null` (JSON has no NaN/Inf).
    Num(f64),
    /// A string (escaped on output).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; members keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object builder.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append a member to an object (panics if `self` is not an object).
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(members) => members.push((key.to_string(), value.into())),
            _ => panic!("Json::set on non-object"),
        }
        self
    }

    /// Serialize with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::I64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Num(x) => write_f64(out, *x),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    // `{}` on f64 is the shortest string that round-trips, which is a
    // deterministic function of the bits. Integral floats print without
    // a dot ("3"); keep that (still valid JSON, still stable).
    let _ = write!(out, "{x}");
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::U64(n)
    }
}
impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::U64(n as u64)
    }
}
impl From<u16> for Json {
    fn from(n: u16) -> Json {
        Json::U64(n as u64)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::U64(n as u64)
    }
}
impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::I64(n)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}
impl From<f32> for Json {
    fn from(x: f32) -> Json {
        Json::Num(x as f64)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

/// An array from an iterator of convertible items.
pub fn arr<T: Into<Json>>(items: impl IntoIterator<Item = T>) -> Json {
    Json::Arr(items.into_iter().map(Into::into).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_is_stable_and_ordered() {
        let doc = Json::obj()
            .set("b", 1u64)
            .set("a", Json::Arr(vec![Json::Num(0.1), Json::Null, Json::Bool(true)]))
            .set("s", "line\n\"quote\"");
        let text = doc.pretty();
        // Insertion order kept: "b" before "a".
        assert!(text.find("\"b\"").unwrap() < text.find("\"a\"").unwrap());
        assert!(text.contains("0.1"));
        assert!(text.contains("\\n\\\"quote\\\""));
        assert_eq!(text, doc.pretty(), "same document, same bytes");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Num(f64::NAN).pretty(), "null\n");
        assert_eq!(Json::Num(f64::INFINITY).pretty(), "null\n");
    }

    #[test]
    fn empty_containers_print_compactly() {
        assert_eq!(Json::obj().pretty(), "{}\n");
        assert_eq!(Json::Arr(vec![]).pretty(), "[]\n");
    }

    #[test]
    fn control_chars_are_escaped() {
        assert_eq!(Json::Str("\u{1}".into()).pretty(), "\"\\u0001\"\n");
    }
}
