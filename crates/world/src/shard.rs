//! One room shard: a private network, a shard-local data server, and
//! the shard's side of the cross-shard fact protocol.
//!
//! Topology per shard: a shared client node (residents are distinguished
//! by UDP port, exactly like many headsets behind one campus NAT), the
//! room's data server, and a boundary *gateway* node registered with
//! [`svr_netsim::Network::set_boundary`]. Packets addressed to the
//! gateway leave the shard: they accumulate in the network's egress
//! queue and are drained into [`Fact`]s instead of being delivered
//! locally — the only way anything escapes a shard.

use std::collections::BTreeMap;

use svr_avatar::codec::{encode_update, make_update};
use svr_avatar::motion::MotionState;
use svr_avatar::skeleton::Vec3;
use svr_netsim::buf::Bytes;
use svr_netsim::rng::splitmix64_mix;
use svr_netsim::{
    counters, LinkSpec, Network, NodeId, NodeKind, Packet, Proto, SimTime, TransportHeader,
};
use svr_platform::server::{DataServer, ServerStats, UserProfile, DATA_SERVER_PORT};
use svr_platform::PlatformConfig;
use svr_transport::udp::{MsgKind, UdpChannel};

use crate::config::WorldConfig;
use crate::fact::{Fact, FactPayload};

/// Gateway port cross-shard presence pings are addressed to.
pub const GATEWAY_PORT: u16 = 7_100;

/// First client port a shard hands out (re-used from a free list as
/// residents come and go, so long runs don't exhaust the port space).
const PORT_BASE: u16 = 20_000;

/// Hash a tuple of values into a selection index. All workload choices
/// derive from this, never from thread scheduling.
fn mix(parts: &[u64]) -> u64 {
    let mut h = 0x9E37_79B9_7F4A_7C15;
    for &p in parts {
        h = splitmix64_mix(h ^ p);
    }
    h
}

/// Deterministic spawn spot for user `u`: the same loose spiral the
/// single-room bench uses, so distances (and therefore viewport and
/// focus decisions) are non-trivial.
pub fn spawn_spot(u: u32) -> Vec3 {
    let golden = 2.399_963_f32; // radians
    let k = (u % 4096) as f32;
    let r = 1.0 + 0.15 * k;
    let a = k * golden;
    Vec3::new(r * a.cos(), 0.0, r * a.sin())
}

fn presence_body(from_user: u32, to_user: u32) -> Bytes {
    let mut body = Vec::with_capacity(8);
    body.extend_from_slice(&from_user.to_le_bytes());
    body.extend_from_slice(&to_user.to_le_bytes());
    Bytes::from(body)
}

fn decode_presence(pkt: &Packet) -> Option<(u32, u32)> {
    if pkt.header.dst_port != GATEWAY_PORT {
        return None;
    }
    let body = pkt.payload.as_slice();
    if body.len() < 8 {
        return None;
    }
    let from = u32::from_le_bytes(body[0..4].try_into().ok()?);
    let to = u32::from_le_bytes(body[4..8].try_into().ok()?);
    Some((from, to))
}

/// Per-resident client state kept by the shard.
struct ClientSlot {
    port: u16,
    channel: UdpChannel,
    motion: MotionState,
}

/// Shard-local traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Presence pings this shard's residents pushed to the gateway.
    pub presence_tx: u64,
    /// Presence pings committed into this shard for a resident.
    pub presence_rx: u64,
    /// Packets delivered to the shared client node (forwards, frames,
    /// committed presence).
    pub client_rx: u64,
}

/// What one shard hands back from a parallel step.
#[derive(Debug, Clone)]
pub struct ShardOutput {
    /// The shard's room id.
    pub room: u32,
    /// Cross-shard facts produced this window, in shard-local order.
    pub facts: Vec<Fact>,
    /// Discrete network events processed during the step.
    pub events: u64,
    /// Packets delivered end-to-end during the step.
    pub packets: u64,
    /// Avatar messages injected by residents during the step.
    pub messages: u64,
}

/// One room of the world: private network + data server + residents.
pub struct RoomShard {
    /// Global room id; doubles as the shard id in fact keys.
    pub room: u32,
    /// Shard traffic counters.
    pub stats: ShardStats,
    seed: u64,
    rooms: u32,
    worlds: u32,
    total_users: u32,
    pcfg: PlatformConfig,
    net: Network,
    server: DataServer,
    client_node: NodeId,
    server_node: NodeId,
    gateway_node: NodeId,
    clients: BTreeMap<u32, ClientSlot>,
    free_ports: Vec<u16>,
    next_port: u16,
    fact_seq: u64,
    avatar_tick: u32,
}

impl RoomShard {
    /// Build an empty shard for room `room`.
    pub fn new(room: u32, cfg: &WorldConfig) -> RoomShard {
        let seed = mix(&[cfg.seed, 0x524F_4F4D, room as u64]);
        let mut net = Network::new(seed);
        let client_node = net.add_node(format!("R{room}-clients"), NodeKind::Headset);
        let server_node = net.add_node(format!("R{room}-server"), NodeKind::Server);
        let gateway_node = net.add_node(format!("R{room}-gw"), NodeKind::Server);
        net.add_duplex_link(client_node, server_node, LinkSpec::campus(), LinkSpec::campus());
        net.add_duplex_link(client_node, gateway_node, LinkSpec::campus(), LinkSpec::campus());
        net.set_boundary(gateway_node);

        // The shard tier models the data plane of one per-room pool
        // server: the paper's Table-4 processing latencies and status
        // broadcasts live in the session tier, so here they are scaled
        // to the commit window (see `WorldConfig`).
        let mut pcfg = PlatformConfig::vrchat();
        pcfg.forward_policy = cfg.policy;
        pcfg.server_base_proc = svr_netsim::SimDuration::from_millis_f64(cfg.server_base_proc_ms);
        pcfg.server_queue_quad_ms = cfg.server_queue_quad_ms;
        pcfg.server_status_rate_hz = cfg.server_status_rate_hz;
        let server = DataServer::new(server_node, &pcfg, seed);

        RoomShard {
            room,
            stats: ShardStats::default(),
            seed,
            rooms: cfg.rooms as u32,
            worlds: cfg.worlds as u32,
            total_users: cfg.total_users() as u32,
            pcfg,
            net,
            server,
            client_node,
            server_node,
            gateway_node,
            clients: BTreeMap::new(),
            free_ports: Vec::new(),
            next_port: PORT_BASE,
            fact_seq: 0,
            avatar_tick: 0,
        }
    }

    /// The world group this room belongs to.
    pub fn world_group(&self) -> u32 {
        self.room % self.worlds
    }

    /// Number of current residents.
    pub fn residents(&self) -> usize {
        self.clients.len()
    }

    /// Current resident ids, ascending.
    pub fn resident_ids(&self) -> Vec<u32> {
        self.clients.keys().copied().collect()
    }

    /// The shard server's forwarding counters.
    pub fn server_stats(&self) -> ServerStats {
        self.server.stats
    }

    /// Admit a user (initial population or a committed hop/transfer):
    /// allocate a client port, register on the shard server, and seed a
    /// motion state at the carried avatar position.
    pub fn admit(&mut self, profile: &UserProfile, now: SimTime) {
        let port = self.free_ports.pop().unwrap_or_else(|| {
            let p = self.next_port;
            self.next_port += 1;
            p
        });
        self.server.admit_user(profile, self.client_node, port, now);
        let mseed = mix(&[self.seed, 0x4D4F_5449, profile.user_id as u64]);
        let mut motion = MotionState::new(mseed, profile.position, profile.heading_deg);
        motion.wander();
        self.clients.insert(
            profile.user_id,
            ClientSlot {
                port,
                channel: UdpChannel::new(profile.user_id as u16, port, DATA_SERVER_PORT, now),
                motion,
            },
        );
    }

    /// Extract a departing user: remove it from the shard server, free
    /// its port, and return the avatar state to carry across.
    pub fn extract(&mut self, user_id: u32) -> Option<UserProfile> {
        let profile = self.server.extract_user(user_id)?;
        if let Some(slot) = self.clients.remove(&user_id) {
            self.free_ports.push(slot.port);
        }
        Some(profile)
    }

    /// Commit a presence ping addressed to a resident: the gateway
    /// relays it onto the shard's own network. Returns `false` when the
    /// recipient is not (or no longer) resident here.
    pub fn deliver_presence(&mut self, from_user: u32, to_user: u32) -> bool {
        let Some(slot) = self.clients.get(&to_user) else {
            return false;
        };
        let hdr = TransportHeader::datagram(Proto::Udp, GATEWAY_PORT, slot.port);
        self.net.send(
            self.gateway_node,
            self.client_node,
            Packet::new(hdr, presence_body(from_user, to_user)),
        );
        self.stats.presence_rx += 1;
        true
    }

    /// Advance this shard through one commit window starting at `t0`.
    /// Runs entirely on shard-local state; safe to call from any pool
    /// worker. Counter deltas are snapshotted on the calling thread.
    pub fn step(&mut self, tick: u64, t0: SimTime, cfg: &WorldConfig) -> ShardOutput {
        let before = counters::snapshot();
        let mut facts = Vec::new();
        let mut messages = 0u64;
        for s in 0..cfg.subticks {
            let t = t0 + cfg.shard_dt * s;
            self.inject_avatars(tick, s, t, cfg, &mut messages);
            if s == 0 {
                self.send_presence_pings(tick, t, cfg);
            }
            self.pump(t, &mut facts);
        }
        let t_end = t0 + cfg.window();
        self.pump(t_end, &mut facts);
        self.select_departures(tick, t_end, cfg, &mut facts);
        let delta = counters::snapshot().since(before);
        ShardOutput {
            room: self.room,
            facts,
            events: delta.events,
            packets: delta.packets_delivered,
            messages,
        }
    }

    /// Sampled residents step their wander motion and upload one avatar
    /// update each.
    fn inject_avatars(
        &mut self,
        tick: u64,
        subtick: u64,
        t: SimTime,
        cfg: &WorldConfig,
        messages: &mut u64,
    ) {
        let residents = self.resident_ids();
        if residents.is_empty() {
            return;
        }
        let senders = cfg.senders_per_room.min(residents.len());
        for k in 0..senders {
            let pick = mix(&[self.seed, 0x5345_4E44, tick, subtick, k as u64]) as usize
                % residents.len();
            let user_id = residents[pick];
            self.avatar_tick += 1;
            let avatar_tick = self.avatar_tick;
            let embodiment = self.pcfg.embodiment.clone();
            let slot = self.clients.get_mut(&user_id).expect("resident has a slot");
            let (pose, vel) = slot.motion.step(cfg.shard_dt.as_secs_f64(), &embodiment);
            let body = encode_update(&make_update(user_id, avatar_tick, &embodiment, pose, vel));
            if let Some(p) = slot.channel.send(MsgKind::Avatar, t, &body) {
                self.net.send(self.client_node, self.server_node, p);
                *messages += 1;
            }
        }
    }

    /// Sampled residents ping a hash-chosen friend anywhere in the
    /// world; the packet leaves through the boundary gateway.
    fn send_presence_pings(&mut self, tick: u64, t: SimTime, cfg: &WorldConfig) {
        let residents = self.resident_ids();
        if residents.is_empty() || self.total_users < 2 {
            return;
        }
        let _ = t;
        for k in 0..cfg.presence_per_room.min(residents.len()) {
            let pick =
                mix(&[self.seed, 0x5052_4553, tick, k as u64]) as usize % residents.len();
            let from = residents[pick];
            let mut to =
                (mix(&[self.seed, 0x4652_4E44, from as u64, tick]) % self.total_users as u64) as u32;
            if to == from {
                to = (to + 1) % self.total_users;
            }
            let port = self.clients[&from].port;
            let hdr = TransportHeader::datagram(Proto::Udp, port, GATEWAY_PORT);
            self.net.send(
                self.client_node,
                self.gateway_node,
                Packet::new(hdr, presence_body(from, to)),
            );
            self.stats.presence_tx += 1;
        }
    }

    /// Interleave deliveries, server processing, server timers, and the
    /// boundary egress drain up to time `t`.
    fn pump(&mut self, t: SimTime, facts: &mut Vec<Fact>) {
        for d in self.net.poll_all(t) {
            if d.dst == self.server_node {
                let replies = self.server.on_packet(d.at, &d.packet);
                for (node, p) in replies {
                    self.net.send(self.server_node, node, p);
                }
            } else {
                // Forwards, render frames and relayed presence land on
                // the shared client node; clients are sinks here.
                self.stats.client_rx += 1;
            }
        }
        for (node, p) in self.server.on_tick(t) {
            self.net.send(self.server_node, node, p);
        }
        for d in self.net.drain_egress() {
            if let Some((from_user, to_user)) = decode_presence(&d.packet) {
                let fact = self.fact(d.at, FactPayload::Presence { from_user, to_user });
                facts.push(fact);
            }
        }
    }

    /// End-of-window hop/transfer selection: extract the chosen users
    /// and emit the facts the coordinator will commit.
    fn select_departures(
        &mut self,
        tick: u64,
        t_end: SimTime,
        cfg: &WorldConfig,
        facts: &mut Vec<Fact>,
    ) {
        if self.rooms < 2 {
            return;
        }
        for k in 0..cfg.hops_per_room {
            let residents = self.resident_ids();
            if residents.len() < 2 {
                break;
            }
            let pick =
                mix(&[self.seed, 0x0048_4F50, tick, k as u64]) as usize % residents.len();
            let user_id = residents[pick];
            let mut to_room =
                (mix(&[self.seed, 0x4445_5354, user_id as u64, tick]) % self.rooms as u64) as u32;
            if to_room == self.room {
                to_room = (to_room + 1) % self.rooms;
            }
            if let Some(profile) = self.extract(user_id) {
                let fact = self.fact(t_end, FactPayload::PortalHop { profile, to_room });
                facts.push(fact);
            }
        }
        if self.worlds > 1 {
            for k in 0..cfg.transfers_per_room {
                let residents = self.resident_ids();
                if residents.len() < 2 {
                    break;
                }
                let pick =
                    mix(&[self.seed, 0x5846_4552, tick, k as u64]) as usize % residents.len();
                let user_id = residents[pick];
                let mut to_room = (mix(&[self.seed, 0x574F_524C, user_id as u64, tick])
                    % self.rooms as u64) as u32;
                while to_room % self.worlds == self.world_group() {
                    to_room = (to_room + 1) % self.rooms;
                }
                if let Some(mut profile) = self.extract(user_id) {
                    // A world transfer is a fresh join: respawn at the
                    // destination's deterministic spawn spot.
                    profile.position = spawn_spot(profile.user_id);
                    profile.heading_deg = 0.0;
                    let fact = self.fact(t_end, FactPayload::WorldTransfer { profile, to_room });
                    facts.push(fact);
                }
            }
        }
    }

    fn fact(&mut self, time: SimTime, payload: FactPayload) -> Fact {
        let seq = self.fact_seq;
        self.fact_seq += 1;
        Fact { time, shard: self.room, seq, payload }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard_with_users(n: u32) -> (RoomShard, WorldConfig) {
        let cfg = WorldConfig::small(7).validated();
        let mut shard = RoomShard::new(0, &cfg);
        for u in 0..n {
            let profile =
                UserProfile { user_id: u, position: spawn_spot(u), heading_deg: 0.0 };
            shard.admit(&profile, SimTime::ZERO);
        }
        (shard, cfg)
    }

    #[test]
    fn admit_extract_round_trip_frees_and_reuses_ports() {
        let (mut shard, _cfg) = shard_with_users(4);
        assert_eq!(shard.residents(), 4);
        let profile = shard.extract(2).expect("resident");
        assert_eq!(profile.user_id, 2);
        assert_eq!(shard.residents(), 3);
        // Re-admitting reuses the freed port instead of growing the range.
        let next_before = shard.next_port;
        shard.admit(&profile, SimTime::ZERO);
        assert_eq!(shard.next_port, next_before);
        assert!(shard.extract(99).is_none());
    }

    #[test]
    fn step_produces_messages_and_departure_facts() {
        let (mut shard, cfg) = shard_with_users(8);
        let out = shard.step(0, SimTime::ZERO, &cfg);
        assert_eq!(out.room, 0);
        assert!(out.messages > 0, "sampled senders should upload");
        assert!(out.events > 0, "the shard network processed events");
        let hops = out
            .facts
            .iter()
            .filter(|f| matches!(f.payload, FactPayload::PortalHop { .. }))
            .count();
        let transfers = out
            .facts
            .iter()
            .filter(|f| matches!(f.payload, FactPayload::WorldTransfer { .. }))
            .count();
        assert_eq!(hops, cfg.hops_per_room);
        assert_eq!(transfers, cfg.transfers_per_room);
        // Departed users are gone from the shard.
        assert_eq!(shard.residents(), 8 - hops - transfers);
        // Hop destinations never point back at this room, transfers
        // always change world group.
        for f in &out.facts {
            match f.payload {
                FactPayload::PortalHop { to_room, .. } => assert_ne!(to_room, 0),
                FactPayload::WorldTransfer { to_room, .. } => {
                    assert_ne!(to_room % cfg.worlds as u32, shard.world_group());
                }
                FactPayload::Presence { .. } => {}
            }
        }
    }

    #[test]
    fn presence_pings_cross_the_boundary_as_facts() {
        let (mut shard, cfg) = shard_with_users(8);
        let out = shard.step(0, SimTime::ZERO, &cfg);
        let presence: Vec<_> = out
            .facts
            .iter()
            .filter_map(|f| match f.payload {
                FactPayload::Presence { from_user, to_user } => Some((from_user, to_user)),
                _ => None,
            })
            .collect();
        assert_eq!(presence.len(), cfg.presence_per_room);
        assert_eq!(shard.stats.presence_tx, cfg.presence_per_room as u64);
        for (from, to) in presence {
            assert_ne!(from, to);
            assert!(to < cfg.total_users() as u32);
        }
    }

    #[test]
    fn deliver_presence_requires_a_resident_recipient() {
        let (mut shard, _cfg) = shard_with_users(4);
        let rx_before = shard.stats.presence_rx;
        assert!(shard.deliver_presence(1, 0));
        assert_eq!(shard.stats.presence_rx, rx_before + 1);
        assert!(!shard.deliver_presence(1, 9_999));
    }

    #[test]
    fn identical_seeds_step_identically() {
        let (mut a, cfg) = shard_with_users(8);
        let (mut b, _) = shard_with_users(8);
        let out_a = a.step(0, SimTime::ZERO, &cfg);
        let out_b = b.step(0, SimTime::ZERO, &cfg);
        assert_eq!(out_a.facts, out_b.facts);
        assert_eq!(out_a.messages, out_b.messages);
        assert_eq!(out_a.events, out_b.events);
    }
}
