//! Cross-shard facts and their deterministic commit order.
//!
//! Shards never mutate each other. During the parallel phase of a tick
//! each shard appends [`Fact`]s — a user leaving through a portal, a
//! world transfer, a presence ping crossing the shard boundary — and the
//! coordinator applies the combined set sequentially, sorted by
//! `(time, shard, seq)`. Every component of that key comes from
//! shard-local deterministic state (the shard's own event clock and its
//! own fact counter), so the commit order cannot depend on how the pool
//! interleaved shard execution.

use svr_netsim::SimTime;
use svr_platform::server::UserProfile;

/// What a cross-shard fact does when committed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FactPayload {
    /// A user walked through a portal into another room, keeping its
    /// avatar state (§4's world-join flow, without the fresh spawn).
    PortalHop {
        /// Avatar state extracted from the source shard.
        profile: UserProfile,
        /// Destination room.
        to_room: u32,
    },
    /// A user transferred to a different world group; the destination
    /// shard respawns the avatar at its deterministic spawn spot.
    WorldTransfer {
        /// Avatar state extracted from the source shard.
        profile: UserProfile,
        /// Destination room (always in another world group).
        to_room: u32,
    },
    /// A friend-presence ping that left through the shard's boundary
    /// gateway, addressed to a user who may live on any shard.
    Presence {
        /// Sender's global user id.
        from_user: u32,
        /// Recipient's global user id.
        to_user: u32,
    },
}

/// One ordered cross-shard fact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fact {
    /// Shard-local simulation time the fact was produced.
    pub time: SimTime,
    /// Originating shard (room id).
    pub shard: u32,
    /// Per-shard fact sequence number (monotonic over the run).
    pub seq: u64,
    /// The effect to commit.
    pub payload: FactPayload,
}

impl Fact {
    /// The total commit order key.
    pub fn key(&self) -> (SimTime, u32, u64) {
        (self.time, self.shard, self.seq)
    }
}

/// Sort facts into commit order. `(shard, seq)` pairs are unique, so the
/// order is total and an unstable sort is safe.
pub fn order_facts(facts: &mut [Fact]) {
    facts.sort_unstable_by_key(|f| f.key());
}

/// Fold one fact into a running FNV-1a digest. The digest is a compact
/// fingerprint of the committed fact stream; equal digests across
/// worker counts is the determinism check the artifacts carry.
pub fn digest_fact(mut h: u64, f: &Fact) -> u64 {
    fn eat(h: u64, v: u64) -> u64 {
        (h ^ v).wrapping_mul(0x0000_0100_0000_01B3)
    }
    h = eat(h, f.time.as_secs_f64().to_bits());
    h = eat(h, f.shard as u64);
    h = eat(h, f.seq);
    match &f.payload {
        FactPayload::PortalHop { profile, to_room } => {
            h = eat(h, 1);
            h = eat(h, profile.user_id as u64);
            h = eat(h, profile.position.x.to_bits() as u64);
            h = eat(h, profile.position.y.to_bits() as u64);
            h = eat(h, profile.position.z.to_bits() as u64);
            h = eat(h, profile.heading_deg.to_bits() as u64);
            h = eat(h, *to_room as u64);
        }
        FactPayload::WorldTransfer { profile, to_room } => {
            h = eat(h, 2);
            h = eat(h, profile.user_id as u64);
            h = eat(h, profile.position.x.to_bits() as u64);
            h = eat(h, profile.position.y.to_bits() as u64);
            h = eat(h, profile.position.z.to_bits() as u64);
            h = eat(h, profile.heading_deg.to_bits() as u64);
            h = eat(h, *to_room as u64);
        }
        FactPayload::Presence { from_user, to_user } => {
            h = eat(h, 3);
            h = eat(h, *from_user as u64);
            h = eat(h, *to_user as u64);
        }
    }
    h
}

/// Seed value for the running digest (FNV-1a offset basis).
pub const DIGEST_SEED: u64 = 0xCBF2_9CE4_8422_2325;

#[cfg(test)]
mod tests {
    use super::*;
    use svr_avatar::skeleton::Vec3;

    fn presence(time_ms: u64, shard: u32, seq: u64) -> Fact {
        Fact {
            time: SimTime::from_millis(time_ms),
            shard,
            seq,
            payload: FactPayload::Presence { from_user: 1, to_user: 2 },
        }
    }

    #[test]
    fn commit_order_is_time_then_shard_then_seq() {
        let mut facts = vec![
            presence(200, 0, 5),
            presence(100, 3, 0),
            presence(100, 1, 2),
            presence(100, 1, 1),
        ];
        order_facts(&mut facts);
        let keys: Vec<_> = facts.iter().map(Fact::key).collect();
        assert_eq!(
            keys,
            vec![
                (SimTime::from_millis(100), 1, 1),
                (SimTime::from_millis(100), 1, 2),
                (SimTime::from_millis(100), 3, 0),
                (SimTime::from_millis(200), 0, 5),
            ]
        );
    }

    #[test]
    fn digest_distinguishes_payloads() {
        let a = Fact {
            time: SimTime::from_millis(1),
            shard: 0,
            seq: 0,
            payload: FactPayload::PortalHop {
                profile: UserProfile {
                    user_id: 7,
                    position: Vec3::new(1.0, 0.0, 2.0),
                    heading_deg: 90.0,
                },
                to_room: 3,
            },
        };
        let mut b = a;
        b.payload = FactPayload::WorldTransfer {
            profile: UserProfile {
                user_id: 7,
                position: Vec3::new(1.0, 0.0, 2.0),
                heading_deg: 90.0,
            },
            to_room: 3,
        };
        assert_ne!(digest_fact(DIGEST_SEED, &a), digest_fact(DIGEST_SEED, &b));
        assert_eq!(digest_fact(DIGEST_SEED, &a), digest_fact(DIGEST_SEED, &a));
    }
}
