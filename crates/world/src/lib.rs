//! # svr-world
//!
//! A sharded multi-room world on top of the per-room simulation stack.
//!
//! The measurement harness reproduces the paper's single-room sessions
//! faithfully, but a social VR *platform* is thousands of concurrent
//! rooms with users hopping between them. This crate partitions the
//! world into room shards — each shard owns a private [`svr_netsim`]
//! event wheel and a shard-local [`svr_platform::server::DataServer`],
//! so nothing global leaks across rooms — and advances all shards in
//! parallel on a work-stealing pool.
//!
//! Cross-shard effects (portal hops, world transfers, friend-presence
//! pings) never touch another shard directly. During a tick each shard
//! records them as [`fact::Fact`]s; after the parallel phase the
//! coordinator sorts the combined facts by `(time, shard, seq)` and
//! applies them sequentially. Because the sort key is derived purely
//! from deterministic shard-local state, the committed world — and any
//! artifact derived from it — is byte-identical at any worker count.
//!
//! ```
//! use svr_world::{World, WorldConfig};
//!
//! let mut cfg = WorldConfig::small(42);
//! cfg.jobs = 4; // any worker count commits the same facts
//! let report = World::run(cfg);
//! assert!(report.stats.hops > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod fact;
pub mod pool;
pub mod shard;
pub mod world;

pub use config::{policies, policy_label, WorldConfig};
pub use fact::{Fact, FactPayload};
pub use shard::RoomShard;
pub use world::{World, WorldReport, WorldStats};
