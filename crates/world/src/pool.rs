//! The shard pool: step every shard through one commit window, in
//! parallel, without letting parallelism near the results.
//!
//! Same shape as the harness scheduler (`svr-harness::scheduler`): each
//! worker owns a deque of shard indices seeded round-robin, pops its own
//! front, and steals from a peer's back when empty. Shards live in a
//! slot table (`Vec<Mutex<Option<RoomShard>>>`); a worker takes the
//! shard out, steps it, and parks shard + output in a completion slot
//! keyed by the same index. Reassembly reads the completion table in
//! index order, so the returned vectors are index-ordered no matter
//! which worker ran what — and each shard's output depends only on its
//! own deterministic state, so a steal can change *when* a shard runs
//! but never *what* it produces.

use std::collections::VecDeque;
use std::sync::Mutex;

use svr_netsim::SimTime;

use crate::config::WorldConfig;
use crate::shard::{RoomShard, ShardOutput};

/// Step every shard through the window starting at `t0`, using
/// `cfg.jobs` workers (inline when 1). Returns the shards and their
/// outputs, both in shard-index order.
pub fn step_shards(
    shards: Vec<RoomShard>,
    tick: u64,
    t0: SimTime,
    cfg: &WorldConfig,
) -> (Vec<RoomShard>, Vec<ShardOutput>) {
    let jobs = cfg.jobs.max(1);
    if jobs == 1 || shards.len() <= 1 {
        let mut shards = shards;
        let mut outputs = Vec::with_capacity(shards.len());
        for shard in shards.iter_mut() {
            outputs.push(shard.step(tick, t0, cfg));
        }
        return (shards, outputs);
    }

    let n = shards.len();
    let workers = jobs.min(n);
    let slots: Vec<Mutex<Option<RoomShard>>> =
        shards.into_iter().map(|s| Mutex::new(Some(s))).collect();
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| Mutex::new((0..n).filter(|i| i % workers == w).collect()))
        .collect();
    type DoneSlot = Mutex<Option<(RoomShard, ShardOutput)>>;
    let done: Vec<DoneSlot> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for w in 0..workers {
            let slots = &slots;
            let queues = &queues;
            let done = &done;
            scope.spawn(move || {
                while let Some(idx) = claim(w, queues) {
                    let mut shard =
                        slots[idx].lock().expect("slot lock").take().expect("shard taken once");
                    // Counter deltas are thread-local; `step` snapshots
                    // around itself on this worker thread.
                    let out = shard.step(tick, t0, cfg);
                    *done[idx].lock().expect("done lock") = Some((shard, out));
                }
            });
        }
    });

    let mut shards = Vec::with_capacity(n);
    let mut outputs = Vec::with_capacity(n);
    for cell in done {
        let (shard, out) = cell
            .into_inner()
            .expect("done lock")
            .expect("every shard was stepped exactly once");
        shards.push(shard);
        outputs.push(out);
    }
    (shards, outputs)
}

/// Pop the next shard index: own queue front first, then steal from a
/// peer's back.
fn claim(own: usize, queues: &[Mutex<VecDeque<usize>>]) -> Option<usize> {
    if let Some(idx) = queues[own].lock().expect("queue lock").pop_front() {
        return Some(idx);
    }
    for offset in 1..queues.len() {
        let peer = (own + offset) % queues.len();
        if let Some(idx) = queues[peer].lock().expect("queue lock").pop_back() {
            return Some(idx);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::spawn_spot;
    use svr_platform::server::UserProfile;

    fn build(cfg: &WorldConfig) -> Vec<RoomShard> {
        let mut shards: Vec<RoomShard> =
            (0..cfg.rooms as u32).map(|r| RoomShard::new(r, cfg)).collect();
        for u in 0..cfg.total_users() as u32 {
            let room = u / cfg.users_per_room as u32;
            let profile = UserProfile { user_id: u, position: spawn_spot(u), heading_deg: 0.0 };
            shards[room as usize].admit(&profile, SimTime::ZERO);
        }
        shards
    }

    #[test]
    fn parallel_outputs_match_inline_outputs() {
        let mut inline_cfg = WorldConfig::small(11).validated();
        inline_cfg.jobs = 1;
        let mut pool_cfg = inline_cfg.clone();
        pool_cfg.jobs = 4;

        let (_, inline_out) = step_shards(build(&inline_cfg), 0, SimTime::ZERO, &inline_cfg);
        let (_, pool_out) = step_shards(build(&pool_cfg), 0, SimTime::ZERO, &pool_cfg);

        assert_eq!(inline_out.len(), pool_out.len());
        for (a, b) in inline_out.iter().zip(&pool_out) {
            assert_eq!(a.room, b.room, "index order must be preserved");
            assert_eq!(a.facts, b.facts);
            assert_eq!(a.messages, b.messages);
            assert_eq!(a.events, b.events);
            assert_eq!(a.packets, b.packets);
        }
    }

    #[test]
    fn more_workers_than_shards_is_fine() {
        let mut cfg = WorldConfig::small(3).validated();
        cfg.rooms = 2;
        cfg.users_per_room = 4;
        cfg.jobs = 16;
        let cfg = cfg.validated();
        let (shards, outputs) = step_shards(build(&cfg), 0, SimTime::ZERO, &cfg);
        assert_eq!(shards.len(), 2);
        assert_eq!(outputs.len(), 2);
        assert_eq!(outputs[0].room, 0);
        assert_eq!(outputs[1].room, 1);
    }
}
