//! World topology and workload knobs.

use svr_netsim::{Bitrate, SimDuration};
use svr_platform::ForwardPolicy;

/// Configuration for a sharded world run.
///
/// A run advances `ticks` commit windows. Within a window each shard
/// simulates `subticks` sub-steps of `shard_dt` in parallel with every
/// other shard, then the coordinator commits the cross-shard facts in
/// `(time, shard, seq)` order. All workload selection (which residents
/// send, hop, transfer, or ping) is hash-derived from `seed` and
/// shard-local state, never from scheduling order.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Number of room shards.
    pub rooms: usize,
    /// Initial residents per room (user ids are dense: room `r` starts
    /// with users `r*users_per_room .. (r+1)*users_per_room`).
    pub users_per_room: usize,
    /// Number of world groups; room `r` belongs to group `r % worlds`.
    /// World transfers always cross groups (and reset the avatar spawn),
    /// portal hops may stay within one.
    pub worlds: usize,
    /// Forwarding policy for every shard's data server.
    pub policy: ForwardPolicy,
    /// Master seed: shard seeds, sender/hop/presence selection.
    pub seed: u64,
    /// Commit windows to run.
    pub ticks: u64,
    /// Sub-steps per commit window.
    pub subticks: u64,
    /// Simulated time per sub-step.
    pub shard_dt: SimDuration,
    /// Residents sampled to upload an avatar update per sub-step.
    pub senders_per_room: usize,
    /// Portal hops selected per room per window.
    pub hops_per_room: usize,
    /// World transfers selected per room per window (requires
    /// `worlds > 1`; ignored otherwise).
    pub transfers_per_room: usize,
    /// Friend-presence pings sent per room per window.
    pub presence_per_room: usize,
    /// Worker threads for the shard pool (1 = inline, no threads).
    pub jobs: usize,
    /// Per-forward server processing latency, ms. The shard tier models
    /// the data plane of a per-room pool server, so this defaults well
    /// under one commit window (the session tier keeps the paper's
    /// Table-4 latencies).
    pub server_base_proc_ms: f64,
    /// Quadratic server queueing coefficient, ms (0 disables the
    /// `(N-2)^2` term, which at 512-user rooms would push every forward
    /// past the run horizon).
    pub server_queue_quad_ms: f64,
    /// Server status-broadcast rate; 0 keeps shard traffic data-only.
    pub server_status_rate_hz: f64,
}

impl WorldConfig {
    /// A small world: 8 rooms x 16 users in 2 world groups.
    pub fn small(seed: u64) -> WorldConfig {
        WorldConfig {
            rooms: 8,
            users_per_room: 16,
            worlds: 2,
            policy: ForwardPolicy::Direct,
            seed,
            ticks: 6,
            subticks: 2,
            shard_dt: SimDuration::from_millis(50),
            senders_per_room: 4,
            hops_per_room: 1,
            transfers_per_room: 1,
            presence_per_room: 2,
            jobs: 1,
            server_base_proc_ms: 20.0,
            server_queue_quad_ms: 0.0,
            server_status_rate_hz: 0.0,
        }
    }

    /// Harness quick-fidelity preset.
    pub fn quick(seed: u64, policy: ForwardPolicy) -> WorldConfig {
        let mut cfg = WorldConfig::small(seed);
        cfg.rooms = 6;
        cfg.users_per_room = 8;
        cfg.ticks = 4;
        cfg.policy = policy;
        cfg.jobs = 2;
        cfg
    }

    /// Harness full-fidelity preset.
    pub fn full(seed: u64, policy: ForwardPolicy) -> WorldConfig {
        let mut cfg = WorldConfig::small(seed);
        cfg.rooms = 24;
        cfg.users_per_room = 16;
        cfg.worlds = 3;
        cfg.ticks = 8;
        cfg.policy = policy;
        cfg.jobs = 2;
        cfg
    }

    /// Clamp degenerate values so every run is well-defined.
    pub fn validated(mut self) -> WorldConfig {
        self.rooms = self.rooms.max(1);
        self.users_per_room = self.users_per_room.max(1);
        self.worlds = self.worlds.clamp(1, self.rooms);
        self.subticks = self.subticks.max(1);
        self.jobs = self.jobs.max(1);
        if self.rooms == 1 {
            // Nowhere to hop to.
            self.hops_per_room = 0;
            self.transfers_per_room = 0;
        }
        self
    }

    /// Total users in the world (population is conserved across ticks).
    pub fn total_users(&self) -> usize {
        self.rooms * self.users_per_room
    }

    /// Simulated time per commit window.
    pub fn window(&self) -> SimDuration {
        self.shard_dt * self.subticks
    }
}

/// The forwarding policies a world sweep compares, with stable labels
/// (mirrors the single-room `svr-bench` sweep).
pub fn policies() -> Vec<(&'static str, ForwardPolicy)> {
    vec![
        ("direct", ForwardPolicy::Direct),
        ("viewport", ForwardPolicy::ViewportAdaptive { width_deg: 150.0 }),
        ("interest", ForwardPolicy::InterestManagement { focus: 8, background_hz: 1.0 }),
        (
            "remote_render",
            ForwardPolicy::RemoteRender { bitrate: Bitrate::from_mbps(8), frame_hz: 60.0 },
        ),
    ]
}

/// Stable label for a policy (the inverse of [`policies`]).
pub fn policy_label(policy: ForwardPolicy) -> &'static str {
    match policy {
        ForwardPolicy::Direct => "direct",
        ForwardPolicy::ViewportAdaptive { .. } => "viewport",
        ForwardPolicy::InterestManagement { .. } => "interest",
        ForwardPolicy::RemoteRender { .. } => "remote_render",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validated_clamps_degenerate_worlds() {
        let mut cfg = WorldConfig::small(1);
        cfg.rooms = 1;
        cfg.worlds = 9;
        cfg.jobs = 0;
        let cfg = cfg.validated();
        assert_eq!(cfg.worlds, 1);
        assert_eq!(cfg.jobs, 1);
        assert_eq!(cfg.hops_per_room, 0);
        assert_eq!(cfg.transfers_per_room, 0);
    }

    #[test]
    fn window_spans_all_subticks() {
        let cfg = WorldConfig::small(1);
        assert_eq!(cfg.window(), SimDuration::from_millis(100));
        assert_eq!(cfg.total_users(), 128);
    }

    #[test]
    fn policy_labels_round_trip() {
        for (label, policy) in policies() {
            assert_eq!(policy_label(policy), label);
        }
    }
}
