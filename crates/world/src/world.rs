//! The world coordinator: parallel shard dispatch, then one ordered
//! commit of cross-shard facts per tick.

use std::collections::BTreeMap;
use std::fmt;

use svr_netsim::SimTime;
use svr_platform::server::UserProfile;

use crate::config::{policy_label, WorldConfig};
use crate::fact::{digest_fact, order_facts, Fact, FactPayload, DIGEST_SEED};
use crate::pool::step_shards;
use crate::shard::{spawn_spot, RoomShard};

/// Aggregate world counters, accumulated across ticks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorldStats {
    /// Avatar messages residents injected.
    pub messages: u64,
    /// Portal hops committed.
    pub hops: u64,
    /// World transfers committed.
    pub transfers: u64,
    /// Presence facts committed (sent through a gateway).
    pub presence_sent: u64,
    /// Presence facts that reached a resident recipient.
    pub presence_delivered: u64,
    /// Presence facts whose recipient was mid-hop or unknown.
    pub presence_dropped: u64,
    /// Discrete network events processed across all shards.
    pub sim_events: u64,
    /// Packets delivered end-to-end across all shards.
    pub sim_packets: u64,
    /// Running FNV-1a digest of the committed fact stream; equal at any
    /// worker count.
    pub fact_digest: u64,
}

/// A sharded world mid-run.
pub struct World {
    cfg: WorldConfig,
    shards: Vec<RoomShard>,
    user_room: BTreeMap<u32, u32>,
    tick: u64,
    /// Aggregate counters so far.
    pub stats: WorldStats,
}

impl World {
    /// Build the world: one shard per room, densely populated.
    pub fn new(cfg: WorldConfig) -> World {
        let cfg = cfg.validated();
        let mut shards: Vec<RoomShard> =
            (0..cfg.rooms as u32).map(|r| RoomShard::new(r, &cfg)).collect();
        let mut user_room = BTreeMap::new();
        for u in 0..cfg.total_users() as u32 {
            let room = u / cfg.users_per_room as u32;
            let profile = UserProfile { user_id: u, position: spawn_spot(u), heading_deg: 0.0 };
            shards[room as usize].admit(&profile, SimTime::ZERO);
            user_room.insert(u, room);
        }
        let stats = WorldStats { fact_digest: DIGEST_SEED, ..WorldStats::default() };
        World { cfg, shards, user_room, tick: 0, stats }
    }

    /// The validated configuration this world runs under.
    pub fn cfg(&self) -> &WorldConfig {
        &self.cfg
    }

    /// Which room each user currently occupies.
    pub fn user_room(&self) -> &BTreeMap<u32, u32> {
        &self.user_room
    }

    /// The shards, in room order.
    pub fn shards(&self) -> &[RoomShard] {
        &self.shards
    }

    /// Advance one commit window: dispatch every shard in parallel,
    /// then commit the combined cross-shard facts in `(time, shard,
    /// seq)` order. Returns the committed facts, in commit order.
    pub fn tick(&mut self) -> Vec<Fact> {
        let t0 = SimTime::ZERO + self.cfg.window() * self.tick;
        let shards = std::mem::take(&mut self.shards);
        let (shards, outputs) = step_shards(shards, self.tick, t0, &self.cfg);
        self.shards = shards;

        let mut facts = Vec::new();
        for out in outputs {
            self.stats.messages += out.messages;
            self.stats.sim_events += out.events;
            self.stats.sim_packets += out.packets;
            facts.extend(out.facts);
        }
        order_facts(&mut facts);
        for fact in &facts {
            self.stats.fact_digest = digest_fact(self.stats.fact_digest, fact);
            self.commit(fact);
        }
        self.tick += 1;
        facts
    }

    /// Apply one fact. Runs on the coordinator only, in commit order.
    fn commit(&mut self, fact: &Fact) {
        match &fact.payload {
            FactPayload::PortalHop { profile, to_room } => {
                self.shards[*to_room as usize].admit(profile, fact.time);
                self.user_room.insert(profile.user_id, *to_room);
                self.stats.hops += 1;
            }
            FactPayload::WorldTransfer { profile, to_room } => {
                self.shards[*to_room as usize].admit(profile, fact.time);
                self.user_room.insert(profile.user_id, *to_room);
                self.stats.transfers += 1;
            }
            FactPayload::Presence { from_user, to_user } => {
                self.stats.presence_sent += 1;
                let delivered = self
                    .user_room
                    .get(to_user)
                    .copied()
                    .map(|room| self.shards[room as usize].deliver_presence(*from_user, *to_user))
                    .unwrap_or(false);
                if delivered {
                    self.stats.presence_delivered += 1;
                } else {
                    self.stats.presence_dropped += 1;
                }
            }
        }
    }

    /// Run `cfg.ticks` windows and summarize.
    pub fn run(cfg: WorldConfig) -> WorldReport {
        let mut world = World::new(cfg);
        let mut per_tick_facts = Vec::with_capacity(world.cfg.ticks as usize);
        for _ in 0..world.cfg.ticks {
            per_tick_facts.push(world.tick().len() as u64);
        }
        let forwards = world.shards.iter().map(|s| s.server_stats().forwards).sum();
        let client_rx = world.shards.iter().map(|s| s.stats.client_rx).sum();
        WorldReport {
            policy: policy_label(world.cfg.policy),
            rooms: world.cfg.rooms,
            users_per_room: world.cfg.users_per_room,
            worlds: world.cfg.worlds,
            ticks: world.cfg.ticks,
            stats: world.stats,
            forwards,
            client_rx,
            per_tick_facts,
        }
    }
}

/// Deterministic summary of a finished world run (no wall-clock fields;
/// benches time [`World::run`] themselves).
#[derive(Debug, Clone, PartialEq)]
pub struct WorldReport {
    /// Forwarding policy label.
    pub policy: &'static str,
    /// Room shard count.
    pub rooms: usize,
    /// Initial residents per room.
    pub users_per_room: usize,
    /// World group count.
    pub worlds: usize,
    /// Commit windows run.
    pub ticks: u64,
    /// Aggregate counters.
    pub stats: WorldStats,
    /// Messages the shard servers fanned out to receivers.
    pub forwards: u64,
    /// Packets delivered to client nodes across all shards.
    pub client_rx: u64,
    /// Committed fact count per tick.
    pub per_tick_facts: Vec<u64>,
}

impl WorldReport {
    /// Total users in the world.
    pub fn users(&self) -> usize {
        self.rooms * self.users_per_room
    }
}

impl fmt::Display for WorldReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "world: {} rooms x {} users ({} groups), policy {}, {} ticks",
            self.rooms, self.users_per_room, self.worlds, self.policy, self.ticks
        )?;
        writeln!(
            f,
            "  hops {}  transfers {}  presence {}/{} delivered  msgs {}  forwards {}",
            self.stats.hops,
            self.stats.transfers,
            self.stats.presence_delivered,
            self.stats.presence_sent,
            self.stats.messages,
            self.forwards,
        )?;
        writeln!(f, "  fact digest {:016x}", self.stats.fact_digest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_collect(cfg: WorldConfig) -> (Vec<Vec<Fact>>, WorldStats, BTreeMap<u32, u32>) {
        let mut world = World::new(cfg);
        let mut ticks = Vec::new();
        for _ in 0..world.cfg().ticks {
            ticks.push(world.tick());
        }
        let rooms = world.user_room().clone();
        (ticks, world.stats, rooms)
    }

    /// The tentpole invariant: the shard-parallel commit order equals
    /// the single-threaded reference, fact for fact, at any job count.
    #[test]
    fn parallel_commit_matches_single_threaded_reference() {
        let mut reference = WorldConfig::small(42);
        reference.jobs = 1;
        let (ref_ticks, ref_stats, ref_rooms) = run_collect(reference);

        for jobs in [2, 4, 7] {
            let mut cfg = WorldConfig::small(42);
            cfg.jobs = jobs;
            let (ticks, stats, rooms) = run_collect(cfg);
            assert_eq!(ticks, ref_ticks, "fact streams diverged at jobs={jobs}");
            assert_eq!(stats, ref_stats, "stats diverged at jobs={jobs}");
            assert_eq!(rooms, ref_rooms, "placement diverged at jobs={jobs}");
        }
    }

    #[test]
    fn population_is_conserved_and_users_move() {
        let cfg = WorldConfig::small(9);
        let total = cfg.total_users();
        let mut world = World::new(cfg);
        for _ in 0..world.cfg().ticks {
            world.tick();
        }
        // Every user lives in exactly one shard, and the map agrees.
        let mut seen = 0usize;
        for shard in world.shards() {
            for u in shard.resident_ids() {
                assert_eq!(world.user_room()[&u], shard.room);
                seen += 1;
            }
        }
        assert_eq!(seen, total);
        assert!(world.stats.hops > 0);
        assert!(world.stats.transfers > 0);
        assert!(world.stats.presence_sent > 0);
        assert!(world.stats.presence_delivered > 0);
        assert_eq!(
            world.stats.presence_sent,
            world.stats.presence_delivered + world.stats.presence_dropped
        );
    }

    #[test]
    fn transfers_respawn_while_hops_carry_position() {
        let cfg = WorldConfig::small(5);
        let mut world = World::new(cfg);
        let mut saw_hop = false;
        let mut saw_transfer = false;
        for _ in 0..world.cfg().ticks {
            for fact in world.tick() {
                match fact.payload {
                    FactPayload::WorldTransfer { profile, .. } => {
                        saw_transfer = true;
                        assert_eq!(profile.position, spawn_spot(profile.user_id));
                        assert_eq!(profile.heading_deg, 0.0);
                    }
                    FactPayload::PortalHop { profile, .. } => {
                        saw_hop = true;
                        // Hops carry the live server-side avatar state
                        // verbatim — never the respawn reset transfers
                        // apply.
                        assert!(profile.user_id < world.cfg().total_users() as u32);
                    }
                    FactPayload::Presence { .. } => {}
                }
            }
        }
        assert!(saw_hop && saw_transfer);
    }

    #[test]
    fn report_summarizes_the_run() {
        let rep = World::run(WorldConfig::quick(3, svr_platform::ForwardPolicy::Direct));
        assert_eq!(rep.policy, "direct");
        assert_eq!(rep.users(), rep.rooms * rep.users_per_room);
        assert_eq!(rep.per_tick_facts.len(), rep.ticks as usize);
        assert!(rep.stats.messages > 0);
        assert!(rep.forwards > 0, "direct forwarding fans out within rooms");
        let text = format!("{rep}");
        assert!(text.contains("fact digest"));
    }
}
