//! DNS-style name resolution for the platform services.
//!
//! §4.2 distinguishes anycast from "abusing DNS" (geo-DNS returning
//! different A records per resolver): an anycast service hands every
//! client the *same* address, while a DNS-balanced one hands out
//! different per-region addresses. This module resolves the synthetic
//! hostnames of [`crate::pools::ServerPool`]s both ways, so experiments
//! can show the two mechanisms are distinguishable from the client side.

use crate::pools::{Addressing, ServerPool};
use crate::sites::Site;
use crate::whois::{anycast_ip, server_ip};
use std::net::Ipv4Addr;

/// A resolved record set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resolution {
    /// Query name.
    pub name: String,
    /// A records returned to this resolver.
    pub addresses: Vec<Ipv4Addr>,
    /// Record TTL in seconds (anycast services use long TTLs; geo-DNS
    /// keeps them short to steer traffic).
    pub ttl_s: u32,
}

/// Resolve a pool's service name from a resolver located at `vantage`.
///
/// * Anycast pools return the single global address with a long TTL.
/// * Unicast pools return the per-instance addresses of their one site,
///   shuffled ordering left to clients, with a short TTL (the DNS
///   load-balancing the paper's platforms use for their control planes).
pub fn resolve(pool: &ServerPool, vantage: Site) -> Resolution {
    match &pool.addressing {
        Addressing::Anycast(_) => Resolution {
            name: format!("{}.anycast", pool.service),
            addresses: vec![anycast_ip(pool.owner, 0)],
            ttl_s: 3_600,
        },
        Addressing::Unicast(site) => {
            let addresses = (0..pool.instances_per_site)
                .map(|i| server_ip(pool.owner, *site, i))
                .collect();
            let _ = vantage; // unicast answers are resolver-independent
            Resolution { name: format!("{}.geo", pool.service), addresses, ttl_s: 60 }
        }
    }
}

/// The client-side discriminator: query from several vantages and check
/// whether the answers differ. Anycast answers never differ; the *paths*
/// differ instead (see [`crate::detect`]).
pub fn answers_differ_across_vantages(pool: &ServerPool, vantages: &[Site]) -> bool {
    let mut first: Option<Vec<Ipv4Addr>> = None;
    for v in vantages {
        let r = resolve(pool, *v);
        match &first {
            None => first = Some(r.addresses),
            Some(f) => {
                if *f != r.addresses {
                    return true;
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::whois::Owner;

    #[test]
    fn anycast_resolves_to_one_global_address() {
        let pool = ServerPool::anycast(Owner::Cloudflare, "rr-data", Site::anycast_global());
        let east = resolve(&pool, Site::FairfaxVa);
        let europe = resolve(&pool, Site::London);
        assert_eq!(east.addresses, europe.addresses);
        assert_eq!(east.addresses.len(), 1);
        assert!(east.ttl_s >= 3_600, "anycast records are stable");
    }

    #[test]
    fn unicast_resolves_to_load_balanced_instances() {
        let pool = ServerPool::unicast(Owner::Aws, "vrchat-ctl", Site::AshburnVa);
        let r = resolve(&pool, Site::FairfaxVa);
        assert_eq!(r.addresses.len(), pool.instances_per_site as usize);
        let unique: std::collections::HashSet<_> = r.addresses.iter().collect();
        assert_eq!(unique.len(), r.addresses.len(), "distinct instances");
        assert!(r.ttl_s <= 300, "short TTL for DNS balancing");
    }

    #[test]
    fn neither_mechanism_varies_answers_by_vantage() {
        // The paper's point: anycast is not geo-DNS. Our unicast pools are
        // single-region too, so neither varies — path divergence (detect
        // module) is the only anycast fingerprint.
        let vantages = [Site::FairfaxVa, Site::LosAngeles, Site::London];
        let any = ServerPool::anycast(Owner::Cloudflare, "x", Site::anycast_global());
        let uni = ServerPool::unicast(Owner::Meta, "y", Site::AshburnVa);
        assert!(!answers_differ_across_vantages(&any, &vantages));
        assert!(!answers_differ_across_vantages(&uni, &vantages));
    }
}
