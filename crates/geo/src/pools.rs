//! Per-platform server pools and user→server assignment.
//!
//! Table 2's infrastructure findings come from which pool a platform uses
//! for each channel: a unicast pool pins every user to one datacenter
//! (AltspaceVR/Hubs data channels on the US west coast), while an anycast
//! pool serves each user from the nearest PoP (Rec Room, VRChat data;
//! AltspaceVR control). Pools also model the load-balancing the paper
//! observed: most platforms assign two co-located users to *different*
//! server instances; only AltspaceVR and Hubs' RTP pin both users to the
//! same machine.

use crate::coords::rtt_between;
use crate::sites::Site;
use crate::whois::{anycast_ip, server_hostname, server_ip, Owner};
use std::net::Ipv4Addr;
use svr_netsim::SimDuration;

/// How a pool is addressed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Addressing {
    /// One fixed datacenter; all users connect there.
    Unicast(Site),
    /// The same IP announced from many PoPs; routing picks the nearest.
    Anycast(Vec<Site>),
}

/// A pool of interchangeable server instances for one (platform, channel).
#[derive(Debug, Clone)]
pub struct ServerPool {
    /// Operator of the machines (WHOIS answer).
    pub owner: Owner,
    /// Service label used in hostnames.
    pub service: &'static str,
    /// Addressing scheme.
    pub addressing: Addressing,
    /// Load-balanced instances per site.
    pub instances_per_site: u8,
    /// If true, every user gets the same instance (AltspaceVR; Hubs RTP).
    /// Otherwise users are spread across instances.
    pub sticky: bool,
}

/// The server a user was assigned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    /// Site actually serving the user.
    pub site: Site,
    /// Instance index within the site.
    pub instance: u8,
    /// Address the client connects to.
    pub ip: Ipv4Addr,
    /// Synthetic hostname.
    pub hostname: String,
    /// Whether the address is anycast.
    pub anycast: bool,
}

impl ServerPool {
    /// A unicast pool.
    pub fn unicast(owner: Owner, service: &'static str, site: Site) -> Self {
        ServerPool {
            owner,
            service,
            addressing: Addressing::Unicast(site),
            instances_per_site: 4,
            sticky: false,
        }
    }

    /// An anycast pool over the given PoPs.
    pub fn anycast(owner: Owner, service: &'static str, pops: Vec<Site>) -> Self {
        assert!(!pops.is_empty(), "anycast pool needs PoPs");
        ServerPool {
            owner,
            service,
            addressing: Addressing::Anycast(pops),
            instances_per_site: 4,
            sticky: false,
        }
    }

    /// Make the pool assign the same instance to every user.
    pub fn with_sticky(mut self) -> Self {
        self.sticky = true;
        self
    }

    /// The site that would serve a user at `vantage`: the unicast site,
    /// or the nearest anycast PoP by modelled RTT.
    pub fn serving_site(&self, vantage: Site) -> Site {
        match &self.addressing {
            Addressing::Unicast(site) => *site,
            Addressing::Anycast(pops) => *pops
                .iter()
                .min_by(|a, b| {
                    rtt_between(vantage.point(), a.point())
                        .cmp(&rtt_between(vantage.point(), b.point()))
                })
                .expect("non-empty"),
        }
    }

    /// Whether the pool uses anycast addressing.
    pub fn is_anycast(&self) -> bool {
        matches!(self.addressing, Addressing::Anycast(_))
    }

    /// Assign a server to user number `user_idx` located at `vantage`.
    pub fn assign(&self, vantage: Site, user_idx: u32) -> Assignment {
        let site = self.serving_site(vantage);
        let instance = if self.sticky {
            0
        } else {
            (user_idx % self.instances_per_site.max(1) as u32) as u8
        };
        let (ip, anycast) = match &self.addressing {
            Addressing::Unicast(_) => (server_ip(self.owner, site, instance), false),
            Addressing::Anycast(_) => (anycast_ip(self.owner, instance), true),
        };
        Assignment {
            site,
            instance,
            ip,
            hostname: server_hostname(self.owner, self.service, site, instance),
            anycast,
        }
    }

    /// Modelled RTT from a vantage to this pool (to the serving site).
    pub fn rtt_from(&self, vantage: Site) -> SimDuration {
        rtt_between(vantage.point(), self.serving_site(vantage).point())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unicast_always_serves_from_fixed_site() {
        let pool = ServerPool::unicast(Owner::Aws, "hubs-webrtc", Site::SanJose);
        for v in [Site::FairfaxVa, Site::LosAngeles, Site::London] {
            assert_eq!(pool.serving_site(v), Site::SanJose);
        }
        // Europe pays ~140 ms to a west-coast unicast server (§4.2).
        let rtt = pool.rtt_from(Site::London).as_millis_f64();
        assert!(rtt > 120.0, "rtt {rtt}");
    }

    #[test]
    fn anycast_serves_from_nearest_pop() {
        let pool = ServerPool::anycast(Owner::Cloudflare, "recroom-data", Site::anycast_global());
        assert_eq!(pool.serving_site(Site::FairfaxVa), Site::AshburnVa);
        assert_eq!(pool.serving_site(Site::LosAngeles), Site::LosAngeles);
        assert_eq!(pool.serving_site(Site::London), Site::London);
        // Every vantage sees a nearby server (<6 ms), the paper's anycast
        // signature.
        for v in [Site::FairfaxVa, Site::LosAngeles, Site::London] {
            assert!(pool.rtt_from(v).as_millis_f64() < 6.0);
        }
    }

    #[test]
    fn anycast_ip_is_the_same_everywhere() {
        let pool = ServerPool::anycast(Owner::Cloudflare, "vrchat-data", Site::anycast_global());
        let a = pool.assign(Site::FairfaxVa, 0);
        let b = pool.assign(Site::London, 0);
        assert_eq!(a.ip, b.ip, "one IP, many PoPs");
        assert_ne!(a.site, b.site);
        assert!(a.anycast);
    }

    #[test]
    fn load_balancing_spreads_colocated_users() {
        // "Most platforms allocate our two test users ... to two different
        // servers" (§4.2).
        let pool = ServerPool::unicast(Owner::Meta, "oculus-verts", Site::AshburnVa);
        let u1 = pool.assign(Site::FairfaxVa, 0);
        let u2 = pool.assign(Site::FairfaxVa, 1);
        assert_ne!(u1.instance, u2.instance);
        assert_ne!(u1.ip, u2.ip);
    }

    #[test]
    fn sticky_pool_pins_all_users_to_one_instance() {
        // "Only AltspaceVR and Hubs (for RTP/RTCP) consistently assign the
        // same server to both users."
        let pool =
            ServerPool::unicast(Owner::Microsoft, "altspace-data", Site::SanJose).with_sticky();
        let u1 = pool.assign(Site::FairfaxVa, 0);
        let u2 = pool.assign(Site::FairfaxVa, 1);
        assert_eq!(u1.ip, u2.ip);
        assert_eq!(u1.instance, u2.instance);
    }

    #[test]
    fn hostnames_encode_site_and_service() {
        let pool = ServerPool::unicast(Owner::Meta, "oculus-verts", Site::AshburnVa);
        let a = pool.assign(Site::FairfaxVa, 1);
        assert!(a.hostname.starts_with("oculus-verts-shv-01-iad"));
    }
}
