//! Geographic coordinates and the distance-to-RTT model.
//!
//! RTT between two points is modelled as light in fibre (~200 000 km/s)
//! over the great-circle distance, inflated by a path-stretch factor
//! (fibre does not follow geodesics), plus a fixed access/processing
//! overhead. The calibration targets the paper's Table 2 and §4.2
//! numbers: ~2-3 ms to a nearby (same-metro) server, ~72 ms east-coast US
//! to west-coast US, ~140-150 ms Europe to the US west coast.

use svr_netsim::SimDuration;

/// A point on the globe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoPoint {
    /// Latitude in degrees (+N).
    pub lat: f64,
    /// Longitude in degrees (+E).
    pub lon: f64,
}

impl GeoPoint {
    /// Construct from degrees.
    pub const fn new(lat: f64, lon: f64) -> Self {
        GeoPoint { lat, lon }
    }
}

/// Mean Earth radius in km.
const EARTH_RADIUS_KM: f64 = 6_371.0;
/// Signal speed in fibre, km/s (≈ 2/3 c).
const FIBRE_KM_PER_S: f64 = 200_000.0;
/// Path-stretch factor: real fibre routes are longer than geodesics.
const PATH_INFLATION: f64 = 1.8;
/// Fixed overhead per RTT: access network, serialization, server stack.
const BASE_RTT_MS: f64 = 1.9;

/// Great-circle distance in km (haversine).
pub fn distance_km(a: GeoPoint, b: GeoPoint) -> f64 {
    let (lat1, lon1) = (a.lat.to_radians(), a.lon.to_radians());
    let (lat2, lon2) = (b.lat.to_radians(), b.lon.to_radians());
    let dlat = lat2 - lat1;
    let dlon = lon2 - lon1;
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_KM * h.sqrt().asin()
}

/// Modelled round-trip time between two points.
pub fn rtt_between(a: GeoPoint, b: GeoPoint) -> SimDuration {
    let d = distance_km(a, b);
    let ms = BASE_RTT_MS + 2.0 * d * PATH_INFLATION / FIBRE_KM_PER_S * 1_000.0;
    SimDuration::from_millis_f64(ms)
}

/// One-way propagation delay between two points (half the RTT).
pub fn one_way_between(a: GeoPoint, b: GeoPoint) -> SimDuration {
    rtt_between(a, b) / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sites::Site;

    #[test]
    fn distance_known_pairs() {
        // Washington DC ↔ Los Angeles ≈ 3700 km.
        let dc = GeoPoint::new(38.9, -77.0);
        let la = GeoPoint::new(34.05, -118.24);
        let d = distance_km(dc, la);
        assert!((d - 3_700.0).abs() < 100.0, "DC-LA {d} km");
        // London ↔ New York ≈ 5570 km.
        let lon = GeoPoint::new(51.5, -0.13);
        let nyc = GeoPoint::new(40.7, -74.0);
        let d2 = distance_km(lon, nyc);
        assert!((d2 - 5_570.0).abs() < 100.0, "LON-NYC {d2} km");
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = GeoPoint::new(38.9, -77.0);
        let b = GeoPoint::new(34.05, -118.24);
        assert!((distance_km(a, b) - distance_km(b, a)).abs() < 1e-9);
        assert!(distance_km(a, a) < 1e-9);
    }

    #[test]
    fn rtt_calibration_east_to_west_us() {
        // Paper: AltspaceVR/Hubs data servers on the west coast measured
        // ~72-74 ms from the east coast.
        let east = Site::FairfaxVa.point();
        let west = Site::LosAngeles.point();
        let rtt = rtt_between(east, west).as_millis_f64();
        assert!((60.0..85.0).contains(&rtt), "east-west US RTT {rtt} ms");
    }

    #[test]
    fn rtt_calibration_europe_to_west_us() {
        // Paper §4.2: ~140-150 ms from the UK to US-west servers.
        let uk = Site::London.point();
        let west = Site::LosAngeles.point();
        let rtt = rtt_between(uk, west).as_millis_f64();
        assert!((125.0..165.0).contains(&rtt), "UK-west US RTT {rtt} ms");
    }

    #[test]
    fn rtt_nearby_server_is_a_few_ms() {
        // Paper: nearby east-coast servers at 2-3 ms.
        let gmu = Site::FairfaxVa.point();
        let ashburn = Site::AshburnVa.point();
        let rtt = rtt_between(gmu, ashburn).as_millis_f64();
        assert!((1.5..4.0).contains(&rtt), "metro RTT {rtt} ms");
    }

    /// Deterministic seeded-loop fallbacks for the proptest versions below:
    /// always compiled, so the properties stay covered offline.
    #[test]
    fn prop_distance_nonnegative_and_bounded_seeded() {
        let mut rng = svr_netsim::SimRng::seed_from_u64(0x6E0_0001);
        for _case in 0..256 {
            let p1 = GeoPoint::new(rng.range_f64(-90.0, 90.0), rng.range_f64(-180.0, 180.0));
            let p2 = GeoPoint::new(rng.range_f64(-90.0, 90.0), rng.range_f64(-180.0, 180.0));
            let d = distance_km(p1, p2);
            assert!(d >= 0.0);
            // No two points are farther apart than half the circumference.
            assert!(d <= std::f64::consts::PI * 6_371.0 + 1.0);
        }
    }

    #[test]
    fn prop_rtt_monotone_with_identity_seeded() {
        let mut rng = svr_netsim::SimRng::seed_from_u64(0x6E0_0002);
        for _case in 0..256 {
            let lat = rng.range_f64(-80.0, 80.0);
            let lon = rng.range_f64(-170.0, 170.0);
            let a = GeoPoint::new(lat, lon);
            let near = GeoPoint::new(lat + 0.5, lon);
            let far = GeoPoint::new(lat + 8.0, lon);
            assert!(rtt_between(a, near) <= rtt_between(a, far));
            assert!(rtt_between(a, a).as_millis_f64() >= 1.0);
        }
    }

    #[cfg(feature = "proptests")]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prop_distance_nonnegative_and_bounded(
                lat1 in -90.0f64..90.0, lon1 in -180.0f64..180.0,
                lat2 in -90.0f64..90.0, lon2 in -180.0f64..180.0,
            ) {
                let d = distance_km(GeoPoint::new(lat1, lon1), GeoPoint::new(lat2, lon2));
                prop_assert!(d >= 0.0);
                // No two points are farther apart than half the circumference.
                prop_assert!(d <= std::f64::consts::PI * 6_371.0 + 1.0);
            }

            #[test]
            fn prop_rtt_monotone_with_identity(
                lat in -80.0f64..80.0, lon in -170.0f64..170.0,
            ) {
                let a = GeoPoint::new(lat, lon);
                let near = GeoPoint::new(lat + 0.5, lon);
                let far = GeoPoint::new(lat + 8.0, lon);
                prop_assert!(rtt_between(a, near) <= rtt_between(a, far));
                prop_assert!(rtt_between(a, a).as_millis_f64() >= 1.0);
            }
        }
    }
}
