//! # svr-geo
//!
//! A geographic model of the Internet infrastructure behind the five
//! social VR platforms, reproducing the §4.2 methodology of the paper:
//!
//! * [`coords`] — great-circle distances and a calibrated
//!   distance-to-RTT model (speed of light in fibre plus path inflation);
//! * [`sites`] — the vantage points and datacenter locations that matter
//!   to the study (US east/west coasts, Europe, the Middle East);
//! * [`pools`] — per-platform server pools with unicast or anycast
//!   addressing and load-balanced instance assignment;
//! * [`mod@traceroute`] — synthetic forward paths (access → metro →
//!   backbone → PoP edge → server) with per-hop RTTs;
//! * [`detect`] — the paper's anycast-detection algorithm: compare RTTs
//!   from three vantage points and the IP paths right before the target;
//! * [`whois`] — prefix-to-owner lookup ("rent servers from Cloudflare /
//!   AWS / ANS", Table 2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coords;
pub mod detect;
pub mod dns;
pub mod pools;
pub mod sites;
pub mod traceroute;
pub mod whois;

pub use coords::{distance_km, rtt_between, GeoPoint};
pub use detect::{detect_anycast, AnycastVerdict};
pub use dns::{resolve, Resolution};
pub use pools::{Addressing, Assignment, ServerPool};
pub use sites::{Region, Site, SiteId};
pub use traceroute::{traceroute, Hop, TraceResult};
pub use whois::{Owner, WhoisDb};
