//! Named locations: measurement vantage points and datacenter sites.
//!
//! The paper measures from three vantage points — the US east coast
//! (a university campus in northern Virginia), Los Angeles, and the
//! United Kingdom — plus a Middle East traceroute source, against
//! platform servers in eastern/western US datacenters and anycast PoPs
//! worldwide.

use crate::coords::GeoPoint;
use std::fmt;

/// Coarse world region, used in reports ("Western U.S.", "Eastern U.S.").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// Eastern United States.
    EasternUs,
    /// Western United States.
    WesternUs,
    /// Europe.
    Europe,
    /// Middle East.
    MiddleEast,
    /// Asia-Pacific.
    AsiaPacific,
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Region::EasternUs => write!(f, "Eastern U.S."),
            Region::WesternUs => write!(f, "Western U.S."),
            Region::Europe => write!(f, "Europe"),
            Region::MiddleEast => write!(f, "Middle East"),
            Region::AsiaPacific => write!(f, "Asia-Pacific"),
        }
    }
}

/// A specific site (vantage point or datacenter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Site {
    // --- vantage points ---
    /// The paper's primary testbed: a campus on the US east coast.
    FairfaxVa,
    /// Western-US vantage (§4.2 extra experiments).
    LosAngeles,
    /// European vantage (§4.2 extra experiments).
    London,
    /// Middle East traceroute source.
    Manama,
    // --- datacenter sites ---
    /// Northern Virginia datacenter alley ("iad" in Worlds' hostnames).
    AshburnVa,
    /// Silicon Valley datacenters.
    SanJose,
    /// Pacific Northwest (Microsoft Azure West).
    Quincy,
    /// Oregon (AWS us-west-2).
    Portland,
    /// European datacenter (AWS eu-west / LDN PoPs).
    Dublin,
    /// Frankfurt PoP.
    Frankfurt,
    /// Singapore PoP.
    Singapore,
    /// Tokyo PoP.
    Tokyo,
}

/// Identifier alias used by pool assignment tables.
pub type SiteId = Site;

impl Site {
    /// Geographic position.
    pub fn point(self) -> GeoPoint {
        match self {
            Site::FairfaxVa => GeoPoint::new(38.83, -77.31),
            Site::LosAngeles => GeoPoint::new(34.05, -118.24),
            Site::London => GeoPoint::new(51.51, -0.13),
            Site::Manama => GeoPoint::new(26.23, 50.59),
            Site::AshburnVa => GeoPoint::new(39.04, -77.49),
            Site::SanJose => GeoPoint::new(37.34, -121.89),
            Site::Quincy => GeoPoint::new(47.23, -119.85),
            Site::Portland => GeoPoint::new(45.52, -122.68),
            Site::Dublin => GeoPoint::new(53.35, -6.26),
            Site::Frankfurt => GeoPoint::new(50.11, 8.68),
            Site::Singapore => GeoPoint::new(1.35, 103.82),
            Site::Tokyo => GeoPoint::new(35.68, 139.69),
        }
    }

    /// The coarse region a site belongs to.
    pub fn region(self) -> Region {
        match self {
            Site::FairfaxVa | Site::AshburnVa => Region::EasternUs,
            Site::LosAngeles | Site::SanJose | Site::Quincy | Site::Portland => Region::WesternUs,
            Site::London | Site::Dublin | Site::Frankfurt => Region::Europe,
            Site::Manama => Region::MiddleEast,
            Site::Singapore | Site::Tokyo => Region::AsiaPacific,
        }
    }

    /// Short code used in synthetic hostnames and IPs ("iad", "sjc", ...).
    pub fn code(self) -> &'static str {
        match self {
            Site::FairfaxVa => "ffx",
            Site::LosAngeles => "lax",
            Site::London => "lhr",
            Site::Manama => "bah",
            Site::AshburnVa => "iad",
            Site::SanJose => "sjc",
            Site::Quincy => "mwh",
            Site::Portland => "pdx",
            Site::Dublin => "dub",
            Site::Frankfurt => "fra",
            Site::Singapore => "sin",
            Site::Tokyo => "nrt",
        }
    }

    /// All datacenter sites (candidate anycast PoPs).
    pub fn datacenters() -> &'static [Site] {
        &[
            Site::AshburnVa,
            Site::SanJose,
            Site::Quincy,
            Site::Portland,
            Site::Dublin,
            Site::Frankfurt,
            Site::Singapore,
            Site::Tokyo,
        ]
    }

    /// A global anycast footprint, as deployed by CDNs like Cloudflare:
    /// PoPs in every major metro, including the study's vantage cities
    /// (which is why anycast RTTs are a few ms from everywhere).
    pub fn anycast_global() -> Vec<Site> {
        vec![
            Site::AshburnVa,
            Site::SanJose,
            Site::LosAngeles,
            Site::Dublin,
            Site::London,
            Site::Frankfurt,
            Site::Singapore,
        ]
    }
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coords::rtt_between;

    #[test]
    fn regions_are_consistent() {
        assert_eq!(Site::FairfaxVa.region(), Region::EasternUs);
        assert_eq!(Site::SanJose.region(), Region::WesternUs);
        assert_eq!(Site::Dublin.region(), Region::Europe);
        assert_eq!(Site::Manama.region(), Region::MiddleEast);
        assert_eq!(Site::Tokyo.region(), Region::AsiaPacific);
    }

    #[test]
    fn codes_are_unique() {
        let all = [
            Site::FairfaxVa,
            Site::LosAngeles,
            Site::London,
            Site::Manama,
            Site::AshburnVa,
            Site::SanJose,
            Site::Quincy,
            Site::Portland,
            Site::Dublin,
            Site::Frankfurt,
            Site::Singapore,
            Site::Tokyo,
        ];
        let mut codes: Vec<&str> = all.iter().map(|s| s.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), all.len());
    }

    #[test]
    fn east_coast_vantage_is_near_ashburn() {
        // The paper's east-coast experiments see <3 ms to nearby servers.
        let rtt = rtt_between(Site::FairfaxVa.point(), Site::AshburnVa.point());
        assert!(rtt.as_millis_f64() < 4.0, "{rtt}");
    }

    #[test]
    fn anycast_footprint_covers_regions() {
        let pops = Site::anycast_global();
        let regions: std::collections::HashSet<Region> =
            pops.iter().map(|p| p.region()).collect();
        assert!(regions.contains(&Region::EasternUs));
        assert!(regions.contains(&Region::WesternUs));
        assert!(regions.contains(&Region::Europe));
    }

    #[test]
    fn display_uses_codes() {
        assert_eq!(Site::AshburnVa.to_string(), "iad");
        assert_eq!(Region::WesternUs.to_string(), "Western U.S.");
    }
}
