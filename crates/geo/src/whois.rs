//! Synthetic IP addressing and WHOIS ownership.
//!
//! §4.2 uses WHOIS data to attribute servers to their operators: Microsoft
//! (AltspaceVR), Meta (Worlds), AWS (Hubs, VRChat control), Cloudflare
//! (Rec Room/VRChat data), and ANS (Rec Room control). We synthesise
//! stable IPv4 addresses per (owner, site, instance) and a prefix table
//! that maps them back to owners.

use crate::sites::Site;
use std::fmt;
use std::net::Ipv4Addr;

/// Server operators seen in the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Owner {
    /// Microsoft (AltspaceVR).
    Microsoft,
    /// Meta (Horizon Worlds).
    Meta,
    /// Amazon Web Services (Mozilla Hubs; VRChat control channel).
    Aws,
    /// Cloudflare (Rec Room & VRChat data channels).
    Cloudflare,
    /// Advanced Network & Services (Rec Room control channel).
    Ans,
    /// Mozilla (used for private-Hubs deployments on AWS; kept distinct
    /// for reporting).
    Mozilla,
}

impl Owner {
    /// The /8 prefix this owner's synthetic addresses live in.
    pub fn prefix(self) -> u8 {
        match self {
            Owner::Microsoft => 13,
            Owner::Meta => 31,
            Owner::Aws => 52,
            Owner::Cloudflare => 104,
            Owner::Ans => 198,
            Owner::Mozilla => 44,
        }
    }

    /// Organisation string as WHOIS would print it.
    pub fn org(self) -> &'static str {
        match self {
            Owner::Microsoft => "Microsoft Corporation",
            Owner::Meta => "Meta Platforms, Inc.",
            Owner::Aws => "Amazon Web Services",
            Owner::Cloudflare => "Cloudflare, Inc.",
            Owner::Ans => "Advanced Network & Services",
            Owner::Mozilla => "Mozilla Corporation",
        }
    }
}

impl fmt::Display for Owner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Owner::Microsoft => write!(f, "Microsoft"),
            Owner::Meta => write!(f, "Meta"),
            Owner::Aws => write!(f, "AWS"),
            Owner::Cloudflare => write!(f, "Cloudflare"),
            Owner::Ans => write!(f, "ANS"),
            Owner::Mozilla => write!(f, "Mozilla"),
        }
    }
}

fn site_octet(site: Site) -> u8 {
    match site {
        Site::FairfaxVa => 10,
        Site::LosAngeles => 20,
        Site::London => 30,
        Site::Manama => 40,
        Site::AshburnVa => 50,
        Site::SanJose => 60,
        Site::Quincy => 70,
        Site::Portland => 80,
        Site::Dublin => 90,
        Site::Frankfurt => 100,
        Site::Singapore => 110,
        Site::Tokyo => 120,
    }
}

/// Deterministic synthetic address of a server instance.
pub fn server_ip(owner: Owner, site: Site, instance: u8) -> Ipv4Addr {
    Ipv4Addr::new(owner.prefix(), site_octet(site), instance, 1)
}

/// The anycast address of an owner's service: the same IP regardless of
/// which PoP answers (that is the point of anycast).
pub fn anycast_ip(owner: Owner, service: u8) -> Ipv4Addr {
    Ipv4Addr::new(owner.prefix(), 255, service, 1)
}

/// A synthetic hostname in the style the paper quotes
/// ("oculus-verts-shv-01-iad3.facebook.com").
pub fn server_hostname(owner: Owner, service: &str, site: Site, instance: u8) -> String {
    let domain = match owner {
        Owner::Microsoft => "cloudapp.azure.com",
        Owner::Meta => "facebook.com",
        Owner::Aws => "compute.amazonaws.com",
        Owner::Cloudflare => "cloudflare.net",
        Owner::Ans => "anscorporate.net",
        Owner::Mozilla => "myhubs.net",
    };
    format!("{service}-shv-{instance:02}-{}.{domain}", site.code())
}

/// Prefix table mapping addresses back to operators.
#[derive(Debug, Clone, Default)]
pub struct WhoisDb;

impl WhoisDb {
    /// Create the standard table.
    pub fn new() -> Self {
        WhoisDb
    }

    /// Look up the owner of an address.
    pub fn lookup(&self, ip: Ipv4Addr) -> Option<Owner> {
        match ip.octets()[0] {
            13 => Some(Owner::Microsoft),
            31 => Some(Owner::Meta),
            52 => Some(Owner::Aws),
            104 => Some(Owner::Cloudflare),
            198 => Some(Owner::Ans),
            44 => Some(Owner::Mozilla),
            _ => None,
        }
    }

    /// MaxMind-style geolocation of a *unicast* address. Anycast addresses
    /// return `None` — geolocating them is meaningless, which is why the
    /// paper marks anycast locations "–" in Table 2.
    pub fn geolocate(&self, ip: Ipv4Addr) -> Option<Site> {
        let o = ip.octets();
        if o[1] == 255 {
            return None; // anycast block
        }
        match o[1] {
            10 => Some(Site::FairfaxVa),
            20 => Some(Site::LosAngeles),
            30 => Some(Site::London),
            40 => Some(Site::Manama),
            50 => Some(Site::AshburnVa),
            60 => Some(Site::SanJose),
            70 => Some(Site::Quincy),
            80 => Some(Site::Portland),
            90 => Some(Site::Dublin),
            100 => Some(Site::Frankfurt),
            110 => Some(Site::Singapore),
            120 => Some(Site::Tokyo),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_ips_are_deterministic_and_distinct() {
        let a = server_ip(Owner::Meta, Site::AshburnVa, 1);
        let b = server_ip(Owner::Meta, Site::AshburnVa, 1);
        assert_eq!(a, b);
        assert_ne!(a, server_ip(Owner::Meta, Site::AshburnVa, 2));
        assert_ne!(a, server_ip(Owner::Meta, Site::SanJose, 1));
        assert_ne!(a, server_ip(Owner::Aws, Site::AshburnVa, 1));
    }

    #[test]
    fn whois_roundtrip() {
        let db = WhoisDb::new();
        for owner in [
            Owner::Microsoft,
            Owner::Meta,
            Owner::Aws,
            Owner::Cloudflare,
            Owner::Ans,
            Owner::Mozilla,
        ] {
            let ip = server_ip(owner, Site::SanJose, 3);
            assert_eq!(db.lookup(ip), Some(owner));
        }
        assert_eq!(db.lookup(Ipv4Addr::new(8, 8, 8, 8)), None);
    }

    #[test]
    fn geolocation_of_unicast_works() {
        let db = WhoisDb::new();
        let ip = server_ip(Owner::Aws, Site::Portland, 0);
        assert_eq!(db.geolocate(ip), Some(Site::Portland));
    }

    #[test]
    fn geolocation_of_anycast_is_unknown() {
        // Table 2 marks anycast server locations "–".
        let db = WhoisDb::new();
        let ip = anycast_ip(Owner::Cloudflare, 1);
        assert_eq!(db.geolocate(ip), None);
        assert_eq!(db.lookup(ip), Some(Owner::Cloudflare));
    }

    #[test]
    fn hostname_shape_matches_paper_examples() {
        let h = server_hostname(Owner::Meta, "oculus-verts", Site::AshburnVa, 1);
        assert_eq!(h, "oculus-verts-shv-01-iad.facebook.com");
        assert!(server_hostname(Owner::Aws, "hubs", Site::SanJose, 12).contains("sjc"));
    }

    #[test]
    fn owner_display_and_org() {
        assert_eq!(Owner::Ans.to_string(), "ANS");
        assert!(Owner::Cloudflare.org().contains("Cloudflare"));
    }
}
