//! The paper's anycast-detection algorithm (§4.2).
//!
//! > "We use traceroute to the identified platform servers from three
//! > locations ... Since our machines are located in different places, if
//! > the RTT between them and the platform server is comparable and/or
//! > there is a significant difference in the IP addresses of the hops
//! > right before reaching the platform server, it implies that this
//! > server relies on anycast."
//!
//! [`detect_anycast`] implements exactly that decision rule over
//! [`mod@crate::traceroute`] results, without peeking at the pool's ground
//! truth.

use crate::pools::ServerPool;
use crate::sites::Site;
use crate::traceroute::{traceroute, TraceResult};

/// Outcome of the detection algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct AnycastVerdict {
    /// The algorithm's answer.
    pub is_anycast: bool,
    /// RTTs observed from each vantage, in ms.
    pub rtts_ms: Vec<f64>,
    /// Whether the RTTs were "comparable" (spread below threshold).
    pub rtts_comparable: bool,
    /// Whether penultimate-hop addresses diverged across vantages.
    pub paths_diverge: bool,
}

/// RTT spread (max − min) below which RTTs from distant vantages count as
/// "comparable". Unicast servers show spreads of ≥60 ms between a nearby
/// and a trans-continental vantage; anycast keeps every vantage within a
/// few ms of its local PoP.
pub const COMPARABLE_SPREAD_MS: f64 = 20.0;

/// Run the detection from the standard three vantage points.
pub fn detect_anycast(pool: &ServerPool) -> AnycastVerdict {
    detect_anycast_from(pool, &[Site::FairfaxVa, Site::LosAngeles, Site::Manama])
}

/// Run the detection from arbitrary vantages (needs ≥ 2).
pub fn detect_anycast_from(pool: &ServerPool, vantages: &[Site]) -> AnycastVerdict {
    assert!(vantages.len() >= 2, "need at least two vantage points");
    let traces: Vec<TraceResult> = vantages.iter().map(|v| traceroute(*v, pool)).collect();

    let rtts_ms: Vec<f64> = traces.iter().map(|t| t.final_rtt().as_millis_f64()).collect();
    let max = rtts_ms.iter().cloned().fold(f64::MIN, f64::max);
    let min = rtts_ms.iter().cloned().fold(f64::MAX, f64::min);
    let rtts_comparable = (max - min) < COMPARABLE_SPREAD_MS;

    let penultimates: Vec<_> = traces
        .iter()
        .filter_map(|t| t.penultimate_hop().map(|h| h.ip))
        .collect();
    let paths_diverge =
        penultimates.windows(2).any(|w| w[0] != w[1]) && penultimates.len() == traces.len();

    AnycastVerdict {
        is_anycast: rtts_comparable || paths_diverge,
        rtts_ms,
        rtts_comparable,
        paths_diverge,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::whois::Owner;

    #[test]
    fn anycast_pool_detected() {
        let pool = ServerPool::anycast(Owner::Cloudflare, "rr-data", Site::anycast_global());
        let v = detect_anycast(&pool);
        assert!(v.is_anycast);
        assert!(v.paths_diverge, "different PoPs should show different edges");
        // All vantages see a nearby PoP... except the Middle East, whose
        // nearest PoP is continental; comparability still holds if spreads
        // stay under the threshold, but path divergence alone suffices.
        assert_eq!(v.rtts_ms.len(), 3);
    }

    #[test]
    fn unicast_pool_not_detected() {
        let pool = ServerPool::unicast(Owner::Aws, "hubs-webrtc", Site::SanJose);
        let v = detect_anycast(&pool);
        assert!(!v.is_anycast);
        assert!(!v.rtts_comparable, "east vs west vs ME spreads are large");
        assert!(!v.paths_diverge, "same edge router from everywhere");
    }

    #[test]
    fn unicast_near_one_vantage_still_not_anycast() {
        // An Ashburn unicast server is 2 ms from Fairfax but ~150 ms from
        // Manama: the spread gives it away.
        let pool = ServerPool::unicast(Owner::Meta, "worlds-data", Site::AshburnVa);
        let v = detect_anycast(&pool);
        assert!(!v.is_anycast);
        let spread = v.rtts_ms.iter().cloned().fold(f64::MIN, f64::max)
            - v.rtts_ms.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread > 60.0, "spread {spread}");
    }

    #[test]
    fn two_vantage_detection_also_works() {
        let pool = ServerPool::anycast(Owner::Ans, "rr-ctl", Site::anycast_global());
        let v = detect_anycast_from(&pool, &[Site::FairfaxVa, Site::London]);
        assert!(v.is_anycast);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_vantage_rejected() {
        let pool = ServerPool::anycast(Owner::Ans, "x", Site::anycast_global());
        let _ = detect_anycast_from(&pool, &[Site::FairfaxVa]);
    }

    #[test]
    fn verdict_reports_rtts_per_vantage() {
        let pool = ServerPool::anycast(Owner::Cloudflare, "vrc", Site::anycast_global());
        let v = detect_anycast_from(&pool, &[Site::FairfaxVa, Site::LosAngeles]);
        // Each vantage is near its serving PoP: both RTTs tiny.
        assert!(v.rtts_ms.iter().all(|r| *r < 6.0), "{:?}", v.rtts_ms);
        assert!(v.rtts_comparable);
    }
}
