//! Synthetic traceroute over the geographic model.
//!
//! §4.2 infers anycast by running `traceroute` from three locations and
//! comparing per-hop addresses and RTTs. We synthesise forward paths with
//! the structure of real traces: access router → metro aggregation →
//! a distance-proportional number of backbone hops → the destination
//! PoP's edge router → the server itself. The penultimate hop encodes the
//! serving site, which is exactly the signal the detection algorithm
//! keys on.

use crate::coords::rtt_between;
use crate::pools::ServerPool;
use crate::sites::Site;
use std::net::Ipv4Addr;
use svr_netsim::SimDuration;

/// One traceroute hop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hop {
    /// Responding address.
    pub ip: Ipv4Addr,
    /// Round-trip time to this hop.
    pub rtt: SimDuration,
    /// Diagnostic label ("metro-ffx", "backbone-2", ...).
    pub label: String,
}

/// A full trace to a pool from one vantage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceResult {
    /// Where the trace was run from.
    pub vantage: Site,
    /// Hops in order; the last is the server.
    pub hops: Vec<Hop>,
    /// Site that actually served (ground truth, not visible to the
    /// detection algorithm).
    pub serving_site: Site,
}

impl TraceResult {
    /// The hop right before the server — the paper's anycast fingerprint.
    pub fn penultimate_hop(&self) -> Option<&Hop> {
        if self.hops.len() >= 2 {
            self.hops.get(self.hops.len() - 2)
        } else {
            None
        }
    }

    /// End-to-end RTT (last hop).
    pub fn final_rtt(&self) -> SimDuration {
        self.hops.last().map(|h| h.rtt).unwrap_or(SimDuration::ZERO)
    }
}

fn vantage_octet(v: Site) -> u8 {
    match v {
        Site::FairfaxVa => 1,
        Site::LosAngeles => 2,
        Site::London => 3,
        Site::Manama => 4,
        _ => 9,
    }
}

/// Run a synthetic traceroute from `vantage` to `pool`.
pub fn traceroute(vantage: Site, pool: &ServerPool) -> TraceResult {
    let serving = pool.serving_site(vantage);
    let total = rtt_between(vantage.point(), serving.point());
    let total_ms = total.as_millis_f64();
    let mut hops = Vec::new();

    // Access router: ~0.8 ms, address from the campus/ISP block.
    hops.push(Hop {
        ip: Ipv4Addr::new(10, vantage_octet(vantage), 0, 1),
        rtt: SimDuration::from_millis_f64(0.8_f64.min(total_ms * 0.2)),
        label: format!("access-{}", vantage.code()),
    });
    // Metro aggregation: ~1.5 ms.
    hops.push(Hop {
        ip: Ipv4Addr::new(64, vantage_octet(vantage), 1, 1),
        rtt: SimDuration::from_millis_f64(1.5_f64.min(total_ms * 0.4)),
        label: format!("metro-{}", vantage.code()),
    });
    // Backbone hops: roughly one per 12 ms of path RTT.
    let n_backbone = ((total_ms / 12.0) as usize).clamp(1, 8);
    for k in 0..n_backbone {
        let frac = 0.4 + 0.5 * (k as f64 + 1.0) / (n_backbone as f64 + 1.0);
        hops.push(Hop {
            ip: Ipv4Addr::new(
                64,
                100 + vantage_octet(vantage),
                serving_octet(serving),
                (k + 1) as u8,
            ),
            rtt: SimDuration::from_millis_f64(total_ms * frac),
            label: format!("backbone-{k}"),
        });
    }
    // PoP edge router: encodes the serving site — the anycast fingerprint.
    hops.push(Hop {
        ip: Ipv4Addr::new(pool.owner.prefix(), serving_octet(serving), 250, 1),
        rtt: SimDuration::from_millis_f64(total_ms * 0.97),
        label: format!("edge-{}", serving.code()),
    });
    // The server.
    let assignment = pool.assign(vantage, 0);
    hops.push(Hop { ip: assignment.ip, rtt: total, label: format!("server-{}", serving.code()) });

    TraceResult { vantage, hops, serving_site: serving }
}

fn serving_octet(s: Site) -> u8 {
    match s {
        Site::FairfaxVa => 10,
        Site::LosAngeles => 20,
        Site::London => 30,
        Site::Manama => 40,
        Site::AshburnVa => 50,
        Site::SanJose => 60,
        Site::Quincy => 70,
        Site::Portland => 80,
        Site::Dublin => 90,
        Site::Frankfurt => 100,
        Site::Singapore => 110,
        Site::Tokyo => 120,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::whois::Owner;

    #[test]
    fn hop_rtts_are_monotone() {
        let pool = ServerPool::unicast(Owner::Aws, "hubs", Site::SanJose);
        let trace = traceroute(Site::FairfaxVa, &pool);
        assert!(trace.hops.len() >= 4);
        for w in trace.hops.windows(2) {
            assert!(w[0].rtt <= w[1].rtt, "{:?} then {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn final_rtt_matches_model() {
        let pool = ServerPool::unicast(Owner::Aws, "hubs", Site::SanJose);
        let trace = traceroute(Site::FairfaxVa, &pool);
        let expect = rtt_between(Site::FairfaxVa.point(), Site::SanJose.point());
        assert_eq!(trace.final_rtt(), expect);
    }

    #[test]
    fn penultimate_hop_encodes_serving_site() {
        let pool = ServerPool::anycast(Owner::Cloudflare, "rr", Site::anycast_global());
        let east = traceroute(Site::FairfaxVa, &pool);
        let europe = traceroute(Site::London, &pool);
        let pe = east.penultimate_hop().unwrap();
        let pl = europe.penultimate_hop().unwrap();
        assert_ne!(pe.ip, pl.ip, "different PoPs → different edge routers");
        assert_eq!(east.serving_site, Site::AshburnVa);
        assert_eq!(europe.serving_site, Site::London);
    }

    #[test]
    fn unicast_penultimate_hop_is_stable_across_vantages() {
        let pool = ServerPool::unicast(Owner::Microsoft, "altspace", Site::SanJose);
        let a = traceroute(Site::FairfaxVa, &pool);
        let b = traceroute(Site::London, &pool);
        assert_eq!(a.penultimate_hop().unwrap().ip, b.penultimate_hop().unwrap().ip);
    }

    #[test]
    fn longer_paths_have_more_backbone_hops() {
        let near = ServerPool::unicast(Owner::Meta, "w", Site::AshburnVa);
        let far = ServerPool::unicast(Owner::Aws, "h", Site::SanJose);
        let t_near = traceroute(Site::FairfaxVa, &near);
        let t_far = traceroute(Site::FairfaxVa, &far);
        assert!(t_far.hops.len() > t_near.hops.len());
    }
}
