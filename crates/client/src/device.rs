//! Client device profiles (§3.2's testbed hardware).


/// A display resolution, width × height per eye.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Resolution {
    /// Pixels wide.
    pub width: u32,
    /// Pixels high.
    pub height: u32,
}

impl Resolution {
    /// Construct.
    pub const fn new(width: u32, height: u32) -> Self {
        Resolution { width, height }
    }

    /// Total pixel count.
    pub fn pixels(self) -> u64 {
        self.width as u64 * self.height as u64
    }
}

impl std::fmt::Display for Resolution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}", self.width, self.height)
    }
}

/// The kinds of client device in the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// Oculus Quest 2: untethered, local rendering on mobile silicon.
    Quest2,
    /// HTC VIVE Cosmos tethered to the i7-7700K / GTX 1070 PC.
    ViveCosmos,
    /// The desktop PC itself, running the 2D client.
    Pc,
}

/// A client device profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceProfile {
    /// Device kind.
    pub kind: DeviceKind,
    /// Display refresh rate (the FPS ceiling; 72 on Quest 2 by default).
    pub refresh_hz: u32,
    /// Default per-eye display resolution.
    pub display_resolution: Resolution,
    /// Total device memory in MB (Quest 2 ≈ 6 GB).
    pub memory_mb: u32,
    /// Relative compute capacity (1.0 = Quest 2). The PC's higher budget
    /// is why the paper saw no throughput difference across devices but a
    /// rendering-headroom difference.
    pub compute_scale: f64,
    /// Whether the device runs on battery.
    pub battery_powered: bool,
}

impl DeviceProfile {
    /// The paper's primary device.
    pub fn quest2() -> Self {
        DeviceProfile {
            kind: DeviceKind::Quest2,
            refresh_hz: 72,
            display_resolution: Resolution::new(1832, 1920),
            memory_mb: 6_144,
            compute_scale: 1.0,
            battery_powered: true,
        }
    }

    /// Tethered VIVE: 90 Hz, rendering on the PC.
    pub fn vive_cosmos() -> Self {
        DeviceProfile {
            kind: DeviceKind::ViveCosmos,
            refresh_hz: 90,
            display_resolution: Resolution::new(1440, 1700),
            memory_mb: 16_384,
            compute_scale: 3.0,
            battery_powered: false,
        }
    }

    /// Desktop PC (2D client).
    pub fn pc() -> Self {
        DeviceProfile {
            kind: DeviceKind::Pc,
            refresh_hz: 60,
            display_resolution: Resolution::new(1920, 1080),
            memory_mb: 16_384,
            compute_scale: 3.0,
            battery_powered: false,
        }
    }

    /// Frame-time budget to hit the refresh rate, in ms.
    pub fn frame_budget_ms(&self) -> f64 {
        1_000.0 / self.refresh_hz as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quest2_matches_paper_specs() {
        let q = DeviceProfile::quest2();
        assert_eq!(q.refresh_hz, 72);
        assert_eq!(q.display_resolution.to_string(), "1832x1920");
        assert_eq!(q.memory_mb, 6_144);
        assert!(q.battery_powered);
        assert!((q.frame_budget_ms() - 13.888).abs() < 0.01);
    }

    #[test]
    fn tethered_devices_have_more_compute() {
        let q = DeviceProfile::quest2();
        assert!(DeviceProfile::vive_cosmos().compute_scale > q.compute_scale);
        assert!(DeviceProfile::pc().compute_scale > q.compute_scale);
        assert!(!DeviceProfile::pc().battery_powered);
    }

    #[test]
    fn resolution_pixel_math() {
        assert_eq!(Resolution::new(1440, 1584).pixels(), 1440 * 1584);
        assert_eq!(Resolution::new(2016, 2224).to_string(), "2016x2224");
    }
}
