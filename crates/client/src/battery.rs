//! Battery drain model.
//!
//! §6.2: "all platforms consume <10 % of a fully charged Quest 2's
//! battery after running the experiments for 10 minutes", regardless of
//! user count — computation varies, but radios and the display dominate.

use crate::resources::ResourceReading;

/// Battery state of a device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatteryModel {
    /// Remaining charge in percent.
    pub level_pct: f64,
    /// Fixed drain (display + radios + tracking), %/minute.
    pub base_drain_per_min: f64,
    /// Compute-proportional drain at 100 % CPU+GPU, %/minute.
    pub compute_drain_per_min: f64,
}

impl BatteryModel {
    /// A fully charged Quest 2.
    pub fn quest2_full() -> Self {
        BatteryModel {
            level_pct: 100.0,
            // Quest 2 runs ~2 h on a charge: ~0.8 %/min overall; most of
            // that is fixed.
            base_drain_per_min: 0.55,
            compute_drain_per_min: 0.35,
        }
    }

    /// Drain for `minutes` under a resource reading. Returns the battery
    /// consumed, in percent.
    pub fn drain(&mut self, reading: ResourceReading, minutes: f64) -> f64 {
        assert!(minutes >= 0.0);
        let compute_frac = ((reading.cpu + reading.gpu) / 200.0).clamp(0.0, 1.0);
        let per_min = self.base_drain_per_min + self.compute_drain_per_min * compute_frac;
        let used = (per_min * minutes).min(self.level_pct);
        self.level_pct -= used;
        used
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::{PerfProfile, RenderLoad, ResourceModel};

    #[test]
    fn ten_minute_session_uses_less_than_ten_percent() {
        // The §6.2 finding, for every platform at both 1 and 15 users.
        for p in PerfProfile::all() {
            for n in [0.0, 14.0] {
                let reading = ResourceModel::new(p, 1.0).read(RenderLoad::avatars(n));
                let mut b = BatteryModel::quest2_full();
                let used = b.drain(reading, 10.0);
                assert!(used < 10.0, "{} @{n}: {used}%", p.name);
                assert!(used > 2.0, "{} @{n}: implausibly low {used}%", p.name);
            }
        }
    }

    #[test]
    fn heavier_compute_drains_faster() {
        let light = ResourceModel::new(PerfProfile::altspace(), 1.0).read(RenderLoad::avatars(0.0));
        let heavy = ResourceModel::new(PerfProfile::hubs(), 1.0).read(RenderLoad {
            visible_avatars: 14.0,
            downlink_mbps: 1.0,
            game_active: true,
            reconciliation: 0.0,
        });
        let mut b1 = BatteryModel::quest2_full();
        let mut b2 = BatteryModel::quest2_full();
        assert!(b2.drain(heavy, 10.0) > b1.drain(light, 10.0));
    }

    #[test]
    fn battery_never_goes_negative() {
        let reading = ResourceModel::new(PerfProfile::hubs(), 1.0).read(RenderLoad::avatars(14.0));
        let mut b = BatteryModel::quest2_full();
        let used = b.drain(reading, 100_000.0);
        assert_eq!(b.level_pct, 0.0);
        assert!((used - 100.0).abs() < 1e-9);
        assert_eq!(b.drain(reading, 10.0), 0.0);
    }
}
