//! # svr-client
//!
//! Models of the client devices the paper measured with: the Oculus
//! Quest 2 (untethered, local rendering), the HTC VIVE Cosmos (tethered
//! to a PC), and a plain desktop PC. The paper's client-side findings —
//! FPS degradation with user count, CPU-vs-GPU scaling preferences,
//! ~10 MB of memory per avatar, <10 % battery per 10-minute session —
//! are load-response curves; this crate implements those curves as
//! explicit functions of rendering load, calibrated to the Figure 7/8
//! anchor points, and exposes an OVR-Metrics-Tool-style sampler that the
//! measurement harness reads exactly the way the paper's scripts did.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod battery;
pub mod device;
pub mod monitor;
pub mod render;
pub mod resources;

pub use battery::BatteryModel;
pub use device::{DeviceProfile, DeviceKind, Resolution};
pub use monitor::{MetricSample, Monitor, MonitorSummary};
pub use render::{FpsReading, RenderModel};
pub use resources::{PerfProfile, RenderLoad, ResourceModel, ResourceReading};
