//! The rendering-pipeline model: frame time → FPS and stale frames.
//!
//! Local rendering must finish each frame within the refresh budget
//! (13.9 ms at Quest 2's 72 Hz); when it cannot, the compositor re-shows
//! the previous frame — a *stale frame* in OVR-Metrics terms. Frame time
//! grows with visible avatars (Fig. 7's FPS decline) and inflates further
//! when the CPU saturates (Fig. 12's FPS collapse under throttling).

use crate::device::DeviceProfile;
use crate::resources::{RenderLoad, ResourceModel};

/// One frame-rate measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpsReading {
    /// Delivered frames per second (≤ refresh rate).
    pub fps: f64,
    /// Stale (re-shown) frames per second.
    pub stale_per_s: f64,
    /// Modelled frame time in ms.
    pub frame_ms: f64,
}

/// The rendering model for one platform app on one device.
#[derive(Debug, Clone, Copy)]
pub struct RenderModel {
    /// Resource model (shares the perf profile).
    pub resources: ResourceModel,
    /// Device being rendered on.
    pub device: DeviceProfile,
}

impl RenderModel {
    /// Create for a profile on a device.
    pub fn new(resources: ResourceModel, device: DeviceProfile) -> Self {
        RenderModel { resources, device }
    }

    /// Evaluate frame rate under a load.
    pub fn fps(&self, load: RenderLoad) -> FpsReading {
        let p = &self.resources.profile;
        let n = load.visible_avatars.max(0.0);
        let mut frame_ms =
            p.base_frame_ms + n * p.per_avatar_frame_ms / self.resources.compute_scale;
        // CPU saturation feedback: demand beyond 100 % stretches every
        // frame proportionally (the renderer is starved of main-thread
        // time).
        let reading = self.resources.read(load);
        if reading.cpu_demand > 100.0 {
            frame_ms *= reading.cpu_demand / 100.0;
        }
        // Reconciliation stalls: frames wait on missing state (Fig. 12's
        // FPS collapse and stale-frame burst under downlink throttling).
        frame_ms += load.reconciliation.clamp(0.0, 1.0) * 15.0;
        let refresh = self.device.refresh_hz as f64;
        let fps = (1_000.0 / frame_ms).min(refresh);
        FpsReading { fps, stale_per_s: (refresh - fps).max(0.0), frame_ms }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::PerfProfile;

    fn model(p: PerfProfile) -> RenderModel {
        RenderModel::new(ResourceModel::new(p, 1.0), DeviceProfile::quest2())
    }

    #[test]
    fn alone_every_platform_hits_refresh() {
        for p in PerfProfile::all() {
            let r = model(p).fps(RenderLoad::avatars(0.0));
            assert_eq!(r.fps, 72.0, "{} alone", p.name);
            assert_eq!(r.stale_per_s, 0.0);
        }
    }

    #[test]
    fn worlds_drops_about_25_percent_at_15_users() {
        let r = model(PerfProfile::worlds()).fps(RenderLoad::avatars(14.0));
        let drop = (72.0 - r.fps) / 72.0;
        assert!((drop - 0.25).abs() < 0.05, "Worlds drop {drop}");
    }

    #[test]
    fn hubs_drops_to_about_33_fps_at_15_users() {
        // §6.2: Hubs falls from 72 to ~60 at 5 users and ~33 at 15.
        let m = model(PerfProfile::hubs());
        let at5 = m.fps(RenderLoad::avatars(4.0));
        assert!((at5.fps - 60.0).abs() < 4.0, "Hubs @5 users {}", at5.fps);
        let at15 = m.fps(RenderLoad::avatars(14.0));
        assert!((at15.fps - 33.0).abs() < 4.0, "Hubs @15 users {}", at15.fps);
        assert!(at15.stale_per_s > 30.0);
    }

    #[test]
    fn worlds_has_smallest_drop_of_all_platforms() {
        let drops: Vec<(&str, f64)> = PerfProfile::all()
            .iter()
            .map(|p| (p.name, 72.0 - model(*p).fps(RenderLoad::avatars(14.0)).fps))
            .collect();
        let worlds = drops.iter().find(|(n, _)| *n == "Worlds").unwrap().1;
        for (name, d) in &drops {
            if *name != "Worlds" {
                assert!(worlds < *d, "Worlds {worlds} vs {name} {d}");
            }
        }
    }

    #[test]
    fn fps_declines_monotonically_with_users() {
        let m = model(PerfProfile::vrchat());
        let mut last = f64::INFINITY;
        for n in [0.0, 1.0, 2.0, 4.0, 6.0, 9.0, 11.0, 14.0] {
            let fps = m.fps(RenderLoad::avatars(n)).fps;
            assert!(fps <= last, "fps not monotone at n={n}");
            last = fps;
        }
    }

    #[test]
    fn cpu_saturation_collapses_fps() {
        // Fig. 12(c): FPS falls well below the avatar-load prediction when
        // reconciliation work saturates the CPU.
        let m = model(PerfProfile::worlds());
        let normal = m.fps(RenderLoad {
            visible_avatars: 1.0,
            downlink_mbps: 0.7,
            game_active: true,
            reconciliation: 0.0,
        });
        let starved = m.fps(RenderLoad {
            visible_avatars: 1.0,
            downlink_mbps: 0.3,
            game_active: true,
            reconciliation: 1.0,
        });
        assert!(starved.fps < normal.fps - 10.0, "{} vs {}", starved.fps, normal.fps);
        assert!(starved.stale_per_s > normal.stale_per_s);
    }

    #[test]
    fn tethered_device_sustains_higher_load() {
        let quest = RenderModel::new(
            ResourceModel::new(PerfProfile::vrchat(), 1.0),
            DeviceProfile::quest2(),
        );
        let vive = RenderModel::new(
            ResourceModel::new(PerfProfile::vrchat(), DeviceProfile::vive_cosmos().compute_scale),
            DeviceProfile::vive_cosmos(),
        );
        let load = RenderLoad::avatars(14.0);
        let fq = quest.fps(load);
        let fv = vive.fps(load);
        // VIVE's 90 Hz ceiling and 3× compute: more frames delivered.
        assert!(fv.fps > fq.fps);
    }

    #[test]
    fn frame_time_reported_consistently() {
        let m = model(PerfProfile::recroom());
        let r = m.fps(RenderLoad::avatars(10.0));
        assert!((r.fps - (1_000.0 / r.frame_ms).min(72.0)).abs() < 1e-9);
    }
}
