//! OVR-Metrics-Tool-style performance monitor.
//!
//! §3.2: "we run the OVR Metrics Tool, an official performance monitoring
//! tool from Oculus, to measure the performance and resource utilization
//! of client-side social VR applications on Quest 2." [`Monitor`] is that
//! tool's role in the harness: it samples FPS, stale frames, CPU, GPU,
//! memory, and battery once per second and summarises a run.

use crate::battery::BatteryModel;
use crate::render::{FpsReading, RenderModel};
use crate::resources::{RenderLoad, ResourceReading};
use svr_netsim::SimTime;

/// One per-second sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricSample {
    /// Sample timestamp.
    pub ts: SimTime,
    /// Delivered FPS.
    pub fps: f64,
    /// Stale frames in the second.
    pub stale: f64,
    /// CPU utilisation, %.
    pub cpu: f64,
    /// GPU utilisation, %.
    pub gpu: f64,
    /// Memory footprint, MB.
    pub memory_mb: f64,
    /// Battery level, %.
    pub battery_pct: f64,
}

/// The monitor: owns the models and the sample log.
#[derive(Debug)]
pub struct Monitor {
    render: RenderModel,
    battery: BatteryModel,
    samples: Vec<MetricSample>,
}

/// Aggregates over a run (or a slice of one).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonitorSummary {
    /// Mean FPS.
    pub avg_fps: f64,
    /// Mean stale frames per second.
    pub avg_stale: f64,
    /// Mean CPU %.
    pub avg_cpu: f64,
    /// Mean GPU %.
    pub avg_gpu: f64,
    /// Mean memory MB.
    pub avg_memory_mb: f64,
    /// Battery consumed over the slice, %.
    pub battery_used_pct: f64,
    /// Number of samples aggregated.
    pub samples: usize,
}

impl Monitor {
    /// Create a monitor over a render model with a fresh battery.
    pub fn new(render: RenderModel) -> Self {
        Monitor { render, battery: BatteryModel::quest2_full(), samples: Vec::new() }
    }

    /// Take one sample covering `dt_s` seconds of the given load.
    pub fn sample(&mut self, ts: SimTime, load: RenderLoad, dt_s: f64) -> MetricSample {
        let fps: FpsReading = self.render.fps(load);
        let res: ResourceReading = self.render.resources.read(load);
        self.battery.drain(res, dt_s / 60.0);
        let s = MetricSample {
            ts,
            fps: fps.fps,
            stale: fps.stale_per_s,
            cpu: res.cpu,
            gpu: res.gpu,
            memory_mb: res.memory_mb,
            battery_pct: self.battery.level_pct,
        };
        self.samples.push(s);
        s
    }

    /// All samples so far.
    pub fn samples(&self) -> &[MetricSample] {
        &self.samples
    }

    /// Summarise samples whose timestamps fall in `[from, to)`.
    pub fn summarize_between(&self, from: SimTime, to: SimTime) -> MonitorSummary {
        let slice: Vec<&MetricSample> =
            self.samples.iter().filter(|s| s.ts >= from && s.ts < to).collect();
        summarize(&slice)
    }

    /// Summarise the whole run.
    pub fn summarize(&self) -> MonitorSummary {
        summarize(&self.samples.iter().collect::<Vec<_>>())
    }
}

fn summarize(slice: &[&MetricSample]) -> MonitorSummary {
    let n = slice.len();
    if n == 0 {
        return MonitorSummary {
            avg_fps: 0.0,
            avg_stale: 0.0,
            avg_cpu: 0.0,
            avg_gpu: 0.0,
            avg_memory_mb: 0.0,
            battery_used_pct: 0.0,
            samples: 0,
        };
    }
    let sum = |f: fn(&MetricSample) -> f64| slice.iter().map(|s| f(s)).sum::<f64>() / n as f64;
    MonitorSummary {
        avg_fps: sum(|s| s.fps),
        avg_stale: sum(|s| s.stale),
        avg_cpu: sum(|s| s.cpu),
        avg_gpu: sum(|s| s.gpu),
        avg_memory_mb: sum(|s| s.memory_mb),
        // Max − min over the window, not first − last: samples are not
        // guaranteed monotone (a charging headset, or a window cut
        // across a battery reset) and drain can never be negative.
        battery_used_pct: {
            let max = slice.iter().map(|s| s.battery_pct).fold(f64::MIN, f64::max);
            let min = slice.iter().map(|s| s.battery_pct).fold(f64::MAX, f64::min);
            max - min
        },
        samples: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceProfile;
    use crate::resources::{PerfProfile, ResourceModel};
    use svr_netsim::SimDuration;

    fn monitor() -> Monitor {
        Monitor::new(RenderModel::new(
            ResourceModel::new(PerfProfile::worlds(), 1.0),
            DeviceProfile::quest2(),
        ))
    }

    #[test]
    fn sampling_accumulates_and_summarizes() {
        let mut m = monitor();
        for i in 0..60u64 {
            m.sample(SimTime::from_secs(i), RenderLoad::avatars(3.0), 1.0);
        }
        let sum = m.summarize();
        assert_eq!(sum.samples, 60);
        assert!(sum.avg_fps > 60.0 && sum.avg_fps <= 72.0);
        assert!(sum.avg_cpu > 50.0);
        assert!(sum.battery_used_pct > 0.0 && sum.battery_used_pct < 2.0);
    }

    #[test]
    fn battery_drain_never_negative_on_non_monotone_samples() {
        // A headset that charges mid-window (battery rises) used to
        // report negative drain under the first − last formula.
        let mk = |ts: u64, battery_pct: f64| MetricSample {
            ts: SimTime::from_secs(ts),
            fps: 72.0,
            stale: 0.0,
            cpu: 10.0,
            gpu: 10.0,
            memory_mb: 100.0,
            battery_pct,
        };
        let rising = [mk(0, 80.0), mk(1, 85.0), mk(2, 90.0)];
        let refs: Vec<&MetricSample> = rising.iter().collect();
        let sum = summarize(&refs);
        assert!(sum.battery_used_pct >= 0.0, "drain {} must be ≥ 0", sum.battery_used_pct);
        assert!((sum.battery_used_pct - 10.0).abs() < 1e-9, "max − min over the window");
        // A dip-and-recover window reports the full excursion.
        let dip = [mk(0, 90.0), mk(1, 84.0), mk(2, 88.0)];
        let refs: Vec<&MetricSample> = dip.iter().collect();
        assert!((summarize(&refs).battery_used_pct - 6.0).abs() < 1e-9);
    }

    #[test]
    fn windowed_summary_isolates_phases() {
        let mut m = monitor();
        // 30 s quiet, 30 s crowded.
        for i in 0..30u64 {
            m.sample(SimTime::from_secs(i), RenderLoad::avatars(0.0), 1.0);
        }
        for i in 30..60u64 {
            m.sample(SimTime::from_secs(i), RenderLoad::avatars(14.0), 1.0);
        }
        let quiet = m.summarize_between(SimTime::ZERO, SimTime::from_secs(30));
        let crowded = m.summarize_between(SimTime::from_secs(30), SimTime::from_secs(60));
        assert_eq!(quiet.samples, 30);
        assert_eq!(crowded.samples, 30);
        assert!(quiet.avg_fps > crowded.avg_fps);
        assert!(quiet.avg_cpu < crowded.avg_cpu);
        assert!(quiet.avg_memory_mb < crowded.avg_memory_mb);
    }

    #[test]
    fn empty_summary_is_zeroed() {
        let m = monitor();
        let s = m.summarize_between(SimTime::ZERO, SimTime::from_secs(10));
        assert_eq!(s.samples, 0);
        assert_eq!(s.avg_fps, 0.0);
    }

    #[test]
    fn battery_declines_monotonically() {
        let mut m = monitor();
        let mut last = 100.0;
        for i in 0..600u64 {
            let s = m.sample(
                SimTime::ZERO + SimDuration::from_secs(i),
                RenderLoad::avatars(5.0),
                1.0,
            );
            assert!(s.battery_pct <= last);
            last = s.battery_pct;
        }
        // 10 minutes: <10 % used (§6.2).
        assert!(100.0 - last < 10.0);
    }
}
